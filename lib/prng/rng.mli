(** Deterministic pseudo-random number generation (Xoshiro256** seeded via
    SplitMix64).

    Every stochastic component of the repository draws from an explicit
    generator state, so all experiments are reproducible from their seeds.
    Use {!split} to derive independent sub-streams for concurrent
    components. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val of_seed64 : int64 -> t
(** [of_seed64 seed] builds a generator from a full 64-bit seed. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t]. *)

val copy : t -> t
(** [copy t] snapshots the generator state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0,1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); unbiased. Raises
    [Invalid_argument] for non-positive bounds. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] succeeds with probability [p]. *)

val distinct_pair : t -> int -> int * int
(** [distinct_pair t n] draws an ordered pair of distinct indices uniformly
    from [0, n); this is exactly the entry selection of S&F-InitiateAction. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_indices : t -> n:int -> k:int -> int array
(** [sample_indices t ~n ~k] draws [k] distinct indices from [0, n). *)

val exponential : t -> float -> float
(** Exponential variate with the given rate. *)

val geometric : t -> float -> int
(** Failures before first success with the given success probability. *)

val categorical : t -> float array -> int
(** Index distributed according to an unnormalized weight vector. *)
