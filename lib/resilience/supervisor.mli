(** Scheduling state machine for connectivity repairs.

    Drivers probe their own health signals (starved/isolated nodes, weak
    connectivity) and perform their own repairs (the section 5
    reconnect/rebootstrap rules); the supervisor decides {e when} an
    attempt is allowed, spacing failures out under capped exponential
    {!Backoff} so a sick system is not hammered by its own recovery.  All
    times are in rounds from the caller's injected clock. *)

type t

val create : backoff:Backoff.t -> unit -> t

val due : t -> now:float -> bool
(** May a repair attempt run now?  Always true while healthy; false
    inside a backoff window. *)

val record_attempt : t -> now:float -> float
(** Charge one repair attempt and open the next backoff window; returns
    the drawn delay in rounds (for histogram export). *)

val record_success : t -> unit
(** The follow-up probe found the system healthy: count one recovery and
    reset the backoff. *)

val record_healthy : t -> unit
(** A routine probe found nothing to repair: reset any stale backoff. *)

val attempts : t -> int
(** Repair attempts charged so far. *)

val recoveries : t -> int
(** Attempts confirmed successful by a later probe. *)

val last_delay : t -> float
(** The delay drawn by the most recent {!record_attempt} ([0.] before
    any). *)

val backing_off : t -> bool
(** Currently inside a backoff window. *)
