(* Tests for the UDP deployment layer: the wire codec and the socket-based
   cluster driver. *)

module Codec = Sf_net.Codec
module Cluster = Sf_net.Cluster
module View = Sf_core.View
module Protocol = Sf_core.Protocol

let entry ?(serial = 0) ?(anchor = None) ?(born = 0) id =
  { View.id; serial; anchor; born }

let message ?(anchor = None) () =
  {
    Protocol.reinforcement = entry ~serial:123 ~anchor ~born:42 7;
    mixing = entry ~serial:456 ~born:43 9;
  }

(* --- Codec --- *)

let test_codec_roundtrip () =
  let m = message ~anchor:(Some 5) () in
  let encoded = Codec.encode m in
  Alcotest.(check int) "size" Codec.message_size (Bytes.length encoded);
  match Codec.decode encoded ~length:(Bytes.length encoded) with
  | Ok decoded ->
    Alcotest.(check bool) "roundtrip" true (decoded = m)
  | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e

let test_codec_none_anchor () =
  let m = message () in
  match Codec.decode (Codec.encode m) ~length:Codec.message_size with
  | Ok decoded ->
    Alcotest.(check bool) "anchor None survives" true
      (decoded.Protocol.reinforcement.View.anchor = None)
  | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e

let test_codec_truncated () =
  let encoded = Codec.encode (message ()) in
  (match Codec.decode encoded ~length:10 with
  | Error (Codec.Too_short 10) -> ()
  | _ -> Alcotest.fail "short datagram must be rejected")

let test_codec_bad_magic () =
  let encoded = Codec.encode (message ()) in
  Bytes.set encoded 0 'x';
  (match Codec.decode encoded ~length:Codec.message_size with
  | Error (Codec.Bad_magic 'x') -> ()
  | _ -> Alcotest.fail "bad magic must be rejected")

let test_codec_bad_version () =
  let encoded = Codec.encode (message ()) in
  Bytes.set encoded 1 '\x7f';
  (match Codec.decode encoded ~length:Codec.message_size with
  | Error (Codec.Unsupported_version _) -> ()
  | _ -> Alcotest.fail "unknown version must be rejected")

let prop_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      let entry_gen =
        map2
          (fun (id, serial) (anchor, born) ->
            { View.id; serial; anchor = (if anchor < 0 then None else Some anchor); born })
          (pair (int_range 0 1_000_000) (int_range 0 1_000_000))
          (pair (int_range (-1) 1_000_000) (int_range 0 1_000_000))
      in
      map2
        (fun reinforcement mixing -> { Protocol.reinforcement; mixing })
        entry_gen entry_gen)
  in
  QCheck.Test.make ~name:"codec roundtrip" ~count:300 (QCheck.make gen) (fun m ->
      match Codec.decode (Codec.encode m) ~length:Codec.message_size with
      | Ok decoded -> decoded = m
      | Error _ -> false)

(* --- Cluster --- *)

let config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_cluster ?(n = 24) ?(loss = 0.) ~base_port () =
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 5) ~n ~out_degree:4 in
  Cluster.create ~period:0.002 ~base_port ~n ~config ~loss_rate:loss ~seed:6 ~topology ()

let test_cluster_runs_and_converges () =
  let c = make_cluster ~base_port:48100 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown c)
    (fun () ->
      Cluster.run c ~duration:1.5;
      let stats = Cluster.statistics c in
      Alcotest.(check bool) "actions happened" true (stats.Cluster.actions > 500);
      Alcotest.(check bool) "datagrams flowed" true (stats.Cluster.datagrams_sent > 100);
      Alcotest.(check int) "no decode errors" 0 stats.Cluster.decode_errors;
      Alcotest.(check int) "no send errors" 0 stats.Cluster.send_errors;
      (* Without injected loss every sent datagram arrives on loopback. *)
      Alcotest.(check int) "conservation"
        (stats.Cluster.datagrams_sent - stats.Cluster.datagrams_dropped)
        stats.Cluster.datagrams_received;
      Alcotest.(check bool) "connected" true (Cluster.is_weakly_connected c);
      (* Observation 5.1 holds over the real transport too. *)
      let outs = Cluster.outdegree_summary c in
      Alcotest.(check bool) "degrees bounded" true
        (Sf_stats.Summary.min_value outs >= 0. && Sf_stats.Summary.max_value outs <= 12.))

let test_cluster_injected_loss_rate () =
  let c = make_cluster ~n:32 ~loss:0.2 ~base_port:48200 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown c)
    (fun () ->
      Cluster.run c ~duration:1.5;
      let stats = Cluster.statistics c in
      let observed =
        float_of_int stats.Cluster.datagrams_dropped
        /. float_of_int (max 1 stats.Cluster.datagrams_sent)
      in
      Alcotest.(check bool)
        (Printf.sprintf "observed loss %.3f near 0.2" observed)
        true
        (Float.abs (observed -. 0.2) < 0.05);
      (* Duplication compensates: degrees stay at/above dL. *)
      let outs = Cluster.outdegree_summary c in
      Alcotest.(check bool) "degrees survive loss" true
        (Sf_stats.Summary.mean outs >= 4.))

(* Regression for the select-loop hardening: a SIGALRM firing every few
   milliseconds interrupts [Unix.select] with EINTR throughout the run.
   The driver must treat that as "try again", not an error — before the
   hardening this aborted the run with [Unix.Unix_error (EINTR, ...)]. *)
let test_cluster_survives_signals () =
  let fired = ref 0 in
  let previous =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr fired))
  in
  let previous_timer =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_interval = 0.01; it_value = 0.01 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL previous_timer);
      Sys.set_signal Sys.sigalrm previous)
    (fun () ->
      let c = make_cluster ~base_port:48300 () in
      Fun.protect
        ~finally:(fun () -> Cluster.shutdown c)
        (fun () ->
          Cluster.run c ~duration:1.0;
          Alcotest.(check bool)
            (Printf.sprintf "signals actually fired (%d)" !fired)
            true (!fired > 10);
          let stats = Cluster.statistics c in
          Alcotest.(check bool) "the run kept making progress" true
            (stats.Cluster.actions > 200);
          Alcotest.(check int) "no decode errors" 0 stats.Cluster.decode_errors))

(* Crash-restart with state recovery: under a resilience policy a crash
   window really closes the victim's socket, and leaving the window
   rebinds a fresh socket on the same port and rejoins from the saved
   snapshot.  The cluster must finish with every node live, views sound
   and the rejoins counted. *)
let test_cluster_crash_rebind () =
  let policy =
    Sf_resil.Policy.make ~retune:false ~recover:false
      ~solve:(fun ~loss:_ -> (4, 12))
      ()
  in
  let scenario =
    match Sf_faults.Scenario.of_string "crash@100-200:0-3" with
    | Ok sc -> sc
    | Error e -> Alcotest.fail ("scenario parse: " ^ e)
  in
  let n = 24 in
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 5) ~n ~out_degree:4 in
  let c =
    Cluster.create ~period:0.002 ~scenario ~resilience:policy ~base_port:48350 ~n
      ~config ~loss_rate:0. ~seed:6 ~topology ()
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown c)
    (fun () ->
      (* period 2 ms: the crash window spans 0.2 s - 0.4 s of a 1.2 s run,
         so every victim crashes and rejoins well before the end. *)
      Cluster.run c ~duration:1.2;
      let stats = Cluster.statistics c in
      Alcotest.(check bool)
        (Printf.sprintf "rejoins counted (%d)" stats.Cluster.rejoins)
        true
        (stats.Cluster.rejoins >= 1);
      Alcotest.(check int) "nothing stayed crashed" 0
        (Seq.fold_left
           (fun acc (id, _) -> if Cluster.is_crashed c id then acc + 1 else acc)
           0 (Cluster.views c));
      (* Every view — including the rejoined victims' — is structurally
         sound, inside M1 bounds and even (Observation 5.1). *)
      Seq.iter
        (fun (id, view) ->
          (match Sf_check.Invariant.check_view view with
          | Some v ->
            Alcotest.failf "node %d: %a" id Sf_check.Invariant.pp_violation v
          | None -> ());
          let d = View.degree view in
          Alcotest.(check bool)
            (Printf.sprintf "node %d outdegree %d within [0, 12] and even" id d)
            true
            (d >= 0 && d <= 12 && d mod 2 = 0))
        (Cluster.views c);
      (* The victims rejoined with usable views. *)
      Seq.iter
        (fun (id, view) ->
          if id <= 3 then
            Alcotest.(check bool)
              (Printf.sprintf "victim %d has a non-empty view" id)
              true (View.degree view > 0))
        (Cluster.views c))

(* --- Codec v2 --- *)

(* The historical v1 layout, reconstructed independently of the encoder:
   magic, version, then two entries of four int64 LE fields each
   (id, serial, anchor with None as -1, born).  Any drift in the v1
   encoder — including drift introduced by the v2 layer sharing its
   entry writer — breaks byte identity with deployed binaries. *)
let test_v1_golden_bytes () =
  let expected = Bytes.create Codec.message_size in
  Bytes.set expected 0 '\xf5';
  Bytes.set expected 1 '\x01';
  let put off v = Bytes.set_int64_le expected off (Int64.of_int v) in
  (* reinforcement = { id = 7; serial = 123; anchor = Some 5; born = 42 } *)
  put 2 7;
  put 10 123;
  put 18 5;
  put 26 42;
  (* mixing = { id = 9; serial = 456; anchor = None; born = 43 } *)
  put 34 9;
  put 42 456;
  Bytes.set_int64_le expected 50 (-1L);
  put 58 43;
  let encoded = Codec.encode (message ~anchor:(Some 5) ()) in
  Alcotest.(check string)
    "v1 frame is byte-identical to the historical layout"
    (Bytes.to_string expected) (Bytes.to_string encoded)

let nth_message i =
  {
    Protocol.reinforcement =
      entry ~serial:(1000 + i) ~anchor:(if i mod 2 = 0 then Some i else None)
        ~born:i (2 * i);
    mixing = entry ~serial:(2000 + i) ~born:(i + 1) ((2 * i) + 1);
  }

let messages k = List.init k nth_message

let one_packet msgs =
  match Codec.encode_batch msgs with
  | [ packet ] -> packet
  | packets -> Alcotest.failf "expected 1 datagram, got %d" (List.length packets)

let decode_one_batch packet =
  match Codec.decode_datagram packet ~length:(Bytes.length packet) with
  | Ok (Codec.Batch b) -> b
  | Ok _ -> Alcotest.fail "expected a batch datagram"
  | Error e -> Alcotest.failf "batch decode failed: %a" Codec.pp_error e

let test_v2_batch_roundtrip () =
  List.iter
    (fun k ->
      match Codec.encode_batch (messages k) with
      | [ packet ] ->
        Alcotest.(check int)
          (Printf.sprintf "batch of %d size" k)
          (Codec.batch_header_size + (k * Codec.frame_size))
          (Bytes.length packet);
        let b = decode_one_batch packet in
        Alcotest.(check bool)
          (Printf.sprintf "batch of %d roundtrips" k)
          true
          (b.Codec.messages = messages k && b.Codec.bad_crc = 0
         && not b.Codec.truncated)
      | packets ->
        Alcotest.failf "batch of %d encoded to %d datagrams" k
          (List.length packets))
    [ 1; 2; Codec.max_batch ];
  Alcotest.(check (list string)) "empty batch encodes to nothing" []
    (List.map Bytes.to_string (Codec.encode_batch []))

let test_v2_batch_split () =
  let k = Codec.max_batch + 3 in
  match Codec.encode_batch (messages k) with
  | [ full; rest ] ->
    Alcotest.(check int) "first datagram is a full batch" Codec.max_datagram_size
      (Bytes.length full);
    let b1 = decode_one_batch full and b2 = decode_one_batch rest in
    Alcotest.(check int) "first carries max_batch" Codec.max_batch
      (List.length b1.Codec.messages);
    Alcotest.(check int) "second carries the remainder" 3
      (List.length b2.Codec.messages);
    Alcotest.(check bool) "order is preserved across the split" true
      (b1.Codec.messages @ b2.Codec.messages = messages k)
  | packets -> Alcotest.failf "expected 2 datagrams, got %d" (List.length packets)

let test_v2_truncated_batch () =
  let packet = one_packet (messages 3) in
  (* Cut mid-way through the third frame: the two complete frames must
     still decode, flagged truncated. *)
  let cut = Codec.frame_offset 2 + 10 in
  (match Codec.decode_datagram packet ~length:cut with
  | Ok (Codec.Batch b) ->
    Alcotest.(check bool) "complete frames survive truncation" true
      (b.Codec.messages = messages 2 && b.Codec.truncated)
  | _ -> Alcotest.fail "truncated batch must still yield complete frames");
  (* Cut inside the header: nothing to salvage. *)
  match Codec.decode_datagram packet ~length:3 with
  | Error (Codec.Too_short 3) -> ()
  | _ -> Alcotest.fail "header-truncated batch must be Too_short"

let test_v2_bad_crc () =
  let packet = one_packet (messages 3) in
  Codec.corrupt_frame packet 1;
  let b = decode_one_batch packet in
  Alcotest.(check bool)
    "corruption rejects exactly the corrupted frame" true
    (b.Codec.messages = [ nth_message 0; nth_message 2 ]
    && b.Codec.bad_crc = 1
    && not b.Codec.truncated)

(* The downgrade matrix: each side of a mixed v1/v2 cluster must see the
   other's traffic exactly as negotiation assumes. *)
let test_v2_downgrade_matrix () =
  (* v2 reader, v1 frame: accepted as a v1 message. *)
  let v1 = Codec.encode (message ()) in
  (match Codec.decode_datagram v1 ~length:(Bytes.length v1) with
  | Ok (Codec.Msg_v1 m) ->
    Alcotest.(check bool) "v2 reader accepts v1 frames" true (m = message ())
  | _ -> Alcotest.fail "v2 reader must accept v1 frames");
  (* v1 reader, v2 batch: unsupported version, datagram dropped whole. *)
  let batch = one_packet (messages 2) in
  (match Codec.decode_datagram ~max_version:1 batch ~length:(Bytes.length batch) with
  | Error (Codec.Unsupported_version '\x02') -> ()
  | _ -> Alcotest.fail "v1 reader must reject v2 batches by version");
  (* v1 reader, v2 hello: same rejection — a silent peer, so the sender
     downgrades at the hello cap. *)
  let hello = Codec.encode_hello ~lo:48000 ~hi:48031 in
  (match Codec.decode_datagram ~max_version:1 hello ~length:(Bytes.length hello) with
  | Error (Codec.Unsupported_version '\x02') -> ()
  | _ -> Alcotest.fail "v1 reader must reject hellos by version");
  (* v2 reader, hello: the advertised range roundtrips. *)
  match Codec.decode_datagram hello ~length:(Bytes.length hello) with
  | Ok (Codec.Hello { lo = 48000; hi = 48031 }) -> ()
  | _ -> Alcotest.fail "hello range must roundtrip"

let test_recv_buffer_size () =
  Alcotest.(check int) "max datagram is a full batch"
    (Codec.batch_header_size + (Codec.max_batch * Codec.frame_size))
    Codec.max_datagram_size;
  Alcotest.(check int) "recv buffer holds any datagram plus headroom"
    (Codec.max_datagram_size + 1) Codec.recv_buffer_size;
  Alcotest.(check bool) "v1 frames fit too" true
    (Codec.message_size < Codec.recv_buffer_size)

(* --- Driver slices and v2 interop --- *)

module Driver = Sf_net.Driver

let make_slice ?(version = 2) ?(n = 16) ?(count = 8) ~first ~base_port () =
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 5) ~n ~out_degree:4 in
  Driver.create ~period:0.002 ~version ~first ~count ~serial_stride:2
    ~serial_offset:(first / count) ~base_port ~n ~config ~loss_rate:0. ~seed:6
    ~topology ()

(* Regression for the select-loop hardening (EAGAIN/ECONNREFUSED): a
   driver owning half the id space keeps sending to the other half's
   ports.  One of those ports is bound by a plain socket that closes
   mid-run, so the kernel starts answering with ICMP port-unreachable
   while the loop is hot.  The run must complete without an exception
   and without the send path wedging. *)
let test_driver_closed_ports () =
  let base_port = 49000 in
  let foreign = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind foreign (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + 12));
  let foreign_open = ref true in
  let close_foreign () =
    if !foreign_open then begin
      foreign_open := false;
      Unix.close foreign
    end
  in
  let d = make_slice ~first:0 ~base_port () in
  Fun.protect
    ~finally:(fun () ->
      Driver.shutdown d;
      close_foreign ())
    (fun () ->
      Driver.add_periodic d ~every:0.3 close_foreign;
      Driver.run d ~duration:0.8;
      let stats = Driver.statistics d in
      Alcotest.(check bool) "the run kept going" true (stats.Driver.actions > 100);
      Alcotest.(check bool) "datagrams kept flowing" true
        (stats.Driver.datagrams_emitted > 0);
      Alcotest.(check int) "no decode errors" 0 stats.Driver.decode_errors)

(* Two v2 slices in sibling domains: per-peer negotiation must upgrade
   both directions and batched traffic must flow across the slice
   boundary. *)
let test_driver_v2_interop () =
  let base_port = 49050 in
  let a = make_slice ~first:0 ~base_port () in
  let b = make_slice ~first:8 ~base_port () in
  Fun.protect
    ~finally:(fun () ->
      Driver.shutdown a;
      Driver.shutdown b)
    (fun () ->
      let slices = [| a; b |] in
      Sf_engine.Par.run ~domains:2 ~tasks:2 (fun i ->
          Driver.run slices.(i) ~duration:1.0);
      Array.iter
        (fun d ->
          let s = Driver.statistics d in
          Alcotest.(check bool) "hellos were exchanged" true
            (s.Driver.hellos_sent > 0 && s.Driver.hellos_received > 0);
          Alcotest.(check bool) "batches flowed after the upgrade" true
            (s.Driver.batches_sent > 0);
          Alcotest.(check bool) "messages were delivered" true
            (s.Driver.messages_received > 0);
          Alcotest.(check int) "no decode errors between v2 peers" 0
            s.Driver.decode_errors)
        slices)

(* A v2 slice against a v1 slice: the v2 side must keep the v1 peer on
   v1 frames (traffic flows both ways), and the v1 side must reject the
   capped hellos by version — the exact signal a historical binary would
   produce. *)
let test_driver_v1_v2_interop () =
  let base_port = 49100 in
  let a = make_slice ~version:2 ~first:0 ~base_port () in
  let b = make_slice ~version:1 ~first:8 ~base_port () in
  Fun.protect
    ~finally:(fun () ->
      Driver.shutdown a;
      Driver.shutdown b)
    (fun () ->
      let slices = [| a; b |] in
      Sf_engine.Par.run ~domains:2 ~tasks:2 (fun i ->
          Driver.run slices.(i) ~duration:1.0);
      let sa = Driver.statistics a and sb = Driver.statistics b in
      Alcotest.(check bool) "both sides delivered messages" true
        (sa.Driver.messages_received > 0 && sb.Driver.messages_received > 0);
      Alcotest.(check bool) "the v2 side probed with hellos" true
        (sa.Driver.hellos_sent > 0);
      Alcotest.(check bool) "the v1 side rejected hellos by version" true
        (sb.Driver.decode_errors > 0);
      Alcotest.(check int) "the v1 side never spoke v2" 0
        (sb.Driver.hellos_sent + sb.Driver.batches_sent))

(* --- Node-host and spawner --- *)

module Nodehost = Sf_net.Nodehost
module Spawner = Sf_net.Spawner

let test_nodehost_commands () =
  let d = make_slice ~first:0 ~count:8 ~n:8 ~base_port:49200 () in
  Fun.protect
    ~finally:(fun () -> Driver.shutdown d)
    (fun () ->
      let replies = ref [] in
      let reply m = replies := m :: !replies in
      Nodehost.handle_command d ~reply "ping";
      (match !replies with
      | [ pong ] ->
        Alcotest.(check string) "pong carries our pid"
          (Printf.sprintf "pong %d" (Unix.getpid ()))
          pong
      | _ -> Alcotest.fail "ping must produce exactly one reply");
      replies := [];
      Nodehost.handle_command d ~reply "snapshot";
      let lines = List.rev !replies in
      Alcotest.(check int) "snapshot reports every owned node and a terminator" 9
        (List.length lines);
      Alcotest.(check bool) "snapshot lines are view lines" true
        (List.for_all
           (fun l -> String.length l >= 4 && String.sub l 0 4 = "view")
           (List.filteri (fun i _ -> i < 8) lines));
      (match List.rev lines with
      | "end" :: _ -> ()
      | _ -> Alcotest.fail "snapshot must end with end");
      replies := [];
      Nodehost.handle_command d ~reply "filter 2";
      Nodehost.handle_command d ~reply "filter off";
      Alcotest.(check int) "filter commands are silent" 0 (List.length !replies);
      Nodehost.handle_command d ~reply "bogus nonsense";
      Alcotest.(check (list string)) "unknown commands answer err"
        [ "err unknown-command" ] !replies)

let test_nodehost_view_line () =
  let view = View.create 4 in
  Alcotest.(check string) "empty view renders as a dash" "view 3 -"
    (Nodehost.view_line 3 view);
  View.set view 0 (entry ~serial:123 ~anchor:(Some 5) ~born:42 7);
  View.set view 2 (entry ~serial:456 ~born:43 9);
  Alcotest.(check string) "entries render id:serial:anchor:born"
    "view 3 7:123:5:42,9:456:-1:43"
    (Nodehost.view_line 3 view)

let test_line_reader () =
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock r;
  let lines = ref [] and eofs = ref 0 in
  let reader =
    Nodehost.line_reader r
      ~on_line:(fun l -> lines := l :: !lines)
      ~on_eof:(fun () -> incr eofs)
  in
  let write s = ignore (Unix.write_substring w s 0 (String.length s)) in
  write "one\ntw";
  reader ();
  Alcotest.(check (list string)) "complete lines fire, partials wait" [ "one" ]
    (List.rev !lines);
  write "o\nthree\n";
  reader ();
  Alcotest.(check (list string)) "split lines reassemble"
    [ "one"; "two"; "three" ] (List.rev !lines);
  Unix.close w;
  reader ();
  reader ();
  Alcotest.(check int) "eof fires exactly once" 1 !eofs;
  Unix.close r

(* End-to-end process smoke: fork two real node-hosts through the
   spawner, let them gossip briefly, and check the merged outcome —
   the stop protocol completed, every node reported a view, and
   heartbeats arrived. *)
let test_spawner_smoke () =
  let cfg =
    Spawner.make_config ~hosts:2 ~nodes_per_host:4 ~base_port:49160
      ~scenario:Sf_faults.Scenario.default ~seed:11 ~duration:0.6
      ~heartbeat:0.1 ~hb_timeout:5.0 ()
  in
  let o = Spawner.run cfg in
  Alcotest.(check int) "two hosts ran" 2 (List.length o.Spawner.hosts);
  Alcotest.(check bool) "both hosts completed the stop protocol" true
    (List.for_all (fun h -> h.Spawner.bye) o.Spawner.hosts);
  Alcotest.(check int) "every node reported a final view" 8
    (List.length o.Spawner.merged_views);
  Alcotest.(check bool) "heartbeats arrived" true (o.Spawner.heartbeats > 0);
  Alcotest.(check int) "nothing was killed" 0 o.Spawner.kills;
  Alcotest.(check int) "nothing died unexpectedly" 0 o.Spawner.unexpected_deaths;
  List.iter
    (fun (id, entries) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d view within M1 bounds and even" id)
        true
        (List.length entries <= 12 && List.length entries mod 2 = 0))
    o.Spawner.merged_views

let test_cluster_port_validation () =
  Alcotest.(check bool) "privileged ports rejected" true
    (match make_cluster ~base_port:80 () with
    | exception Invalid_argument _ -> true
    | c ->
      Cluster.shutdown c;
      false)

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec None anchor" `Quick test_codec_none_anchor;
    Alcotest.test_case "codec truncated" `Quick test_codec_truncated;
    Alcotest.test_case "codec bad magic" `Quick test_codec_bad_magic;
    Alcotest.test_case "codec bad version" `Quick test_codec_bad_version;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    Alcotest.test_case "cluster converges (real UDP)" `Quick test_cluster_runs_and_converges;
    Alcotest.test_case "cluster loss injection" `Quick test_cluster_injected_loss_rate;
    Alcotest.test_case "cluster survives SIGALRM storms (EINTR)" `Quick
      test_cluster_survives_signals;
    Alcotest.test_case "cluster crash-restart rebinds and rejoins" `Quick
      test_cluster_crash_rebind;
    Alcotest.test_case "cluster port validation" `Quick test_cluster_port_validation;
    Alcotest.test_case "codec v1 golden bytes" `Quick test_v1_golden_bytes;
    Alcotest.test_case "codec v2 batch roundtrip" `Quick test_v2_batch_roundtrip;
    Alcotest.test_case "codec v2 oversized batch splits" `Quick test_v2_batch_split;
    Alcotest.test_case "codec v2 truncated batch" `Quick test_v2_truncated_batch;
    Alcotest.test_case "codec v2 bad CRC rejects one frame" `Quick test_v2_bad_crc;
    Alcotest.test_case "codec v1/v2 downgrade matrix" `Quick test_v2_downgrade_matrix;
    Alcotest.test_case "codec recv buffer size" `Quick test_recv_buffer_size;
    Alcotest.test_case "driver survives closed ports mid-run" `Quick
      test_driver_closed_ports;
    Alcotest.test_case "driver v2<->v2 negotiation and batching" `Quick
      test_driver_v2_interop;
    Alcotest.test_case "driver v2<->v1 per-peer downgrade" `Quick
      test_driver_v1_v2_interop;
    Alcotest.test_case "nodehost control commands" `Quick test_nodehost_commands;
    Alcotest.test_case "nodehost view report line" `Quick test_nodehost_view_line;
    Alcotest.test_case "nodehost line reader" `Quick test_line_reader;
    Alcotest.test_case "spawner forks real node-host processes" `Quick
      test_spawner_smoke;
  ]
