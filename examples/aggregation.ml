(* Gossip-based aggregation on top of S&F peer sampling.

   The paper's introduction motivates membership views as the substrate for
   "gathering statistics [and] gossip-based aggregation".  This example runs
   push-sum averaging (Kempe, Dobra, Gehrke): every node starts with a
   private value; each aggregation step it halves its (sum, weight) mass and
   ships one half to a peer sampled from its S&F view.  The ratio sum/weight
   converges to the global average.

   S&F keeps supplying fresh, near-uniform peers (Properties M3-M5) while
   the membership itself churns underneath; aggregation messages share the
   network's loss rate, so lost mass biases the estimate slightly — the
   example quantifies that too.

   Run with: dune exec examples/aggregation.exe *)

module Runner = Sf_core.Runner
module Sampling = Sf_core.Sampling

type mass = { mutable sum : float; mutable weight : float }

let run_push_sum ~seed ~n ~loss_rate ~steps =
  let thresholds = Sf_analysis.Thresholds.select ~d_hat:20 ~delta:0.01 in
  let config = Sf_analysis.Thresholds.to_config thresholds in
  let topology =
    Sf_core.Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:thresholds.d_hat
  in
  let runner = Runner.create ~seed ~n ~loss_rate ~config ~topology () in
  Runner.run_rounds runner 100;
  (* Private values: node i holds i, so the true average is (n-1)/2. *)
  let true_average = float_of_int (n - 1) /. 2. in
  let masses = Array.init n (fun i -> { sum = float_of_int i; weight = 1. }) in
  let rng = Sf_prng.Rng.create (seed + 1) in
  let estimate_spread () =
    let worst = ref 0. in
    Array.iter
      (fun m ->
        if m.weight > 1e-9 then
          worst := Float.max !worst (Float.abs ((m.sum /. m.weight) -. true_average)))
      masses;
    !worst /. true_average
  in
  Fmt.pr "push-sum over %d nodes, loss %.0f%%, true average %.1f@." n
    (100. *. loss_rate) true_average;
  for step = 1 to steps do
    (* Keep the membership evolving underneath the aggregation. *)
    Runner.run_rounds runner 1;
    for i = 0 to n - 1 do
      match Sampling.sample runner rng ~node_id:i with
      | None -> ()
      | Some peer when peer >= n -> () (* sampled a joiner outside the array *)
      | Some peer ->
        let m = masses.(i) in
        let half_sum = m.sum /. 2. and half_weight = m.weight /. 2. in
        m.sum <- half_sum;
        m.weight <- half_weight;
        (* The shipped half travels over the same lossy channel. *)
        if not (Sf_prng.Rng.bernoulli rng loss_rate) then begin
          masses.(peer).sum <- masses.(peer).sum +. half_sum;
          masses.(peer).weight <- masses.(peer).weight +. half_weight
        end
    done;
    if step land (step - 1) = 0 || step = steps then
      Fmt.pr "  step %3d: worst relative error %.5f@." step (estimate_spread ())
  done;
  estimate_spread ()

let () =
  let lossless = run_push_sum ~seed:11 ~n:1000 ~loss_rate:0. ~steps:64 in
  Fmt.pr "@.";
  let lossy = run_push_sum ~seed:12 ~n:1000 ~loss_rate:0.01 ~steps:64 in
  Fmt.pr "@.final worst relative error: %.5f lossless, %.5f at 1%% loss@." lossless lossy;
  Fmt.pr "(loss destroys push-sum mass, so the residual error reflects the@\n\
          \ transport, not the sampling: S&F kept handing out useful peers.)@."
