(* Directed multigraph representing a membership graph (section 4 of the
   paper): vertices are nodes, and an edge (u,v) with multiplicity m means v
   appears m times in u's local view.  Both adjacency directions are indexed
   so indegree queries are O(1) amortized. *)

module Int_table = Hashtbl.Make (struct
  type t = int
  let equal = Int.equal
  let hash = Sf_prng.Splitmix64.mix_int
end)

type t = {
  (* out.(u) maps v -> multiplicity of edge (u,v). *)
  out_edges : int Int_table.t Int_table.t;
  in_edges : int Int_table.t Int_table.t;
  mutable edge_count : int;
}

let create ?(initial_capacity = 64) () =
  {
    out_edges = Int_table.create initial_capacity;
    in_edges = Int_table.create initial_capacity;
    edge_count = 0;
  }

let ensure_vertex t u =
  if not (Int_table.mem t.out_edges u) then begin
    Int_table.replace t.out_edges u (Int_table.create 8);
    Int_table.replace t.in_edges u (Int_table.create 8)
  end

let mem_vertex t u = Int_table.mem t.out_edges u

let vertex_count t = Int_table.length t.out_edges

let edge_count t = t.edge_count

let vertices t = Int_table.fold (fun u _ acc -> u :: acc) t.out_edges []

let bump tbl key delta =
  let v = delta + Option.value ~default:0 (Int_table.find_opt tbl key) in
  if v < 0 then invalid_arg "Digraph: removing a non-existent edge";
  if v = 0 then Int_table.remove tbl key else Int_table.replace tbl key v

let add_edge t u v =
  ensure_vertex t u;
  ensure_vertex t v;
  bump (Int_table.find t.out_edges u) v 1;
  bump (Int_table.find t.in_edges v) u 1;
  t.edge_count <- t.edge_count + 1

let remove_edge t u v =
  match Int_table.find_opt t.out_edges u with
  | None -> invalid_arg "Digraph.remove_edge: no such vertex"
  | Some adj ->
    bump adj v (-1);
    bump (Int_table.find t.in_edges v) u (-1);
    t.edge_count <- t.edge_count - 1

let multiplicity t u v =
  match Int_table.find_opt t.out_edges u with
  | None -> 0
  | Some adj -> Option.value ~default:0 (Int_table.find_opt adj v)

let out_degree t u =
  match Int_table.find_opt t.out_edges u with
  | None -> 0
  | Some adj -> Int_table.fold (fun _ m acc -> acc + m) adj 0

let in_degree t u =
  match Int_table.find_opt t.in_edges u with
  | None -> 0
  | Some adj -> Int_table.fold (fun _ m acc -> acc + m) adj 0

(* Sum degree ds(u) = d(u) + 2 din(u), Definition 6.1. *)
let sum_degree t u = out_degree t u + (2 * in_degree t u)

let out_neighbors t u =
  match Int_table.find_opt t.out_edges u with
  | None -> []
  | Some adj -> Int_table.fold (fun v _ acc -> v :: acc) adj []

let in_neighbors t u =
  match Int_table.find_opt t.in_edges u with
  | None -> []
  | Some adj -> Int_table.fold (fun v _ acc -> v :: acc) adj []

let iter_edges f t =
  Int_table.iter
    (fun u adj -> Int_table.iter (fun v m -> f u v m) adj)
    t.out_edges

let self_loop_count t =
  let acc = ref 0 in
  iter_edges (fun u v m -> if u = v then acc := !acc + m) t;
  !acc

(* Count of "redundant parallel" edge instances: for each (u,v) with
   multiplicity m >= 2, m-1 instances are duplicates (the paper counts all
   but one of mutually dependent edges as dependent). *)
let parallel_edge_count t =
  let acc = ref 0 in
  iter_edges (fun _ _ m -> if m >= 2 then acc := !acc + m - 1) t;
  !acc

(* Weak connectivity by union-find over undirected reachability. *)
module Union_find = struct
  type t = { parent : int Int_table.t; rank : int Int_table.t }

  let create () = { parent = Int_table.create 64; rank = Int_table.create 64 }

  let rec find t x =
    match Int_table.find_opt t.parent x with
    | None ->
      Int_table.replace t.parent x x;
      Int_table.replace t.rank x 0;
      x
    | Some p when p = x -> x
    | Some p ->
      let root = find t p in
      Int_table.replace t.parent x root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then begin
      let ka = Int_table.find t.rank ra and kb = Int_table.find t.rank rb in
      if ka < kb then Int_table.replace t.parent ra rb
      else if ka > kb then Int_table.replace t.parent rb ra
      else begin
        Int_table.replace t.parent rb ra;
        Int_table.replace t.rank ra (ka + 1)
      end
    end
end

let weakly_connected_components t =
  let uf = Union_find.create () in
  Int_table.iter (fun u _ -> ignore (Union_find.find uf u)) t.out_edges;
  iter_edges (fun u v _ -> Union_find.union uf u v) t;
  let components = Int_table.create 16 in
  Int_table.iter
    (fun u _ ->
      let root = Union_find.find uf u in
      let members = Option.value ~default:[] (Int_table.find_opt components root) in
      Int_table.replace components root (u :: members))
    t.out_edges;
  Int_table.fold (fun _ members acc -> members :: acc) components []

let is_weakly_connected t =
  vertex_count t <= 1 || List.length (weakly_connected_components t) = 1

let out_degree_array t =
  let vs = vertices t in
  Array.of_list (List.map (out_degree t) vs)

let in_degree_array t =
  let vs = vertices t in
  Array.of_list (List.map (in_degree t) vs)

type degree_statistics = {
  out_degrees : Sf_stats.Summary.t;
  in_degrees : Sf_stats.Summary.t;
  sum_degrees : Sf_stats.Summary.t;
  self_loops : int;
  parallel_edges : int;
}

let degree_statistics t =
  let outs = Sf_stats.Summary.create () in
  let ins = Sf_stats.Summary.create () in
  let sums = Sf_stats.Summary.create () in
  List.iter
    (fun u ->
      Sf_stats.Summary.add_int outs (out_degree t u);
      Sf_stats.Summary.add_int ins (in_degree t u);
      Sf_stats.Summary.add_int sums (sum_degree t u))
    (vertices t);
  {
    out_degrees = outs;
    in_degrees = ins;
    sum_degrees = sums;
    self_loops = self_loop_count t;
    parallel_edges = parallel_edge_count t;
  }

let copy t =
  let g = create () in
  Int_table.iter (fun u _ -> ensure_vertex g u) t.out_edges;
  iter_edges (fun u v m -> for _ = 1 to m do add_edge g u v done) t;
  g

let equal a b =
  vertex_count a = vertex_count b
  && edge_count a = edge_count b
  && begin
    let same = ref true in
    iter_edges (fun u v m -> if multiplicity b u v <> m then same := false) a;
    !same
  end

let pp ppf t =
  Fmt.pf ppf "@[<v>digraph: %d vertices, %d edges@," (vertex_count t) (edge_count t);
  let vs = List.sort compare (vertices t) in
  List.iter
    (fun u ->
      let targets = List.sort compare (out_neighbors t u) in
      Fmt.pf ppf "  %d -> [%a]@," u
        Fmt.(list ~sep:(any "; ") (fun ppf v -> pf ppf "%d(x%d)" v (multiplicity t u v)))
        targets)
    vs;
  Fmt.pf ppf "@]"
