(* Declarative fault plans: a loss process plus timed fault windows, with a
   compact textual syntax shared by `sfg storm`, `sfg check --scenario`,
   the bench harness and the CI fault matrix.  Window times are in rounds
   (the paper's unit); the drivers map their own clocks onto rounds. *)

type fault =
  | Partition of { parts : int }
  | Crash of { first : int; last : int }
  | Delay of { factor : float }
  | Corrupt of { rate : float }

type window = { start : float; stop : float; fault : fault }

type t = { loss : Loss.model; windows : window list }

let default = { loss = Loss.Iid; windows = [] }

let validate_window w =
  if w.start < 0. || Float.is_nan w.start then
    invalid_arg (Fmt.str "Scenario: window start %g negative" w.start);
  if not (w.stop > w.start) then
    invalid_arg (Fmt.str "Scenario: window [%g, %g) is empty" w.start w.stop);
  match w.fault with
  | Partition { parts } ->
    if parts < 2 then invalid_arg (Fmt.str "Scenario: partition into %d parts" parts)
  | Crash { first; last } ->
    if first < 0 || last < first then
      invalid_arg (Fmt.str "Scenario: crash range %d-%d" first last)
  | Delay { factor } ->
    if not (factor > 0.) then
      invalid_arg (Fmt.str "Scenario: delay factor %g not positive" factor)
  | Corrupt { rate } ->
    if rate < 0. || rate > 1. || Float.is_nan rate then
      invalid_arg (Fmt.str "Scenario: corruption rate %g outside [0,1]" rate)

(* --- Rendering --- *)

let fault_to_string = function
  | Partition { parts } -> Fmt.str "%d" parts
  | Crash { first; last } -> Fmt.str "%d-%d" first last
  | Delay { factor } -> Fmt.str "%g" factor
  | Corrupt { rate } -> Fmt.str "%g" rate

let fault_kind = function
  | Partition _ -> "partition"
  | Crash _ -> "crash"
  | Delay _ -> "delay"
  | Corrupt _ -> "corrupt"

let window_to_string w =
  Fmt.str "%s@%g-%g:%s" (fault_kind w.fault) w.start w.stop (fault_to_string w.fault)

(* List-level validation: windows of the same class are allowed to overlap
   in time — active partitions compose by OR, delay factors multiply,
   corruption takes the max, and the recovery tests pin that semantics —
   {e except} when both windows carry a node range ([Crash]) and the
   ranges intersect too: two crash windows freezing an overlapping id
   range over an overlapping interval are almost always a typo for one
   window, and the "resume at window end" rule would silently wake nodes
   the other window still holds down. *)
let validate_windows windows =
  List.iter validate_window windows;
  let times_overlap a b = a.start < b.stop && b.start < a.stop in
  let rec pairwise = function
    | [] -> ()
    | w :: rest ->
      List.iter
        (fun w' ->
          match (w.fault, w'.fault) with
          | Crash { first; last }, Crash { first = first'; last = last' }
            when times_overlap w w' && first <= last' && first' <= last ->
            invalid_arg
              (Fmt.str
                 "Scenario: crash windows %s and %s overlap in time on \
                  intersecting node ranges"
                 (window_to_string w) (window_to_string w'))
          | _ -> ())
        rest;
      pairwise rest
  in
  pairwise windows

let make ?(loss = Loss.Iid) ?(windows = []) () =
  validate_windows windows;
  { loss; windows }

let loss_to_string = function
  | Loss.Iid -> "iid"
  | Loss.Gilbert_elliott g ->
    Fmt.str "ge:%g:%g" (Loss.stationary_loss g) (Loss.mean_burst_length g)
  | Loss.Per_link _ -> "per-link"

let to_string t =
  String.concat ";" (loss_to_string t.loss :: List.map window_to_string t.windows)

let pp ppf t = Fmt.string ppf (to_string t)

(* --- Parsing --- *)

let split_on sep s = String.split_on_char sep s |> List.map String.trim

let parse_float name s =
  match float_of_string_opt s with
  | Some f when not (Float.is_nan f) -> Ok f
  | _ -> Error (Fmt.str "%s: not a number (%S)" name s)

let parse_int name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Fmt.str "%s: not an integer (%S)" name s)

let ( let* ) = Result.bind

let parse_range name s =
  match split_on '-' s with
  | [ a; b ] ->
    let* lo = parse_int name a in
    let* hi = parse_int name b in
    Ok (lo, hi)
  | _ -> Error (Fmt.str "%s: expected LO-HI, got %S" name s)

(* Structural parsing only: shapes and number syntax.  All semantic range
   checks (empty windows, parts < 2, inverted crash ranges, ...) run
   through {!validate_window} below, so parsing and programmatic
   construction share one validation path and one set of messages. *)
let parse_fault kind params =
  match kind with
  | "partition" ->
    let* parts = parse_int "partition parts" params in
    Ok (Partition { parts })
  | "crash" ->
    let* first, last = parse_range "crash range" params in
    Ok (Crash { first; last })
  | "delay" ->
    let* factor = parse_float "delay factor" params in
    Ok (Delay { factor })
  | "corrupt" ->
    let* rate = parse_float "corruption rate" params in
    Ok (Corrupt { rate })
  | other -> Error (Fmt.str "unknown fault kind %S" other)

let checked f = match f () with v -> Ok v | exception Invalid_argument m -> Error m

let parse_window item =
  match split_on '@' item with
  | [ kind; rest ] -> (
    match split_on ':' rest with
    | [ times; params ] ->
      let* start, stop =
        match split_on '-' times with
        | [ a; b ] ->
          let* start = parse_float "window start" a in
          let* stop = parse_float "window stop" b in
          Ok (start, stop)
        | _ -> Error (Fmt.str "window times: expected START-STOP, got %S" times)
      in
      let* fault = parse_fault kind params in
      let w = { start; stop; fault } in
      let* () = checked (fun () -> validate_window w) in
      Ok w
    | _ -> Error (Fmt.str "window %S: expected KIND@START-STOP:PARAMS" item))
  | _ -> Error (Fmt.str "item %S: expected KIND@START-STOP:PARAMS" item)

let parse_loss item =
  match split_on ':' item with
  | [ "iid" ] -> Some (Ok Loss.Iid)
  | "ge" :: rest -> (
    match rest with
    | [ mean; burst ] ->
      Some
        (let* mean_loss = parse_float "ge mean loss" mean in
         let* mean_burst = parse_float "ge mean burst" burst in
         match Loss.gilbert_elliott ~mean_loss ~mean_burst () with
         | ge -> Ok (Loss.Gilbert_elliott ge)
         | exception Invalid_argument m -> Error m)
    | _ -> Some (Error (Fmt.str "ge: expected ge:MEAN:BURST, got %S" item)))
  | _ -> None

let of_string s =
  let items = split_on ';' s |> List.filter (fun i -> i <> "") in
  let rec go loss windows = function
    | [] ->
      let windows = List.rev windows in
      let* () = checked (fun () -> validate_windows windows) in
      Ok { loss = Option.value loss ~default:Loss.Iid; windows }
    | item :: rest -> (
      match parse_loss item with
      | Some (Error e) -> Error e
      | Some (Ok l) ->
        if Option.is_some loss then Error "more than one loss model in scenario"
        else go (Some l) windows rest
      | None ->
        let* w = parse_window item in
        go loss (w :: windows) rest)
  in
  go None [] items
