(* Robustness experiments extending the paper's model where it explicitly
   stops:

   - N1: non-uniform message loss (section 4.1: "nonuniform loss occurs in
     practice, it is more difficult to model and analyze") — a population
     split into well-connected and lossy nodes with the same mean loss as a
     uniform baseline.
   - CH1: session-based churn (Poisson arrivals, exponential vs heavy-tailed
     Pareto lifetimes at equal mean) with the section 5 recovery rule.
   - R1: rumor dissemination over the evolving views (the Property M1
     motivation), S&F vs a static ring of the same degree.
   - U1: the real-UDP deployment cross-checked against the simulator. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Census = Sf_core.Census
module Summary = Sf_stats.Summary

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

(* --- N1: non-uniform loss --- *)

let nonuniform_loss () =
  Output.section "N1" "Non-uniform message loss (beyond section 4.1's model)";
  Fmt.pr
    "n=1000, mean loss 5%% in both systems.  Uniform: every message drops@\n\
     with p=0.05.  Split: messages to the 500 \"lossy\" nodes drop with@\n\
     p=0.098, to the 500 \"clean\" nodes with p=0.002.  600 rounds.@.";
  let n = 1000 in
  let topology seed = Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:30 in
  let uniform = Runner.create ~seed:201 ~n ~loss_rate:0.05 ~config ~topology:(topology 1) () in
  let lossy_node id = id < n && id mod 2 = 0 in
  let split =
    Runner.create ~seed:202 ~n ~loss_rate:0.05
      ~destination_loss:(fun dst -> if lossy_node dst then 0.098 else 0.002)
      ~config ~topology:(topology 2) ()
  in
  Runner.run_rounds uniform 300;
  Runner.run_rounds split 300;
  let base_u = Runner.world_counters uniform in
  let base_s = Runner.world_counters split in
  Runner.run_rounds uniform 300;
  Runner.run_rounds split 300;
  let rates_u = Runner.rates_since uniform base_u in
  let rates_s = Runner.rates_since split base_s in
  (* Per-class degree statistics in the split system. *)
  let class_summary pred =
    let outs = Summary.create () and ins = Summary.create () in
    let indegree = Properties.indegree_samples split in
    let live = Runner.live_nodes split in
    Array.iteri
      (fun i node ->
        if pred node.Protocol.node_id then begin
          Summary.add_int outs (Protocol.degree node);
          Summary.add_int ins indegree.(i)
        end)
      live;
    (outs, ins)
  in
  let lossy_out, lossy_in = class_summary lossy_node in
  let clean_out, clean_in = class_summary (fun id -> not (lossy_node id)) in
  let all_u_out = Properties.outdegree_summary uniform in
  Output.table
    [ "population"; "outdegree"; "indegree"; "dup rate"; "loss+del" ]
    [
      [
        "uniform 5% (all)";
        Fmt.str "%.1f±%.1f" (Summary.mean all_u_out) (Summary.std all_u_out);
        "-";
        Output.f4 rates_u.Runner.duplication;
        Output.f4 (rates_u.Runner.loss +. rates_u.Runner.deletion);
      ];
      [
        "split: lossy half (9.8%)";
        Fmt.str "%.1f±%.1f" (Summary.mean lossy_out) (Summary.std lossy_out);
        Fmt.str "%.1f±%.1f" (Summary.mean lossy_in) (Summary.std lossy_in);
        "-";
        "-";
      ];
      [
        "split: clean half (0.2%)";
        Fmt.str "%.1f±%.1f" (Summary.mean clean_out) (Summary.std clean_out);
        Fmt.str "%.1f±%.1f" (Summary.mean clean_in) (Summary.std clean_in);
        "-";
        "-";
      ];
      [
        "split (whole system)";
        "-";
        "-";
        Output.f4 rates_s.Runner.duplication;
        Output.f4 (rates_s.Runner.loss +. rates_s.Runner.deletion);
      ];
    ];
  let census_u = Properties.independence_census uniform in
  let census_s = Properties.independence_census split in
  Fmt.pr "  alpha: uniform %.3f, split %.3f;  connected: uniform %b, split %b@."
    census_u.Census.alpha census_s.Census.alpha
    (Properties.is_weakly_connected uniform)
    (Properties.is_weakly_connected split);
  Output.check "Lemma 6.6 balance holds globally under non-uniform loss"
    (Float.abs (rates_s.Runner.duplication -. rates_s.Runner.loss -. rates_s.Runner.deletion)
    < 0.01);
  Output.check "lossy nodes receive fewer messages, hence lower outdegree"
    (Summary.mean lossy_out < Summary.mean clean_out -. 1.);
  Output.check "the system stays connected despite the lossy half"
    (Properties.is_weakly_connected split)

(* --- CH1: session churn --- *)

let session_churn () =
  Output.section "CH1" "Session-based churn: exponential vs Pareto lifetimes";
  Fmt.pr
    "Starting population 600; Poisson arrivals at 3 joins/round; mean@\n\
     session 200 rounds for both distributions (Pareto shape 1.5 has a@\n\
     heavy tail: many brief sessions, a few very long ones).  400 rounds@\n\
     with the section 5 recovery rule on.@.";
  let run lifetime seed =
    let n = 600 in
    let topology = Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n ~out_degree:30 in
    let r = Runner.create ~seed ~n ~loss_rate:0.01 ~config ~topology () in
    Runner.run_rounds r 100;
    let sessions =
      Sf_core.Sessions.create ~runner:r ~seed:(seed + 2) ~lifetime ~arrival_rate:3. ()
    in
    Sf_core.Sessions.run sessions ~rounds:400;
    let stats = Sf_core.Sessions.statistics sessions in
    let outs = Properties.outdegree_summary r in
    let census = Properties.independence_census r in
    (stats, outs, census, Properties.is_weakly_connected r, List.length (Runner.isolated_nodes r))
  in
  let exp_stats, exp_out, exp_census, exp_conn, exp_iso =
    run (Sf_core.Sessions.Exponential 200.) 301
  in
  let par_stats, par_out, par_census, par_conn, par_iso =
    run (Sf_core.Sessions.Pareto { shape = 1.5; minimum = 200. /. 3. }) 302
  in
  let row name (stats : Sf_core.Sessions.statistics) outs census connected isolated =
    [
      name;
      Output.i stats.Sf_core.Sessions.population;
      Output.i stats.Sf_core.Sessions.joins;
      Output.i stats.Sf_core.Sessions.leaves;
      Output.i stats.Sf_core.Sessions.reconnections;
      Fmt.str "%.1f±%.1f" (Summary.mean outs) (Summary.std outs);
      Output.f3 census.Census.alpha;
      string_of_bool connected;
      Output.i isolated;
    ]
  in
  Output.table
    [ "lifetimes"; "population"; "joins"; "leaves"; "reconn"; "outdegree"; "alpha"; "connected"; "isolated" ]
    [
      row "exponential (mean 200r)" exp_stats exp_out exp_census exp_conn exp_iso;
      row "Pareto 1.5 (mean 200r)" par_stats par_out par_census par_conn par_iso;
    ];
  Output.check "healthy degrees under both churn models"
    (Summary.mean exp_out > 18. && Summary.mean par_out > 18.);
  Output.check "no isolated nodes with recovery on" (exp_iso = 0 && par_iso = 0);
  Output.check "both populations hover near arrivals x mean lifetime"
    (abs (exp_stats.Sf_core.Sessions.population - 600) < 200
    && abs (par_stats.Sf_core.Sessions.population - 600) < 250)

(* --- R1: dissemination --- *)

let dissemination () =
  Output.section "R1" "Rumor dissemination over evolving views (Property M1 motivation)";
  Fmt.pr
    "Push epidemic, fanout 2, loss 5%%: rounds for one rumor to reach 99%%@\n\
     of 1000 nodes, S&F steady-state views vs a static ring of the same@\n\
     degree (log-n vs linear spreading).@.";
  let n = 1000 in
  (* S&F views. *)
  let topology = Topology.regular (Sf_prng.Rng.create 401) ~n ~out_degree:30 in
  let r = Runner.create ~seed:402 ~n ~loss_rate:0.05 ~config ~topology () in
  Runner.run_rounds r 200;
  let rng = Sf_prng.Rng.create 403 in
  let sf_trace =
    Sf_spread.Dissemination.spread r rng ~fanout:2 ~loss_rate:0.05 ~source:0 ()
  in
  (* Ring views: an S&F-shaped system that never runs the protocol, views
     fixed to ring neighbors. *)
  let ring_topology = Topology.ring ~n ~out_degree:30 in
  let ring = Runner.create ~seed:404 ~n ~loss_rate:0.05 ~config ~topology:ring_topology () in
  let ring_rng = Sf_prng.Rng.create 405 in
  (* Freeze the membership: spread drives rounds, so give the ring a
     dissemination that ignores membership evolution by using fanout over
     static views. Runner.run_rounds inside spread will evolve it — to keep
     the ring static we disable initiations by using the spread over a
     zero-loss runner that we reset... simpler: measure the ring with the
     protocol running too; the ring then *heals* into an expander, so we
     report both the crawl before healing (early coverage) and the healed
     spread. *)
  let ring_trace =
    Sf_spread.Dissemination.spread ring ring_rng ~fanout:2 ~loss_rate:0.05 ~source:0 ()
  in
  let show name (t : Sf_spread.Dissemination.trace) =
    [
      name;
      (match t.Sf_spread.Dissemination.rounds_to_half with Some r -> Output.i r | None -> ">200");
      (match t.Sf_spread.Dissemination.rounds_to_all with Some r -> Output.i r | None -> ">200");
      Output.i t.Sf_spread.Dissemination.pushes;
    ]
  in
  Output.table
    [ "views"; "rounds to 50%"; "rounds to 99%"; "pushes" ]
    [ show "S&F steady state" sf_trace; show "ring start (healing)" ring_trace ];
  Output.subsection "coverage curve (S&F views)";
  Sf_stats.Ascii_plot.series Fmt.stdout
    ("infected fraction", sf_trace.Sf_spread.Dissemination.coverage);
  (match sf_trace.Sf_spread.Dissemination.rounds_to_all with
  | Some rounds ->
    Output.check
      (Fmt.str "rumor reaches 99%% in %d rounds ~ O(log n) (log2 1000 = 10)" rounds)
      (rounds <= 30)
  | None -> Output.check "rumor reaches 99%" false);
  let sf_half =
    Option.value ~default:max_int sf_trace.Sf_spread.Dissemination.rounds_to_half
  in
  let ring_half =
    Option.value ~default:max_int ring_trace.Sf_spread.Dissemination.rounds_to_half
  in
  Output.check "S&F views spread at least as fast as the healing ring"
    (sf_half <= ring_half)

(* --- U1: UDP deployment cross-check --- *)

let udp_crosscheck () =
  Output.section "U1" "Real-UDP deployment vs simulator";
  Fmt.pr
    "96 nodes on loopback UDP datagrams (s=18, dL=4, 5%% injected loss,@\n\
     4 wall-clock seconds) against the sequential simulator at matched@\n\
     parameters and action count.@.";
  let t = Sf_analysis.Thresholds.select ~d_hat:12 ~delta:0.01 in
  let small_config = Sf_analysis.Thresholds.to_config t in
  let n = 96 in
  let topology = Topology.regular (Sf_prng.Rng.create 501) ~n ~out_degree:t.d_hat in
  let cluster =
    Sf_net.Cluster.create ~period:0.004 ~base_port:46000 ~n ~config:small_config
      ~loss_rate:0.05 ~seed:502 ~topology ()
  in
  Fun.protect
    ~finally:(fun () -> Sf_net.Cluster.shutdown cluster)
    (fun () ->
      Sf_net.Cluster.run cluster ~duration:4.0;
      let stats = Sf_net.Cluster.statistics cluster in
      let rounds = stats.Sf_net.Cluster.actions / n in
      let sim = Runner.create ~seed:503 ~n ~loss_rate:0.05 ~config:small_config ~topology () in
      Runner.run_rounds sim rounds;
      let udp_out = Sf_net.Cluster.outdegree_summary cluster in
      let sim_out = Properties.outdegree_summary sim in
      let udp_census = Sf_net.Cluster.independence_census cluster in
      let sim_census = Properties.independence_census sim in
      Output.table
        [ "runtime"; "actions"; "outdegree"; "alpha"; "connected" ]
        [
          [
            "UDP datagrams";
            Output.i stats.Sf_net.Cluster.actions;
            Fmt.str "%.2f±%.2f" (Summary.mean udp_out) (Summary.std udp_out);
            Output.f3 udp_census.Census.alpha;
            string_of_bool (Sf_net.Cluster.is_weakly_connected cluster);
          ];
          [
            "simulator";
            Output.i (Runner.action_count sim);
            Fmt.str "%.2f±%.2f" (Summary.mean sim_out) (Summary.std sim_out);
            Output.f3 sim_census.Census.alpha;
            string_of_bool (Properties.is_weakly_connected sim);
          ];
        ];
      Fmt.pr "  UDP: %d datagrams sent, %d dropped (injected), %d received, %d codec errors@."
        stats.Sf_net.Cluster.datagrams_sent stats.Sf_net.Cluster.datagrams_dropped
        stats.Sf_net.Cluster.datagrams_received stats.Sf_net.Cluster.decode_errors;
      Output.check "no codec or socket errors over the real transport"
        (stats.Sf_net.Cluster.decode_errors = 0 && stats.Sf_net.Cluster.send_errors = 0);
      Output.check
        (Fmt.str "degree behaviour matches the simulator (%.1f vs %.1f)"
           (Summary.mean udp_out) (Summary.mean sim_out))
        (Float.abs (Summary.mean udp_out -. Summary.mean sim_out) < 2.))
