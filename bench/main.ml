(* Reproduction harness: regenerates every figure and table of the paper's
   evaluation (see DESIGN.md for the experiment index), then times the
   machinery with Bechamel micro-benchmarks.

   Every run also writes BENCH_obs.json: per-section wall times plus — when
   the OBS section ran — the observability payload (Lemma 6.6 balance,
   degree-marginal TVD, instrumentation overhead, metrics snapshot).  The
   resilience sections contribute to BENCH_resil.json, rewritten after each
   section so a partial run still leaves a valid artifact.

   Artifact payloads flow through section return values into driver-local
   state — no module-level refs (sf_analyze's shared-state inventory gates
   on that).

   Run everything:          dune exec bench/main.exe
   Run selected sections:   dune exec bench/main.exe -- F6.1 F6.3
   List sections:           dune exec bench/main.exe -- --list *)

module Json = Sf_obs.Json

(* What a section hands back to the driver, beyond stdout. *)
type payload =
  | Quiet
  | Obs of Json.t  (* the OBS observability payload for BENCH_obs.json *)
  | Resil of string * Json.t  (* one BENCH_resil.json section *)
  | Scale of Json.t  (* the scale ladder, written to BENCH_scale.json *)
  | Sstorm of Json.t  (* the chaos-at-scale gate, written to BENCH_sstorm.json *)
  | Spread of Json.t  (* the dissemination grid, written to BENCH_spread.json *)
  | Cluster of Json.t  (* the multi-process gate, written to BENCH_cluster.json *)

let quiet f () =
  f ();
  Quiet

let resil f () =
  let id, json = f () in
  Resil (id, json)

let experiments =
  [
    ("F5.2", quiet Exp_degrees.fig_5_2);
    ("F6.1", quiet Exp_degrees.fig_6_1);
    ("T6.3", quiet Exp_degrees.table_6_3);
    ("F6.3", quiet Exp_degrees.fig_6_3);
    ("L6.6", quiet Exp_degrees.table_6_7);
    ("F6.4", quiet Exp_churn.fig_6_4);
    ("C6.14", quiet Exp_churn.table_6_14);
    ("L7.6", quiet Exp_independence.table_7_6);
    ("F7.1", quiet Exp_independence.fig_7_1);
    ("T7.4", quiet Exp_independence.table_7_4);
    ("L7.15", quiet Exp_independence.table_7_15);
    ("L7.5", quiet Exp_independence.table_7_5);
    ("B1", quiet Exp_baselines.table_baselines);
    ("B2", quiet Exp_baselines.table_random_walk);
    ("A1", quiet Exp_ablations.ablation_scheduler);
    ("A2", quiet Exp_ablations.ablation_sender_weighting);
    ("A3", quiet Exp_ablations.ablation_duplication);
    ("A4", quiet Exp_ablations.ablation_variants);
    ("A5", quiet Exp_ablations.ablation_reconnection);
    ("G1", quiet Exp_extensions.graph_quality);
    ("M1", quiet Exp_extensions.degree_mc_mixing);
    ("B3", quiet Exp_extensions.minwise_vs_views);
    ("B4", quiet Exp_extensions.cyclon_age_rule);
    ("P1", quiet Exp_extensions.partition_healing);
    ("FA1", quiet Exp_faults.bursty_vs_iid);
    ("FA2", quiet Exp_faults.fault_recovery);
    ("N1", quiet Exp_robustness.nonuniform_loss);
    ("CH1", quiet Exp_robustness.session_churn);
    ("R1", quiet Exp_robustness.dissemination);
    ("U1", quiet Exp_robustness.udp_crosscheck);
    ("OBS", fun () -> Obs (Exp_obs.run ()));
    ("RES1", resil Exp_resilience.fig_res1);
    ("RES2", resil Exp_resilience.fig_res2);
    ("RSOAK", resil Exp_resilience.rsoak);
    ("SCALE", fun () -> Scale (Exp_scale.run ~smoke:false ()));
    ("SCALE10", fun () -> Scale (Exp_scale.run ~smoke:true ()));
    ("SSTORM", fun () -> Sstorm (Exp_scale.sstorm ()));
    ("SPREAD", fun () -> Spread (Exp_spread.run ~smoke:false ()));
    ("SPREAD10", fun () -> Spread (Exp_spread.run ~smoke:true ()));
    ("CLUSTER", fun () -> Cluster (Exp_cluster.run ()));
    ("SPEED", quiet Speed.run);
  ]

let artifact_path = "BENCH_obs.json"
let resil_artifact_path = "BENCH_resil.json"
let scale_artifact_path = "BENCH_scale.json"
let sstorm_artifact_path = "BENCH_sstorm.json"
let spread_artifact_path = "BENCH_spread.json"
let cluster_artifact_path = "BENCH_cluster.json"

let write_json path json =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string json);
      output_string oc "\n")

let write_artifact timings obs =
  let json =
    Json.Obj
      [
        ( "sections",
          Json.List
            (List.map
               (fun (id, seconds) ->
                 Json.Obj
                   [
                     ("id", Json.String id);
                     ("seconds", Json.Float seconds);
                   ])
               timings) );
        ("obs", obs);
      ]
  in
  write_json artifact_path json;
  Fmt.pr "@.Wrote %s (%d sections).@." artifact_path (List.length timings)

(* Run the sections in order, collecting wall times and payloads.  The
   tree's single wall clock lives in Sf_obs.Clock. *)
let run_sections sections =
  let obs_payload = ref Json.Null in
  let resil_sections = ref [] in
  let timings =
    List.map
      (fun (id, f) ->
        let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
        let payload = f () in
        let seconds = elapsed () in
        (match payload with
        | Quiet -> ()
        | Obs json -> obs_payload := json
        | Resil (key, json) ->
          resil_sections :=
            (key, json) :: List.filter (fun (k, _) -> k <> key) !resil_sections;
          write_json resil_artifact_path (Json.Obj (List.rev !resil_sections));
          Fmt.pr "  (updated %s)@." resil_artifact_path
        | Scale json ->
          write_json scale_artifact_path json;
          Fmt.pr "  (wrote %s)@." scale_artifact_path
        | Sstorm json ->
          write_json sstorm_artifact_path json;
          Fmt.pr "  (wrote %s)@." sstorm_artifact_path
        | Spread json ->
          write_json spread_artifact_path json;
          Fmt.pr "  (wrote %s)@." spread_artifact_path
        | Cluster json ->
          write_json cluster_artifact_path json;
          Fmt.pr "  (wrote %s)@." cluster_artifact_path);
        Fmt.pr "  (%s finished in %.1fs)@." id seconds;
        (id, seconds))
      sections
  in
  write_artifact timings !obs_payload

let () =
  let args =
    match Array.to_list Sys.argv with [] -> [] | _exe :: rest -> rest
  in
  match args with
  | [ "--list" ] ->
    List.iter (fun (id, _) -> Fmt.pr "%s@." id) experiments
  | [] ->
    Fmt.pr "Send & Forget reproduction harness (PODC'09 / SICOMP'10).@.";
    run_sections experiments
  | selected ->
    run_sections
      (List.filter_map
         (fun id ->
           match List.assoc_opt id experiments with
           | Some f -> Some (id, f)
           | None ->
             Fmt.epr "unknown experiment %S (try --list)@." id;
             None)
         selected)
