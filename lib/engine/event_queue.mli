(** Binary min-heap event queue keyed by (time, insertion order), giving
    deterministic ordering for equal timestamps. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
val peek : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest entry. *)
