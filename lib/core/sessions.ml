(* Session-based churn models.

   The simple churn driver in {!Churn} removes and adds fixed counts per
   round.  Real peer-to-peer populations behave differently: nodes arrive
   as a Poisson process and stay for a random *session* whose length
   distribution is typically heavy-tailed (Pareto), producing a stable core
   of long-lived nodes plus a fast-churning fringe.  This module drives a
   {!Runner} with such arrival/lifetime processes so membership behaviour
   can be studied under realistic churn. *)

type lifetime =
  | Exponential of float  (* mean lifetime in rounds *)
  | Pareto of { shape : float; minimum : float }
      (* heavy-tailed; mean = shape * minimum / (shape - 1) for shape > 1 *)

let mean_lifetime = function
  | Exponential mean -> mean
  | Pareto { shape; minimum } ->
    if shape <= 1. then infinity else shape *. minimum /. (shape -. 1.)

let sample_lifetime rng = function
  | Exponential mean ->
    if mean <= 0. then invalid_arg "Sessions: mean lifetime must be positive";
    Sf_prng.Rng.exponential rng (1. /. mean)
  | Pareto { shape; minimum } ->
    if shape <= 0. || minimum <= 0. then invalid_arg "Sessions: bad Pareto parameters";
    (* Inverse-CDF sampling: X = minimum / U^(1/shape). *)
    let u = 1. -. Sf_prng.Rng.float rng in
    minimum /. (u ** (1. /. shape))

type t = {
  runner : Runner.t;
  rng : Sf_prng.Rng.t;
  lifetime : lifetime;
  arrival_rate : float;      (* expected arrivals per round *)
  recover : bool;            (* run the reconnection rule on isolated nodes *)
  mutable round : int;
  (* (expiry round, node id), kept as a sorted-by-expiry list; populations
     are small enough that a heap is unnecessary. *)
  mutable departures : (float * int) list;
  mutable total_joins : int;
  mutable total_leaves : int;
  mutable total_reconnections : int;
}

let create ?(recover = true) ~runner ~seed ~lifetime ~arrival_rate () =
  if arrival_rate < 0. then invalid_arg "Sessions.create: negative arrival rate";
  let rng = Sf_prng.Rng.create seed in
  let t =
    {
      runner;
      rng;
      lifetime;
      arrival_rate;
      recover;
      round = 0;
      departures = [];
      total_joins = 0;
      total_leaves = 0;
      total_reconnections = 0;
    }
  in
  (* Give the initial population lifetimes too (memorylessly for the
     exponential; for Pareto this under-represents the long-lived core the
     process converges to, which the run then builds up naturally). *)
  Array.iter
    (fun node ->
      let expiry = float_of_int t.round +. sample_lifetime rng lifetime in
      t.departures <- (expiry, node.Protocol.node_id) :: t.departures)
    (Runner.live_nodes runner);
  t.departures <- List.sort compare t.departures;
  t

let insert_departure t expiry id =
  let rec insert = function
    | [] -> [ (expiry, id) ]
    | ((e, _) as head) :: rest when e <= expiry -> head :: insert rest
    | rest -> (expiry, id) :: rest
  in
  t.departures <- insert t.departures

(* Poisson arrivals per round, by counting exponential interarrival times. *)
let sample_arrivals t =
  if t.arrival_rate <= 0. then 0
  else begin
    let count = ref 0 in
    let budget = ref (Sf_prng.Rng.exponential t.rng t.arrival_rate) in
    while !budget <= 1. do
      incr count;
      budget := !budget +. Sf_prng.Rng.exponential t.rng t.arrival_rate
    done;
    !count
  end

let run_round t =
  t.round <- t.round + 1;
  let now = float_of_int t.round in
  (* Departures due this round. *)
  let due, rest = List.partition (fun (e, _) -> e <= now) t.departures in
  t.departures <- rest;
  List.iter
    (fun (_, id) ->
      if Runner.live_count t.runner > 4 then
        match Runner.remove_node t.runner id with
        | Some _ -> t.total_leaves <- t.total_leaves + 1
        | None -> ())
    due;
  (* Arrivals. *)
  let config = Runner.config t.runner in
  let bootstrap_size = max 2 config.Protocol.lower_threshold in
  for _ = 1 to sample_arrivals t do
    let bootstrap = Runner.bootstrap_from t.runner ~count:bootstrap_size in
    let id = Runner.add_node t.runner ~bootstrap in
    t.total_joins <- t.total_joins + 1;
    insert_departure t (now +. sample_lifetime t.rng t.lifetime) id
  done;
  (* Recovery of isolated nodes (section 5 reconnection rule). *)
  if t.recover then
    List.iter
      (fun node ->
        t.total_reconnections <- t.total_reconnections + 1;
        match Runner.reconnect t.runner ~node_id:node.Protocol.node_id with
        | Runner.Reconnected _ -> ()
        | Runner.Exhausted _ ->
          ignore (Runner.rebootstrap t.runner ~node_id:node.Protocol.node_id))
      (Runner.isolated_nodes t.runner);
  Runner.run_rounds t.runner 1

let run t ~rounds =
  for _ = 1 to rounds do
    run_round t
  done

type statistics = {
  rounds : int;
  population : int;
  joins : int;
  leaves : int;
  reconnections : int;
}

let statistics t =
  {
    rounds = t.round;
    population = Runner.live_count t.runner;
    joins = t.total_joins;
    leaves = t.total_leaves;
    reconnections = t.total_reconnections;
  }
