(* Metrics registry: named counters, gauges and log-bucketed histograms.

   Everything is allocated once at registration; the hot-path operations
   ([incr], [add], [set], [observe]) are plain field updates or a single
   array increment, so instrumented gossip runs cost the same as the
   ad-hoc mutable counters they replaced.  Export (Prometheus text, CSV)
   walks the registry in name order, so snapshots of equal state are
   byte-identical.

   Histograms are HDR-style: base-2 octaves (one per binary exponent of
   the value) each split into [sub_buckets_per_octave] linear sub-buckets.
   Bucket boundaries are dyadic rationals, so the value -> bucket mapping
   is exact (no rounding ambiguity at boundaries), and the maximal
   relative quantile error is 1 / sub_buckets_per_octave.  Exact count,
   sum, min and max are tracked alongside, and quantiles are clamped to
   [min, max] — a single-valued histogram round-trips exactly. *)

type counter = { c_name : string; mutable c_count : int }
type gauge = { g_name : string; mutable g_level : float }

(* --- Histogram bucketing --- *)

let sub_buckets_per_octave = 16

(* Octave = the [frexp] exponent e with v = m * 2^e, m in [0.5, 1).
   Exponents cover 2^-33 .. 2^32: ~1e-10 (fractions of a microsecond,
   tiny rates) up to ~4e9 (large counts, long durations in any unit). *)
let min_exponent = -32
let max_exponent = 32
let octaves = max_exponent - min_exponent + 1

(* Bucket 0 is the underflow bucket (zero, negatives, NaN, values below
   the first octave); buckets 1 .. octaves * sub_buckets_per_octave cover
   the octave range; values beyond the last octave clamp into the final
   bucket. *)
let bucket_count = 1 + (octaves * sub_buckets_per_octave)

let bucket_of_value v =
  if Float.is_nan v || v <= 0. then 0
  else
    let m, e = Float.frexp v in
    if e < min_exponent then 0
    else if e > max_exponent then bucket_count - 1
    else
      let sub =
        int_of_float ((m -. 0.5) *. 2. *. float_of_int sub_buckets_per_octave)
      in
      let sub = min sub (sub_buckets_per_octave - 1) in
      1 + (((e - min_exponent) * sub_buckets_per_octave) + sub)

(* Inclusive lower bound of a bucket: the smallest value mapping to it. *)
let bucket_lower index =
  if index <= 0 then 0.
  else
    let k = index - 1 in
    let e = min_exponent + (k / sub_buckets_per_octave) in
    let sub = k mod sub_buckets_per_octave in
    Float.ldexp
      (0.5 +. (float_of_int sub /. float_of_int (2 * sub_buckets_per_octave)))
      e

(* Exclusive upper bound: the lower bound of the next bucket (infinity for
   the final, clamping bucket). *)
let bucket_upper index =
  if index >= bucket_count - 1 then Float.infinity else bucket_lower (index + 1)

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let observe h v =
  let b = bucket_of_value v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let observations h = h.h_count
let total h = h.h_sum
let minimum h = if h.h_count = 0 then Float.nan else h.h_min
let maximum h = if h.h_count = 0 then Float.nan else h.h_max
let mean h = if h.h_count = 0 then Float.nan else h.h_sum /. float_of_int h.h_count

(* Quantile estimate: lower bound of the first bucket whose cumulative
   count reaches ceil(q * count), clamped to the exact observed range. *)
let quantile h q =
  if h.h_count = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let rec find i acc =
      if i >= bucket_count then h.h_max
      else
        let acc = acc + h.buckets.(i) in
        if acc >= target then bucket_lower i else find (i + 1) acc
    in
    let raw = find 0 0 in
    Float.max h.h_min (Float.min h.h_max raw)
  end

(* --- Registry --- *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { items : (string, metric) Hashtbl.t }

let create () = { items = Hashtbl.create 64 }

let validate_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> invalid_arg (Fmt.str "Metrics: invalid metric name %S" name))
    name

let counter t name =
  match Hashtbl.find_opt t.items name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Fmt.str "Metrics.counter: %S registered as another kind" name)
  | None ->
    validate_name name;
    let c = { c_name = name; c_count = 0 } in
    Hashtbl.replace t.items name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.items name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Fmt.str "Metrics.gauge: %S registered as another kind" name)
  | None ->
    validate_name name;
    let g = { g_name = name; g_level = 0. } in
    Hashtbl.replace t.items name (Gauge g);
    g

let histogram t name =
  match Hashtbl.find_opt t.items name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg (Fmt.str "Metrics.histogram: %S registered as another kind" name)
  | None ->
    validate_name name;
    let h =
      {
        h_name = name;
        buckets = Array.make bucket_count 0;
        h_count = 0;
        h_sum = 0.;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
      }
    in
    Hashtbl.replace t.items name (Histogram h);
    h

let incr c = c.c_count <- c.c_count + 1
let add c n = c.c_count <- c.c_count + n
let count c = c.c_count
let counter_name c = c.c_name

let set g level = g.g_level <- level
let level g = g.g_level
let gauge_name g = g.g_name

let histogram_name h = h.h_name

let find_counter t name =
  match Hashtbl.find_opt t.items name with Some (Counter c) -> Some c | _ -> None

let find_gauge t name =
  match Hashtbl.find_opt t.items name with Some (Gauge g) -> Some g | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.items name with
  | Some (Histogram h) -> Some h
  | _ -> None

(* Name-sorted view of the registry: export order is deterministic and
   independent of registration or hash order. *)
let sorted t =
  Hashtbl.fold (fun name metric acc -> (name, metric) :: acc) t.items []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- Exporters --- *)

let float_repr = Json.number_repr

(* Prometheus text exposition format. *)
let to_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Counter c ->
        Buffer.add_string buf (Fmt.str "# TYPE %s counter\n%s %d\n" name name c.c_count)
      | Gauge g ->
        Buffer.add_string buf
          (Fmt.str "# TYPE %s gauge\n%s %s\n" name name (float_repr g.g_level))
      | Histogram h ->
        Buffer.add_string buf (Fmt.str "# TYPE %s histogram\n" name);
        let cumulative = ref 0 in
        for i = 0 to bucket_count - 2 do
          let n = h.buckets.(i) in
          if n > 0 then begin
            cumulative := !cumulative + n;
            Buffer.add_string buf
              (Fmt.str "%s_bucket{le=\"%s\"} %d\n" name
                 (float_repr (bucket_upper i))
                 !cumulative)
          end
        done;
        (* The terminal +Inf bucket is mandatory and also covers the
           clamping overflow bucket. *)
        Buffer.add_string buf (Fmt.str "%s_bucket{le=\"+Inf\"} %d\n" name h.h_count);
        Buffer.add_string buf
          (Fmt.str "%s_sum %s\n%s_count %d\n" name (float_repr h.h_sum) name h.h_count))
    (sorted t);
  Buffer.contents buf

(* CSV snapshot: kind,name,field,value — one row per scalar, a summary row
   set per histogram. *)
let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,name,field,value\n";
  let row kind name field value =
    Buffer.add_string buf (Fmt.str "%s,%s,%s,%s\n" kind name field value)
  in
  List.iter
    (fun (name, metric) ->
      match metric with
      | Counter c -> row "counter" name "value" (string_of_int c.c_count)
      | Gauge g -> row "gauge" name "value" (float_repr g.g_level)
      | Histogram h ->
        row "histogram" name "count" (string_of_int h.h_count);
        row "histogram" name "sum" (float_repr h.h_sum);
        if h.h_count > 0 then begin
          row "histogram" name "min" (float_repr h.h_min);
          row "histogram" name "max" (float_repr h.h_max);
          row "histogram" name "p50" (float_repr (quantile h 0.5));
          row "histogram" name "p90" (float_repr (quantile h 0.9));
          row "histogram" name "p99" (float_repr (quantile h 0.99))
        end)
    (sorted t);
  Buffer.contents buf

(* JSON snapshot, for bench artifacts. *)
let to_json t =
  let field (name, metric) =
    match metric with
    | Counter c -> (name, Json.Int c.c_count)
    | Gauge g -> (name, Json.Float g.g_level)
    | Histogram h ->
      ( name,
        Json.Obj
          ([
             ("count", Json.Int h.h_count);
             ("sum", Json.Float h.h_sum);
           ]
          @
          if h.h_count = 0 then []
          else
            [
              ("min", Json.Float h.h_min);
              ("max", Json.Float h.h_max);
              ("p50", Json.Float (quantile h 0.5));
              ("p90", Json.Float (quantile h 0.9));
              ("p99", Json.Float (quantile h 0.99));
            ]) )
  in
  Json.Obj (List.map field (sorted t))
