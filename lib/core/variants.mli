(** The optimization variants sketched at the end of the paper's section 5
    (mark-and-undelete, replace-when-full, batched sends), implemented as a
    parameterized S&F for ablation experiments. *)

type options = {
  mark_and_undelete : bool;
      (** mark sent entries instead of clearing; undelete instead of
          duplicating at the threshold *)
  replace_when_full : bool;
      (** a full receiver overwrites random slots instead of deleting *)
  batch : int;  (** forwarded ids per message (>= 1); 1 = standard S&F *)
}

val standard : options
(** All options off, batch 1 — behaviourally the standard protocol. *)

type t

val create :
  seed:int ->
  n:int ->
  view_size:int ->
  lower_threshold:int ->
  loss_rate:float ->
  options:options ->
  topology:Topology.t ->
  t

val step : t -> unit
val run_rounds : t -> int -> unit

val outdegree_summary : t -> Sf_stats.Summary.t
val independence_census : t -> Census.t
val is_weakly_connected : t -> bool

type counters = {
  actions : int;
  sends : int;
  losses : int;
  duplications : int;
  undeletions : int;
  deletions : int;
}

val counters : t -> counters
