(* Tests for the system runner: sequential and timed execution, churn, the
   Lemma 6.2 sum-degree invariant, and the Lemma 6.6 rate balance. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Digraph = Sf_graph.Digraph

let small_config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_system ?(seed = 21) ?(n = 60) ?(loss = 0.) ?(config = small_config)
    ?(out_degree = 4) () =
  let rng = Sf_prng.Rng.create (seed + 1000) in
  let topology = Topology.regular rng ~n ~out_degree in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

let test_create_applies_topology () =
  let r = make_system () in
  Alcotest.(check int) "node count" 60 (Runner.live_count r);
  Array.iter
    (fun node -> Alcotest.(check int) "initial outdegree" 4 (Protocol.degree node))
    (Runner.live_nodes r);
  let g = Runner.membership_graph r in
  Alcotest.(check int) "edge count" (60 * 4) (Digraph.edge_count g);
  Alcotest.(check bool) "connected" true (Digraph.is_weakly_connected g)

let test_run_rounds_counts_actions () =
  let r = make_system () in
  Runner.run_rounds r 3;
  Alcotest.(check int) "3 rounds = 3n actions" (3 * 60) (Runner.action_count r)

let test_determinism () =
  let degrees r =
    Array.to_list (Array.map Protocol.degree (Runner.live_nodes r))
  in
  let a = make_system ~seed:5 () in
  let b = make_system ~seed:5 () in
  Runner.run_rounds a 20;
  Runner.run_rounds b 20;
  Alcotest.(check (list int)) "identical evolutions" (degrees a) (degrees b);
  Alcotest.(check bool) "graphs identical" true
    (Digraph.equal (Runner.membership_graph a) (Runner.membership_graph b))

(* Lemma 6.2: with no loss, dL = 0, and ds(u) <= s initially, the sum degree
   of every node is invariant. *)
let test_sum_degree_invariant_lemma_6_2 () =
  let config = Protocol.make_config ~view_size:12 ~lower_threshold:0 in
  (* regular topology with out_degree 4: ds(u) = 4 + 2*4 = 12 = s. *)
  let r = make_system ~config ~out_degree:4 ~loss:0. () in
  let sum_degrees r =
    let g = Runner.membership_graph r in
    List.sort compare
      (List.map (fun u -> (u, Digraph.sum_degree g u)) (Digraph.vertices g))
  in
  let before = sum_degrees r in
  List.iter
    (fun (_, ds) -> Alcotest.(check int) "initial ds = 12" 12 ds)
    before;
  Runner.run_rounds r 50;
  Alcotest.(check bool) "sum degrees invariant over 50 rounds" true
    (before = sum_degrees r);
  let counters = Runner.world_counters r in
  Alcotest.(check int) "no duplications" 0 counters.Runner.duplications;
  Alcotest.(check int) "no deletions" 0 counters.Runner.deletions

(* Observation 5.1 at system level: every outdegree even and within [0, s]
   at all times, with and without loss. *)
let test_observation_5_1_under_loss () =
  let r = make_system ~loss:0.2 () in
  for _ = 1 to 40 do
    Runner.run_rounds r 1;
    Array.iter
      (fun node ->
        let d = Protocol.degree node in
        Alcotest.(check bool) "even and bounded" true (d mod 2 = 0 && d >= 0 && d <= 12))
      (Runner.live_nodes r)
  done

(* Lemma 6.6: in the steady state, duplication rate = loss + deletion rate
   (per send). *)
let test_lemma_6_6_rate_balance () =
  let r = make_system ~n:300 ~loss:0.05 () in
  Runner.run_rounds r 200;
  let base = Runner.world_counters r in
  Runner.run_rounds r 400;
  let rates = Runner.rates_since r base in
  let lhs = rates.Runner.duplication in
  let rhs = rates.Runner.loss +. rates.Runner.deletion in
  Alcotest.(check bool)
    (Printf.sprintf "dup %.4f vs loss+del %.4f" lhs rhs)
    true
    (Float.abs (lhs -. rhs) < 0.01)

let test_counters_consistency () =
  let r = make_system ~loss:0.1 () in
  Runner.run_rounds r 30;
  let c = Runner.world_counters r in
  Alcotest.(check int) "actions = self loops + sends" c.Runner.actions
    (c.Runner.self_loops + c.Runner.sends);
  Alcotest.(check bool) "receipts = sends - lost" true
    (c.Runner.receipts = c.Runner.sends - c.Runner.messages_lost);
  Alcotest.(check bool) "duplications <= sends" true (c.Runner.duplications <= c.Runner.sends)

let test_add_node () =
  let r = make_system () in
  Runner.run_rounds r 5;
  let bootstrap = Runner.bootstrap_from r ~count:4 in
  Alcotest.(check int) "bootstrap size" 4 (List.length bootstrap);
  let id = Runner.add_node r ~bootstrap in
  Alcotest.(check int) "fresh id" 60 id;
  Alcotest.(check int) "count up" 61 (Runner.live_count r);
  (match Runner.find_node r id with
  | Some node -> Alcotest.(check int) "joiner outdegree" 4 (Protocol.degree node)
  | None -> Alcotest.fail "joiner not found");
  (* The joiner participates; with outdegree 4 of 12 slots its send rate is
     d(d-1)/(s(s-1)) ~ 0.09 per round, so 80 rounds make a missing
     reinforcement astronomically unlikely. *)
  Runner.run_rounds r 80;
  Alcotest.(check bool) "joiner gains indegree eventually" true
    (Runner.count_id_instances r id > 0)

let test_remove_node () =
  let r = make_system () in
  let victim = (Runner.random_live_node r).Protocol.node_id in
  (match Runner.remove_node r victim with
  | Some _ -> ()
  | None -> Alcotest.fail "victim was live");
  Alcotest.(check int) "count down" 59 (Runner.live_count r);
  Alcotest.(check bool) "double remove" true (Runner.remove_node r victim = None);
  (* Instances of the departed id decay to zero (erosion, section 6.5.2):
     with no loss and a positive dL this takes a bounded number of rounds. *)
  Runner.run_rounds r 2000;
  Alcotest.(check int) "departed id eroded" 0 (Runner.count_id_instances r victim)

let test_timed_mode_progress () =
  let r = make_system ~n:40 () in
  Runner.start_timed r (Runner.Poisson 1.0);
  Runner.run_until r 50.;
  (* In 50 time units at rate 1, about 2000 actions should have happened. *)
  let actions = Runner.action_count r in
  Alcotest.(check bool)
    (Printf.sprintf "%d actions in 50 units" actions)
    true
    (actions > 1000 && actions < 3000);
  let net = Runner.network_statistics r in
  Alcotest.(check bool) "messages flowed" true (net.Sf_engine.Network.messages_sent > 0)

let test_timed_mode_periodic () =
  let r = make_system ~n:20 () in
  Runner.start_timed r (Runner.Periodic 1.0);
  Runner.run_until r 10.5;
  (* Each node fires about 10 times. *)
  let actions = Runner.action_count r in
  Alcotest.(check bool)
    (Printf.sprintf "%d actions" actions)
    true
    (actions >= 20 * 9 && actions <= 20 * 12)

let test_timed_join_participates () =
  let r = make_system ~n:20 () in
  Runner.start_timed r (Runner.Periodic 1.0);
  Runner.run_until r 5.;
  let id = Runner.add_node r ~bootstrap:(Runner.bootstrap_from r ~count:4) in
  let before = Runner.action_count r in
  Runner.run_until r 30.;
  Alcotest.(check bool) "system kept running" true (Runner.action_count r > before);
  (match Runner.find_node r id with
  | Some node ->
    Alcotest.(check bool) "joiner initiated" true (node.Protocol.initiated_actions > 0)
  | None -> Alcotest.fail "joiner vanished")

let test_no_loss_conserves_edges () =
  (* With loss = 0 and sequential actions, every send is delivered, so the
     total number of entries changes only through duplication/deletion. *)
  let config = Protocol.make_config ~view_size:12 ~lower_threshold:0 in
  let r = make_system ~config ~loss:0. () in
  let edges r = Digraph.edge_count (Runner.membership_graph r) in
  let before = edges r in
  Runner.run_rounds r 50;
  Alcotest.(check int) "edges conserved" before (edges r)

(* Exact edge ledger: every duplication creates 2 entries, every loss and
   every deletion destroys 2, and ordinary transformations conserve — so at
   any instant (sequential mode, no churn)

     edges = initial + 2 (duplications - deletions - losses).

   This accounts for every entry in the system exactly, across any loss
   rate and any schedule. *)
let prop_edge_ledger =
  QCheck.Test.make ~name:"exact edge ledger" ~count:25
    QCheck.(pair small_int (int_range 0 30))
    (fun (seed, loss_percent) ->
      let loss = float_of_int loss_percent /. 100. in
      let r = make_system ~seed:(seed + 1) ~n:80 ~loss () in
      let initial = Digraph.edge_count (Runner.membership_graph r) in
      Runner.run_rounds r 40;
      let c = Runner.world_counters r in
      let expected =
        initial + (2 * (c.Runner.duplications - c.Runner.deletions - c.Runner.messages_lost))
      in
      Digraph.edge_count (Runner.membership_graph r) = expected)

let suite =
  [
    Alcotest.test_case "topology applied" `Quick test_create_applies_topology;
    QCheck_alcotest.to_alcotest prop_edge_ledger;
    Alcotest.test_case "round accounting" `Quick test_run_rounds_counts_actions;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "Lemma 6.2 sum-degree invariant" `Quick test_sum_degree_invariant_lemma_6_2;
    Alcotest.test_case "Observation 5.1 under loss" `Quick test_observation_5_1_under_loss;
    Alcotest.test_case "Lemma 6.6 rate balance" `Quick test_lemma_6_6_rate_balance;
    Alcotest.test_case "counter consistency" `Quick test_counters_consistency;
    Alcotest.test_case "join" `Quick test_add_node;
    Alcotest.test_case "leave and erosion" `Quick test_remove_node;
    Alcotest.test_case "timed mode (Poisson)" `Quick test_timed_mode_progress;
    Alcotest.test_case "timed mode (periodic)" `Quick test_timed_mode_periodic;
    Alcotest.test_case "timed join" `Quick test_timed_join_participates;
    Alcotest.test_case "no-loss edge conservation" `Quick test_no_loss_conserves_edges;
  ]
