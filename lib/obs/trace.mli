(** Event tracer: fixed-capacity ring buffer of typed trace records.

    Recording is O(1); the oldest records are overwritten once the ring
    wraps ({!dropped} counts the overwritten ones).  Timestamps come from
    the caller's {e injected} clock — sim ticks, virtual time, or the
    cluster's [?now] — never an ambient clock, so equal-seed runs dump
    byte-identical traces. *)

type event =
  | Send of { src : int; dst : int; duplicated : bool }
  | Deliver of { dst : int; accepted : bool }
  | Drop of { src : int; dst : int; cause : string }
  | Duplicate of { node : int }  (** initiate kept its entries (d <= dL) *)
  | Delete of { node : int }  (** receive at a full view dropped both ids *)
  | Timer of { node : int }  (** a timed-mode or cluster timer fired *)
  | Fault of { transition : string }  (** fault-window boundary crossing *)
  | Mark of { label : string }  (** structural annotation (join/leave/...) *)

type record = { at : float; seq : int; event : event }

type t

val create : capacity:int -> t
(** Fixed capacity, allocated once.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val capacity : t -> int

val record : t -> now:float -> event -> unit
(** Append a record stamped [now]; overwrites the oldest once full. *)

val recorded : t -> int
(** Total records ever offered (also the next sequence number). *)

val length : t -> int
(** Records currently held (= min recorded capacity). *)

val dropped : t -> int
(** Records lost to wraparound (= recorded - length). *)

val records : t -> record list
(** Surviving records, oldest first. *)

val to_jsonl : t -> string
(** One JSON object per line, oldest first.  Deterministic: equal traces
    render to identical bytes. *)

val clear : t -> unit
