(** Dependence census over views — the mechanical realization of the paper's
    edge labelling (section 2). Shared by S&F property monitors and baseline
    protocols. *)

type t = {
  total_entries : int;
  self_edges : int;
  anchored : int;          (** instances created where the sender retained a copy *)
  parallel_surplus : int;  (** second-and-later copies of an id within one view *)
  dependent_entries : int; (** union of the three labels above *)
  alpha : float;           (** measured fraction of independent entries *)
}

val of_views : (int * View.t) Seq.t -> t
(** [of_views views] takes (owner id, view) pairs. *)

val of_flat : View.Flat.t -> t
(** Same labelling over a packed {!View.Flat} world (owner of row [u] is
    node [u]) without materializing entries — O(view size) allocation at
    any [n]. *)

val pp : Format.formatter -> t -> unit
