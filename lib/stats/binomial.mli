(** Binomial(n, p) distribution utilities. *)

val log_pmf : n:int -> p:float -> int -> float
val pmf : n:int -> p:float -> int -> float

val cdf : n:int -> p:float -> int -> float
(** P(X <= k). *)

val ccdf : n:int -> p:float -> int -> float
(** P(X >= k). *)

val log_cdf : n:int -> p:float -> int -> float
(** log P(X <= k), stable deep in the lower tail. *)

val mean : n:int -> p:float -> float
val variance : n:int -> p:float -> float

val to_pmf : n:int -> p:float -> Pmf.t
(** Materialize as a {!Pmf.t} on support 0..n. *)

val sample : Sf_prng.Rng.t -> n:int -> p:float -> int
(** Draw one variate. *)
