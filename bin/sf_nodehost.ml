(* sf_nodehost: one process of the multi-process UDP cluster.

   A thin argv shell around {!Sf_net.Nodehost.main} — all behaviour
   (driver slice, control channels, reporting protocol) lives in the
   library so tests can drive it in-process.  The spawner execs this
   binary once per host; humans can too:

     sf_nodehost --host 0 --hosts 2 --per-host 16 --base-port 47000 \
       --control-port 46900 --loss ge:0.15:6 --version 2

   The resilience policy is assembled here because its threshold solver
   (Sf_analysis.Thresholds.select_lossy, the section 6.3 inversion) lives
   above sf_net in the library order. *)

let usage = "sf_nodehost --host I --hosts H --per-host K [options]"

let () =
  let host = ref 0
  and hosts = ref 1
  and per_host = ref 16
  and base_port = ref 47_000
  and control_port = ref 0
  and controller_port = ref 0
  and view_size = ref 12
  and lower = ref 4
  and out_degree = ref 0
  and loss = ref "iid"
  and loss_rate = ref 0.0
  and period = ref 0.01
  and version = ref 2
  and seed = ref 1
  and duration = ref 5.0
  and heartbeat = ref 0.25
  and resilience = ref false in
  let spec =
    [
      ("--host", Arg.Set_int host, "I  this host's index in [0, hosts)");
      ("--hosts", Arg.Set_int hosts, "H  total node-host processes");
      ("--per-host", Arg.Set_int per_host, "K  nodes owned by each host");
      ("--base-port", Arg.Set_int base_port, "P  node i binds port P+i");
      ("--control-port", Arg.Set_int control_port, "P  UDP command socket (0 = host+index derived off base)");
      ("--controller-port", Arg.Set_int controller_port, "P  heartbeat sink (0 = no heartbeats)");
      ("--view-size", Arg.Set_int view_size, "S  view slots per node");
      ("--lower", Arg.Set_int lower, "DL  lower threshold");
      ("--out-degree", Arg.Set_int out_degree, "D  seed topology degree (0 = derive from S, DL)");
      ("--loss", Arg.Set_string loss, "MODEL  loss model (iid | ge:MEAN:BURST); windows rejected");
      ("--loss-rate", Arg.Set_float loss_rate, "R  iid loss probability");
      ("--period", Arg.Set_float period, "SEC  mean time between initiations");
      ("--version", Arg.Set_int version, "V  wire ceiling: 1 or 2 (default 2)");
      ("--seed", Arg.Set_int seed, "N  shared cluster seed (fixes the topology)");
      ("--duration", Arg.Set_float duration, "SEC  hard cap on the run");
      ("--heartbeat", Arg.Set_float heartbeat, "SEC  heartbeat interval");
      ("--resilience", Arg.Set resilience, "  enable retuning + supervised repair");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Fmt.str "stray argument %S" a)))
    usage;
  let scenario =
    match Sf_faults.Scenario.of_string !loss with
    | Ok sc -> sc
    | Error msg ->
      Fmt.epr "sf_nodehost: bad --loss: %s@." msg;
      exit 2
  in
  let out_degree =
    if !out_degree > 0 then !out_degree
    else
      (* The sfg UDP-gate derivation: even, below the view size. *)
      let d = min ((!hosts * !per_host) - 1) ((!view_size + !lower) / 2) in
      if d mod 2 = 0 then d else d - 1
  in
  let resilience =
    if not !resilience then None
    else
      let solve ~loss =
        let t =
          Sf_analysis.Thresholds.select_lossy ~d_hat:out_degree ~delta:1e-3
            ~loss:(Float.min loss 0.45)
        in
        ( t.Sf_analysis.Thresholds.lower_threshold,
          t.Sf_analysis.Thresholds.view_size )
      in
      Some (Sf_resil.Policy.make ~solve ())
  in
  let config =
    {
      Sf_net.Nodehost.host_index = !host;
      hosts = !hosts;
      nodes_per_host = !per_host;
      base_port = !base_port;
      control_port =
        (if !control_port > 0 then !control_port else !base_port - 1 - !host);
      controller_port = !controller_port;
      protocol =
        Sf_core.Protocol.make_config ~view_size:!view_size
          ~lower_threshold:!lower;
      out_degree;
      scenario;
      loss_rate = !loss_rate;
      period = !period;
      version = !version;
      seed = !seed;
      duration = !duration;
      heartbeat = !heartbeat;
      resilience;
    }
  in
  match Sf_net.Nodehost.main config with
  | () -> ()
  | exception Invalid_argument msg ->
    Fmt.epr "sf_nodehost: %s@." msg;
    exit 2
