(* Binomial(n, p) distribution.  Figure 6.1 of the paper compares the S&F
   degree distributions against binomials with matching expectation; the
   connectivity rule of section 7.4 tail-bounds a binomial count of
   independent view entries. *)

let log_pmf ~n ~p k =
  if k < 0 || k > n then neg_infinity
  else if p <= 0. then (if k = 0 then 0. else neg_infinity)
  else if p >= 1. then (if k = n then 0. else neg_infinity)
  else
    Special.log_choose n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log1p (-.p))

let pmf ~n ~p k = exp (log_pmf ~n ~p k)

(* P(X <= k), summed in the smaller tail for accuracy. *)
let cdf ~n ~p k =
  if k < 0 then 0.
  else if k >= n then 1.
  else begin
    let acc = ref 0. in
    for j = 0 to k do
      acc := !acc +. pmf ~n ~p j
    done;
    Float.min 1. !acc
  end

(* P(X >= k). *)
let ccdf ~n ~p k =
  if k <= 0 then 1.
  else if k > n then 0.
  else begin
    let acc = ref 0. in
    for j = k to n do
      acc := !acc +. pmf ~n ~p j
    done;
    Float.min 1. !acc
  end

(* log P(X <= k): needed for the 1e-30-scale tails of the section 7.4
   connectivity rule, where plain summation underflows long before the
   probabilities become comparable. *)
let log_cdf ~n ~p k =
  if k < 0 then neg_infinity
  else if k >= n then 0.
  else begin
    let acc = ref neg_infinity in
    for j = 0 to k do
      acc := Special.log_add !acc (log_pmf ~n ~p j)
    done;
    Float.min 0. !acc
  end

let mean ~n ~p = float_of_int n *. p
let variance ~n ~p = float_of_int n *. p *. (1. -. p)

let to_pmf ~n ~p =
  Pmf.create ~offset:0 (Array.init (n + 1) (fun k -> pmf ~n ~p k))

let sample rng ~n ~p =
  (* Direct simulation suffices at the n used in this repository. *)
  let count = ref 0 in
  for _ = 1 to n do
    if Sf_prng.Rng.bernoulli rng p then incr count
  done;
  !count
