(** Stateful message-loss processes.

    The paper analyzes uniform i.i.d. loss only (section 4.1) and explicitly
    leaves correlated regimes open.  This module provides the loss processes
    the fault layer composes:

    - {b i.i.d.} — every message drops independently with the driver's
      configured probability: the paper's model, byte-identical to the
      pre-fault-layer behaviour (one Bernoulli draw per send);
    - {b Gilbert–Elliott} — a two-state Markov chain (Good/Bad) stepped once
      per send; each state has its own drop probability, producing loss
      bursts whose mean length is the Bad-state sojourn time;
    - {b per-link} — an arbitrary (src, dst) → probability map for
      asymmetric or last-mile loss.

    {2 Gilbert–Elliott stationary mapping}

    With transition probabilities [p_good_to_bad] and [p_bad_to_good], the
    stationary probability of the Bad state is

    {[ pi_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good) ]}

    and the stationary (long-run mean) loss rate is

    {[ (1 - pi_bad) * loss_good + pi_bad * loss_bad ]}

    {!gilbert_elliott} inverts this mapping: given a target mean loss [L]
    and a mean burst length [B] (with the defaults [loss_good = 0],
    [loss_bad = 1], a burst is exactly a Bad-state sojourn) it sets
    [p_bad_to_good = 1/B] and [p_good_to_bad = p_bad_to_good * (L -
    loss_good) / (loss_bad - L)], so that a bursty run is directly
    comparable to an i.i.d. run at the paper's [loss = L]. *)

type ge = {
  p_good_to_bad : float;  (** per-send transition probability Good → Bad *)
  p_bad_to_good : float;  (** per-send transition probability Bad → Good *)
  loss_good : float;      (** drop probability while Good *)
  loss_bad : float;       (** drop probability while Bad *)
}

type model =
  | Iid
      (** one Bernoulli draw per send at the driver's configured rate (the
          paper's model; preserves the exact RNG stream of a fault-free
          run) *)
  | Gilbert_elliott of ge
  | Per_link of (int -> int -> float)
      (** [f src dst] is the drop probability of the (src, dst) link *)

val gilbert_elliott :
  ?loss_good:float -> ?loss_bad:float -> mean_loss:float -> mean_burst:float -> unit -> ge
(** Build a Gilbert–Elliott chain whose stationary loss rate is exactly
    [mean_loss] and whose mean Bad-state sojourn is [mean_burst] sends.
    Defaults: [loss_good = 0.], [loss_bad = 1.].  Raises [Invalid_argument]
    unless [0 <= loss_good <= mean_loss < loss_bad <= 1] and
    [mean_burst >= 1] and the implied transition probabilities lie in
    [0, 1]. *)

val stationary_loss : ge -> float
(** The long-run mean loss rate of the chain (see the mapping above). *)

val mean_burst_length : ge -> float
(** Mean Bad-state sojourn in sends: [1 / p_bad_to_good]. *)

type t
(** A stateful loss process (the Gilbert–Elliott chain position). *)

val create : model -> t

val model : t -> model

val drop : t -> Sf_prng.Rng.t -> chance:float -> src:int -> dst:int -> bool
(** One loss decision.  [chance] is the driver's configured uniform (or
    per-destination) drop probability, used only by {!Iid} so that the
    default path replays the exact pre-fault RNG stream.  Gilbert–Elliott
    first steps the chain (one draw), then draws the loss in the new state;
    [Per_link] draws at [f src dst]. *)

val in_burst : t -> bool
(** [true] iff a Gilbert–Elliott process currently sits in its Bad state. *)
