(* Convergence-speed diagnostics for finite Markov chains: the distance-to-
   stationarity profile, relaxation time, and a power-method estimate of the
   second eigenvalue modulus.  Used to quantify how fast the degree MC and
   the exact global MC forget their starting states — the computational
   counterpart of the paper's temporal-independence analysis (section 7.5). *)

type profile = {
  steps : int array;
  tv_distances : float array;  (* TVD to stationarity after steps.(i) *)
}

(* TVD to [stationary] after each checkpoint, starting from [initial]. *)
let distance_profile chain ~initial ~stationary ~checkpoints =
  let sorted = List.sort_uniq compare checkpoints in
  let distances = ref [] in
  let current = ref (Array.copy initial) in
  let position = ref 0 in
  List.iter
    (fun target ->
      while !position < target do
        current := Chain.step chain !current;
        incr position
      done;
      distances := Chain.tv_distance !current stationary :: !distances)
    sorted;
  {
    steps = Array.of_list sorted;
    tv_distances = Array.of_list (List.rev !distances);
  }

(* Steps until TVD to stationarity first drops below [threshold], starting
   from [initial]; None if not within [max_steps]. *)
let steps_to_distance ?(max_steps = 1_000_000) chain ~initial ~stationary ~threshold =
  let rec go p step =
    if Chain.tv_distance p stationary < threshold then Some step
    else if step >= max_steps then None
    else go (Chain.step chain p) (step + 1)
  in
  go (Array.copy initial) 0

(* Worst-case mixing time over point-mass starting states drawn from
   [sources] (all states when omitted): the paper's tau_eps bounds refer to
   a random start; this measures the harder worst case for comparison. *)
let mixing_time ?(threshold = 0.25) ?max_steps ?sources chain ~stationary =
  let n = Chain.size chain in
  let sources = Option.value ~default:(List.init n Fun.id) sources in
  List.fold_left
    (fun worst source ->
      let initial = Chain.point_distribution ~size:n source in
      match (worst, steps_to_distance ?max_steps chain ~initial ~stationary ~threshold) with
      | None, _ | _, None -> None
      | Some w, Some s -> Some (max w s))
    (Some 0) sources

(* Second-eigenvalue-modulus estimate by the deflated power method: for a
   row-stochastic P with stationary pi, the operator
     A(v) = v P - (sum v) pi
   kills the leading eigenvector, and ||A^t v||_1 decays like |lambda_2|^t.
   The returned estimate is the geometric mean of the last few per-step
   ratios.  (For non-diagonalizable or complex-spectrum chains this is an
   estimate of the spectral radius of the deflated operator, which is what
   governs asymptotic convergence anyway.) *)
let second_eigenvalue_estimate ?(iterations = 400) ?(tail = 50) chain ~stationary
    ~uniform =
  let n = Chain.size chain in
  if n < 2 then 0.
  else begin
    let v = Array.init n (fun _ -> uniform () -. 0.5) in
    (* Remove the stationary component once; the deflation keeps it out. *)
    let norm1 a = Array.fold_left (fun acc x -> acc +. Float.abs x) 0. a in
    let deflate a =
      let mass = Array.fold_left ( +. ) 0. a in
      Array.mapi (fun i x -> x -. (mass *. stationary.(i))) a
    in
    let v = ref (deflate v) in
    let ratios = ref [] in
    for it = 1 to iterations do
      let next = deflate (Chain.step chain !v) in
      let n0 = norm1 !v and n1 = norm1 next in
      if n0 > 1e-280 && n1 > 1e-280 then begin
        if it > iterations - tail then ratios := (n1 /. n0) :: !ratios;
        (* Renormalize to dodge under/overflow. *)
        v := Array.map (fun x -> x /. n1) next
      end
      else v := next
    done;
    match !ratios with
    | [] -> 0.
    | rs ->
      let log_sum = List.fold_left (fun acc r -> acc +. log (Float.max r 1e-300)) 0. rs in
      exp (log_sum /. float_of_int (List.length rs))
  end

(* Relaxation time 1 / (1 - |lambda_2|). *)
let relaxation_time ?iterations ?tail chain ~stationary ~uniform =
  let lambda = second_eigenvalue_estimate ?iterations ?tail chain ~stationary ~uniform in
  if lambda >= 1. then infinity else 1. /. (1. -. lambda)
