(* Recovery supervision under backoff.

   The section 5 joining rule gives a node two escalating remedies when
   its neighborhood dies — probe previously seen ids, then copy a live
   view out of band — and lib/core already implements both
   ([Runner.reconnect], [Runner.rebootstrap], [Churn.recover_connectivity]).
   What none of them decide is *when*: a driver that fires them every
   round hammers the rendezvous service exactly when the system is least
   healthy (the thundering-herd failure mode), and one that never fires
   them leaves permanent splits in place.

   The supervisor is that scheduling state machine.  It swings between
   two states:

   - [Healthy]: the last health probe found nothing to repair; probes
     continue at the driver's cadence and the backoff is reset.
   - [Backing_off until]: a repair was attempted; no further attempt is
     allowed before [until] (rounds), with the wait growing geometrically
     under [Backoff] while repairs keep failing.

   The module is driver-agnostic: callers probe their own health signals
   (starvation/isolation sets, weak connectivity — see [Runner] and
   [Sf_check.Invariant]) and report attempts/outcomes; the supervisor
   answers only "may I try now?".  All timing is in rounds from the
   caller's injected clock; jitter comes from the backoff's injected
   PRNG. *)

type state = Healthy | Backing_off of float  (* no attempt before this time *)

type t = {
  backoff : Backoff.t;
  mutable state : state;
  mutable attempts : int;    (* repair attempts charged *)
  mutable recoveries : int;  (* attempts confirmed successful *)
  mutable last_delay : float;
}

let create ~backoff () =
  { backoff; state = Healthy; attempts = 0; recoveries = 0; last_delay = 0. }

let due t ~now =
  match t.state with Healthy -> true | Backing_off until -> now >= until

(* Charge one repair attempt: the next one is gated [Backoff.next] rounds
   away.  Returns the delay so drivers can export it (backoff
   histograms). *)
let record_attempt t ~now =
  t.attempts <- t.attempts + 1;
  let delay = Backoff.next t.backoff in
  t.last_delay <- delay;
  t.state <- Backing_off (now +. delay);
  delay

(* The follow-up probe found the system healthy again: count the recovery
   and drop back to the fast path. *)
let record_success t =
  t.recoveries <- t.recoveries + 1;
  Backoff.reset t.backoff;
  t.state <- Healthy

(* Nothing was wrong in the first place (a probe on the fast path): make
   sure a stale backoff window cannot outlive the problem. *)
let record_healthy t =
  Backoff.reset t.backoff;
  t.state <- Healthy

let attempts t = t.attempts
let recoveries t = t.recoveries
let last_delay t = t.last_delay
let backing_off t = match t.state with Healthy -> false | Backing_off _ -> true
