(* Degree-analysis experiments: Figures 5.2, 6.1, 6.3 and the in-text
   tables of sections 6.3 (thresholds) and 6.4 (Lemmas 6.6/6.7). *)

module Pmf = Sf_stats.Pmf
module Summary = Sf_stats.Summary
module Degree_mc = Sf_analysis.Degree_mc
module Analytic = Sf_analysis.Analytic
module Thresholds = Sf_analysis.Thresholds
module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Properties = Sf_core.Properties
module Topology = Sf_core.Topology

let standard_config = Protocol.make_config ~view_size:40 ~lower_threshold:18

let make_system ?(seed = 7) ?(n = 1000) ?(config = standard_config) ~loss () =
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Topology.regular rng ~n ~out_degree:30 in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Figure 5.2: transformation outcome frequencies --- *)

let fig_5_2 () =
  Output.section "F5.2" "S&F transformation outcomes (Figure 5.2)";
  Fmt.pr
    "Frequencies of the four transformation outcomes in a running system@\n\
     (n=1000, s=40, dL=18, loss=5%%), against the steady-state predictions@\n\
     of the degree MC.@.";
  let loss = 0.05 in
  let r = make_system ~loss () in
  Runner.run_rounds r 300;
  let base = Runner.world_counters r in
  Runner.run_rounds r 300;
  let now = Runner.world_counters r in
  let sends = float_of_int (now.Runner.sends - base.Runner.sends) in
  let dup = float_of_int (now.Runner.duplications - base.Runner.duplications) /. sends in
  let del = float_of_int (now.Runner.deletions - base.Runner.deletions) /. sends in
  let lost = float_of_int (now.Runner.messages_lost - base.Runner.messages_lost) /. sends in
  let normal = 1. -. dup -. del -. lost in
  Output.table
    [ "outcome (per send)"; "measured"; "meaning" ]
    [
      [ "(b) moved, delivered"; Output.f4 normal; "entries cleared, receiver installs" ];
      [ "(c) duplication"; Output.f4 dup; "sender at dL keeps entries" ];
      [ "(d) deletion"; Output.f4 del; "receiver view full" ];
      [ "(d) message lost"; Output.f4 lost; "loss between the two steps" ];
    ];
  Output.check "duplication ~ loss + deletion (Lemma 6.6)"
    (Float.abs (dup -. (lost +. del)) < 0.01)

(* --- Figure 6.1 --- *)

let fig_6_1 () =
  Output.section "F6.1"
    "No-loss degree distributions: analytical (eq 6.1), degree MC, binomial";
  Fmt.pr "Parameters as in the paper: s=90, dL=0, loss=0, ds(u)=90, any n >> s.@.";
  let dm = 90 in
  let analytic_out = Analytic.outdegree_distribution ~dm in
  let analytic_in = Analytic.indegree_distribution ~dm in
  let binomial = Analytic.binomial_reference ~dm in
  let params = Degree_mc.make_params ~view_size:90 ~lower_threshold:0 ~loss:0. () in
  let mc = Degree_mc.solve ~initial_state:(30, 30) params in
  let mc_out = Degree_mc.even_outdegree mc in
  Output.subsection "outdegree distribution (even support, probabilities)";
  let rows =
    List.filter_map
      (fun d ->
        let a = Pmf.prob analytic_out d
        and m = Pmf.prob mc_out d
        and b = Pmf.prob binomial d in
        if a > 5e-4 || m > 5e-4 then
          Some [ Output.i d; Output.f4 a; Output.f4 m; Output.f4 b ]
        else None)
      (List.init 46 (fun k -> 2 * k))
  in
  Output.table [ "d"; "analytical"; "degree MC"; "binomial" ] rows;
  Output.subsection "indegree distribution";
  let rows =
    List.filter_map
      (fun k ->
        let a = Pmf.prob analytic_in k
        and m = Pmf.prob mc.Degree_mc.indegree k
        and b = Pmf.prob binomial k in
        if a > 5e-4 || m > 5e-4 then
          Some [ Output.i k; Output.f4 a; Output.f4 m; Output.f4 b ]
        else None)
      (List.init 46 Fun.id)
  in
  Output.table [ "din"; "analytical"; "degree MC"; "binomial" ] rows;
  Output.subsection "summary";
  Output.table
    [ "series"; "mean"; "std" ]
    [
      [ "outdegree analytical"; Output.f3 (Pmf.mean analytic_out); Output.f3 (Pmf.std analytic_out) ];
      [ "outdegree degree-MC"; Output.f3 (Pmf.mean mc_out); Output.f3 (Pmf.std mc_out) ];
      [ "indegree analytical"; Output.f3 (Pmf.mean analytic_in); Output.f3 (Pmf.std analytic_in) ];
      [ "indegree degree-MC"; Output.f3 (Pmf.mean mc.Degree_mc.indegree); Output.f3 (Pmf.std mc.Degree_mc.indegree) ];
      [ "binomial reference"; Output.f3 (Pmf.mean binomial); Output.f3 (Pmf.std binomial) ];
    ];
  Output.subsection "indegree curves (# analytical, + degree MC, . binomial)";
  Sf_stats.Ascii_plot.pmf_overlay ~threshold:2e-3 Fmt.stdout
    [ ("analytical", analytic_in); ("degree MC", mc.Degree_mc.indegree);
      ("binomial", binomial) ];
  Fmt.pr "  TVD(outdegree: MC vs analytical) = %.4f@."
    (Pmf.tv_distance mc_out analytic_out);
  Fmt.pr "  TVD(indegree:  MC vs analytical) = %.4f@."
    (Pmf.tv_distance mc.Degree_mc.indegree analytic_in);
  Output.check "analytical and MC agree in form (TVD < 0.1)"
    (Pmf.tv_distance mc_out analytic_out < 0.1);
  Output.check "indegree variance below binomial (paper's observation)"
    (Pmf.std mc.Degree_mc.indegree < Pmf.std binomial)

(* --- Section 6.3 thresholds --- *)

let table_6_3 () =
  Output.section "T6.3" "Threshold selection rule (section 6.3)";
  Fmt.pr
    "dL and s from the target expected outdegree d_hat and budget delta,@\n\
     via the eq (6.1) distribution.  Paper example: d_hat=30, delta=0.01@\n\
     -> dL=18, s=40.@.";
  let rows =
    List.concat_map
      (fun d_hat ->
        List.map
          (fun delta ->
            let t = Thresholds.select ~d_hat ~delta in
            [
              Output.i d_hat;
              Output.f3 delta;
              Output.i t.Thresholds.lower_threshold;
              Output.i t.Thresholds.view_size;
              Output.f4 t.Thresholds.p_at_or_below_lower;
              Output.f4 t.Thresholds.p_above_size;
            ])
          [ 0.001; 0.01; 0.05 ])
      [ 10; 20; 30; 40 ]
  in
  Output.table
    [ "d_hat"; "delta"; "dL"; "s"; "Pr(d<=dL)"; "Pr(d>s)" ]
    rows;
  let t = Thresholds.select ~d_hat:30 ~delta:0.01 in
  Output.check "paper example reproduced: (dL, s) = (18, 40)"
    (t.Thresholds.lower_threshold = 18 && t.Thresholds.view_size = 40);
  let literal = Thresholds.select_literal ~d_hat:30 ~delta:0.01 in
  Fmt.pr "  note: the literal reading Pr(d>=s)<=delta gives s=%d instead.@."
    literal.Thresholds.view_size

(* --- Figure 6.3 --- *)

let paper_6_3 = [ (0.0, 28., 3.4); (0.01, 27., 3.6); (0.05, 24., 4.1); (0.1, 23., 4.3) ]

let fig_6_3 () =
  Output.section "F6.3" "Degree distributions under loss (Figure 6.3)";
  Fmt.pr
    "dL=18, s=40, loss in {0, 0.01, 0.05, 0.1}.  Paper-reported average@\n\
     indegrees: 28±3.4, 27±3.6, 24±4.1, 23±4.3.  Degree-MC fixed point and@\n\
     a 1000-node simulation (600 rounds) side by side.@.";
  let results =
    List.map
      (fun (loss, paper_mean, paper_std) ->
        let params = Degree_mc.make_params ~view_size:40 ~lower_threshold:18 ~loss () in
        let mc = Degree_mc.solve params in
        let r = make_system ~loss () in
        Runner.run_rounds r 600;
        let sim_in = Properties.indegree_summary r in
        let sim_out = Properties.outdegree_summary r in
        ((loss, paper_mean, paper_std), mc, sim_in, sim_out))
      paper_6_3
  in
  Output.subsection "indegree: paper vs degree MC vs simulation";
  Output.table
    [ "loss"; "paper"; "degree MC"; "simulation" ]
    (List.map
       (fun ((loss, pm, ps), mc, sim_in, _) ->
         [
           Output.f2 loss;
           Fmt.str "%.0f±%.1f" pm ps;
           Fmt.str "%.2f±%.2f" (Pmf.mean mc.Degree_mc.indegree) (Pmf.std mc.Degree_mc.indegree);
           Fmt.str "%.2f±%.2f" (Summary.mean sim_in) (Summary.std sim_in);
         ])
       results);
  Output.subsection "outdegree: degree MC vs simulation";
  Output.table
    [ "loss"; "degree MC"; "simulation"; "MC mode" ]
    (List.map
       (fun ((loss, _, _), mc, _, sim_out) ->
         [
           Output.f2 loss;
           Fmt.str "%.2f±%.2f" (Pmf.mean mc.Degree_mc.outdegree) (Pmf.std mc.Degree_mc.outdegree);
           Fmt.str "%.2f±%.2f" (Summary.mean sim_out) (Summary.std sim_out);
           Output.i (Pmf.mode mc.Degree_mc.outdegree);
         ])
       results);
  Output.subsection "indegree distribution series (degree MC)";
  let mcs = List.map (fun ((loss, _, _), mc, _, _) -> (loss, mc)) results in
  let rows =
    List.filter_map
      (fun din ->
        let probs = List.map (fun (_, mc) -> Pmf.prob mc.Degree_mc.indegree din) mcs in
        if List.exists (fun p -> p > 1e-3) probs then
          Some (Output.i din :: List.map Output.f4 probs)
        else None)
      (List.init 45 Fun.id)
  in
  Output.table ([ "din" ] @ List.map (fun (l, _) -> Fmt.str "l=%.2f" l) mcs) rows;
  List.iter
    (fun ((loss, pm, _), mc, sim_in, _) ->
      let mc_mean = Pmf.mean mc.Degree_mc.indegree in
      Output.check
        (Fmt.str "loss %.2f: MC mean %.1f within 1.5 of paper %.0f and sim %.1f"
           loss mc_mean pm (Summary.mean sim_in))
        (Float.abs (mc_mean -. pm) < 1.5 && Float.abs (mc_mean -. Summary.mean sim_in) < 1.))
    results;
  (* Lemma 6.4: expected outdegree decreases with loss. *)
  let means = List.map (fun (_, mc, _, _) -> Pmf.mean mc.Degree_mc.outdegree) results in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Output.check "Lemma 6.4: expected outdegree decreases with loss" (decreasing means);
  Output.check "outdegree stays well above dL=18 even at 10% loss"
    (List.for_all (fun m -> m > 20.) means)

(* --- Lemmas 6.6/6.7 rate balance --- *)

let table_6_7 () =
  Output.section "L6.6/6.7" "Duplication vs loss + deletion (Lemmas 6.6 and 6.7)";
  Fmt.pr
    "Per-send probabilities in the degree-MC fixed point and measured in@\n\
     simulation (dL=18, s=40, delta budget 0.01).@.";
  let rows =
    List.map
      (fun loss ->
        let params = Degree_mc.make_params ~view_size:40 ~lower_threshold:18 ~loss () in
        let mc = Degree_mc.solve params in
        let r = make_system ~loss () in
        Runner.run_rounds r 300;
        let base = Runner.world_counters r in
        Runner.run_rounds r 400;
        let rates = Runner.rates_since r base in
        ( loss,
          mc.Degree_mc.duplication_probability,
          mc.Degree_mc.deletion_probability,
          rates ))
      [ 0.; 0.01; 0.05; 0.1 ]
  in
  Output.table
    [ "loss"; "MC dup"; "MC del"; "MC loss+del"; "sim dup"; "sim del"; "sim loss+del" ]
    (List.map
       (fun (loss, dup, del, rates) ->
         [
           Output.f2 loss;
           Output.f4 dup;
           Output.f4 del;
           Output.f4 (loss +. del);
           Output.f4 rates.Runner.duplication;
           Output.f4 rates.Runner.deletion;
           Output.f4 (rates.Runner.loss +. rates.Runner.deletion);
         ])
       rows);
  List.iter
    (fun (loss, dup, del, _) ->
      Output.check
        (Fmt.str "Lemma 6.6 at loss %.2f: dup = loss + del" loss)
        (Float.abs (dup -. (loss +. del)) < 5e-3))
    rows;
  let delta = 0.01 in
  List.iter
    (fun (loss, dup, _, _) ->
      Output.check
        (Fmt.str "Lemma 6.7 at loss %.2f: dup within [loss, loss+delta]" loss)
        (dup >= loss -. 5e-3 && dup <= loss +. delta +. 5e-3))
    rows
