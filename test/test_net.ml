(* Tests for the UDP deployment layer: the wire codec and the socket-based
   cluster driver. *)

module Codec = Sf_net.Codec
module Cluster = Sf_net.Cluster
module View = Sf_core.View
module Protocol = Sf_core.Protocol

let entry ?(serial = 0) ?(anchor = None) ?(born = 0) id =
  { View.id; serial; anchor; born }

let message ?(anchor = None) () =
  {
    Protocol.reinforcement = entry ~serial:123 ~anchor ~born:42 7;
    mixing = entry ~serial:456 ~born:43 9;
  }

(* --- Codec --- *)

let test_codec_roundtrip () =
  let m = message ~anchor:(Some 5) () in
  let encoded = Codec.encode m in
  Alcotest.(check int) "size" Codec.message_size (Bytes.length encoded);
  match Codec.decode encoded ~length:(Bytes.length encoded) with
  | Ok decoded ->
    Alcotest.(check bool) "roundtrip" true (decoded = m)
  | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e

let test_codec_none_anchor () =
  let m = message () in
  match Codec.decode (Codec.encode m) ~length:Codec.message_size with
  | Ok decoded ->
    Alcotest.(check bool) "anchor None survives" true
      (decoded.Protocol.reinforcement.View.anchor = None)
  | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e

let test_codec_truncated () =
  let encoded = Codec.encode (message ()) in
  (match Codec.decode encoded ~length:10 with
  | Error (Codec.Too_short 10) -> ()
  | _ -> Alcotest.fail "short datagram must be rejected")

let test_codec_bad_magic () =
  let encoded = Codec.encode (message ()) in
  Bytes.set encoded 0 'x';
  (match Codec.decode encoded ~length:Codec.message_size with
  | Error (Codec.Bad_magic 'x') -> ()
  | _ -> Alcotest.fail "bad magic must be rejected")

let test_codec_bad_version () =
  let encoded = Codec.encode (message ()) in
  Bytes.set encoded 1 '\x7f';
  (match Codec.decode encoded ~length:Codec.message_size with
  | Error (Codec.Unsupported_version _) -> ()
  | _ -> Alcotest.fail "unknown version must be rejected")

let prop_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      let entry_gen =
        map2
          (fun (id, serial) (anchor, born) ->
            { View.id; serial; anchor = (if anchor < 0 then None else Some anchor); born })
          (pair (int_range 0 1_000_000) (int_range 0 1_000_000))
          (pair (int_range (-1) 1_000_000) (int_range 0 1_000_000))
      in
      map2
        (fun reinforcement mixing -> { Protocol.reinforcement; mixing })
        entry_gen entry_gen)
  in
  QCheck.Test.make ~name:"codec roundtrip" ~count:300 (QCheck.make gen) (fun m ->
      match Codec.decode (Codec.encode m) ~length:Codec.message_size with
      | Ok decoded -> decoded = m
      | Error _ -> false)

(* --- Cluster --- *)

let config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_cluster ?(n = 24) ?(loss = 0.) ~base_port () =
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 5) ~n ~out_degree:4 in
  Cluster.create ~period:0.002 ~base_port ~n ~config ~loss_rate:loss ~seed:6 ~topology ()

let test_cluster_runs_and_converges () =
  let c = make_cluster ~base_port:48100 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown c)
    (fun () ->
      Cluster.run c ~duration:1.5;
      let stats = Cluster.statistics c in
      Alcotest.(check bool) "actions happened" true (stats.Cluster.actions > 500);
      Alcotest.(check bool) "datagrams flowed" true (stats.Cluster.datagrams_sent > 100);
      Alcotest.(check int) "no decode errors" 0 stats.Cluster.decode_errors;
      Alcotest.(check int) "no send errors" 0 stats.Cluster.send_errors;
      (* Without injected loss every sent datagram arrives on loopback. *)
      Alcotest.(check int) "conservation"
        (stats.Cluster.datagrams_sent - stats.Cluster.datagrams_dropped)
        stats.Cluster.datagrams_received;
      Alcotest.(check bool) "connected" true (Cluster.is_weakly_connected c);
      (* Observation 5.1 holds over the real transport too. *)
      let outs = Cluster.outdegree_summary c in
      Alcotest.(check bool) "degrees bounded" true
        (Sf_stats.Summary.min_value outs >= 0. && Sf_stats.Summary.max_value outs <= 12.))

let test_cluster_injected_loss_rate () =
  let c = make_cluster ~n:32 ~loss:0.2 ~base_port:48200 () in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown c)
    (fun () ->
      Cluster.run c ~duration:1.5;
      let stats = Cluster.statistics c in
      let observed =
        float_of_int stats.Cluster.datagrams_dropped
        /. float_of_int (max 1 stats.Cluster.datagrams_sent)
      in
      Alcotest.(check bool)
        (Printf.sprintf "observed loss %.3f near 0.2" observed)
        true
        (Float.abs (observed -. 0.2) < 0.05);
      (* Duplication compensates: degrees stay at/above dL. *)
      let outs = Cluster.outdegree_summary c in
      Alcotest.(check bool) "degrees survive loss" true
        (Sf_stats.Summary.mean outs >= 4.))

(* Regression for the select-loop hardening: a SIGALRM firing every few
   milliseconds interrupts [Unix.select] with EINTR throughout the run.
   The driver must treat that as "try again", not an error — before the
   hardening this aborted the run with [Unix.Unix_error (EINTR, ...)]. *)
let test_cluster_survives_signals () =
  let fired = ref 0 in
  let previous =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr fired))
  in
  let previous_timer =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_interval = 0.01; it_value = 0.01 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL previous_timer);
      Sys.set_signal Sys.sigalrm previous)
    (fun () ->
      let c = make_cluster ~base_port:48300 () in
      Fun.protect
        ~finally:(fun () -> Cluster.shutdown c)
        (fun () ->
          Cluster.run c ~duration:1.0;
          Alcotest.(check bool)
            (Printf.sprintf "signals actually fired (%d)" !fired)
            true (!fired > 10);
          let stats = Cluster.statistics c in
          Alcotest.(check bool) "the run kept making progress" true
            (stats.Cluster.actions > 200);
          Alcotest.(check int) "no decode errors" 0 stats.Cluster.decode_errors))

(* Crash-restart with state recovery: under a resilience policy a crash
   window really closes the victim's socket, and leaving the window
   rebinds a fresh socket on the same port and rejoins from the saved
   snapshot.  The cluster must finish with every node live, views sound
   and the rejoins counted. *)
let test_cluster_crash_rebind () =
  let policy =
    Sf_resil.Policy.make ~retune:false ~recover:false
      ~solve:(fun ~loss:_ -> (4, 12))
      ()
  in
  let scenario =
    match Sf_faults.Scenario.of_string "crash@100-200:0-3" with
    | Ok sc -> sc
    | Error e -> Alcotest.fail ("scenario parse: " ^ e)
  in
  let n = 24 in
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 5) ~n ~out_degree:4 in
  let c =
    Cluster.create ~period:0.002 ~scenario ~resilience:policy ~base_port:48350 ~n
      ~config ~loss_rate:0. ~seed:6 ~topology ()
  in
  Fun.protect
    ~finally:(fun () -> Cluster.shutdown c)
    (fun () ->
      (* period 2 ms: the crash window spans 0.2 s - 0.4 s of a 1.2 s run,
         so every victim crashes and rejoins well before the end. *)
      Cluster.run c ~duration:1.2;
      let stats = Cluster.statistics c in
      Alcotest.(check bool)
        (Printf.sprintf "rejoins counted (%d)" stats.Cluster.rejoins)
        true
        (stats.Cluster.rejoins >= 1);
      Alcotest.(check int) "nothing stayed crashed" 0
        (Seq.fold_left
           (fun acc (id, _) -> if Cluster.is_crashed c id then acc + 1 else acc)
           0 (Cluster.views c));
      (* Every view — including the rejoined victims' — is structurally
         sound, inside M1 bounds and even (Observation 5.1). *)
      Seq.iter
        (fun (id, view) ->
          (match Sf_check.Invariant.check_view view with
          | Some v ->
            Alcotest.failf "node %d: %a" id Sf_check.Invariant.pp_violation v
          | None -> ());
          let d = View.degree view in
          Alcotest.(check bool)
            (Printf.sprintf "node %d outdegree %d within [0, 12] and even" id d)
            true
            (d >= 0 && d <= 12 && d mod 2 = 0))
        (Cluster.views c);
      (* The victims rejoined with usable views. *)
      Seq.iter
        (fun (id, view) ->
          if id <= 3 then
            Alcotest.(check bool)
              (Printf.sprintf "victim %d has a non-empty view" id)
              true (View.degree view > 0))
        (Cluster.views c))

let test_cluster_port_validation () =
  Alcotest.(check bool) "privileged ports rejected" true
    (match make_cluster ~base_port:80 () with
    | exception Invalid_argument _ -> true
    | c ->
      Cluster.shutdown c;
      false)

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec None anchor" `Quick test_codec_none_anchor;
    Alcotest.test_case "codec truncated" `Quick test_codec_truncated;
    Alcotest.test_case "codec bad magic" `Quick test_codec_bad_magic;
    Alcotest.test_case "codec bad version" `Quick test_codec_bad_version;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    Alcotest.test_case "cluster converges (real UDP)" `Quick test_cluster_runs_and_converges;
    Alcotest.test_case "cluster loss injection" `Quick test_cluster_injected_loss_rate;
    Alcotest.test_case "cluster survives SIGALRM storms (EINTR)" `Quick
      test_cluster_survives_signals;
    Alcotest.test_case "cluster crash-restart rebinds and rejoins" `Quick
      test_cluster_crash_rebind;
    Alcotest.test_case "cluster port validation" `Quick test_cluster_port_validation;
  ]
