(** The single ambient time source in the tree.

    All other modules receive clocks by injection (an explicit
    [unit -> float] or a virtual clock like [Sf_engine.Sim.now]); the
    sf_lint [clock-discipline] rule enforces that wall/process clocks are
    opened only here.  Drivers that default to real time (the UDP cluster,
    bench timing) take their default from {!wall}. *)

val wall : unit -> float
(** The wall clock, in seconds since the epoch ([Unix.gettimeofday]). *)

val cpu : unit -> float
(** Per-process CPU seconds ([Sys.time]): preferred for overhead ratios,
    which wall time misstates whenever another process preempts the run. *)

val stopwatch : clock:(unit -> float) -> unit -> float
(** [stopwatch ~clock] samples [clock] now and returns a thunk yielding
    the elapsed amount on each call. *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process in kB (the kernel's VmHWM
    high-water mark); [None] where /proc/self/status is unavailable. *)
