(** Fork-join execution of an indexed task set across OCaml 5 domains —
    the barrier primitive of the sharded runner. *)

val run : domains:int -> tasks:int -> (int -> unit) -> unit
(** [run ~domains ~tasks f] executes [f 0 .. f (tasks - 1)], partitioned
    into contiguous index ranges across at most [domains] domains, and
    returns once all of them have completed (the barrier).  [domains = 1]
    runs everything inline on the calling domain.

    Tasks must touch only task-owned state; under that contract the
    result is independent of [domains].  If any task raises, every domain
    is still joined and the first failure (in range order) is re-raised.
    Raises [Invalid_argument] for [domains < 1] or [tasks < 0]. *)
