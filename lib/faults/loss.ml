(* Stateful loss processes: i.i.d. (the paper's model), Gilbert-Elliott
   bursty loss, and per-link asymmetric loss.  See the .mli for the
   stationary-mean mapping that keeps bursty runs comparable to the paper's
   uniform [loss] parameter. *)

type ge = {
  p_good_to_bad : float;
  p_bad_to_good : float;
  loss_good : float;
  loss_bad : float;
}

type model =
  | Iid
  | Gilbert_elliott of ge
  | Per_link of (int -> int -> float)

let check_probability name p =
  if p < 0. || p > 1. || Float.is_nan p then
    invalid_arg (Fmt.str "Loss.gilbert_elliott: %s = %g outside [0,1]" name p)

let gilbert_elliott ?(loss_good = 0.) ?(loss_bad = 1.) ~mean_loss ~mean_burst () =
  check_probability "loss_good" loss_good;
  check_probability "loss_bad" loss_bad;
  check_probability "mean_loss" mean_loss;
  if not (loss_good <= mean_loss && mean_loss < loss_bad) then
    invalid_arg
      (Fmt.str
         "Loss.gilbert_elliott: need loss_good <= mean_loss < loss_bad, got %g <= %g < %g"
         loss_good mean_loss loss_bad);
  if mean_burst < 1. then
    invalid_arg (Fmt.str "Loss.gilbert_elliott: mean_burst %g < 1" mean_burst);
  let p_bad_to_good = 1. /. mean_burst in
  let p_good_to_bad =
    p_bad_to_good *. (mean_loss -. loss_good) /. (loss_bad -. mean_loss)
  in
  check_probability "implied p_good_to_bad" p_good_to_bad;
  { p_good_to_bad; p_bad_to_good; loss_good; loss_bad }

let stationary_loss g =
  let denom = g.p_good_to_bad +. g.p_bad_to_good in
  if denom <= 0. then g.loss_good
  else
    let pi_bad = g.p_good_to_bad /. denom in
    ((1. -. pi_bad) *. g.loss_good) +. (pi_bad *. g.loss_bad)

let mean_burst_length g =
  if g.p_bad_to_good <= 0. then infinity else 1. /. g.p_bad_to_good

type t = {
  spec : model;
  mutable bad : bool;  (* Gilbert-Elliott chain position; starts Good *)
}

let create spec = { spec; bad = false }

let model t = t.spec

let drop t rng ~chance ~src ~dst =
  match t.spec with
  | Iid -> Sf_prng.Rng.bernoulli rng chance
  | Per_link f -> Sf_prng.Rng.bernoulli rng (f src dst)
  | Gilbert_elliott g ->
    let flip =
      Sf_prng.Rng.bernoulli rng (if t.bad then g.p_bad_to_good else g.p_good_to_bad)
    in
    if flip then t.bad <- not t.bad;
    Sf_prng.Rng.bernoulli rng (if t.bad then g.loss_bad else g.loss_good)

let in_burst t = t.bad
