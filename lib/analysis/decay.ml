(* Dynamics of joining and leaving nodes (paper, section 6.5).

   Lemma 6.9/6.10: each instance of a departed node's id survives a round
   with probability at most 1 - (1 - loss - delta) dL / s^2, so the
   survival probability after i rounds is bounded by that quantity to the
   power i (Figure 6.4).

   Lemmas 6.11-6.13 and Corollary 6.14 bound the integration speed of a
   joiner: a veteran node creates new instances of its id at expected rate
   at least Delta >= (1 - loss - delta) dL Din / s^2 per round; a fresh
   joiner with outdegree dL is slower by at most (dL / s)^2, and within
   s^2 / ((1 - loss - delta) dL) rounds creates at least (dL / s)^2 Din
   instances — Din / 4 within 2s rounds when s = 2 dL and loss is small. *)

type params = {
  loss : float;
  delta : float;           (* duplication budget of the configuration *)
  lower_threshold : int;   (* dL *)
  view_size : int;         (* s *)
}

let make_params ~loss ~delta ~lower_threshold ~view_size =
  if loss < 0. || loss >= 1. then invalid_arg "Decay.make_params: bad loss";
  if delta < 0. || delta >= 1. then invalid_arg "Decay.make_params: bad delta";
  if lower_threshold <= 0 then
    invalid_arg "Decay.make_params: dL must be positive for decay bounds";
  if view_size < lower_threshold then invalid_arg "Decay.make_params: s < dL";
  { loss; delta; lower_threshold; view_size }

(* Per-round survival factor 1 - (1 - loss - delta) dL / s^2 (Lemma 6.9). *)
let per_round_survival p =
  let s = float_of_int p.view_size in
  let removal = (1. -. p.loss -. p.delta) *. float_of_int p.lower_threshold /. (s *. s) in
  1. -. removal

(* Upper bound on the survival probability of one id instance after
   [rounds] rounds (Lemma 6.10). *)
let survival_bound p ~rounds = per_round_survival p ** float_of_int rounds

(* The full curve of Figure 6.4: bound at rounds 0, 1, ..., rounds. *)
let survival_curve p ~rounds =
  let factor = per_round_survival p in
  let out = Array.make (rounds + 1) 1. in
  for i = 1 to rounds do
    out.(i) <- out.(i - 1) *. factor
  done;
  out

(* Smallest number of rounds after which the bound drops to [fraction]. *)
let rounds_to_fraction p ~fraction =
  if fraction <= 0. || fraction >= 1. then
    invalid_arg "Decay.rounds_to_fraction: fraction must lie in (0,1)";
  let factor = per_round_survival p in
  if factor >= 1. then max_int
  else int_of_float (Float.ceil (log fraction /. log factor))

(* Expected creation rate of a veteran node, Lemma 6.11:
   Delta >= (1 - loss - delta) dL Din / s^2 per round. *)
let veteran_creation_rate p ~expected_indegree =
  let s = float_of_int p.view_size in
  (1. -. p.loss -. p.delta) *. float_of_int p.lower_threshold *. expected_indegree
  /. (s *. s)

(* A fresh joiner's creation rate is at least (dL / s)^2 times the veteran
   rate (Lemma 6.12). *)
let joiner_creation_rate p ~expected_indegree =
  let ratio = float_of_int p.lower_threshold /. float_of_int p.view_size in
  ratio *. ratio *. veteran_creation_rate p ~expected_indegree

(* Lemma 6.13: within this many rounds a joiner is expected to create at
   least (dL / s)^2 * Din instances. *)
let joiner_integration_rounds p =
  let s = float_of_int p.view_size in
  int_of_float
    (Float.ceil (s *. s /. ((1. -. p.loss -. p.delta) *. float_of_int p.lower_threshold)))

let joiner_integration_instances p ~expected_indegree =
  let ratio = float_of_int p.lower_threshold /. float_of_int p.view_size in
  ratio *. ratio *. expected_indegree

(* Corollary 6.14 specialization: for s = 2 dL and small loss + delta, a
   joiner creates at least Din / 4 instances within about 2 s rounds. *)
let corollary_6_14 p ~expected_indegree =
  let rounds = joiner_integration_rounds p in
  let instances = joiner_integration_instances p ~expected_indegree in
  (rounds, instances)
