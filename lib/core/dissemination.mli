(** Push-epidemic rumor spreading over the evolving membership views — the
    dissemination workload that motivates small uniform views (Property M1
    discussion). Advances the runner. *)

type trace = {
  rounds_to_half : int option;
  rounds_to_all : int option;
  coverage : float array;  (** infected fraction after each round *)
  pushes : int;            (** total push messages sent *)
}

val spread :
  ?coverage_target:float ->
  ?max_rounds:int ->
  Runner.t ->
  Sf_prng.Rng.t ->
  fanout:int ->
  loss_rate:float ->
  source:int ->
  unit ->
  trace
(** Spread a rumor from [source]: each round every infected node pushes to
    [fanout] peers sampled from its current view; pushes are lost with
    [loss_rate]. Stops at [coverage_target] (default 0.99) of live nodes or
    [max_rounds]. *)
