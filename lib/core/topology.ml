(* Initial membership topologies.  The analysis requires starting from a
   weakly connected graph (section 4); these generators produce the initial
   states used across experiments:

   - [regular]: every node has outdegree d and indegree d, so the sum degree
     ds(u) = 3d is uniform — the initialization assumed by the no-loss
     analysis of section 6.1 (ds(u) = dm with d = dm/3).
   - [uniform_random]: every node picks d distinct random out-neighbors;
     indegrees are binomial.
   - [ring]: node u points at u+1 .. u+d (mod n) — a deliberately poor,
     highly structured starting state for convergence experiments.
   - [star_like]: all nodes point at a small hub set — a pathological
     starting state for load-balance recovery experiments. *)

type t = int -> int list
(* A topology maps each node index in [0, n) to its initial out-neighbor
   ids (with multiplicity). *)

(* A random permutation of [0, n) with no fixed points (swap any fixed point
   with its successor), so the regular topology has no self-edges. *)
let derangement rng n =
  let p = Array.init n (fun i -> i) in
  Sf_prng.Rng.shuffle rng p;
  for i = 0 to n - 1 do
    if p.(i) = i then begin
      let j = (i + 1) mod n in
      let tmp = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- tmp
    end
  done;
  p

let regular rng ~n ~out_degree =
  if out_degree >= n then invalid_arg "Topology.regular: out_degree >= n";
  let perms = Array.init out_degree (fun _ -> derangement rng n) in
  fun u -> Array.to_list (Array.map (fun p -> p.(u)) perms)

let uniform_random rng ~n ~out_degree =
  if out_degree >= n then invalid_arg "Topology.uniform_random: out_degree >= n";
  fun u ->
    (* d distinct ids, none equal to u. *)
    let picks = Sf_prng.Rng.sample_indices rng ~n:(n - 1) ~k:out_degree in
    Array.to_list (Array.map (fun x -> if x >= u then x + 1 else x) picks)

let ring ~n ~out_degree =
  if out_degree >= n then invalid_arg "Topology.ring: out_degree >= n";
  fun u -> List.init out_degree (fun k -> (u + k + 1) mod n)

let star_like ~n ~hubs ~out_degree =
  if hubs <= 0 || hubs >= n then invalid_arg "Topology.star_like: bad hub count";
  fun u ->
    if u < hubs then
      (* Hubs point around the hub ring plus the first few non-hubs. *)
      List.init out_degree (fun k ->
          if k < hubs - 1 then (u + k + 1) mod hubs else hubs + ((u + k) mod (n - hubs)))
    else List.init out_degree (fun k -> (u + k) mod hubs)
