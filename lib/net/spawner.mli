(** The multi-process cluster controller: fork {!Nodehost} processes,
    watch their heartbeats, drive fault scenarios across process
    boundaries, and collect the merged result.

    This is the {e only} module allowed to use process-control primitives
    ([Unix.create_process], [Unix.kill], [Unix.waitpid]) — the sf_lint
    [no-raw-process] rule confines them here, the way [no-raw-backoff]
    confines sleeping to {!Sf_resil.Backoff}.

    Scenario realization: the loss model runs per-process at each host's
    senders; [partition\@A-B:K] windows become [filter] commands to every
    host's control socket; [crash\@A-B:LO-HI] windows become real
    [kill -9] of the owning processes at round [A] and fresh spawns at
    round [B].  Delay/corrupt windows have no cross-process realization
    and are rejected by {!make_config}.  A host that dies unexpectedly or
    falls silent past the heartbeat timeout is killed (if needed) and
    respawned under capped exponential {!Sf_resil.Backoff}, scheduled on
    the event-loop clock — the controller never sleeps. *)

type host_outcome = {
  index : int;
  views : (int * Sf_core.View.entry list) list;
      (** final views of the host's owned nodes, as reported at stop *)
  stats : (string * float) list;
      (** the host's [stats] line, key by key (actions, sent, batches,
          frames, p50_us, p99_us, ...) *)
  bye : bool;  (** the host completed the shutdown protocol *)
  respawns : int;
}

type outcome = {
  hosts : host_outcome list;
  merged_views : (int * Sf_core.View.entry list) list;
      (** all hosts' views merged and sorted by node id — the
          post-heal global state the M1/parity/connectivity gates check *)
  heartbeats : int;
  kills : int;  (** deliberate SIGKILLs (crash windows + wedged hosts) *)
  respawns : int;
  hb_timeouts : int;
  unexpected_deaths : int;
  wall_seconds : float;
}

type config

val make_config :
  ?binary:string ->          (* node-host executable; default: next to
                                Sys.executable_name, falling back to
                                ../bin/sf_nodehost.exe *)
  ?view_size:int ->
  ?lower_threshold:int ->
  ?out_degree:int ->         (* 0 (default) derives the even sfg-gate degree *)
  ?loss_rate:float ->
  ?period:float ->
  ?version_of_host:(int -> int) ->  (* wire ceiling per host index
                                       (default: all v2); mixed clusters
                                       exercise per-peer downgrade *)
  ?resilience:bool ->        (* default true *)
  ?heartbeat:float ->
  ?hb_timeout:float ->
  ?log:(string -> unit) ->   (* progress lines; silent by default *)
  hosts:int ->
  nodes_per_host:int ->
  base_port:int ->           (* node i at base_port + i; the heartbeat sink
                                at base_port - 1; host j's control socket
                                at base_port - 2 - j *)
  scenario:Sf_faults.Scenario.t ->
  seed:int ->
  duration:float ->          (* seconds of chaos before shutdown *)
  unit ->
  config
(** Raises [Invalid_argument] on a bad port range or a scenario with
    delay/corrupt windows. *)

val run : config -> outcome
(** Spawn the hosts, run the plan, shut down (heal everything, lift
    filters, [stop] each host, escalate SIGTERM → SIGKILL on stragglers)
    and return the merged outcome.  Kills every child before re-raising
    on error. *)
