(** Random-walk sampling over the membership graph — the non-local
    alternative of the paper's section 3.1, for loss-degradation
    experiments. *)

type walk_result =
  | Completed of int    (** endpoint id *)
  | Lost_at_hop of int  (** the i-th hop message was lost *)
  | Dead_end of int     (** reached an empty view / departed node *)

val walk :
  Runner.t ->
  Sf_prng.Rng.t ->
  start:int ->
  length:int ->
  loss_rate:float ->
  walk_result

type statistics = {
  attempts : int;
  completed : int;
  lost : int;
  dead_ends : int;
  success_rate : float;
  endpoint_counts : (int, int) Hashtbl.t;
}

val sample_statistics :
  Runner.t ->
  Sf_prng.Rng.t ->
  attempts:int ->
  length:int ->
  loss_rate:float ->
  statistics

val success_probability : length:int -> loss_rate:float -> float
(** (1 - loss)^length — exponential decay with walk length. *)
