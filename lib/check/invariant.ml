(* Runtime audit of the paper's invariants.

   The static side (sf_lint) keeps hazards out of the source; this layer
   checks, while a system runs, that the implementation actually performs
   the transitions the paper analyzes:

   - M1 / Observation 5.1: every outdegree stays within [0, s] (and even,
     for systems started from an even topology);
   - degree conservation: a loss-free, non-duplicating S&F action moves
     exactly two edges from the sender to the receiver, so the global edge
     count is unchanged; duplication adds two, loss/deletion removes two
     (the balance behind Lemma 6.6);
   - the dL rule (section 6.3): an action duplicates iff the sender's
     outdegree was at or below dL when it initiated;
   - view structural soundness: the cached degree matches the occupied
     slots, serials are globally unique and below the mint bound, and no
     entry claims a birth time in the future.

   Attachment goes through [Runner.set_audit] (per-action events) and
   [Sim.set_monitor] (timed-mode cadence).  Per-action checks are O(live)
   — a sum of cached degrees — and full scans are O(live * s), run every
   [scan_every] actions. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module View = Sf_core.View

let src = Logs.Src.create "sf.check" ~doc:"Paper-invariant runtime audit"

module Log = (val Logs.src_log src : Logs.LOG)

type mode = Warn | Strict

type violation = { invariant : string; detail : string }

exception Violation of violation

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.invariant v.detail

let violation invariant fmt = Fmt.kstr (fun detail -> { invariant; detail }) fmt

(* --- Pure checks, usable without attaching an auditor --- *)

(* The View API maintains the cached degree itself, so this can only fail
   if the cache logic regresses — which is exactly what it guards. *)
let check_view view =
  let occupied = ref 0 in
  for i = 0 to View.size view - 1 do
    match View.get view i with Some _ -> incr occupied | None -> ()
  done;
  if !occupied <> View.degree view then
    Some
      (violation "view-soundness" "cached degree %d but %d occupied slots"
         (View.degree view) !occupied)
  else None

let check_degree ?(require_even = true) ~config node =
  let d = Protocol.degree node in
  let s = config.Protocol.view_size in
  if d < 0 || d > s then
    Some
      (violation "M1-degree-bound" "node %d has outdegree %d outside [0, %d]"
         node.Protocol.node_id d s)
  else if require_even && d mod 2 <> 0 then
    Some
      (violation "degree-parity" "node %d has odd outdegree %d"
         node.Protocol.node_id d)
  else None

let total_edges runner =
  Array.fold_left
    (fun acc node -> acc + Protocol.degree node)
    0 (Runner.live_nodes runner)

(* Full structural scan: per-view soundness, degree bounds, global serial
   uniqueness, serial/birth bounds. *)
let scan ?(require_even = true) runner =
  let ceiling = Runner.minted_serials runner in
  let now = Runner.action_count runner in
  let seen = Hashtbl.create 4096 in
  let violations = ref [] in
  let record = function Some v -> violations := v :: !violations | None -> () in
  Array.iter
    (fun node ->
      record (check_view node.Protocol.view);
      (* Per-node config: the resilience controller may have retuned this
         node's thresholds away from the base config. *)
      record
        (check_degree ~require_even
           ~config:(Runner.node_config runner node.Protocol.node_id)
           node);
      View.iter
        (fun _ (e : View.entry) ->
          (match Hashtbl.find_opt seen e.View.serial with
          | Some owner ->
            record
              (Some
                 (violation "serial-uniqueness"
                    "serial %d held by both node %d and node %d" e.View.serial
                    owner node.Protocol.node_id))
          | None -> Hashtbl.add seen e.View.serial node.Protocol.node_id);
          if e.View.serial < 0 || e.View.serial >= ceiling then
            record
              (Some
                 (violation "serial-bound"
                    "node %d holds serial %d outside [0, %d)"
                    node.Protocol.node_id e.View.serial ceiling));
          if e.View.born > now then
            record
              (Some
                 (violation "birth-bound"
                    "node %d holds an entry born at action %d > clock %d"
                    node.Protocol.node_id e.View.born now)))
        node.Protocol.view)
    (Runner.live_nodes runner);
  List.rev !violations

(* --- The attached auditor --- *)

type stats = {
  mutable actions_checked : int;
  mutable receipts_seen : int;
  mutable full_scans : int;
  mutable resyncs : int;
  mutable violation_count : int;
  mutable violations : violation list;  (* newest first, bounded *)
}

let kept_violations = 100

type auditor = {
  mode : mode;
  scan_every : int;
  require_even : bool;
  stats : stats;
  mutable edges : int;     (* cached global edge count *)
  mutable synced : bool;   (* false once timed-mode events interleave *)
  mutable events : int;    (* sim events seen by the monitor *)
}

let report a v =
  a.stats.violation_count <- a.stats.violation_count + 1;
  match a.mode with
  | Strict -> raise (Violation v)
  | Warn ->
    if a.stats.violation_count <= kept_violations then
      a.stats.violations <- v :: a.stats.violations;
    Log.warn (fun m -> m "%a" pp_violation v)

let full_scan a runner =
  a.stats.full_scans <- a.stats.full_scans + 1;
  List.iter (report a) (scan ~require_even:a.require_even runner)

(* Expected change of the global edge count for a completed action, or
   [None] when the outcome is still in flight (timed mode). *)
let expected_delta = function
  | Runner.Audit_self_loop -> Some 0
  | Runner.Audit_send { duplicated; delivery; _ } -> (
    match (delivery, duplicated) with
    | Runner.In_flight, _ -> None
    | Runner.Accepted, false -> Some 0
    | Runner.Accepted, true -> Some 2
    | (Runner.Deleted | Runner.Lost | Runner.To_dead), false -> Some (-2)
    | (Runner.Deleted | Runner.Lost | Runner.To_dead), true -> Some 0)

let on_action a runner ~initiator ~degree_before ~degree_after ~outcome =
  a.stats.actions_checked <- a.stats.actions_checked + 1;
  (* The initiator's *current* config: adaptive retuning makes s and dL
     per-node quantities, and the dL rule must be judged against the
     thresholds the node actually ran with. *)
  let config = Runner.node_config runner initiator in
  let s = config.Protocol.view_size in
  let dl = config.Protocol.lower_threshold in
  (* A frozen node must not act: the runner's scheduler is required to skip
     ids inside an active crash window (fault scenarios, lib/faults). *)
  if Runner.is_crashed runner initiator then
    report a
      (violation "crashed-initiator"
         "node %d initiated inside an active crash window" initiator);
  (* M1 on the initiator. *)
  if degree_after < 0 || degree_after > s then
    report a
      (violation "M1-degree-bound" "initiator %d left with outdegree %d outside [0, %d]"
         initiator degree_after s);
  if a.require_even && degree_after mod 2 <> 0 then
    report a
      (violation "degree-parity" "initiator %d left with odd outdegree %d" initiator
         degree_after);
  (match outcome with
  | Runner.Audit_self_loop ->
    if degree_after <> degree_before then
      report a
        (violation "self-loop-noop" "self-loop changed initiator %d's outdegree %d -> %d"
           initiator degree_before degree_after)
  | Runner.Audit_send { destination; duplicated; delivery } ->
    (* The dL rule: duplicate iff the outdegree was at or below dL. *)
    if duplicated <> (degree_before <= dl) then
      report a
        (violation "dL-duplication-rule"
           "initiator %d sent with outdegree %d (dL = %d) but duplicated = %b" initiator
           degree_before dl duplicated);
    (* Sender-side degree accounting.  A send to self is special: the
       synchronous receive lands back in the initiator's own view before
       this event fires. *)
    let self = destination = initiator in
    let expected_after =
      match (duplicated, self, delivery) with
      | false, false, _ -> Some (degree_before - 2)
      | false, true, Runner.Accepted -> Some degree_before
      | false, true, (Runner.Lost | Runner.In_flight) -> Some (degree_before - 2)
      | false, true, (Runner.Deleted | Runner.To_dead) ->
        None (* unreachable for a live self-sender; don't misreport *)
      | true, false, _ -> Some degree_before
      | true, true, Runner.Accepted -> Some (degree_before + 2)
      | true, true, _ -> Some degree_before
    in
    (match expected_after with
    | Some d when degree_after <> d ->
      report a
        (violation "send-degree-accounting"
           "send (duplicated %b, to %d) moved initiator %d's outdegree %d -> %d, \
            expected %d"
           duplicated destination initiator degree_before degree_after d)
    | Some _ | None -> ());
    if (not duplicated) && degree_after < dl then
      report a
        (violation "M1-degree-bound"
           "non-duplicating send left initiator %d below dL: %d < %d" initiator
           degree_after dl));
  (* Degree conservation, checkable only while actions are serial. *)
  let measured = total_edges runner in
  (match expected_delta outcome with
  | Some delta when a.synced ->
    if measured - a.edges <> delta then
      report a
        (violation "edge-conservation"
           "action at %d: edge count moved %d -> %d but the outcome implies %+d"
           initiator a.edges measured delta)
  | Some _ -> ()
  | None -> a.synced <- false);
  a.edges <- measured;
  if a.scan_every > 0 && a.stats.actions_checked mod a.scan_every = 0 then
    full_scan a runner

let on_event a runner event =
  match event with
  | Runner.Action { initiator; degree_before; degree_after; outcome } ->
    on_action a runner ~initiator ~degree_before ~degree_after ~outcome
  | Runner.Receipt { receiver; accepted = _ } ->
    a.stats.receipts_seen <- a.stats.receipts_seen + 1;
    a.synced <- false;
    if Runner.is_crashed runner receiver then
      report a
        (violation "crashed-receiver"
           "node %d received a message inside an active crash window" receiver);
    (match Runner.find_node runner receiver with
    | None -> ()
    | Some node -> (
      match
        check_degree ~require_even:a.require_even
          ~config:(Runner.node_config runner receiver) node
      with
      | Some v -> report a v
      | None -> ()))
  | Runner.Structural reason ->
    ignore reason;
    a.stats.resyncs <- a.stats.resyncs + 1;
    a.edges <- total_edges runner

let attach ?(mode = Strict) ?(scan_every = 1000) ?(require_even = true) runner =
  let stats =
    {
      actions_checked = 0;
      receipts_seen = 0;
      full_scans = 0;
      resyncs = 0;
      violation_count = 0;
      violations = [];
    }
  in
  let a =
    {
      mode;
      scan_every;
      require_even;
      stats;
      edges = total_edges runner;
      synced = true;
      events = 0;
    }
  in
  Runner.set_audit runner (Some (on_event a));
  (* Timed runs execute deliveries as sim events between actions; keep the
     full-scan cadence going there too. *)
  Sf_engine.Sim.set_monitor (Runner.simulator runner)
    (Some
       (fun () ->
         a.events <- a.events + 1;
         if a.scan_every > 0 && a.events mod a.scan_every = 0 then
           full_scan a runner));
  stats

let detach runner =
  Runner.set_audit runner None;
  Sf_engine.Sim.set_monitor (Runner.simulator runner) None

(* --- The sharded flat-state runner --- *)

module Sharded = Runner.Sharded
module Flat = View.Flat

(* Full structural scan of a packed world.  The same invariants as [scan],
   re-derived for the flat encoding: M1 bounds and parity, cached degree
   against a slot recount, global serial uniqueness, the shard-strided
   serial bound (serial c*S + i is valid iff shard i has minted more than
   c times), birth times within the round clock, and id range. *)
let scan_sharded ?(require_even = true) w =
  let store = Sharded.store w in
  let cap = Flat.node_count store in
  let s = Flat.view_size store in
  let shard_count = Sharded.shard_count w in
  let minted = Sharded.minted w in
  let rounds = Sharded.rounds_completed w in
  let seen = Hashtbl.create 4096 in
  let violations = ref [] in
  let record v = violations := v :: !violations in
  for u = 0 to cap - 1 do
    if not (Sharded.is_live w u) then begin
      (* Dead slots (departed nodes, unused headroom) must hold nothing:
         leaves clear the view before recycling the slot. *)
      if Flat.degree store u <> 0 then
        record
          (violation "dead-slot-empty" "dead slot %d still has outdegree %d" u
             (Flat.degree store u))
    end
    else begin
    let d = Flat.degree store u in
    if d < 0 || d > s then
      record
        (violation "M1-degree-bound" "node %d has outdegree %d outside [0, %d]"
           u d s);
    if require_even && d mod 2 <> 0 then
      record (violation "degree-parity" "node %d has odd outdegree %d" u d);
    if Flat.recount_degree store u <> d then
      record
        (violation "view-soundness"
           "node %d: cached degree %d but %d occupied slots" u d
           (Flat.recount_degree store u));
    for slot = 0 to s - 1 do
      let id = Flat.id_at store u slot in
      if id >= 0 then begin
        (* Live views may reference dead ids (stale entries decay through
           the protocol), but never ids outside the allocated slot range. *)
        if id >= cap then
          record
            (violation "id-bound" "node %d holds id %d outside [0, %d)" u id
               cap);
        let serial = Flat.serial_at store u slot in
        (match Hashtbl.find_opt seen serial with
        | Some owner ->
          record
            (violation "serial-uniqueness"
               "serial %d held by both node %d and node %d" serial owner u)
        | None -> Hashtbl.add seen serial u);
        if
          serial < 0
          || serial / shard_count >= minted.(serial mod shard_count)
        then
          record
            (violation "serial-bound"
               "node %d holds serial %d beyond shard %d's mint position %d" u
               serial (serial mod shard_count)
               minted.(serial mod shard_count));
        let born = Flat.born_at store u slot in
        if born < 0 || born > rounds then
          record
            (violation "birth-bound"
               "node %d holds an entry born in round %d > clock %d" u born
               rounds)
      end
    done
    end
  done;
  List.rev !violations

(* Audited bulk-synchronous run.  The sharded runner has no per-action
   audit hook (actions are not serialized), so the external checks move to
   round granularity: after every round, the global edge count must have
   moved by exactly 2 * accepted duplications - 2 * dropped non-duplicated
   messages + churn edges added - churn edges removed (Lemma 6.6's balance
   extended for chaos — loss, crash/partition drops and deletion each
   retire a non-duplicated pair, duplication accepted at the receiver adds
   one, joins/leaves/rebootstraps move edges out of band);
   every [scan_every] rounds (and at the end) a full structural scan runs.
   The dL rule itself is enforced by construction inside the round loop
   and re-verified here through its footprint: parity plus the edge
   ledger.  In the returned stats, [actions_checked] counts audited
   rounds. *)
let audited_sharded_run ?(mode = Strict) ?(scan_every = 10)
    ?(require_even = true) ?(domains = 1) w ~rounds =
  let stats =
    {
      actions_checked = 0;
      receipts_seen = 0;
      full_scans = 0;
      resyncs = 0;
      violation_count = 0;
      violations = [];
    }
  in
  let report v =
    stats.violation_count <- stats.violation_count + 1;
    match mode with
    | Strict -> raise (Violation v)
    | Warn ->
      if stats.violation_count <= kept_violations then
        stats.violations <- v :: stats.violations;
      Log.warn (fun m -> m "%a" pp_violation v)
  in
  let full_scan () =
    stats.full_scans <- stats.full_scans + 1;
    List.iter report (scan_sharded ~require_even w)
  in
  let edges = ref (Sharded.total_edges w) in
  let prev = ref (Sharded.ledger w) in
  for r = 1 to rounds do
    Sharded.run_round w ~domains;
    stats.actions_checked <- stats.actions_checked + 1;
    let edges' = Sharded.total_edges w in
    let l = Sharded.ledger w in
    (* The extended Lemma 6.6 balance: duplication/loss/deletion move
       edges in pairs; joins and supervised rebootstraps create edges out
       of band, leaves and rebootstraps destroy them (crashes freeze nodes
       and only drop messages, so they have no term of their own). *)
    let expected =
      (2 * (l.Sharded.accepted_duplications - !prev.Sharded.accepted_duplications))
      - (2 * (l.Sharded.dropped_non_duplicated - !prev.Sharded.dropped_non_duplicated))
      + (l.Sharded.churn_edges_added - !prev.Sharded.churn_edges_added)
      - (l.Sharded.churn_edges_removed - !prev.Sharded.churn_edges_removed)
    in
    if edges' - !edges <> expected then
      report
        (violation "edge-conservation"
           "round %d: edge count moved %d -> %d but the ledger implies %+d"
           (Sharded.rounds_completed w)
           !edges edges' expected);
    edges := edges';
    prev := l;
    if scan_every > 0 && r mod scan_every = 0 then full_scan ()
  done;
  if scan_every <= 0 || rounds mod scan_every <> 0 || rounds = 0 then
    full_scan ();
  stats

(* One fully audited sequential run: attach, run, final scan, detach. *)
let audited_run ?(mode = Strict) ?scan_every ?(require_even = true) runner ~rounds =
  let stats = attach ~mode ?scan_every ~require_even runner in
  Fun.protect
    ~finally:(fun () -> detach runner)
    (fun () ->
      Runner.run_rounds runner rounds;
      stats.full_scans <- stats.full_scans + 1;
      List.iter
        (fun v ->
          stats.violation_count <- stats.violation_count + 1;
          match mode with
          | Strict -> raise (Violation v)
          | Warn ->
            if stats.violation_count <= kept_violations then
              stats.violations <- v :: stats.violations;
            Log.warn (fun m -> m "%a" pp_violation v))
        (scan ~require_even runner));
  stats
