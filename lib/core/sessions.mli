(** Session-based churn: Poisson arrivals with exponential or heavy-tailed
    (Pareto) session lengths, driving a {!Runner}. *)

type lifetime =
  | Exponential of float  (** mean lifetime in rounds *)
  | Pareto of { shape : float; minimum : float }
      (** heavy-tailed sessions; mean shape*minimum/(shape-1) for shape>1 *)

val mean_lifetime : lifetime -> float

val sample_lifetime : Sf_prng.Rng.t -> lifetime -> float

type t

val create :
  ?recover:bool ->
  runner:Runner.t ->
  seed:int ->
  lifetime:lifetime ->
  arrival_rate:float ->
  unit ->
  t
(** Attach a session process to a runner. [arrival_rate] is the expected
    number of joins per round; in equilibrium the population hovers near
    arrival_rate * mean_lifetime. [recover] (default true) runs the
    section 5 reconnection rule on isolated nodes each round. *)

val run_round : t -> unit
val run : t -> rounds:int -> unit

type statistics = {
  rounds : int;
  population : int;
  joins : int;
  leaves : int;
  reconnections : int;
}

val statistics : t -> statistics
