(* Tests for the sf_analyze pass engine: each pass fires on a bad fixture
   and stays quiet on a clean one, the baseline both suppresses findings
   and reports its own stale entries, and the committed baseline covers
   the real tree exactly. *)

module A = Sf_analyze_passes.Analyze_passes

let rules_of (a : A.analysis) = List.map (fun (f : A.finding) -> f.rule) a.findings

let check_fires name ~rule ~path source =
  let a = A.analyze_file ~path source in
  Alcotest.(check bool) (name ^ ": fires " ^ rule) true (List.mem rule (rules_of a))

let check_quiet name ~path source =
  let a = A.analyze_file ~path source in
  Alcotest.(check (list string)) (name ^ ": quiet") [] (rules_of a)

(* --- shared-state inventory --- *)

let test_shared_state_fires () =
  (* The acceptance fixture: a deliberate toplevel ref must be caught. *)
  let a = A.analyze_file ~path:"lib/core/fixture.ml" "let counter = ref 0" in
  Alcotest.(check bool) "toplevel ref fires" true
    (List.mem "shared-state" (rules_of a));
  (match a.hazards with
  | [ h ] ->
    Alcotest.(check string) "hazard ident" "counter" h.A.h_ident;
    Alcotest.(check bool) "unclassified until baselined" false h.A.h_classified
  | hs -> Alcotest.fail (Fmt.str "expected one hazard, got %d" (List.length hs)));
  (* Other allocator families are hazards too. *)
  check_fires "toplevel Hashtbl" ~rule:"shared-state" ~path:"lib/core/f.ml"
    "let table = Hashtbl.create 16";
  check_fires "toplevel array" ~rule:"shared-state" ~path:"lib/core/f.ml"
    "let cache = Array.make 8 0";
  check_fires "toplevel lazy" ~rule:"shared-state" ~path:"lib/core/f.ml"
    "let v = lazy (compute ())";
  (* Inside a submodule the binding is still module-level state. *)
  check_fires "ref in submodule" ~rule:"shared-state" ~path:"lib/core/f.ml"
    "module M = struct let slot = ref None end"

let test_shared_state_quiet () =
  (* An allocation under a lambda is per-call: a safe site, not a hazard. *)
  let a =
    A.analyze_file ~path:"lib/core/f.ml"
      "let fresh () = ref 0\nlet run n = Array.make n 0"
  in
  Alcotest.(check (list string)) "no findings" [] (rules_of a);
  Alcotest.(check int) "no hazards" 0 (List.length a.hazards);
  Alcotest.(check bool) "counted as safe sites" true
    (List.assoc_opt "lib/core/f.ml" a.safe_sites = Some 2);
  (* A binding that binds nothing cannot publish state. *)
  check_quiet "let () = driver" ~path:"bin/f.ml"
    "let () = let stop = ref false in while not !stop do step stop done";
  (* Functor bodies initialise per application. *)
  check_quiet "functor body" ~path:"lib/core/f.ml"
    "module Make (X : sig end) = struct let state = ref 0 end";
  (* Immutable toplevel data is not state at all. *)
  check_quiet "immutable toplevel" ~path:"lib/core/f.ml"
    "let golden = 0x9E3779B97F4A7C15L\nlet names = [ \"a\"; \"b\" ]"

(* --- effect signatures and discipline --- *)

let test_effect_signatures () =
  let a =
    A.analyze_file ~path:"bench/f.ml"
      "let tick c = incr c\nlet add a b = a + b"
  in
  (match a.effect_sigs with
  | [ s ] ->
    Alcotest.(check string) "effectful fn" "tick" s.A.e_name;
    Alcotest.(check (list string)) "mutation only" [ "mut" ]
      (A.effect_letters s.A.e_effects)
  | ss -> Alcotest.fail (Fmt.str "expected one signature, got %d" (List.length ss)));
  Alcotest.(check int) "pure fn counted" 1 a.pure_functions

let test_effect_discipline () =
  (* I/O from the pure layers is a finding... *)
  check_fires "io in lib/core" ~rule:"effect-discipline" ~path:"lib/core/f.ml"
    "let log x = print_endline x";
  check_fires "clock in lib/engine" ~rule:"effect-discipline"
    ~path:"lib/engine/f.ml" "let stamp () = Unix.gettimeofday ()";
  (* ...but fine from a bench or an executable. *)
  check_quiet "io in bench" ~path:"bench/f.ml" "let log x = print_endline x";
  (* Mutation alone does not violate the discipline. *)
  check_quiet "mutation in lib/core" ~path:"lib/core/f.ml"
    "let bump st = st.count <- st.count + 1"

let test_raise_locality () =
  check_fires "foreign exception" ~rule:"raise-locality" ~path:"lib/core/f.ml"
    "let f () = raise Stack_overflow";
  (* Locally declared exceptions, guard forms and re-raises are fine. *)
  check_quiet "local exception" ~path:"lib/core/f.ml"
    "exception Saturated\nlet f () = raise Saturated";
  check_quiet "invalid_arg guard" ~path:"lib/core/f.ml"
    "let f n = if n < 0 then invalid_arg \"f\" else n";
  (* Outside the pure layers the rule does not apply. *)
  check_quiet "raise in bench" ~path:"bench/f.ml"
    "let f () = raise Stack_overflow"

(* --- partiality --- *)

let test_partiality_fires () =
  check_fires "pipeline List.hd" ~rule:"partiality" ~path:"lib/core/f.ml"
    "let first xs = xs |> List.hd";
  check_fires "aliased module" ~rule:"partiality" ~path:"lib/core/f.ml"
    "module L = List\nlet first xs = L.hd xs";
  check_fires "unguarded Queue.pop" ~rule:"partiality" ~path:"lib/core/f.ml"
    "let f q = Queue.pop q";
  check_fires "higher-order position" ~rule:"partiality" ~path:"lib/core/f.ml"
    "let firsts xss = List.map List.hd xss"

let test_partiality_quiet () =
  check_quiet "total variant" ~path:"lib/core/f.ml"
    "let first xs = List.nth_opt xs 0";
  (* A dominating emptiness test exempts Queue/Stack pops. *)
  check_quiet "guarded Queue.pop" ~path:"lib/core/f.ml"
    "let drain q = while not (Queue.is_empty q) do ignore (Queue.pop q) done";
  check_quiet "guarded Stack.pop" ~path:"lib/core/f.ml"
    "let top s = if Stack.length s > 0 then Some (Stack.pop s) else None"

let test_partial_escape () =
  check_fires "Array.get escapes" ~rule:"partial-escape" ~path:"lib/core/f.ml"
    "let getter = Array.get";
  check_quiet "Array.get fully applied" ~path:"lib/core/f.ml"
    "let f a = Array.get a 0"

let test_refutable_let () =
  check_fires "refutable let" ~rule:"refutable-let" ~path:"lib/core/f.ml"
    "let f o = let (Some v) = o in v";
  check_quiet "irrefutable tuple let" ~path:"lib/core/f.ml"
    "let f p = let a, b = p in a + b"

let test_match_suppression () =
  check_fires "warning -8 attribute" ~rule:"match-suppression"
    ~path:"lib/core/f.ml"
    "let f x = match[@warning \"-8\"] x with Some y -> y";
  check_quiet "exhaustive match" ~path:"lib/core/f.ml"
    "let f x = match x with Some y -> y | None -> 0"

let test_parse_error () =
  check_fires "syntax error" ~rule:"parse-error" ~path:"lib/core/f.ml"
    "let = ="

(* --- baseline --- *)

let test_baseline_suppresses_and_classifies () =
  let a = A.analyze_file ~path:"lib/core/f.ml" "let counter = ref 0" in
  let entry = { A.allow_path = "lib/core/f.ml"; allow_rule = "shared-state" } in
  let kept, stale = A.apply_baseline [ entry ] a in
  Alcotest.(check int) "suppressed" 0 (List.length kept);
  Alcotest.(check int) "entry used" 0 (List.length stale);
  Alcotest.(check bool) "hazard classified in place" true
    (List.for_all (fun h -> h.A.h_classified) a.hazards)

let test_baseline_reports_stale_entries () =
  let entry = { A.allow_path = "lib/core/clean.ml"; allow_rule = "shared-state" } in
  let kept, stale = A.apply_baseline [ entry ] A.empty_analysis in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "entry is stale" 1 (List.length stale)

let test_baseline_parser_is_lints () =
  (* Same parser, same contract: 'path rule', '#' comments, errors on
     malformed lines. *)
  (match A.parse_baseline "# c\nlib/x.ml shared-state\n" with
  | Ok [ e ] ->
    Alcotest.(check string) "path" "lib/x.ml" e.A.allow_path;
    Alcotest.(check string) "rule" "shared-state" e.A.allow_rule
  | Ok es -> Alcotest.fail (Fmt.str "expected 1 entry, got %d" (List.length es))
  | Error e -> Alcotest.fail e);
  match A.parse_baseline "one two three\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* --- rule registry --- *)

let test_rule_docs_stable () =
  Alcotest.(check (list string)) "stable rule order"
    [
      "shared-state";
      "effect-discipline";
      "raise-locality";
      "partiality";
      "partial-escape";
      "refutable-let";
      "match-suppression";
      "parse-error";
    ]
    (List.map fst A.rule_docs)

(* --- the real tree is clean under the committed baseline ---

   The authoritative run is `dune build @analyze` (wired into CI); this
   smoke test re-runs the passes over the same sources and asserts the
   committed analyze.baseline suppresses everything and nothing more —
   no uncovered finding, no stale entry, no unclassified hazard in the
   pure layers. *)

let read path = In_channel.with_open_bin path In_channel.input_all

let rec source_files dir =
  List.concat_map
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        if entry = "_build" || String.length entry > 0 && entry.[0] = '.' then []
        else source_files path
      else if
        Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
      then [ path ]
      else [])
    (Array.to_list (Sys.readdir dir) |> List.sort compare)

let repo_relative path =
  (* The test binary runs in _build/default/test; sources are addressed
     as ../lib/... but the baseline speaks repo-relative paths. *)
  match String.length path >= 3 && String.sub path 0 3 = "../" with
  | true -> String.sub path 3 (String.length path - 3)
  | false -> path

let test_tree_matches_baseline () =
  let files =
    List.concat_map source_files [ "../lib"; "../bin"; "../bench"; "../tool" ]
    |> List.map (fun p -> (repo_relative p, read p))
  in
  Alcotest.(check bool) "tree is non-trivial" true (List.length files > 100);
  let a = A.analyze_files files in
  Alcotest.(check int) "all files parsed" (List.length files) a.parsed_files;
  let baseline =
    match A.parse_baseline (read "../analyze.baseline") with
    | Ok entries -> entries
    | Error e -> Alcotest.fail e
  in
  let kept, stale = A.apply_baseline baseline a in
  Alcotest.(check (list string)) "no uncovered findings" []
    (List.map (fun (f : A.finding) -> Fmt.str "%a" A.pp_finding f) kept);
  Alcotest.(check (list string)) "no stale baseline entries" []
    (List.map (fun e -> e.A.allow_path) stale);
  (* The ROADMAP-1 gate: the pure layers hold no unclassified globals. *)
  let unclassified_pure =
    List.filter
      (fun h ->
        (not h.A.h_classified)
        && (String.length h.A.h_path >= 9
            && (String.sub h.A.h_path 0 9 = "lib/core/"
               || String.length h.A.h_path >= 11
                  && String.sub h.A.h_path 0 11 = "lib/engine/")))
      a.hazards
  in
  Alcotest.(check int) "no unclassified hazards in lib/core + lib/engine" 0
    (List.length unclassified_pure)

let suite =
  [
    Alcotest.test_case "shared-state fires" `Quick test_shared_state_fires;
    Alcotest.test_case "shared-state quiet" `Quick test_shared_state_quiet;
    Alcotest.test_case "effect signatures" `Quick test_effect_signatures;
    Alcotest.test_case "effect discipline" `Quick test_effect_discipline;
    Alcotest.test_case "raise locality" `Quick test_raise_locality;
    Alcotest.test_case "partiality fires" `Quick test_partiality_fires;
    Alcotest.test_case "partiality quiet" `Quick test_partiality_quiet;
    Alcotest.test_case "partial escape" `Quick test_partial_escape;
    Alcotest.test_case "refutable let" `Quick test_refutable_let;
    Alcotest.test_case "match suppression" `Quick test_match_suppression;
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "baseline suppresses and classifies" `Quick
      test_baseline_suppresses_and_classifies;
    Alcotest.test_case "baseline reports stale entries" `Quick
      test_baseline_reports_stale_entries;
    Alcotest.test_case "baseline parser shares the lint contract" `Quick
      test_baseline_parser_is_lints;
    Alcotest.test_case "rule docs are stable" `Quick test_rule_docs_stable;
    Alcotest.test_case "tree matches committed baseline" `Quick
      test_tree_matches_baseline;
  ]
