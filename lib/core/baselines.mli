(** Baseline gossip-membership protocols (paper, section 3.1), run in the
    sequential-action model for contrast with S&F:

    - [Shuffle]: delete-on-send bidirectional exchange — no dependence, but
      lost messages destroy ids.
    - [Push_pull]: keep-on-send gossip — loss-immune, but transfers leave
      correlated copies behind (spatial dependence).
    - [Cyclon]: shuffle targeting the oldest view entry — the age rule
      that purges dead ids first.
    - [Push_only]: reinforcement-only pushing of the sender's own id. *)

type kind =
  | Shuffle of { exchange_size : int }
  | Cyclon of { exchange_size : int }
      (** shuffle with oldest-first target selection (age-based failure
          detection) *)
  | Push_pull of { gossip_size : int }
  | Push_only

type t

val create :
  seed:int ->
  n:int ->
  view_size:int ->
  loss_rate:float ->
  kind:kind ->
  topology:Topology.t ->
  t

val node_count : t -> int

val step : t -> unit
(** One sequential action by a uniformly random node. *)

val run_rounds : t -> int -> unit
(** One round = n actions. *)

val kill : t -> int -> unit
(** Mark a node dead: it stops initiating and drops incoming traffic. *)

val revive : t -> int -> bootstrap:int -> unit
(** Bring a killed node back as a fresh incarnation, bootstrapped with up
    to [bootstrap] entries copied from a live view. *)

val is_dead : t -> int -> bool

val dead_entry_fraction : t -> float
(** Share of live-view entries pointing at dead nodes. *)

val total_instances : t -> int
(** Total non-empty view entries (edges) — decays under loss for Shuffle. *)

val outdegree_summary : t -> Sf_stats.Summary.t
val indegree_summary : t -> Sf_stats.Summary.t

val independence_census : t -> Census.t
(** Same dependence labelling as the S&F monitors. *)

val membership_graph : t -> Sf_graph.Digraph.t
val is_weakly_connected : t -> bool
