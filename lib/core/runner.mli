(** Orchestration of an S&F system: nodes, lossy network, churn, and
    measurement.

    Sequential-action mode implements the paper's analysis model (a central
    scheduler runs one action at a time); timed mode runs each node on its
    own clock over the discrete-event network. *)

type t

type scheduling =
  | Poisson of float   (** initiations as a Poisson process with this rate *)
  | Periodic of float  (** fixed period with small jitter *)

(** {2 Audit events}

    An optional audit callback observes every action with enough context to
    re-check the paper's invariants from outside the runner: the initiator's
    outdegree before and after, the duplication decision, and the fate of
    the message.  [Sf_check.Invariant] is the standard consumer. *)

type delivery =
  | Accepted   (** placed in the receiver's view *)
  | Deleted    (** receiver full: both ids dropped *)
  | Lost       (** eaten by the network *)
  | To_dead    (** destination has no live handler *)
  | In_flight  (** timed mode: outcome not yet known *)

type action_outcome =
  | Audit_self_loop
  | Audit_send of { destination : int; duplicated : bool; delivery : delivery }

type audit_event =
  | Action of {
      initiator : int;
      degree_before : int;
      degree_after : int;
      outcome : action_outcome;
    }
  | Receipt of { receiver : int; accepted : bool }
      (** timed-mode delivery, asynchronous w.r.t. actions *)
  | Structural of string
      (** join/leave/reconnect/rebootstrap: edge totals changed out of band *)

val set_audit : t -> (t -> audit_event -> unit) option -> unit
(** Install (or clear) the audit callback.  The callback runs after the
    reported transition has fully taken effect. *)

val create :
  ?latency:(Sf_prng.Rng.t -> float) ->
  ?destination_loss:(int -> float) ->
  ?audit:(t -> audit_event -> unit) ->
  ?scenario:Sf_faults.Scenario.t ->
  ?obs:Sf_obs.Obs.t ->
  ?resilience:Sf_resil.Policy.t ->
  seed:int ->
  n:int ->
  loss_rate:float ->
  config:Protocol.config ->
  topology:Topology.t ->
  unit ->
  t
(** Build a system of [n] nodes with the given initial topology. All
    randomness derives from [seed].

    [scenario] routes every send through a fault plan (bursty loss,
    partitions, crashes, delay spikes, corruption — see
    {!Sf_faults.Scenario}).  Omitting it — or passing
    {!Sf_faults.Scenario.default} — reproduces the fault-free RNG stream
    byte-for-byte.  The scenario's round clock is [actions / n] in
    sequential mode and virtual time in timed mode; window boundary
    crossings surface as [Structural] audit events so the invariant auditor
    resyncs its conservation baseline.

    [obs] is the observability bundle shared by the runner, its network
    and its fault injector: all [runner_*], [net_*] and [faults_*]
    metrics land in its registry, and — when a tracer is attached —
    protocol events (Send/Drop/Deliver/Duplicate/Delete/Timer/Fault/Mark)
    are recorded, stamped with the injected round clock (sequential mode)
    or virtual time (timed mode).  A private bundle is used when omitted.
    Observation consumes no randomness: instrumented runs replay
    byte-identically.

    [resilience] installs the self-healing layer (lib/resilience): once
    per round — sequential mode only; timed mode has no rounds — the
    runner feeds a loss {!Sf_resil.Estimator} from world-counter deltas,
    lets the {!Sf_resil.Controller} retune per-node (dL, s) against the
    estimate (see {!node_config}), and lets the {!Sf_resil.Supervisor}
    drive section 5 repairs (reconnect/rebootstrap) under capped jittered
    backoff.  Decisions surface as [resil_*] metrics, [retune]/[repair]
    trace marks, and [Structural] audit events.  The resilience RNG is
    split from the root seed after every other stream, so omitting the
    option — or passing {!Sf_resil.Policy.observe_only} — replays the
    unadorned runner byte-for-byte. *)

val obs : t -> Sf_obs.Obs.t
(** The runner's observability bundle (the one passed to {!create}, or
    the private default). *)

val config : t -> Protocol.config
(** The base configuration every node starts from. *)

val node_config : t -> int -> Protocol.config
(** The configuration a node currently runs: the base config unless the
    resilience controller has retuned the node. *)

val action_count : t -> int
(** Initiate steps executed so far. *)

val minted_serials : t -> int
(** Instance serials handed out so far; every serial stored in any view is
    strictly below this bound. *)

val live_count : t -> int
val live_nodes : t -> Protocol.node array
val find_node : t -> int -> Protocol.node option
val random_live_node : t -> Protocol.node
val simulator : t -> Sf_engine.Sim.t

val is_crashed : t -> int -> bool
(** [true] while the fault scenario holds the id inside an active crash
    window (always [false] without a scenario).  Crashed nodes neither
    initiate nor receive; they resume with their stale views. *)

val fault_statistics : t -> Sf_faults.Injector.stats option
(** Fault-injection counters, when a scenario is installed. *)

val loss_rate : t -> float
(** The configured uniform chance-loss probability of the network. *)

val injector : t -> Sf_faults.Injector.t option
(** The shared fault injector, when a scenario is installed.  Read-only
    consumers (e.g. the dissemination layer judging its own messages
    against the same crash/partition windows) may query it; they must not
    draw loss verdicts through {!Sf_faults.Injector.judge} with the
    runner's RNG, which would perturb the membership stream. *)

val step : t -> unit
(** Sequential mode: one global action (random initiator, synchronous
    delivery unless lost).  Crashed nodes are skipped when picking the
    initiator; if every live node is crashed the round clock advances with
    no action. *)

val run_actions : t -> int -> unit

val run_rounds : t -> int -> unit
(** One round = [live_count t] actions (paper, section 6.5).  When a
    resilience policy is installed, each round is followed by one
    resilience tick (estimator feed, possible retune, possible supervised
    repair). *)

val start_timed : t -> scheduling -> unit
(** Switch to timed mode: every live node initiates on its own clock. *)

val run_until : t -> float -> unit
(** Timed mode: run the event loop to the given virtual time. *)

val add_node : t -> bootstrap:int list -> int
(** Join a new node whose view is seeded with [bootstrap]; returns its id. *)

val remove_node : t -> int -> Protocol.node option
(** Leave/fail: the node stops participating; its id decays out of other
    views through normal protocol operation. *)

val bootstrap_from : t -> count:int -> int list
(** Bootstrap ids for a joiner: a prefix of a random live node's view,
    filtered to live ids (the paper requires joiners to know live nodes);
    the donor's id fills any shortfall. *)

type reconnect_result =
  | Reconnected of { donor : int; probes : int; installed : int }
  | Exhausted of { probes : int }

val reconnect : t -> node_id:int -> reconnect_result
(** The section 5 reconnection rule: probe previously seen ids (then the
    current view) over the lossy network until a live node donates a copy
    of up to dL view entries, which replace the stale view. *)

val rebootstrap : t -> node_id:int -> int
(** Out-of-band recovery (the "copy another node's view" joining rule):
    replace the node's view with up to dL entries copied from a random live
    donor. Returns the number of installed entries. *)

val is_starved : t -> Protocol.node -> bool
(** No live id in the view (transient while others still hold this node's
    id; permanent once they do not). *)

val starved_nodes : t -> Protocol.node list

val is_isolated : t -> Protocol.node -> bool
(** Starved and with no surviving instance of its id anywhere — only
    reconnection can recover it. *)

val isolated_nodes : t -> Protocol.node list

val membership_graph : t -> Sf_graph.Digraph.t
(** Snapshot of the global membership multigraph over live nodes (edges to
    departed ids included — they are real view entries). *)

val count_id_instances : t -> int -> int
(** Instances of an id across all live views (decays per Lemma 6.10 after
    the node leaves). *)

val network_statistics : t -> Sf_engine.Network.statistics

type world_counters = {
  actions : int;
  self_loops : int;
  sends : int;
  duplications : int;
  receipts : int;
  deletions : int;
  messages_lost : int;
}

val world_counters : t -> world_counters

type rates = { duplication : float; deletion : float; loss : float }

val rates_since : t -> world_counters -> rates
(** Per-send duplication/deletion/loss rates since a counter baseline — the
    quantities balanced by Lemma 6.6. *)

(** {2 Resilience} *)

type resilience_stats = {
  loss_estimate : float;       (** current smoothed Lemma 6.6 inversion *)
  estimator_confident : bool;  (** at least one full window folded *)
  estimator_windows : int;
  retunes : int;               (** controller decisions applied *)
  repair_attempts : int;       (** supervised repair passes charged *)
  recoveries : int;            (** attempts confirmed by a healthy probe *)
}

val resilience_statistics : t -> resilience_stats option
(** [None] unless a resilience policy was installed at {!create}. *)

(** {2 Million-node scale: the sharded flat-state runner}

    A second execution engine for the same protocol, built for n in the
    10{^4}-10{^6} range: the whole world lives in one {!View.Flat} packed
    store, and rounds run as a bulk-synchronous schedule over a fixed
    number of logical shards that OCaml 5 domains execute in parallel
    between deterministic barriers.

    One round = every node initiates exactly once (phase I, per shard in
    node-id order), a barrier, then every surviving message is delivered
    (phase II, per destination shard; source shards in index order,
    messages in generation order).  Each logical shard draws from its own
    PRNG stream, split from the root seed in shard order, and touches only
    its own nodes' state — so the run is a pure function of
    [(seed, n, config, shards, loss_rate, scenario, churn, resilience)]:
    any [domains] value replays the single-domain run bit-for-bit
    ({!Sharded.equal} is the oracle).

    The full robustness stack runs under the same contract: crash and
    partition windows are recomputed from the round clock at the barrier,
    stateful loss chains live per shard, churn turns the population over
    on per-shard free lists (an extra churn phase precedes phase I), and
    the resilience layer estimates/retunes/repairs at the barrier after
    phase II — see {!Sharded.create}. *)

module Sharded : sig
  type t

  type churn = {
    churn_rate : float;
        (** per-round leave probability of each live node; every leave is
            matched by a join in the same shard, so the population is
            stationary with [churn_rate] turnover *)
    headroom : int;
        (** extra node slots beyond [n], rounded up to a multiple of the
            shard count and strided across shards ([n + c*S + i] belongs
            to shard [i]); depth of the id-reuse delay *)
  }

  type churn_stats = {
    joins : int;
    leaves : int;
    join_skips : int;
        (** joins skipped because the shard had no live donor left *)
    deliveries_to_dead : int;
        (** messages that arrived at a departed node's slot *)
  }

  type ledger = {
    accepted_duplications : int;
    dropped_non_duplicated : int;
    churn_edges_added : int;
        (** edges installed out of band by joins and rebootstraps *)
    churn_edges_removed : int;
        (** edges cleared out of band by leaves and rebootstraps *)
  }
  (** The extended Lemma 6.6 balance: since creation the edge total has
      moved by exactly [2*accepted_duplications - 2*dropped_non_duplicated
      + churn_edges_added - churn_edges_removed].  Crashes freeze nodes
      but destroy edges only through the messages they drop, so they need
      no term of their own. *)

  type init_topology =
    | Ring
        (** node [u] starts pointing at [u+1 .. u+d0] (mod [n]): the
            historical deterministic start.  Weakly connected, but a 1-D
            cycle — views mix only at random-walk speed, so rumors crawl
            for a long time after creation. *)
    | Scatter
        (** node [u] starts pointing at [d0] hash-scattered non-self ids
            (a pure integer-hash function of [(seed, u, slot)] — no RNG
            stream is consumed, so enabling it cannot perturb the
            per-shard streams).  An expander-like random [d0]-out digraph
            whose views mix in O(log n) rounds — the start
            rumor-spreading workloads need. *)

  val create :
    ?shards:int ->
    ?loss_rate:float ->
    ?init_degree:int ->
    ?init:init_topology ->
    ?scenario:Sf_faults.Scenario.t ->
    ?churn:churn ->
    ?resilience:Sf_resil.Policy.t ->
    ?probe_every:int ->
    seed:int ->
    n:int ->
    config:Protocol.config ->
    unit ->
    t
  (** Build an [n]-node world whose initial topology is [init] (default
      {!Ring}) with uniform outdegree [d0]: [init_degree] (must be even,
      in [2, view_size], below [n]) or an even default between dL and s.
      [shards] (default 16) is the {e logical} shard count — part of the
      world's identity: changing it changes the run, changing the later
      [domains] argument does not.  [loss_rate] must lie in [0, 1).

      [scenario] runs crash/partition windows and stateful loss (the
      Gilbert–Elliott chain state is split per shard, so every domain
      count replays the same run); [Delay]/[Corrupt] windows are
      rejected — the engine has no latency model and no wire bytes.
      [churn] adds per-round join/leave turnover on per-shard free lists.
      [resilience] runs the estimator/controller/supervisor stack at the
      barrier after each round, probing the overlay every [probe_every]
      (default 8) rounds when recovery is enabled.  All three are part of
      the world's identity; omitting them replays the historical
      scenario-free engine bit-for-bit.

      Raises [Invalid_argument] on out-of-range arguments, unsupported
      windows, or [n < 3]. *)

  val run_round : t -> domains:int -> unit
  (** One bulk-synchronous round: all initiates, barrier, all
      deliveries, barrier.  [domains] is the physical parallelism used
      for this round; the result is identical for every value. *)

  val run_rounds : t -> ?domains:int -> int -> unit
  (** [run_rounds t ~domains r] runs [r] rounds ([domains] defaults
      to 1). *)

  val config : t -> Protocol.config

  val node_count : t -> int
  (** The initial population [n] (also the partition block base). *)

  val capacity : t -> int
  (** Node slots in the store: [n] plus the rounded churn headroom. *)

  val shard_count : t -> int

  val rounds_completed : t -> int
  (** Rounds fully executed so far. *)

  val store : t -> View.Flat.t
  (** The packed world state (live view: mutated by later rounds).  Its
      node count is {!capacity}; dead slots have empty views. *)

  val is_live : t -> int -> bool
  (** Is this node slot currently occupied by a live node?  (Without
      churn, exactly the ids in [0, n).) *)

  val live_count : t -> int
  (** Live nodes across all shards. *)

  val shard_of : t -> int -> int
  (** The shard owning a node slot: [id / chunk] for initial ids,
      [(id - n) mod shard_count] for strided headroom slots.  Layered
      engines (e.g. the dissemination layer) partition their per-node
      state by the same map so owner-only write discipline carries
      over. *)

  val scenario : t -> Sf_faults.Scenario.t option
  (** The installed fault scenario, if any. *)

  val loss_rate : t -> float
  (** The configured uniform chance-loss probability. *)

  val is_crashed : t -> int -> bool
  (** [true] while some crash window active {e this round} covers the
      id.  Window activity is refreshed once per round at the barrier
      (a pure function of the round clock), so the answer is stable —
      and safe to read from any domain — for the whole round. *)

  val partitioned : t -> src:int -> dst:int -> bool
  (** [true] when an active partition window separates the two ids
      (same contiguous-block rule as {!Sf_faults.Injector}; joiner ids
      wrap by [id mod n]).  Stable per round, like {!is_crashed}. *)

  val total_edges : t -> int
  (** Global outdegree sum, from the store's cached degrees. *)

  val minted : t -> int array
  (** Per-shard mint positions: shard [i] has handed out serials
      [i, i + S, ..., (minted.(i) - 1) * S + i] where [S] is the shard
      count — every serial stored anywhere is one of these. *)

  val conservation : t -> int * int
  (** [(accepted_duplications, dropped_non_duplicated)] since creation —
      the first two ledger components (see {!ledger} for the churn
      terms). *)

  val ledger : t -> ledger
  (** The full extended edge ledger since creation. *)

  val churn_statistics : t -> churn_stats
  (** Join/leave bookkeeping (all zero without churn). *)

  val fault_statistics : t -> Sf_faults.Injector.stats option
  (** Injector-vocabulary fault evidence — judged sends, chance/burst/
      partition/crash drops, window transitions — or [None] when the
      world runs without a scenario.  Corruptions are always 0 here. *)

  val resilience_statistics : t -> resilience_stats option
  (** Estimator/controller/supervisor state, or [None] when the world
      runs without a resilience policy. *)

  val live_thresholds : t -> int * int
  (** The (dL, s) currently in force (identical across shards; retunes
      rewrite all shards at a barrier). *)

  val world_counters : t -> world_counters
  (** Same counter vocabulary as the orchestrated runner, summed over
      shards. *)

  val equal : t -> t -> bool
  (** Bit-for-bit world equality — store contents, round clock, alive
      map, window state, free-list positions, loss-chain states, live
      thresholds, every per-shard counter and mint position.  The
      determinism oracle for domain-count invariance. *)
end
