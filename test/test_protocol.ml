(* Tests for views and the S&F protocol steps, including the four
   transformation outcomes of the paper's Figure 5.2. *)

module View = Sf_core.View
module Protocol = Sf_core.Protocol

let entry ?(serial = 0) ?(anchor = None) ?(born = 0) id =
  { View.id; serial; anchor; born }

(* --- View --- *)

let test_view_create () =
  let v = View.create 6 in
  Alcotest.(check int) "size" 6 (View.size v);
  Alcotest.(check int) "degree 0" 0 (View.degree v);
  Alcotest.(check int) "free" 6 (View.free_slots v);
  Alcotest.(check bool) "not full" false (View.is_full v)

let test_view_set_get_clear () =
  let v = View.create 4 in
  View.set v 2 (entry 7);
  Alcotest.(check int) "degree" 1 (View.degree v);
  (match View.get v 2 with
  | Some e -> Alcotest.(check int) "stored id" 7 e.View.id
  | None -> Alcotest.fail "expected entry");
  View.set v 2 (entry 8);
  Alcotest.(check int) "overwrite keeps degree" 1 (View.degree v);
  View.clear v 2;
  Alcotest.(check int) "cleared" 0 (View.degree v);
  View.clear v 2;
  Alcotest.(check int) "double clear harmless" 0 (View.degree v)

let test_view_random_empty_slot () =
  let v = View.create 4 in
  let rng = Sf_prng.Rng.create 1 in
  View.set v 0 (entry 1);
  View.set v 2 (entry 2);
  for _ = 1 to 100 do
    match View.random_empty_slot v rng with
    | Some i -> Alcotest.(check bool) "empty slot" true (i = 1 || i = 3)
    | None -> Alcotest.fail "expected empty slot"
  done;
  View.set v 1 (entry 3);
  View.set v 3 (entry 4);
  Alcotest.(check bool) "full view" true (View.random_empty_slot v rng = None)

let test_view_random_empty_slot_uniform () =
  let v = View.create 4 in
  let rng = Sf_prng.Rng.create 2 in
  View.set v 1 (entry 9);
  let counts = Array.make 4 0 in
  for _ = 1 to 30_000 do
    match View.random_empty_slot v rng with
    | Some i -> counts.(i) <- counts.(i) + 1
    | None -> ()
  done;
  Alcotest.(check int) "occupied never chosen" 0 counts.(1);
  List.iter
    (fun i ->
      let frac = float_of_int counts.(i) /. 30_000. in
      Alcotest.(check bool) "near 1/3" true (Float.abs (frac -. (1. /. 3.)) < 0.02))
    [ 0; 2; 3 ]

let test_view_queries () =
  let v = View.create 6 in
  View.set v 0 (entry 5);
  View.set v 1 (entry 5);
  View.set v 2 (entry 9);
  Alcotest.(check (list int)) "ids in slot order" [ 5; 5; 9 ] (View.ids v);
  Alcotest.(check bool) "mem" true (View.mem v 5);
  Alcotest.(check bool) "not mem" false (View.mem v 6);
  Alcotest.(check int) "count 5" 2 (View.count_id v 5);
  Alcotest.(check int) "entries" 3 (List.length (View.entries v));
  View.clear_all v;
  Alcotest.(check int) "clear_all" 0 (View.degree v)

(* --- Protocol config --- *)

let test_config_validation () =
  let ok = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  Alcotest.(check int) "s" 8 ok.Protocol.view_size;
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "s too small" (fun () -> Protocol.make_config ~view_size:4 ~lower_threshold:0);
  expect_invalid "odd s" (fun () -> Protocol.make_config ~view_size:7 ~lower_threshold:0);
  expect_invalid "dL too large" (fun () -> Protocol.make_config ~view_size:8 ~lower_threshold:4);
  expect_invalid "odd dL" (fun () -> Protocol.make_config ~view_size:10 ~lower_threshold:3);
  expect_invalid "negative dL" (fun () -> Protocol.make_config ~view_size:8 ~lower_threshold:(-2))

(* --- Protocol steps --- *)

let make_node ?(view_size = 8) ?(lower_threshold = 2) ids =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let node = Protocol.create_node ~config ~node_id:100 in
  List.iteri (fun i id -> View.set node.Protocol.view i (entry ~serial:(1000 + i) id)) ids;
  (config, node)

let serial_counter () =
  let c = ref 10_000 in
  fun () ->
    incr c;
    !c

let run_initiate config node =
  let rng = Sf_prng.Rng.create 5 in
  Protocol.initiate config rng ~fresh_serial:(serial_counter ()) ~clock:0 node

let test_initiate_empty_view_is_self_loop () =
  let config, node = make_node [] in
  (match run_initiate config node with
  | Protocol.Self_loop -> ()
  | Protocol.Send _ -> Alcotest.fail "empty view must not send");
  Alcotest.(check int) "self loop counted" 1 node.Protocol.self_loop_actions

let test_initiate_sparse_view_can_self_loop () =
  (* With 2 of 8 slots filled, most selections hit an empty slot. *)
  let config, node = make_node [ 1; 2 ] in
  let self_loops = ref 0 and sends = ref 0 in
  let rng = Sf_prng.Rng.create 6 in
  let fresh = serial_counter () in
  for _ = 1 to 2000 do
    (* Refill to keep the state constant. *)
    View.clear_all node.Protocol.view;
    View.set node.Protocol.view 0 (entry 1);
    View.set node.Protocol.view 1 (entry 2);
    match Protocol.initiate config rng ~fresh_serial:fresh ~clock:0 node with
    | Protocol.Self_loop -> incr self_loops
    | Protocol.Send _ -> incr sends
  done;
  (* P(both nonempty) = d(d-1)/(s(s-1)) = 2/56. *)
  let rate = float_of_int !sends /. 2000. in
  Alcotest.(check bool) "send rate near 2/56" true (Float.abs (rate -. (2. /. 56.)) < 0.02)

(* Figure 5.2(b): no duplication, no deletion. *)
let test_fig_5_2_normal_transformation () =
  (* A full view guarantees the slot pair is non-empty, so the action always
     sends. *)
  let config, sender = make_node ~lower_threshold:2 [ 1; 2; 3; 4; 5; 6; 7; 9 ] in
  match run_initiate config sender with
  | Protocol.Self_loop -> Alcotest.fail "full view must send"
  | Protocol.Send { destination; message; duplicated } ->
    Alcotest.(check bool) "no duplication above dL" false duplicated;
    Alcotest.(check int) "sender cleared two entries" 6 (Protocol.degree sender);
    Alcotest.(check int) "reinforcement is sender id" 100
      message.Protocol.reinforcement.View.id;
    let initial_ids = [ 1; 2; 3; 4; 5; 6; 7; 9 ] in
    Alcotest.(check bool) "destination was in view" true (List.mem destination initial_ids);
    Alcotest.(check bool) "payload was in view" true
      (List.mem message.Protocol.mixing.View.id initial_ids);
    (* The moved instance keeps its serial and stays unanchored. *)
    Alcotest.(check bool) "moved instance keeps serial" true
      (message.Protocol.mixing.View.serial >= 1000
      && message.Protocol.mixing.View.serial < 1010);
    Alcotest.(check bool) "unanchored" true (message.Protocol.mixing.View.anchor = None);
    (* Receiver with room accepts both (Fig 5.2(b) right side). *)
    let receiver = Protocol.create_node ~config ~node_id:destination in
    let rng = Sf_prng.Rng.create 7 in
    (match Protocol.receive config rng receiver message with
    | Protocol.Accepted -> ()
    | Protocol.Deleted -> Alcotest.fail "receiver had room");
    Alcotest.(check int) "receiver gained two" 2 (Protocol.degree receiver);
    Alcotest.(check bool) "receiver knows sender" true (View.mem receiver.Protocol.view 100)

(* Figure 5.2(c): duplication at the sender. *)
let test_fig_5_2_duplication () =
  let config, sender = make_node ~lower_threshold:2 [ 1; 2 ] in
  (* With only 2 of 8 slots filled, selections often hit an empty slot —
     keep drawing from one rng until the action sends. *)
  let rng = Sf_prng.Rng.create 5 in
  let fresh = serial_counter () in
  let rec attempt k =
    if k = 0 then Alcotest.fail "no send in 1000 tries"
    else
      match Protocol.initiate config rng ~fresh_serial:fresh ~clock:0 sender with
      | Protocol.Self_loop -> attempt (k - 1)
      | Protocol.Send { message; duplicated; _ } ->
        Alcotest.(check bool) "duplicated at threshold" true duplicated;
        Alcotest.(check int) "entries kept" 2 (Protocol.degree sender);
        Alcotest.(check bool) "copies anchored at sender" true
          (message.Protocol.mixing.View.anchor = Some 100
          && message.Protocol.reinforcement.View.anchor = Some 100);
        Alcotest.(check bool) "copy got a fresh serial" true
          (message.Protocol.mixing.View.serial >= 10_000)
  in
  attempt 1000

(* Figure 5.2(d): deletion at a full receiver. *)
let test_fig_5_2_deletion () =
  let config, receiver = make_node [ 1; 2; 3; 4; 5; 6; 7; 9 ] in
  Alcotest.(check bool) "receiver full" true (View.is_full receiver.Protocol.view);
  let rng = Sf_prng.Rng.create 8 in
  let message = { Protocol.reinforcement = entry 50; mixing = entry 51 } in
  (match Protocol.receive config rng receiver message with
  | Protocol.Deleted -> ()
  | Protocol.Accepted -> Alcotest.fail "full receiver must delete");
  Alcotest.(check int) "degree unchanged" 8 (Protocol.degree receiver);
  Alcotest.(check int) "deletion counted" 1 receiver.Protocol.deletions;
  Alcotest.(check bool) "ids not installed" true
    ((not (View.mem receiver.Protocol.view 50)) && not (View.mem receiver.Protocol.view 51))

let test_receive_places_in_empty_slots () =
  let config, receiver = make_node [ 1; 2 ] in
  let rng = Sf_prng.Rng.create 9 in
  let message = { Protocol.reinforcement = entry 50; mixing = entry 51 } in
  (match Protocol.receive config rng receiver message with
  | Protocol.Accepted -> ()
  | Protocol.Deleted -> Alcotest.fail "room available");
  Alcotest.(check int) "degree +2" 4 (Protocol.degree receiver);
  Alcotest.(check bool) "originals untouched" true
    (View.mem receiver.Protocol.view 1 && View.mem receiver.Protocol.view 2)

(* Observation 5.1: outdegree stays even through random protocol activity. *)
let prop_degree_parity_invariant =
  QCheck.Test.make ~name:"Observation 5.1: outdegree parity and bounds" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let config = Protocol.make_config ~view_size:10 ~lower_threshold:2 in
      let rng = Sf_prng.Rng.create seed in
      let nodes =
        Array.init 5 (fun node_id ->
            let node = Protocol.create_node ~config ~node_id in
            (* Even initial degree at every node. *)
            View.set node.Protocol.view 0 (entry ((node_id + 1) mod 5));
            View.set node.Protocol.view 1 (entry ((node_id + 2) mod 5));
            node)
      in
      let serial = ref 0 in
      let fresh () = incr serial; !serial in
      let ok = ref true in
      for clock = 1 to 500 do
        let u = nodes.(Sf_prng.Rng.int rng 5) in
        (match Protocol.initiate config rng ~fresh_serial:fresh ~clock u with
        | Protocol.Self_loop -> ()
        | Protocol.Send { destination; message; _ } ->
          (* Deliver unconditionally (loss handled elsewhere). *)
          ignore (Protocol.receive config rng nodes.(destination) message));
        Array.iter
          (fun node -> if not (Protocol.invariant_holds config node) then ok := false)
          nodes
      done;
      !ok)

(* The serial-tracking discipline: a no-duplication send conserves the
   number of live instances (sender clears 2, receiver gains 2). *)
let test_instance_conservation_without_loss () =
  let config, sender = make_node ~lower_threshold:2 [ 1; 2; 3; 4; 5; 6; 7; 9 ] in
  let receiver = Protocol.create_node ~config ~node_id:1 in
  let rng = Sf_prng.Rng.create 10 in
  let total () = Protocol.degree sender + Protocol.degree receiver in
  let before = total () in
  (match run_initiate config sender with
  | Protocol.Send { message; duplicated; _ } ->
    Alcotest.(check bool) "no dup" false duplicated;
    ignore (Protocol.receive config rng receiver message)
  | Protocol.Self_loop -> Alcotest.fail "expected send");
  Alcotest.(check int) "instances conserved" before (total ())

let suite =
  [
    Alcotest.test_case "view create" `Quick test_view_create;
    Alcotest.test_case "view set/get/clear" `Quick test_view_set_get_clear;
    Alcotest.test_case "view random empty slot" `Quick test_view_random_empty_slot;
    Alcotest.test_case "view empty slot uniformity" `Quick test_view_random_empty_slot_uniform;
    Alcotest.test_case "view queries" `Quick test_view_queries;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "initiate on empty view" `Quick test_initiate_empty_view_is_self_loop;
    Alcotest.test_case "self-loop rate" `Quick test_initiate_sparse_view_can_self_loop;
    Alcotest.test_case "Fig 5.2(b): normal transformation" `Quick test_fig_5_2_normal_transformation;
    Alcotest.test_case "Fig 5.2(c): duplication" `Quick test_fig_5_2_duplication;
    Alcotest.test_case "Fig 5.2(d): deletion" `Quick test_fig_5_2_deletion;
    Alcotest.test_case "receive into empty slots" `Quick test_receive_places_in_empty_slots;
    Alcotest.test_case "instance conservation" `Quick test_instance_conservation_without_loss;
    QCheck_alcotest.to_alcotest prop_degree_parity_invariant;
  ]
