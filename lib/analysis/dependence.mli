(** Spatial independence via the two-state dependence MC (paper, section 7.4
    and Figure 7.1). *)

val to_dependent_probability : loss:float -> delta:float -> float
(** Upper bound (3/2)(loss + delta) on independent -> dependent. *)

val to_independent_probability : loss:float -> delta:float -> float
(** Lower bound (5/6)(1 - (loss + delta)) on dependent -> independent. *)

val chain : loss:float -> delta:float -> Sf_markov.Chain.t
(** The bounding two-state chain (0 = independent, 1 = dependent). *)

val stationary_dependent_fraction : loss:float -> delta:float -> float
(** Exact stationary dependent mass of the bounding chain,
    (loss+delta) / (5/9 + (4/9)(loss+delta)). *)

val alpha_lower_bound : loss:float -> delta:float -> float
(** Lemma 7.9: expected independent fraction >= 1 - 2(loss + delta). *)

val return_probability_bound : alpha:float -> float
(** Lemma 7.8: probability a sent dependent entry returns, bounded by
    1/alpha - 1 (at most 1/2 when alpha >= 2/3). *)
