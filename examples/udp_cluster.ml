(* S&F on a real network stack: 96 nodes, each with its own UDP socket on
   the loopback interface, exchanging actual datagrams.  Fire-and-forget
   UDP is exactly the transport the protocol was designed for — no
   connection state, no acknowledgements, loss tolerated by design.

   The run injects 5% sender-side loss (loopback rarely drops on its own)
   and shows the same steady-state properties as the simulator: balanced
   degrees well above dL, high independence, weak connectivity, and
   duplication compensating the loss.

   Run with: dune exec examples/udp_cluster.exe *)

module Cluster = Sf_net.Cluster
module Summary = Sf_stats.Summary

let () =
  let n = 96 in
  let thresholds = Sf_analysis.Thresholds.select ~d_hat:12 ~delta:0.01 in
  let config = Sf_analysis.Thresholds.to_config thresholds in
  Fmt.pr "parameters: %a@." Sf_analysis.Thresholds.pp thresholds;
  let topology =
    Sf_core.Topology.regular (Sf_prng.Rng.create 3) ~n ~out_degree:thresholds.d_hat
  in
  let cluster =
    Cluster.create ~period:0.005 ~base_port:47000 ~n ~config ~loss_rate:0.05 ~seed:4
      ~topology ()
  in
  Fmt.pr "bound %d UDP sockets on 127.0.0.1:47000-%d; running 5 seconds...@." n
    (47000 + n - 1);
  let report phase =
    let outs = Cluster.outdegree_summary cluster in
    let census = Cluster.independence_census cluster in
    let stats = Cluster.statistics cluster in
    Fmt.pr
      "%s: %d actions, %d datagrams (%d dropped by injected loss, %d received)@."
      phase stats.Cluster.actions stats.Cluster.datagrams_sent
      stats.Cluster.datagrams_dropped stats.Cluster.datagrams_received;
    Fmt.pr "  outdegree %.1f±%.1f (dL=%d), alpha %.3f, connected %b, codec errors %d@."
      (Summary.mean outs) (Summary.std outs) thresholds.lower_threshold
      census.Sf_core.Census.alpha
      (Cluster.is_weakly_connected cluster)
      stats.Cluster.decode_errors
  in
  Cluster.run cluster ~duration:2.5;
  report "t=2.5s";
  Cluster.run cluster ~duration:2.5;
  report "t=5.0s";
  let stats = Cluster.statistics cluster in
  let observed_loss =
    float_of_int stats.Cluster.datagrams_dropped
    /. float_of_int (max 1 stats.Cluster.datagrams_sent)
  in
  Fmt.pr "observed loss %.3f (injected 0.050); every datagram decoded cleanly: %b@."
    observed_loss
    (stats.Cluster.decode_errors = 0);
  Cluster.shutdown cluster;
  Fmt.pr "the same protocol, the same properties — on real sockets.@."
