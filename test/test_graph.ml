(* Tests for the membership multigraph. *)

module Digraph = Sf_graph.Digraph

let test_empty_graph () =
  let g = Digraph.create () in
  Alcotest.(check int) "no vertices" 0 (Digraph.vertex_count g);
  Alcotest.(check int) "no edges" 0 (Digraph.edge_count g);
  Alcotest.(check bool) "trivially connected" true (Digraph.is_weakly_connected g)

let test_add_edge_registers_vertices () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  Alcotest.(check int) "two vertices" 2 (Digraph.vertex_count g);
  Alcotest.(check int) "one edge" 1 (Digraph.edge_count g);
  Alcotest.(check int) "d(1)" 1 (Digraph.out_degree g 1);
  Alcotest.(check int) "din(2)" 1 (Digraph.in_degree g 2)

let test_multiplicity () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Alcotest.(check int) "mult (0,1)" 2 (Digraph.multiplicity g 0 1);
  Alcotest.(check int) "out degree counts multiplicity" 3 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree of 1" 2 (Digraph.in_degree g 1);
  Alcotest.(check int) "parallel surplus" 1 (Digraph.parallel_edge_count g)

let test_remove_edge () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.remove_edge g 0 1;
  Alcotest.(check int) "mult down" 1 (Digraph.multiplicity g 0 1);
  Digraph.remove_edge g 0 1;
  Alcotest.(check int) "edge gone" 0 (Digraph.multiplicity g 0 1);
  Alcotest.check_raises "removing absent edge"
    (Invalid_argument "Digraph: removing a non-existent edge") (fun () ->
      Digraph.remove_edge g 0 1)

let test_sum_degree () =
  (* ds(u) = d(u) + 2 din(u), Definition 6.1. *)
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 0;
  Digraph.add_edge g 2 0;
  Digraph.add_edge g 2 0;
  Alcotest.(check int) "ds(0) = 2 + 2*3" 8 (Digraph.sum_degree g 0)

let test_self_loops () =
  let g = Digraph.create () in
  Digraph.add_edge g 3 3;
  Digraph.add_edge g 3 3;
  Digraph.add_edge g 3 4;
  Alcotest.(check int) "self loops" 2 (Digraph.self_loop_count g);
  Alcotest.(check int) "out degree includes self" 3 (Digraph.out_degree g 3);
  Alcotest.(check int) "in degree includes self" 2 (Digraph.in_degree g 3)

let test_neighbors () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 3 0;
  Alcotest.(check (list int)) "out neighbors distinct"
    [ 1; 2 ]
    (List.sort compare (Digraph.out_neighbors g 0));
  Alcotest.(check (list int)) "in neighbors" [ 3 ] (Digraph.in_neighbors g 0)

let test_weak_connectivity () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 2 1;
  (* 0 -> 1 <- 2 is weakly connected despite no directed path 0 -> 2. *)
  Alcotest.(check bool) "weakly connected" true (Digraph.is_weakly_connected g);
  Digraph.ensure_vertex g 9;
  Alcotest.(check bool) "isolated vertex disconnects" false (Digraph.is_weakly_connected g);
  Alcotest.(check int) "two components" 2
    (List.length (Digraph.weakly_connected_components g))

let test_components_membership () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 2 3;
  let components =
    List.map (List.sort compare) (Digraph.weakly_connected_components g)
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2; 3 ] ] components

let test_degree_statistics () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  let stats = Digraph.degree_statistics g in
  Alcotest.(check int) "3 nodes" 3 (Sf_stats.Summary.count stats.Digraph.out_degrees);
  Alcotest.(check bool) "mean out = 1" true
    (Float.abs (Sf_stats.Summary.mean stats.Digraph.out_degrees -. 1.) < 1e-9);
  Alcotest.(check bool) "var out = 0" true
    (Sf_stats.Summary.variance stats.Digraph.out_degrees < 1e-9)

let test_copy_and_equal () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  let h = Digraph.copy g in
  Alcotest.(check bool) "copy equal" true (Digraph.equal g h);
  Digraph.remove_edge g 0 1;
  Alcotest.(check bool) "diverged" false (Digraph.equal g h);
  Alcotest.(check int) "copy untouched" 2 (Digraph.multiplicity h 0 1)

let test_degree_arrays () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  let outs = Array.to_list (Digraph.out_degree_array g) |> List.sort compare in
  Alcotest.(check (list int)) "out degrees" [ 0; 0; 2 ] outs

(* Property: edge_count always equals the sum of out-degrees, and equals the
   sum of in-degrees, under random add/remove sequences. *)
let prop_edge_count_consistency =
  let op_gen = QCheck.Gen.(pair (int_range 0 9) (int_range 0 9)) in
  QCheck.Test.make ~name:"degree sums match edge count" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 100) op_gen))
    (fun ops ->
      let g = Digraph.create () in
      List.iter (fun (u, v) -> Digraph.add_edge g u v) ops;
      let sum_out =
        List.fold_left (fun acc u -> acc + Digraph.out_degree g u) 0 (Digraph.vertices g)
      in
      let sum_in =
        List.fold_left (fun acc u -> acc + Digraph.in_degree g u) 0 (Digraph.vertices g)
      in
      sum_out = Digraph.edge_count g && sum_in = Digraph.edge_count g)

let prop_remove_inverts_add =
  QCheck.Test.make ~name:"remove inverts add" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 50) (pair (int_range 0 5) (int_range 0 5))))
    (fun ops ->
      let g = Digraph.create () in
      List.iter (fun (u, v) -> Digraph.add_edge g u v) ops;
      let before = Digraph.copy g in
      match ops with
      | [] -> true
      | (u, v) :: _ ->
        Digraph.add_edge g u v;
        Digraph.remove_edge g u v;
        Digraph.equal g before)

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "add edge" `Quick test_add_edge_registers_vertices;
    Alcotest.test_case "multiplicity" `Quick test_multiplicity;
    Alcotest.test_case "remove edge" `Quick test_remove_edge;
    Alcotest.test_case "sum degree (Def 6.1)" `Quick test_sum_degree;
    Alcotest.test_case "self loops" `Quick test_self_loops;
    Alcotest.test_case "neighbors" `Quick test_neighbors;
    Alcotest.test_case "weak connectivity" `Quick test_weak_connectivity;
    Alcotest.test_case "components" `Quick test_components_membership;
    Alcotest.test_case "degree statistics" `Quick test_degree_statistics;
    Alcotest.test_case "copy and equal" `Quick test_copy_and_equal;
    Alcotest.test_case "degree arrays" `Quick test_degree_arrays;
    QCheck_alcotest.to_alcotest prop_edge_count_consistency;
    QCheck_alcotest.to_alcotest prop_remove_inverts_add;
  ]
