(** Special functions backing the analytic machinery. *)

val log_gamma : float -> float
(** Natural log of the gamma function (Lanczos approximation, reflection for
    arguments below 0.5). *)

val log_factorial : int -> float
(** [log_factorial n] = ln(n!). Memoized for small [n]. *)

val log_choose : int -> int -> float
(** [log_choose n k] = ln(C(n,k)); [neg_infinity] outside [0 <= k <= n]. *)

val choose : int -> int -> float
(** Binomial coefficient as a float (via [log_choose]). *)

val gamma_p : float -> float -> float
(** Regularized lower incomplete gamma P(a,x). *)

val gamma_q : float -> float -> float
(** Regularized upper incomplete gamma Q(a,x) = 1 - P(a,x). *)

val log_add : float -> float -> float
(** [log_add la lb] = ln(exp la + exp lb), computed stably. *)

val log_sum : float array -> float
(** Stable log of a sum of exponentials. *)
