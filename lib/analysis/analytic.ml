(* Closed-form approximation of the no-loss degree distributions,
   equation (6.1) of the paper.

   Under no loss, dL = 0 and uniform sum degrees ds(u) = dm, the number of
   ways to assign dm potential neighbors v_1..v_dm of u to
   {out-neighbor, in-neighbor, not-a-neighbor} while realizing outdegree d_star
   (and hence indegree (dm - d_star) / 2) is

     a(d_star) = C(dm, d_star) * C(dm - d_star, (dm - d_star) / 2),

   and, since all membership graphs with the given sum-degree vector are
   equally likely in the steady state (Lemma 7.5),

     Pr(d(u) = d_star) ~ a(d_star) / sum_{d' even} a(d').

   Everything is computed in log space: a(d_star) overflows floats already at
   dm around 200. *)

let log_assignment_count ~dm d =
  if d < 0 || d > dm || (dm - d) mod 2 <> 0 then neg_infinity
  else Sf_stats.Special.log_choose dm d +. Sf_stats.Special.log_choose (dm - d) ((dm - d) / 2)

(* Outdegree pmf on the even support {0, 2, ..., dm}. Requires dm even. *)
let outdegree_distribution ~dm =
  if dm <= 0 || dm mod 2 <> 0 then
    invalid_arg "Analytic.outdegree_distribution: dm must be positive and even";
  let logs = Array.init (dm + 1) (fun d -> log_assignment_count ~dm d) in
  let log_z = Sf_stats.Special.log_sum logs in
  Sf_stats.Pmf.create ~offset:0 (Array.map (fun l -> exp (l -. log_z)) logs)

(* Indegree pmf: din = (dm - d) / 2 with the same assignment counts, so the
   support is {0, 1, ..., dm / 2}. *)
let indegree_distribution ~dm =
  let out = outdegree_distribution ~dm in
  let mass = Array.make ((dm / 2) + 1) 0. in
  Sf_stats.Pmf.iter (fun d p -> if (dm - d) mod 2 = 0 then mass.((dm - d) / 2) <- p) out;
  Sf_stats.Pmf.create ~offset:0 mass

(* Lemma 6.3: with uniform sum degree dm, the average indegree and outdegree
   are both dm / 3. *)
let expected_degree ~dm = float_of_int dm /. 3.

(* The binomial reference curves of Figure 6.1: same expectation dm/3 over
   dm trials (p = 1/3). *)
let binomial_reference ~dm = Sf_stats.Binomial.to_pmf ~n:dm ~p:(1. /. 3.)
