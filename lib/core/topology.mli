(** Initial membership topologies for experiments. A topology maps each node
    index in [0, n) to its initial out-neighbor ids. *)

type t = int -> int list

val regular : Sf_prng.Rng.t -> n:int -> out_degree:int -> t
(** Outdegree and indegree both equal [out_degree] at every node (built from
    derangements, so no self-edges); the uniform-sum-degree initialization
    of the paper's section 6.1. *)

val uniform_random : Sf_prng.Rng.t -> n:int -> out_degree:int -> t
(** Each node picks [out_degree] distinct random out-neighbors (excluding
    itself); indegrees are binomial. *)

val ring : n:int -> out_degree:int -> t
(** Node u points at u+1 .. u+out_degree (mod n); a structured, poorly-mixed
    starting state. *)

val star_like : n:int -> hubs:int -> out_degree:int -> t
(** All non-hub nodes point into a small hub set; a pathological
    load-imbalanced starting state. *)
