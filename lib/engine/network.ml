(* Point-to-point message layer with uniform i.i.d. loss (the paper's loss
   model, section 4.1) and configurable delivery latency.  Messages to nodes
   without a registered handler are counted as lost-to-crash, which is how
   the churn driver models failed nodes: the id of a dead node stays in
   views until the protocol erodes it, exactly as in section 6.5.2.

   An optional fault injector (lib/faults) generalizes the loss draw to
   stateful processes (Gilbert-Elliott bursts, per-link loss) and timed
   fault windows (partitions, crashes, delay spikes, corruption).  Without
   an injector — or with the all-default scenario — the send path performs
   exactly the historical single Bernoulli draw, so fault-free runs replay
   byte-identically. *)

type 'msg t = {
  sim : Sim.t;
  rng : Sf_prng.Rng.t;
  loss_rate : float;  (* nominal/mean rate, also the uniform default *)
  (* Per-destination loss probability, overriding the uniform rate — the
     non-uniform loss regime the paper's section 4.1 mentions but does not
     analyze (e.g. nodes behind lossy last-mile links). *)
  destination_loss : (int -> float) option;
  injector : Sf_faults.Injector.t option;
  latency : Sf_prng.Rng.t -> float;
  handlers : (int, 'msg -> unit) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_no_handler : int;
}

type statistics = {
  messages_sent : int;
  messages_delivered : int;
  messages_lost : int;
  messages_to_dead_nodes : int;
}

let default_latency rng = 0.5 +. Sf_prng.Rng.float rng
(* Uniform in [0.5, 1.5): asynchronous but loosely synchronized, matching the
   paper's assumption that nodes invoke actions at similar rates. *)

let create ?(latency = default_latency) ?destination_loss ?injector ~sim ~rng
    ~loss_rate () =
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Network.create: loss_rate must lie in [0,1]";
  {
    sim;
    rng;
    loss_rate;
    destination_loss;
    injector;
    latency;
    handlers = Hashtbl.create 64;
    sent = 0;
    delivered = 0;
    lost = 0;
    dropped_no_handler = 0;
  }

let register t node handler = Hashtbl.replace t.handlers node handler

let unregister t node = Hashtbl.remove t.handlers node

let is_registered t node = Hashtbl.mem t.handlers node

let loss_rate t = t.loss_rate

let drop_probability t ~dst =
  match t.destination_loss with None -> t.loss_rate | Some f -> f dst

(* The loss decision for one message: the historical single Bernoulli draw
   without an injector, the injector's full fault pipeline with one.  The
   simulator's messages never leave memory, so a corrupted payload is
   indistinguishable from a drop at the receiver (the cluster, which sends
   real bytes, instead flips them and lets the codec reject). *)
let judge t ~src ~dst =
  match t.injector with
  | None ->
    if Sf_prng.Rng.bernoulli t.rng (drop_probability t ~dst) then `Drop else `Deliver
  | Some injector -> (
    match
      Sf_faults.Injector.judge injector t.rng ~chance:(drop_probability t ~dst) ~src
        ~dst
    with
    | Sf_faults.Injector.Deliver -> `Deliver
    | Sf_faults.Injector.Corrupt_payload | Sf_faults.Injector.Drop _ -> `Drop)

(* Fire-and-forget send: the sender cannot detect loss, so the loss draw
   happens here and lost messages are simply never scheduled.  [src] feeds
   the fault injector's partition/crash checks; [-1] (unknown sender) is
   exempt from them. *)
let send t ?(src = -1) ~dst msg =
  t.sent <- t.sent + 1;
  match judge t ~src ~dst with
  | `Drop -> t.lost <- t.lost + 1
  | `Deliver ->
    let delay =
      match t.injector with
      | None -> t.latency t.rng
      | Some injector -> t.latency t.rng *. Sf_faults.Injector.delay_factor injector
    in
    Sim.schedule t.sim ~delay (fun () ->
        (* A destination that crashed while the message was in flight
           drops it on arrival. *)
        let crashed =
          match t.injector with
          | None -> false
          | Some injector -> Sf_faults.Injector.is_crashed injector dst
        in
        if crashed then t.lost <- t.lost + 1
        else
          match Hashtbl.find_opt t.handlers dst with
          | None -> t.dropped_no_handler <- t.dropped_no_handler + 1
          | Some handler ->
            t.delivered <- t.delivered + 1;
            handler msg)

(* Synchronous delivery used by the sequential-action scheduler of the
   analysis model: the receive step runs immediately (actions are serial).
   Returns whether the message was delivered to a live handler. *)
let send_immediate t ?(src = -1) ~dst msg =
  t.sent <- t.sent + 1;
  match judge t ~src ~dst with
  | `Drop ->
    t.lost <- t.lost + 1;
    false
  | `Deliver -> (
    match Hashtbl.find_opt t.handlers dst with
    | None ->
      t.dropped_no_handler <- t.dropped_no_handler + 1;
      false
    | Some handler ->
      t.delivered <- t.delivered + 1;
      handler msg;
      true)

let statistics t =
  {
    messages_sent = t.sent;
    messages_delivered = t.delivered;
    messages_lost = t.lost;
    messages_to_dead_nodes = t.dropped_no_handler;
  }

let observed_loss_rate t =
  if t.sent = 0 then 0. else float_of_int t.lost /. float_of_int t.sent
