(* Loss-rate sweep: how each protocol family degrades as the network gets
   worse, summarizing the repository's headline result in one table — S&F
   pays a small, bounded dependence cost for loss tolerance, where
   delete-on-send protocols collapse and keep-on-send protocols never had
   independence to begin with.

   Run with: dune exec examples/loss_sweep.exe *)

module Runner = Sf_core.Runner
module Properties = Sf_core.Properties
module Protocol = Sf_core.Protocol
module Baselines = Sf_core.Baselines
module Census = Sf_core.Census

let n = 500
let view_size = 40
let rounds = 300

let topology seed =
  Sf_core.Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:20

let sandf loss =
  let config = Protocol.make_config ~view_size ~lower_threshold:18 in
  let r = Runner.create ~seed:3 ~n ~loss_rate:loss ~config ~topology:(topology 1) () in
  Runner.run_rounds r rounds;
  let census = Properties.independence_census r in
  let edges = Sf_graph.Digraph.edge_count (Runner.membership_graph r) in
  (edges, census.Census.alpha, Properties.is_weakly_connected r)

let baseline kind loss =
  let b =
    Baselines.create ~seed:4 ~n ~view_size ~loss_rate:loss ~kind ~topology:(topology 2)
  in
  Baselines.run_rounds b rounds;
  ( Baselines.total_instances b,
    (Baselines.independence_census b).Census.alpha,
    Baselines.is_weakly_connected b )

let () =
  Fmt.pr "loss sweep: n=%d, s=%d, %d rounds; cells are edges/alpha/connected@." n
    view_size rounds;
  Fmt.pr "%-8s %-26s %-26s %-26s@." "loss" "send-and-forget" "shuffle" "push-pull";
  List.iter
    (fun loss ->
      let cell (edges, alpha, connected) =
        Fmt.str "%6d / %.3f / %b" edges alpha connected
      in
      let sf = sandf loss in
      let sh = baseline (Baselines.Shuffle { exchange_size = 4 }) loss in
      let pp = baseline (Baselines.Push_pull { gossip_size = 3 }) loss in
      Fmt.pr "%-8.2f %-26s %-26s %-26s@." loss (cell sf) (cell sh) (cell pp))
    [ 0.0; 0.01; 0.02; 0.05; 0.1; 0.2 ];
  Fmt.pr
    "@.reading: shuffle keeps alpha=1 but its edge count (and with it@\n\
     connectivity) collapses as loss grows; push-pull survives any loss but@\n\
     its views are almost entirely dependent; S&F loses a couple of edges of@\n\
     expected degree and a few percent of independence — the paper's thesis.@."
