(* Output helpers for the reproduction harness: section banners and aligned
   tables, plain stdout so results diff cleanly across runs. *)

let section id title =
  Fmt.pr "@.%s@.== %s — %s@.%s@." (String.make 78 '=') id title (String.make 78 '=')

let subsection title = Fmt.pr "@.-- %s@." title

let row fmt = Fmt.pr fmt

(* Print an aligned table: [headers] then rows of same-length string
   lists. *)
let table headers rows =
  let columns = List.length headers in
  let widths = Array.make columns 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let print_row cells =
    List.iteri
      (fun i cell -> Fmt.pr "%s%s" (if i = 0 then "  " else "  ") (Fmt.str "%*s" widths.(i) cell))
      cells;
    Fmt.pr "@."
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter print_row rows

let f2 x = Fmt.str "%.2f" x
let f3 x = Fmt.str "%.3f" x
let f4 x = Fmt.str "%.4f" x
let i d = string_of_int d

let check label ok =
  Fmt.pr "  [%s] %s@." (if ok then "ok" else "MISMATCH") label
