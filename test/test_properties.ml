(* Tests for the property monitors (M2-M5) and the dependence census. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Census = Sf_core.Census
module View = Sf_core.View
module Summary = Sf_stats.Summary

let config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_system ?(seed = 33) ?(n = 120) ?(loss = 0.) () =
  let rng = Sf_prng.Rng.create (seed + 7) in
  let topology = Topology.regular rng ~n ~out_degree:4 in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Census on crafted views --- *)

let entry ?(serial = 0) ?(anchor = None) id = { View.id; serial; anchor; born = 0 }

let test_census_empty () =
  let c = Census.of_views Seq.empty in
  Alcotest.(check int) "no entries" 0 c.Census.total_entries;
  Alcotest.(check bool) "alpha 1" true (c.Census.alpha = 1.)

let test_census_labels () =
  let v = View.create 6 in
  View.set v 0 (entry 7);                      (* independent *)
  View.set v 1 (entry 1);                      (* self edge (owner 1) *)
  View.set v 2 (entry ~anchor:(Some 9) 4);     (* anchored *)
  View.set v 3 (entry ~serial:1 7);            (* parallel duplicate of slot 0 *)
  let c = Census.of_views (List.to_seq [ (1, v) ]) in
  Alcotest.(check int) "total" 4 c.Census.total_entries;
  Alcotest.(check int) "self" 1 c.Census.self_edges;
  Alcotest.(check int) "anchored" 1 c.Census.anchored;
  Alcotest.(check int) "parallel" 1 c.Census.parallel_surplus;
  Alcotest.(check int) "dependent" 3 c.Census.dependent_entries;
  Alcotest.(check bool) "alpha = 1/4" true (Float.abs (c.Census.alpha -. 0.25) < 1e-9)

let test_census_overlapping_labels_count_once () =
  (* A self-edge that is also anchored and duplicated is one dependent
     entry per instance, not three. *)
  let v = View.create 6 in
  View.set v 0 (entry ~anchor:(Some 2) 2);
  View.set v 1 (entry ~serial:1 ~anchor:(Some 2) 2);
  let c = Census.of_views (List.to_seq [ (2, v) ]) in
  Alcotest.(check int) "dependent = total" 2 c.Census.dependent_entries;
  Alcotest.(check bool) "alpha 0" true (c.Census.alpha = 0.)

(* --- M2: load balance --- *)

let test_indegree_summary_matches_graph () =
  let r = make_system () in
  Runner.run_rounds r 20;
  let summary = Properties.indegree_summary r in
  let g = Runner.membership_graph r in
  let direct = Summary.create () in
  Array.iter
    (fun node ->
      Summary.add_int direct (Sf_graph.Digraph.in_degree g node.Protocol.node_id))
    (Runner.live_nodes r);
  Alcotest.(check bool) "means agree" true
    (Float.abs (Summary.mean summary -. Summary.mean direct) < 1e-9);
  Alcotest.(check int) "counts agree" (Summary.count direct) (Summary.count summary)

let test_load_balance_recovers_from_star () =
  (* Property M2: from a pathological star topology, indegree variance must
     shrink dramatically (768 -> ~5 in this configuration). *)
  let n = 150 in
  let topology = Topology.star_like ~n ~hubs:3 ~out_degree:4 in
  let r = Runner.create ~seed:44 ~n ~loss_rate:0. ~config ~topology () in
  let var0 = Summary.variance_population (Properties.indegree_summary r) in
  Runner.run_rounds r 800;
  let var1 = Summary.variance_population (Properties.indegree_summary r) in
  Alcotest.(check bool)
    (Printf.sprintf "variance %.1f -> %.1f" var0 var1)
    true
    (var1 < var0 /. 20.)

(* --- M3: uniformity --- *)

let test_uniformity_chi_square () =
  (* Snapshots within one run are temporally correlated (indegrees relax
     over ~100 rounds), which inflates a naive chi-square.  Aggregating one
     snapshot from each of several independent runs gives genuinely
     independent counts. *)
  let runs = 25 and n = 100 in
  let counts = Array.make n 0. in
  for seed = 1 to runs do
    let r = make_system ~seed:(1000 + seed) ~n () in
    Runner.run_rounds r 200;
    Array.iter
      (fun node ->
        View.iter
          (fun _ e ->
            if e.View.id <> node.Protocol.node_id && e.View.id < n then
              counts.(e.View.id) <- counts.(e.View.id) +. 1.)
          node.Protocol.view)
      (Runner.live_nodes r)
  done;
  let result = Sf_stats.Hypothesis.chi_square_uniform counts in
  Alcotest.(check bool)
    (Printf.sprintf "p-value %.4f" result.Sf_stats.Hypothesis.p_value)
    true
    (result.Sf_stats.Hypothesis.p_value > 0.001)

(* --- M4: spatial independence --- *)

let test_alpha_bound_under_loss () =
  let loss = 0.05 in
  let r = make_system ~n:200 ~loss () in
  Runner.run_rounds r 200;
  let base = Runner.world_counters r in
  Runner.run_rounds r 200;
  let census = Properties.independence_census r in
  (* The measured duplication rate gives the effective delta. *)
  let rates = Runner.rates_since r base in
  let bound =
    Sf_analysis.Dependence.alpha_lower_bound ~loss ~delta:rates.Runner.duplication
  in
  Alcotest.(check bool)
    (Printf.sprintf "alpha %.3f vs (loose) bound %.3f" census.Census.alpha bound)
    true
    (* The census over-counts dependence, so allow a small margin below the
       analytic bound. *)
    (census.Census.alpha > bound -. 0.05);
  Alcotest.(check bool) "some dependence exists under loss" true
    (census.Census.dependent_entries > 0)

let test_alpha_near_one_without_loss () =
  let r = make_system ~loss:0. () in
  Runner.run_rounds r 300;
  let census = Properties.independence_census r in
  Alcotest.(check bool)
    (Printf.sprintf "alpha %.3f" census.Census.alpha)
    true (census.Census.alpha > 0.9)

(* --- M5: temporal independence --- *)

let test_overlap_decay_is_monotone_and_fast () =
  let r = make_system ~n:150 () in
  Runner.run_rounds r 100;
  let points = Properties.overlap_decay r ~blocks:6 ~rounds_per_block:20 in
  Alcotest.(check int) "points" 7 (List.length points);
  (match points with
  | (0, f) :: _ -> Alcotest.(check bool) "starts at 1" true (f = 1.)
  | _ -> Alcotest.fail "expected a round-0 point");
  let fractions = List.map snd points in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (monotone fractions);
  let final = match List.rev fractions with f :: _ -> f | [] -> 1. in
  (* Lemma 6.9-style geometric replacement: after 120 rounds with
     dL=4, s=12 the surviving fraction is far below a half. *)
  Alcotest.(check bool) (Printf.sprintf "final overlap %.3f" final) true (final < 0.2)

let test_connectivity_monitor () =
  let r = make_system () in
  Alcotest.(check bool) "connected initially" true (Properties.is_weakly_connected r);
  Runner.run_rounds r 100;
  Alcotest.(check bool) "still connected" true (Properties.is_weakly_connected r)

(* --- Sampling facade --- *)

let test_sampling_basics () =
  let r = make_system () in
  Runner.run_rounds r 50;
  let rng = Sf_prng.Rng.create 3 in
  let node_id = (Runner.random_live_node r).Protocol.node_id in
  (match Sf_core.Sampling.sample r rng ~node_id with
  | Some id ->
    Alcotest.(check bool) "sample is a live id" true (Runner.find_node r id <> None);
    Alcotest.(check bool) "not self" true (id <> node_id)
  | None -> Alcotest.fail "expected a sample");
  let samples = Sf_core.Sampling.sample_many r rng ~node_id ~k:10 in
  Alcotest.(check int) "k samples" 10 (List.length samples);
  Alcotest.(check bool) "unknown node" true
    (Sf_core.Sampling.sample r rng ~node_id:99_999 = None)

let test_sampling_census_roughly_uniform () =
  (* As for raw uniformity, independent runs decorrelate the samples. *)
  let runs = 20 and n = 100 in
  let observed = Array.make n 0. in
  for seed = 1 to runs do
    let r = make_system ~seed:(2000 + seed) ~n () in
    Runner.run_rounds r 200;
    let rng = Sf_prng.Rng.create (3000 + seed) in
    let counts = Sf_core.Sampling.sampling_census r rng ~samples_per_node:2 ~rounds_between:40 in
    Hashtbl.iter (fun id c -> if id < n then observed.(id) <- observed.(id) +. float_of_int c) counts
  done;
  let result = Sf_stats.Hypothesis.chi_square_uniform observed in
  Alcotest.(check bool)
    (Printf.sprintf "sampling uniform (p=%.4f)" result.Sf_stats.Hypothesis.p_value)
    true
    (result.Sf_stats.Hypothesis.p_value > 0.001)

let suite =
  [
    Alcotest.test_case "census empty" `Quick test_census_empty;
    Alcotest.test_case "census labels" `Quick test_census_labels;
    Alcotest.test_case "census no double counting" `Quick test_census_overlapping_labels_count_once;
    Alcotest.test_case "M2 indegree summary" `Quick test_indegree_summary_matches_graph;
    Alcotest.test_case "M2 star recovery" `Quick test_load_balance_recovers_from_star;
    Alcotest.test_case "M3 uniformity chi-square" `Slow test_uniformity_chi_square;
    Alcotest.test_case "M4 alpha under loss" `Quick test_alpha_bound_under_loss;
    Alcotest.test_case "M4 alpha without loss" `Quick test_alpha_near_one_without_loss;
    Alcotest.test_case "M5 overlap decay" `Quick test_overlap_decay_is_monotone_and_fast;
    Alcotest.test_case "connectivity monitor" `Quick test_connectivity_monitor;
    Alcotest.test_case "sampling basics" `Quick test_sampling_basics;
    Alcotest.test_case "sampling census uniform" `Slow test_sampling_census_roughly_uniform;
  ]
