(* Churn experiments (paper, section 6.5): how fast do ids of departed nodes
   decay out of views (Lemma 6.10, Fig 6.4), and how fast does a joiner
   build representation (Lemmas 6.11-6.13, Corollary 6.14)? *)

(* Remove [victim] (or a random live node) and track the number of instances
   of its id remaining in live views after each round.  Returns the trace
   including round 0 (the count at the instant of departure). *)
let leave_decay runner ?victim ~rounds () =
  let victim_id =
    match victim with
    | Some id -> id
    | None -> (Runner.random_live_node runner).Protocol.node_id
  in
  (match Runner.remove_node runner victim_id with
  | Some _ -> ()
  | None -> invalid_arg "Churn.leave_decay: victim not live");
  let trace = Array.make (rounds + 1) 0 in
  trace.(0) <- Runner.count_id_instances runner victim_id;
  for r = 1 to rounds do
    Runner.run_rounds runner 1;
    trace.(r) <- Runner.count_id_instances runner victim_id
  done;
  (victim_id, trace)

(* Average several independent leave-decay traces into survival fractions
   (instances remaining / instances at departure), resampling a fresh victim
   per repetition from the same running system. *)
let leave_decay_fractions runner ~repetitions ~rounds =
  let sums = Array.make (rounds + 1) 0. in
  let used = ref 0 in
  for _ = 1 to repetitions do
    let _, trace = leave_decay runner ~rounds () in
    if trace.(0) > 0 then begin
      incr used;
      let base = float_of_int trace.(0) in
      Array.iteri (fun i c -> sums.(i) <- sums.(i) +. (float_of_int c /. base)) trace
    end
  done;
  if !used = 0 then invalid_arg "Churn.leave_decay_fractions: no usable victims";
  Array.map (fun x -> x /. float_of_int !used) sums

type join_trace = {
  joiner : int;
  instances : int array;   (* instances of the joiner's id, per round *)
  out_degrees : int array; (* the joiner's outdegree, per round *)
}

(* Add a node bootstrapped with dL ids copied from a live view (the paper's
   joining rule) and track its integration. *)
let join_integration runner ~rounds =
  let config = Runner.config runner in
  let bootstrap_size = max 2 config.Protocol.lower_threshold in
  let bootstrap = Runner.bootstrap_from runner ~count:bootstrap_size in
  let joiner = Runner.add_node runner ~bootstrap in
  let instances = Array.make (rounds + 1) 0 in
  let out_degrees = Array.make (rounds + 1) 0 in
  let record r =
    instances.(r) <- Runner.count_id_instances runner joiner;
    out_degrees.(r) <-
      (match Runner.find_node runner joiner with
      | Some node -> Protocol.degree node
      | None -> 0)
  in
  record 0;
  for r = 1 to rounds do
    Runner.run_rounds runner 1;
    record r
  done;
  { joiner; instances; out_degrees }

(* Continuous-churn driver: every round, [leaves] random nodes depart and
   [joins] new nodes arrive (bootstrapped from live views).  Used to check
   that the protocol keeps the graph connected and balanced under sustained
   membership change.  With [recover] set, starved nodes (whose neighbors
   have all departed) invoke the section 5 reconnection rule each round;
   the return value counts the reconnection attempts made. *)
let run_with_churn ?(recover = false) runner ~rounds ~joins ~leaves =
  let attempts =
    Sf_obs.Metrics.counter
      (Sf_obs.Obs.metrics (Runner.obs runner))
      "churn_recovery_attempts"
  in
  let reconnections = ref 0 in
  for _ = 1 to rounds do
    for _ = 1 to leaves do
      if Runner.live_count runner > 2 * (joins + leaves) then begin
        let victim = (Runner.random_live_node runner).Protocol.node_id in
        ignore (Runner.remove_node runner victim)
      end
    done;
    for _ = 1 to joins do
      let config = Runner.config runner in
      let count = max 2 config.Protocol.lower_threshold in
      let bootstrap = Runner.bootstrap_from runner ~count in
      ignore (Runner.add_node runner ~bootstrap)
    done;
    if recover then
      List.iter
        (fun node ->
          incr reconnections;
          Sf_obs.Metrics.incr attempts;
          match Runner.reconnect runner ~node_id:node.Protocol.node_id with
          | Runner.Reconnected _ -> ()
          | Runner.Exhausted _ ->
            (* Every previously seen id is dead: fall back to the
               out-of-band bootstrap service. *)
            ignore (Runner.rebootstrap runner ~node_id:node.Protocol.node_id))
        (Runner.isolated_nodes runner);
    Runner.run_rounds runner 1
  done;
  !reconnections

(* After a long partition the overlay can split permanently: cross-partition
   view entries decay to nothing while the cut holds, and the section 5
   reconnection rule cannot bridge it afterwards — the seen-ids cache is
   small and recency-ordered, so by then it only holds same-side ids.  The
   paper's remedy is the other half of the joining rule: an out-of-band
   rendezvous ("copy another node's view").  Each round this driver
   rebootstraps one live member of every weak component except the largest
   — the donor is a random live node, so with a dominant nucleus most
   donations bridge the cut — then runs one protocol round to spread the
   new edges. *)
let recover_connectivity ?(max_rounds = 50) runner =
  let components () =
    Sf_graph.Digraph.weakly_connected_components (Runner.membership_graph runner)
  in
  let rebootstraps = ref 0 in
  let rec go rounds =
    match components () with
    | [] | [ _ ] -> Some (rounds, !rebootstraps)
    | comps ->
      if rounds >= max_rounds then None
      else begin
        let sorted =
          List.sort (fun a b -> compare (List.length b) (List.length a)) comps
        in
        (match sorted with
        | [] -> ()
        | _largest :: minorities ->
          List.iter
            (fun comp ->
              (* A component may consist solely of departed ids still held
                 in views; only live nodes can rebootstrap. *)
              match
                List.find_opt
                  (fun id -> Option.is_some (Runner.find_node runner id))
                  comp
              with
              | None -> ()
              | Some id ->
                incr rebootstraps;
                ignore (Runner.rebootstrap runner ~node_id:id))
            minorities);
        Runner.run_rounds runner 1;
        go (rounds + 1)
      end
  in
  go 0
