(* The single ambient time source in the whole tree.

   Every other module takes an *injected* clock — a [unit -> float]
   argument or a virtual clock such as [Sf_engine.Sim.now] — so that
   simulations replay deterministically from a seed.  Code that genuinely
   needs real time (the UDP cluster's default timers, bench section
   timing, span profiling of wall-clock cost) obtains it from here, which
   keeps the wall-clock dependence auditable: the sf_lint
   [clock-discipline] rule forbids [Unix.gettimeofday]/[Sys.time]
   everywhere except this file. *)

let wall = Unix.gettimeofday

(* Per-process CPU seconds: immune to preemption by other processes, so
   overhead ratios measured with it are stable on shared or single-core
   machines where wall time is not. *)
let cpu = Sys.time

(* A stopwatch over an arbitrary clock: returns a thunk yielding seconds
   (or whatever unit [clock] ticks in) since creation.  With [wall] this is
   the bench harness's section timer; with a virtual clock it measures
   simulated time spans. *)
let stopwatch ~clock =
  let t0 = clock () in
  fun () -> clock () -. t0
