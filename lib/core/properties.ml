(* Monitors for the membership-service properties of section 2.

   M1 (small views) is a configuration fact; the monitors here measure the
   behavioural properties on live systems:

   - M2 load balance: the variance of node indegrees.
   - M3 uniformity: appearance counts of each id across views, accumulated
     over well-spaced snapshots, tested against uniformity by chi-square.
   - M4 spatial independence: a census of dependent view entries.  An entry
     is counted dependent when it is a self-edge, an instance anchored by a
     duplication (see {!View}), or a redundant parallel instance (the
     second and later copies of the same id in a view).  This is the
     mechanical union of the paper's dependence labels, so the resulting
     fraction is a conservative over-estimate of dependence.
   - M5 temporal independence: the fraction of instances surviving from a
     reference snapshot, which decays as views evolve. *)

(* M2: summary of live-node indegrees; the load-balance property holds when
   the variance stays bounded as the system runs. *)
let indegree_summary runner =
  let live = Runner.live_nodes runner in
  let counts = Hashtbl.create (2 * Array.length live) in
  Array.iter
    (fun node ->
      View.iter
        (fun _ e ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts e.View.id) in
          Hashtbl.replace counts e.View.id (c + 1))
        node.Protocol.view)
    live;
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun node ->
      let din =
        Option.value ~default:0 (Hashtbl.find_opt counts node.Protocol.node_id)
      in
      Sf_stats.Summary.add_int summary din)
    live;
  summary

let outdegree_summary runner =
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun node -> Sf_stats.Summary.add_int summary (Protocol.degree node))
    (Runner.live_nodes runner);
  summary

let outdegree_samples runner =
  Array.map Protocol.degree (Runner.live_nodes runner)

let indegree_samples runner =
  let live = Runner.live_nodes runner in
  let index = Hashtbl.create (2 * Array.length live) in
  Array.iteri (fun i node -> Hashtbl.replace index node.Protocol.node_id i) live;
  let counts = Array.make (Array.length live) 0 in
  Array.iter
    (fun node ->
      View.iter
        (fun _ e ->
          match Hashtbl.find_opt index e.View.id with
          | Some i -> counts.(i) <- counts.(i) + 1
          | None -> () (* departed node's id *))
        node.Protocol.view)
    live;
  counts

(* M3: accumulate per-id appearance counts over [snapshots] spaced
   [actions_between] global actions apart, then chi-square them against the
   uniform expectation.  Self-appearances are excluded: Lemma 7.6 proves
   uniformity only over v <> u. *)
let uniformity_test runner ~snapshots ~actions_between =
  let live = Runner.live_nodes runner in
  let index = Hashtbl.create (2 * Array.length live) in
  Array.iteri (fun i node -> Hashtbl.replace index node.Protocol.node_id i) live;
  let counts = Array.make (Array.length live) 0. in
  for _ = 1 to snapshots do
    Runner.run_actions runner actions_between;
    Array.iter
      (fun node ->
        View.iter
          (fun _ e ->
            if e.View.id <> node.Protocol.node_id then
              match Hashtbl.find_opt index e.View.id with
              | Some i -> counts.(i) <- counts.(i) +. 1.
              | None -> ())
          node.Protocol.view)
      (Runner.live_nodes runner)
  done;
  (counts, Sf_stats.Hypothesis.chi_square_uniform counts)

(* M4: dependence census, delegated to the generic {!Census} so the same
   labelling applies to baseline protocols. *)
let independence_census runner =
  let views =
    Array.to_seq (Runner.live_nodes runner)
    |> Seq.map (fun node -> (node.Protocol.node_id, node.Protocol.view))
  in
  Census.of_views views

(* M5: snapshot the serial numbers of all current instances, then report the
   fraction still present after each block of rounds.  Under temporal
   independence this decays geometrically; Lemma 6.9 bounds the per-round
   survival by 1 - (1-loss-delta) dL / s^2. *)
let overlap_decay runner ~blocks ~rounds_per_block =
  let snapshot = Hashtbl.create 4096 in
  Array.iter
    (fun node ->
      View.iter (fun _ e -> Hashtbl.replace snapshot e.View.serial ()) node.Protocol.view)
    (Runner.live_nodes runner);
  let initial = Hashtbl.length snapshot in
  let fraction_surviving () =
    if initial = 0 then 0.
    else begin
      let surviving = ref 0 in
      Array.iter
        (fun node ->
          View.iter
            (fun _ e -> if Hashtbl.mem snapshot e.View.serial then incr surviving)
            node.Protocol.view)
        (Runner.live_nodes runner);
      float_of_int !surviving /. float_of_int initial
    end
  in
  let points = ref [ (0, 1.) ] in
  for b = 1 to blocks do
    Runner.run_rounds runner rounds_per_block;
    points := (b * rounds_per_block, fraction_surviving ()) :: !points
  done;
  List.rev !points

(* Weak connectivity of the current membership graph restricted to live
   nodes (edges to departed ids are ignored: they cannot carry messages). *)
let is_weakly_connected runner =
  let live = Runner.live_nodes runner in
  let g = Sf_graph.Digraph.create () in
  let live_ids = Hashtbl.create (2 * Array.length live) in
  Array.iter (fun node -> Hashtbl.replace live_ids node.Protocol.node_id ()) live;
  Array.iter
    (fun node ->
      Sf_graph.Digraph.ensure_vertex g node.Protocol.node_id;
      View.iter
        (fun _ e ->
          if Hashtbl.mem live_ids e.View.id then
            Sf_graph.Digraph.add_edge g node.Protocol.node_id e.View.id)
        node.Protocol.view)
    live;
  Sf_graph.Digraph.is_weakly_connected g
