(* Xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.

   All randomness in the repository flows through values of type [t] with
   explicit seeds, so every simulation and statistical experiment is
   reproducible bit-for-bit.  [split] derives an independent child stream,
   which lets concurrent components (nodes, network, churn driver) draw
   without perturbing each other's sequences. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let of_seed64 seed =
  match Splitmix64.expand seed 4 with
  | [| s0; s1; s2; s3 |] -> { s0; s1; s2; s3 }
  | _ -> assert false

let create seed = of_seed64 (Int64.of_int seed)

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Derive an independent stream: reseed a SplitMix64 from the parent's next
   output.  The parent advances, so successive splits differ. *)
let split t = of_seed64 (next_int64 t)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Uniform float in [0,1): top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

(* Uniform int in [0, bound) without modulo bias (rejection on the top
   range). [bound] must be positive and fit in 62 bits. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let mask =
    (* Smallest all-ones mask covering bound-1. *)
    let rec go m = if Int64.unsigned_compare m (Int64.sub bound64 1L) >= 0 then m else go (Int64.logor (Int64.shift_left m 1) 1L) in
    go 1L
  in
  let rec draw () =
    let v = Int64.logand (next_int64 t) mask in
    if Int64.unsigned_compare v bound64 < 0 then Int64.to_int v else draw ()
  in
  draw ()

(* Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

(* Bernoulli trial with success probability [p]. *)
let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else float t < p

(* Two distinct indices drawn uniformly from [0, n). Requires n >= 2. *)
let distinct_pair t n =
  if n < 2 then invalid_arg "Rng.distinct_pair: need n >= 2";
  let i = int t n in
  let j0 = int t (n - 1) in
  let j = if j0 >= i then j0 + 1 else j0 in
  (i, j)

(* In-place Fisher-Yates shuffle. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Uniformly chosen element of a non-empty array. *)
let choose t a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t n)

(* [k] distinct indices sampled uniformly from [0, n) (Floyd's algorithm). *)
let sample_indices t ~n ~k =
  if k > n then invalid_arg "Rng.sample_indices: k > n";
  let chosen = Hashtbl.create (2 * k) in
  let out = ref [] in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    let pick = if Hashtbl.mem chosen r then j else r in
    Hashtbl.replace chosen pick ();
    out := pick :: !out
  done;
  Array.of_list !out

(* Exponential variate with rate [lambda]. *)
let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log1p (-.float t) /. lambda

(* Geometric variate: number of failures before the first success,
   success probability [p]. *)
let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p in (0,1]";
  if p = 1. then 0
  else
    let u = float t in
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))

(* Index drawn according to an (unnormalized) weight vector. *)
let categorical t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.categorical: weights must sum to > 0";
  let x = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.
