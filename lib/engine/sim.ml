(* Discrete-event simulation core: a virtual clock and an event queue of
   thunks.  Event handlers schedule further events; the loop runs until the
   queue drains, a time horizon passes, or an event budget is exhausted. *)

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable now : float;
  mutable executed : int;
  mutable stopped : bool;
  (* Post-event hook: runs after every executed event.  Used by the
     Sf_check audit layer to interleave invariant scans with timed runs. *)
  mutable monitor : (unit -> unit) option;
  (* Profiling hook: when set, every event execution is timed into the
     span's histogram (the span carries its own clock). *)
  mutable span : Sf_obs.Span.t option;
}

let create () =
  {
    queue = Event_queue.create ();
    now = 0.;
    executed = 0;
    stopped = false;
    monitor = None;
    span = None;
  }

let set_monitor t monitor = t.monitor <- monitor

let set_span t span = t.span <- span

let now t = t.now

let executed_events t = t.executed

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.now +. delay) f

let schedule_at t ~time f =
  if time < t.now then invalid_arg "Sim.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let stop t = t.stopped <- true

let pending t = Event_queue.length t.queue

type outcome = Drained | Reached_horizon | Budget_exhausted | Stopped

let run ?(horizon = infinity) ?(max_events = max_int) t =
  t.stopped <- false;
  let rec loop () =
    if t.stopped then Stopped
    else if t.executed >= max_events then Budget_exhausted
    else
      match Event_queue.peek t.queue with
      | None -> Drained
      | Some (time, _) when time > horizon -> Reached_horizon
      | Some _ ->
        (match Event_queue.pop t.queue with
        | None -> Drained
        | Some (time, f) ->
          t.now <- time;
          t.executed <- t.executed + 1;
          (match t.span with None -> f () | Some s -> Sf_obs.Span.time s f);
          (match t.monitor with Some m -> m () | None -> ());
          loop ())
  in
  let outcome = loop () in
  (* When stopping on the horizon, advance the clock to it so periodic
     processes resume cleanly on the next run. *)
  (match outcome with
  | Reached_horizon when horizon < infinity -> t.now <- horizon
  | _ -> ());
  outcome
