(* Point-to-point message layer with uniform i.i.d. loss (the paper's loss
   model, section 4.1) and configurable delivery latency.  Messages to nodes
   without a registered handler are counted as lost-to-crash, which is how
   the churn driver models failed nodes: the id of a dead node stays in
   views until the protocol erodes it, exactly as in section 6.5.2.

   An optional fault injector (lib/faults) generalizes the loss draw to
   stateful processes (Gilbert-Elliott bursts, per-link loss) and timed
   fault windows (partitions, crashes, delay spikes, corruption).  Without
   an injector — or with the all-default scenario — the send path performs
   exactly the historical single Bernoulli draw, so fault-free runs replay
   byte-identically. *)

type 'msg t = {
  sim : Sim.t;
  rng : Sf_prng.Rng.t;
  loss_rate : float;  (* nominal/mean rate, also the uniform default *)
  (* Per-destination loss probability, overriding the uniform rate — the
     non-uniform loss regime the paper's section 4.1 mentions but does not
     analyze (e.g. nodes behind lossy last-mile links). *)
  destination_loss : (int -> float) option;
  injector : Sf_faults.Injector.t option;
  latency : Sf_prng.Rng.t -> float;
  handlers : (int, 'msg -> unit) Hashtbl.t;
  obs : Sf_obs.Obs.t;
  (* Clock stamping trace records.  Defaults to the virtual clock; a
     driver whose time unit is not virtual time (the sequential runner's
     action-count round clock) overrides it so one dump never mixes
     clocks. *)
  mutable trace_clock : unit -> float;
  (* Registry counters; each update is one O(1) increment, the same cost
     as the mutable int fields they replaced. *)
  sent : Sf_obs.Metrics.counter;
  delivered : Sf_obs.Metrics.counter;
  lost : Sf_obs.Metrics.counter;
  dropped_no_handler : Sf_obs.Metrics.counter;
  (* Windowed ground-truth loss signal for the resilience layer
     (reset-on-read via [loss_window]); plain ints, maintained only when
     [resilience] was requested at creation, so the default send path is
     unchanged. *)
  resilience : bool;
  mutable win_sent : int;
  mutable win_lost : int;
}

type statistics = {
  messages_sent : int;
  messages_delivered : int;
  messages_lost : int;
  messages_to_dead_nodes : int;
}

let default_latency rng = 0.5 +. Sf_prng.Rng.float rng
(* Uniform in [0.5, 1.5): asynchronous but loosely synchronized, matching the
   paper's assumption that nodes invoke actions at similar rates. *)

let create ?(latency = default_latency) ?destination_loss ?injector ?obs
    ?(resilience = false) ~sim ~rng ~loss_rate () =
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Network.create: loss_rate must lie in [0,1]";
  let obs = match obs with Some o -> o | None -> Sf_obs.Obs.create () in
  let m = Sf_obs.Obs.metrics obs in
  {
    resilience;
    win_sent = 0;
    win_lost = 0;
    sim;
    rng;
    loss_rate;
    destination_loss;
    injector;
    latency;
    handlers = Hashtbl.create 64;
    obs;
    trace_clock = (fun () -> Sim.now sim);
    sent = Sf_obs.Metrics.counter m "net_sent";
    delivered = Sf_obs.Metrics.counter m "net_delivered";
    lost = Sf_obs.Metrics.counter m "net_lost";
    dropped_no_handler = Sf_obs.Metrics.counter m "net_no_handler";
  }

let register t node handler = Hashtbl.replace t.handlers node handler

let unregister t node = Hashtbl.remove t.handlers node

let is_registered t node = Hashtbl.mem t.handlers node

let loss_rate t = t.loss_rate

let drop_probability t ~dst =
  match t.destination_loss with None -> t.loss_rate | Some f -> f dst

(* The loss decision for one message: the historical single Bernoulli draw
   without an injector, the injector's full fault pipeline with one.  The
   simulator's messages never leave memory, so a corrupted payload is
   indistinguishable from a drop at the receiver (the cluster, which sends
   real bytes, instead flips them and lets the codec reject).  The drop
   payload names the cause for the trace record; metrics and the RNG
   stream are unaffected by it. *)
let judge t ~src ~dst =
  match t.injector with
  | None ->
    if Sf_prng.Rng.bernoulli t.rng (drop_probability t ~dst) then `Drop "chance"
    else `Deliver
  | Some injector -> (
    match
      Sf_faults.Injector.judge injector t.rng ~chance:(drop_probability t ~dst) ~src
        ~dst
    with
    | Sf_faults.Injector.Deliver -> `Deliver
    | Sf_faults.Injector.Corrupt_payload -> `Drop "corrupt"
    | Sf_faults.Injector.Drop Sf_faults.Injector.Chance -> `Drop "chance"
    | Sf_faults.Injector.Drop Sf_faults.Injector.Partitioned -> `Drop "partition"
    | Sf_faults.Injector.Drop Sf_faults.Injector.Crashed -> `Drop "crash")

let set_trace_clock t clock = t.trace_clock <- clock

(* Windowed loss accounting (resilience mode only). *)
let win_send t = if t.resilience then t.win_sent <- t.win_sent + 1
let win_loss t = if t.resilience then t.win_lost <- t.win_lost + 1

let loss_window t =
  if not t.resilience then None
  else begin
    let window = (t.win_sent, t.win_lost) in
    t.win_sent <- 0;
    t.win_lost <- 0;
    Some window
  end

(* Trace stamps come from the injected clock, so traces are deterministic
   and equal-seed runs dump identical bytes. *)
let trace t event =
  if Sf_obs.Obs.tracing t.obs then
    Sf_obs.Obs.trace t.obs ~now:(t.trace_clock ()) event

(* Fire-and-forget send: the sender cannot detect loss, so the loss draw
   happens here and lost messages are simply never scheduled.  [src] feeds
   the fault injector's partition/crash checks; [-1] (unknown sender) is
   exempt from them.  [duplicated] only annotates the trace record — the
   duplication decision itself lives in the protocol layer. *)
let send t ?(src = -1) ?(duplicated = false) ~dst msg =
  Sf_obs.Metrics.incr t.sent;
  win_send t;
  trace t (Sf_obs.Trace.Send { src; dst; duplicated });
  match judge t ~src ~dst with
  | `Drop cause ->
    Sf_obs.Metrics.incr t.lost;
    win_loss t;
    trace t (Sf_obs.Trace.Drop { src; dst; cause })
  | `Deliver ->
    let delay =
      match t.injector with
      | None -> t.latency t.rng
      | Some injector -> t.latency t.rng *. Sf_faults.Injector.delay_factor injector
    in
    Sim.schedule t.sim ~delay (fun () ->
        (* A destination that crashed while the message was in flight
           drops it on arrival. *)
        let crashed =
          match t.injector with
          | None -> false
          | Some injector -> Sf_faults.Injector.is_crashed injector dst
        in
        if crashed then begin
          Sf_obs.Metrics.incr t.lost;
          win_loss t;
          trace t (Sf_obs.Trace.Drop { src; dst; cause = "crash" })
        end
        else
          match Hashtbl.find_opt t.handlers dst with
          | None ->
            Sf_obs.Metrics.incr t.dropped_no_handler;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
          | Some handler ->
            Sf_obs.Metrics.incr t.delivered;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = true });
            handler msg)

(* Synchronous delivery used by the sequential-action scheduler of the
   analysis model: the receive step runs immediately (actions are serial).
   Returns whether the message was delivered to a live handler. *)
let send_immediate t ?(src = -1) ?(duplicated = false) ~dst msg =
  Sf_obs.Metrics.incr t.sent;
  win_send t;
  trace t (Sf_obs.Trace.Send { src; dst; duplicated });
  match judge t ~src ~dst with
  | `Drop cause ->
    Sf_obs.Metrics.incr t.lost;
    win_loss t;
    trace t (Sf_obs.Trace.Drop { src; dst; cause });
    false
  | `Deliver -> (
    match Hashtbl.find_opt t.handlers dst with
    | None ->
      Sf_obs.Metrics.incr t.dropped_no_handler;
      trace t (Sf_obs.Trace.Deliver { dst; accepted = false });
      false
    | Some handler ->
      Sf_obs.Metrics.incr t.delivered;
      trace t (Sf_obs.Trace.Deliver { dst; accepted = true });
      handler msg;
      true)

let statistics t =
  {
    messages_sent = Sf_obs.Metrics.count t.sent;
    messages_delivered = Sf_obs.Metrics.count t.delivered;
    messages_lost = Sf_obs.Metrics.count t.lost;
    messages_to_dead_nodes = Sf_obs.Metrics.count t.dropped_no_handler;
  }

let observed_loss_rate t =
  let sent = Sf_obs.Metrics.count t.sent in
  if sent = 0 then 0.
  else float_of_int (Sf_obs.Metrics.count t.lost) /. float_of_int sent
