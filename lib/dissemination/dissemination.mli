(** Historical push-epidemic interface, kept for existing drivers and
    benchmarks; a thin shim over {!Sequential} with
    {!Strategy.Push}.  On a scenario-free runner it replays the
    pre-refactor [Sf_core.Dissemination.spread] byte-for-byte (same RNG
    draws, same trace).  New code should call {!Sequential.run} — or
    {!Flat.run} at scale — directly. *)

type trace = {
  rounds_to_half : int option;
  rounds_to_all : int option;  (** to [coverage_target] of live nodes *)
  coverage : float array;  (** live-coverage fraction after each round *)
  pushes : int;  (** total push messages sent *)
}

val spread :
  ?coverage_target:float ->
  ?max_rounds:int ->
  Sf_core.Runner.t ->
  Sf_prng.Rng.t ->
  fanout:int ->
  loss_rate:float ->
  source:int ->
  unit ->
  trace
(** Spread a rumor from [source]: each round every infected node pushes to
    [fanout] peers sampled from its current view; pushes are lost with
    [loss_rate] (i.i.d., regardless of any runner scenario — the
    historical contract). Stops at [coverage_target] (default 0.99) of
    live nodes or [max_rounds] (default 200). *)
