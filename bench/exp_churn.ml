(* Churn experiments: Figure 6.4 (decay of departed ids) and the join
   integration bounds of Corollary 6.14. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Churn = Sf_core.Churn
module Decay = Sf_analysis.Decay

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

let make_system ~seed ~loss =
  let rng = Sf_prng.Rng.create (seed + 1) in
  let n = 800 in
  let topology = Topology.regular rng ~n ~out_degree:30 in
  let r = Runner.create ~seed ~n ~loss_rate:loss ~config ~topology () in
  Runner.run_rounds r 300;
  r

(* --- Figure 6.4 --- *)

let fig_6_4 () =
  Output.section "F6.4" "Survival of a departed node's id instances (Figure 6.4)";
  Fmt.pr
    "Upper bound (1 - (1-loss-delta) dL / s^2)^rounds with delta=0.01,@\n\
     dL=18, s=40, plus the measured average survival over 12 leave events@\n\
     in an 800-node simulation.@.";
  let losses = [ 0.; 0.01; 0.05; 0.1 ] in
  let bounds =
    List.map
      (fun loss ->
        (loss, Decay.make_params ~loss ~delta:0.01 ~lower_threshold:18 ~view_size:40))
      losses
  in
  let measured =
    List.map
      (fun loss ->
        let r = make_system ~seed:(100 + int_of_float (loss *. 1000.)) ~loss in
        (loss, Churn.leave_decay_fractions r ~repetitions:12 ~rounds:500))
      losses
  in
  Output.subsection "survival: analytic bound (B) and measured (M) per loss rate";
  let checkpoints = [ 0; 25; 50; 70; 100; 150; 200; 300; 400; 500 ] in
  let header =
    [ "round" ]
    @ List.concat_map (fun l -> [ Fmt.str "B l=%.2f" l; Fmt.str "M l=%.2f" l ]) losses
  in
  let rows =
    List.map
      (fun round ->
        Output.i round
        :: List.concat_map
             (fun loss ->
               let _, params = List.find (fun (l, _) -> l = loss) bounds in
               let _, fractions = List.find (fun (l, _) -> l = loss) measured in
               [
                 Output.f3 (Decay.survival_bound params ~rounds:round);
                 Output.f3 fractions.(round);
               ])
             losses)
      checkpoints
  in
  Output.table header rows;
  Output.subsection "bound curves (rounds 0..500)";
  Sf_stats.Ascii_plot.multi_series Fmt.stdout
    (List.map
       (fun (loss, params) ->
         (Fmt.str "loss %.2f" loss, Decay.survival_curve params ~rounds:500))
       bounds);
  Output.subsection "rounds until the bound crosses 50%";
  Output.table
    [ "loss"; "rounds to 50% (bound)" ]
    (List.map
       (fun (loss, params) ->
         [ Output.f2 loss; Output.i (Decay.rounds_to_fraction params ~fraction:0.5) ])
       bounds);
  List.iter
    (fun (loss, params) ->
      Output.check
        (Fmt.str "loss %.2f: below 50%% within 70 rounds (paper's claim)" loss)
        (Decay.rounds_to_fraction params ~fraction:0.5 <= 70))
    bounds;
  (* The bound must actually bound the measurements. *)
  List.iter
    (fun loss ->
      let _, params = List.find (fun (l, _) -> l = loss) bounds in
      let _, fractions = List.find (fun (l, _) -> l = loss) measured in
      let sound =
        List.for_all
          (fun round ->
            fractions.(round) <= Decay.survival_bound params ~rounds:round +. 0.06)
          checkpoints
      in
      Output.check (Fmt.str "loss %.2f: measured decay within the Lemma 6.10 bound" loss) sound)
    losses

(* --- Corollary 6.14 --- *)

let table_6_14 () =
  Output.section "C6.14" "Join integration (Lemmas 6.11-6.13, Corollary 6.14)";
  Fmt.pr
    "A joiner bootstrapped with dL=18 live ids (s=40, so s/dL ~ 2).  The@\n\
     corollary predicts at least Din/4 id instances within about 2s rounds@\n\
     for small loss.  Measured: average over 10 joiners, loss=0.01.@.";
  let loss = 0.01 in
  let r = make_system ~seed:500 ~loss in
  let din = Sf_stats.Summary.mean (Sf_core.Properties.indegree_summary r) in
  let params = Decay.make_params ~loss ~delta:0.01 ~lower_threshold:18 ~view_size:40 in
  let window = Decay.joiner_integration_rounds params in
  let predicted = Decay.joiner_integration_instances params ~expected_indegree:din in
  let repetitions = 10 in
  let sum_instances = Array.make (window + 1) 0. in
  let sum_outdeg = Array.make (window + 1) 0. in
  for _ = 1 to repetitions do
    let trace = Churn.join_integration r ~rounds:window in
    Array.iteri
      (fun i x -> sum_instances.(i) <- sum_instances.(i) +. float_of_int x)
      trace.Churn.instances;
    Array.iteri
      (fun i x -> sum_outdeg.(i) <- sum_outdeg.(i) +. float_of_int x)
      trace.Churn.out_degrees
  done;
  let avg a i = a.(i) /. float_of_int repetitions in
  Output.table
    [ "round"; "avg id instances"; "avg outdegree" ]
    (List.map
       (fun i -> [ Output.i i; Output.f2 (avg sum_instances i); Output.f2 (avg sum_outdeg i) ])
       (List.filter (fun i -> i <= window) [ 0; 10; 20; 40; 60; 80; window ]));
  Fmt.pr "  analytic window: %d rounds;  predicted instances >= %.1f (Din=%.1f)@."
    window predicted din;
  Output.check
    (Fmt.str "joiner reaches the Cor 6.14 target (%.1f) within the window" predicted)
    (avg sum_instances window >= predicted);
  Output.check "joiner outdegree recovers above dL within the window"
    (avg sum_outdeg window > 18.)
