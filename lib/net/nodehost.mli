(** One OS process of the multi-process cluster: a {!Driver} slice wrapped
    in a controllable host.  The spawner ({!Spawner}) forks many of these;
    each binds [nodes_per_host] consecutive ports of the shared port map
    and gossips with its siblings over plain UDP, so killing a host is a
    real crash of a real address space.

    Control channels (textual, one command per line or datagram): stdin
    (EOF stops the host — no orphans), a UDP command socket on
    [control_port], and SIGTERM/SIGINT for a clean stop.  Commands:
    [stop], [snapshot], [filter K] / [filter off] (cross-process
    partition window), [ping].

    Reporting, on stdout: [ready HOST PID FIRST COUNT] once at start;
    at stop one [view ID entries] line per owned node (entries
    [id:serial:anchor:born] comma-separated, [-] when empty, anchor [-1]
    for none), one [stats k=v ...] line, then [bye].  Heartbeat datagrams
    [hb HOST PID ACTIONS] go to [controller_port] every [heartbeat]
    seconds when that port is non-zero. *)

type config = {
  host_index : int;        (** which slice this process owns *)
  hosts : int;             (** sibling process count (also the serial stride) *)
  nodes_per_host : int;
  base_port : int;         (** node [i]'s socket is [base_port + i], globally *)
  control_port : int;      (** this host's UDP command socket *)
  controller_port : int;   (** heartbeat sink; [0] disables heartbeats *)
  protocol : Sf_core.Protocol.config;
  out_degree : int;        (** of the shared seed topology *)
  scenario : Sf_faults.Scenario.t;
      (** loss model only — a scenario with fault windows is rejected:
          crash and partition windows belong to the controller, which
          realizes them as kills and filter commands *)
  loss_rate : float;
  period : float;
  version : int;           (** wire ceiling per {!Driver.create} (1 or 2) *)
  seed : int;              (** shared across hosts: fixes the global topology;
                               each host derives a distinct protocol stream *)
  duration : float;        (** hard cap on the run, in seconds *)
  heartbeat : float;
  resilience : Sf_resil.Policy.t option;
}

val main : config -> unit
(** Run the host to completion: bind the slice, serve the control
    channels, report views/stats/[bye] on stdout, close every socket.
    Raises [Invalid_argument] on a malformed config (bad slice bounds, or
    a scenario carrying fault windows). *)

val handle_command : Driver.t -> reply:(string -> unit) -> string -> unit
(** Exposed for tests: parse and execute one control command against a
    driver, answering through [reply]. *)

val view_line : int -> Sf_core.View.t -> string
(** Exposed for tests: the [view ID entries] report line for one node. *)

val line_reader :
  Unix.file_descr -> on_line:(string -> unit) -> on_eof:(unit -> unit) -> unit -> unit
(** Incremental line reader over a non-blocking fd: each call of the
    returned thunk drains what the kernel has buffered, firing [on_line]
    per complete line and [on_eof] once when the peer closes.  Used for
    the host's stdin and for the spawner's host-stdout pipes. *)
