(** Streaming descriptive statistics (Welford) and array reductions. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float

val variance : t -> float
(** Sample variance (n-1 denominator); 0 for fewer than two points. *)

val variance_population : t -> float
(** Population variance (n denominator). *)

val std : t -> float
val std_population : t -> float
val min_value : t -> float
val max_value : t -> float

val merge : t -> t -> t
(** Combine two independent summaries. *)

val of_array : float array -> t
val of_int_array : int array -> t

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [0,1]; linear interpolation. *)

val pp : Format.formatter -> t -> unit
