(** Span timers: profile a named section into a per-span histogram.

    The clock is {e injected} at creation ({!Clock.wall} for real cost,
    a virtual clock for simulated time), keeping instrumented libraries
    free of ambient clocks. *)

type t

val create : clock:(unit -> float) -> Metrics.t -> string -> t
(** Get-or-create the histogram named [name] in the registry and attach
    the clock to it. *)

val of_histogram : clock:(unit -> float) -> Metrics.histogram -> t

val histogram : t -> Metrics.histogram

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, observing its duration (clock units) even when it
    raises. *)

val observe_duration : t -> float -> unit
(** Record an externally measured duration. *)
