(** The Send & Forget protocol (paper, Figure 5.1), split into the two
    atomic steps of its non-atomic action: {!initiate} and {!receive}. *)

type config = {
  view_size : int;        (** s: number of view slots, even, >= 6 *)
  lower_threshold : int;  (** dL: outdegree at which sends duplicate *)
}

val make_config : view_size:int -> lower_threshold:int -> config
(** Validates the paper's constraints: s even, s >= 6, dL even,
    0 <= dL <= s - 6. *)

type message = {
  reinforcement : View.entry;  (** the sender's own id ([u] in [u,w]) *)
  mixing : View.entry;         (** the forwarded id ([w] in [u,w]) *)
}

type node = {
  node_id : int;
  view : View.t;
  mutable initiated_actions : int;
  mutable self_loop_actions : int;
  mutable messages_sent : int;
  mutable duplications : int;
  mutable messages_received : int;
  mutable deletions : int;
  mutable seen_ids : int list;
      (** recently received ids (newest first, bounded); the memory the
          section 5 reconnection rule probes *)
}

val create_node : config:config -> node_id:int -> node
(** A node with an empty view (a joiner fills it via {!Topology} or by
    copying ids). *)

val degree : node -> int
(** d(u): current outdegree. *)

type initiate_result =
  | Self_loop
  | Send of { destination : int; message : message; duplicated : bool }

val initiate :
  config ->
  Sf_prng.Rng.t ->
  fresh_serial:(unit -> int) ->
  clock:int ->
  node ->
  initiate_result
(** One initiate step: selects two distinct slots uniformly; on two
    non-empty slots, produces the message to send and either clears the
    slots or (at the threshold) duplicates. The caller transmits the
    message; the sender never learns the outcome. *)

type receive_result = Accepted | Deleted

val receive : config -> Sf_prng.Rng.t -> node -> message -> receive_result
(** One receive step: installs both ids into uniformly chosen empty slots,
    or deletes them when the view is full. *)

val invariant_holds : config -> node -> bool
(** Observation 5.1: outdegree even and within bounds. *)
