(* The sf_analyze pass engine: Parsetree-precision static analysis over
   OCaml sources, pure so the test suite can drive it on in-memory
   fixtures.

   Where sf_lint scans tokens, sf_analyze parses every file with the
   exact compiler frontend (compiler-libs 5.1.1) and walks the AST with
   Ast_iterator-based passes.  That buys three things the lexical tool
   cannot have:

   - a *shared-mutable-state inventory*: every module-level binding that
     allocates mutable state at module initialisation time (refs,
     hashtables, buffers, arrays, mutable records, lazy thunks) — the
     gating artifact for sharding the simulator across OCaml 5 Domains,
     where any true global is a race waiting to happen;
   - *effect signatures*: per toplevel function, which of
     {mutation, randomness, clock, io, raise} its body can perform, with
     a checked discipline for lib/core and lib/engine (no I/O, no
     ambient clocks, raises only of locally-declared exceptions or the
     invalid_arg/failwith guard forms);
   - *AST-precise partiality*: partial stdlib calls found through `|>`
     pipelines, higher-order escapes, local module aliases and `open` —
     the lexical rule's blind spots — plus refutable `let` patterns and
     `[@warning "-8"]` exhaustiveness suppressions.

   Findings ratchet down through a baseline file sharing sf_lint's
   allowlist contract (one "path rule" pair per line, stale entries
   fail), and the inventory is emitted as a deterministic JSON report. *)

open Parsetree

type finding = {
  rule : string;
  path : string;
  line : int;  (* 1-based; 0 for file-level findings *)
  ident : string;  (* enclosing binding or offending name; "-" if none *)
  message : string;
}

let pp_finding ppf f =
  if f.line = 0 then Fmt.pf ppf "%s: [%s] %s" f.path f.rule f.message
  else Fmt.pf ppf "%s:%d: [%s] %s" f.path f.line f.rule f.message

(* A module-level mutable allocation: the unit of the shared-state
   inventory.  [classified] is set by the baseline application — an
   unclassified hazard is a sharding blocker. *)
type hazard = {
  h_path : string;
  h_line : int;
  h_ident : string;  (* the toplevel binding holding the state *)
  h_kind : string;  (* ref | hashtbl | array | array-literal | buffer
                       | bytes | queue | stack | lazy | mutable-record
                       | atomic | channel *)
  mutable h_classified : bool;
}

(* Per-function effect signature, inferred from the AST. *)
type effects = {
  mutation : bool;
  randomness : bool;
  clock : bool;
  io : bool;
  raises : bool;
}

let no_effects =
  { mutation = false; randomness = false; clock = false; io = false; raises = false }

let effect_letters e =
  List.filter_map
    (fun (on, letter) -> if on then Some letter else None)
    [
      (e.mutation, "mut");
      (e.randomness, "rand");
      (e.clock, "clock");
      (e.io, "io");
      (e.raises, "raise");
    ]

type effect_sig = {
  e_path : string;
  e_line : int;
  e_name : string;
  e_effects : effects;
}

(* Everything one analysis run produces. *)
type analysis = {
  findings : finding list;
  hazards : hazard list;
  effect_sigs : effect_sig list;  (* functions with at least one effect *)
  pure_functions : int;
  safe_sites : (string * int) list;  (* path, allocations under a lambda *)
  parsed_files : int;
}

let empty_analysis =
  {
    findings = [];
    hazards = [];
    effect_sigs = [];
    pure_functions = 0;
    safe_sites = [];
    parsed_files = 0;
  }

(* --- Rule registry (stable order: the docs and --list-rules print it) --- *)

let rule_docs =
  [
    ( "shared-state",
      "module-level mutable state (ref/Hashtbl/array/Buffer/lazy/mutable \
       record) allocated at init time — a Domain-sharding hazard unless \
       classified in the baseline" );
    ( "effect-discipline",
      "lib/core and lib/engine functions must not perform I/O or read \
       ambient clocks; state mutation stays inside their state records and \
       randomness arrives as a threaded rng" );
    ( "raise-locality",
      "lib/core and lib/engine may raise only locally-declared exceptions \
       (or the invalid_arg/failwith guard forms); foreign exceptions cross \
       module boundaries invisibly" );
    ( "partiality",
      "partial stdlib call (List.hd/tl/nth, Option.get, Hashtbl.find, \
       Stack.pop/top, Queue.pop/peek/take) found at AST precision: through \
       pipelines, higher-order position, module aliases and open" );
    ( "partial-escape",
      "unsafe indexing function (Array.get/set, String.get, Bytes.get/set) \
       escaping as a first-class value, where no adjacent bounds check can \
       guard it" );
    ( "refutable-let",
      "let binding whose pattern can fail to match (constructor, constant, \
       array or variant pattern outside a match)" );
    ( "match-suppression",
      "[@warning \"-8\"] (or \"-a\") attribute: with warnings-as-errors \
       tree-wide, suppressing warning 8 is the only way a nonexhaustive \
       match survives compilation" );
    ("parse-error", "file does not parse with the 5.1.1 compiler frontend");
  ]

(* --- Longident helpers --- *)

let flatten lid = String.concat "." (Longident.flatten lid)

let line_of loc = loc.Location.loc_start.Lexing.pos_lnum

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- Mutable allocator classification ---

   [allocator_kind name] is the inventory kind when calling [name]
   allocates fresh mutable state, resolved on the qualified name as
   written (module aliases are resolved by the caller). *)

let allocator_kind name =
  match name with
  | "ref" | "Stdlib.ref" -> Some "ref"
  | "Atomic.make" -> Some "atomic"
  | "Mutex.create" | "Condition.create" -> Some "atomic"
  | "Buffer.create" -> Some "buffer"
  | _ ->
    let with_module m kind fns =
      if List.exists (fun fn -> name = m ^ "." ^ fn) fns then Some kind else None
    in
    let ( <|> ) a b = match a with Some _ -> a | None -> b in
    with_module "Hashtbl" "hashtbl" [ "create"; "copy"; "of_seq" ]
    <|> with_module "Queue" "queue" [ "create"; "copy"; "of_seq" ]
    <|> with_module "Stack" "stack" [ "create"; "copy"; "of_seq" ]
    <|> with_module "Array" "array"
          [
            "make"; "create_float"; "init"; "make_matrix"; "init_matrix";
            "of_list"; "copy"; "append"; "concat"; "sub"; "map"; "mapi";
            "of_seq";
          ]
    <|> with_module "Bytes" "bytes"
          [ "create"; "make"; "init"; "of_string"; "copy"; "sub"; "extend"; "cat" ]
    <|> with_module "Weak" "array" [ "create" ]
    <|> with_module "Lazy" "lazy" [ "from_fun"; "from_val" ]

(* --- Effect classification of a qualified name --- *)

let is_mutator name =
  match name with
  | ":=" | "incr" | "decr" -> true
  | _ ->
    let in_module m fns = List.exists (fun fn -> name = m ^ "." ^ fn) fns in
    in_module "Array" [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "fast_sort" ]
    || in_module "Bytes" [ "set"; "unsafe_set"; "fill"; "blit"; "blit_string" ]
    || in_module "Hashtbl"
         [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
    || in_module "Queue" [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]
    || in_module "Stack" [ "push"; "pop"; "clear" ]
    || in_module "Atomic" [ "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr"; "decr" ]
    || has_prefix ~prefix:"Buffer.add" name
    || in_module "Buffer" [ "clear"; "reset"; "truncate" ]

let is_random name =
  has_prefix ~prefix:"Random." name
  || has_prefix ~prefix:"Rng." name
  || has_prefix ~prefix:"Sf_prng." name

let is_clock name =
  match name with
  | "Unix.gettimeofday" | "Sys.time" -> true
  | _ ->
    (* The sanctioned injected clocks still mark the signature: callers
       learn the function is time-dependent even when the source is
       disciplined. *)
    List.exists
      (fun suffix ->
        let s = "Clock." ^ suffix in
        name = s || Filename.check_suffix name ("." ^ s))
      [ "wall"; "cpu"; "stopwatch" ]

let is_io name =
  List.exists
    (fun p -> has_prefix ~prefix:p name)
    [
      "print_"; "prerr_"; "output"; "input"; "read_line"; "open_in"; "open_out";
      "Printf."; "Out_channel."; "In_channel."; "Fmt.pr"; "Fmt.epr";
    ]
  || List.mem name
       [ "Format.printf"; "Format.eprintf"; "Format.print_string"; "close_in";
         "close_out"; "flush"; "Sys.command"; "Sys.remove"; "Sys.rename";
         "Sys.readdir"; "Sys.getenv"; "Sys.getenv_opt" ]
  || (has_prefix ~prefix:"Unix." name && not (is_clock name))

let is_raiser name =
  match name with
  | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "Fmt.failwith"
  | "Fmt.invalid_arg" ->
    true
  | _ -> false

(* Exceptions any module may raise without declaring them.  Raising via
   invalid_arg/failwith is the sanctioned precondition-guard form, so
   raise-locality only polices explicit [raise] of constructors. *)
let ambient_exceptions = [ "Exit"; "Not_found"; "Invalid_argument"; "Failure" ]

(* --- Partiality sets --- *)

let partial_calls =
  [ "List.hd"; "List.tl"; "List.nth"; "Option.get"; "Hashtbl.find" ]

(* Container pops are partial too, but the idiomatic BFS/Tarjan shape
   [while not (Queue.is_empty q) do ... Queue.pop q ... done] is safe: a
   dominating emptiness (or length) test of the same module counts as a
   guard.  This is precisely what the lexical rule could never express. *)
let guarded_partial_calls =
  [
    ("Stack.pop", "Stack"); ("Stack.top", "Stack"); ("Queue.pop", "Queue");
    ("Queue.peek", "Queue"); ("Queue.take", "Queue");
  ]

let guardable_modules = [ "Queue"; "Stack" ]

(* Unqualified names that become partial when their module is open. *)
let partial_unqualified =
  [
    ("List", [ "hd"; "tl"; "nth" ]);
    ("Option", [ "get" ]);
    ("Stack", [ "pop"; "top" ]);
    ("Queue", [ "pop"; "peek"; "take" ]);
  ]

(* Indexing functions: total only when fully applied next to their use
   site (where a bounds check can guard them); as escaping first-class
   values they are unguardable.  [arity] is the fully-applied argument
   count. *)
let index_functions =
  [
    ("Array.get", 2); ("Array.set", 3); ("String.get", 2); ("Bytes.get", 2);
    ("Bytes.set", 3);
  ]

(* Modules whose aliases we chase for the partiality sets. *)
let aliasable_modules =
  [ "List"; "Option"; "Array"; "Hashtbl"; "Queue"; "Stack"; "Bytes"; "String" ]

(* --- Pattern refutability (syntactic, conservative) --- *)

let rec pattern_refutable p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ | Ppat_unpack _ | Ppat_type _ | Ppat_extension _ ->
    false
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p)
    ->
    pattern_refutable p
  | Ppat_tuple ps -> List.exists pattern_refutable ps
  | Ppat_record (fields, _) ->
    List.exists (fun (_, p) -> pattern_refutable p) fields
  | Ppat_construct ({ txt = Lident "()"; _ }, None) -> false
  | Ppat_construct _ | Ppat_variant _ | Ppat_constant _ | Ppat_interval _
  | Ppat_array _ | Ppat_exception _ ->
    true
  | Ppat_or (a, b) -> pattern_refutable a && pattern_refutable b

let rec pattern_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | Ppat_alias (_, { txt; _ }) -> txt
  | Ppat_constraint (p, _) -> pattern_name p
  | _ -> "_"

(* --- Per-file analysis --- *)

type context = {
  path : string;
  mutable out : finding list;
  mutable file_hazards : hazard list;
  mutable file_effects : effect_sig list;
  mutable pure : int;
  mutable safe : int;
  (* collected declarations *)
  mutable local_exceptions : string list;
  mutable mutable_fields : string list;
  mutable aliases : (string * string) list;  (* local alias -> stdlib module *)
  mutable opened : string list;  (* opened aliasable modules *)
  mutable binding : string;  (* nearest enclosing toplevel binding *)
  mutable guards : string list;  (* modules with a dominating emptiness test *)
}

let add_finding ctx ~rule ~line ~ident message =
  ctx.out <- { rule; path = ctx.path; line; ident; message } :: ctx.out

let in_pure_layer path =
  has_prefix ~prefix:"lib/core/" path || has_prefix ~prefix:"lib/engine/" path

(* Resolve a qualified name through the file's local module aliases:
   [T.find] with [module T = Hashtbl] in scope becomes [Hashtbl.find]. *)
let resolve ctx name =
  match String.index_opt name '.' with
  | None -> name
  | Some i -> (
    let head = String.sub name 0 i in
    match List.assoc_opt head ctx.aliases with
    | Some target -> target ^ String.sub name i (String.length name - i)
    | None -> name)

let ident_of e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (flatten txt) | _ -> None

(* - Declaration collection (phase 1): exceptions, mutable record fields,
   module aliases, opens.  Submodule structures are walked too — their
   declarations share the compilation unit. *)
let rec collect_declarations ctx str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_exception { ptyexn_constructor = { pext_name; _ }; _ } ->
        ctx.local_exceptions <- pext_name.txt :: ctx.local_exceptions
      | Pstr_type (_, decls) ->
        List.iter
          (fun d ->
            match d.ptype_kind with
            | Ptype_record labels ->
              List.iter
                (fun l ->
                  if l.pld_mutable = Asttypes.Mutable then
                    ctx.mutable_fields <- l.pld_name.txt :: ctx.mutable_fields)
                labels
            | _ -> ())
          decls
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } ->
          let target = flatten txt in
          if List.mem target aliasable_modules then
            ctx.aliases <- (name, target) :: ctx.aliases
        | Pmod_structure s -> collect_declarations ctx s
        | _ -> ())
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ }
        ->
        let target = flatten txt in
        if List.mem target aliasable_modules then
          ctx.opened <- target :: ctx.opened
      | _ -> ())
    str

(* - Shared-state walk: [init] mode evaluates at module initialisation;
   anything under a lambda (or functor body) is deferred to call time and
   only counted as a safe, per-instance allocation site. *)
let record_hazard ctx e kind =
  ctx.file_hazards <-
    {
      h_path = ctx.path;
      h_line = line_of e.pexp_loc;
      h_ident = ctx.binding;
      h_kind = kind;
      h_classified = false;
    }
    :: ctx.file_hazards;
  add_finding ctx ~rule:"shared-state" ~line:(line_of e.pexp_loc)
    ~ident:ctx.binding
    (Fmt.str
       "module-level mutable state (%s) in binding '%s' — a true global under \
        Domain sharding; thread it through a state record or classify it in \
        the baseline"
       kind ctx.binding)

let hazard_of_expr ctx e =
  match e.pexp_desc with
  | Pexp_lazy _ -> Some "lazy"
  | Pexp_array _ -> Some "array-literal"
  | Pexp_record (fields, _) ->
    if
      List.exists
        (fun ({ Location.txt; _ }, _) ->
          match Longident.flatten txt with
          | [] -> false
          | parts ->
            let field = List.nth_opt parts (List.length parts - 1) in
            (match field with
            | Some f -> f = "contents" || List.mem f ctx.mutable_fields
            | None -> false))
        fields
    then Some "mutable-record"
    else None
  | Pexp_apply (f, _) -> (
    match ident_of f with
    | Some name -> allocator_kind (resolve ctx name)
    | None -> None)
  | _ -> None

(* Count allocation sites under lambdas: these are the per-instance,
   domain-safe constructors the JSON report tallies. *)
let safe_site_iterator ctx =
  let expr it e =
    (match hazard_of_expr ctx e with
    | Some _ -> ctx.safe <- ctx.safe + 1
    | None -> ());
    Ast_iterator.default_iterator.expr it e
  in
  { Ast_iterator.default_iterator with expr }

let rec init_walk ctx e =
  match hazard_of_expr ctx e with
  | Some kind ->
    record_hazard ctx e kind;
    (* The binding is already a hazard; nested allocations inside it
       (e.g. an array of buffers) add nothing new.  Deferred interiors
       of a flagged lazy are not counted as safe sites either. *)
    ()
  | None -> (
    match e.pexp_desc with
    | Pexp_fun (_, default, _, body) ->
      let it = safe_site_iterator ctx in
      Option.iter (it.expr it) default;
      it.expr it body
    | Pexp_function cases ->
      let it = safe_site_iterator ctx in
      List.iter
        (fun c ->
          Option.iter (it.expr it) c.pc_guard;
          it.expr it c.pc_rhs)
        cases
    | Pexp_newtype (_, body) -> init_walk ctx body
    | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> init_walk ctx vb.pvb_expr) vbs;
      init_walk ctx body
    | Pexp_sequence (a, b) ->
      init_walk ctx a;
      init_walk ctx b;
      ()
    | Pexp_ifthenelse (c, t, f) ->
      init_walk ctx c;
      init_walk ctx t;
      Option.iter (init_walk ctx) f
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
      init_walk ctx e
    | Pexp_apply (f, args) ->
      init_walk ctx f;
      List.iter (fun (_, a) -> init_walk ctx a) args
    | Pexp_tuple es -> List.iter (init_walk ctx) es
    | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      Option.iter (init_walk ctx) arg
    | Pexp_record (fields, base) ->
      List.iter (fun (_, e) -> init_walk ctx e) fields;
      Option.iter (init_walk ctx) base
    | Pexp_field (e, _) -> init_walk ctx e
    | Pexp_match (e, cases) | Pexp_try (e, cases) ->
      init_walk ctx e;
      List.iter
        (fun c ->
          Option.iter (init_walk ctx) c.pc_guard;
          init_walk ctx c.pc_rhs)
        cases
    | Pexp_letmodule (_, _, body) -> init_walk ctx body
    | _ ->
      (* Constants, idents, and rarer forms allocate nothing mutable
         directly. *)
      ())

(* - Effect inference: walk a function body collecting the effect set. *)
let infer_effects ctx body =
  let eff = ref no_effects in
  let note f = eff := f !eff in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_setfield _ | Pexp_setinstvar _ ->
      note (fun x -> { x with mutation = true })
    | Pexp_assert _ -> note (fun x -> { x with raises = true })
    | Pexp_ident { txt; _ } ->
      let name = resolve ctx (flatten txt) in
      if is_mutator name then note (fun x -> { x with mutation = true });
      if is_random name then note (fun x -> { x with randomness = true });
      if is_clock name then note (fun x -> { x with clock = true });
      if is_io name then note (fun x -> { x with io = true });
      if is_raiser name then note (fun x -> { x with raises = true })
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !eff

(* Raise-locality: explicit [raise (C ...)] in the pure layers must name
   a locally-declared or ambient exception. *)
let check_raise_locality ctx body =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, (_, arg) :: _)
      when ident_of f = Some "raise" || ident_of f = Some "raise_notrace" -> (
      match arg.pexp_desc with
      | Pexp_construct ({ txt; _ }, _) -> (
        match txt with
        | Lident name
          when List.mem name ctx.local_exceptions
               || List.mem name ambient_exceptions ->
          ()
        | _ ->
          add_finding ctx ~rule:"raise-locality" ~line:(line_of e.pexp_loc)
            ~ident:ctx.binding
            (Fmt.str
               "raise of foreign exception %s in '%s' — lib/core and \
                lib/engine raise only locally-declared exceptions (or \
                invalid_arg/failwith guards)"
               (flatten txt) ctx.binding))
      | _ -> (* re-raise of a caught exception variable *) ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body

(* - Partiality / escape / refutable-let / match-suppression walk over
   the whole structure. *)
(* The modules whose emptiness the given guard expression tests:
   [not (Queue.is_empty q)], [Stack.length s > 0], ... *)
let guard_modules_of ctx cond =
  let found = ref [] in
  let expr it e =
    (match ident_of e with
    | Some raw ->
      let name = resolve ctx raw in
      List.iter
        (fun m ->
          if (name = m ^ ".is_empty" || name = m ^ ".length")
             && not (List.mem m !found)
          then found := m :: !found)
        guardable_modules
    | None -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it cond;
  !found

let partiality_iterator ctx =
  let flag_partial loc name =
    add_finding ctx ~rule:"partiality" ~line:(line_of loc) ~ident:name
      (Fmt.str "%s is partial — match explicitly or use the _opt variant" name)
  in
  let flag_resolved loc name =
    if List.mem name partial_calls then flag_partial loc name
    else
      match List.assoc_opt name guarded_partial_calls with
      | Some m when not (List.mem m ctx.guards) ->
        add_finding ctx ~rule:"partiality" ~line:(line_of loc) ~ident:name
          (Fmt.str
             "%s is partial and no dominating %s.is_empty/length test guards \
              it — match on the _opt variant or add the guard"
             name m)
      | _ -> ()
  in
  let rec with_guards it cond body_walks =
    let saved = ctx.guards in
    ctx.guards <- guard_modules_of ctx cond @ ctx.guards;
    List.iter (fun b -> expr it b) body_walks;
    ctx.guards <- saved
  and expr it e =
    match e.pexp_desc with
    | Pexp_while (cond, body) ->
      expr it cond;
      with_guards it cond [ body ]
    | Pexp_ifthenelse (cond, then_, else_) ->
      expr it cond;
      (* The guard is applied to both branches: the test may be stated
         positively or negatively, and this is a proximity heuristic,
         not a dominator analysis. *)
      with_guards it cond (then_ :: Option.to_list else_)
    | Pexp_apply (f, args) -> (
      match ident_of f with
      | Some raw -> (
        let name = resolve ctx raw in
        (match List.assoc_opt name index_functions with
        | Some arity when List.length args < arity ->
          add_finding ctx ~rule:"partial-escape" ~line:(line_of f.pexp_loc)
            ~ident:name
            (Fmt.str
               "%s escapes partially applied — no bounds check can guard it \
                at the call site"
               name)
        | _ -> ());
        flag_resolved f.pexp_loc name;
        (* Skip the head ident (already handled); walk the arguments. *)
        List.iter (fun (_, a) -> expr it a) args)
      | None -> Ast_iterator.default_iterator.expr it e)
    | Pexp_ident { txt; loc } -> (
      let name = resolve ctx (flatten txt) in
      if List.mem name partial_calls || List.mem_assoc name guarded_partial_calls
      then flag_resolved loc name
      else if List.mem_assoc name index_functions then
        add_finding ctx ~rule:"partial-escape" ~line:(line_of loc) ~ident:name
          (Fmt.str
             "%s escapes as a first-class value — no bounds check can guard \
              it at the call site"
             name)
      else
        match txt with
        | Lident simple ->
          List.iter
            (fun (m, fns) ->
              if List.mem m ctx.opened && List.mem simple fns then
                flag_partial loc (m ^ "." ^ simple ^ " (via open " ^ m ^ ")"))
            partial_unqualified
        | _ -> ())
    | Pexp_let (_, vbs, _) ->
      List.iter
        (fun vb ->
          if pattern_refutable vb.pvb_pat then
            add_finding ctx ~rule:"refutable-let"
              ~line:(line_of vb.pvb_pat.ppat_loc)
              ~ident:(pattern_name vb.pvb_pat)
              "let pattern can fail to match — use match or make the \
               pattern irrefutable")
        vbs;
      Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  let attribute _it (a : attribute) =
    if a.attr_name.txt = "warning" || a.attr_name.txt = "ocaml.warning" then
      match a.attr_payload with
      | PStr
          [
            {
              pstr_desc =
                Pstr_eval
                  ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
              _;
            };
          ]
        when List.exists
               (fun bad ->
                 (* substring check: "-8", "-a" anywhere in the spec *)
                 let bn = String.length bad and sn = String.length s in
                 let rec at i = i + bn <= sn && (String.sub s i bn = bad || at (i + 1)) in
                 at 0)
               [ "-8"; "-a" ] ->
        add_finding ctx ~rule:"match-suppression" ~line:(line_of a.attr_loc)
          ~ident:a.attr_name.txt
          (Fmt.str
             "warning suppression %S can hide a nonexhaustive match — the \
              tree compiles with -warn-error +a, so this is the only way one \
              survives"
             s)
      | _ -> ()
    else ()
  in
  let structure_item it item =
    (match item.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          if pattern_refutable vb.pvb_pat then
            add_finding ctx ~rule:"refutable-let"
              ~line:(line_of vb.pvb_pat.ppat_loc)
              ~ident:(pattern_name vb.pvb_pat)
              "toplevel let pattern can fail to match — use match or make \
               the pattern irrefutable")
        vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it item
  in
  { Ast_iterator.default_iterator with expr; attribute; structure_item }

(* - Toplevel structure walk driving shared-state and effects. *)
let rec walk_module_level ctx ~prefix str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let name = prefix ^ pattern_name vb.pvb_pat in
            ctx.binding <- name;
            (* A binding that binds nothing — [let () = ...] driver mains,
               [let _ = ...] — cannot publish state to other modules:
               whatever it allocates dies with the initialiser, so it
               counts as safe sites, not hazards. *)
            let rec binds_nothing p =
              match p.ppat_desc with
              | Ppat_any -> true
              | Ppat_construct ({ txt = Lident "()"; _ }, None) -> true
              | Ppat_constraint (p, _) -> binds_nothing p
              | _ -> false
            in
            if binds_nothing vb.pvb_pat then begin
              let it = safe_site_iterator ctx in
              it.expr it vb.pvb_expr
            end
            else init_walk ctx vb.pvb_expr;
            (* Effect signature for function bindings. *)
            let rec peel e =
              match e.pexp_desc with
              | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> peel e
              | Pexp_fun _ | Pexp_function _ -> true
              | Pexp_let (_, _, body) -> peel body
              | _ -> false
            in
            if peel vb.pvb_expr then begin
              let eff = infer_effects ctx vb.pvb_expr in
              if eff = no_effects then ctx.pure <- ctx.pure + 1
              else
                ctx.file_effects <-
                  {
                    e_path = ctx.path;
                    e_line = line_of vb.pvb_loc;
                    e_name = name;
                    e_effects = eff;
                  }
                  :: ctx.file_effects;
              if in_pure_layer ctx.path then begin
                check_raise_locality ctx vb.pvb_expr;
                if eff.io then
                  add_finding ctx ~rule:"effect-discipline"
                    ~line:(line_of vb.pvb_loc) ~ident:name
                    (Fmt.str
                       "'%s' performs I/O from a pure layer — lib/core and \
                        lib/engine report through returned values and \
                        injected observers"
                       name);
                if eff.clock then
                  add_finding ctx ~rule:"effect-discipline"
                    ~line:(line_of vb.pvb_loc) ~ident:name
                    (Fmt.str
                       "'%s' reads a clock from a pure layer — take the time \
                        as a parameter (Sim.now, ?now)"
                       name)
              end
            end;
            ctx.binding <- "-")
          vbs
      | Pstr_eval (e, _) ->
        (* Evaluated for effect; its allocations cannot escape either. *)
        ctx.binding <- prefix ^ "_toplevel_";
        let it = safe_site_iterator ctx in
        it.expr it e;
        ctx.binding <- "-"
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
        walk_module_expr ctx ~prefix:(prefix ^ name ^ ".") pmb_expr
      | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_name.txt with
            | Some name -> walk_module_expr ctx ~prefix:(prefix ^ name ^ ".") mb.pmb_expr
            | None -> ())
          mbs
      | Pstr_include { pincl_mod; _ } -> walk_module_expr ctx ~prefix pincl_mod
      | _ -> ())
    str

and walk_module_expr ctx ~prefix me =
  match me.pmod_desc with
  | Pmod_structure s -> walk_module_level ctx ~prefix s
  | Pmod_constraint (me, _) -> walk_module_expr ctx ~prefix me
  | Pmod_functor (_, body) ->
    (* A functor body initialises per application — its allocations are
       per-instance, like a lambda's. *)
    let saved = ctx.binding in
    ctx.binding <- prefix ^ "(functor)";
    let it = safe_site_iterator ctx in
    let module_expr_it = it.module_expr in
    module_expr_it it body;
    ctx.binding <- saved
  | _ -> ()

(* --- Parsing --- *)

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  if Filename.check_suffix path ".mli" then
    match Parse.interface lexbuf with
    | _ -> Ok None
    | exception Syntaxerr.Error err ->
      Error (line_of (Syntaxerr.location_of_error err), "syntax error")
    | exception _ -> Error (lexbuf.lex_curr_p.pos_lnum, "lexical error")
  else
    match Parse.implementation lexbuf with
    | str -> Ok (Some str)
    | exception Syntaxerr.Error err ->
      Error (line_of (Syntaxerr.location_of_error err), "syntax error")
    | exception _ -> Error (lexbuf.lex_curr_p.pos_lnum, "lexical error")

(* --- Entry points --- *)

let analyze_file ~path source =
  let ctx =
    {
      path;
      out = [];
      file_hazards = [];
      file_effects = [];
      pure = 0;
      safe = 0;
      local_exceptions = [];
      mutable_fields = [];
      aliases = [];
      opened = [];
      binding = "-";
      guards = [];
    }
  in
  (match parse ~path source with
  | Error (line, msg) ->
    add_finding ctx ~rule:"parse-error" ~line ~ident:"-" msg
  | Ok None -> (* interface: parse check only *) ()
  | Ok (Some str) ->
    collect_declarations ctx str;
    walk_module_level ctx ~prefix:"" str;
    let it = partiality_iterator ctx in
    it.structure it str);
  {
    findings = List.rev ctx.out;
    hazards = List.rev ctx.file_hazards;
    effect_sigs = List.rev ctx.file_effects;
    pure_functions = ctx.pure;
    safe_sites = (if ctx.safe > 0 then [ (path, ctx.safe) ] else []);
    parsed_files = 1;
  }

let merge a b =
  {
    findings = a.findings @ b.findings;
    hazards = a.hazards @ b.hazards;
    effect_sigs = a.effect_sigs @ b.effect_sigs;
    pure_functions = a.pure_functions + b.pure_functions;
    safe_sites = a.safe_sites @ b.safe_sites;
    parsed_files = a.parsed_files + b.parsed_files;
  }

let analyze_files files =
  List.fold_left
    (fun acc (path, source) -> merge acc (analyze_file ~path source))
    empty_analysis files

(* --- Baseline: sf_lint's allowlist contract, verbatim ---

   One "path rule" pair per line ('*' matches any rule), '#' comments,
   and entries that suppress nothing are reported as stale, so the
   baseline can only ratchet down.  Parsing is shared with sf_lint. *)

type baseline_entry = Sf_lint_rules.Lint_rules.allow = {
  allow_path : string;
  allow_rule : string;
}

let parse_baseline = Sf_lint_rules.Lint_rules.parse_allowlist

let baseline_matches (e : baseline_entry) (f : finding) =
  e.allow_path = f.path && (e.allow_rule = "*" || e.allow_rule = f.rule)

let apply_baseline entries analysis =
  let used = Array.make (List.length entries) false in
  let suppressed f =
    let hit = ref false in
    List.iteri
      (fun i e ->
        if baseline_matches e f then begin
          used.(i) <- true;
          hit := true
        end)
      entries;
    !hit
  in
  let kept = List.filter (fun f -> not (suppressed f)) analysis.findings in
  (* A hazard is classified iff its shared-state finding is baselined. *)
  List.iter
    (fun h ->
      h.h_classified <-
        List.exists
          (fun e ->
            e.allow_path = h.h_path
            && (e.allow_rule = "*" || e.allow_rule = "shared-state"))
          entries)
    analysis.hazards;
  let stale = List.filteri (fun i _ -> not used.(i)) entries in
  (kept, stale)

(* --- JSON report --- *)

module Json = Sf_obs.Json

let report_json ?(kept = []) analysis =
  let hazard_json h =
    Json.Obj
      [
        ("path", Json.String h.h_path);
        ("line", Json.Int h.h_line);
        ("binding", Json.String h.h_ident);
        ("kind", Json.String h.h_kind);
        ("classified", Json.Bool h.h_classified);
      ]
  in
  let effect_json e =
    Json.Obj
      [
        ("path", Json.String e.e_path);
        ("line", Json.Int e.e_line);
        ("function", Json.String e.e_name);
        ( "effects",
          Json.List
            (List.map (fun l -> Json.String l) (effect_letters e.e_effects)) );
      ]
  in
  let finding_json (f : finding) =
    Json.Obj
      [
        ("path", Json.String f.path);
        ("line", Json.Int f.line);
        ("rule", Json.String f.rule);
        ("ident", Json.String f.ident);
        ("message", Json.String f.message);
      ]
  in
  let unclassified_in prefix =
    List.length
      (List.filter
         (fun h -> (not h.h_classified) && has_prefix ~prefix h.h_path)
         analysis.hazards)
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("files", Json.Int analysis.parsed_files);
      ( "shared_state",
        Json.Obj
          [
            ("hazards", Json.List (List.map hazard_json analysis.hazards));
            ( "safe_sites",
              Json.List
                (List.map
                   (fun (path, count) ->
                     Json.Obj
                       [ ("path", Json.String path); ("count", Json.Int count) ])
                   analysis.safe_sites) );
            ( "unclassified",
              Json.Obj
                [
                  ("lib/core", Json.Int (unclassified_in "lib/core/"));
                  ("lib/engine", Json.Int (unclassified_in "lib/engine/"));
                  ("total", Json.Int (unclassified_in ""));
                ] );
          ] );
      ( "effects",
        Json.Obj
          [
            ("pure_functions", Json.Int analysis.pure_functions);
            ("effectful", Json.List (List.map effect_json analysis.effect_sigs));
          ] );
      ("findings", Json.List (List.map finding_json kept));
    ]
