(* Minimal JSON emitter for machine-readable artifacts (trace dumps, bench
   results).  Emission only — the repo never parses JSON — and fully
   deterministic: object fields print in the order given, numbers with a
   fixed format, so identical values serialize to identical bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Fixed-format float: enough digits to distinguish every stamp a run can
   produce, short for round values.  %.12g is deterministic for a given
   bit pattern, which is all byte-identical replay needs. *)
let number_repr x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else
    let s = Fmt.str "%.12g" x in
    (* Ensure the token reads back as a float, not an int. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
    else s ^ ".0"

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (number_repr x)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf key;
        Buffer.add_char buf ':';
        emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  emit buf json;
  Buffer.contents buf

let to_buffer buf json = emit buf json
