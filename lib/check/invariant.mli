(** Runtime audit of the paper's invariants.

    Encodes the guarantees the analysis relies on as checkable predicates
    and threads them through a running {!Sf_core.Runner} via its audit
    hook (and {!Sf_engine.Sim.set_monitor} for timed runs):

    - {b M1 / Observation 5.1}: every outdegree stays within [[0, s]], and
      even for systems started from an even topology;
    - {b degree conservation}: a loss-free, non-duplicating action moves
      exactly two edges from sender to receiver (global edge count
      unchanged); duplication adds two, loss/deletion removes two — the
      balance behind Lemma 6.6;
    - {b the dL rule} (section 6.3): an action duplicates iff the sender's
      outdegree was at or below dL at initiation;
    - {b view soundness}: cached degrees match occupied slots, serials are
      globally unique and below the mint bound, birth times never exceed
      the action clock;
    - {b crash discipline} (fault scenarios, {!Sf_faults}): a node inside
      an active crash window neither initiates nor receives.

    Fault windows surface as [Structural] audit events, which resync the
    conservation baseline — the invariants above keep holding under every
    fault the scenario language can express.

    Per-action checks cost O(live nodes); full scans cost O(live × s) and
    run every [scan_every] actions. *)

type mode =
  | Warn    (** log violations via [Logs] and keep counting *)
  | Strict  (** raise {!Violation} on the first one *)

type violation = { invariant : string; detail : string }

exception Violation of violation

val pp_violation : violation Fmt.t

(** {2 Pure checks} *)

val check_view : Sf_core.View.t -> violation option
(** Structural soundness of one view: cached degree = occupied slots. *)

val check_degree :
  ?require_even:bool ->
  config:Sf_core.Protocol.config ->
  Sf_core.Protocol.node ->
  violation option
(** M1 bounds (and parity) for one node. *)

val total_edges : Sf_core.Runner.t -> int
(** Global edge count: the sum of live outdegrees. *)

val scan : ?require_even:bool -> Sf_core.Runner.t -> violation list
(** Full structural scan of a system; empty means every invariant holds. *)

(** {2 Attached audit} *)

type stats = {
  mutable actions_checked : int;
  mutable receipts_seen : int;
  mutable full_scans : int;
  mutable resyncs : int;
  mutable violation_count : int;
  mutable violations : violation list;
      (** newest first; bounded to the first 100 in [Warn] mode *)
}

val attach :
  ?mode:mode -> ?scan_every:int -> ?require_even:bool -> Sf_core.Runner.t -> stats
(** Install the auditor on a runner.  Defaults: [Strict], a full scan every
    1000 actions, parity required.  Returns live statistics.  Degree
    conservation is only checked while actions are serial; it disarms
    itself when timed-mode deliveries interleave. *)

val detach : Sf_core.Runner.t -> unit
(** Remove the auditor and the sim monitor. *)

val audited_run :
  ?mode:mode ->
  ?scan_every:int ->
  ?require_even:bool ->
  Sf_core.Runner.t ->
  rounds:int ->
  stats
(** [attach], run [rounds] sequential rounds, final full scan, [detach]
    (also on exception). *)

(** {2 Sharded flat-state audit}

    The bulk-synchronous {!Sf_core.Runner.Sharded} engine has no
    per-action hook, so its audit moves to round granularity: an edge
    ledger checked after every round, full structural scans at a
    configurable cadence. *)

val scan_sharded : ?require_even:bool -> Sf_core.Runner.Sharded.t -> violation list
(** Full structural scan of a packed world: M1 bounds and parity, cached
    degrees against slot recounts, global serial uniqueness, the
    shard-strided serial bound, birth-round bounds, id range, and — under
    churn — emptiness of every dead slot.  Live views may hold stale
    references to departed ids (they decay through the protocol); dead
    slots must hold nothing.  Empty means every invariant holds.
    O(capacity × s). *)

val audited_sharded_run :
  ?mode:mode ->
  ?scan_every:int ->
  ?require_even:bool ->
  ?domains:int ->
  Sf_core.Runner.Sharded.t ->
  rounds:int ->
  stats
(** Run [rounds] bulk-synchronous rounds, checking after each that the
    global edge count moved by exactly [2 × accepted duplications − 2 ×
    dropped non-duplicated messages + churn edges added − churn edges
    removed] (Lemma 6.6's balance at round granularity, extended for
    joins, leaves and supervised rebootstraps — crash and partition drops
    land in the dropped term), with a {!scan_sharded} every [scan_every]
    rounds (default 10) and at the end.  In the returned {!stats},
    [actions_checked] counts audited rounds.  Defaults: [Strict] mode,
    one domain. *)
