(* Spatial independence (paper, section 7.4).

   A non-empty view entry is modelled by the two-state dependence MC of
   Figure 7.1.  Per non-self-loop transformation involving the entry:

   - independent -> dependent with probability at most
       (3/2) (loss + delta):
     the entry becomes dependent when it is duplicated (probability at most
     loss + delta, Lemma 6.7), and the arrival rate of *returning*
     dependent entries adds at most half of that again (Lemma 7.8 bounds
     the return probability by 1/2 under Assumption 7.7, alpha >= 2/3).

   - dependent -> independent with probability at least
       (5/6) (1 - (loss + delta)):
     the entry is shipped away without duplication (1 - (loss + delta))
     to a target other than the initiator (self-edge probability at most
     beta = 1/6).

   The stationary dependent fraction of this chain is bounded by
   2 (loss + delta) — Lemma 7.9 — so the expected independent fraction
   alpha is at least 1 - 2 (loss + delta). *)

let x_of ~loss ~delta =
  let x = loss +. delta in
  if x < 0. || x >= 1. then invalid_arg "Dependence: loss + delta must lie in [0,1)";
  x

(* Transition probability bounds of the dependence MC. *)
let to_dependent_probability ~loss ~delta = 1.5 *. x_of ~loss ~delta

let to_independent_probability ~loss ~delta =
  5. /. 6. *. (1. -. x_of ~loss ~delta)

(* The two-state chain itself (state 0 = independent, 1 = dependent). *)
let chain ~loss ~delta =
  let p_id = to_dependent_probability ~loss ~delta in
  let p_di = to_independent_probability ~loss ~delta in
  Sf_markov.Chain.of_rows ~size:2 (function
    | 0 -> [ (1, p_id); (0, 1. -. p_id) ]
    | 1 -> [ (0, p_di); (1, 1. -. p_di) ]
    | _ -> assert false)

(* Exact stationary dependent fraction of the bounding chain — the paper's
   intermediate expression (loss+delta) / (5/9 + (4/9)(loss+delta)). *)
let stationary_dependent_fraction ~loss ~delta =
  let x = x_of ~loss ~delta in
  x /. ((5. /. 9.) +. (4. /. 9. *. x))

(* Lemma 7.9: alpha >= 1 - 2 (loss + delta). *)
let alpha_lower_bound ~loss ~delta =
  Float.max 0. (1. -. (2. *. x_of ~loss ~delta))

(* Lemma 7.8's return-probability bound: sum_{i>=1} (1 - alpha)^i =
   1/alpha - 1, at most 1/2 under Assumption 7.7 (alpha >= 2/3). *)
let return_probability_bound ~alpha =
  if alpha <= 0. || alpha > 1. then invalid_arg "Dependence.return_probability_bound";
  (1. /. alpha) -. 1.
