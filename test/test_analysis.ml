(* Tests for the paper's analytic machinery: eq (6.1), thresholds, the
   degree MC, decay bounds, the dependence MC, temporal bounds, and the
   connectivity rule. *)

module Analytic = Sf_analysis.Analytic
module Thresholds = Sf_analysis.Thresholds
module Degree_mc = Sf_analysis.Degree_mc
module Decay = Sf_analysis.Decay
module Dependence = Sf_analysis.Dependence
module Temporal = Sf_analysis.Temporal
module Connectivity = Sf_analysis.Connectivity
module Pmf = Sf_stats.Pmf

let close ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g, got %.12g" what expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. (1. +. Float.abs expected))

(* --- eq (6.1) --- *)

let test_analytic_is_distribution () =
  let p = Analytic.outdegree_distribution ~dm:90 in
  close ~eps:1e-9 "total mass" 1. (Pmf.total p);
  (* Odd outdegrees impossible. *)
  Pmf.iter (fun d pr -> if d mod 2 = 1 then close "odd mass" 0. pr) p

let test_analytic_mean_lemma_6_3 () =
  (* Lemma 6.3: average degree dm/3; the even-support discretization shifts
     the exact mean slightly. *)
  List.iter
    (fun dm ->
      let p = Analytic.outdegree_distribution ~dm in
      close ~eps:0.02
        (Printf.sprintf "mean for dm=%d" dm)
        (float_of_int dm /. 3.)
        (Pmf.mean p);
      let pin = Analytic.indegree_distribution ~dm in
      close ~eps:0.02 "indegree mean" (float_of_int dm /. 3.) (Pmf.mean pin))
    [ 30; 90; 150 ]

let test_analytic_small_case_by_hand () =
  (* dm = 2: a(0) = C(2,0) C(2,1) = 2; a(2) = C(2,2) C(0,0) = 1. *)
  let p = Analytic.outdegree_distribution ~dm:2 in
  close "P(0)" (2. /. 3.) (Pmf.prob p 0);
  close "P(2)" (1. /. 3.) (Pmf.prob p 2)

let test_analytic_consistency_out_in () =
  (* P(din = k) must equal P(d = dm - 2k). *)
  let dm = 30 in
  let out = Analytic.outdegree_distribution ~dm in
  let into = Analytic.indegree_distribution ~dm in
  for k = 0 to dm / 2 do
    close ~eps:1e-12
      (Printf.sprintf "k=%d" k)
      (Pmf.prob out (dm - (2 * k)))
      (Pmf.prob into k)
  done

let test_analytic_rejects_odd_dm () =
  Alcotest.check_raises "odd dm"
    (Invalid_argument "Analytic.outdegree_distribution: dm must be positive and even")
    (fun () -> ignore (Analytic.outdegree_distribution ~dm:7))

(* --- Thresholds (section 6.3) --- *)

let test_thresholds_paper_example () =
  let t = Thresholds.select ~d_hat:30 ~delta:0.01 in
  Alcotest.(check int) "dL = 18" 18 t.Thresholds.lower_threshold;
  Alcotest.(check int) "s = 40" 40 t.Thresholds.view_size;
  Alcotest.(check bool) "duplication budget honored" true
    (t.Thresholds.p_at_or_below_lower <= 0.01);
  Alcotest.(check bool) "deletion budget honored" true (t.Thresholds.p_above_size <= 0.01)

let test_thresholds_literal_reading () =
  let t = Thresholds.select_literal ~d_hat:30 ~delta:0.01 in
  Alcotest.(check int) "dL = 18" 18 t.Thresholds.lower_threshold;
  Alcotest.(check int) "s = 42 (literal)" 42 t.Thresholds.view_size

let test_thresholds_monotone_in_delta () =
  let tight = Thresholds.select ~d_hat:30 ~delta:0.001 in
  let loose = Thresholds.select ~d_hat:30 ~delta:0.05 in
  Alcotest.(check bool) "smaller delta, lower dL" true
    (tight.Thresholds.lower_threshold <= loose.Thresholds.lower_threshold);
  Alcotest.(check bool) "smaller delta, larger s" true
    (tight.Thresholds.view_size >= loose.Thresholds.view_size)

let test_thresholds_to_config () =
  let t = Thresholds.select ~d_hat:30 ~delta:0.01 in
  let config = Thresholds.to_config t in
  Alcotest.(check int) "s" 40 config.Sf_core.Protocol.view_size;
  Alcotest.(check int) "dL" 18 config.Sf_core.Protocol.lower_threshold

(* --- Degree MC (section 6.2), small configuration for speed --- *)

let small_mc loss =
  Degree_mc.solve
    (Degree_mc.make_params ~view_size:16 ~lower_threshold:6 ~loss ())

let test_degree_mc_converges () =
  let r = small_mc 0.02 in
  Alcotest.(check bool) "converged" true r.Degree_mc.converged;
  close ~eps:1e-6 "joint sums to 1" 1. (Array.fold_left ( +. ) 0. r.Degree_mc.joint)

let test_degree_mc_lemma_6_6 () =
  (* dup = loss + deletion in the fixed point. *)
  List.iter
    (fun loss ->
      let r = small_mc loss in
      close ~eps:5e-3
        (Printf.sprintf "Lemma 6.6 at loss %.2f" loss)
        (loss +. r.Degree_mc.deletion_probability)
        r.Degree_mc.duplication_probability)
    [ 0.; 0.02; 0.08 ]

let test_degree_mc_lemma_6_4_monotonicity () =
  (* Expected outdegree decreases with loss. *)
  let means =
    List.map (fun loss -> Pmf.mean (small_mc loss).Degree_mc.outdegree) [ 0.; 0.03; 0.1 ]
  in
  match means with
  | [ a; b; c ] ->
    Alcotest.(check bool) (Printf.sprintf "%.2f > %.2f > %.2f" a b c) true (a > b && b > c)
  | _ -> Alcotest.fail "unexpected"

let test_degree_mc_outdegree_bounds () =
  let r = small_mc 0.05 in
  Pmf.iter
    (fun d p ->
      if p > 1e-9 then
        Alcotest.(check bool) "support within [dL, s]" true (d >= 6 && d <= 16))
    r.Degree_mc.outdegree;
  (* Mean stays above the threshold (section 6.4 observation). *)
  Alcotest.(check bool) "mean above dL" true (Pmf.mean r.Degree_mc.outdegree > 6.)

let test_degree_mc_observation_6_5 () =
  (* Deletion probability decreases with increasing loss. *)
  let d1 = (small_mc 0.01).Degree_mc.deletion_probability in
  let d2 = (small_mc 0.1).Degree_mc.deletion_probability in
  Alcotest.(check bool) (Printf.sprintf "%.4f > %.4f" d1 d2) true (d1 > d2)

let test_degree_mc_no_loss_matches_analytic () =
  (* Figure 6.1 in miniature: dL=0, no loss, uniform sum degree dm = 12 with
     s = 12; the MC marginal should sit near the eq (6.1) distribution. *)
  let params = Degree_mc.make_params ~view_size:12 ~lower_threshold:0 ~loss:0. () in
  let r = Degree_mc.solve ~initial_state:(4, 4) params in
  let analytic = Analytic.outdegree_distribution ~dm:12 in
  let mc = Degree_mc.even_outdegree r in
  let tvd = Pmf.tv_distance mc analytic in
  Alcotest.(check bool) (Printf.sprintf "TVD %.3f small" tvd) true (tvd < 0.1);
  close ~eps:0.05 "mean near dm/3" 4. (Pmf.mean mc)

let test_degree_mc_param_validation () =
  Alcotest.check_raises "bad loss"
    (Invalid_argument "Degree_mc.make_params: loss must lie in [0,1)") (fun () ->
      ignore (Degree_mc.make_params ~view_size:16 ~lower_threshold:6 ~loss:1.0 ()))

(* --- Decay (section 6.5) --- *)

let decay_params =
  Decay.make_params ~loss:0. ~delta:0.01 ~lower_threshold:18 ~view_size:40

let test_decay_survival_curve () =
  let curve = Decay.survival_curve decay_params ~rounds:500 in
  close "starts at 1" 1. curve.(0);
  Alcotest.(check bool) "monotone decreasing" true
    (Array.for_all2 (fun a b -> b <= a) (Array.sub curve 0 500) (Array.sub curve 1 500));
  close ~eps:1e-12 "matches closed form at 100"
    (Decay.survival_bound decay_params ~rounds:100)
    curve.(100)

let test_decay_paper_50_percent_claim () =
  (* "after merely 70 rounds, fewer than 50% ... remain" across the loss
     rates of Figure 6.4. *)
  List.iter
    (fun loss ->
      let p = Decay.make_params ~loss ~delta:0.01 ~lower_threshold:18 ~view_size:40 in
      let rounds = Decay.rounds_to_fraction p ~fraction:0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "50%% within %d rounds at loss %.2f" rounds loss)
        true
        (rounds <= 70))
    [ 0.; 0.01; 0.05; 0.1 ]

let test_decay_loss_slows_decay () =
  let fast = Decay.per_round_survival decay_params in
  let slow =
    Decay.per_round_survival
      (Decay.make_params ~loss:0.1 ~delta:0.01 ~lower_threshold:18 ~view_size:40)
  in
  Alcotest.(check bool) "higher loss -> higher survival bound" true (slow > fast)

let test_joiner_bounds_corollary_6_14 () =
  (* s = 2 dL and small loss: about Din/4 instances within about 2s rounds. *)
  let p = Decay.make_params ~loss:0.01 ~delta:0.01 ~lower_threshold:20 ~view_size:40 in
  let rounds, instances = Decay.corollary_6_14 p ~expected_indegree:28. in
  Alcotest.(check bool) (Printf.sprintf "window %d ~ 2s" rounds) true
    (rounds >= 80 && rounds <= 84);
  close ~eps:1e-9 "instances = Din/4" 7. instances

let test_veteran_vs_joiner_rates () =
  let p = decay_params in
  let veteran = Decay.veteran_creation_rate p ~expected_indegree:28. in
  let joiner = Decay.joiner_creation_rate p ~expected_indegree:28. in
  close ~eps:1e-9 "(dL/s)^2 scaling" (veteran *. (18. /. 40.) ** 2.) joiner

(* --- Dependence (section 7.4) --- *)

let test_alpha_bound_examples () =
  close "no loss" 1. (Dependence.alpha_lower_bound ~loss:0. ~delta:0.);
  close "paper example" 0.96 (Dependence.alpha_lower_bound ~loss:0.01 ~delta:0.01);
  close "floor at 0" 0. (Dependence.alpha_lower_bound ~loss:0.4 ~delta:0.2)

let test_dependence_chain_stationary () =
  (* The exact stationary dependent mass of the bounding chain matches the
     closed form and respects the 2(loss+delta) bound of Lemma 7.9. *)
  List.iter
    (fun (loss, delta) ->
      let x = loss +. delta in
      let chain = Dependence.chain ~loss ~delta in
      let r = Sf_markov.Chain.stationary chain in
      let expected = Dependence.stationary_dependent_fraction ~loss ~delta in
      close ~eps:1e-6
        (Printf.sprintf "stationary at x=%.3f" x)
        expected r.Sf_markov.Chain.distribution.(1);
      Alcotest.(check bool) "within Lemma 7.9 bound" true (expected <= 2. *. x +. 1e-12))
    [ (0.01, 0.01); (0.05, 0.01); (0.1, 0.02) ]

let test_return_probability_bound () =
  close "alpha = 2/3 gives 1/2" 0.5 (Dependence.return_probability_bound ~alpha:(2. /. 3.));
  close "alpha = 1 gives 0" 0. (Dependence.return_probability_bound ~alpha:1.)

(* --- Temporal (section 7.5) --- *)

let temporal_params = Temporal.make_params ~n:1000 ~view_size:40 ~expected_outdegree:27. ~alpha:0.96

let test_conductance_bound_formula () =
  close ~eps:1e-12 "Lemma 7.14"
    (27. *. 26. *. 0.96 /. (2. *. 40. *. 39.))
    (Temporal.expected_conductance_bound temporal_params)

let test_tau_epsilon_scaling () =
  (* tau grows with n (superlinearly: n s log n transformations). *)
  let tau n =
    Temporal.tau_epsilon
      (Temporal.make_params ~n ~view_size:40 ~expected_outdegree:27. ~alpha:0.96)
      ~epsilon:0.01
  in
  Alcotest.(check bool) "tau monotone in n" true (tau 1000 < tau 10_000);
  (* Per-node actions scale like s log n: ratio between n and n^2 is ~2. *)
  let per_node n =
    Temporal.actions_per_node
      (Temporal.make_params ~n ~view_size:40 ~expected_outdegree:27. ~alpha:0.96)
      ~epsilon:0.01
  in
  let ratio = per_node 1_000_000 /. per_node 1_000 in
  Alcotest.(check bool) (Printf.sprintf "log-n scaling ratio %.2f" ratio) true
    (ratio > 1.8 && ratio < 2.2)

let test_tau_epsilon_decreasing_in_alpha () =
  let tau alpha =
    Temporal.tau_epsilon
      (Temporal.make_params ~n:1000 ~view_size:40 ~expected_outdegree:27. ~alpha)
      ~epsilon:0.01
  in
  Alcotest.(check bool) "more independence, faster" true (tau 0.96 < tau 0.5)

(* --- Connectivity (section 7.4) --- *)

let test_connectivity_paper_example () =
  (* loss = delta = 1%, eps = 1e-30 -> dL = 26. *)
  match Connectivity.minimal_lower_threshold ~alpha:0.96 ~epsilon:1e-30 () with
  | Some d -> Alcotest.(check int) "dL = 26" 26 d
  | None -> Alcotest.fail "expected a threshold"

let test_connectivity_via_loss () =
  match Connectivity.minimal_lower_threshold_for_loss ~loss:0.01 ~delta:0.01 ~epsilon:1e-30 () with
  | Some d -> Alcotest.(check int) "dL = 26 via loss/delta" 26 d
  | None -> Alcotest.fail "expected a threshold"

let test_connectivity_monotonicity () =
  let get alpha epsilon =
    match Connectivity.minimal_lower_threshold ~alpha ~epsilon () with
    | Some d -> d
    | None -> Alcotest.fail "expected a threshold below the search cap"
  in
  Alcotest.(check bool) "stricter eps, larger dL" true (get 0.96 1e-40 >= get 0.96 1e-20);
  Alcotest.(check bool) "lower alpha, larger dL" true (get 0.8 1e-30 >= get 0.96 1e-30)

let test_connectivity_failure_probability_consistency () =
  let d = 26 and alpha = 0.96 in
  let p = Connectivity.failure_probability ~lower_threshold:d ~alpha in
  Alcotest.(check bool) "at 26 below 1e-30" true (p <= 1e-30);
  let p24 = Connectivity.failure_probability ~lower_threshold:24 ~alpha in
  Alcotest.(check bool) "at 24 above 1e-30" true (p24 > 1e-30)

(* --- Property: thresholds always produce a valid configuration --- *)

let prop_thresholds_valid_config =
  QCheck.Test.make ~name:"threshold selection yields valid configs" ~count:30
    QCheck.(pair (int_range 5 40) (int_range 1 20))
    (fun (half_d_hat, delta_milli) ->
      let d_hat = 2 * half_d_hat in
      let delta = float_of_int delta_milli /. 200. in
      let t = Thresholds.select ~d_hat ~delta in
      let ok_range =
        t.Thresholds.lower_threshold >= 0
        && t.Thresholds.lower_threshold <= d_hat
        && t.Thresholds.view_size >= d_hat
        && t.Thresholds.view_size <= t.Thresholds.dm
      in
      let ok_parity =
        t.Thresholds.lower_threshold mod 2 = 0 && t.Thresholds.view_size mod 2 = 0
      in
      ok_range && ok_parity)

let suite =
  [
    Alcotest.test_case "eq 6.1 is a distribution" `Quick test_analytic_is_distribution;
    Alcotest.test_case "Lemma 6.3 mean" `Quick test_analytic_mean_lemma_6_3;
    Alcotest.test_case "eq 6.1 by hand (dm=2)" `Quick test_analytic_small_case_by_hand;
    Alcotest.test_case "in/out consistency" `Quick test_analytic_consistency_out_in;
    Alcotest.test_case "odd dm rejected" `Quick test_analytic_rejects_odd_dm;
    Alcotest.test_case "thresholds: paper example (18, 40)" `Quick test_thresholds_paper_example;
    Alcotest.test_case "thresholds: literal reading" `Quick test_thresholds_literal_reading;
    Alcotest.test_case "thresholds: delta monotonicity" `Quick test_thresholds_monotone_in_delta;
    Alcotest.test_case "thresholds: to_config" `Quick test_thresholds_to_config;
    Alcotest.test_case "degree MC converges" `Quick test_degree_mc_converges;
    Alcotest.test_case "degree MC: Lemma 6.6" `Slow test_degree_mc_lemma_6_6;
    Alcotest.test_case "degree MC: Lemma 6.4" `Slow test_degree_mc_lemma_6_4_monotonicity;
    Alcotest.test_case "degree MC: support bounds" `Quick test_degree_mc_outdegree_bounds;
    Alcotest.test_case "degree MC: Observation 6.5" `Slow test_degree_mc_observation_6_5;
    Alcotest.test_case "degree MC vs analytic (mini Fig 6.1)" `Quick test_degree_mc_no_loss_matches_analytic;
    Alcotest.test_case "degree MC validation" `Quick test_degree_mc_param_validation;
    Alcotest.test_case "decay curve" `Quick test_decay_survival_curve;
    Alcotest.test_case "decay: 50% within 70 rounds" `Quick test_decay_paper_50_percent_claim;
    Alcotest.test_case "decay: loss slows erosion" `Quick test_decay_loss_slows_decay;
    Alcotest.test_case "Corollary 6.14" `Quick test_joiner_bounds_corollary_6_14;
    Alcotest.test_case "joiner rate scaling" `Quick test_veteran_vs_joiner_rates;
    Alcotest.test_case "alpha bound examples" `Quick test_alpha_bound_examples;
    Alcotest.test_case "dependence MC stationary" `Quick test_dependence_chain_stationary;
    Alcotest.test_case "Lemma 7.8 return bound" `Quick test_return_probability_bound;
    Alcotest.test_case "Lemma 7.14 formula" `Quick test_conductance_bound_formula;
    Alcotest.test_case "tau_eps scaling" `Quick test_tau_epsilon_scaling;
    Alcotest.test_case "tau_eps vs alpha" `Quick test_tau_epsilon_decreasing_in_alpha;
    Alcotest.test_case "connectivity: paper example (26)" `Quick test_connectivity_paper_example;
    Alcotest.test_case "connectivity via loss/delta" `Quick test_connectivity_via_loss;
    Alcotest.test_case "connectivity monotonicity" `Quick test_connectivity_monotonicity;
    Alcotest.test_case "connectivity tail consistency" `Quick test_connectivity_failure_probability_consistency;
    QCheck_alcotest.to_alcotest prop_thresholds_valid_config;
  ]
