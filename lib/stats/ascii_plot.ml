(* ASCII rendering of distributions and curves for terminal output.  The
   reproduction harness is text-only, so the paper's figures are rendered
   as horizontal bar charts (for pmfs) and sampled line charts (for decay
   curves and overlap series). *)

let default_width = 56

(* Horizontal bar chart of a pmf: one row per support point carrying more
   than [threshold] mass. *)
let pmf ?(width = default_width) ?(threshold = 1e-3) ppf p =
  let peak = Pmf.fold (fun acc _ pr -> Float.max acc pr) 0. p in
  if peak <= 0. then Fmt.pf ppf "(empty distribution)@."
  else
    Pmf.iter
      (fun k pr ->
        if pr >= threshold then begin
          let bar = int_of_float (Float.round (pr /. peak *. float_of_int width)) in
          Fmt.pf ppf "%5d | %s %.4f@." k (String.make bar '#') pr
        end)
      p

(* Overlay of up to three pmfs using distinct glyphs; rows where all series
   are below [threshold] are skipped. *)
let pmf_overlay ?(width = default_width) ?(threshold = 1e-3) ppf series =
  let glyphs = [| '#'; '+'; '.' |] in
  if List.length series > Array.length glyphs then
    invalid_arg "Ascii_plot.pmf_overlay: at most three series";
  let lo =
    List.fold_left (fun acc (_, p) -> min acc (Pmf.offset p)) max_int series
  in
  let hi =
    List.fold_left (fun acc (_, p) -> max acc (Pmf.max_support p)) min_int series
  in
  let peak =
    List.fold_left
      (fun acc (_, p) -> Pmf.fold (fun a _ pr -> Float.max a pr) acc p)
      0. series
  in
  if peak <= 0. then Fmt.pf ppf "(empty distributions)@."
  else begin
    List.iteri
      (fun i (name, _) -> Fmt.pf ppf "  %c = %s@." glyphs.(i) name)
      series;
    for k = lo to hi do
      let marks =
        List.mapi
          (fun i (_, p) ->
            let pr = Pmf.prob p k in
            if pr < threshold then None
            else
              Some
                ( int_of_float (Float.round (pr /. peak *. float_of_int width)),
                  glyphs.(i) ))
          series
      in
      let marks = List.filter_map Fun.id marks in
      if marks <> [] then begin
        let line = Bytes.make (width + 1) ' ' in
        (* Draw shorter bars last so every series stays visible. *)
        let sorted = List.sort (fun (a, _) (b, _) -> compare b a) marks in
        List.iter
          (fun (len, glyph) ->
            for x = 0 to min len width - 1 do
              Bytes.set line x glyph
            done)
          sorted;
        Fmt.pf ppf "%5d |%s@." k (Bytes.to_string line)
      end
    done
  end

(* Line chart of a float series indexed 0..n-1 (e.g. a survival curve):
   renders [rows] text rows, sampling the series across [width] columns. *)
let series ?(width = 64) ?(rows = 12) ppf (label, values) =
  let n = Array.length values in
  if n = 0 then Fmt.pf ppf "(empty series)@."
  else begin
    let lo = Array.fold_left Float.min infinity values in
    let hi = Array.fold_left Float.max neg_infinity values in
    let span = if hi -. lo < 1e-12 then 1. else hi -. lo in
    let grid = Array.make_matrix rows width ' ' in
    for col = 0 to width - 1 do
      let idx = col * (n - 1) / max 1 (width - 1) in
      let v = values.(idx) in
      let row =
        (rows - 1) - int_of_float (Float.round ((v -. lo) /. span *. float_of_int (rows - 1)))
      in
      grid.(max 0 (min (rows - 1) row)).(col) <- '*'
    done;
    Fmt.pf ppf "%s  (max %.3f, min %.3f)@." label hi lo;
    Array.iteri
      (fun i row ->
        let axis =
          if i = 0 then Fmt.str "%8.3f" hi
          else if i = rows - 1 then Fmt.str "%8.3f" lo
          else String.make 8 ' '
        in
        Fmt.pf ppf "%s |%s@." axis (String.init width (fun c -> row.(c))))
      grid;
    Fmt.pf ppf "%s +%s@." (String.make 8 ' ') (String.make width '-');
    Fmt.pf ppf "%s  0%s%d@." (String.make 8 ' ')
      (String.make (max 1 (width - 2 - String.length (string_of_int (n - 1)))) ' ')
      (n - 1)
  end

(* Multiple series on one chart, distinct glyphs, shared y-scale. *)
let multi_series ?(width = 64) ?(rows = 12) ppf labelled =
  let glyphs = [| '*'; '+'; 'o'; 'x' |] in
  if List.length labelled > Array.length glyphs then
    invalid_arg "Ascii_plot.multi_series: at most four series";
  let all = List.concat_map (fun (_, v) -> Array.to_list v) labelled in
  match all with
  | [] -> Fmt.pf ppf "(no data)@."
  | first :: rest ->
    let lo = List.fold_left Float.min first rest in
    let hi = List.fold_left Float.max first rest in
    let span = if hi -. lo < 1e-12 then 1. else hi -. lo in
    let grid = Array.make_matrix rows width ' ' in
    List.iteri
      (fun si (_, values) ->
        let n = Array.length values in
        if n > 0 then
          for col = 0 to width - 1 do
            let idx = col * (n - 1) / max 1 (width - 1) in
            let v = values.(idx) in
            let row =
              (rows - 1)
              - int_of_float
                  (Float.round ((v -. lo) /. span *. float_of_int (rows - 1)))
            in
            grid.(max 0 (min (rows - 1) row)).(col) <- glyphs.(si)
          done)
      labelled;
    List.iteri (fun si (name, _) -> Fmt.pf ppf "  %c = %s@." glyphs.(si) name) labelled;
    Array.iteri
      (fun i row ->
        let axis =
          if i = 0 then Fmt.str "%8.3f" hi
          else if i = rows - 1 then Fmt.str "%8.3f" lo
          else String.make 8 ' '
        in
        Fmt.pf ppf "%s |%s@." axis (String.init width (fun c -> row.(c))))
      grid;
    Fmt.pf ppf "%s +%s@." (String.make 8 ' ') (String.make width '-')
