(** Rumor-spreading disciplines.

    - {!Push} — informed nodes push the rumor to [fanout] view samples per
      round: the classic epidemic baseline (susceptible–infected).
    - {!Push_pull} — additionally, uninformed nodes send pull requests
      each round and informed receivers answer with the rumor.  Doerr,
      Doerr & Kohan Marzagao (arXiv:1209.6158) show this completes in
      O(log n) rounds even when a constant fraction of messages is lost —
      the regime the loss benchmarks target.
    - {!Direct} — rumor messages carry learned node addresses; receivers
      absorb them and informed nodes may contact learned ids {e directly},
      outside their current S&F view, while never re-contacting recently
      contacted peers (Haeupler & Malkhi, arXiv:1402.2701).  Under loss
      it spends noticeably fewer messages than blind push for the same
      coverage. *)

type t = Push | Push_pull | Direct

val all : t list

val to_string : t -> string
(** ["push"], ["push-pull"], ["direct"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string} (also accepts ["push_pull"], ["pushpull"],
    ["pp"]); case- and whitespace-insensitive. *)

val pp : t Fmt.t

val lead_capacity : int
(** {!Direct} per-node ring of learned, not-yet-contacted addresses. *)

val recent_capacity : int
(** {!Direct} per-node ring of recently contacted / known-informed ids
    (contact throttle). *)

val envelope : c:float -> n:int -> float
(** [c * log2 (max 2 n)] — the completion-time envelope the benchmarks
    check push-pull against. *)
