(* Structural quality of a membership graph — the expander properties that
   motivate uniform independent views in the paper's section 2: "such
   choices result in an expander graph, with good connectivity, robustness,
   and low diameter, ensuring fast and reliable communication".

   Measures (all on the undirected version of the graph, since gossip can
   travel either way along a membership edge):
   - eccentricity / diameter / average shortest path, estimated by BFS from
     a sample of sources;
   - local clustering coefficient (expanders have nearly none; structured
     topologies like rings have a lot);
   - robustness: the giant-component fraction as a growing share of random
     nodes is removed. *)

module Int_table = Hashtbl.Make (struct
  type t = int
  let equal = Int.equal
  let hash = Sf_prng.Splitmix64.mix_int
end)

(* Undirected adjacency (distinct neighbors) of a digraph. *)
let undirected_adjacency g =
  let adjacency = Int_table.create (2 * Digraph.vertex_count g) in
  let add u v =
    if u <> v then begin
      let set = Option.value ~default:[] (Int_table.find_opt adjacency u) in
      if not (List.mem v set) then Int_table.replace adjacency u (v :: set)
    end
  in
  List.iter (fun u -> Int_table.replace adjacency u []) (Digraph.vertices g);
  Digraph.iter_edges
    (fun u v _ ->
      add u v;
      add v u)
    g;
  adjacency

(* BFS distances from [source]; unreachable vertices are absent. *)
let bfs_distances adjacency source =
  let distance = Int_table.create 64 in
  Int_table.replace distance source 0;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Int_table.find distance u in
    List.iter
      (fun v ->
        if not (Int_table.mem distance v) then begin
          Int_table.replace distance v (du + 1);
          Queue.push v queue
        end)
      (Option.value ~default:[] (Int_table.find_opt adjacency u))
  done;
  distance

type path_statistics = {
  sources_sampled : int;
  estimated_diameter : int;      (* max eccentricity over sampled sources *)
  average_path_length : float;
  unreachable_pairs : int;       (* pairs with no undirected path *)
}

let path_statistics ?(sources = 32) rng g =
  let vertices = Array.of_list (Digraph.vertices g) in
  let n = Array.length vertices in
  if n = 0 then invalid_arg "Quality.path_statistics: empty graph";
  let adjacency = undirected_adjacency g in
  let sample_count = min sources n in
  let picked = Sf_prng.Rng.sample_indices rng ~n ~k:sample_count in
  let diameter = ref 0 in
  let total = ref 0 and pairs = ref 0 and unreachable = ref 0 in
  Array.iter
    (fun idx ->
      let source = vertices.(idx) in
      let distance = bfs_distances adjacency source in
      Array.iter
        (fun v ->
          if v <> source then
            match Int_table.find_opt distance v with
            | Some d ->
              diameter := max !diameter d;
              total := !total + d;
              incr pairs
            | None -> incr unreachable)
        vertices)
    picked;
  {
    sources_sampled = sample_count;
    estimated_diameter = !diameter;
    average_path_length =
      (if !pairs = 0 then Float.nan else float_of_int !total /. float_of_int !pairs);
    unreachable_pairs = !unreachable;
  }

(* Average local clustering coefficient: for each vertex, the fraction of
   its (undirected) neighbor pairs that are themselves connected. *)
let clustering_coefficient g =
  let adjacency = undirected_adjacency g in
  let neighbor_sets = Int_table.create (Int_table.length adjacency) in
  Int_table.iter
    (fun u neighbors ->
      let set = Int_table.create (List.length neighbors) in
      List.iter (fun v -> Int_table.replace set v ()) neighbors;
      Int_table.replace neighbor_sets u set)
    adjacency;
  let total = ref 0. and counted = ref 0 in
  Int_table.iter
    (fun _ neighbors ->
      let k = List.length neighbors in
      if k >= 2 then begin
        let links = ref 0 in
        let arr = Array.of_list neighbors in
        for i = 0 to k - 1 do
          let set_i = Int_table.find neighbor_sets arr.(i) in
          for j = i + 1 to k - 1 do
            if Int_table.mem set_i arr.(j) then incr links
          done
        done;
        total := !total +. (2. *. float_of_int !links /. float_of_int (k * (k - 1)));
        incr counted
      end)
    adjacency;
  if !counted = 0 then 0. else !total /. float_of_int !counted

(* Fraction of vertices in the largest weakly connected component after
   removing each given fraction of vertices uniformly at random.  Returns
   (fraction_removed, giant_fraction_of_survivors) pairs. *)
let robustness_profile rng g ~removal_fractions =
  let vertices = Array.of_list (Digraph.vertices g) in
  let n = Array.length vertices in
  if n = 0 then invalid_arg "Quality.robustness_profile: empty graph";
  let order = Array.copy vertices in
  Sf_prng.Rng.shuffle rng order;
  List.map
    (fun fraction ->
      if fraction < 0. || fraction >= 1. then
        invalid_arg "Quality.robustness_profile: fraction must lie in [0,1)";
      let keep_from = int_of_float (Float.round (fraction *. float_of_int n)) in
      let removed = Int_table.create keep_from in
      Array.iteri (fun i v -> if i < keep_from then Int_table.replace removed v ()) order;
      let survivor = Digraph.create () in
      Array.iter
        (fun v -> if not (Int_table.mem removed v) then Digraph.ensure_vertex survivor v)
        vertices;
      Digraph.iter_edges
        (fun u v m ->
          if (not (Int_table.mem removed u)) && not (Int_table.mem removed v) then
            for _ = 1 to m do
              Digraph.add_edge survivor u v
            done)
        g;
      let survivors = Digraph.vertex_count survivor in
      let giant =
        List.fold_left
          (fun acc comp -> max acc (List.length comp))
          0
          (Digraph.weakly_connected_components survivor)
      in
      ( fraction,
        if survivors = 0 then 0. else float_of_int giant /. float_of_int survivors ))
    removal_fractions
