(** Strongly connected components (iterative Tarjan). *)

type result = {
  component_of : int array;  (** component index of each vertex *)
  count : int;               (** number of components *)
}

val tarjan : n:int -> successors:(int -> int list) -> result
(** Components of the directed graph on vertices [0..n-1]. *)

val is_strongly_connected : n:int -> successors:(int -> int list) -> bool
