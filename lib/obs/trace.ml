(* Event tracer: a fixed-capacity ring buffer of typed trace records.

   Recording is O(1) and allocation-light (one record per event, no
   resizing, oldest records overwritten); dumping renders JSONL through
   the deterministic Json emitter.  Timestamps are supplied by the caller
   from its *injected* clock — sim ticks in the sequential runner, virtual
   time in timed mode, the injected [?now] in the UDP cluster — never from
   an ambient clock, so two runs with the same seed dump byte-identical
   traces. *)

type event =
  | Send of { src : int; dst : int; duplicated : bool }
  | Deliver of { dst : int; accepted : bool }
  | Drop of { src : int; dst : int; cause : string }
  | Duplicate of { node : int }
  | Delete of { node : int }
  | Timer of { node : int }
  | Fault of { transition : string }
  | Mark of { label : string }

type record = { at : float; seq : int; event : event }

(* The ring is two parallel arrays — a flat float array for the stamps and
   a boxed array for the events — instead of a [record option array], so
   recording allocates nothing: the stamp store is a raw unboxed write and
   the event store replaces a pointer.  Sequence numbers are implicit
   (slot = seq mod capacity); the boxed records surface only on read. *)
type t = {
  ats : float array;
  events : event array;
  mutable next_seq : int;  (* total records ever offered; also next seq *)
}

let unused_slot = Mark { label = "" }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    ats = Array.make capacity 0.;
    events = Array.make capacity unused_slot;
    next_seq = 0;
  }

let capacity t = Array.length t.events

let record t ~now event =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let slot = seq mod Array.length t.events in
  t.ats.(slot) <- now;
  t.events.(slot) <- event

let recorded t = t.next_seq

let length t = min t.next_seq (Array.length t.events)

(* Records overwritten by wraparound. *)
let dropped t = max 0 (t.next_seq - Array.length t.events)

let clear t =
  Array.fill t.events 0 (Array.length t.events) unused_slot;
  t.next_seq <- 0

(* Surviving records, oldest first. *)
let records t =
  let cap = Array.length t.events in
  let first = max 0 (t.next_seq - cap) in
  let out = ref [] in
  for seq = t.next_seq - 1 downto first do
    let slot = seq mod cap in
    out := { at = t.ats.(slot); seq; event = t.events.(slot) } :: !out
  done;
  !out

let event_json = function
  | Send { src; dst; duplicated } ->
    [
      ("ev", Json.String "send");
      ("src", Json.Int src);
      ("dst", Json.Int dst);
      ("dup", Json.Bool duplicated);
    ]
  | Deliver { dst; accepted } ->
    [ ("ev", Json.String "deliver"); ("dst", Json.Int dst); ("ok", Json.Bool accepted) ]
  | Drop { src; dst; cause } ->
    [
      ("ev", Json.String "drop");
      ("src", Json.Int src);
      ("dst", Json.Int dst);
      ("cause", Json.String cause);
    ]
  | Duplicate { node } -> [ ("ev", Json.String "duplicate"); ("node", Json.Int node) ]
  | Delete { node } -> [ ("ev", Json.String "delete"); ("node", Json.Int node) ]
  | Timer { node } -> [ ("ev", Json.String "timer"); ("node", Json.Int node) ]
  | Fault { transition } ->
    [ ("ev", Json.String "fault"); ("transition", Json.String transition) ]
  | Mark { label } -> [ ("ev", Json.String "mark"); ("label", Json.String label) ]

let record_json r =
  Json.Obj ((("t", Json.Float r.at) :: ("seq", Json.Int r.seq) :: event_json r.event))

(* One JSON object per line, oldest record first. *)
let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Json.to_buffer buf (record_json r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf
