(** The sequential spreading engine: rumor rounds interleaved with an
    orchestrated {!Sf_core.Runner}'s membership rounds.

    Each spreading round advances the membership one round (the views the
    rumor samples from are the live, evolving ones), then runs one
    synchronous step of the chosen {!Strategy}.  Every spread message
    passes the same verdict pipeline as membership traffic — destination
    crash window, partition window, loss process, in the injector's order
    — but draws from the {e caller's} RNG and a private loss-chain
    instance, so spreading never perturbs the membership stream.  Crashed
    nodes neither initiate spread messages nor receive them, and do not
    count as reachable in the coverage denominator. *)

val run :
  ?coverage_target:float ->
  ?max_rounds:int ->
  ?loss_rate:float ->
  ?loss_model:Sf_faults.Loss.model ->
  ?metrics:Sf_obs.Metrics.t ->
  strategy:Strategy.t ->
  fanout:int ->
  source:int ->
  Sf_core.Runner.t ->
  Sf_prng.Rng.t ->
  Report.t
(** Spread a rumor from [source] until live coverage reaches
    [coverage_target] (default 0.99) or [max_rounds] (default 200)
    spreading rounds have run.  Advances the runner.

    [loss_rate] defaults to the runner's configured chance-loss rate and
    [loss_model] to the runner scenario's loss process ({!Sf_faults.Loss.Iid}
    without a scenario); the engine steps its own private chain instance.
    [metrics] receives the [spread_*] counters and the [spread_coverage]
    gauge (a private registry when omitted).

    Raises [Invalid_argument] for [fanout < 1] or a [coverage_target]
    outside (0, 1]. *)
