(** Directed multigraph representing a membership graph (paper, section 4):
    an edge (u,v) with multiplicity m means v occupies m entries of u's local
    view. *)

type t

val create : ?initial_capacity:int -> unit -> t

val ensure_vertex : t -> int -> unit
(** Register a vertex (idempotent); isolated vertices count in
    connectivity. *)

val mem_vertex : t -> int -> bool
val vertex_count : t -> int
val edge_count : t -> int

val vertices : t -> int list
(** All registered vertices, unordered. *)

val add_edge : t -> int -> int -> unit
(** Add one instance of edge (u,v), registering endpoints. *)

val remove_edge : t -> int -> int -> unit
(** Remove one instance; raises if absent. *)

val multiplicity : t -> int -> int -> int

val out_degree : t -> int -> int
(** d(u): number of non-empty view entries, counting multiplicity. *)

val in_degree : t -> int -> int
(** din(u), counting multiplicity. *)

val sum_degree : t -> int -> int
(** ds(u) = d(u) + 2 din(u) (Definition 6.1). *)

val out_neighbors : t -> int -> int list
(** Distinct out-neighbors. *)

val in_neighbors : t -> int -> int list
(** Distinct in-neighbors. *)

val iter_edges : (int -> int -> int -> unit) -> t -> unit
(** [iter_edges f g] calls [f u v multiplicity] per distinct edge. *)

val self_loop_count : t -> int
(** Total multiplicity of self-edges — always dependent entries per the
    paper's edge labelling. *)

val parallel_edge_count : t -> int
(** Count of redundant parallel edge instances (multiplicity minus one per
    distinct edge). *)

val weakly_connected_components : t -> int list list
val is_weakly_connected : t -> bool

val out_degree_array : t -> int array
val in_degree_array : t -> int array

type degree_statistics = {
  out_degrees : Sf_stats.Summary.t;
  in_degrees : Sf_stats.Summary.t;
  sum_degrees : Sf_stats.Summary.t;
  self_loops : int;
  parallel_edges : int;
}

val degree_statistics : t -> degree_statistics

val copy : t -> t

val equal : t -> t -> bool
(** Same vertices and edge multiplicities. *)

val pp : Format.formatter -> t -> unit
