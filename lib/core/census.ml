(* Dependence census over a collection of views — the mechanical realization
   of the paper's edge labelling (section 2): an entry is dependent when it
   is a self-edge, an instance anchored by a duplication (the sender
   retained a correlated copy), or a redundant parallel instance (second and
   later copies of an id within one view).  The union of the three labels is
   a conservative over-estimate of the paper's "all but one of mutually
   dependent edges" rule. *)

type t = {
  total_entries : int;
  self_edges : int;
  anchored : int;
  parallel_surplus : int;
  dependent_entries : int;
  alpha : float;  (* measured fraction of independent entries *)
}

let of_views views =
  let total = ref 0 in
  let self_edges = ref 0 in
  let anchored = ref 0 in
  let parallel = ref 0 in
  let dependent = ref 0 in
  let seen = Hashtbl.create 64 in
  Seq.iter
    (fun (owner, view) ->
      Hashtbl.reset seen;
      View.iter
        (fun _ e ->
          incr total;
          let is_self = e.View.id = owner in
          let is_anchored = e.View.anchor <> None in
          let is_parallel = Hashtbl.mem seen e.View.id in
          Hashtbl.replace seen e.View.id ();
          if is_self then incr self_edges;
          if is_anchored then incr anchored;
          if is_parallel then incr parallel;
          if is_self || is_anchored || is_parallel then incr dependent)
        view)
    views;
  let alpha =
    if !total = 0 then 1.
    else 1. -. (float_of_int !dependent /. float_of_int !total)
  in
  {
    total_entries = !total;
    self_edges = !self_edges;
    anchored = !anchored;
    parallel_surplus = !parallel;
    dependent_entries = !dependent;
    alpha;
  }

(* Same labelling over a packed world: one pass per node over the flat
   slots, no entry materialization.  [seen] is reused across nodes, so the
   census allocates O(view size) regardless of n. *)
let of_flat store =
  let n = View.Flat.node_count store in
  let s = View.Flat.view_size store in
  let total = ref 0 in
  let self_edges = ref 0 in
  let anchored = ref 0 in
  let parallel = ref 0 in
  let dependent = ref 0 in
  let seen = Hashtbl.create 64 in
  for u = 0 to n - 1 do
    Hashtbl.reset seen;
    for slot = 0 to s - 1 do
      let id = View.Flat.id_at store u slot in
      if id >= 0 then begin
        incr total;
        let is_self = id = u in
        let is_anchored = View.Flat.anchor_at store u slot >= 0 in
        let is_parallel = Hashtbl.mem seen id in
        Hashtbl.replace seen id ();
        if is_self then incr self_edges;
        if is_anchored then incr anchored;
        if is_parallel then incr parallel;
        if is_self || is_anchored || is_parallel then incr dependent
      end
    done
  done;
  let alpha =
    if !total = 0 then 1.
    else 1. -. (float_of_int !dependent /. float_of_int !total)
  in
  {
    total_entries = !total;
    self_edges = !self_edges;
    anchored = !anchored;
    parallel_surplus = !parallel;
    dependent_entries = !dependent;
    alpha;
  }

let pp ppf t =
  Fmt.pf ppf "entries=%d self=%d anchored=%d parallel=%d dependent=%d alpha=%.4f"
    t.total_entries t.self_edges t.anchored t.parallel_surplus t.dependent_entries
    t.alpha
