(** Binary wire codec for S&F messages carried as UDP datagrams. *)

val message_size : int
(** Encoded size in bytes (66). *)

type error =
  | Too_short of int
  | Bad_magic of char
  | Unsupported_version of char

val pp_error : Format.formatter -> error -> unit

val encode : Sf_core.Protocol.message -> bytes

val decode : bytes -> length:int -> (Sf_core.Protocol.message, error) result
(** Decode the first [length] bytes of a received datagram. *)
