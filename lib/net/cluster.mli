(** A real S&F deployment over UDP on the loopback interface: one datagram
    socket per node, jittered periodic initiations, a select-based driver —
    the paper's "practical implementation" on an actual network stack.

    Intended for moderate cluster sizes (select(2) limits the driver to a
    few hundred sockets per process). *)

type t

val create :
  ?period:float ->
  ?now:(unit -> float) ->
  ?scenario:Sf_faults.Scenario.t ->
  ?obs:Sf_obs.Obs.t ->
  ?resilience:Sf_resil.Policy.t ->
  base_port:int ->
  n:int ->
  config:Sf_core.Protocol.config ->
  loss_rate:float ->
  seed:int ->
  topology:Sf_core.Topology.t ->
  unit ->
  t
(** Bind [n] UDP sockets on 127.0.0.1 ports [base_port .. base_port+n-1]
    and seed the views from [topology]. [period] is the mean time between a
    node's initiations in seconds (default 10 ms). [loss_rate] is injected
    at the sender (loopback UDP rarely drops on its own). [now] is the
    clock driving timers and deadlines — {!Sf_obs.Clock.wall} by default;
    inject a virtual clock to make runs time-deterministic in tests.

    [obs] is the observability bundle: all [cluster_*] counters and the
    [codec_*_seconds] span histograms land in its registry (a private one
    when omitted), and — when a tracer is attached — datagram events are
    recorded, stamped in rounds of the injected clock since creation.

    [scenario] routes every datagram through the same fault plan the
    simulator uses ({!Sf_faults.Scenario}): bursty loss, partitions,
    crashes (frozen timers, arriving datagrams discarded), delay windows
    (datagrams held for [factor] firing periods — loopback latency is
    negligible) and corruption (real byte flips on the wire, rejected by
    the receiving {!Codec}).  One round of the scenario clock = one firing
    [period] elapsed.  Omitting the scenario — or passing
    {!Sf_faults.Scenario.default} — keeps the historical single Bernoulli
    draw per datagram.

    [resilience] installs the self-healing layer (lib/resilience), with
    two visible effects.  (1) Adaptive retuning: each node runs its own
    loss estimator over its own protocol counters and its own controller,
    so (dL, s) become per-node quantities walking toward the section 6.3
    solution for the estimated loss ([cluster_retunes]).  (2) Real
    crash-restarts: entering a crash window saves a bounded view snapshot
    (up to dL ids) and closes the node's socket — in-flight datagrams
    bounce off a dead port — and leaving it rebinds a fresh socket on the
    same port and rejoins via the section 5 joining rule, from the
    snapshot or, failing that, a copy of a live neighbour's view
    ([cluster_rejoins]).  Without the option a crash window merely
    freezes the node, as before.

    If any socket operation fails mid-construction, every socket already
    opened is closed before the exception propagates. *)

val node_count : t -> int

val run : t -> duration:float -> unit
(** Drive the cluster for [duration] wall-clock seconds. *)

val shutdown : t -> unit
(** Close every socket. *)

val views : t -> (int * Sf_core.View.t) Seq.t
(** Per-node views, for external invariant checks. *)

val is_crashed : t -> int -> bool
(** [true] while the fault scenario holds the id inside an active crash
    window (always [false] without a scenario). *)

val outdegree_summary : t -> Sf_stats.Summary.t
val independence_census : t -> Sf_core.Census.t
val membership_graph : t -> Sf_graph.Digraph.t
val is_weakly_connected : t -> bool

val fault_statistics : t -> Sf_faults.Injector.stats option
(** Fault-injection counters, when a scenario is installed. *)

type statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;       (** send-side injected loss, any fault cause *)
  datagrams_received : int;
  datagrams_corrupted : int;     (** sent with flipped bytes (corrupt windows) *)
  datagrams_delayed : int;       (** held back by a delay window *)
  datagrams_crash_dropped : int; (** discarded on arrival at a crashed node *)
  datagrams_oversized : int;     (** longer than {!Codec.message_size} *)
  datagrams_truncated : int;     (** shorter than {!Codec.message_size} *)
  decode_errors : int;           (** right-sized but undecodable (magic/version) *)
  send_errors : int;
  rejoins : int;                 (** crash-restart recoveries (resilience mode) *)
  retunes : int;                 (** per-node threshold retunes (resilience mode) *)
}

val statistics : t -> statistics
(** Thin reads of the registry counters (plus the action count). *)

val obs : t -> Sf_obs.Obs.t
(** The cluster's observability bundle (the one passed to {!create}, or
    the private default). *)
