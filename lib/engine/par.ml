(* Fork-join execution of an indexed task set across OCaml 5 domains.

   The sharded runner (Sf_core.Runner.Sharded) structures each round as
   two phases of [shard_count] independent tasks separated by barriers;
   this shim is the barrier: [run] partitions the task indices into
   contiguous ranges, executes each range on its own domain, and returns
   only after every domain has joined.  With [domains = 1] everything runs
   inline on the calling domain — no spawn, identical semantics.

   Determinism contract: tasks must write only task-owned state (the
   callers partition arrays by task index), so the only synchronization
   needed is the happens-before edge of spawn/join that [run] itself
   provides.  Under that contract the observable result is a pure function
   of the task bodies, independent of the domain count. *)

let run ~domains ~tasks f =
  if domains < 1 then invalid_arg "Par.run: need at least one domain";
  if tasks < 0 then invalid_arg "Par.run: negative task count";
  if tasks > 0 then begin
    let d = min domains tasks in
    if d = 1 then
      for i = 0 to tasks - 1 do
        f i
      done
    else begin
      let chunk = (tasks + d - 1) / d in
      let run_range w =
        let lo = w * chunk and hi = min tasks ((w + 1) * chunk) in
        for i = lo to hi - 1 do
          f i
        done
      in
      let workers =
        Array.init (d - 1) (fun j -> Domain.spawn (fun () -> run_range (j + 1)))
      in
      (* Run the first range inline, then join every worker even if one of
         them (or the inline range) failed — a leaked domain would outlive
         the exception.  The first failure, in range order, is re-raised. *)
      let failure = ref None in
      let note w = if !failure = None then failure := Some w in
      (try run_range 0 with e -> note e);
      Array.iter
        (fun w -> match Domain.join w with () -> () | exception e -> note e)
        workers;
      match !failure with None -> () | Some e -> raise e
    end
  end
