(** Peer-sampling service facade over a running S&F system: applications
    draw random peer ids from evolving local views. *)

val sample :
  ?allow_self:bool -> Runner.t -> Sf_prng.Rng.t -> node_id:int -> int option
(** One uniformly random id from the node's current view ([None] for an
    unknown node or an effectively empty view). Self-ids are excluded unless
    [allow_self].

    Allocation-free: a two-pass indexed scan over the view slots.  A
    successful draw consumes exactly one [Rng.int] whose bound is the
    candidate count; a [None] result consumes no randomness. *)

val sample_many :
  ?allow_self:bool ->
  Runner.t ->
  Sf_prng.Rng.t ->
  node_id:int ->
  k:int ->
  int list
(** [k] samples with replacement from the current view, newest draw first.

    Contract: exactly [k] independent draw attempts are always made.  An
    attempt that fails (see {!sample}) contributes nothing to the result
    but does {e not} abort the remaining attempts, so the result is
    shorter than [k] only by the number of failed draws — never silently
    truncated by one failure.  Fewer than [k] ids therefore means some
    attempts found no eligible peer, not that sampling stopped early. *)

val sampling_census :
  Runner.t ->
  Sf_prng.Rng.t ->
  samples_per_node:int ->
  rounds_between:int ->
  (int, int) Hashtbl.t
(** Per-id counts of samples drawn across the whole system with protocol
    rounds between draws — an end-to-end uniformity workload. Advances the
    runner. *)
