(* The reusable UDP select-loop driver: every owned node has a datagram
   socket bound to 127.0.0.1 on port [base_port + id], messages travel as
   actual datagrams, and nodes initiate on jittered periodic timers — the
   "practical implementation" the paper sketches in section 5, running on
   a real network stack instead of the discrete-event simulator.

   One driver owns a contiguous *slice* [first, first + count) of a global
   id space of [n] nodes.  The historical single-process deployment
   ({!Cluster}) is the whole-space slice; a node-host process
   ({!Nodehost}) owns one slice while sibling processes own the others,
   all sharing the same port map — the address of node [i] is
   [base_port + i] no matter which process computes it, so datagrams cross
   process boundaries with no routing layer.

   The loop multiplexes all owned sockets (plus any registered control
   channels) with [Unix.select]: wait for readable fds or the next timer,
   drain datagrams (sockets are non-blocking), decode and run the receive
   step, then run the initiate steps that have come due.  Send-side loss
   injection keeps loss experiments controlled even though loopback UDP
   rarely drops on its own.

   Wire versions: at [version = 1] (default) the driver is byte-identical
   to the historical one-message-per-datagram deployment.  At [version =
   2] it speaks {!Codec} v2 — outbound messages queue per destination and
   flush as batched datagrams once the peer is known to speak v2,
   negotiated per-peer by hello datagrams: a v2 driver sends v1 frames to
   unknown peers (a real v1 process understands them) plus a capped number
   of hellos advertising its own port range; a v2 peer replies with its
   range and both sides upgrade, while a v1 peer stays silent and the
   sender permanently downgrades after the cap.

   An optional fault scenario (lib/faults) generalizes the send-side loss
   draw exactly as in the simulator; [set_partition_filter] adds the
   cross-process form of a partition window, where a controller tells each
   process which block it is in and the send path drops cross-block
   datagrams.  Fire-and-forget UDP matches S&F's assumptions exactly: no
   connection state, no retransmission, the sender never learns whether
   the message arrived. *)

(* Hellos sent to one destination before concluding it speaks v1 only.
   The probe is per-datagram-destination, so the cost of a wrong guess is
   eight 7-byte datagrams per silent peer over the run. *)
let hello_cap = 8

(* Per-node resilience state (lib/resilience): each node runs its own loss
   estimator over its own protocol counters — a deployed node has nobody
   else's — and its own threshold controller. *)
type node_resil = {
  estimator : Sf_resil.Estimator.t;
  controller : Sf_resil.Controller.t;
  mutable last_sent : int;  (* counter baselines for estimator deltas *)
  mutable last_duplications : int;
  mutable last_deletions : int;
}

type node_state = {
  node : Sf_core.Protocol.node;
  (* Mutable: a crash-restart closes the socket for the duration of the
     window and rebinds a fresh one on the same port at resume. *)
  mutable socket : Unix.file_descr;
  mutable next_fire : float;
  (* The node's current thresholds; starts at the cluster config and
     diverges under adaptive retuning. *)
  mutable config : Sf_core.Protocol.config;
  resil : node_resil option;
  (* Crash-restart bookkeeping (resilience mode only). *)
  mutable down : bool;       (* socket closed by an active crash window *)
  mutable snapshot : int list;  (* bounded view snapshot taken at crash *)
}

(* A datagram held back by an active delay window: release time, sending
   socket, wire bytes, destination. *)
type delayed_datagram = {
  release_at : float;
  via : Unix.file_descr;
  packet : bytes;
  target : Unix.sockaddr;
}

(* An outbound v2 batch under construction: messages for one destination
   accumulated within a loop iteration, flushed as one datagram.  The
   sender is remembered as a node index (not a socket) so a crash-rebind
   between enqueue and flush cannot leak a closed fd. *)
type pending_batch = {
  mutable items : (Sf_core.Protocol.message * bool) list;  (* rev; flag = corrupt *)
  mutable batched : int;
  src_index : int;
}

(* A callback run on a schedule by the event loop (heartbeats, probes). *)
type periodic = {
  every : float;
  mutable due_at : float;
  callback : unit -> unit;
}

type t = {
  base_port : int;
  n_global : int;  (* the full id space; owned slice is [first, first+count) *)
  first : int;
  version : int;   (* wire ceiling: 1 = historical, 2 = batching + hellos *)
  period : float;
  loss_rate : float;
  (* Global serials are minted as [k * stride + offset]: sibling processes
     use stride = process count and distinct offsets, so concurrently
     minted serials never collide across the cluster. *)
  serial_stride : int;
  serial_offset : int;
  (* Injected clock: tests drive virtual time; production uses
     [Sf_obs.Clock.wall] — the tree's single sanctioned wall-clock
     source. *)
  now : unit -> float;
  started : float;  (* clock reading at creation; trace stamps are rounds
                       since then, matching the injector's round clock *)
  rng : Sf_prng.Rng.t;
  injector : Sf_faults.Injector.t option;
  resilience : Sf_resil.Policy.t option;
  (* Cross-process repair scheduling (resilience mode with [recover]):
     probes find isolated owned nodes and the supervisor spaces the
     rebootstrap attempts under capped backoff.  Its jitter draws from a
     dedicated stream so the protocol RNG is untouched. *)
  supervisor : Sf_resil.Supervisor.t option;
  mutable repair_pending : bool;
  mutable next_probe : float;
  nodes : node_state array;  (* index i holds global id [first + i] *)
  (* Bumped whenever a socket is closed or rebound, so the run loop knows
     to rebuild its select set. *)
  mutable socket_generation : int;
  read_buffer : bytes;
  (* Which global ids are known to speak v2 ('\001' = yes), and how many
     hellos each destination has been sent (saturating at [hello_cap]). *)
  peer_v2 : Bytes.t;
  hello_tries : Bytes.t;
  (* v2 outbound batches: per-destination queues plus first-enqueue order
     so flushes are deterministic. *)
  pending : (int, pending_batch) Hashtbl.t;
  mutable pending_order : int list;  (* rev *)
  (* Control channels: extra fds in the select set, each draining itself
     via its callback (a node-host's stdin and control socket). *)
  mutable channels : (Unix.file_descr * (unit -> unit)) list;
  mutable periodics : periodic list;
  mutable stop_requested : bool;
  (* Cross-process partition window: with [Some parts], cross-block
     datagrams are dropped at the sender (blocks per the injector's
     partition arithmetic, identical in every process). *)
  mutable filter_parts : int option;
  obs : Sf_obs.Obs.t;
  (* Registry counters (one O(1) increment each, the same cost as the
     mutable int fields they replaced); [statistics] reads them back. *)
  c_sent : Sf_obs.Metrics.counter;
  c_dropped : Sf_obs.Metrics.counter;  (* injected loss (any fault cause) *)
  c_received : Sf_obs.Metrics.counter;
  c_corrupted : Sf_obs.Metrics.counter;
  c_delayed : Sf_obs.Metrics.counter;
  c_crash_dropped : Sf_obs.Metrics.counter;
  c_oversized : Sf_obs.Metrics.counter;
  c_truncated : Sf_obs.Metrics.counter;
  c_decode_errors : Sf_obs.Metrics.counter;
  c_send_errors : Sf_obs.Metrics.counter;
  c_rejoins : Sf_obs.Metrics.counter;  (* crash-restart rejoin recoveries *)
  c_retunes : Sf_obs.Metrics.counter;  (* per-node threshold retunes *)
  c_emitted : Sf_obs.Metrics.counter;  (* datagrams actually sent on the wire *)
  c_messages_received : Sf_obs.Metrics.counter;  (* decoded protocol messages *)
  c_batches : Sf_obs.Metrics.counter;
  c_frames : Sf_obs.Metrics.counter;
  c_hellos_sent : Sf_obs.Metrics.counter;
  c_hellos_received : Sf_obs.Metrics.counter;
  c_crc_rejected : Sf_obs.Metrics.counter;
  c_filtered : Sf_obs.Metrics.counter;
  c_repairs : Sf_obs.Metrics.counter;  (* supervised rebootstrap attempts *)
  (* Codec profiling, timed with the injected clock. *)
  encode_span : Sf_obs.Span.t;
  decode_span : Sf_obs.Span.t;
  (* Whole initiate-action latency (protocol step + encode + sendto). *)
  action_span : Sf_obs.Span.t;
  mutable delayed : delayed_datagram list;
  mutable next_serial : int;
  mutable actions : int;
}

let address_of t node_id =
  Unix.ADDR_INET (Unix.inet_addr_loopback, t.base_port + node_id)

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  (s * t.serial_stride) + t.serial_offset

let create ?(period = 0.01) ?(now = Sf_obs.Clock.wall) ?scenario ?obs ?resilience
    ?(version = 1) ?(first = 0) ?count ?(serial_stride = 1) ?(serial_offset = 0)
    ~base_port ~n ~config ~loss_rate ~seed ~topology () =
  let count = match count with Some c -> c | None -> n - first in
  if n <= 0 then invalid_arg "Cluster.create: need at least one node";
  if base_port < 1024 || base_port + n > 65_535 then
    invalid_arg "Cluster.create: port range out of bounds";
  if first < 0 || count < 1 || first + count > n then
    invalid_arg "Cluster.create: owned slice outside the id space";
  if version < 1 || version > 2 then
    invalid_arg "Cluster.create: unknown wire version";
  if serial_stride < 1 || serial_offset < 0 || serial_offset >= serial_stride
  then invalid_arg "Cluster.create: bad serial striding";
  let rng = Sf_prng.Rng.create seed in
  let obs = match obs with Some o -> o | None -> Sf_obs.Obs.create () in
  let metrics = Sf_obs.Obs.metrics obs in
  let injector =
    Option.map
      (fun sc -> Sf_faults.Injector.create ~metrics ~scenario:sc ~n ())
      scenario
  in
  (* The supervisor exists only under a recovering policy, and its jitter
     stream is separate from the protocol RNG: non-recovering runs replay
     byte-identically to drivers that predate the supervisor. *)
  let supervisor =
    match resilience with
    | Some policy when policy.Sf_resil.Policy.recover ->
      Some
        (Sf_resil.Policy.supervisor policy
           ~rng:(Sf_prng.Rng.create (seed lxor 0x5f17)))
    | _ -> None
  in
  let start = now () in
  let t =
    {
      base_port;
      n_global = n;
      first;
      version;
      period;
      loss_rate;
      serial_stride;
      serial_offset;
      now;
      started = start;
      rng;
      injector;
      resilience;
      supervisor;
      repair_pending = false;
      next_probe = start +. (2.0 *. period);
      nodes = [||];
      socket_generation = 0;
      read_buffer = Bytes.create Codec.recv_buffer_size;
      peer_v2 = Bytes.make n '\000';
      hello_tries = Bytes.make n '\000';
      pending = Hashtbl.create 64;
      pending_order = [];
      channels = [];
      periodics = [];
      stop_requested = false;
      filter_parts = None;
      obs;
      c_sent = Sf_obs.Metrics.counter metrics "cluster_datagrams_sent";
      c_dropped = Sf_obs.Metrics.counter metrics "cluster_datagrams_dropped";
      c_received = Sf_obs.Metrics.counter metrics "cluster_datagrams_received";
      c_corrupted = Sf_obs.Metrics.counter metrics "cluster_datagrams_corrupted";
      c_delayed = Sf_obs.Metrics.counter metrics "cluster_datagrams_delayed";
      c_crash_dropped =
        Sf_obs.Metrics.counter metrics "cluster_datagrams_crash_dropped";
      c_oversized = Sf_obs.Metrics.counter metrics "cluster_datagrams_oversized";
      c_truncated = Sf_obs.Metrics.counter metrics "cluster_datagrams_truncated";
      c_decode_errors = Sf_obs.Metrics.counter metrics "cluster_decode_errors";
      c_send_errors = Sf_obs.Metrics.counter metrics "cluster_send_errors";
      c_rejoins = Sf_obs.Metrics.counter metrics "cluster_rejoins";
      c_retunes = Sf_obs.Metrics.counter metrics "cluster_retunes";
      c_emitted = Sf_obs.Metrics.counter metrics "cluster_datagrams_emitted";
      c_messages_received =
        Sf_obs.Metrics.counter metrics "cluster_messages_received";
      c_batches = Sf_obs.Metrics.counter metrics "cluster_batches_sent";
      c_frames = Sf_obs.Metrics.counter metrics "cluster_frames_sent";
      c_hellos_sent = Sf_obs.Metrics.counter metrics "cluster_hellos_sent";
      c_hellos_received =
        Sf_obs.Metrics.counter metrics "cluster_hellos_received";
      c_crc_rejected =
        Sf_obs.Metrics.counter metrics "cluster_frames_crc_rejected";
      c_filtered = Sf_obs.Metrics.counter metrics "cluster_datagrams_filtered";
      c_repairs = Sf_obs.Metrics.counter metrics "cluster_repair_attempts";
      encode_span = Sf_obs.Span.create ~clock:now metrics "codec_encode_seconds";
      decode_span = Sf_obs.Span.create ~clock:now metrics "codec_decode_seconds";
      action_span =
        Sf_obs.Span.create ~clock:now metrics "cluster_action_seconds";
      delayed = [];
      next_serial = 0;
      actions = 0;
    }
  in
  (* One round of the scenario clock = one firing period elapsed. *)
  Option.iter
    (fun inj ->
      Sf_faults.Injector.set_clock inj (fun () -> (now () -. start) /. period))
    injector;
  (* Track every socket opened so far: if node k's bind (or anything after
     it) fails, the k sockets already open must not leak. *)
  let opened = ref [] in
  let make_node node_id =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    opened := socket :: !opened;
    Unix.set_nonblock socket;
    Unix.setsockopt socket Unix.SO_REUSEADDR true;
    Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + node_id));
    let node = Sf_core.Protocol.create_node ~config ~node_id in
    List.iter
      (fun v ->
        match Sf_core.View.random_empty_slot node.Sf_core.Protocol.view rng with
        | None -> invalid_arg "Cluster.create: topology exceeds view size"
        | Some slot ->
          Sf_core.View.set node.Sf_core.Protocol.view slot
            { Sf_core.View.id = v; serial = fresh_serial t; anchor = None; born = 0 })
      (topology node_id);
    {
      node;
      socket;
      (* Stagger first firings across one period. *)
      next_fire = start +. (period *. Sf_prng.Rng.float rng);
      config;
      resil =
        Option.map
          (fun policy ->
            {
              estimator = Sf_resil.Policy.estimator policy;
              controller =
                Sf_resil.Policy.controller policy
                  ~initial:
                    ( config.Sf_core.Protocol.lower_threshold,
                      config.Sf_core.Protocol.view_size )
                  ~capacity:config.Sf_core.Protocol.view_size;
              last_sent = 0;
              last_duplications = 0;
              last_deletions = 0;
            })
          resilience;
      down = false;
      snapshot = [];
    }
  in
  match Array.init count (fun i -> make_node (first + i)) with
  | nodes -> { t with nodes }
  | exception e ->
    List.iter
      (fun socket -> try Unix.close socket with Unix.Unix_error _ -> ())
      !opened;
    raise e

let node_count t = Array.length t.nodes
let owned_range t = (t.first, Array.length t.nodes)
let request_stop t = t.stop_requested <- true
let add_channel t fd callback = t.channels <- (fd, callback) :: t.channels

let add_periodic t ~every callback =
  t.periodics <-
    { every; due_at = t.now () +. every; callback } :: t.periodics

let set_partition_filter t ~parts =
  (match parts with
  | Some p when p < 2 -> invalid_arg "Cluster.set_partition_filter: parts < 2"
  | _ -> ());
  t.filter_parts <- parts

(* The injector's partition arithmetic, applied locally: every process
   computes the same block for the same id, so the drop decision is
   consistent cluster-wide without coordination. *)
let filtered t ~src ~dst =
  match t.filter_parts with
  | None -> false
  | Some parts ->
    let block id =
      let id = ((id mod t.n_global) + t.n_global) mod t.n_global in
      min (parts - 1) (id * parts / t.n_global)
    in
    block src <> block dst

let shutdown t =
  Array.iter
    (fun ns -> try Unix.close ns.socket with Unix.Unix_error _ -> ())
    t.nodes

let is_crashed t node_id =
  match t.injector with
  | None -> false
  | Some injector -> Sf_faults.Injector.is_crashed injector node_id

(* Trace stamps are rounds since creation — the same unit as the
   injector's round clock, and derived from the injected [now] so
   virtual-clock tests stay deterministic. *)
let trace t event =
  if Sf_obs.Obs.tracing t.obs then
    Sf_obs.Obs.trace t.obs ~now:((t.now () -. t.started) /. t.period) event

(* A signal landing mid-sendto must not cost the datagram: retry on EINTR
   (the kernel sent nothing), count everything else as a send error —
   including ECONNREFUSED, which on loopback means a previous datagram
   bounced off a closed (crashed or killed) port. *)
let rec transmit t ~via ~packet ~target =
  match Unix.sendto via packet 0 (Bytes.length packet) [] target with
  | _ -> Sf_obs.Metrics.incr t.c_emitted
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> transmit t ~via ~packet ~target
  | exception Unix.Unix_error _ -> Sf_obs.Metrics.incr t.c_send_errors

(* --- v2 per-peer negotiation ---

   Conservative default: an unknown peer gets plain v1 datagrams (which
   any peer understands) plus up to [hello_cap] hellos advertising this
   driver's whole port slice as v2.  A v2 peer replies with its own range
   the first time the hello teaches it anything, upgrading both directions;
   a v1 peer never replies and the probing stops at the cap — a permanent
   per-peer downgrade with zero lost traffic either way. *)

let peer_speaks_v2 t id = Bytes.get t.peer_v2 id = '\001'

let maybe_hello t (ns : node_state) destination =
  let tries = Char.code (Bytes.get t.hello_tries destination) in
  if tries < hello_cap then begin
    Bytes.set t.hello_tries destination (Char.chr (tries + 1));
    let lo = t.base_port + t.first in
    let hi = t.base_port + t.first + Array.length t.nodes - 1 in
    Sf_obs.Metrics.incr t.c_hellos_sent;
    transmit t ~via:ns.socket ~packet:(Codec.encode_hello ~lo ~hi)
      ~target:(address_of t destination)
  end

let handle_hello t (ns : node_state) ~from ~lo ~hi =
  Sf_obs.Metrics.incr t.c_hellos_received;
  if t.version >= 2 then begin
    let lo_id = max 0 (lo - t.base_port) in
    let hi_id = min (t.n_global - 1) (hi - t.base_port) in
    let newly = ref false in
    for id = lo_id to hi_id do
      if not (peer_speaks_v2 t id) then begin
        newly := true;
        Bytes.set t.peer_v2 id '\001'
      end
    done;
    (* Reply once per newly learned range, to the advertiser's source
       address: the exchange terminates because a reply that teaches the
       peer nothing new draws no further reply. *)
    if !newly then begin
      let lo = t.base_port + t.first in
      let hi = t.base_port + t.first + Array.length t.nodes - 1 in
      Sf_obs.Metrics.incr t.c_hellos_sent;
      transmit t ~via:ns.socket ~packet:(Codec.encode_hello ~lo ~hi) ~target:from
    end
  end

(* --- v2 outbound batching --- *)

let delay_factor t =
  match t.injector with
  | None -> 1.0
  | Some injector -> Sf_faults.Injector.delay_factor injector

(* The socket a queued batch leaves through: the enqueuing node's unless a
   crash window closed it mid-iteration, then any live sibling's. *)
let live_socket t src_index =
  let ns = t.nodes.(src_index) in
  if not ns.down then Some ns.socket
  else
    Array.fold_left
      (fun acc ns -> match acc with Some _ -> acc | None when not ns.down -> Some ns.socket | None -> None)
      None t.nodes

let flush_destination t destination (q : pending_batch) =
  Hashtbl.remove t.pending destination;
  let items = List.rev q.items in
  match
    Sf_obs.Span.time t.encode_span (fun () ->
        Codec.encode_batch (List.map fst items))
  with
  | [ packet ] -> (
    (* Corrupt verdicts flip one payload byte of their own frame after
       encoding: the receiver's CRC rejects exactly that frame. *)
    List.iteri
      (fun i (_, corrupt) ->
        if corrupt then begin
          Sf_obs.Metrics.incr t.c_corrupted;
          Codec.corrupt_frame packet i
        end)
      items;
    Sf_obs.Metrics.incr t.c_batches;
    Sf_obs.Metrics.add t.c_frames q.batched;
    match live_socket t q.src_index with
    | None -> Sf_obs.Metrics.incr t.c_send_errors
    | Some via ->
      let factor = delay_factor t in
      if factor > 1.0 then begin
        Sf_obs.Metrics.incr t.c_delayed;
        t.delayed <-
          {
            release_at = t.now () +. (factor *. t.period);
            via;
            packet;
            target = address_of t destination;
          }
          :: t.delayed
      end
      else transmit t ~via ~packet ~target:(address_of t destination))
  | _ ->
    (* Queues flush at [max_batch], so the encoder cannot split. *)
    assert false

let flush_batches t =
  match t.pending_order with
  | [] -> ()
  | order ->
    t.pending_order <- [];
    List.iter
      (fun destination ->
        match Hashtbl.find_opt t.pending destination with
        | Some q -> flush_destination t destination q
        | None -> ())  (* flushed early at max_batch; entry is stale *)
      (List.rev order)

let enqueue_frame t (ns : node_state) ~destination ~message ~corrupt =
  let q =
    match Hashtbl.find_opt t.pending destination with
    | Some q -> q
    | None ->
      let q =
        {
          items = [];
          batched = 0;
          src_index = ns.node.Sf_core.Protocol.node_id - t.first;
        }
      in
      Hashtbl.add t.pending destination q;
      t.pending_order <- destination :: t.pending_order;
      q
  in
  q.items <- (message, corrupt) :: q.items;
  q.batched <- q.batched + 1;
  if q.batched >= Codec.max_batch then flush_destination t destination q

(* Clamp a controller target (dL, s) to this node: s never drops below the
   current outdegree (nothing is evicted; the receive rule stops accepting
   until decay catches up) nor rises above the allocated view, and dL must
   stay a valid even value in [0, s - 6]. *)
let clamped_config ~capacity ~degree (dl, s) =
  let even_up x = if x land 1 = 0 then x else x + 1 in
  let s = min capacity (max s (max 6 (even_up degree))) in
  let dl = max 0 (min dl (s - 6)) in
  let dl = if dl land 1 = 0 then dl else dl - 1 in
  Sf_core.Protocol.make_config ~view_size:s ~lower_threshold:dl

(* Per-node resilience tick, run after each initiation: feed the node's
   estimator from its own counters, and let its controller walk (dL, s)
   toward the section 6.3 solution for the estimated loss.  The
   controller's cooldown is counted in these ticks, i.e. in firings. *)
let resil_tick t (ns : node_state) =
  match ns.resil with
  | None -> ()
  | Some nr ->
    let node = ns.node in
    let sent = node.Sf_core.Protocol.messages_sent in
    let dups = node.Sf_core.Protocol.duplications in
    let dels = node.Sf_core.Protocol.deletions in
    Sf_resil.Estimator.observe nr.estimator ~sends:(sent - nr.last_sent)
      ~duplications:(dups - nr.last_duplications)
      ~deletions:(dels - nr.last_deletions) ();
    nr.last_sent <- sent;
    nr.last_duplications <- dups;
    nr.last_deletions <- dels;
    match t.resilience with
    | Some policy
      when policy.Sf_resil.Policy.retune
           && Sf_resil.Estimator.confident nr.estimator -> (
      match
        Sf_resil.Controller.decide nr.controller
          ~loss:(Sf_resil.Estimator.estimate nr.estimator)
      with
      | None -> ()
      | Some pair ->
        ns.config <-
          clamped_config
            ~capacity:(Sf_core.View.size node.Sf_core.Protocol.view)
            ~degree:(Sf_core.Protocol.degree node) pair;
        Sf_obs.Metrics.incr t.c_retunes;
        trace t (Sf_obs.Trace.Mark { label = "retune" }))
    | _ -> ()

(* One initiate step at [ns]; the message goes out as a datagram (or joins
   a batch) unless the loss draw — or an active fault window, or the
   cross-process partition filter — eats it. *)
let fire_inner t ns =
  t.actions <- t.actions + 1;
  trace t (Sf_obs.Trace.Timer { node = ns.node.Sf_core.Protocol.node_id });
  match
    Sf_core.Protocol.initiate ns.config t.rng ~fresh_serial:(fun () -> fresh_serial t)
      ~clock:t.actions ns.node
  with
  | Sf_core.Protocol.Self_loop -> ()
  | Sf_core.Protocol.Send { destination; message; duplicated } -> (
    let src = ns.node.Sf_core.Protocol.node_id in
    Sf_obs.Metrics.incr t.c_sent;
    trace t (Sf_obs.Trace.Send { src; dst = destination; duplicated });
    if filtered t ~src ~dst:destination then begin
      Sf_obs.Metrics.incr t.c_filtered;
      Sf_obs.Metrics.incr t.c_dropped;
      trace t (Sf_obs.Trace.Drop { src; dst = destination; cause = "filtered" })
    end
    else
      let verdict =
        match t.injector with
        | None ->
          if Sf_prng.Rng.bernoulli t.rng t.loss_rate then `Drop else `Deliver
        | Some injector -> (
          match
            Sf_faults.Injector.judge injector t.rng ~chance:t.loss_rate ~src
              ~dst:destination
          with
          | Sf_faults.Injector.Deliver -> `Deliver
          | Sf_faults.Injector.Corrupt_payload -> `Corrupt
          | Sf_faults.Injector.Drop _ -> `Drop)
      in
      match verdict with
      | `Drop ->
        Sf_obs.Metrics.incr t.c_dropped;
        trace t (Sf_obs.Trace.Drop { src; dst = destination; cause = "injected" })
      | (`Deliver | `Corrupt) as fate ->
        if destination >= 0 && destination < t.n_global then begin
          if t.version >= 2 && peer_speaks_v2 t destination then
            enqueue_frame t ns ~destination ~message
              ~corrupt:(fate = `Corrupt)
          else begin
            (* Unknown or v1 peer: historical v1 datagram (plus, in v2
               mode, a capped hello probe riding alongside). *)
            if t.version >= 2 then maybe_hello t ns destination;
            let packet =
              Sf_obs.Span.time t.encode_span (fun () -> Codec.encode message)
            in
            (match fate with
            | `Corrupt ->
              (* Flip the magic byte: real corrupted bytes on the wire,
                 which the receiving codec rejects — the datagram is spent
                 but the error path is exercised. *)
              Sf_obs.Metrics.incr t.c_corrupted;
              Bytes.set packet 0
                (Char.chr (Char.code (Bytes.get packet 0) lxor 0xff))
            | `Deliver -> ());
            let factor = delay_factor t in
            if factor > 1.0 then begin
              (* Loopback latency is negligible, so a delay window holds
                 the datagram for [factor] firing periods instead. *)
              Sf_obs.Metrics.incr t.c_delayed;
              t.delayed <-
                {
                  release_at = t.now () +. (factor *. t.period);
                  via = ns.socket;
                  packet;
                  target = address_of t destination;
                }
                :: t.delayed
            end
            else
              transmit t ~via:ns.socket ~packet
                ~target:(address_of t destination)
          end
        end)

let fire t ns = Sf_obs.Span.time t.action_span (fun () -> fire_inner t ns)

let flush_delayed t ~now =
  match t.delayed with
  | [] -> ()
  | delayed ->
    let due, pending = List.partition (fun d -> d.release_at <= now) delayed in
    t.delayed <- pending;
    (* The list is newest-first; release oldest-first. *)
    List.iter
      (fun d -> transmit t ~via:d.via ~packet:d.packet ~target:d.target)
      (List.rev due)

(* Drain every pending datagram on a readable socket.  A crashed receiver
   discards instead of processing: messages arriving during the window are
   lost, not queued for the resume. *)
let drain t ns =
  let continue = ref true in
  while !continue do
    match Unix.recvfrom ns.socket t.read_buffer 0 (Bytes.length t.read_buffer) [] with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* Linux loopback: a pending ICMP port-unreachable (our earlier
         datagram to a crashed node's closed port) can surface here; it
         carries no datagram, so keep draining. *)
      ()
    | length, from ->
      let dst = ns.node.Sf_core.Protocol.node_id in
      if is_crashed t dst then begin
        Sf_obs.Metrics.incr t.c_crash_dropped;
        trace t (Sf_obs.Trace.Drop { src = -1; dst; cause = "crash" })
      end
      else begin
        Sf_obs.Metrics.incr t.c_received;
        if length >= Bytes.length t.read_buffer then
          (* recvfrom filled the whole buffer, so the datagram may have
             been truncated to it: foreign traffic, larger than anything
             either codec version produces. *)
          Sf_obs.Metrics.incr t.c_oversized
        else
          let deliver message =
            Sf_obs.Metrics.incr t.c_messages_received;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = true });
            ignore (Sf_core.Protocol.receive ns.config t.rng ns.node message)
          in
          match
            Sf_obs.Span.time t.decode_span (fun () ->
                Codec.decode_datagram ~max_version:t.version t.read_buffer
                  ~length)
          with
          | Ok (Codec.Msg_v1 message) -> deliver message
          | Ok (Codec.Batch batch) ->
            if batch.Codec.truncated then begin
              Sf_obs.Metrics.incr t.c_truncated;
              trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
            end;
            if batch.Codec.bad_crc > 0 then begin
              Sf_obs.Metrics.add t.c_crc_rejected batch.Codec.bad_crc;
              trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
            end;
            List.iter deliver batch.Codec.messages
          | Ok (Codec.Hello { lo; hi }) -> handle_hello t ns ~from ~lo ~hi
          | Error (Codec.Too_short _) ->
            Sf_obs.Metrics.incr t.c_truncated;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
          | Error (Codec.Oversized _) -> Sf_obs.Metrics.incr t.c_oversized
          | Error _ ->
            Sf_obs.Metrics.incr t.c_decode_errors;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
      end
  done

(* --- Crash-restart with state recovery (resilience mode only) ---

   Without resilience a crash window only freezes the node (timers skip,
   arrivals are discarded) — the socket stays bound and the view survives,
   which models a paused process.  With resilience the crash is real:
   entering the window saves a bounded snapshot of the view (up to dL ids,
   the same bound the section 5 joining rule donates) and closes the
   socket, so in-flight datagrams bounce off a dead port; leaving it
   rebinds a fresh socket on the same port and rejoins by reinstalling the
   snapshot as fresh instances — falling back to copying a live
   neighbour's view (the paper's "copy another node's view" rule) when the
   snapshot is empty. *)

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let crash_down t (ns : node_state) =
  let keep = max 2 ns.config.Sf_core.Protocol.lower_threshold in
  ns.snapshot <- take keep (Sf_core.View.ids ns.node.Sf_core.Protocol.view);
  (try Unix.close ns.socket with Unix.Unix_error _ -> ());
  ns.down <- true;
  t.socket_generation <- t.socket_generation + 1;
  trace t (Sf_obs.Trace.Mark { label = "crash_down" })

(* Ids to rejoin with when no snapshot survives: a live owned neighbour's
   id and view — the paper's "copy another node's view" joining rule. *)
let donor_ids t ~node_id =
  let n = Array.length t.nodes in
  let rec pick tries =
    if tries = 0 then []
    else
      let candidate = t.nodes.(Sf_prng.Rng.int t.rng n) in
      if candidate.node.Sf_core.Protocol.node_id <> node_id && not candidate.down
      then
        candidate.node.Sf_core.Protocol.node_id
        :: List.filter
             (fun id -> id <> node_id)
             (Sf_core.View.ids candidate.node.Sf_core.Protocol.view)
      else pick (tries - 1)
  in
  pick 8

(* Reinstall [ids] as the node's whole view: fresh instances, even prefix
   (Observation 5.1), at most the joining bound dL. *)
let install_ids t (ns : node_state) ids =
  let view = ns.node.Sf_core.Protocol.view in
  Sf_core.View.clear_all view;
  let keep = max 2 ns.config.Sf_core.Protocol.lower_threshold in
  let ids = take (min keep (Sf_core.View.size view)) ids in
  let ids = take (List.length ids land lnot 1) ids in
  List.iteri
    (fun slot id ->
      Sf_core.View.set view slot
        { Sf_core.View.id; serial = fresh_serial t; anchor = None; born = t.actions })
    ids

let rejoin t (ns : node_state) =
  let node_id = ns.node.Sf_core.Protocol.node_id in
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock socket;
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, t.base_port + node_id));
  ns.socket <- socket;
  (* Ids to rejoin with: the crash snapshot, else a live neighbour's view. *)
  let ids = match ns.snapshot with [] -> donor_ids t ~node_id | ids -> ids in
  install_ids t ns ids;
  ns.down <- false;
  ns.snapshot <- [];
  t.socket_generation <- t.socket_generation + 1;
  Sf_obs.Metrics.incr t.c_rejoins;
  trace t (Sf_obs.Trace.Mark { label = "rejoin" })

let sync_crash_states t =
  if Option.is_some t.resilience then
    Array.iter
      (fun ns ->
        let crashed = is_crashed t ns.node.Sf_core.Protocol.node_id in
        if crashed && not ns.down then crash_down t ns
        else if (not crashed) && ns.down then rejoin t ns)
      t.nodes

(* --- Supervised connectivity repair ---

   In a multi-process cluster a node can lose its whole view to causes no
   crash window announces (its neighbours' processes were kill -9'd and
   their views of it decayed).  The probe finds owned, live, isolated
   (degree-0) nodes and rebootstraps them from a live sibling's view — the
   same joining rule as a rejoin — with the supervisor spacing attempts
   under capped backoff and confirming recovery on the next probe. *)

let probe_repairs t ~now =
  match t.supervisor with
  | None -> ()
  | Some sup ->
    if now >= t.next_probe then begin
      t.next_probe <- now +. (2.0 *. t.period);
      let round = (now -. t.started) /. t.period in
      let isolated =
        Array.to_list t.nodes
        |> List.filter (fun ns ->
               (not ns.down)
               && (not (is_crashed t ns.node.Sf_core.Protocol.node_id))
               && Sf_core.Protocol.degree ns.node = 0)
      in
      match isolated with
      | [] ->
        if t.repair_pending then begin
          t.repair_pending <- false;
          Sf_resil.Supervisor.record_success sup
        end
        else Sf_resil.Supervisor.record_healthy sup
      | isolated ->
        if Sf_resil.Supervisor.due sup ~now:round then begin
          ignore (Sf_resil.Supervisor.record_attempt sup ~now:round);
          t.repair_pending <- true;
          Sf_obs.Metrics.incr t.c_repairs;
          List.iter
            (fun ns ->
              match donor_ids t ~node_id:ns.node.Sf_core.Protocol.node_id with
              | [] -> ()
              | ids ->
                install_ids t ns ids;
                trace t (Sf_obs.Trace.Mark { label = "rebootstrap" }))
            isolated
        end
    end

(* Run the driver for [duration] wall-clock seconds (or until
   [request_stop], typically from a control-channel callback). *)
let run t ~duration =
  t.stop_requested <- false;
  let deadline = t.now () +. duration in
  (* The select set excludes crashed (closed) sockets and is rebuilt
     whenever a crash-restart closes or rebinds one. *)
  let select_set () =
    let by_socket = Hashtbl.create (Array.length t.nodes) in
    let sockets =
      Array.to_list t.nodes
      |> List.filter_map (fun ns ->
             if ns.down then None
             else begin
               Hashtbl.replace by_socket ns.socket ns;
               Some ns.socket
             end)
    in
    (sockets, by_socket)
  in
  let generation = ref t.socket_generation in
  let index = ref (select_set ()) in
  let rec loop () =
    let now = t.now () in
    if now >= deadline || t.stop_requested then flush_batches t
    else begin
      (match t.injector with
      | None -> ()
      | Some injector -> Sf_faults.Injector.refresh injector);
      sync_crash_states t;
      if t.socket_generation <> !generation then begin
        generation := t.socket_generation;
        index := select_set ()
      end;
      flush_delayed t ~now;
      (* Fire all due timers, rescheduling with jitter.  A crashed node
         skips its initiation but keeps its timer running, so it resumes —
         restored from its snapshot (resilience) or with its stale view —
         when the window closes. *)
      Array.iter
        (fun ns ->
          if ns.next_fire <= now then begin
            if not (is_crashed t ns.node.Sf_core.Protocol.node_id) then begin
              fire t ns;
              resil_tick t ns
            end;
            ns.next_fire <-
              now +. (t.period *. (0.9 +. (0.2 *. Sf_prng.Rng.float t.rng)))
          end)
        t.nodes;
      List.iter
        (fun p ->
          if p.due_at <= now then begin
            p.due_at <- now +. p.every;
            p.callback ()
          end)
        t.periodics;
      probe_repairs t ~now;
      (* Batches queued this iteration leave before the loop sleeps: batch
         latency is bounded by one iteration, not by the fill rate. *)
      flush_batches t;
      let next_timer =
        Array.fold_left (fun acc ns -> Float.min acc ns.next_fire) infinity t.nodes
      in
      let next_release =
        List.fold_left (fun acc d -> Float.min acc d.release_at) infinity t.delayed
      in
      let next_periodic =
        List.fold_left (fun acc p -> Float.min acc p.due_at) infinity t.periodics
      in
      let next_probe =
        match t.supervisor with None -> infinity | Some _ -> t.next_probe
      in
      let next_event =
        Float.min (Float.min next_timer next_release)
          (Float.min next_periodic next_probe)
      in
      let timeout = Float.max 0. (Float.min (next_event -. now) (deadline -. now)) in
      let sockets, by_socket = !index in
      let fds =
        List.rev_append (List.rev_map fst t.channels) sockets
      in
      (* EINTR: a signal (SIGALRM, SIGTERM via a handler, a profiler tick)
         interrupting the wait is routine, not an error; EAGAIN is how some
         kernels report a transient resource squeeze on select.  Both mean
         "try again" — the deadline/stop check at the loop head bounds the
         retry. *)
      match Unix.select fds [] [] timeout with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            match List.assq_opt fd t.channels with
            | Some callback -> callback ()
            | None -> (
              match Hashtbl.find_opt by_socket fd with
              | Some ns -> drain t ns
              | None -> ()))
          readable;
        loop ()
    end
  in
  loop ()

(* --- Measurement (mirrors the simulator's monitors) --- *)

let views t =
  Array.to_seq t.nodes
  |> Seq.map (fun ns -> (ns.node.Sf_core.Protocol.node_id, ns.node.Sf_core.Protocol.view))

let outdegree_summary t =
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun ns -> Sf_stats.Summary.add_int summary (Sf_core.Protocol.degree ns.node))
    t.nodes;
  summary

let independence_census t = Sf_core.Census.of_views (views t)

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun ns ->
      Sf_graph.Digraph.ensure_vertex g ns.node.Sf_core.Protocol.node_id;
      Sf_core.View.iter
        (fun _ e ->
          Sf_graph.Digraph.add_edge g ns.node.Sf_core.Protocol.node_id e.Sf_core.View.id)
        ns.node.Sf_core.Protocol.view)
    t.nodes;
  g

let is_weakly_connected t = Sf_graph.Digraph.is_weakly_connected (membership_graph t)

let fault_statistics t = Option.map Sf_faults.Injector.statistics t.injector

type statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;
  datagrams_received : int;
  datagrams_corrupted : int;
  datagrams_delayed : int;
  datagrams_crash_dropped : int;
  datagrams_oversized : int;
  datagrams_truncated : int;
  decode_errors : int;
  send_errors : int;
  rejoins : int;
  retunes : int;
  datagrams_emitted : int;
  messages_received : int;
  batches_sent : int;
  frames_sent : int;
  hellos_sent : int;
  hellos_received : int;
  frames_crc_rejected : int;
  datagrams_filtered : int;
  repair_attempts : int;
  recoveries : int;
}

let statistics (t : t) =
  let count = Sf_obs.Metrics.count in
  {
    actions = t.actions;
    datagrams_sent = count t.c_sent;
    datagrams_dropped = count t.c_dropped;
    datagrams_received = count t.c_received;
    datagrams_corrupted = count t.c_corrupted;
    datagrams_delayed = count t.c_delayed;
    datagrams_crash_dropped = count t.c_crash_dropped;
    datagrams_oversized = count t.c_oversized;
    datagrams_truncated = count t.c_truncated;
    decode_errors = count t.c_decode_errors;
    send_errors = count t.c_send_errors;
    rejoins = count t.c_rejoins;
    retunes = count t.c_retunes;
    datagrams_emitted = count t.c_emitted;
    messages_received = count t.c_messages_received;
    batches_sent = count t.c_batches;
    frames_sent = count t.c_frames;
    hellos_sent = count t.c_hellos_sent;
    hellos_received = count t.c_hellos_received;
    frames_crc_rejected = count t.c_crc_rejected;
    datagrams_filtered = count t.c_filtered;
    repair_attempts = count t.c_repairs;
    recoveries =
      (match t.supervisor with
      | None -> 0
      | Some sup -> Sf_resil.Supervisor.recoveries sup);
  }

let obs t = t.obs

(* Per-action latency quantile (seconds) from the action span histogram;
   [nan] before any action. *)
let action_latency_quantile t q =
  Sf_obs.Metrics.quantile (Sf_obs.Span.histogram t.action_span) q
