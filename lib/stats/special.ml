(* Special functions needed by the analytic machinery: log-gamma (Lanczos
   approximation), log-factorial, log-binomial-coefficient, and the
   regularized incomplete gamma functions used by the chi-square test.
   Implementations follow the classic Numerical Recipes formulations. *)

let lanczos_g = 7.

let lanczos_coefficients =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else
    let x = x -. 1. in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

let log_factorial =
  (* Memoize small values: the degree analysis calls this in tight loops.
     The table is filled eagerly at module initialisation and read-only
     afterwards, so it is safe to share across domains (a lazy cache here
     would race on Lazy.force); sf_analyze classifies it in
     analyze.baseline. *)
  let cache_size = 1024 in
  let cache = Array.make cache_size 0. in
  for i = 2 to cache_size - 1 do
    cache.(i) <- cache.(i - 1) +. log (float_of_int i)
  done;
  fun n ->
    if n < 0 then invalid_arg "Special.log_factorial: negative argument";
    if n < cache_size then cache.(n) else log_gamma (float_of_int n +. 1.)

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose n k = exp (log_choose n k)

(* Regularized lower incomplete gamma P(a,x) by series expansion;
   valid for x < a+1. *)
let gamma_p_series a x =
  let gln = log_gamma a in
  let rec go ap sum del n =
    if n > 500 then sum
    else
      let ap = ap +. 1. in
      let del = del *. x /. ap in
      let sum = sum +. del in
      if Float.abs del < Float.abs sum *. 1e-15 then sum else go ap sum del (n + 1)
  in
  if x <= 0. then 0.
  else
    let sum = go a (1. /. a) (1. /. a) 0 in
    sum *. exp ((-.x) +. (a *. log x) -. gln)

(* Regularized upper incomplete gamma Q(a,x) by continued fraction;
   valid for x >= a+1. *)
let gamma_q_cf a x =
  let gln = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 500 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < 1e-15 then raise Exit
     done
   with Exit -> ());
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0. then invalid_arg "Special.gamma_p: a must be positive";
  if x < 0. then invalid_arg "Special.gamma_p: x must be non-negative";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q a x = 1. -. gamma_p a x

(* Natural log of the sum of two numbers given in log space. *)
let log_add la lb =
  if la = neg_infinity then lb
  else if lb = neg_infinity then la
  else if la >= lb then la +. log1p (exp (lb -. la))
  else lb +. log1p (exp (la -. lb))

let log_sum = Array.fold_left log_add neg_infinity
