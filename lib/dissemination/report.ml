type t = {
  strategy : Strategy.t;
  fanout : int;
  rounds : int;
  rounds_to_half : int option;
  rounds_to_target : int option;
  coverage : float array;
  messages : int;
  pushes : int;
  requests : int;
  duplicates : int;
  lost : int;
  to_dead : int;
}

let final_coverage t =
  let n = Array.length t.coverage in
  if n = 0 then 0. else t.coverage.(n - 1)

let reached t = t.rounds_to_target <> None

let equal a b =
  a.strategy = b.strategy && a.fanout = b.fanout && a.rounds = b.rounds
  && a.rounds_to_half = b.rounds_to_half
  && a.rounds_to_target = b.rounds_to_target
  && a.coverage = b.coverage && a.messages = b.messages
  && a.pushes = b.pushes && a.requests = b.requests
  && a.duplicates = b.duplicates && a.lost = b.lost && a.to_dead = b.to_dead

let pp_opt ppf = function
  | None -> Fmt.string ppf "-"
  | Some r -> Fmt.int ppf r

let pp ppf t =
  Fmt.pf ppf
    "@[<v>%a fanout=%d rounds=%d half=%a target=%a coverage=%.4f@,\
     messages=%d (pushes=%d requests=%d) duplicates=%d lost=%d to_dead=%d@]"
    Strategy.pp t.strategy t.fanout t.rounds pp_opt t.rounds_to_half pp_opt
    t.rounds_to_target (final_coverage t) t.messages t.pushes t.requests
    t.duplicates t.lost t.to_dead

let to_json t =
  let module J = Sf_obs.Json in
  let opt = function None -> J.Null | Some r -> J.Int r in
  J.Obj
    [
      ("strategy", J.String (Strategy.to_string t.strategy));
      ("fanout", J.Int t.fanout);
      ("rounds", J.Int t.rounds);
      ("rounds_to_half", opt t.rounds_to_half);
      ("rounds_to_target", opt t.rounds_to_target);
      ("final_coverage", J.Float (final_coverage t));
      ("messages", J.Int t.messages);
      ("pushes", J.Int t.pushes);
      ("requests", J.Int t.requests);
      ("duplicates", J.Int t.duplicates);
      ("lost", J.Int t.lost);
      ("to_dead", J.Int t.to_dead);
    ]
