(* Iterative Tarjan strongly-connected-components algorithm over an adjacency
   structure given as a function.  Used to check irreducibility of Markov
   chains (section 3.2 of the paper) without risking stack overflow on the
   large degree-MC state spaces. *)

type result = {
  component_of : int array;  (* component index of each vertex *)
  count : int;               (* number of components *)
}

let tarjan ~n ~successors =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component_of = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let component_count = ref 0 in
  (* Explicit DFS frames: (vertex, remaining successors). *)
  let frames : (int * int list ref) Stack.t = Stack.create () in
  let push_vertex v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, ref (successors v)) frames
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      push_vertex root;
      while not (Stack.is_empty frames) do
        let v, rest = Stack.top frames in
        match !rest with
        | w :: tl ->
          rest := tl;
          if index.(w) = -1 then push_vertex w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            (* v is the root of a component: pop it off the Tarjan stack. *)
            let rec pop () =
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              component_of.(w) <- !component_count;
              if w <> v then pop ()
            in
            pop ();
            incr component_count
          end;
          (* Propagate lowlink to parent. *)
          if not (Stack.is_empty frames) then begin
            let parent, _ = Stack.top frames in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
      done
    end
  done;
  { component_of; count = !component_count }

let is_strongly_connected ~n ~successors =
  n <= 1 || (tarjan ~n ~successors).count = 1
