(** Minimal deterministic JSON emitter for machine-readable artifacts.

    Emission only; object fields keep the given order and numbers use a
    fixed format, so equal values serialize to identical bytes — the
    property the byte-identical trace-dump guarantee rests on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val number_repr : float -> string
(** The fixed float format used by {!to_string} ([%.12g], with a trailing
    [.0] added to integral values so the token reads back as a float). *)

val to_string : t -> string

val to_buffer : Buffer.t -> t -> unit
