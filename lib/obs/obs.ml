(* The observability bundle a driver carries: one metrics registry plus an
   optional event tracer.

   Every driver (runner, network, UDP cluster, fault injector) owns a
   bundle — a private one by default, so metric updates are always valid
   O(1) writes and never behind a branch — while callers that want a
   global view pass one shared bundle down the stack.  Tracing is off
   unless a tracer is attached; [trace] is a single option test when
   disabled, and [tracing] lets hot paths skip stamp computation
   entirely. *)

type t = { metrics : Metrics.t; tracer : Trace.t option }

let create ?tracer ?metrics () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  { metrics; tracer }

let metrics t = t.metrics

let tracer t = t.tracer

let tracing t = t.tracer <> None

let trace t ~now event =
  match t.tracer with None -> () | Some tr -> Trace.record tr ~now event
