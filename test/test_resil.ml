(* Tests for the self-healing resilience layer (lib/resilience) and its
   threading through the drivers: backoff determinism, controller guard
   behaviour, estimator accuracy against injector ground truth (i.i.d.
   and Gilbert-Elliott), the replay-identity of a disabled/observe-only
   policy, end-to-end adaptive retuning under the invariant audit,
   supervised partition recovery, and the resil_* metrics surface. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Scenario = Sf_faults.Scenario
module Invariant = Sf_check.Invariant
module Policy = Sf_resil.Policy
module Estimator = Sf_resil.Estimator
module Controller = Sf_resil.Controller
module Backoff = Sf_resil.Backoff
module Supervisor = Sf_resil.Supervisor

let scenario_of_string s =
  match Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> Alcotest.fail ("scenario parse: " ^ e)

(* The section 6.3 solver the production drivers inject (bin/sfg, bench). *)
let solve_63 ~d_hat ~delta ~loss =
  let t =
    Sf_analysis.Thresholds.select_lossy ~d_hat ~delta ~loss:(Float.min loss 0.45)
  in
  (t.Sf_analysis.Thresholds.lower_threshold, t.Sf_analysis.Thresholds.view_size)

let make_runner ?scenario ?resilience ?obs ?(n = 120) ?(view_size = 16)
    ?(lower_threshold = 6) ?(out_degree = 10) ?(loss = 0.05) ~seed () =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let topology = Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n ~out_degree in
  Runner.create ?scenario ?resilience ?obs ~seed ~n ~loss_rate:loss ~config
    ~topology ()

(* --- Backoff --- *)

let test_backoff_deterministic () =
  let make seed =
    Backoff.create ~base:1.0 ~factor:2.0 ~cap:8.0 ~jitter:0.5
      ~rng:(Sf_prng.Rng.create seed) ()
  in
  let a = make 11 and b = make 11 in
  let da = List.init 6 (fun _ -> Backoff.next a) in
  let db = List.init 6 (fun _ -> Backoff.next b) in
  Alcotest.(check bool) "equal seeds draw equal delay sequences" true (da = db);
  (* Nominal schedule 1, 2, 4, 8, 8, 8; jitter 0.5 spreads each delay over
     [nominal/2, nominal]. *)
  List.iteri
    (fun i d ->
      let nominal = Float.min (2.0 ** float_of_int i) 8.0 in
      Alcotest.(check bool)
        (Fmt.str "delay %d = %.3f within [%.3f, %.3f]" i d (nominal /. 2.) nominal)
        true
        (d >= nominal /. 2. && d <= nominal))
    da;
  Alcotest.(check int) "attempts counted" 6 (Backoff.attempts a);
  Backoff.reset a;
  Alcotest.(check int) "reset clears attempts" 0 (Backoff.attempts a);
  Alcotest.(check bool) "post-reset delay starts from base again" true
    (Backoff.next a <= 1.0);
  (match Backoff.create ~jitter:1.5 ~rng:(Sf_prng.Rng.create 1) () with
  | exception Invalid_argument _ -> ()
  | (_ : Backoff.t) -> Alcotest.fail "jitter above 1 must be rejected");
  match Backoff.create ~base:4.0 ~cap:2.0 ~rng:(Sf_prng.Rng.create 1) () with
  | exception Invalid_argument _ -> ()
  | (_ : Backoff.t) -> Alcotest.fail "cap below base must be rejected"

(* --- Estimator unit behaviour --- *)

let test_estimator_windows () =
  let e = Estimator.create ~window:100 ~smoothing:1.0 () in
  Alcotest.(check bool) "not confident before a window" false (Estimator.confident e);
  Alcotest.(check (float 0.)) "estimate 0 before a window" 0. (Estimator.estimate e);
  (* One full window with dup - del = 20 of 100 sends: estimate 0.2. *)
  Estimator.observe e ~sends:100 ~duplications:25 ~deletions:5 ();
  Alcotest.(check bool) "confident after one window" true (Estimator.confident e);
  Alcotest.(check (float 1e-9)) "inverted rate" 0.2 (Estimator.estimate e);
  (* Deletions above duplications clamp at 0, never negative. *)
  let e = Estimator.create ~window:10 ~smoothing:1.0 () in
  Estimator.observe e ~sends:10 ~duplications:0 ~deletions:8 ();
  Alcotest.(check bool) "clamped below at 0" true (Estimator.estimate e >= 0.);
  match Estimator.observe e ~sends:(-1) ~duplications:0 ~deletions:0 () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative deltas must be rejected"

(* --- Controller guards --- *)

let test_controller_guards () =
  let solve ~loss = if loss > 0.25 then (14, 40) else (4, 20) in
  let limits =
    { Controller.min_lower = 0; max_lower = 34; min_view = 20; max_view = 40 }
  in
  let c =
    Controller.create ~hysteresis:0.02 ~cooldown:3 ~max_step:4 ~solve ~limits
      ~initial:(4, 20) ()
  in
  (* Inside the hysteresis band of the initial anchor (0): hold. *)
  Alcotest.(check bool) "hysteresis holds" true (Controller.decide c ~loss:0.01 = None);
  (* A real shift: one budgeted step toward (14, 40). *)
  (match Controller.decide c ~loss:0.30 with
  | Some (8, 24) -> ()
  | Some (dl, s) -> Alcotest.failf "expected one +4 step to (8, 24), got (%d, %d)" dl s
  | None -> Alcotest.fail "expected a retune");
  Alcotest.(check (float 1e-9)) "anchor moved to the solved loss" 0.30
    (Controller.anchor_loss c);
  (* Same estimate again: inside the new anchor's band. *)
  Alcotest.(check bool) "re-anchored hysteresis holds" true
    (Controller.decide c ~loss:0.30 = None);
  (* Shifted estimate but inside the cooldown (retune at tick 2, this is
     tick 4): hold. *)
  Alcotest.(check bool) "cooldown holds" true (Controller.decide c ~loss:0.35 = None);
  (* Cooldown elapsed (tick 5): the next budgeted step fires. *)
  (match Controller.decide c ~loss:0.35 with
  | Some (12, 28) -> ()
  | Some (dl, s) -> Alcotest.failf "expected (12, 28), got (%d, %d)" dl s
  | None -> Alcotest.fail "expected a retune after the cooldown");
  Alcotest.(check int) "two retunes recorded" 2 (Controller.retunes c);
  Alcotest.(check bool) "current tracks the last step" true
    (Controller.current c = (12, 28));
  (* Every emitted pair satisfies the protocol constraint dL <= s - 6. *)
  let rec drain k =
    if k > 0 then begin
      (match Controller.decide c ~loss:(0.35 +. (0.05 *. float_of_int k)) with
      | Some (dl, s) ->
        Alcotest.(check bool)
          (Fmt.str "(%d, %d) is protocol-valid" dl s)
          true
          (dl >= 0 && dl <= s - 6 && dl mod 2 = 0 && s mod 2 = 0 && s <= 40)
      | None -> ());
      drain (k - 1)
    end
  in
  drain 20;
  match
    Controller.create ~solve ~limits ~initial:(5, 20) ()
  with
  | exception Invalid_argument _ -> ()
  | (_ : Controller.t) -> Alcotest.fail "odd initial pair must be rejected"

(* --- Supervisor scheduling --- *)

let test_supervisor_schedule () =
  let backoff =
    Backoff.create ~base:2.0 ~factor:2.0 ~cap:16.0 ~jitter:0.0
      ~rng:(Sf_prng.Rng.create 3) ()
  in
  let sup = Supervisor.create ~backoff () in
  Alcotest.(check bool) "healthy: due immediately" true (Supervisor.due sup ~now:0.);
  let d = Supervisor.record_attempt sup ~now:0. in
  Alcotest.(check (float 1e-9)) "first delay is the base (no jitter)" 2.0 d;
  Alcotest.(check bool) "inside the window: not due" false (Supervisor.due sup ~now:1.9);
  Alcotest.(check bool) "window elapsed: due" true (Supervisor.due sup ~now:2.0);
  let d2 = Supervisor.record_attempt sup ~now:2.0 in
  Alcotest.(check (float 1e-9)) "delay doubles while failing" 4.0 d2;
  Alcotest.(check int) "attempts charged" 2 (Supervisor.attempts sup);
  Supervisor.record_success sup;
  Alcotest.(check int) "recovery counted" 1 (Supervisor.recoveries sup);
  Alcotest.(check bool) "healthy again: due" true (Supervisor.due sup ~now:2.1);
  let d3 = Supervisor.record_attempt sup ~now:3.0 in
  Alcotest.(check (float 1e-9)) "success reset the schedule" 2.0 d3;
  Supervisor.record_healthy sup;
  Alcotest.(check bool) "routine healthy probe clears the window" true
    (Supervisor.due sup ~now:3.1)

(* --- Replay identity of disabled / observe-only resilience --- *)

let dump_views r =
  Array.to_list (Runner.live_nodes r)
  |> List.map (fun node ->
         (node.Protocol.node_id, Sf_core.View.entries node.Protocol.view))

let test_observe_only_identity () =
  let run resilience =
    let r = make_runner ?resilience ~seed:210 () in
    Runner.run_rounds r 80;
    r
  in
  let plain = run None in
  let observed = run (Some (Policy.observe_only ())) in
  Alcotest.(check bool) "identical views (ids, serials, anchors, births)" true
    (dump_views plain = dump_views observed);
  Alcotest.(check int) "identical mint bound" (Runner.minted_serials plain)
    (Runner.minted_serials observed);
  let np = Runner.network_statistics plain in
  let no = Runner.network_statistics observed in
  Alcotest.(check int) "identical sends" np.Sf_engine.Network.messages_sent
    no.Sf_engine.Network.messages_sent;
  Alcotest.(check int) "identical losses" np.Sf_engine.Network.messages_lost
    no.Sf_engine.Network.messages_lost;
  (* The observer still did its job. *)
  match Runner.resilience_statistics observed with
  | None -> Alcotest.fail "observe-only runner must expose resilience statistics"
  | Some rs ->
    Alcotest.(check bool) "estimator ran" true rs.Runner.estimator_confident;
    Alcotest.(check int) "but never retuned" 0 rs.Runner.retunes;
    Alcotest.(check int) "and never repaired" 0 rs.Runner.repair_attempts

(* --- Estimator accuracy against injector ground truth --- *)

let estimator_error ~scenario ~loss ~seed =
  let scenario = Option.map scenario_of_string scenario in
  let r =
    make_runner ?scenario ?resilience:(Some (Policy.observe_only ())) ~loss ~seed ()
  in
  (* Long enough for the EWMA to forget the warm-up transient (the first
     windows see the initial out_degree=10 overlay decaying toward its
     lossy equilibrium, where duplication under-counts the loss). *)
  Runner.run_rounds r 400;
  let net = Runner.network_statistics r in
  let truth =
    float_of_int net.Sf_engine.Network.messages_lost
    /. float_of_int (max 1 net.Sf_engine.Network.messages_sent)
  in
  match Runner.resilience_statistics r with
  | None -> Alcotest.fail "resilience statistics missing"
  | Some rs ->
    Alcotest.(check bool) "estimator folded windows" true rs.Runner.estimator_confident;
    (rs.Runner.loss_estimate, truth)

let test_estimator_accuracy_iid () =
  let estimate, truth = estimator_error ~scenario:None ~loss:0.2 ~seed:220 in
  Alcotest.(check bool)
    (Fmt.str "i.i.d.: estimate %.4f within 0.03 of measured loss %.4f" estimate truth)
    true
    (Float.abs (estimate -. truth) <= 0.03)

let test_estimator_accuracy_ge () =
  let estimate, truth =
    estimator_error ~scenario:(Some "ge:0.2:8") ~loss:0.01 ~seed:230
  in
  Alcotest.(check bool)
    (Fmt.str "GE: estimate %.4f within 0.03 of measured loss %.4f" estimate truth)
    true
    (Float.abs (estimate -. truth) <= 0.03)

(* Churn correction: at 1% per-round churn the bare inversion reads low —
   sends to departed slots produce neither a duplication nor a deletion,
   and join/leave edge flux enters the overlay out of band.  The sharded
   engine feeds the extended-ledger terms ([to_dead], churn edge flux)
   through [Estimator.observe]; with them folded in the estimate must
   land within 0.03 of the injector's ground truth. *)
let test_estimator_accuracy_churn () =
  (* Unit-level arithmetic first: the corrected inversion is
     (dup - del - to_dead + (added - removed)/2) / sends. *)
  let bare = Estimator.create ~window:100 ~smoothing:1.0 () in
  let corrected = Estimator.create ~window:100 ~smoothing:1.0 () in
  Estimator.observe bare ~sends:100 ~duplications:20 ~deletions:5 ();
  Estimator.observe corrected ~to_dead:2 ~churn_edges_added:10
    ~churn_edges_removed:2 ~sends:100 ~duplications:20 ~deletions:5 ();
  Alcotest.(check (float 1e-9)) "bare inversion" 0.15 (Estimator.estimate bare);
  Alcotest.(check (float 1e-9)) "ledger-corrected inversion" 0.17
    (Estimator.estimate corrected);
  (* End to end on the sharded engine under bursty loss and churn. *)
  let config = Protocol.make_config ~view_size:16 ~lower_threshold:4 in
  let w =
    Runner.Sharded.create ~shards:8 ~seed:31 ~n:2_000 ~config
      ~scenario:(scenario_of_string "ge:0.2:8")
      ~churn:{ Runner.Sharded.churn_rate = 0.01; headroom = 256 }
      ~resilience:(Policy.observe_only ()) ()
  in
  Runner.Sharded.run_rounds w ~domains:2 300;
  let wc = Runner.Sharded.world_counters w in
  let truth =
    float_of_int wc.Runner.messages_lost /. float_of_int (max 1 wc.Runner.sends)
  in
  match Runner.Sharded.resilience_statistics w with
  | None -> Alcotest.fail "resilience statistics missing"
  | Some rs ->
    Alcotest.(check bool) "estimator folded windows" true
      rs.Runner.estimator_confident;
    Alcotest.(check bool)
      (Fmt.str "churn: estimate %.4f within 0.03 of measured loss %.4f"
         rs.Runner.loss_estimate truth)
      true
      (Float.abs (rs.Runner.loss_estimate -. truth) <= 0.03)

(* --- End-to-end adaptive retuning under the audit --- *)

let test_retune_e2e_audited () =
  let policy =
    Policy.make ~recover:false ~estimator_window:1000 ~cooldown:5
      ~solve:(solve_63 ~d_hat:8 ~delta:0.01) ()
  in
  let scenario = scenario_of_string "ge:0.25:6" in
  let r =
    make_runner ~scenario ?resilience:(Some policy) ~loss:0.01 ~seed:240 ()
  in
  let stats = Invariant.audited_run ~mode:Invariant.Warn r ~rounds:150 in
  Alcotest.(check int) "no invariant violations while retuning" 0
    stats.Invariant.violation_count;
  (match Runner.resilience_statistics r with
  | None -> Alcotest.fail "resilience statistics missing"
  | Some rs ->
    Alcotest.(check bool) "the controller retuned at least once" true
      (rs.Runner.retunes >= 1));
  (* At least one node now runs thresholds different from the base config,
     and every live config is protocol-valid. *)
  let base = (6, 16) in
  let moved = ref false in
  Array.iter
    (fun node ->
      let c = Runner.node_config r node.Protocol.node_id in
      let dl = c.Protocol.lower_threshold and s = c.Protocol.view_size in
      if (dl, s) <> base then moved := true;
      Alcotest.(check bool)
        (Fmt.str "node %d config (%d, %d) valid" node.Protocol.node_id dl s)
        true
        (dl >= 0 && dl <= s - 6 && dl mod 2 = 0 && s mod 2 = 0 && s <= 16))
    (Runner.live_nodes r);
  Alcotest.(check bool) "some node was actually retuned" true !moved

(* --- Supervised recovery of a partition --- *)

let test_supervised_partition_recovery () =
  let policy =
    Policy.make ~retune:false ~solve:(solve_63 ~d_hat:8 ~delta:0.01) ()
  in
  (* Same configuration and seeds as the manual-recovery test in
     test_faults (there the 100-round partition provably splits the
     overlay and needs [Churn.recover_connectivity]); here the supervisor
     must do the whole job on its own. *)
  let config = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario = scenario_of_string "partition@5-105:2" in
  let topology = Topology.regular (Sf_prng.Rng.create 531) ~n ~out_degree:6 in
  let r =
    Runner.create ~scenario ~resilience:policy ~seed:530 ~n ~loss_rate:0.05
      ~config ~topology ()
  in
  Runner.run_rounds r 150;
  Alcotest.(check bool) "supervisor re-knit the overlay without manual recovery"
    true
    (Properties.is_weakly_connected r);
  match Runner.resilience_statistics r with
  | None -> Alcotest.fail "resilience statistics missing"
  | Some rs ->
    Alcotest.(check bool) "repairs were attempted" true (rs.Runner.repair_attempts >= 1);
    Alcotest.(check bool) "a recovery was confirmed" true (rs.Runner.recoveries >= 1)

(* --- Metrics surface --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_resil_metrics_exported () =
  let obs = Sf_obs.Obs.create () in
  let policy = Policy.make ~solve:(solve_63 ~d_hat:8 ~delta:0.01) () in
  let r = make_runner ~obs ?resilience:(Some policy) ~loss:0.15 ~seed:260 () in
  Runner.run_rounds r 60;
  let text = Sf_obs.Metrics.to_prometheus (Sf_obs.Obs.metrics obs) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Fmt.str "prometheus text contains %s" name) true
        (contains text name))
    [
      "resil_loss_estimate";
      "resil_loss_true";
      "resil_retunes_total";
      "resil_repair_attempts_total";
      "resil_recoveries_total";
      "resil_backoff_rounds";
    ]

let suite =
  [
    Alcotest.test_case "backoff is deterministic, capped, jittered" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "estimator window mechanics" `Quick test_estimator_windows;
    Alcotest.test_case "controller hysteresis/cooldown/budget" `Quick
      test_controller_guards;
    Alcotest.test_case "supervisor backoff schedule" `Quick test_supervisor_schedule;
    Alcotest.test_case "observe-only policy replays identically" `Slow
      test_observe_only_identity;
    Alcotest.test_case "estimator accuracy (i.i.d.)" `Slow test_estimator_accuracy_iid;
    Alcotest.test_case "estimator accuracy (Gilbert-Elliott)" `Slow
      test_estimator_accuracy_ge;
    Alcotest.test_case "estimator accuracy (1% churn, ledger-corrected)" `Slow
      test_estimator_accuracy_churn;
    Alcotest.test_case "adaptive retuning passes the audit" `Slow
      test_retune_e2e_audited;
    Alcotest.test_case "supervised partition recovery" `Slow
      test_supervised_partition_recovery;
    Alcotest.test_case "resil_* metrics exported" `Quick test_resil_metrics_exported;
  ]
