(* Runtime fault engine.  Holds the mutable state of a running scenario:
   the loss-process position, which windows are active, the boundary
   transitions not yet drained by the driver, and cause-resolved drop
   counters.  All randomness comes from the RNG passed to [judge], so the
   default scenario replays the exact pre-fault RNG stream. *)

type cause = Chance | Partitioned | Crashed

type verdict = Deliver | Corrupt_payload | Drop of cause

type stats = {
  judged : int;
  chance_drops : int;
  burst_drops : int;
  partition_drops : int;
  crash_drops : int;
  corruptions : int;
  fault_transitions : int;
}

type wstate = { window : Scenario.window; mutable active : bool }

(* Cause-resolved counters, registered once in the driver's metrics
   registry (a private registry when the driver passes none): each judge
   outcome is a single O(1) counter increment, exactly the cost of the
   mutable int fields these replaced. *)
type counters = {
  judged : Sf_obs.Metrics.counter;
  chance_drops : Sf_obs.Metrics.counter;
  burst_drops : Sf_obs.Metrics.counter;
  partition_drops : Sf_obs.Metrics.counter;
  crash_drops : Sf_obs.Metrics.counter;
  corruptions : Sf_obs.Metrics.counter;
  fault_transitions : Sf_obs.Metrics.counter;
}

type t = {
  scenario : Scenario.t;
  n : int;
  loss : Loss.t;
  windows : wstate array;
  c : counters;
  mutable clock : unit -> float;
  mutable pending : string list;  (* boundary transitions, newest first *)
}

let create ?metrics ~scenario ~n () =
  if n <= 0 then invalid_arg "Injector.create: need a positive population";
  List.iter Scenario.validate_window scenario.Scenario.windows;
  let m =
    match metrics with Some m -> m | None -> Sf_obs.Metrics.create ()
  in
  {
    scenario;
    n;
    loss = Loss.create scenario.Scenario.loss;
    windows =
      Array.of_list
        (List.map (fun w -> { window = w; active = false }) scenario.Scenario.windows);
    c =
      {
        judged = Sf_obs.Metrics.counter m "faults_judged";
        chance_drops = Sf_obs.Metrics.counter m "faults_chance_drops";
        burst_drops = Sf_obs.Metrics.counter m "faults_burst_drops";
        partition_drops = Sf_obs.Metrics.counter m "faults_partition_drops";
        crash_drops = Sf_obs.Metrics.counter m "faults_crash_drops";
        corruptions = Sf_obs.Metrics.counter m "faults_corruptions";
        fault_transitions = Sf_obs.Metrics.counter m "faults_transitions";
      };
    clock = (fun () -> 0.);
    pending = [];
  }

let set_clock t clock = t.clock <- clock

let scenario t = t.scenario

let refresh t =
  if Array.length t.windows > 0 then begin
    let now = t.clock () in
    Array.iter
      (fun ws ->
        let active = ws.window.Scenario.start <= now && now < ws.window.Scenario.stop in
        if active <> ws.active then begin
          ws.active <- active;
          Sf_obs.Metrics.incr t.c.fault_transitions;
          t.pending <-
            Fmt.str "%s:%s"
              (if active then "fault-start" else "fault-end")
              (Scenario.fault_kind ws.window.Scenario.fault)
            :: t.pending
        end)
      t.windows
  end

let transitions t =
  let drained = List.rev t.pending in
  t.pending <- [];
  drained

(* Partition block of an id: contiguous blocks of the initial id space;
   joiner ids beyond it wrap by [id mod n]. *)
let block t ~parts id =
  let id = ((id mod t.n) + t.n) mod t.n in
  min (parts - 1) (id * parts / t.n)

let is_crashed t id =
  refresh t;
  Array.exists
    (fun ws ->
      ws.active
      &&
      match ws.window.Scenario.fault with
      | Scenario.Crash { first; last } -> first <= id && id <= last
      | Scenario.Partition _ | Scenario.Delay _ | Scenario.Corrupt _ -> false)
    t.windows

let crash_active t =
  refresh t;
  Array.exists
    (fun ws ->
      ws.active
      && match ws.window.Scenario.fault with Scenario.Crash _ -> true | _ -> false)
    t.windows

let has_crash_windows t =
  Array.exists
    (fun ws ->
      match ws.window.Scenario.fault with Scenario.Crash _ -> true | _ -> false)
    t.windows

let partitioned t ~src ~dst =
  Array.exists
    (fun ws ->
      ws.active
      &&
      match ws.window.Scenario.fault with
      | Scenario.Partition { parts } ->
        src >= 0 && block t ~parts src <> block t ~parts dst
      | Scenario.Crash _ | Scenario.Delay _ | Scenario.Corrupt _ -> false)
    t.windows

let corruption_rate t =
  Array.fold_left
    (fun acc ws ->
      if ws.active then
        match ws.window.Scenario.fault with
        | Scenario.Corrupt { rate } -> Float.max acc rate
        | _ -> acc
      else acc)
    0. t.windows

let delay_factor t =
  refresh t;
  Array.fold_left
    (fun acc ws ->
      if ws.active then
        match ws.window.Scenario.fault with
        | Scenario.Delay { factor } -> acc *. factor
        | _ -> acc
      else acc)
    1. t.windows

let judge t rng ~chance ~src ~dst =
  refresh t;
  Sf_obs.Metrics.incr t.c.judged;
  if is_crashed t src || is_crashed t dst then begin
    Sf_obs.Metrics.incr t.c.crash_drops;
    Drop Crashed
  end
  else if partitioned t ~src ~dst then begin
    Sf_obs.Metrics.incr t.c.partition_drops;
    Drop Partitioned
  end
  else if Loss.drop t.loss rng ~chance ~src ~dst then begin
    Sf_obs.Metrics.incr t.c.chance_drops;
    if Loss.in_burst t.loss then Sf_obs.Metrics.incr t.c.burst_drops;
    Drop Chance
  end
  else
    let rate = corruption_rate t in
    if rate > 0. && Sf_prng.Rng.bernoulli rng rate then begin
      Sf_obs.Metrics.incr t.c.corruptions;
      Corrupt_payload
    end
    else Deliver

let statistics t : stats =
  let count = Sf_obs.Metrics.count in
  {
    judged = count t.c.judged;
    chance_drops = count t.c.chance_drops;
    burst_drops = count t.c.burst_drops;
    partition_drops = count t.c.partition_drops;
    crash_drops = count t.c.crash_drops;
    corruptions = count t.c.corruptions;
    fault_transitions = count t.c.fault_transitions;
  }
