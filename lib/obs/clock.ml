(* The single ambient time source in the whole tree.

   Every other module takes an *injected* clock — a [unit -> float]
   argument or a virtual clock such as [Sf_engine.Sim.now] — so that
   simulations replay deterministically from a seed.  Code that genuinely
   needs real time (the UDP cluster's default timers, bench section
   timing, span profiling of wall-clock cost) obtains it from here, which
   keeps the wall-clock dependence auditable: the sf_lint
   [clock-discipline] rule forbids [Unix.gettimeofday]/[Sys.time]
   everywhere except this file. *)

let wall = Unix.gettimeofday

(* Per-process CPU seconds: immune to preemption by other processes, so
   overhead ratios measured with it are stable on shared or single-core
   machines where wall time is not. *)
let cpu = Sys.time

(* A stopwatch over an arbitrary clock: returns a thunk yielding seconds
   (or whatever unit [clock] ticks in) since creation.  With [wall] this is
   the bench harness's section timer; with a virtual clock it measures
   simulated time spans. *)
let stopwatch ~clock =
  let t0 = clock () in
  fun () -> clock () -. t0

(* Peak resident set size, from the kernel's high-water mark (VmHWM in
   /proc/self/status).  Process introspection, not time, but it lives with
   the other ambient process probes so the rest of the tree stays pure.
   [None] where /proc is absent or unparseable (non-Linux). *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec find () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.sub line 6 (String.length line - 6)
              |> String.trim
              |> String.split_on_char ' '
              |> fun parts ->
              (match parts with
              | kb :: _ -> int_of_string_opt kb
              | [] -> None)
            else find ()
        in
        find ())
