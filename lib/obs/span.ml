(* Span timers: profile a named hot section into a per-span histogram.

   The clock is injected at creation — [Sf_obs.Clock.wall] when profiling
   real cost (bench, the UDP cluster), a virtual clock when measuring
   simulated time — so the library itself stays clock-free and
   lint-clean.  [time] costs two clock samples and one histogram update
   per section, cheap enough to leave enabled on hot paths. *)

type t = { clock : unit -> float; hist : Metrics.histogram }

let create ~clock metrics name = { clock; hist = Metrics.histogram metrics name }

let of_histogram ~clock hist = { clock; hist }

let histogram t = t.hist

let time t f =
  let t0 = t.clock () in
  Fun.protect ~finally:(fun () -> Metrics.observe t.hist (t.clock () -. t0)) f

let observe_duration t d = Metrics.observe t.hist d
