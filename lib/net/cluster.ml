(* A real deployment of S&F over UDP: every node owns a datagram socket
   bound to 127.0.0.1 on its own port, messages travel as actual datagrams,
   and nodes initiate on jittered periodic timers — the "practical
   implementation" the paper sketches in section 5, running on a real
   network stack instead of the discrete-event simulator.

   The driver multiplexes all node sockets in one process with
   [Unix.select]: wait for readable sockets or the next timer, drain
   datagrams (sockets are non-blocking), decode and run the receive step,
   then run the initiate steps that have come due.  Send-side loss
   injection keeps loss experiments controlled even though loopback UDP
   rarely drops on its own.

   An optional fault scenario (lib/faults) generalizes the send-side loss
   draw exactly as in the simulator: stateful loss processes, partitions,
   crashes, delay spikes and datagram corruption, all driven by the same
   [Sf_faults.Scenario] value a simulation uses.  The cluster's round clock
   is elapsed time over the firing period.  Without a scenario the send
   path performs the historical single Bernoulli draw per datagram.

   Fire-and-forget UDP matches S&F's assumptions exactly: no connection
   state, no retransmission, the sender never learns whether the message
   arrived. *)

(* Per-node resilience state (lib/resilience): each node runs its own loss
   estimator over its own protocol counters — a deployed node has nobody
   else's — and its own threshold controller. *)
type node_resil = {
  estimator : Sf_resil.Estimator.t;
  controller : Sf_resil.Controller.t;
  mutable last_sent : int;  (* counter baselines for estimator deltas *)
  mutable last_duplications : int;
  mutable last_deletions : int;
}

type node_state = {
  node : Sf_core.Protocol.node;
  (* Mutable: a crash-restart closes the socket for the duration of the
     window and rebinds a fresh one on the same port at resume. *)
  mutable socket : Unix.file_descr;
  mutable next_fire : float;
  (* The node's current thresholds; starts at the cluster config and
     diverges under adaptive retuning. *)
  mutable config : Sf_core.Protocol.config;
  resil : node_resil option;
  (* Crash-restart bookkeeping (resilience mode only). *)
  mutable down : bool;       (* socket closed by an active crash window *)
  mutable snapshot : int list;  (* bounded view snapshot taken at crash *)
}

(* A datagram held back by an active delay window: release time, sending
   socket, wire bytes, destination. *)
type delayed_datagram = {
  release_at : float;
  via : Unix.file_descr;
  packet : bytes;
  target : Unix.sockaddr;
}

type t = {
  base_port : int;
  period : float;
  loss_rate : float;
  (* Injected clock: tests drive virtual time; production uses
     [Sf_obs.Clock.wall] — the tree's single sanctioned wall-clock
     source. *)
  now : unit -> float;
  started : float;  (* clock reading at creation; trace stamps are rounds
                       since then, matching the injector's round clock *)
  rng : Sf_prng.Rng.t;
  injector : Sf_faults.Injector.t option;
  resilience : Sf_resil.Policy.t option;
  nodes : node_state array;
  (* Bumped whenever a socket is closed or rebound, so the run loop knows
     to rebuild its select set. *)
  mutable socket_generation : int;
  read_buffer : bytes;
  obs : Sf_obs.Obs.t;
  (* Registry counters (one O(1) increment each, the same cost as the
     mutable int fields they replaced); [statistics] reads them back. *)
  c_sent : Sf_obs.Metrics.counter;
  c_dropped : Sf_obs.Metrics.counter;  (* injected loss (any fault cause) *)
  c_received : Sf_obs.Metrics.counter;
  c_corrupted : Sf_obs.Metrics.counter;
  c_delayed : Sf_obs.Metrics.counter;
  c_crash_dropped : Sf_obs.Metrics.counter;
  c_oversized : Sf_obs.Metrics.counter;
  c_truncated : Sf_obs.Metrics.counter;
  c_decode_errors : Sf_obs.Metrics.counter;
  c_send_errors : Sf_obs.Metrics.counter;
  c_rejoins : Sf_obs.Metrics.counter;  (* crash-restart rejoin recoveries *)
  c_retunes : Sf_obs.Metrics.counter;  (* per-node threshold retunes *)
  (* Codec profiling, timed with the injected clock. *)
  encode_span : Sf_obs.Span.t;
  decode_span : Sf_obs.Span.t;
  mutable delayed : delayed_datagram list;
  mutable next_serial : int;
  mutable actions : int;
}

let address_of t node_id =
  Unix.ADDR_INET (Unix.inet_addr_loopback, t.base_port + node_id)

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let create ?(period = 0.01) ?(now = Sf_obs.Clock.wall) ?scenario ?obs ?resilience
    ~base_port ~n ~config ~loss_rate ~seed ~topology () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one node";
  if base_port < 1024 || base_port + n > 65_535 then
    invalid_arg "Cluster.create: port range out of bounds";
  let rng = Sf_prng.Rng.create seed in
  let obs = match obs with Some o -> o | None -> Sf_obs.Obs.create () in
  let metrics = Sf_obs.Obs.metrics obs in
  let injector =
    Option.map
      (fun sc -> Sf_faults.Injector.create ~metrics ~scenario:sc ~n ())
      scenario
  in
  let start = now () in
  let t =
    {
      base_port;
      period;
      loss_rate;
      now;
      started = start;
      rng;
      injector;
      resilience;
      nodes = [||];
      socket_generation = 0;
      read_buffer = Bytes.create Codec.recv_buffer_size;
      obs;
      c_sent = Sf_obs.Metrics.counter metrics "cluster_datagrams_sent";
      c_dropped = Sf_obs.Metrics.counter metrics "cluster_datagrams_dropped";
      c_received = Sf_obs.Metrics.counter metrics "cluster_datagrams_received";
      c_corrupted = Sf_obs.Metrics.counter metrics "cluster_datagrams_corrupted";
      c_delayed = Sf_obs.Metrics.counter metrics "cluster_datagrams_delayed";
      c_crash_dropped =
        Sf_obs.Metrics.counter metrics "cluster_datagrams_crash_dropped";
      c_oversized = Sf_obs.Metrics.counter metrics "cluster_datagrams_oversized";
      c_truncated = Sf_obs.Metrics.counter metrics "cluster_datagrams_truncated";
      c_decode_errors = Sf_obs.Metrics.counter metrics "cluster_decode_errors";
      c_send_errors = Sf_obs.Metrics.counter metrics "cluster_send_errors";
      c_rejoins = Sf_obs.Metrics.counter metrics "cluster_rejoins";
      c_retunes = Sf_obs.Metrics.counter metrics "cluster_retunes";
      encode_span = Sf_obs.Span.create ~clock:now metrics "codec_encode_seconds";
      decode_span = Sf_obs.Span.create ~clock:now metrics "codec_decode_seconds";
      delayed = [];
      next_serial = 0;
      actions = 0;
    }
  in
  (* One round of the scenario clock = one firing period elapsed. *)
  Option.iter
    (fun inj ->
      Sf_faults.Injector.set_clock inj (fun () -> (now () -. start) /. period))
    injector;
  (* Track every socket opened so far: if node k's bind (or anything after
     it) fails, the k sockets already open must not leak. *)
  let opened = ref [] in
  let make_node node_id =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    opened := socket :: !opened;
    Unix.set_nonblock socket;
    Unix.setsockopt socket Unix.SO_REUSEADDR true;
    Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + node_id));
    let node = Sf_core.Protocol.create_node ~config ~node_id in
    List.iter
      (fun v ->
        match Sf_core.View.random_empty_slot node.Sf_core.Protocol.view rng with
        | None -> invalid_arg "Cluster.create: topology exceeds view size"
        | Some slot ->
          Sf_core.View.set node.Sf_core.Protocol.view slot
            { Sf_core.View.id = v; serial = fresh_serial t; anchor = None; born = 0 })
      (topology node_id);
    {
      node;
      socket;
      (* Stagger first firings across one period. *)
      next_fire = start +. (period *. Sf_prng.Rng.float rng);
      config;
      resil =
        Option.map
          (fun policy ->
            {
              estimator = Sf_resil.Policy.estimator policy;
              controller =
                Sf_resil.Policy.controller policy
                  ~initial:
                    ( config.Sf_core.Protocol.lower_threshold,
                      config.Sf_core.Protocol.view_size )
                  ~capacity:config.Sf_core.Protocol.view_size;
              last_sent = 0;
              last_duplications = 0;
              last_deletions = 0;
            })
          resilience;
      down = false;
      snapshot = [];
    }
  in
  match Array.init n make_node with
  | nodes -> { t with nodes }
  | exception e ->
    List.iter
      (fun socket -> try Unix.close socket with Unix.Unix_error _ -> ())
      !opened;
    raise e

let node_count t = Array.length t.nodes

let shutdown t =
  Array.iter
    (fun ns -> try Unix.close ns.socket with Unix.Unix_error _ -> ())
    t.nodes

let is_crashed t node_id =
  match t.injector with
  | None -> false
  | Some injector -> Sf_faults.Injector.is_crashed injector node_id

(* Trace stamps are rounds since creation — the same unit as the
   injector's round clock, and derived from the injected [now] so
   virtual-clock tests stay deterministic. *)
let trace t event =
  if Sf_obs.Obs.tracing t.obs then
    Sf_obs.Obs.trace t.obs ~now:((t.now () -. t.started) /. t.period) event

(* A signal landing mid-sendto must not cost the datagram: retry on EINTR
   (the kernel sent nothing), count everything else as a send error —
   including ECONNREFUSED, which on loopback means a previous datagram
   bounced off a closed (crashed) port. *)
let rec transmit t ~via ~packet ~target =
  try ignore (Unix.sendto via packet 0 (Bytes.length packet) [] target) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> transmit t ~via ~packet ~target
  | Unix.Unix_error _ -> Sf_obs.Metrics.incr t.c_send_errors

(* Clamp a controller target (dL, s) to this node: s never drops below the
   current outdegree (nothing is evicted; the receive rule stops accepting
   until decay catches up) nor rises above the allocated view, and dL must
   stay a valid even value in [0, s - 6]. *)
let clamped_config ~capacity ~degree (dl, s) =
  let even_up x = if x land 1 = 0 then x else x + 1 in
  let s = min capacity (max s (max 6 (even_up degree))) in
  let dl = max 0 (min dl (s - 6)) in
  let dl = if dl land 1 = 0 then dl else dl - 1 in
  Sf_core.Protocol.make_config ~view_size:s ~lower_threshold:dl

(* Per-node resilience tick, run after each initiation: feed the node's
   estimator from its own counters, and let its controller walk (dL, s)
   toward the section 6.3 solution for the estimated loss.  The
   controller's cooldown is counted in these ticks, i.e. in firings. *)
let resil_tick t (ns : node_state) =
  match ns.resil with
  | None -> ()
  | Some nr ->
    let node = ns.node in
    let sent = node.Sf_core.Protocol.messages_sent in
    let dups = node.Sf_core.Protocol.duplications in
    let dels = node.Sf_core.Protocol.deletions in
    Sf_resil.Estimator.observe nr.estimator ~sends:(sent - nr.last_sent)
      ~duplications:(dups - nr.last_duplications)
      ~deletions:(dels - nr.last_deletions) ();
    nr.last_sent <- sent;
    nr.last_duplications <- dups;
    nr.last_deletions <- dels;
    match t.resilience with
    | Some policy
      when policy.Sf_resil.Policy.retune
           && Sf_resil.Estimator.confident nr.estimator -> (
      match
        Sf_resil.Controller.decide nr.controller
          ~loss:(Sf_resil.Estimator.estimate nr.estimator)
      with
      | None -> ()
      | Some pair ->
        ns.config <-
          clamped_config
            ~capacity:(Sf_core.View.size node.Sf_core.Protocol.view)
            ~degree:(Sf_core.Protocol.degree node) pair;
        Sf_obs.Metrics.incr t.c_retunes;
        trace t (Sf_obs.Trace.Mark { label = "retune" }))
    | _ -> ()

(* One initiate step at [ns]; the message goes out as a datagram unless the
   loss draw — or an active fault window — eats it. *)
let fire t ns =
  t.actions <- t.actions + 1;
  trace t (Sf_obs.Trace.Timer { node = ns.node.Sf_core.Protocol.node_id });
  match
    Sf_core.Protocol.initiate ns.config t.rng ~fresh_serial:(fun () -> fresh_serial t)
      ~clock:t.actions ns.node
  with
  | Sf_core.Protocol.Self_loop -> ()
  | Sf_core.Protocol.Send { destination; message; duplicated } -> (
    let src = ns.node.Sf_core.Protocol.node_id in
    Sf_obs.Metrics.incr t.c_sent;
    trace t (Sf_obs.Trace.Send { src; dst = destination; duplicated });
    let verdict =
      match t.injector with
      | None ->
        if Sf_prng.Rng.bernoulli t.rng t.loss_rate then `Drop else `Deliver
      | Some injector -> (
        match
          Sf_faults.Injector.judge injector t.rng ~chance:t.loss_rate ~src
            ~dst:destination
        with
        | Sf_faults.Injector.Deliver -> `Deliver
        | Sf_faults.Injector.Corrupt_payload -> `Corrupt
        | Sf_faults.Injector.Drop _ -> `Drop)
    in
    match verdict with
    | `Drop ->
      Sf_obs.Metrics.incr t.c_dropped;
      trace t (Sf_obs.Trace.Drop { src; dst = destination; cause = "injected" })
    | (`Deliver | `Corrupt) as fate ->
      if destination >= 0 && destination < Array.length t.nodes then begin
        let packet = Sf_obs.Span.time t.encode_span (fun () -> Codec.encode message) in
        (match fate with
        | `Corrupt ->
          (* Flip the magic byte: real corrupted bytes on the wire, which
             the receiving codec rejects — the datagram is spent but the
             error path is exercised. *)
          Sf_obs.Metrics.incr t.c_corrupted;
          Bytes.set packet 0
            (Char.chr (Char.code (Bytes.get packet 0) lxor 0xff))
        | `Deliver -> ());
        let delay_factor =
          match t.injector with
          | None -> 1.0
          | Some injector -> Sf_faults.Injector.delay_factor injector
        in
        if delay_factor > 1.0 then begin
          (* Loopback latency is negligible, so a delay window holds the
             datagram for [factor] firing periods instead. *)
          Sf_obs.Metrics.incr t.c_delayed;
          t.delayed <-
            {
              release_at = t.now () +. (delay_factor *. t.period);
              via = ns.socket;
              packet;
              target = address_of t destination;
            }
            :: t.delayed
        end
        else transmit t ~via:ns.socket ~packet ~target:(address_of t destination)
      end)

let flush_delayed t ~now =
  match t.delayed with
  | [] -> ()
  | delayed ->
    let due, pending = List.partition (fun d -> d.release_at <= now) delayed in
    t.delayed <- pending;
    (* The list is newest-first; release oldest-first. *)
    List.iter
      (fun d -> transmit t ~via:d.via ~packet:d.packet ~target:d.target)
      (List.rev due)

(* Drain every pending datagram on a readable socket.  A crashed receiver
   discards instead of processing: messages arriving during the window are
   lost, not queued for the resume. *)
let drain t ns =
  let continue = ref true in
  while !continue do
    match Unix.recvfrom ns.socket t.read_buffer 0 (Bytes.length t.read_buffer) [] with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* Linux loopback: a pending ICMP port-unreachable (our earlier
         datagram to a crashed node's closed port) can surface here; it
         carries no datagram, so keep draining. *)
      ()
    | length, _from ->
      let dst = ns.node.Sf_core.Protocol.node_id in
      if is_crashed t dst then begin
        Sf_obs.Metrics.incr t.c_crash_dropped;
        trace t (Sf_obs.Trace.Drop { src = -1; dst; cause = "crash" })
      end
      else begin
        Sf_obs.Metrics.incr t.c_received;
        if length > Codec.message_size then
          (* Only possible for foreign traffic: our codec never produces
             it, and the buffer headroom makes it observable. *)
          Sf_obs.Metrics.incr t.c_oversized
        else
          match
            Sf_obs.Span.time t.decode_span (fun () ->
                Codec.decode t.read_buffer ~length)
          with
          | Ok message ->
            trace t (Sf_obs.Trace.Deliver { dst; accepted = true });
            ignore (Sf_core.Protocol.receive ns.config t.rng ns.node message)
          | Error (Codec.Too_short _) ->
            Sf_obs.Metrics.incr t.c_truncated;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
          | Error _ ->
            Sf_obs.Metrics.incr t.c_decode_errors;
            trace t (Sf_obs.Trace.Deliver { dst; accepted = false })
      end
  done

(* --- Crash-restart with state recovery (resilience mode only) ---

   Without resilience a crash window only freezes the node (timers skip,
   arrivals are discarded) — the socket stays bound and the view survives,
   which models a paused process.  With resilience the crash is real:
   entering the window saves a bounded snapshot of the view (up to dL ids,
   the same bound the section 5 joining rule donates) and closes the
   socket, so in-flight datagrams bounce off a dead port; leaving it
   rebinds a fresh socket on the same port and rejoins by reinstalling the
   snapshot as fresh instances — falling back to copying a live
   neighbour's view (the paper's "copy another node's view" rule) when the
   snapshot is empty. *)

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let crash_down t (ns : node_state) =
  let keep = max 2 ns.config.Sf_core.Protocol.lower_threshold in
  ns.snapshot <- take keep (Sf_core.View.ids ns.node.Sf_core.Protocol.view);
  (try Unix.close ns.socket with Unix.Unix_error _ -> ());
  ns.down <- true;
  t.socket_generation <- t.socket_generation + 1;
  trace t (Sf_obs.Trace.Mark { label = "crash_down" })

let rejoin t (ns : node_state) =
  let node_id = ns.node.Sf_core.Protocol.node_id in
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock socket;
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, t.base_port + node_id));
  ns.socket <- socket;
  (* Ids to rejoin with: the crash snapshot, else a live neighbour's view. *)
  let donor_ids () =
    let n = Array.length t.nodes in
    let rec pick tries =
      if tries = 0 then []
      else
        let candidate = t.nodes.(Sf_prng.Rng.int t.rng n) in
        if candidate.node.Sf_core.Protocol.node_id <> node_id && not candidate.down
        then
          candidate.node.Sf_core.Protocol.node_id
          :: List.filter
               (fun id -> id <> node_id)
               (Sf_core.View.ids candidate.node.Sf_core.Protocol.view)
        else pick (tries - 1)
    in
    pick 8
  in
  let ids = match ns.snapshot with [] -> donor_ids () | ids -> ids in
  let view = ns.node.Sf_core.Protocol.view in
  Sf_core.View.clear_all view;
  let keep = max 2 ns.config.Sf_core.Protocol.lower_threshold in
  let ids = take (min keep (Sf_core.View.size view)) ids in
  (* Even outdegree on rejoin (Observation 5.1): keep the even prefix. *)
  let ids = take (List.length ids land lnot 1) ids in
  List.iteri
    (fun slot id ->
      Sf_core.View.set view slot
        { Sf_core.View.id; serial = fresh_serial t; anchor = None; born = t.actions })
    ids;
  ns.down <- false;
  ns.snapshot <- [];
  t.socket_generation <- t.socket_generation + 1;
  Sf_obs.Metrics.incr t.c_rejoins;
  trace t (Sf_obs.Trace.Mark { label = "rejoin" })

let sync_crash_states t =
  if Option.is_some t.resilience then
    Array.iter
      (fun ns ->
        let crashed = is_crashed t ns.node.Sf_core.Protocol.node_id in
        if crashed && not ns.down then crash_down t ns
        else if (not crashed) && ns.down then rejoin t ns)
      t.nodes

(* Run the cluster for [duration] wall-clock seconds. *)
let run t ~duration =
  let deadline = t.now () +. duration in
  (* The select set excludes crashed (closed) sockets and is rebuilt
     whenever a crash-restart closes or rebinds one. *)
  let select_set () =
    let by_socket = Hashtbl.create (Array.length t.nodes) in
    let sockets =
      Array.to_list t.nodes
      |> List.filter_map (fun ns ->
             if ns.down then None
             else begin
               Hashtbl.replace by_socket ns.socket ns;
               Some ns.socket
             end)
    in
    (sockets, by_socket)
  in
  let generation = ref t.socket_generation in
  let index = ref (select_set ()) in
  let rec loop () =
    let now = t.now () in
    if now >= deadline then ()
    else begin
      (match t.injector with
      | None -> ()
      | Some injector -> Sf_faults.Injector.refresh injector);
      sync_crash_states t;
      if t.socket_generation <> !generation then begin
        generation := t.socket_generation;
        index := select_set ()
      end;
      flush_delayed t ~now;
      (* Fire all due timers, rescheduling with jitter.  A crashed node
         skips its initiation but keeps its timer running, so it resumes —
         restored from its snapshot (resilience) or with its stale view —
         when the window closes. *)
      Array.iter
        (fun ns ->
          if ns.next_fire <= now then begin
            if not (is_crashed t ns.node.Sf_core.Protocol.node_id) then begin
              fire t ns;
              resil_tick t ns
            end;
            ns.next_fire <-
              now +. (t.period *. (0.9 +. (0.2 *. Sf_prng.Rng.float t.rng)))
          end)
        t.nodes;
      let next_timer =
        Array.fold_left (fun acc ns -> Float.min acc ns.next_fire) infinity t.nodes
      in
      let next_release =
        List.fold_left (fun acc d -> Float.min acc d.release_at) infinity t.delayed
      in
      let next_event = Float.min next_timer next_release in
      let timeout = Float.max 0. (Float.min (next_event -. now) (deadline -. now)) in
      let sockets, by_socket = !index in
      (* EINTR: a signal (SIGALRM, SIGCHLD, a profiler tick) interrupting
         the wait is routine, not an error; EAGAIN is how some kernels
         report a transient resource squeeze on select.  Both mean "try
         again" — the deadline check at the loop head bounds the retry. *)
      match Unix.select sockets [] [] timeout with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun socket ->
            match Hashtbl.find_opt by_socket socket with
            | Some ns -> drain t ns
            | None -> ())
          readable;
        loop ()
    end
  in
  loop ()

(* --- Measurement (mirrors the simulator's monitors) --- *)

let views t =
  Array.to_seq t.nodes
  |> Seq.map (fun ns -> (ns.node.Sf_core.Protocol.node_id, ns.node.Sf_core.Protocol.view))

let outdegree_summary t =
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun ns -> Sf_stats.Summary.add_int summary (Sf_core.Protocol.degree ns.node))
    t.nodes;
  summary

let independence_census t = Sf_core.Census.of_views (views t)

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun ns ->
      Sf_graph.Digraph.ensure_vertex g ns.node.Sf_core.Protocol.node_id;
      Sf_core.View.iter
        (fun _ e ->
          Sf_graph.Digraph.add_edge g ns.node.Sf_core.Protocol.node_id e.Sf_core.View.id)
        ns.node.Sf_core.Protocol.view)
    t.nodes;
  g

let is_weakly_connected t = Sf_graph.Digraph.is_weakly_connected (membership_graph t)

let fault_statistics t = Option.map Sf_faults.Injector.statistics t.injector

type statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;
  datagrams_received : int;
  datagrams_corrupted : int;
  datagrams_delayed : int;
  datagrams_crash_dropped : int;
  datagrams_oversized : int;
  datagrams_truncated : int;
  decode_errors : int;
  send_errors : int;
  rejoins : int;
  retunes : int;
}

let statistics (t : t) =
  let count = Sf_obs.Metrics.count in
  {
    actions = t.actions;
    datagrams_sent = count t.c_sent;
    datagrams_dropped = count t.c_dropped;
    datagrams_received = count t.c_received;
    datagrams_corrupted = count t.c_corrupted;
    datagrams_delayed = count t.c_delayed;
    datagrams_crash_dropped = count t.c_crash_dropped;
    datagrams_oversized = count t.c_oversized;
    datagrams_truncated = count t.c_truncated;
    decode_errors = count t.c_decode_errors;
    send_errors = count t.c_send_errors;
    rejoins = count t.c_rejoins;
    retunes = count t.c_retunes;
  }

let obs t = t.obs
