(* Adaptive (dL, s) threshold controller.

   Section 6.3 of the paper derives the duplication threshold dL and the
   view size s from a target expected outdegree and a *known* loss rate;
   section 7 shows why a drifting loss rate matters (spatial independence
   degrades as alpha >= 1 - 2(loss + delta)).  This controller closes the
   loop online: given a loss estimate (lib/resilience/estimator.ml), it
   periodically re-solves the 6.3 rule and walks the live thresholds
   toward the solution.

   The 6.3 solver itself lives in lib/analysis (which depends on
   sf_core); to keep this library below sf_core in the dependency order,
   the solver arrives as an injected [solve] callback — drivers wire it to
   [Sf_analysis.Thresholds.select_lossy] (or any policy of the same
   shape).

   Three guards keep i.i.d. noise from thrashing views:

   - *hysteresis*: no retune until the estimate has moved at least
     [hysteresis] away from the loss the current thresholds were solved
     for;
   - *cooldown*: at least [cooldown] decision ticks between retunes;
   - *budget*: each retune moves dL and s by at most [max_step] slots and
     never leaves the configured [min,max] windows, so one noisy estimate
     cannot teleport the protocol into a foreign regime.

   The controller consumes no randomness and never touches views: it only
   emits target pairs; drivers apply them per node. *)

type limits = {
  min_lower : int;
  max_lower : int;
  min_view : int;
  max_view : int;  (* never above the allocated view capacity *)
}

type t = {
  solve : loss:float -> int * int;  (* section 6.3 rule: loss -> (dL, s) *)
  hysteresis : float;
  cooldown : int;
  max_step : int;
  limits : limits;
  mutable current : int * int;
  mutable anchor_loss : float;  (* loss the current pair was solved for *)
  mutable ticks : int;
  mutable last_retune : int;
  mutable retunes : int;
}

let even x = x land 1 = 0

let validate_limits l =
  if not (even l.min_lower && even l.max_lower && even l.min_view && even l.max_view)
  then invalid_arg "Controller.create: limits must be even";
  if l.min_lower < 0 || l.max_lower < l.min_lower then
    invalid_arg "Controller.create: need 0 <= min_lower <= max_lower";
  if l.min_view < 6 || l.max_view < l.min_view then
    invalid_arg "Controller.create: need 6 <= min_view <= max_view"

let create ?(hysteresis = 0.02) ?(cooldown = 10) ?(max_step = 4) ~solve ~limits
    ~initial () =
  validate_limits limits;
  if hysteresis < 0. then invalid_arg "Controller.create: negative hysteresis";
  if cooldown < 0 then invalid_arg "Controller.create: negative cooldown";
  if max_step < 2 || not (even max_step) then
    invalid_arg "Controller.create: max_step must be even and >= 2";
  let dl, s = initial in
  if not (even dl && even s) then
    invalid_arg "Controller.create: initial thresholds must be even";
  {
    solve;
    hysteresis;
    cooldown;
    max_step;
    limits;
    current = initial;
    anchor_loss = 0.;
    ticks = 0;
    last_retune = min_int / 2;
    retunes = 0;
  }

let current t = t.current
let retunes t = t.retunes
let anchor_loss t = t.anchor_loss

let clamp ~lo ~hi x = max lo (min hi x)

(* One budgeted move of the live pair toward the solver's target. *)
let step_toward t (target_dl, target_s) =
  let dl, s = t.current in
  let l = t.limits in
  let s' =
    clamp ~lo:l.min_view ~hi:l.max_view
      (s + clamp ~lo:(-t.max_step) ~hi:t.max_step (target_s - s))
  in
  let dl' =
    clamp ~lo:l.min_lower ~hi:l.max_lower
      (dl + clamp ~lo:(-t.max_step) ~hi:t.max_step (target_dl - dl))
  in
  (* Protocol validity: 0 <= dL <= s - 6 (Protocol.make_config). *)
  let dl' = clamp ~lo:0 ~hi:(s' - 6) dl' in
  (dl', s')

let decide t ~loss =
  t.ticks <- t.ticks + 1;
  if Float.abs (loss -. t.anchor_loss) < t.hysteresis then None
  else if t.ticks - t.last_retune < t.cooldown then None
  else begin
    let target = t.solve ~loss in
    (* Anchor on every solve: when the budget walls the pair in (or the
       solver returns the current pair), re-solving each tick for the same
       estimate would be pure churn. *)
    t.anchor_loss <- loss;
    let proposed = step_toward t target in
    if proposed = t.current then None
    else begin
      t.current <- proposed;
      t.retunes <- t.retunes + 1;
      t.last_retune <- t.ticks;
      Some proposed
    end
  end
