(** Runtime fault engine: evaluates a {!Scenario} against a driver clock
    and answers, per message, whether it is delivered, dropped (and why) or
    corrupted — plus whether a node is currently crashed and how much extra
    latency is in force.

    One injector instance is shared by a driver's send path
    ({!Sf_engine.Network} or {!Sf_net.Cluster}) and its scheduler
    ({!Sf_core.Runner} or the cluster timer loop), so every component sees
    the same fault state.

    {b Determinism.}  The injector owns no randomness: {!judge} draws from
    the RNG the caller passes (the driver's network RNG).  Under
    {!Scenario.default} it performs exactly one Bernoulli draw per send at
    the driver's configured rate — the pre-fault-layer RNG stream,
    byte-for-byte.  Window activation consumes no randomness. *)

type cause =
  | Chance       (** the loss process (i.i.d. draw or Gilbert–Elliott burst) *)
  | Partitioned  (** source and destination sit in different partition blocks *)
  | Crashed      (** source or destination is inside an active crash window *)

type verdict =
  | Deliver
  | Corrupt_payload
      (** deliver a corrupted payload: the cluster flips datagram bytes (the
          codec rejects them at the receiver); the simulator, whose messages
          never leave memory, counts the message as an undecodable drop *)
  | Drop of cause

type stats = {
  judged : int;           (** messages submitted to {!judge} *)
  chance_drops : int;
  burst_drops : int;      (** subset of [chance_drops] drawn in a Bad state *)
  partition_drops : int;
  crash_drops : int;
  corruptions : int;
  fault_transitions : int;  (** window activations + deactivations seen *)
}

type t

val create : ?metrics:Sf_obs.Metrics.t -> scenario:Scenario.t -> n:int -> unit -> t
(** [n] is the initial population size, used to map ids onto partition
    blocks.  The clock defaults to a constant [0.]; drivers must call
    {!set_clock} before running.  [metrics] is the registry receiving the
    [faults_*] counters ({!statistics} reads them back); a private registry
    is used when omitted. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the driver's round clock (see {!Scenario} for the unit). *)

val scenario : t -> Scenario.t

val refresh : t -> unit
(** Re-evaluate window activity at the current clock.  Called implicitly by
    every query below; drivers may also call it between sends so boundary
    transitions surface promptly. *)

val transitions : t -> string list
(** Drain the log of boundary crossings since the last call (oldest first),
    e.g. ["fault-start:partition"].  Drivers forward these as structural
    audit events so {!Sf_check.Invariant} resyncs its conservation baseline
    at fault boundaries. *)

val judge : t -> Sf_prng.Rng.t -> chance:float -> src:int -> dst:int -> verdict
(** Decide the fate of one message.  Checks, in order: crash windows
    (source or destination frozen), partitions, the loss process, then
    corruption.  [chance] is the driver's configured drop probability for
    this destination (used by the i.i.d. process only). *)

val is_crashed : t -> int -> bool
(** [true] while some active crash window covers the id.  Drivers must not
    let crashed nodes initiate; {!Sf_check.Invariant} flags violations. *)

val partitioned : t -> src:int -> dst:int -> bool
(** [true] when an active partition window puts [src] and [dst] in
    different blocks (contiguous blocks of the initial id space; joiner
    ids wrap by [id mod n]).  A pure read of the window state — no
    randomness, no counters; call {!refresh} first if the clock may have
    advanced since the last query. *)

val crash_active : t -> bool
(** [true] iff some crash window is currently active. *)

val has_crash_windows : t -> bool
(** [true] iff the scenario contains any crash window at all (lets drivers
    keep the exact pre-fault scheduler RNG stream otherwise). *)

val delay_factor : t -> float
(** Product of the factors of all active delay windows ([1.] when none). *)

val statistics : t -> stats
