(* Tests for the extension modules: ASCII plotting, graph quality, chain
   mixing diagnostics, min-wise samplers, Cyclon and baseline churn, and
   reconnection-adjacent helpers. *)

module Pmf = Sf_stats.Pmf
module Ascii_plot = Sf_stats.Ascii_plot
module Quality = Sf_graph.Quality
module Digraph = Sf_graph.Digraph
module Chain = Sf_markov.Chain
module Mixing = Sf_markov.Mixing
module Minwise = Sf_core.Minwise
module Baselines = Sf_core.Baselines
module Topology = Sf_core.Topology

(* --- ASCII plots --- *)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let render f =
  let buffer = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buffer in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buffer

let test_ascii_pmf () =
  let p = Pmf.create ~offset:3 [| 0.2; 0.5; 0.3 |] in
  let out = render (fun ppf -> Ascii_plot.pmf ppf p) in
  Alcotest.(check bool) "mentions support points" true (String.contains out '3');
  Alcotest.(check bool) "has bars" true (String.contains out '#');
  (* The peak row has the longest bar. *)
  let lines = String.split_on_char '\n' out in
  let bar_length line =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
  in
  let bars = List.filter (fun l -> bar_length l > 0) lines in
  Alcotest.(check int) "three bars" 3 (List.length bars);
  let longest = List.fold_left (fun acc l -> max acc (bar_length l)) 0 bars in
  let peak_line = List.find (fun l -> bar_length l = longest) bars in
  Alcotest.(check bool) "peak is point 4" true (String.contains peak_line '4')

let test_ascii_pmf_threshold () =
  let p = Pmf.create ~offset:0 [| 0.999; 0.001 |] in
  let out = render (fun ppf -> Ascii_plot.pmf ~threshold:0.01 ppf p) in
  let lines = List.filter (fun l -> String.contains l '|') (String.split_on_char '\n' out) in
  Alcotest.(check int) "tiny mass skipped" 1 (List.length lines)

let test_ascii_series () =
  let values = Array.init 50 (fun i -> exp (-.float_of_int i /. 10.)) in
  let out = render (fun ppf -> Ascii_plot.series ppf ("decay", values)) in
  Alcotest.(check bool) "labelled" true (contains_substring out "decay");
  Alcotest.(check bool) "has points" true (String.contains out '*')

let test_ascii_overlay_limits () =
  let p = Pmf.create ~offset:0 [| 1. |] in
  let four = List.init 4 (fun i -> (string_of_int i, p)) in
  Alcotest.(check bool) "more than three rejected" true
    (match render (fun ppf -> Ascii_plot.pmf_overlay ppf four) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Graph quality --- *)

let ring_graph n =
  let g = Digraph.create () in
  for u = 0 to n - 1 do
    Digraph.add_edge g u ((u + 1) mod n)
  done;
  g

let clique_graph n =
  let g = Digraph.create () in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then Digraph.add_edge g u v
    done
  done;
  g

let test_quality_ring_paths () =
  let rng = Sf_prng.Rng.create 1 in
  let stats = Quality.path_statistics ~sources:20 rng (ring_graph 20) in
  (* Undirected 20-ring: diameter 10, average distance 5.26. *)
  Alcotest.(check int) "ring diameter" 10 stats.Quality.estimated_diameter;
  Alcotest.(check bool) "avg path ~ n/4" true
    (Float.abs (stats.Quality.average_path_length -. (100. /. 19.)) < 0.01);
  Alcotest.(check int) "all reachable" 0 stats.Quality.unreachable_pairs

let test_quality_clique () =
  let rng = Sf_prng.Rng.create 2 in
  let stats = Quality.path_statistics ~sources:6 rng (clique_graph 6) in
  Alcotest.(check int) "clique diameter 1" 1 stats.Quality.estimated_diameter;
  Alcotest.(check bool) "clustering 1" true
    (Float.abs (Quality.clustering_coefficient (clique_graph 6) -. 1.) < 1e-9)

let test_quality_ring_clustering () =
  (* A plain cycle has no triangles. *)
  Alcotest.(check bool) "cycle clustering 0" true
    (Quality.clustering_coefficient (ring_graph 10) < 1e-9)

let test_quality_disconnected_pairs () =
  let g = Digraph.create () in
  Digraph.add_edge g 0 1;
  Digraph.ensure_vertex g 2;
  let rng = Sf_prng.Rng.create 3 in
  let stats = Quality.path_statistics ~sources:3 rng g in
  Alcotest.(check bool) "unreachable pairs counted" true (stats.Quality.unreachable_pairs > 0)

let test_quality_robustness () =
  let rng = Sf_prng.Rng.create 4 in
  (* A clique survives any removal as one component. *)
  let profile = Quality.robustness_profile rng (clique_graph 30) ~removal_fractions:[ 0.5 ] in
  (match profile with
  | [ (_, giant) ] -> Alcotest.(check bool) "clique giant 1.0" true (giant = 1.)
  | _ -> Alcotest.fail "one point expected");
  (* A ring shatters: removing half the nodes leaves fragments. *)
  let profile = Quality.robustness_profile rng (ring_graph 100) ~removal_fractions:[ 0.5 ] in
  match profile with
  | [ (_, giant) ] -> Alcotest.(check bool) "ring shatters" true (giant < 0.5)
  | _ -> Alcotest.fail "one point expected"

(* --- Mixing --- *)

let two_state p q =
  Chain.of_rows ~size:2 (function
    | 0 -> [ (0, 1. -. p); (1, p) ]
    | _ -> [ (0, q); (1, 1. -. q) ])

let test_mixing_second_eigenvalue_two_state () =
  (* Exact second eigenvalue of the two-state chain: 1 - p - q. *)
  let p = 0.3 and q = 0.2 in
  let chain = two_state p q in
  let stationary = [| q /. (p +. q); p /. (p +. q) |] in
  let rng = Sf_prng.Rng.create 5 in
  let lambda =
    Mixing.second_eigenvalue_estimate chain ~stationary ~uniform:(fun () ->
        Sf_prng.Rng.float rng)
  in
  Alcotest.(check bool)
    (Printf.sprintf "lambda %.4f ~ %.4f" lambda (1. -. p -. q))
    true
    (Float.abs (lambda -. (1. -. p -. q)) < 1e-3)

let test_mixing_profile_monotone () =
  let chain = two_state 0.3 0.2 in
  let stationary = [| 0.4; 0.6 |] in
  let profile =
    Mixing.distance_profile chain
      ~initial:(Chain.point_distribution ~size:2 0)
      ~stationary ~checkpoints:[ 0; 1; 2; 5; 10; 50 ]
  in
  let ok = ref true in
  for i = 0 to Array.length profile.Mixing.tv_distances - 2 do
    if profile.Mixing.tv_distances.(i) < profile.Mixing.tv_distances.(i + 1) -. 1e-12 then
      ok := false
  done;
  Alcotest.(check bool) "TVD non-increasing" true !ok;
  Alcotest.(check bool) "converges" true
    (profile.Mixing.tv_distances.(Array.length profile.Mixing.tv_distances - 1) < 1e-6)

let test_mixing_time_two_state () =
  let chain = two_state 0.5 0.5 in
  let stationary = [| 0.5; 0.5 |] in
  match Mixing.mixing_time chain ~stationary with
  | Some t -> Alcotest.(check bool) "small mixing time" true (t >= 1 && t <= 5)
  | None -> Alcotest.fail "must mix"

let test_steps_to_distance_bound () =
  let chain = two_state 0.01 0.01 in
  let stationary = [| 0.5; 0.5 |] in
  Alcotest.(check bool) "respects max_steps" true
    (Mixing.steps_to_distance ~max_steps:3 chain
       ~initial:(Chain.point_distribution ~size:2 0)
       ~stationary ~threshold:1e-9
    = None)

(* --- Min-wise samplers --- *)

let test_minwise_deterministic_winner () =
  let rng = Sf_prng.Rng.create 6 in
  let t = Minwise.create rng ~k:4 in
  Minwise.observe_all t [ 1; 2; 3; 4; 5 ];
  let first = Minwise.samples t in
  (* Re-observing the same ids changes nothing: min-hash is stable. *)
  Minwise.observe_all t [ 5; 4; 3; 2; 1 ];
  Alcotest.(check (list int)) "stable under re-observation" first (Minwise.samples t);
  Alcotest.(check int) "all samplers filled" 4 (List.length first);
  List.iter
    (fun id -> Alcotest.(check bool) "winner among observed" true (id >= 1 && id <= 5))
    first

let test_minwise_uniform_over_ids () =
  (* Across many independent samplers, the winner among a fixed id set is
     uniform. *)
  let rng = Sf_prng.Rng.create 7 in
  let counts = Array.make 10 0. in
  for _ = 1 to 3000 do
    let t = Minwise.create rng ~k:1 in
    Minwise.observe_all t (List.init 10 Fun.id);
    match Minwise.samples t with
    | [ id ] -> counts.(id) <- counts.(id) +. 1.
    | _ -> Alcotest.fail "one sampler"
  done;
  let result = Sf_stats.Hypothesis.chi_square_uniform counts in
  Alcotest.(check bool)
    (Printf.sprintf "uniform winners (p=%.4f)" result.Sf_stats.Hypothesis.p_value)
    true
    (result.Sf_stats.Hypothesis.p_value > 0.001)

let test_minwise_invalidate () =
  let rng = Sf_prng.Rng.create 8 in
  let t = Minwise.create rng ~k:3 in
  Minwise.observe_all t [ 1; 2; 3 ];
  Minwise.invalidate t ~is_dead:(fun _ -> true);
  Alcotest.(check (list int)) "all reset" [] (Minwise.samples t);
  Minwise.observe t 9;
  Alcotest.(check (list int)) "repopulates" [ 9; 9; 9 ] (Minwise.samples t)

let test_minwise_empty () =
  let rng = Sf_prng.Rng.create 9 in
  let t = Minwise.create rng ~k:2 in
  Alcotest.(check (list int)) "empty before observations" [] (Minwise.samples t);
  Alcotest.(check int) "observed count" 0 (Minwise.observed_count t)

(* --- Cyclon and baseline churn --- *)

let make_baseline ?(n = 80) ?(loss = 0.) kind =
  let topology = Topology.regular (Sf_prng.Rng.create 10) ~n ~out_degree:6 in
  Baselines.create ~seed:11 ~n ~view_size:12 ~loss_rate:loss ~kind ~topology

let test_cyclon_lossless_conserves_ids () =
  let b = make_baseline (Baselines.Cyclon { exchange_size = 3 }) in
  let before = Baselines.total_instances b in
  Baselines.run_rounds b 80;
  Alcotest.(check int) "edge count invariant" before (Baselines.total_instances b)

let test_kill_drops_traffic () =
  let b = make_baseline (Baselines.Push_pull { gossip_size = 2 }) in
  Baselines.kill b 0;
  Alcotest.(check bool) "marked dead" true (Baselines.is_dead b 0);
  Baselines.run_rounds b 20;
  (* Entries pointing at the dead node persist for push-pull (never purged
     structurally), so the stale fraction is positive. *)
  Alcotest.(check bool) "stale entries measured" true (Baselines.dead_entry_fraction b > 0.)

let test_revive_rebootstraps () =
  let b = make_baseline (Baselines.Cyclon { exchange_size = 3 }) in
  Baselines.kill b 5;
  Baselines.run_rounds b 30;
  Baselines.revive b 5 ~bootstrap:6;
  Alcotest.(check bool) "alive again" false (Baselines.is_dead b 5);
  Baselines.run_rounds b 5;
  (* The revived node trades again: total instances reflect its activity. *)
  Alcotest.(check bool) "system still running" true (Baselines.total_instances b > 0)

let test_cyclon_purges_stale_faster () =
  let run kind =
    let b = make_baseline ~n:120 kind in
    Baselines.run_rounds b 30;
    (* Kill a tenth of the nodes at once, then measure stale decay. *)
    for id = 0 to 11 do
      Baselines.kill b id
    done;
    Baselines.run_rounds b 40;
    Baselines.dead_entry_fraction b
  in
  let shuffle = run (Baselines.Shuffle { exchange_size = 3 }) in
  let cyclon = run (Baselines.Cyclon { exchange_size = 3 }) in
  Alcotest.(check bool)
    (Printf.sprintf "cyclon %.4f <= shuffle %.4f (+margin)" cyclon shuffle)
    true
    (cyclon <= shuffle +. 0.01)

(* --- degree MC to_chain --- *)

let test_degree_mc_chain_consistency () =
  let params =
    Sf_analysis.Degree_mc.make_params ~view_size:12 ~lower_threshold:4 ~loss:0.05 ()
  in
  let r = Sf_analysis.Degree_mc.solve params in
  let chain = Sf_analysis.Degree_mc.to_chain r in
  (* The exported chain's stationary distribution matches the fixed point. *)
  let stepped = Chain.step chain r.Sf_analysis.Degree_mc.joint in
  Alcotest.(check bool) "joint is stationary for the exported chain" true
    (Chain.l1_distance stepped r.Sf_analysis.Degree_mc.joint < 1e-6)

let suite =
  [
    Alcotest.test_case "ascii pmf" `Quick test_ascii_pmf;
    Alcotest.test_case "ascii pmf threshold" `Quick test_ascii_pmf_threshold;
    Alcotest.test_case "ascii series" `Quick test_ascii_series;
    Alcotest.test_case "ascii overlay limits" `Quick test_ascii_overlay_limits;
    Alcotest.test_case "quality: ring paths" `Quick test_quality_ring_paths;
    Alcotest.test_case "quality: clique" `Quick test_quality_clique;
    Alcotest.test_case "quality: cycle clustering" `Quick test_quality_ring_clustering;
    Alcotest.test_case "quality: unreachable pairs" `Quick test_quality_disconnected_pairs;
    Alcotest.test_case "quality: robustness" `Quick test_quality_robustness;
    Alcotest.test_case "mixing: second eigenvalue" `Quick test_mixing_second_eigenvalue_two_state;
    Alcotest.test_case "mixing: profile monotone" `Quick test_mixing_profile_monotone;
    Alcotest.test_case "mixing: mixing time" `Quick test_mixing_time_two_state;
    Alcotest.test_case "mixing: step bound" `Quick test_steps_to_distance_bound;
    Alcotest.test_case "minwise: stable winners" `Quick test_minwise_deterministic_winner;
    Alcotest.test_case "minwise: uniform winners" `Quick test_minwise_uniform_over_ids;
    Alcotest.test_case "minwise: invalidate" `Quick test_minwise_invalidate;
    Alcotest.test_case "minwise: empty" `Quick test_minwise_empty;
    Alcotest.test_case "cyclon: lossless conservation" `Quick test_cyclon_lossless_conserves_ids;
    Alcotest.test_case "baselines: kill" `Quick test_kill_drops_traffic;
    Alcotest.test_case "baselines: revive" `Quick test_revive_rebootstraps;
    Alcotest.test_case "cyclon: stale purge" `Quick test_cyclon_purges_stale_faster;
    Alcotest.test_case "degree MC chain export" `Quick test_degree_mc_chain_consistency;
  ]
