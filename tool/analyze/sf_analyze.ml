(* sf_analyze — AST-grade static analysis driver.

   Usage: sf_analyze [--baseline FILE] [--report FILE] [--list-rules] DIR...

   Walks the given directories (skipping _build and dot-directories),
   parses every .ml/.mli with the compiler frontend, runs the
   Analyze_passes passes, subtracts the baseline, optionally writes the
   JSON shared-state/effects report, and exits nonzero if any finding
   survives or any baseline entry is stale.

   Exit codes: 0 clean; 1 findings or stale baseline entries; 2 usage,
   I/O or baseline-parse error.  Paths are reported relative to the
   working directory, which is the workspace root under
   `dune build @analyze`. *)

module Passes = Sf_analyze_passes.Analyze_passes

let usage = "usage: sf_analyze [--baseline FILE] [--report FILE] [--list-rules] DIR..."

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
        else walk acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let () =
  let baseline_file = ref None in
  let report_file = ref None in
  let roots = ref [] in
  let list_rules = ref false in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun f -> baseline_file := Some f),
        "FILE suppressions, one 'path rule' per line (sf_lint contract)" );
      ( "--report",
        Arg.String (fun f -> report_file := Some f),
        "FILE write the JSON shared-state/effects report here" );
      ("--list-rules", Arg.Set list_rules, " print the rule list and exit");
    ]
  in
  Arg.parse spec (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter (fun (id, doc) -> Fmt.pr "%-18s %s@." id doc) Passes.rule_docs;
    exit 0
  end;
  if !roots = [] then begin
    Fmt.epr "%s@." usage;
    exit 2
  end;
  let baseline =
    match !baseline_file with
    | None -> []
    | Some file -> (
      let content =
        try read_file file
        with Sys_error msg ->
          Fmt.epr "sf_analyze: %s@." msg;
          exit 2
      in
      match Passes.parse_baseline content with
      | Ok entries -> entries
      | Error msg ->
        Fmt.epr "sf_analyze: %s@." msg;
        exit 2)
  in
  let paths =
    try
      List.fold_left walk [] (List.rev !roots)
      |> List.map normalize
      |> List.sort_uniq compare
    with Sys_error msg ->
      Fmt.epr "sf_analyze: %s@." msg;
      exit 2
  in
  let files = List.map (fun p -> (p, read_file p)) paths in
  let analysis = Passes.analyze_files files in
  let kept, stale = Passes.apply_baseline baseline analysis in
  (match !report_file with
  | None -> ()
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Sf_obs.Json.to_string (Passes.report_json ~kept analysis));
        output_string oc "\n"));
  List.iter (fun f -> Fmt.pr "%a@." Passes.pp_finding f) kept;
  List.iter
    (fun (e : Passes.baseline_entry) ->
      Fmt.pr "%s: stale baseline entry for rule %s (nothing to suppress)@."
        e.allow_path e.allow_rule)
    stale;
  if kept = [] && stale = [] then begin
    let unclassified =
      List.length (List.filter (fun h -> not h.Passes.h_classified) analysis.hazards)
    in
    Fmt.pr
      "sf_analyze: %d files clean (%d hazards classified, %d unclassified, %d \
       effectful / %d pure functions, %d baseline entries)@."
      analysis.parsed_files
      (List.length analysis.hazards - unclassified)
      unclassified
      (List.length analysis.effect_sigs)
      analysis.pure_functions (List.length baseline);
    exit 0
  end
  else exit 1
