(** The outcome of one spreading run, in either engine.

    Message accounting: [messages] counts every send attempt (pre-loss);
    [pushes] the rumor-bearing subset (pushes and pull responses),
    [requests] the pull requests, so [messages = pushes + requests].
    [lost] counts messages eaten by the verdict pipeline (crash window,
    partition, chance/burst loss), [to_dead] those that survived the
    network but arrived at a departed slot, and [duplicates] rumor
    deliveries to already-informed nodes. *)

type t = {
  strategy : Strategy.t;
  fanout : int;
  rounds : int;  (** spreading rounds executed *)
  rounds_to_half : int option;  (** first round with coverage >= 0.5 *)
  rounds_to_target : int option;
      (** first round with coverage >= the configured target *)
  coverage : float array;
      (** live coverage after each round: informed live nodes over
          reachable (live, un-crashed) nodes, clamped to 1 *)
  messages : int;
  pushes : int;
  requests : int;
  duplicates : int;
  lost : int;
  to_dead : int;
}

val final_coverage : t -> float
(** Last entry of [coverage] ([0.] when no round ran). *)

val reached : t -> bool
(** The coverage target was reached within the round budget. *)

val equal : t -> t -> bool

val pp : t Fmt.t

val to_json : t -> Sf_obs.Json.t
