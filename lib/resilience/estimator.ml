(* Online loss estimation from node-visible protocol signals.

   The paper's Lemma 6.6 balances the three per-send rates of a steady
   S&F system: duplication = loss + deletion.  Duplications and deletions
   are both *local* events — the sender knows when it duplicated (its
   outdegree sat at or below dL), the receiver knows when it deleted (its
   view was full) — while loss itself is invisible to everyone (the
   network model gives no feedback).  Inverting the balance therefore
   turns the two observable rates into a loss estimate:

     loss  ~=  duplications/sends - deletions/sends

   over a window of sends.  The estimator accumulates raw counter deltas
   until a window's worth of sends has been seen, folds the window's
   inverted rate into an EWMA, and exposes the smoothed estimate plus a
   confidence flag (at least one full window observed).  It consumes no
   randomness and performs O(1) work per observation, so attaching it to
   a driver cannot perturb an RNG stream.

   Churn correction.  The bare inversion assumes every edge enters or
   leaves the graph through a send.  Under churn that is false: join and
   rebootstrap bootstraps install edges out of band, leaves clear whole
   views, and sends addressed to departed slots vanish without either a
   duplication or a deletion.  Counting each send as exactly one of
   {lost, to-dead, deleted, accepted}, the round-granular edge
   conservation ledger reads, exactly,

     delta_edges = 2*dup - 2*(lost + to_dead + del) + added - removed

   and solving for the loss rate gives the corrected inversion

     loss ~= (dup - del - to_dead + (added - removed - delta_edges)/2)
             / sends

   where delta_edges — the change in the total edge count over the
   window, a sum of locally observable view-size changes — absorbs the
   warm-up and fault transients that break the steady-state
   delta_edges = 0 assumption (a short chaos window can shrink the
   overlay enough to drive the steady-state form negative).  Every
   correction term defaults to zero, collapsing to the bare Lemma 6.6
   form, so existing callers are unaffected. *)

type t = {
  window : int;       (* sends per estimation window *)
  smoothing : float;  (* EWMA weight of a fresh window in (0, 1] *)
  mutable acc_sends : int;
  mutable acc_duplications : int;
  mutable acc_deletions : int;
  mutable acc_to_dead : int;
  mutable acc_edges_added : int;
  mutable acc_edges_removed : int;
  mutable acc_edge_delta : int;  (* signed: overlays shrink in transients *)
  mutable estimate : float;
  mutable windows : int;  (* completed windows folded so far *)
}

let create ?(window = 2000) ?(smoothing = 0.3) () =
  if window <= 0 then invalid_arg "Estimator.create: window must be positive";
  if smoothing <= 0. || smoothing > 1. then
    invalid_arg "Estimator.create: smoothing must lie in (0, 1]";
  {
    window;
    smoothing;
    acc_sends = 0;
    acc_duplications = 0;
    acc_deletions = 0;
    acc_to_dead = 0;
    acc_edges_added = 0;
    acc_edges_removed = 0;
    acc_edge_delta = 0;
    estimate = 0.;
    windows = 0;
  }

let window t = t.window

(* A raw window inversion can stray outside [0, 1) through sampling noise
   (more deletions than duplications in a quiet window); the clamp keeps
   the estimate a valid loss probability. *)
let clamp x = Float.max 0. (Float.min 0.99 x)

let fold_window t =
  let sends = float_of_int t.acc_sends in
  (* The edge-flux terms enter halved: the ledger counts every edge
     twice per send-side event (a send moves edges in pairs). *)
  let churn_flux =
    float_of_int (t.acc_edges_added - t.acc_edges_removed - t.acc_edge_delta)
    /. 2.
  in
  let raw =
    clamp
      ((float_of_int (t.acc_duplications - t.acc_deletions - t.acc_to_dead)
       +. churn_flux)
      /. sends)
  in
  t.estimate <-
    (if t.windows = 0 then raw
     else ((1. -. t.smoothing) *. t.estimate) +. (t.smoothing *. raw));
  t.windows <- t.windows + 1;
  t.acc_sends <- 0;
  t.acc_duplications <- 0;
  t.acc_deletions <- 0;
  t.acc_to_dead <- 0;
  t.acc_edges_added <- 0;
  t.acc_edges_removed <- 0;
  t.acc_edge_delta <- 0

(* Feed counter *deltas* (not absolute totals) since the previous call.
   Several windows can complete in one large delta; each full window folds
   separately so the EWMA time constant is independent of the feeding
   cadence. *)
let observe t ?(to_dead = 0) ?(churn_edges_added = 0) ?(churn_edges_removed = 0)
    ?(edge_delta = 0) ~sends ~duplications ~deletions () =
  if sends < 0 || duplications < 0 || deletions < 0 || to_dead < 0
     || churn_edges_added < 0 || churn_edges_removed < 0
  then invalid_arg "Estimator.observe: negative delta";
  t.acc_sends <- t.acc_sends + sends;
  t.acc_duplications <- t.acc_duplications + duplications;
  t.acc_deletions <- t.acc_deletions + deletions;
  t.acc_to_dead <- t.acc_to_dead + to_dead;
  t.acc_edges_added <- t.acc_edges_added + churn_edges_added;
  t.acc_edges_removed <- t.acc_edges_removed + churn_edges_removed;
  t.acc_edge_delta <- t.acc_edge_delta + edge_delta;
  while t.acc_sends >= t.window do
    (* Attribute the overflow proportionally: fold the full window with a
       pro-rata share of the event deltas, keep the remainder accumulating.
       For the driver cadences in this tree (many small deltas per window)
       the remainder is tiny and the split is exact in expectation. *)
    let over = t.acc_sends - t.window in
    if over = 0 then fold_window t
    else begin
      let share x =
        if x >= 0 then x * t.window / t.acc_sends
        else -(-x * t.window / t.acc_sends)
      in
      let keep_dup = t.acc_duplications - share t.acc_duplications in
      let keep_del = t.acc_deletions - share t.acc_deletions in
      let keep_dead = t.acc_to_dead - share t.acc_to_dead in
      let keep_add = t.acc_edges_added - share t.acc_edges_added in
      let keep_rem = t.acc_edges_removed - share t.acc_edges_removed in
      let keep_edge = t.acc_edge_delta - share t.acc_edge_delta in
      t.acc_sends <- t.window;
      t.acc_duplications <- t.acc_duplications - keep_dup;
      t.acc_deletions <- t.acc_deletions - keep_del;
      t.acc_to_dead <- t.acc_to_dead - keep_dead;
      t.acc_edges_added <- t.acc_edges_added - keep_add;
      t.acc_edges_removed <- t.acc_edges_removed - keep_rem;
      t.acc_edge_delta <- t.acc_edge_delta - keep_edge;
      fold_window t;
      t.acc_sends <- over;
      t.acc_duplications <- keep_dup;
      t.acc_deletions <- keep_del;
      t.acc_to_dead <- keep_dead;
      t.acc_edges_added <- keep_add;
      t.acc_edges_removed <- keep_rem;
      t.acc_edge_delta <- keep_edge
    end
  done

let estimate t = t.estimate

let confident t = t.windows > 0

let windows t = t.windows
