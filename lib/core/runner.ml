(* Orchestration of an S&F system.

   Two execution modes mirror the paper's two levels of realism:

   - *Sequential actions* (the analysis model, section 5): a central loop
     repeatedly picks a uniformly random live node, runs its initiate step,
     and — if the message survives loss — runs the receive step
     synchronously.  All reproduction experiments use this mode.
   - *Timed execution* (the practical implementation the paper sketches):
     every node initiates on its own periodic or Poisson clock and messages
     travel through the discrete-event network with latency.  The
     [ablation_scheduler] bench shows both modes agree on degree behaviour.

   The runner also provides churn (joins and leaves), snapshots of the
   global membership graph, and the world-level counters used to verify
   Lemmas 6.6/6.7 (duplication = loss + deletion). *)

type scheduling = Poisson of float | Periodic of float

(* --- Audit events ---

   Every action (and, in timed mode, every delivery) is reported to an
   optional audit callback with enough context to re-check the paper's
   invariants from outside: the initiator's outdegree before and after, the
   duplication decision, and the fate of the message.  [Sf_check.Invariant]
   is the standard consumer; the runner itself never interprets events. *)

type delivery =
  | Accepted   (* placed in the receiver's view *)
  | Deleted    (* receiver full: both ids dropped *)
  | Lost       (* eaten by the network *)
  | To_dead    (* destination has no live handler *)
  | In_flight  (* timed mode: outcome not yet known *)

type action_outcome =
  | Audit_self_loop
  | Audit_send of { destination : int; duplicated : bool; delivery : delivery }

type audit_event =
  | Action of {
      initiator : int;
      degree_before : int;
      degree_after : int;
      outcome : action_outcome;
    }
  | Receipt of { receiver : int; accepted : bool }
      (** timed-mode delivery, asynchronous w.r.t. actions *)
  | Structural of string
      (** join/leave/reconnect/rebootstrap: edge totals changed out of band *)

(* --- Resilience state (lib/resilience) ---

   Installed by passing [?resilience] to [create]; absent, every code
   path below matches [None] once and the runner is bit-for-bit the
   pre-resilience runner.  The estimator feeds on world-counter deltas
   once per round, the controller retunes per-node (dL, s) against the
   estimated loss, and the supervisor drives section 5 repairs under
   backoff — see [resil_tick] at the bottom of this file. *)
type resil = {
  policy : Sf_resil.Policy.t;
  estimator : Sf_resil.Estimator.t;
  controller : Sf_resil.Controller.t;
  supervisor : Sf_resil.Supervisor.t;
  (* Per-node retuned configs; nodes absent here run the base config. *)
  node_configs : (int, Protocol.config) Hashtbl.t;
  mutable last_sends : int;         (* counter baselines for estimator deltas *)
  mutable last_duplications : int;
  mutable last_deletions : int;
  mutable ticks : int;              (* resilience decision ticks (rounds) *)
  g_estimate : Sf_obs.Metrics.gauge;
  g_true : Sf_obs.Metrics.gauge;
  c_retunes : Sf_obs.Metrics.counter;
  c_repair_attempts : Sf_obs.Metrics.counter;
  c_recoveries : Sf_obs.Metrics.counter;
  h_backoff : Sf_obs.Metrics.histogram;
}

type t = {
  config : Protocol.config;
  resilience : resil option;
  scheduler_rng : Sf_prng.Rng.t;  (* picks initiators and timing *)
  protocol_rng : Sf_prng.Rng.t;   (* slot selections inside nodes *)
  sim : Sf_engine.Sim.t;
  network : Protocol.message Sf_engine.Network.t;
  (* Fault scenario engine (lib/faults); [None] means fault-free.  The
     injector's round clock is actions / initial population in sequential
     mode and virtual time in timed mode. *)
  injector : Sf_faults.Injector.t option;
  initial_population : int;
  nodes : (int, Protocol.node) Hashtbl.t;
  (* Live array, kept sorted by node id *incrementally*: joins and leaves
     splice by binary search (one O(n) blit), never a rebuild-and-sort.
     The former [live_dirty] scheme re-materialized the whole array from
     the hash table and re-sorted it after every join/leave — O(n log n)
     per churn event, and hot at scale.  [live_buf] carries slack
     capacity; [live_snapshot] is the exact-length view handed to
     callers, re-blitted lazily after a change. *)
  mutable live_buf : Protocol.node array;
  mutable live_len : int;
  mutable live_snapshot : Protocol.node array;
  mutable live_snapshot_stale : bool;
  mutable next_serial : int;
  mutable actions : int;           (* initiate steps executed *)
  mutable next_node_id : int;
  mutable timed : scheduling option;
  (* Observability: registry counters replace the former ad-hoc world
     counters (they survive node removal just the same — one O(1)
     increment per update); the gauge tracks the live population. *)
  obs : Sf_obs.Obs.t;
  total_self_loops : Sf_obs.Metrics.counter;
  total_sends : Sf_obs.Metrics.counter;
  total_duplications : Sf_obs.Metrics.counter;
  total_receipts : Sf_obs.Metrics.counter;
  total_deletions : Sf_obs.Metrics.counter;
  total_reconnections : Sf_obs.Metrics.counter;
  total_rebootstraps : Sf_obs.Metrics.counter;
  live_gauge : Sf_obs.Metrics.gauge;
  (* Audit plumbing. *)
  mutable audit : (t -> audit_event -> unit) option;
  mutable last_receive : Protocol.receive_result option;
  mutable suppress_receipt : bool;  (* true inside a synchronous send *)
}

let set_audit t audit = t.audit <- audit

let emit t event = match t.audit with Some f -> f t event | None -> ()

let obs t = t.obs

(* The config a node currently runs: the base config until the adaptive
   controller has retuned the node.  Without resilience this is one match
   on [None] — no table, no cost. *)
let node_config t id =
  match t.resilience with
  | None -> t.config
  | Some r -> (
    match Hashtbl.find_opt r.node_configs id with
    | Some config -> config
    | None -> t.config)

(* The injected trace clock: the sequential round clock (actions per
   initial node) before [start_timed], virtual time after — matching the
   fault injector's clock, and never an ambient wall clock. *)
let obs_now t =
  match t.timed with
  | Some _ -> Sf_engine.Sim.now t.sim
  | None -> float_of_int t.actions /. float_of_int (max 1 t.initial_population)

let trace t event =
  if Sf_obs.Obs.tracing t.obs then Sf_obs.Obs.trace t.obs ~now:(obs_now t) event

(* Surface fault-window boundary crossings as structural audit events, so
   the invariant auditor resyncs its edge-conservation baseline exactly when
   the fault regime changes. *)
let poll_faults t =
  match t.injector with
  | None -> ()
  | Some injector ->
    Sf_faults.Injector.refresh injector;
    List.iter
      (fun reason ->
        trace t (Sf_obs.Trace.Fault { transition = reason });
        emit t (Structural reason))
      (Sf_faults.Injector.transitions injector)

let is_crashed t id =
  match t.injector with
  | None -> false
  | Some injector -> Sf_faults.Injector.is_crashed injector id

let fault_statistics t = Option.map Sf_faults.Injector.statistics t.injector

let fresh_serial t () =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let handler t node message =
  Sf_obs.Metrics.incr t.total_receipts;
  let result =
    Protocol.receive (node_config t node.Protocol.node_id) t.protocol_rng node
      message
  in
  t.last_receive <- Some result;
  (match result with
  | Protocol.Accepted -> ()
  | Protocol.Deleted ->
    Sf_obs.Metrics.incr t.total_deletions;
    trace t (Sf_obs.Trace.Delete { node = node.Protocol.node_id }));
  (* Synchronous deliveries are reported inside the enclosing action
     event; only asynchronous (timed-mode) deliveries stand alone. *)
  if not t.suppress_receipt then
    emit t
      (Receipt
         {
           receiver = node.Protocol.node_id;
           accepted = (result = Protocol.Accepted);
         })

(* Binary search over the sorted prefix [0, live_len): the index of [id],
   or the insertion point that keeps the array sorted. *)
let live_position t id =
  let lo = ref 0 and hi = ref t.live_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.live_buf.(mid).Protocol.node_id < id then lo := mid + 1 else hi := mid
  done;
  !lo

let live_insert t node =
  let id = node.Protocol.node_id in
  let pos = live_position t id in
  if pos < t.live_len && t.live_buf.(pos).Protocol.node_id = id then
    t.live_buf.(pos) <- node
  else begin
    if t.live_len = Array.length t.live_buf then begin
      (* Grow; the tail slack keeps references to whatever node happened
         to be used as filler, which is fine — only [0, live_len) is live. *)
      let grown = Array.make (max 8 (2 * t.live_len)) node in
      Array.blit t.live_buf 0 grown 0 t.live_len;
      t.live_buf <- grown
    end;
    Array.blit t.live_buf pos t.live_buf (pos + 1) (t.live_len - pos);
    t.live_buf.(pos) <- node;
    t.live_len <- t.live_len + 1
  end;
  t.live_snapshot_stale <- true

let live_remove t id =
  let pos = live_position t id in
  if pos < t.live_len && t.live_buf.(pos).Protocol.node_id = id then begin
    Array.blit t.live_buf (pos + 1) t.live_buf pos (t.live_len - pos - 1);
    t.live_len <- t.live_len - 1;
    t.live_snapshot_stale <- true
  end

let install_node t node =
  Hashtbl.replace t.nodes node.Protocol.node_id node;
  Sf_engine.Network.register t.network node.Protocol.node_id (handler t node);
  live_insert t node;
  Sf_obs.Metrics.set t.live_gauge (float_of_int (Hashtbl.length t.nodes))

let create ?(latency = Sf_engine.Network.default_latency) ?destination_loss ?audit
    ?scenario ?obs ?resilience ~seed ~n ~loss_rate ~config ~topology () =
  let root = Sf_prng.Rng.create seed in
  let scheduler_rng = Sf_prng.Rng.split root in
  let protocol_rng = Sf_prng.Rng.split root in
  let network_rng = Sf_prng.Rng.split root in
  (* Split last, and only when the layer is enabled: the three streams
     above are byte-identical with and without resilience, which is what
     keeps the observe-only identity test honest. *)
  let resil_rng = Option.map (fun _ -> Sf_prng.Rng.split root) resilience in
  let sim = Sf_engine.Sim.create () in
  let obs = match obs with Some o -> o | None -> Sf_obs.Obs.create () in
  let metrics = Sf_obs.Obs.metrics obs in
  let injector =
    Option.map
      (fun sc -> Sf_faults.Injector.create ~metrics ~scenario:sc ~n ())
      scenario
  in
  let network =
    Sf_engine.Network.create ~latency ?destination_loss ?injector ~obs ~sim
      ~resilience:(Option.is_some resilience) ~rng:network_rng ~loss_rate ()
  in
  let resilience =
    match (resilience, resil_rng) with
    | Some policy, Some rng ->
      Some
        {
          policy;
          estimator = Sf_resil.Policy.estimator policy;
          controller =
            Sf_resil.Policy.controller policy
              ~initial:(config.Protocol.lower_threshold, config.Protocol.view_size)
              ~capacity:config.Protocol.view_size;
          supervisor = Sf_resil.Policy.supervisor policy ~rng;
          node_configs = Hashtbl.create (2 * n);
          last_sends = 0;
          last_duplications = 0;
          last_deletions = 0;
          ticks = 0;
          (* Registered eagerly so exports show the resilience series from
             round zero, not from the first decision. *)
          g_estimate = Sf_obs.Metrics.gauge metrics "resil_loss_estimate";
          g_true = Sf_obs.Metrics.gauge metrics "resil_loss_true";
          c_retunes = Sf_obs.Metrics.counter metrics "resil_retunes_total";
          c_repair_attempts =
            Sf_obs.Metrics.counter metrics "resil_repair_attempts_total";
          c_recoveries = Sf_obs.Metrics.counter metrics "resil_recoveries_total";
          h_backoff = Sf_obs.Metrics.histogram metrics "resil_backoff_rounds";
        }
    | _ -> None
  in
  let t =
    {
      config;
      resilience;
      scheduler_rng;
      protocol_rng;
      sim;
      network;
      injector;
      initial_population = n;
      nodes = Hashtbl.create (2 * n);
      live_buf = [||];
      live_len = 0;
      live_snapshot = [||];
      live_snapshot_stale = false;
      next_serial = 0;
      actions = 0;
      next_node_id = n;
      timed = None;
      obs;
      total_self_loops = Sf_obs.Metrics.counter metrics "runner_self_loops";
      total_sends = Sf_obs.Metrics.counter metrics "runner_sends";
      total_duplications = Sf_obs.Metrics.counter metrics "runner_duplications";
      total_receipts = Sf_obs.Metrics.counter metrics "runner_receipts";
      total_deletions = Sf_obs.Metrics.counter metrics "runner_deletions";
      total_reconnections = Sf_obs.Metrics.counter metrics "runner_reconnections";
      total_rebootstraps = Sf_obs.Metrics.counter metrics "runner_rebootstraps";
      live_gauge = Sf_obs.Metrics.gauge metrics "runner_live_nodes";
      audit;
      last_receive = None;
      suppress_receipt = false;
    }
  in
  for u = 0 to n - 1 do
    let node = Protocol.create_node ~config ~node_id:u in
    List.iter
      (fun v ->
        match View.random_empty_slot node.Protocol.view t.protocol_rng with
        | None -> invalid_arg "Runner.create: topology exceeds view size"
        | Some slot ->
          View.set node.Protocol.view slot
            { View.id = v; serial = fresh_serial t (); anchor = None; born = 0 })
      (topology u);
    install_node t node
  done;
  Option.iter
    (fun inj ->
      Sf_faults.Injector.set_clock inj (fun () ->
          match t.timed with
          | Some _ -> Sf_engine.Sim.now t.sim
          | None ->
            float_of_int t.actions /. float_of_int (max 1 t.initial_population)))
    t.injector;
  (* Network trace records (send/deliver/drop) must carry the same clock
     as the runner's own records, not the virtual clock — which never
     advances in sequential mode. *)
  Sf_engine.Network.set_trace_clock network (fun () -> obs_now t);
  t

let config t = t.config
let action_count t = t.actions
let minted_serials t = t.next_serial
let live_count t = Hashtbl.length t.nodes
let network_statistics t = Sf_engine.Network.statistics t.network
let loss_rate t = Sf_engine.Network.loss_rate t.network
let injector t = t.injector
let simulator t = t.sim

(* The array layout is sorted by id, never hash-table iteration order, so
   random node picks are reproducible; incremental maintenance makes it
   identical to the historical rebuild-and-sort (ids are unique). *)
let live_nodes t =
  if t.live_snapshot_stale || Array.length t.live_snapshot <> t.live_len then begin
    t.live_snapshot <- Array.sub t.live_buf 0 t.live_len;
    t.live_snapshot_stale <- false
  end;
  t.live_snapshot

let find_node t id = Hashtbl.find_opt t.nodes id

let random_live_node t =
  let live = live_nodes t in
  if Array.length live = 0 then invalid_arg "Runner.random_live_node: no live nodes";
  Sf_prng.Rng.choose t.scheduler_rng live

(* One initiate step at [node]; the transport depends on the mode.  The
   action counter increments only after the audit event fires, so the
   sequential round clock (actions / n) is constant across the whole action
   — initiate, loss draw, synchronous receive and audit all see the same
   round. *)
let initiate_at t ~synchronous node =
  let degree_before = Protocol.degree node in
  let result =
    Protocol.initiate
      (node_config t node.Protocol.node_id)
      t.protocol_rng ~fresh_serial:(fresh_serial t) ~clock:t.actions node
  in
  let outcome =
    match result with
    | Protocol.Self_loop ->
      Sf_obs.Metrics.incr t.total_self_loops;
      Audit_self_loop
    | Protocol.Send { destination; message; duplicated } ->
      Sf_obs.Metrics.incr t.total_sends;
      if duplicated then begin
        Sf_obs.Metrics.incr t.total_duplications;
        trace t (Sf_obs.Trace.Duplicate { node = node.Protocol.node_id })
      end;
      let delivery =
        if synchronous then begin
          let lost_before =
            (Sf_engine.Network.statistics t.network).Sf_engine.Network.messages_lost
          in
          t.suppress_receipt <- true;
          t.last_receive <- None;
          let delivered =
            Sf_engine.Network.send_immediate t.network
              ~src:node.Protocol.node_id ~duplicated ~dst:destination message
          in
          t.suppress_receipt <- false;
          let lost_after =
            (Sf_engine.Network.statistics t.network).Sf_engine.Network.messages_lost
          in
          if delivered then
            match t.last_receive with
            | Some Protocol.Deleted -> Deleted
            | Some Protocol.Accepted | None -> Accepted
          else if lost_after > lost_before then Lost
          else To_dead
        end
        else begin
          Sf_engine.Network.send t.network ~src:node.Protocol.node_id ~duplicated
            ~dst:destination message;
          In_flight
        end
      in
      Audit_send { destination; duplicated; delivery }
  in
  emit t
    (Action
       {
         initiator = node.Protocol.node_id;
         degree_before;
         degree_after = Protocol.degree node;
         outcome;
       });
  t.actions <- t.actions + 1;
  result

(* --- Sequential-action mode --- *)

(* Crashed nodes do not initiate.  The fault-free path — and any scenario
   without crash windows — keeps the historical single [Rng.choose] per
   step, so the scheduler RNG stream is untouched; only while a crash
   window is actually active does the pick rejection-sample. *)
let step t =
  poll_faults t;
  let crash_gate =
    match t.injector with
    | None -> None
    | Some injector ->
      if
        Sf_faults.Injector.has_crash_windows injector
        && Sf_faults.Injector.crash_active injector
      then Some injector
      else None
  in
  match crash_gate with
  | None -> ignore (initiate_at t ~synchronous:true (random_live_node t))
  | Some injector ->
    let live = live_nodes t in
    let up node =
      not (Sf_faults.Injector.is_crashed injector node.Protocol.node_id)
    in
    if Array.exists up live then begin
      let rec pick () =
        let node = Sf_prng.Rng.choose t.scheduler_rng live in
        if up node then node else pick ()
      in
      ignore (initiate_at t ~synchronous:true (pick ()))
    end
    else
      (* Every live node is frozen: the round clock still has to advance or
         the crash window would never end. *)
      t.actions <- t.actions + 1

let run_actions t k =
  for _ = 1 to k do
    step t
  done

(* [run_rounds] is defined at the bottom of this file: it interleaves
   rounds with the resilience tick, which needs the connectivity probes
   below. *)

(* --- Timed mode --- *)

let schedule_node t scheduling node =
  let delay () =
    match scheduling with
    | Poisson rate -> Sf_prng.Rng.exponential t.scheduler_rng rate
    | Periodic period ->
      (* Jitter the period slightly: loosely synchronized nodes. *)
      period *. (0.95 +. (0.1 *. Sf_prng.Rng.float t.scheduler_rng))
  in
  let rec tick () =
    (* The node may have left since this event was scheduled. *)
    if Hashtbl.mem t.nodes node.Protocol.node_id then begin
      trace t (Sf_obs.Trace.Timer { node = node.Protocol.node_id });
      poll_faults t;
      (* A crashed node skips its initiation but keeps its clock running, so
         it resumes — with its stale view — when the window closes. *)
      if not (is_crashed t node.Protocol.node_id) then
        ignore (initiate_at t ~synchronous:false node);
      Sf_engine.Sim.schedule t.sim ~delay:(delay ()) tick
    end
  in
  Sf_engine.Sim.schedule t.sim ~delay:(delay ()) tick

let start_timed t scheduling =
  if t.timed <> None then invalid_arg "Runner.start_timed: already started";
  t.timed <- Some scheduling;
  Array.iter (schedule_node t scheduling) (live_nodes t)

let run_until t horizon =
  ignore (Sf_engine.Sim.run ~horizon t.sim)

(* --- Churn --- *)

let add_node t ~bootstrap =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  let node = Protocol.create_node ~config:t.config ~node_id:id in
  List.iter
    (fun v ->
      match View.random_empty_slot node.Protocol.view t.protocol_rng with
      | None -> invalid_arg "Runner.add_node: bootstrap exceeds view size"
      | Some slot ->
        View.set node.Protocol.view slot
          { View.id = v; serial = fresh_serial t (); anchor = None; born = t.actions })
    bootstrap;
  install_node t node;
  (match t.timed with Some s -> schedule_node t s node | None -> ());
  trace t (Sf_obs.Trace.Mark { label = "add_node" });
  emit t (Structural "add_node");
  id

let remove_node t id =
  match Hashtbl.find_opt t.nodes id with
  | None -> None
  | Some node ->
    Hashtbl.remove t.nodes id;
    Sf_engine.Network.unregister t.network id;
    live_remove t id;
    Sf_obs.Metrics.set t.live_gauge (float_of_int (Hashtbl.length t.nodes));
    trace t (Sf_obs.Trace.Mark { label = "remove_node" });
    emit t (Structural "remove_node");
    Some node

(* Bootstrap ids for a joiner: a copy of (a prefix of) a random live node's
   view — the joining rule the paper suggests in section 5.  The paper
   requires the joiner to know ids of *live* nodes, so entries pointing at
   departed nodes are filtered out (a joiner that only knows dead ids would
   start disconnected); the donor's own id fills any shortfall. *)
let bootstrap_from t ~count =
  let donor = random_live_node t in
  let live ids = List.filter (fun id -> Hashtbl.mem t.nodes id) ids in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let ids = take count (live (View.ids donor.Protocol.view)) in
  let shortfall = count - List.length ids in
  if shortfall <= 0 then ids
  else ids @ List.init shortfall (fun _ -> donor.Protocol.node_id)

(* --- Reconnection (paper, section 5 joining rule) ---

   A node whose neighbors have all departed can no longer exchange ids: its
   sends go to dead destinations and nobody holds its id.  The paper's
   remedy is the joining rule: reconnect "by probing previously seen ids".
   [reconnect] probes the node's seen-cache (then its current view ids) in
   order; each probe costs a request and a response message, both subject
   to loss.  The first live, responsive target donates a copy of up to dL
   ids from its view, which replace the stale view.  Donated entries are
   copies the donor keeps, so they are anchored at the donor — the same
   dependence accounting as duplication. *)

type reconnect_result =
  | Reconnected of { donor : int; probes : int; installed : int }
  | Exhausted of { probes : int }

let reconnect t ~node_id =
  match Hashtbl.find_opt t.nodes node_id with
  | None -> invalid_arg "Runner.reconnect: unknown node"
  | Some node ->
    let loss = Sf_engine.Network.loss_rate t.network in
    let view_ids =
      List.filter (fun id -> id <> node_id) (View.ids node.Protocol.view)
    in
    let candidates =
      List.sort_uniq compare (node.Protocol.seen_ids @ view_ids)
      |> List.filter (fun id -> id <> node_id)
    in
    (* Preserve seen-cache recency order ahead of view order. *)
    let ordered =
      List.filter (fun id -> List.mem id candidates) node.Protocol.seen_ids
      @ List.filter (fun id -> not (List.mem id node.Protocol.seen_ids)) candidates
    in
    let probes = ref 0 in
    let rec try_candidates = function
      | [] -> Exhausted { probes = !probes }
      | candidate :: rest ->
        incr probes;
        let request_arrives = not (Sf_prng.Rng.bernoulli t.protocol_rng loss) in
        (match (request_arrives, Hashtbl.find_opt t.nodes candidate) with
        | true, Some donor ->
          let response_arrives = not (Sf_prng.Rng.bernoulli t.protocol_rng loss) in
          if response_arrives then begin
            let donated =
              let rec take k = function
                | [] -> []
                | _ when k = 0 -> []
                | e :: tl -> e :: take (k - 1) tl
              in
              take t.config.Protocol.lower_threshold (View.entries donor.Protocol.view)
            in
            (* Always at least the donor itself. *)
            View.clear_all node.Protocol.view;
            let installed = ref 0 in
            let install id =
              match View.random_empty_slot node.Protocol.view t.protocol_rng with
              | None -> ()
              | Some slot ->
                View.set node.Protocol.view slot
                  {
                    View.id;
                    serial = fresh_serial t ();
                    anchor = Some donor.Protocol.node_id;
                    born = t.actions;
                  };
                incr installed
            in
            install donor.Protocol.node_id;
            List.iter (fun (e : View.entry) -> install e.View.id) donated;
            (* Keep the outdegree even (Observation 5.1). *)
            if View.degree node.Protocol.view mod 2 = 1 then
              install donor.Protocol.node_id;
            Sf_obs.Metrics.incr t.total_reconnections;
            trace t (Sf_obs.Trace.Mark { label = "reconnect" });
            emit t (Structural "reconnect");
            Reconnected
              { donor = donor.Protocol.node_id; probes = !probes; installed = !installed }
          end
          else try_candidates rest
        | _ -> try_candidates rest)
    in
    try_candidates ordered

(* Out-of-band re-bootstrap — the other half of the paper's joining rule
   ("a node can obtain these ids by copying another node's view").  Models
   contacting a bootstrap/rendezvous service: a random live donor's view is
   copied, as for a fresh joiner.  Used when probing previously seen ids is
   exhausted (e.g. a node that joined and lost all its neighbors before
   ever receiving a message). *)
let rebootstrap t ~node_id =
  match Hashtbl.find_opt t.nodes node_id with
  | None -> invalid_arg "Runner.rebootstrap: unknown node"
  | Some node ->
    let rec pick_donor () =
      let donor = random_live_node t in
      if donor.Protocol.node_id <> node_id || live_count t <= 1 then donor
      else pick_donor ()
    in
    let donor = pick_donor () in
    View.clear_all node.Protocol.view;
    let installed = ref 0 in
    let install id =
      match View.random_empty_slot node.Protocol.view t.protocol_rng with
      | None -> ()
      | Some slot ->
        View.set node.Protocol.view slot
          {
            View.id;
            serial = fresh_serial t ();
            anchor = Some donor.Protocol.node_id;
            born = t.actions;
          };
        incr installed
    in
    let donated =
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | e :: tl -> e :: take (k - 1) tl
      in
      take t.config.Protocol.lower_threshold (View.entries donor.Protocol.view)
      |> List.filter (fun (e : View.entry) ->
             e.View.id <> node_id && Hashtbl.mem t.nodes e.View.id)
    in
    install donor.Protocol.node_id;
    List.iter (fun (e : View.entry) -> install e.View.id) donated;
    if View.degree node.Protocol.view mod 2 = 1 then install donor.Protocol.node_id;
    Sf_obs.Metrics.incr t.total_rebootstraps;
    trace t (Sf_obs.Trace.Mark { label = "rebootstrap" });
    emit t (Structural "rebootstrap");
    !installed

(* A node is starved when its view holds no live id: every send is wasted.
   Starvation is transient while other live nodes still hold the node's id
   (an incoming message restocks the view); it is permanent — *isolation* —
   once no instance of the id survives anywhere.  A real node detects
   isolation by timeout on prolonged silence; the simulator can see both
   conditions directly. *)
let is_starved t node =
  View.fold
    (fun acc e -> acc && not (Hashtbl.mem t.nodes e.View.id))
    true node.Protocol.view

let starved_nodes t =
  Array.to_list (live_nodes t) |> List.filter (is_starved t)

let count_id_instances t id =
  Array.fold_left
    (fun acc node -> acc + View.count_id node.Protocol.view id)
    0 (live_nodes t)

let is_isolated t node =
  is_starved t node && count_id_instances t node.Protocol.node_id = 0

let isolated_nodes t = List.filter (is_isolated t) (starved_nodes t)

(* --- Measurement --- *)

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun node ->
      Sf_graph.Digraph.ensure_vertex g node.Protocol.node_id;
      View.iter
        (fun _ e -> Sf_graph.Digraph.add_edge g node.Protocol.node_id e.View.id)
        node.Protocol.view)
    (live_nodes t);
  g

type world_counters = {
  actions : int;
  self_loops : int;
  sends : int;
  duplications : int;
  receipts : int;
  deletions : int;
  messages_lost : int;
}

let world_counters t =
  let net = Sf_engine.Network.statistics t.network in
  let count = Sf_obs.Metrics.count in
  {
    actions = t.actions;
    self_loops = count t.total_self_loops;
    sends = count t.total_sends;
    duplications = count t.total_duplications;
    receipts = count t.total_receipts;
    deletions = count t.total_deletions;
    messages_lost = net.Sf_engine.Network.messages_lost;
  }

(* Empirical per-send probabilities for the Lemma 6.6 balance check. *)
type rates = { duplication : float; deletion : float; loss : float }

let rates_since t (baseline : world_counters) =
  let now = world_counters t in
  let sends = now.sends - baseline.sends in
  if sends <= 0 then { duplication = 0.; deletion = 0.; loss = 0. }
  else
    let f x = float_of_int x /. float_of_int sends in
    {
      duplication = f (now.duplications - baseline.duplications);
      deletion = f (now.deletions - baseline.deletions);
      loss = f (now.messages_lost - baseline.messages_lost);
    }

(* --- Resilience decision loop (lib/resilience) ---

   One tick per round, after the round's actions: feed the estimator from
   world-counter deltas, let the controller retune per-node thresholds
   against the estimated loss, and let the supervisor drive section 5
   repairs under backoff.  Everything here is skipped in one [None] match
   when the layer is disabled. *)

(* Clamp a controller target (dL, s) to one node's situation: s cannot
   drop below the node's current outdegree (entries are never evicted by
   retuning — the receive rule stops accepting until decay catches up)
   nor rise above the allocated view, and dL must stay a valid even value
   in [0, s - 6]. *)
let clamped_config ~capacity ~degree (dl, s) =
  let even_up x = if x land 1 = 0 then x else x + 1 in
  let s = min capacity (max s (max 6 (even_up degree))) in
  let dl = max 0 (min dl (s - 6)) in
  let dl = if dl land 1 = 0 then dl else dl - 1 in
  Protocol.make_config ~view_size:s ~lower_threshold:dl

let apply_retune t r pair =
  Array.iter
    (fun node ->
      let cfg =
        clamped_config
          ~capacity:(View.size node.Protocol.view)
          ~degree:(Protocol.degree node) pair
      in
      Hashtbl.replace r.node_configs node.Protocol.node_id cfg)
    (live_nodes t);
  Sf_obs.Metrics.incr r.c_retunes;
  trace t (Sf_obs.Trace.Mark { label = "retune" });
  (* Structural: the auditor must resync its per-node thresholds. *)
  emit t (Structural "retune")

(* One supervised repair pass.  The health probe is the simulator's
   privileged view (isolation and weak connectivity are directly visible);
   a repair attempt applies the section 5 joining rule to every isolated
   node and re-bootstraps one member of each minority component, then
   probes again — success resets the backoff, failure widens it. *)
let supervise t r =
  let now = float_of_int r.ticks in
  if Sf_resil.Supervisor.due r.supervisor ~now then begin
    let split () =
      live_count t > 1
      && not (Sf_graph.Digraph.is_weakly_connected (membership_graph t))
    in
    let isolated = isolated_nodes t in
    if isolated = [] && not (split ()) then
      Sf_resil.Supervisor.record_healthy r.supervisor
    else begin
      List.iter
        (fun node ->
          match reconnect t ~node_id:node.Protocol.node_id with
          | Reconnected _ -> ()
          | Exhausted _ ->
            ignore (rebootstrap t ~node_id:node.Protocol.node_id))
        isolated;
      if split () then begin
        let components =
          Sf_graph.Digraph.weakly_connected_components (membership_graph t)
          |> List.sort (fun a b ->
                 compare (List.length b) (List.length a))
        in
        match components with
        | [] | [ _ ] -> ()
        | _largest :: minorities ->
          List.iter
            (fun component ->
              match
                List.find_opt (fun id -> Hashtbl.mem t.nodes id) component
              with
              | None -> ()
              | Some id -> ignore (rebootstrap t ~node_id:id))
            minorities
      end;
      Sf_obs.Metrics.incr r.c_repair_attempts;
      let delay = Sf_resil.Supervisor.record_attempt r.supervisor ~now in
      Sf_obs.Metrics.observe r.h_backoff delay;
      trace t (Sf_obs.Trace.Mark { label = "repair" });
      (* Reconnect/rebootstrap act synchronously, so re-probing now tells
         whether the attempt healed the graph. *)
      if isolated_nodes t = [] && not (split ()) then begin
        Sf_resil.Supervisor.record_success r.supervisor;
        Sf_obs.Metrics.incr r.c_recoveries
      end
    end
  end

let resil_tick t =
  match t.resilience with
  | None -> ()
  | Some r ->
    r.ticks <- r.ticks + 1;
    let sends = Sf_obs.Metrics.count t.total_sends in
    let duplications = Sf_obs.Metrics.count t.total_duplications in
    let deletions = Sf_obs.Metrics.count t.total_deletions in
    Sf_resil.Estimator.observe r.estimator ~sends:(sends - r.last_sends)
      ~duplications:(duplications - r.last_duplications)
      ~deletions:(deletions - r.last_deletions) ();
    r.last_sends <- sends;
    r.last_duplications <- duplications;
    r.last_deletions <- deletions;
    Sf_obs.Metrics.set r.g_estimate (Sf_resil.Estimator.estimate r.estimator);
    (* Ground truth from the transport's windowed counters, for dashboards
       and estimator cross-checks; under non-stationary loss the window
       tracks the current regime where a cumulative rate would lag. *)
    (match Sf_engine.Network.loss_window t.network with
    | Some (sent, lost) when sent > 0 ->
      Sf_obs.Metrics.set r.g_true (float_of_int lost /. float_of_int sent)
    | _ -> ());
    if r.policy.Sf_resil.Policy.retune && Sf_resil.Estimator.confident r.estimator
    then begin
      match
        Sf_resil.Controller.decide r.controller
          ~loss:(Sf_resil.Estimator.estimate r.estimator)
      with
      | None -> ()
      | Some pair -> apply_retune t r pair
    end;
    if r.policy.Sf_resil.Policy.recover then supervise t r

(* A round = as many actions as live nodes (each node initiates once in
   expectation), the paper's round definition in section 6.5.  The
   resilience tick runs between rounds (a no-op when the layer is off);
   timed mode has no rounds, so resilience decisions are
   sequential-mode-only — documented in the interface. *)
let run_rounds t rounds =
  for _ = 1 to rounds do
    run_actions t (live_count t);
    resil_tick t
  done

type resilience_stats = {
  loss_estimate : float;
  estimator_confident : bool;
  estimator_windows : int;
  retunes : int;
  repair_attempts : int;
  recoveries : int;
}

let resilience_statistics t =
  Option.map
    (fun r ->
      {
        loss_estimate = Sf_resil.Estimator.estimate r.estimator;
        estimator_confident = Sf_resil.Estimator.confident r.estimator;
        estimator_windows = Sf_resil.Estimator.windows r.estimator;
        retunes = Sf_obs.Metrics.count r.c_retunes;
        repair_attempts = Sf_resil.Supervisor.attempts r.supervisor;
        recoveries = Sf_resil.Supervisor.recoveries r.supervisor;
      })
    t.resilience

(* --- The sharded flat-state runner (ROADMAP item 1) ---

   The orchestrator above tops out around 1k-10k nodes: one heap object
   per node, boxed audit/trace plumbing on every action, and a strictly
   serial action loop.  [Sharded] is the million-node path: the whole
   world lives in one [View.Flat] store (four contiguous int arrays plus
   cached degrees — nothing per-node for the GC to walk), and the action
   loop is a bulk-synchronous variant of the paper's sequential model,
   partitioned into [shard_count] fixed *logical* shards that OCaml 5
   domains execute in parallel between deterministic barriers.

   One round = every node initiates exactly once (the paper's section 6.5
   round is n actions — here the schedule is the deterministic node order
   rather than n uniform picks; A1 showed degree behaviour is scheduler-
   robust).  Each round runs two phases:

     I.  initiate: each shard walks its own nodes in id order.  An
         initiate touches only the initiator's view; surviving messages
         are appended, flat-encoded, to the per-(source, destination)
         arena row owned by the source shard.  Loss is drawn at send time
         from the source shard's stream.
     II. deliver (after the barrier): each shard drains the arena rows
         addressed to it — source shards in index order, messages in
         generation order — applying the S&F receive rule to its own
         nodes with draws from its own stream.

   Determinism across domain counts is by construction, not by locking:
   every PRNG draw comes from one of [shard_count] streams split from the
   root seed in fixed order; each stream is consumed by exactly one
   logical shard whose work — its own nodes in phase I, a deterministically
   ordered inbox in phase II — does not depend on how logical shards are
   packed onto domains.  Serials are minted per shard with stride
   [shard_count] (shard i mints i, i + S, i + 2S, ...), so minting is
   collision-free and shard-local.  The only cross-shard data flow is the
   arena matrix: row [src] is written solely by shard [src] in phase I and
   read after the barrier, so the spawn/join edges of [Sf_engine.Par] are
   the only synchronization needed.  Hence any [domains] value replays the
   [domains = 1] run bit-for-bit — asserted by [equal] in the tests and
   the SCALE bench.

   Chaos at scale.  The engine optionally runs the full robustness stack
   under the same determinism contract:

   - [?scenario] threads an [Sf_faults.Scenario.t] through the round loop.
     Stateful loss processes (the Gilbert–Elliott chain position) are
     per-shard values created from the shared model, so every chain step
     draws from the owning shard's stream; crash and partition windows
     are pure functions of the round clock, recomputed once per round by
     the coordinator at the barrier and only read inside the phases.
     Verdict order per send mirrors [Sf_faults.Injector.judge]: crash
     drop (no randomness), partition drop (no randomness), chance loss
     (shard-stream draw).  Delay and corruption windows are rejected —
     this engine has no latency model and no wire bytes.
   - [?churn] adds join/leave turnover.  The store is allocated with
     [headroom] extra node slots beyond the initial population; slots
     [n + c*S + i] are owned by shard [i] (shard-strided, like serial
     minting) and threaded on a per-shard free list.  Each round opens
     with a churn phase before phase I: every shard walks its own live
     nodes in id order, draws leaves at the configured rate (clearing the
     view and recycling the slot at the back of the free list), then
     performs one join per leave — popping a slot, bootstrapping an even
     number of entries from a donor drawn among the shard's own live
     nodes.  All of it is shard-local, so phase determinism is untouched.
   - [?resilience] runs the Sf_resil stack at the barrier after phase II,
     on the coordinator: the estimator is fed the round's summed counter
     deltas, controller retunes rewrite the per-shard (dL, s) thresholds
     (phase I reads the shard's live dL, phase II bounds acceptance by
     the live s — slot selection stays over the full allocation, exactly
     like the orchestrated runner's retuning semantics), and the
     supervisor probes in-degree isolation and weak connectivity every
     [probe_every] rounds, rebootstrapping stragglers from a dedicated
     resilience stream split from the root seed after the shard streams.

   The edge ledger extends Lemma 6.6 accordingly: a round moves the edge
   total by 2*accepted duplications - 2*dropped non-duplicated messages
   + edges created by joins/rebootstraps - edges destroyed by
   leaves/rebootstraps ([ledger] exposes all four; crashes freeze nodes
   but destroy edges only through the messages they drop, so they need no
   term of their own). *)

module Sharded = struct
  module Flat = View.Flat

  (* Growable flat arena of in-flight messages, [fields] ints per message:
     dst, src, duplicated (0/1), mixing id, mixing serial, mixing born,
     reinforcement serial.  (The reinforcement id is the source id and
     both anchors are derived from the duplication flag, so neither is
     stored; the reinforcement is born in the sending round.) *)
  type arena = { mutable buf : int array; mutable len : int }

  let fields = 7

  let arena_create () = { buf = Array.make (fields * 64) 0; len = 0 }

  let arena_clear a = a.len <- 0

  let arena_push a ~dst ~src ~dup ~m_id ~m_serial ~m_born ~r_serial =
    let need = a.len + fields in
    if need > Array.length a.buf then begin
      let grown = Array.make (max need (2 * Array.length a.buf)) 0 in
      Array.blit a.buf 0 grown 0 a.len;
      a.buf <- grown
    end;
    let b = a.buf and i = a.len in
    b.(i) <- dst;
    b.(i + 1) <- src;
    b.(i + 2) <- dup;
    b.(i + 3) <- m_id;
    b.(i + 4) <- m_serial;
    b.(i + 5) <- m_born;
    b.(i + 6) <- r_serial;
    a.len <- need

  type churn = {
    churn_rate : float;  (* per-round leave probability of each live node *)
    headroom : int;  (* extra node slots beyond n, rounded up to a multiple
                        of the shard count and strided across shards *)
  }

  type churn_stats = {
    joins : int;
    leaves : int;
    join_skips : int;  (* joins skipped because a shard had no live donor *)
    deliveries_to_dead : int;
  }

  type ledger = {
    accepted_duplications : int;
    dropped_non_duplicated : int;
    churn_edges_added : int;  (* installed by joins and rebootstraps *)
    churn_edges_removed : int;  (* cleared by leaves and rebootstraps *)
  }

  (* All mutable per-shard state: touched only by the domain currently
     running this shard, reduced by the coordinator between barriers. *)
  type shard = {
    index : int;
    lo : int;  (* first owned node *)
    hi : int;  (* one past the last owned node *)
    owned : int array;  (* every owned slot, ascending: lo..hi-1, extras *)
    rng : Sf_prng.Rng.t;
    out : arena array;  (* row of the arena matrix: one per destination shard *)
    loss : Sf_faults.Loss.t option;
        (* this shard's stateful loss process (Gilbert–Elliott chain
           position); [None] on the scenario-free path, which must replay
           the historical stream bit-for-bit *)
    mutable cfg_dl : int;  (* live thresholds — rewritten only by the *)
    mutable cfg_s : int;   (* coordinator at barriers (resilience retunes) *)
    mutable live : int;  (* live owned nodes *)
    free : int array;  (* ring buffer of free owned slots *)
    mutable free_head : int;
    mutable free_len : int;
    mutable minted : int;  (* serials handed out: minted * shard_count + index *)
    mutable sh_actions : int;
    mutable sh_self_loops : int;
    mutable sh_sends : int;
    mutable sh_duplications : int;
    mutable sh_receipts : int;
    mutable sh_deletions : int;
    mutable sh_lost : int;
    mutable sh_burst_drops : int;  (* subset of sh_lost drawn in a Bad state *)
    mutable sh_crash_drops : int;
    mutable sh_partition_drops : int;
    mutable sh_joins : int;
    mutable sh_leaves : int;
    mutable sh_join_skips : int;
    mutable sh_to_dead : int;
    (* Edge-conservation ledger (Lemma 6.6 at round granularity): a round
       moves the global edge count by exactly
       2 * accepted_duplications - 2 * dropped_non_duplicated
       + edges_added - edges_removed. *)
    mutable sh_accepted_dup : int;
    mutable sh_dropped_nondup : int;
    mutable sh_edges_added : int;
    mutable sh_edges_removed : int;
  }

  (* Barrier-time resilience state, touched only by the coordinator. *)
  type resil = {
    r_policy : Sf_resil.Policy.t;
    r_rng : Sf_prng.Rng.t;  (* split from the root after the shard streams *)
    r_estimator : Sf_resil.Estimator.t;
    r_controller : Sf_resil.Controller.t;
    r_supervisor : Sf_resil.Supervisor.t;
    r_probe_every : int;
    mutable r_sends : int;  (* counter positions at the last estimator feed *)
    mutable r_dups : int;
    mutable r_dels : int;
    mutable r_dead : int;  (* churn-correction positions: deliveries to dead *)
    mutable r_eadd : int;  (* slots and the ledger's out-of-band edge flux *)
    mutable r_erem : int;
    mutable r_edges : int;  (* total edge count at the last feed *)
    mutable r_pending : bool;  (* a repair attempt awaits its follow-up probe *)
  }

  type t = {
    sh_config : Protocol.config;
    n : int;  (* initial population; also the partition block base *)
    capacity : int;  (* node slots in the store: n + rounded headroom *)
    shard_count : int;
    chunk : int;  (* initial nodes per shard; shard of node u < n is u / chunk *)
    loss_rate : float;
    scenario : Sf_faults.Scenario.t option;
    churn_spec : churn option;
    store : Flat.t;
    alive : int array;  (* 1 = live; each slot written only by its owner
                           shard (churn phase) or the coordinator (barriers) *)
    shards : shard array;
    mutable rounds : int;
    (* Active-window state: pure functions of (scenario, round), recomputed
       once per round by the coordinator before phase I; read-only inside
       the phases. *)
    mutable active_crashes : (int * int) list;
    mutable active_parts : int list;
    window_active : bool array;
    mutable fault_transitions : int;
    resil : resil option;
  }

  let mint t sh =
    let serial = (sh.minted * t.shard_count) + sh.index in
    sh.minted <- sh.minted + 1;
    serial

  type init_topology = Ring | Scatter

  (* SplitMix64-style finalizer truncated to OCaml's 63-bit ints: the
     Scatter start derives every initial edge from this pure function of
     (seed, u, k), so it consumes no RNG stream — enabling it cannot
     perturb the per-shard streams, and the result is identical for every
     shard/domain layout. *)
  let scatter_target ~seed ~n u k =
    let h =
      ref
        ((seed * 0x1E3779B97F4A7C15)
        + (u * 0x3F58476D1CE4E5B9)
        + (k * 0x14D049BB133111EB))
    in
    h := !h lxor (!h lsr 30);
    h := !h * 0x3F58476D1CE4E5B9;
    h := !h lxor (!h lsr 27);
    h := !h * 0x14D049BB133111EB;
    h := !h lxor (!h lsr 31);
    let v = !h land max_int mod (n - 1) in
    if v >= u then v + 1 else v

  let create ?(shards = 16) ?(loss_rate = 0.) ?init_degree ?(init = Ring)
      ?scenario ?churn ?resilience ?(probe_every = 8) ~seed ~n ~config () =
    if n < 3 then invalid_arg "Runner.Sharded.create: need at least 3 nodes";
    if shards < 1 then invalid_arg "Runner.Sharded.create: need at least 1 shard";
    if loss_rate < 0. || loss_rate >= 1. then
      invalid_arg "Runner.Sharded.create: loss rate outside [0, 1)";
    if probe_every < 1 then
      invalid_arg "Runner.Sharded.create: probe_every must be >= 1";
    (match scenario with
    | None -> ()
    | Some sc ->
      List.iter
        (fun w ->
          match w.Sf_faults.Scenario.fault with
          | Sf_faults.Scenario.Delay _ | Sf_faults.Scenario.Corrupt _ ->
            invalid_arg
              (Fmt.str
                 "Runner.Sharded.create: %s windows are not supported on the \
                  sharded engine (no latency model, no wire bytes)"
                 (Sf_faults.Scenario.fault_kind w.Sf_faults.Scenario.fault))
          | Sf_faults.Scenario.Partition _ | Sf_faults.Scenario.Crash _ -> ())
        sc.Sf_faults.Scenario.windows);
    (match churn with
    | None -> ()
    | Some c ->
      if c.churn_rate < 0. || c.churn_rate >= 1. then
        invalid_arg "Runner.Sharded.create: churn rate outside [0, 1)";
      if c.headroom < 0 then
        invalid_arg "Runner.Sharded.create: negative churn headroom");
    let view_size = config.Protocol.view_size in
    let d0 =
      match init_degree with
      | Some d ->
        if d < 2 || d > view_size || d >= n || d land 1 = 1 then
          invalid_arg
            "Runner.Sharded.create: init_degree must be even, >= 2, <= view \
             size and < n";
        d
      | None ->
        (* Between dL and s, like the orchestrated runner's default start. *)
        let d = (view_size + config.Protocol.lower_threshold) / 2 in
        let d = min d (n - 1) in
        let d = if d land 1 = 1 then d - 1 else d in
        max 2 d
    in
    let chunk = (n + shards - 1) / shards in
    (* Headroom slots live at n + c*S + i (owned by shard i): strided like
       serial minting, so every shard can mint fresh node slots without
       coordination. *)
    let per_shard_extra =
      match churn with
      | None -> 0
      | Some c -> (c.headroom + shards - 1) / shards
    in
    let capacity = n + (per_shard_extra * shards) in
    let root = Sf_prng.Rng.create seed in
    let store = Flat.create ~nodes:capacity ~view_size in
    (* Streams are split from the root in shard order — explicitly, because
       the split advances the root and the order is part of the seed
       contract.  The resilience stream, when present, splits after all
       shard streams, so enabling resilience never perturbs them. *)
    let shard_list = ref [] in
    for index = 0 to shards - 1 do
      let lo = min n (index * chunk) and hi = min n ((index + 1) * chunk) in
      let owned =
        Array.init
          (hi - lo + per_shard_extra)
          (fun k -> if k < hi - lo then lo + k else n + ((k - (hi - lo)) * shards) + index)
      in
      let free = Array.make (max 1 (Array.length owned)) 0 in
      for c = 0 to per_shard_extra - 1 do
        free.(c) <- n + (c * shards) + index
      done;
      let sh =
        {
          index;
          lo;
          hi;
          owned;
          rng = Sf_prng.Rng.split root;
          out = Array.init shards (fun _ -> arena_create ());
          loss =
            (match scenario with
            | None -> None
            | Some sc -> Some (Sf_faults.Loss.create sc.Sf_faults.Scenario.loss));
          cfg_dl = config.Protocol.lower_threshold;
          cfg_s = view_size;
          live = hi - lo;
          free;
          free_head = 0;
          free_len = per_shard_extra;
          minted = 0;
          sh_actions = 0;
          sh_self_loops = 0;
          sh_sends = 0;
          sh_duplications = 0;
          sh_receipts = 0;
          sh_deletions = 0;
          sh_lost = 0;
          sh_burst_drops = 0;
          sh_crash_drops = 0;
          sh_partition_drops = 0;
          sh_joins = 0;
          sh_leaves = 0;
          sh_join_skips = 0;
          sh_to_dead = 0;
          sh_accepted_dup = 0;
          sh_dropped_nondup = 0;
          sh_edges_added = 0;
          sh_edges_removed = 0;
        }
      in
      shard_list := sh :: !shard_list
    done;
    let alive = Array.make capacity 0 in
    Array.fill alive 0 n 1;
    let resil =
      match resilience with
      | None -> None
      | Some policy ->
        let r_rng = Sf_prng.Rng.split root in
        Some
          {
            r_policy = policy;
            r_rng;
            r_estimator = Sf_resil.Policy.estimator policy;
            r_controller =
              Sf_resil.Policy.controller policy
                ~initial:(config.Protocol.lower_threshold, view_size)
                ~capacity:view_size;
            r_supervisor = Sf_resil.Policy.supervisor policy ~rng:r_rng;
            r_probe_every = probe_every;
            r_sends = 0;
            r_dups = 0;
            r_dels = 0;
            r_dead = 0;
            r_eadd = 0;
            r_erem = 0;
            r_edges = 0;  (* re-synced below once the ring is installed *)
            r_pending = false;
          }
    in
    let t =
      {
        sh_config = config;
        n;
        capacity;
        shard_count = shards;
        chunk;
        loss_rate;
        scenario;
        churn_spec = churn;
        store;
        alive;
        shards = Array.of_list (List.rev !shard_list);
        rounds = 0;
        active_crashes = [];
        active_parts = [];
        window_active =
          (match scenario with
          | None -> [||]
          | Some sc ->
            Array.make (List.length sc.Sf_faults.Scenario.windows) false);
        fault_transitions = 0;
        resil;
      }
    in
    (* Uniform even outdegree d0 — the section 4 requirement — installed
       shard by shard so initial serials are shard-strided like every
       later mint.  Ring: u points at u+1 .. u+d0 mod n (the historical
       deterministic start; weakly connected, but a 1-D cycle, so views
       mix only at random-walk speed).  Scatter: u points at d0
       hash-scattered non-self ids — an expander-like start whose views
       mix in O(log n) rounds, which rumor-spreading workloads need. *)
    Array.iter
      (fun sh ->
        for u = sh.lo to sh.hi - 1 do
          for k = 0 to d0 - 1 do
            let id =
              match init with
              | Ring -> (u + k + 1) mod n
              | Scatter -> scatter_target ~seed ~n u k
            in
            Flat.set store u k ~id ~serial:(mint t sh) ~anchor:(-1) ~born:0
          done
        done)
      t.shards;
    (* The estimator's edge-count baseline must include the ring just
       installed, or its first window sees a spurious +n*d0 drift. *)
    (match t.resil with
    | None -> ()
    | Some r -> r.r_edges <- Flat.total_edges store);
    t

  let shard_of t id = if id < t.n then id / t.chunk else (id - t.n) mod t.shard_count

  (* --- Barrier-time window state (coordinator only) --- *)

  (* Recompute the active crash ranges and partition splits for the round
     about to run.  Activity is a pure function of the round clock, so the
     phases can consult it from any shard without synchronization. *)
  let refresh_windows t =
    match t.scenario with
    | None -> ()
    | Some sc ->
      let now = float_of_int t.rounds in
      let crashes = ref [] and parts = ref [] in
      List.iteri
        (fun k w ->
          let active =
            w.Sf_faults.Scenario.start <= now && now < w.Sf_faults.Scenario.stop
          in
          if active <> t.window_active.(k) then begin
            t.window_active.(k) <- active;
            t.fault_transitions <- t.fault_transitions + 1
          end;
          if active then
            match w.Sf_faults.Scenario.fault with
            | Sf_faults.Scenario.Crash { first; last } ->
              crashes := (first, last) :: !crashes
            | Sf_faults.Scenario.Partition { parts = p } -> parts := p :: !parts
            | Sf_faults.Scenario.Delay _ | Sf_faults.Scenario.Corrupt _ -> ())
        sc.Sf_faults.Scenario.windows;
      t.active_crashes <- List.rev !crashes;
      t.active_parts <- List.rev !parts

  let is_crashed t id =
    match t.active_crashes with
    | [] -> false
    | ranges -> List.exists (fun (first, last) -> id >= first && id <= last) ranges

  (* Same block rule as Sf_faults.Injector: contiguous blocks of the
     initial id space; joiner ids beyond it wrap by [id mod n]. *)
  let block t ~parts id =
    let id = id mod t.n in
    min (parts - 1) (id * parts / t.n)

  let partitioned t ~src ~dst =
    match t.active_parts with
    | [] -> false
    | splits ->
      List.exists (fun parts -> block t ~parts src <> block t ~parts dst) splits

  (* --- Per-shard free list of node slots (ring buffer) --- *)

  let free_push sh slot =
    sh.free.((sh.free_head + sh.free_len) mod Array.length sh.free) <- slot;
    sh.free_len <- sh.free_len + 1

  let free_pop sh =
    let slot = sh.free.(sh.free_head) in
    sh.free_head <- (sh.free_head + 1) mod Array.length sh.free;
    sh.free_len <- sh.free_len - 1;
    slot

  (* --- Churn phase (before phase I; every shard touches only its own
     slots and its own stream) --- *)

  let clear_view t u =
    let d = Flat.degree t.store u in
    if d > 0 then
      for slot = 0 to t.sh_config.Protocol.view_size - 1 do
        Flat.clear t.store u slot
      done;
    d

  (* Bootstrap a freshly joined node from [donor]'s view: the donor's own
     id first, then the donor's entries in slot order, padded with the
     donor id to an even count, all as anchored copies with fresh serials.
     No liveness filter on the copied ids — the donor's entries may point
     at other shards' nodes, whose alive bits are concurrently churning;
     stale ids simply decay like any dead reference.  (Refs to this very
     slot's previous incarnation are filtered: a node must not be born
     pointing at itself.) *)
  let bootstrap_join t sh ~slot ~donor =
    let store = t.store in
    let view_size = t.sh_config.Protocol.view_size in
    let born = t.rounds in
    let target = max 2 sh.cfg_dl in
    let installed = ref 0 in
    let install id =
      let sl = Flat.random_empty_slot store slot sh.rng in
      Flat.set store slot sl ~id ~serial:(mint t sh) ~anchor:donor ~born;
      incr installed
    in
    install donor;
    let k = ref 0 in
    while !installed < target && !k < view_size do
      let id = Flat.id_at store donor !k in
      if id >= 0 && id <> slot then install id;
      incr k
    done;
    if !installed land 1 = 1 then install donor;
    !installed

  let churn_shard t spec sh =
    let rate = spec.churn_rate in
    let leavers = ref 0 in
    Array.iter
      (fun u ->
        if t.alive.(u) = 1 && Sf_prng.Rng.bernoulli sh.rng rate then begin
          sh.sh_edges_removed <- sh.sh_edges_removed + clear_view t u;
          t.alive.(u) <- 0;
          sh.live <- sh.live - 1;
          free_push sh u;
          sh.sh_leaves <- sh.sh_leaves + 1;
          incr leavers
        end)
      sh.owned;
    (* One join per leave: the population is stationary with [rate]
       turnover.  Slots are popped oldest-first, delaying id reuse by the
       full depth of the free list. *)
    let owned_n = Array.length sh.owned in
    for _ = 1 to !leavers do
      if sh.live = 0 then sh.sh_join_skips <- sh.sh_join_skips + 1
      else begin
        let slot = free_pop sh in
        let donor = ref sh.owned.(Sf_prng.Rng.int sh.rng owned_n) in
        while t.alive.(!donor) = 0 do
          donor := sh.owned.(Sf_prng.Rng.int sh.rng owned_n)
        done;
        let installed = bootstrap_join t sh ~slot ~donor:!donor in
        sh.sh_edges_added <- sh.sh_edges_added + installed;
        t.alive.(slot) <- 1;
        sh.live <- sh.live + 1;
        sh.sh_joins <- sh.sh_joins + 1
      end
    done

  (* Phase I: every owned live, un-crashed node initiates once, in id
     order. *)
  let initiate_shard t sh =
    (* The previous round's outbox row has been fully drained (the barrier
       guarantees it); reclaim it before writing this round's messages. *)
    Array.iter arena_clear sh.out;
    let store = t.store in
    let view_size = t.sh_config.Protocol.view_size in
    let born = t.rounds in
    Array.iter
      (fun u ->
        (* Dead slots hold no node; crashed nodes freeze (no initiations —
           the source half of Injector.judge's crash verdict). *)
        if t.alive.(u) = 1 && not (is_crashed t u) then begin
          sh.sh_actions <- sh.sh_actions + 1;
          (* Slot selection ranges over the full allocation even when a
             retune shrank cfg_s — same semantics as Protocol.initiate. *)
          let i, j = Sf_prng.Rng.distinct_pair sh.rng view_size in
          let target = Flat.id_at store u i in
          let forwarded = Flat.id_at store u j in
          if target < 0 || forwarded < 0 then
            sh.sh_self_loops <- sh.sh_self_loops + 1
          else begin
            let duplicated = Flat.degree store u <= sh.cfg_dl in
            (* Capture the forwarded instance before the slots are cleared. *)
            let old_serial = Flat.serial_at store u j in
            let old_born = Flat.born_at store u j in
            if duplicated then sh.sh_duplications <- sh.sh_duplications + 1
            else begin
              Flat.clear store u i;
              Flat.clear store u j
            end;
            let r_serial = mint t sh in
            let m_serial = if duplicated then mint t sh else old_serial in
            let m_born = if duplicated then born else old_born in
            sh.sh_sends <- sh.sh_sends + 1;
            (* Verdict order mirrors Sf_faults.Injector.judge: crash drop
               (no randomness), partition drop (no randomness), then the
               chance-loss draw from this shard's stream. *)
            if is_crashed t target then begin
              sh.sh_crash_drops <- sh.sh_crash_drops + 1;
              if not duplicated then
                sh.sh_dropped_nondup <- sh.sh_dropped_nondup + 1
            end
            else if partitioned t ~src:u ~dst:target then begin
              sh.sh_partition_drops <- sh.sh_partition_drops + 1;
              if not duplicated then
                sh.sh_dropped_nondup <- sh.sh_dropped_nondup + 1
            end
            else begin
              let lost =
                match sh.loss with
                | None ->
                  t.loss_rate > 0. && Sf_prng.Rng.bernoulli sh.rng t.loss_rate
                | Some l ->
                  Sf_faults.Loss.drop l sh.rng ~chance:t.loss_rate ~src:u
                    ~dst:target
              in
              if lost then begin
                sh.sh_lost <- sh.sh_lost + 1;
                (match sh.loss with
                | Some l when Sf_faults.Loss.in_burst l ->
                  sh.sh_burst_drops <- sh.sh_burst_drops + 1
                | Some _ | None -> ());
                if not duplicated then
                  sh.sh_dropped_nondup <- sh.sh_dropped_nondup + 1
              end
              else
                arena_push
                  sh.out.(shard_of t target)
                  ~dst:target ~src:u
                  ~dup:(if duplicated then 1 else 0)
                  ~m_id:forwarded ~m_serial ~m_born ~r_serial
            end
          end
        end)
      sh.owned

  (* Phase II: drain the arena rows addressed to this shard — source
     shards in index order, messages in generation order — applying the
     receive rule to owned nodes. *)
  let deliver_shard t sh =
    let store = t.store in
    let born = t.rounds in
    for src_shard = 0 to t.shard_count - 1 do
      let a = t.shards.(src_shard).out.(sh.index) in
      let b = a.buf in
      let i = ref 0 in
      while !i < a.len do
        let dst = b.(!i) in
        let src = b.(!i + 1) in
        let dup = b.(!i + 2) in
        let m_id = b.(!i + 3) in
        let m_serial = b.(!i + 4) in
        let m_born = b.(!i + 5) in
        let r_serial = b.(!i + 6) in
        if t.alive.(dst) = 0 then begin
          (* The destination left (or its slot was never live): the sender
             cannot know — the message is simply lost on the floor. *)
          sh.sh_to_dead <- sh.sh_to_dead + 1;
          if dup = 0 then sh.sh_dropped_nondup <- sh.sh_dropped_nondup + 1
        end
        else begin
          sh.sh_receipts <- sh.sh_receipts + 1;
          (* Acceptance is bounded by the live (possibly retuned) s, not
             the allocation — Protocol.receive's rule. *)
          if sh.cfg_s - Flat.degree store dst >= 2 then begin
            let anchor = if dup = 1 then src else -1 in
            let slot = Flat.random_empty_slot store dst sh.rng in
            Flat.set store dst slot ~id:src ~serial:r_serial ~anchor ~born;
            let slot = Flat.random_empty_slot store dst sh.rng in
            Flat.set store dst slot ~id:m_id ~serial:m_serial ~anchor
              ~born:m_born;
            if dup = 1 then sh.sh_accepted_dup <- sh.sh_accepted_dup + 1
          end
          else begin
            sh.sh_deletions <- sh.sh_deletions + 1;
            if dup = 0 then sh.sh_dropped_nondup <- sh.sh_dropped_nondup + 1
          end
        end;
        i := !i + fields
      done
    done

  let config t = t.sh_config
  let node_count t = t.n
  let capacity t = t.capacity
  let shard_count t = t.shard_count
  let scenario t = t.scenario
  let loss_rate t = t.loss_rate
  let rounds_completed t = t.rounds
  let store t = t.store
  let total_edges t = Flat.total_edges t.store
  let is_live t id = id >= 0 && id < t.capacity && t.alive.(id) = 1
  let live_count t = Array.fold_left (fun acc sh -> acc + sh.live) 0 t.shards

  let minted t = Array.map (fun sh -> sh.minted) t.shards

  let conservation t =
    Array.fold_left
      (fun (dup, dropped) sh ->
        (dup + sh.sh_accepted_dup, dropped + sh.sh_dropped_nondup))
      (0, 0) t.shards

  let ledger t =
    Array.fold_left
      (fun acc sh ->
        {
          accepted_duplications =
            acc.accepted_duplications + sh.sh_accepted_dup;
          dropped_non_duplicated =
            acc.dropped_non_duplicated + sh.sh_dropped_nondup;
          churn_edges_added = acc.churn_edges_added + sh.sh_edges_added;
          churn_edges_removed = acc.churn_edges_removed + sh.sh_edges_removed;
        })
      {
        accepted_duplications = 0;
        dropped_non_duplicated = 0;
        churn_edges_added = 0;
        churn_edges_removed = 0;
      }
      t.shards

  let churn_statistics t =
    Array.fold_left
      (fun acc sh ->
        {
          joins = acc.joins + sh.sh_joins;
          leaves = acc.leaves + sh.sh_leaves;
          join_skips = acc.join_skips + sh.sh_join_skips;
          deliveries_to_dead = acc.deliveries_to_dead + sh.sh_to_dead;
        })
      { joins = 0; leaves = 0; join_skips = 0; deliveries_to_dead = 0 }
      t.shards

  let fault_statistics t =
    match t.scenario with
    | None -> None
    | Some _ ->
      let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.shards in
      Some
        {
          Sf_faults.Injector.judged = sum (fun sh -> sh.sh_sends);
          chance_drops = sum (fun sh -> sh.sh_lost);
          burst_drops = sum (fun sh -> sh.sh_burst_drops);
          partition_drops = sum (fun sh -> sh.sh_partition_drops);
          crash_drops = sum (fun sh -> sh.sh_crash_drops);
          corruptions = 0;
          fault_transitions = t.fault_transitions;
        }

  let world_counters t =
    Array.fold_left
      (fun acc sh ->
        {
          actions = acc.actions + sh.sh_actions;
          self_loops = acc.self_loops + sh.sh_self_loops;
          sends = acc.sends + sh.sh_sends;
          duplications = acc.duplications + sh.sh_duplications;
          receipts = acc.receipts + sh.sh_receipts;
          deletions = acc.deletions + sh.sh_deletions;
          messages_lost = acc.messages_lost + sh.sh_lost;
        })
      {
        actions = 0;
        self_loops = 0;
        sends = 0;
        duplications = 0;
        receipts = 0;
        deletions = 0;
        messages_lost = 0;
      }
      t.shards

  (* --- Barrier-time resilience (coordinator only) --- *)

  (* Rebootstrap node [v] from [donor] at a barrier: clear the stale view
     and install an even bootstrap copied from the donor, charging both
     sides of the churn edge ledger.  Serials are minted from [v]'s owning
     shard, so the strided mint invariant survives.  Liveness of copied
     ids CAN be filtered here — the alive array is quiescent between
     barriers. *)
  let rebootstrap_flat t r ~v ~donor =
    let sh = t.shards.(shard_of t v) in
    let store = t.store in
    let view_size = t.sh_config.Protocol.view_size in
    let born = t.rounds in
    sh.sh_edges_removed <- sh.sh_edges_removed + clear_view t v;
    let target = max 2 sh.cfg_dl in
    let installed = ref 0 in
    let install id =
      let sl = Flat.random_empty_slot store v r.r_rng in
      Flat.set store v sl ~id ~serial:(mint t sh) ~anchor:donor ~born;
      incr installed
    in
    install donor;
    let k = ref 0 in
    while !installed < target && !k < view_size do
      let id = Flat.id_at store donor !k in
      if id >= 0 && id <> v && t.alive.(id) = 1 then install id;
      incr k
    done;
    if !installed land 1 = 1 then install donor;
    sh.sh_edges_added <- sh.sh_edges_added + !installed

  (* A random live node satisfying [accept]: bounded rejection sampling,
     then a deterministic wrap-around scan from the last draw so a thin
     target set cannot stall the barrier. *)
  let draw_live t r ~accept =
    let attempt = ref 0 and found = ref (-1) and last = ref 0 in
    while !found < 0 && !attempt < 64 do
      let u = Sf_prng.Rng.int r.r_rng t.capacity in
      last := u;
      if t.alive.(u) = 1 && accept u then found := u;
      incr attempt
    done;
    if !found >= 0 then !found
    else begin
      let u = ref !last and steps = ref 0 in
      while !found < 0 && !steps < t.capacity do
        if t.alive.(!u) = 1 && accept !u then found := !u
        else begin
          u := (!u + 1) mod t.capacity;
          incr steps
        end
      done;
      !found
    end

  (* Overlay health probe: in-degree isolation (a live node nobody points
     at and that points at nobody) and weak connectivity (union-find over
     the live subgraph, self-edges and dead refs ignored). *)
  let probe_and_repair t r =
    let store = t.store in
    let view_size = t.sh_config.Protocol.view_size in
    let cap = t.capacity in
    let parent = Array.init cap (fun i -> i) in
    let comp_size = Array.make cap 1 in
    let find i =
      let root = ref i in
      while parent.(!root) <> !root do
        root := parent.(!root)
      done;
      let c = ref i in
      while parent.(!c) <> !root do
        let next = parent.(!c) in
        parent.(!c) <- !root;
        c := next
      done;
      !root
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then
        if comp_size.(ra) >= comp_size.(rb) then begin
          parent.(rb) <- ra;
          comp_size.(ra) <- comp_size.(ra) + comp_size.(rb)
        end
        else begin
          parent.(ra) <- rb;
          comp_size.(rb) <- comp_size.(rb) + comp_size.(ra)
        end
    in
    let indeg = Array.make cap 0 in
    for u = 0 to cap - 1 do
      if t.alive.(u) = 1 then
        for k = 0 to view_size - 1 do
          let id = Flat.id_at store u k in
          if id >= 0 && id <> u && id < cap && t.alive.(id) = 1 then begin
            indeg.(id) <- indeg.(id) + 1;
            union u id
          end
        done
    done;
    (* Largest live component (smallest root breaks ties — determinism). *)
    let largest_root = ref (-1) and largest = ref 0 in
    for u = 0 to cap - 1 do
      if t.alive.(u) = 1 && find u = u && comp_size.(u) > !largest then begin
        largest := comp_size.(u);
        largest_root := u
      end
    done;
    let isolated = ref [] and minority_roots = ref [] in
    for u = cap - 1 downto 0 do
      if t.alive.(u) = 1 then begin
        if Flat.degree store u = 0 && indeg.(u) = 0 then
          isolated := u :: !isolated
        else if find u = u && u <> !largest_root then
          minority_roots := u :: !minority_roots
      end
    done;
    let healthy = !isolated = [] && !minority_roots = [] in
    if not healthy then begin
      (* Cap the repair batch: a catastrophically sick world heals over
         several supervised attempts rather than one unbounded barrier. *)
      let budget = ref 128 in
      List.iter
        (fun v ->
          if !budget > 0 then begin
            let donor =
              draw_live t r ~accept:(fun u ->
                  u <> v && Flat.degree store u >= 2)
            in
            if donor >= 0 then begin
              rebootstrap_flat t r ~v ~donor;
              decr budget
            end
          end)
        !isolated;
      List.iter
        (fun v ->
          if !budget > 0 then begin
            let lr = !largest_root in
            let donor =
              draw_live t r ~accept:(fun u ->
                  u <> v && find u = lr && Flat.degree store u >= 2)
            in
            if donor >= 0 then begin
              rebootstrap_flat t r ~v ~donor;
              decr budget
            end
          end)
        !minority_roots
    end;
    healthy

  let resil_tick t =
    match t.resil with
    | None -> ()
    | Some r ->
      let wc = world_counters t in
      (* Churn-aware Lemma 6.6 inversion: the ledger's out-of-band edge
         flux (bootstraps, leaves, rebootstraps), the sends swallowed by
         departed slots and the overlay's edge-count drift are exactly
         the terms that biased the bare estimate under churn and fault
         transients — feed their deltas alongside the counters. *)
      let dead = Array.fold_left (fun acc sh -> acc + sh.sh_to_dead) 0 t.shards in
      let eadd =
        Array.fold_left (fun acc sh -> acc + sh.sh_edges_added) 0 t.shards
      in
      let erem =
        Array.fold_left (fun acc sh -> acc + sh.sh_edges_removed) 0 t.shards
      in
      let edges = Flat.total_edges t.store in
      Sf_resil.Estimator.observe r.r_estimator
        ~to_dead:(dead - r.r_dead)
        ~churn_edges_added:(eadd - r.r_eadd)
        ~churn_edges_removed:(erem - r.r_erem)
        ~edge_delta:(edges - r.r_edges)
        ~sends:(wc.sends - r.r_sends)
        ~duplications:(wc.duplications - r.r_dups)
        ~deletions:(wc.deletions - r.r_dels) ();
      r.r_sends <- wc.sends;
      r.r_dups <- wc.duplications;
      r.r_dels <- wc.deletions;
      r.r_dead <- dead;
      r.r_eadd <- eadd;
      r.r_erem <- erem;
      r.r_edges <- edges;
      if r.r_policy.Sf_resil.Policy.retune
         && Sf_resil.Estimator.confident r.r_estimator
      then begin
        match
          Sf_resil.Controller.decide r.r_controller
            ~loss:(Sf_resil.Estimator.estimate r.r_estimator)
        with
        | None -> ()
        | Some (dl, s) ->
          (* Applied to every shard at the barrier: phases only read. *)
          Array.iter
            (fun sh ->
              sh.cfg_dl <- dl;
              sh.cfg_s <- s)
            t.shards
      end;
      if r.r_policy.Sf_resil.Policy.recover && t.rounds mod r.r_probe_every = 0
      then begin
        let now = float_of_int t.rounds in
        if Sf_resil.Supervisor.due r.r_supervisor ~now then begin
          if probe_and_repair t r then begin
            if r.r_pending then begin
              Sf_resil.Supervisor.record_success r.r_supervisor;
              r.r_pending <- false
            end
            else Sf_resil.Supervisor.record_healthy r.r_supervisor
          end
          else begin
            ignore (Sf_resil.Supervisor.record_attempt r.r_supervisor ~now);
            r.r_pending <- true
          end
        end
      end

  let resilience_statistics t =
    match t.resil with
    | None -> None
    | Some r ->
      Some
        {
          loss_estimate = Sf_resil.Estimator.estimate r.r_estimator;
          estimator_confident = Sf_resil.Estimator.confident r.r_estimator;
          estimator_windows = Sf_resil.Estimator.windows r.r_estimator;
          retunes = Sf_resil.Controller.retunes r.r_controller;
          repair_attempts = Sf_resil.Supervisor.attempts r.r_supervisor;
          recoveries = Sf_resil.Supervisor.recoveries r.r_supervisor;
        }

  let live_thresholds t =
    let sh = t.shards.(0) in
    (sh.cfg_dl, sh.cfg_s)

  let run_round t ~domains =
    refresh_windows t;
    (match t.churn_spec with
    | Some spec when spec.churn_rate > 0. ->
      Sf_engine.Par.run ~domains ~tasks:t.shard_count (fun i ->
          churn_shard t spec t.shards.(i))
    | Some _ | None -> ());
    Sf_engine.Par.run ~domains ~tasks:t.shard_count (fun i ->
        initiate_shard t t.shards.(i));
    Sf_engine.Par.run ~domains ~tasks:t.shard_count (fun i ->
        deliver_shard t t.shards.(i));
    t.rounds <- t.rounds + 1;
    resil_tick t

  let run_rounds t ?(domains = 1) rounds =
    for _ = 1 to rounds do
      run_round t ~domains
    done

  (* Bit-for-bit world equality: the domain-count determinism oracle.
     Covers the full store (ids, serials, anchors, born stamps, cached
     degrees), the round clock, the alive map, the window state, and every
     per-shard counter, threshold, free-list position, loss-chain state
     and mint position. *)
  let equal a b =
    let free_equal x y =
      x.free_len = y.free_len
      &&
      let same = ref true in
      for k = 0 to x.free_len - 1 do
        if
          x.free.((x.free_head + k) mod Array.length x.free)
          <> y.free.((y.free_head + k) mod Array.length y.free)
        then same := false
      done;
      !same
    in
    a.n = b.n && a.capacity = b.capacity
    && a.shard_count = b.shard_count
    && a.rounds = b.rounds
    && a.fault_transitions = b.fault_transitions
    && a.window_active = b.window_active
    && a.alive = b.alive
    && Flat.equal a.store b.store
    && Array.for_all2
         (fun (x : shard) (y : shard) ->
           x.minted = y.minted && x.sh_actions = y.sh_actions
           && x.sh_self_loops = y.sh_self_loops
           && x.sh_sends = y.sh_sends
           && x.sh_duplications = y.sh_duplications
           && x.sh_receipts = y.sh_receipts
           && x.sh_deletions = y.sh_deletions
           && x.sh_lost = y.sh_lost
           && x.sh_burst_drops = y.sh_burst_drops
           && x.sh_crash_drops = y.sh_crash_drops
           && x.sh_partition_drops = y.sh_partition_drops
           && x.sh_joins = y.sh_joins && x.sh_leaves = y.sh_leaves
           && x.sh_join_skips = y.sh_join_skips
           && x.sh_to_dead = y.sh_to_dead
           && x.sh_accepted_dup = y.sh_accepted_dup
           && x.sh_dropped_nondup = y.sh_dropped_nondup
           && x.sh_edges_added = y.sh_edges_added
           && x.sh_edges_removed = y.sh_edges_removed
           && x.cfg_dl = y.cfg_dl && x.cfg_s = y.cfg_s
           && x.live = y.live && free_equal x y
           && (match (x.loss, y.loss) with
              | None, None -> true
              | Some lx, Some ly ->
                Sf_faults.Loss.in_burst lx = Sf_faults.Loss.in_burst ly
              | None, Some _ | Some _, None -> false))
         a.shards b.shards
end
