(* A real deployment of S&F over UDP: every node owns a datagram socket
   bound to 127.0.0.1 on its own port, messages travel as actual datagrams,
   and nodes initiate on jittered periodic timers — the "practical
   implementation" the paper sketches in section 5, running on a real
   network stack instead of the discrete-event simulator.

   The driver multiplexes all node sockets in one process with
   [Unix.select]: wait for readable sockets or the next timer, drain
   datagrams (sockets are non-blocking), decode and run the receive step,
   then run the initiate steps that have come due.  Send-side loss
   injection keeps loss experiments controlled even though loopback UDP
   rarely drops on its own.

   An optional fault scenario (lib/faults) generalizes the send-side loss
   draw exactly as in the simulator: stateful loss processes, partitions,
   crashes, delay spikes and datagram corruption, all driven by the same
   [Sf_faults.Scenario] value a simulation uses.  The cluster's round clock
   is elapsed time over the firing period.  Without a scenario the send
   path performs the historical single Bernoulli draw per datagram.

   Fire-and-forget UDP matches S&F's assumptions exactly: no connection
   state, no retransmission, the sender never learns whether the message
   arrived. *)

type node_state = {
  node : Sf_core.Protocol.node;
  socket : Unix.file_descr;
  mutable next_fire : float;
}

(* A datagram held back by an active delay window: release time, sending
   socket, wire bytes, destination. *)
type delayed_datagram = {
  release_at : float;
  via : Unix.file_descr;
  packet : bytes;
  target : Unix.sockaddr;
}

type t = {
  config : Sf_core.Protocol.config;
  base_port : int;
  period : float;
  loss_rate : float;
  (* Injected clock: tests drive virtual time; production uses the wall
     clock.  The only wall-clock dependence in the whole tree sits in this
     default. *)
  now : unit -> float;
  rng : Sf_prng.Rng.t;
  injector : Sf_faults.Injector.t option;
  nodes : node_state array;
  read_buffer : bytes;
  mutable delayed : delayed_datagram list;
  mutable next_serial : int;
  mutable actions : int;
  mutable datagrams_sent : int;
  mutable datagrams_dropped : int;  (* injected loss (any fault cause) *)
  mutable datagrams_received : int;
  mutable datagrams_corrupted : int;
  mutable datagrams_delayed : int;
  mutable datagrams_crash_dropped : int;
  mutable datagrams_oversized : int;
  mutable datagrams_truncated : int;
  mutable decode_errors : int;
  mutable send_errors : int;
}

let address_of t node_id =
  Unix.ADDR_INET (Unix.inet_addr_loopback, t.base_port + node_id)

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let create ?(period = 0.01) ?(now = Unix.gettimeofday) ?scenario ~base_port ~n
    ~config ~loss_rate ~seed ~topology () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one node";
  if base_port < 1024 || base_port + n > 65_535 then
    invalid_arg "Cluster.create: port range out of bounds";
  let rng = Sf_prng.Rng.create seed in
  let injector =
    Option.map (fun sc -> Sf_faults.Injector.create ~scenario:sc ~n ()) scenario
  in
  let t =
    {
      config;
      base_port;
      period;
      loss_rate;
      now;
      rng;
      injector;
      nodes = [||];
      read_buffer = Bytes.create Codec.recv_buffer_size;
      delayed = [];
      next_serial = 0;
      actions = 0;
      datagrams_sent = 0;
      datagrams_dropped = 0;
      datagrams_received = 0;
      datagrams_corrupted = 0;
      datagrams_delayed = 0;
      datagrams_crash_dropped = 0;
      datagrams_oversized = 0;
      datagrams_truncated = 0;
      decode_errors = 0;
      send_errors = 0;
    }
  in
  let start = t.now () in
  (* One round of the scenario clock = one firing period elapsed. *)
  Option.iter
    (fun inj ->
      Sf_faults.Injector.set_clock inj (fun () -> (now () -. start) /. period))
    injector;
  (* Track every socket opened so far: if node k's bind (or anything after
     it) fails, the k sockets already open must not leak. *)
  let opened = ref [] in
  let make_node node_id =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    opened := socket :: !opened;
    Unix.set_nonblock socket;
    Unix.setsockopt socket Unix.SO_REUSEADDR true;
    Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + node_id));
    let node = Sf_core.Protocol.create_node ~config ~node_id in
    List.iter
      (fun v ->
        match Sf_core.View.random_empty_slot node.Sf_core.Protocol.view rng with
        | None -> invalid_arg "Cluster.create: topology exceeds view size"
        | Some slot ->
          Sf_core.View.set node.Sf_core.Protocol.view slot
            { Sf_core.View.id = v; serial = fresh_serial t; anchor = None; born = 0 })
      (topology node_id);
    {
      node;
      socket;
      (* Stagger first firings across one period. *)
      next_fire = start +. (period *. Sf_prng.Rng.float rng);
    }
  in
  match Array.init n make_node with
  | nodes -> { t with nodes }
  | exception e ->
    List.iter
      (fun socket -> try Unix.close socket with Unix.Unix_error _ -> ())
      !opened;
    raise e

let node_count t = Array.length t.nodes

let shutdown t =
  Array.iter
    (fun ns -> try Unix.close ns.socket with Unix.Unix_error _ -> ())
    t.nodes

let is_crashed t node_id =
  match t.injector with
  | None -> false
  | Some injector -> Sf_faults.Injector.is_crashed injector node_id

let transmit t ~via ~packet ~target =
  try ignore (Unix.sendto via packet 0 (Bytes.length packet) [] target)
  with Unix.Unix_error _ -> t.send_errors <- t.send_errors + 1

(* One initiate step at [ns]; the message goes out as a datagram unless the
   loss draw — or an active fault window — eats it. *)
let fire t ns =
  t.actions <- t.actions + 1;
  match
    Sf_core.Protocol.initiate t.config t.rng ~fresh_serial:(fun () -> fresh_serial t)
      ~clock:t.actions ns.node
  with
  | Sf_core.Protocol.Self_loop -> ()
  | Sf_core.Protocol.Send { destination; message; _ } -> (
    t.datagrams_sent <- t.datagrams_sent + 1;
    let verdict =
      match t.injector with
      | None ->
        if Sf_prng.Rng.bernoulli t.rng t.loss_rate then `Drop else `Deliver
      | Some injector -> (
        match
          Sf_faults.Injector.judge injector t.rng ~chance:t.loss_rate
            ~src:ns.node.Sf_core.Protocol.node_id ~dst:destination
        with
        | Sf_faults.Injector.Deliver -> `Deliver
        | Sf_faults.Injector.Corrupt_payload -> `Corrupt
        | Sf_faults.Injector.Drop _ -> `Drop)
    in
    match verdict with
    | `Drop -> t.datagrams_dropped <- t.datagrams_dropped + 1
    | (`Deliver | `Corrupt) as fate ->
      if destination >= 0 && destination < Array.length t.nodes then begin
        let packet = Codec.encode message in
        (match fate with
        | `Corrupt ->
          (* Flip the magic byte: real corrupted bytes on the wire, which
             the receiving codec rejects — the datagram is spent but the
             error path is exercised. *)
          t.datagrams_corrupted <- t.datagrams_corrupted + 1;
          Bytes.set packet 0
            (Char.chr (Char.code (Bytes.get packet 0) lxor 0xff))
        | `Deliver -> ());
        let delay_factor =
          match t.injector with
          | None -> 1.0
          | Some injector -> Sf_faults.Injector.delay_factor injector
        in
        if delay_factor > 1.0 then begin
          (* Loopback latency is negligible, so a delay window holds the
             datagram for [factor] firing periods instead. *)
          t.datagrams_delayed <- t.datagrams_delayed + 1;
          t.delayed <-
            {
              release_at = t.now () +. (delay_factor *. t.period);
              via = ns.socket;
              packet;
              target = address_of t destination;
            }
            :: t.delayed
        end
        else transmit t ~via:ns.socket ~packet ~target:(address_of t destination)
      end)

let flush_delayed t ~now =
  match t.delayed with
  | [] -> ()
  | delayed ->
    let due, pending = List.partition (fun d -> d.release_at <= now) delayed in
    t.delayed <- pending;
    (* The list is newest-first; release oldest-first. *)
    List.iter
      (fun d -> transmit t ~via:d.via ~packet:d.packet ~target:d.target)
      (List.rev due)

(* Drain every pending datagram on a readable socket.  A crashed receiver
   discards instead of processing: messages arriving during the window are
   lost, not queued for the resume. *)
let drain t ns =
  let continue = ref true in
  while !continue do
    match Unix.recvfrom ns.socket t.read_buffer 0 (Bytes.length t.read_buffer) [] with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | length, _from ->
      if is_crashed t ns.node.Sf_core.Protocol.node_id then
        t.datagrams_crash_dropped <- t.datagrams_crash_dropped + 1
      else begin
        t.datagrams_received <- t.datagrams_received + 1;
        if length > Codec.message_size then
          (* Only possible for foreign traffic: our codec never produces
             it, and the buffer headroom makes it observable. *)
          t.datagrams_oversized <- t.datagrams_oversized + 1
        else
          match Codec.decode t.read_buffer ~length with
          | Ok message ->
            ignore (Sf_core.Protocol.receive t.config t.rng ns.node message)
          | Error (Codec.Too_short _) ->
            t.datagrams_truncated <- t.datagrams_truncated + 1
          | Error _ -> t.decode_errors <- t.decode_errors + 1
      end
  done

(* Run the cluster for [duration] wall-clock seconds. *)
let run t ~duration =
  let deadline = t.now () +. duration in
  let sockets = Array.to_list (Array.map (fun ns -> ns.socket) t.nodes) in
  let by_socket = Hashtbl.create (Array.length t.nodes) in
  Array.iter (fun ns -> Hashtbl.replace by_socket ns.socket ns) t.nodes;
  let rec loop () =
    let now = t.now () in
    if now >= deadline then ()
    else begin
      (match t.injector with
      | None -> ()
      | Some injector -> Sf_faults.Injector.refresh injector);
      flush_delayed t ~now;
      (* Fire all due timers, rescheduling with jitter.  A crashed node
         skips its initiation but keeps its timer running, so it resumes —
         with its stale view — when the window closes. *)
      Array.iter
        (fun ns ->
          if ns.next_fire <= now then begin
            if not (is_crashed t ns.node.Sf_core.Protocol.node_id) then fire t ns;
            ns.next_fire <-
              now +. (t.period *. (0.9 +. (0.2 *. Sf_prng.Rng.float t.rng)))
          end)
        t.nodes;
      let next_timer =
        Array.fold_left (fun acc ns -> Float.min acc ns.next_fire) infinity t.nodes
      in
      let next_release =
        List.fold_left (fun acc d -> Float.min acc d.release_at) infinity t.delayed
      in
      let next_event = Float.min next_timer next_release in
      let timeout = Float.max 0. (Float.min (next_event -. now) (deadline -. now)) in
      match Unix.select sockets [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun socket ->
            match Hashtbl.find_opt by_socket socket with
            | Some ns -> drain t ns
            | None -> ())
          readable;
        loop ()
    end
  in
  loop ()

(* --- Measurement (mirrors the simulator's monitors) --- *)

let views t =
  Array.to_seq t.nodes
  |> Seq.map (fun ns -> (ns.node.Sf_core.Protocol.node_id, ns.node.Sf_core.Protocol.view))

let outdegree_summary t =
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun ns -> Sf_stats.Summary.add_int summary (Sf_core.Protocol.degree ns.node))
    t.nodes;
  summary

let independence_census t = Sf_core.Census.of_views (views t)

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun ns ->
      Sf_graph.Digraph.ensure_vertex g ns.node.Sf_core.Protocol.node_id;
      Sf_core.View.iter
        (fun _ e ->
          Sf_graph.Digraph.add_edge g ns.node.Sf_core.Protocol.node_id e.Sf_core.View.id)
        ns.node.Sf_core.Protocol.view)
    t.nodes;
  g

let is_weakly_connected t = Sf_graph.Digraph.is_weakly_connected (membership_graph t)

let fault_statistics t = Option.map Sf_faults.Injector.statistics t.injector

type statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;
  datagrams_received : int;
  datagrams_corrupted : int;
  datagrams_delayed : int;
  datagrams_crash_dropped : int;
  datagrams_oversized : int;
  datagrams_truncated : int;
  decode_errors : int;
  send_errors : int;
}

let statistics (t : t) =
  {
    actions = t.actions;
    datagrams_sent = t.datagrams_sent;
    datagrams_dropped = t.datagrams_dropped;
    datagrams_received = t.datagrams_received;
    datagrams_corrupted = t.datagrams_corrupted;
    datagrams_delayed = t.datagrams_delayed;
    datagrams_crash_dropped = t.datagrams_crash_dropped;
    datagrams_oversized = t.datagrams_oversized;
    datagrams_truncated = t.datagrams_truncated;
    decode_errors = t.decode_errors;
    send_errors = t.send_errors;
  }
