(* Aggregated test entry point: one Alcotest section per subsystem. *)

let () =
  Alcotest.run "send-and-forget"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("markov", Test_markov.suite);
      ("graph", Test_graph.suite);
      ("engine", Test_engine.suite);
      ("protocol", Test_protocol.suite);
      ("runner", Test_runner.suite);
      ("properties", Test_properties.suite);
      ("churn", Test_churn.suite);
      ("baselines", Test_baselines.suite);
      ("variants", Test_variants.suite);
      ("analysis", Test_analysis.suite);
      ("global-mc", Test_global_mc.suite);
      ("random-walk", Test_random_walk.suite);
      ("extensions", Test_extensions.suite);
      ("net", Test_net.suite);
      ("robustness", Test_robustness.suite);
      ("lint", Test_lint.suite);
      ("analyze", Test_analyze.suite);
      ("check", Test_check.suite);
      ("faults", Test_faults.suite);
      ("obs", Test_obs.suite);
      ("resilience", Test_resil.suite);
      ("scale", Test_scale.suite);
      ("spread", Test_spread.suite);
    ]
