(* A local view: a fixed array of [s] slots, each empty or holding one id
   instance (section 2 of the paper).  Duplicate ids are allowed — the
   membership graph is a multigraph — and are accounted as dependencies.

   Each stored instance carries bookkeeping that realizes the paper's
   analysis concepts mechanically:
   - [serial]: a unique instance number, preserved when the instance is
     forwarded and fresh when an instance is created (reinforcement or
     duplication).  Instance decay (Lemma 6.9, Fig 6.4) and temporal
     independence (Property M5) are measured by following serials.
   - [anchor]: [Some a] when the instance was created by a duplication at
     node [a] and is therefore spatially dependent on [a]'s view (Property
     M4).  Forwarding an instance without duplication clears the anchor,
     matching the dependence MC of Fig 7.1.
   - [born]: global action count at creation, for age statistics.

   Representation: four parallel unboxed int arrays (ids, serials, anchors,
   born stamps) instead of the former [entry option array].  A slot is
   empty when its id is -1; an anchor of -1 encodes [None].  Nothing is
   boxed per entry, so a view of s slots is exactly four s-word arrays —
   the same layout {!Flat} packs contiguously for whole worlds. *)

type entry = {
  id : int;
  serial : int;
  anchor : int option;
  born : int;
}

type t = {
  ids : int array;      (* -1 = empty slot *)
  serials : int array;
  anchors : int array;  (* -1 = no anchor *)
  born : int array;
  mutable filled : int;  (* cached count of non-empty slots *)
}

let create size =
  if size < 2 then invalid_arg "View.create: size must be at least 2";
  {
    ids = Array.make size (-1);
    serials = Array.make size 0;
    anchors = Array.make size (-1);
    born = Array.make size 0;
    filled = 0;
  }

let size t = Array.length t.ids

let degree t = t.filled
(* d(u): the node's outdegree. *)

let is_full t = t.filled = Array.length t.ids

let id_at t i = t.ids.(i)

let get t i =
  let id = t.ids.(i) in
  if id < 0 then None
  else
    Some
      {
        id;
        serial = t.serials.(i);
        anchor = (let a = t.anchors.(i) in if a < 0 then None else Some a);
        born = t.born.(i);
      }

let set t i entry =
  if entry.id < 0 then invalid_arg "View.set: negative id";
  if t.ids.(i) < 0 then t.filled <- t.filled + 1;
  t.ids.(i) <- entry.id;
  t.serials.(i) <- entry.serial;
  t.anchors.(i) <- (match entry.anchor with None -> -1 | Some a -> a);
  t.born.(i) <- entry.born

let clear t i =
  if t.ids.(i) >= 0 then begin
    t.ids.(i) <- -1;
    t.filled <- t.filled - 1
  end

let free_slots t = Array.length t.ids - t.filled

(* Uniformly random empty slot; the receive step of S&F places ids in
   uniformly chosen empty entries. *)
let random_empty_slot t rng =
  let free = free_slots t in
  if free = 0 then None
  else begin
    let target = Sf_prng.Rng.int rng free in
    let rec scan i remaining =
      if t.ids.(i) < 0 then
        if remaining = 0 then i else scan (i + 1) (remaining - 1)
      else scan (i + 1) remaining
    in
    Some (scan 0 target)
  end

let iter f t =
  for i = 0 to Array.length t.ids - 1 do
    match get t i with Some e -> f i e | None -> ()
  done

let fold f init t =
  let acc = ref init in
  iter (fun _ e -> acc := f !acc e) t;
  !acc

let ids t = List.rev (fold (fun acc e -> e.id :: acc) [] t)

let mem t id = fold (fun acc e -> acc || e.id = id) false t

let count_id t id = fold (fun acc e -> if e.id = id then acc + 1 else acc) 0 t

let entries t = List.rev (fold (fun acc e -> e :: acc) [] t)

let clear_all t =
  Array.fill t.ids 0 (Array.length t.ids) (-1);
  t.filled <- 0

let pp ppf t =
  Fmt.pf ppf "[";
  for i = 0 to size t - 1 do
    if i > 0 then Fmt.pf ppf " ";
    if t.ids.(i) < 0 then Fmt.pf ppf "." else Fmt.pf ppf "%d" t.ids.(i)
  done;
  Fmt.pf ppf "]"

(* --- Packed whole-world views ---

   The million-node simulation path (ROADMAP item 1) cannot afford one
   heap object per node, let alone per entry.  [Flat] packs every view of
   an n-node world into four contiguous unboxed int arrays of length
   [n * view_size], indexed by [node * view_size + slot], plus a per-node
   cached degree array.  The encoding matches the single-view layout
   above: id -1 = empty slot, anchor -1 = no anchor. *)

module Flat = struct
  type store = {
    nodes : int;
    view_size : int;
    f_ids : int array;      (* nodes * view_size; -1 = empty *)
    f_serials : int array;
    f_anchors : int array;  (* -1 = no anchor *)
    f_born : int array;
    degrees : int array;    (* per-node cached occupied-slot counts *)
  }

  type t = store

  let create ~nodes ~view_size =
    if nodes < 1 then invalid_arg "View.Flat.create: need at least one node";
    if view_size < 2 then invalid_arg "View.Flat.create: view_size must be at least 2";
    {
      nodes;
      view_size;
      f_ids = Array.make (nodes * view_size) (-1);
      f_serials = Array.make (nodes * view_size) 0;
      f_anchors = Array.make (nodes * view_size) (-1);
      f_born = Array.make (nodes * view_size) 0;
      degrees = Array.make nodes 0;
    }

  let node_count t = t.nodes
  let view_size t = t.view_size
  let degree t u = t.degrees.(u)

  let id_at t u slot = t.f_ids.((u * t.view_size) + slot)
  let serial_at t u slot = t.f_serials.((u * t.view_size) + slot)
  let anchor_at t u slot = t.f_anchors.((u * t.view_size) + slot)
  let born_at t u slot = t.f_born.((u * t.view_size) + slot)

  let set t u slot ~id ~serial ~anchor ~born =
    if id < 0 then invalid_arg "View.Flat.set: negative id";
    let i = (u * t.view_size) + slot in
    if t.f_ids.(i) < 0 then t.degrees.(u) <- t.degrees.(u) + 1;
    t.f_ids.(i) <- id;
    t.f_serials.(i) <- serial;
    t.f_anchors.(i) <- anchor;
    t.f_born.(i) <- born

  let clear t u slot =
    let i = (u * t.view_size) + slot in
    if t.f_ids.(i) >= 0 then begin
      t.f_ids.(i) <- -1;
      t.degrees.(u) <- t.degrees.(u) - 1
    end

  (* Uniformly random empty slot of node [u]; -1 when the view is full.
     Allocation-free: same selection law as {!random_empty_slot}. *)
  let random_empty_slot t u rng =
    let free = t.view_size - t.degrees.(u) in
    if free = 0 then -1
    else begin
      let base = u * t.view_size in
      let target = Sf_prng.Rng.int rng free in
      let rec scan slot remaining =
        if t.f_ids.(base + slot) < 0 then
          if remaining = 0 then slot else scan (slot + 1) (remaining - 1)
        else scan (slot + 1) remaining
      in
      scan 0 target
    end

  (* Recount of the occupied slots — the audit cross-check for the cached
     degree array. *)
  let recount_degree t u =
    let base = u * t.view_size in
    let occupied = ref 0 in
    for slot = 0 to t.view_size - 1 do
      if t.f_ids.(base + slot) >= 0 then incr occupied
    done;
    !occupied

  let total_edges t = Array.fold_left ( + ) 0 t.degrees

  let equal a b =
    a.nodes = b.nodes && a.view_size = b.view_size && a.f_ids = b.f_ids
    && a.f_serials = b.f_serials && a.f_anchors = b.f_anchors
    && a.f_born = b.f_born && a.degrees = b.degrees
end
