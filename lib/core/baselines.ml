(* Baseline gossip-membership protocols from the paper's taxonomy
   (section 3.1), implemented over the same view abstraction so their
   behaviour under message loss can be contrasted with S&F:

   - [Shuffle] (flipper style, delete-on-send with a bidirectional
     exchange): creates no spatial dependence, but every lost request or
     reply destroys the ids it carried, so the edge count bleeds away under
     loss — the failure mode S&F's duplication mechanism repairs.
   - [Cyclon] (Voulgaris, Gavidia, van Steen): shuffle with age-based
     target selection — entries carry a birth stamp and each exchange
     targets the *oldest* entry, which doubles as failure detection:
     entries pointing at dead nodes are the ones that age, so they are
     purged first.  Measurable with [kill]/[revive] churn.
   - [Push_pull] (Lpbcast/Allavena style, keep-on-send): immune to loss —
     only copies travel — but every transfer leaves a correlated copy
     behind, accumulating exactly the spatial dependence S&F avoids.
   - [Push_only] (reinforcement-only): loss-immune and dependence-free, but
     it has no mixing component, so views stagnate; it is the "impractical"
     straw man the paper mentions.

   All baselines run in the sequential-action model (a uniformly random node
   initiates per action), matching how S&F is analyzed. *)

type kind =
  | Shuffle of { exchange_size : int }
  | Cyclon of { exchange_size : int }
  | Push_pull of { gossip_size : int }
  | Push_only

type node = { id : int; view : View.t }

type t = {
  kind : kind;
  loss_rate : float;
  rng : Sf_prng.Rng.t;
  nodes : node array;
  dead : bool array;  (* killed nodes drop all traffic *)
  mutable next_serial : int;
  mutable actions : int;
  mutable messages_sent : int;
  mutable messages_lost : int;
}

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let create ~seed ~n ~view_size ~loss_rate ~kind ~topology =
  let rng = Sf_prng.Rng.create seed in
  let t =
    {
      kind;
      loss_rate;
      rng;
      nodes = Array.init n (fun id -> { id; view = View.create view_size });
      dead = Array.make n false;
      next_serial = 0;
      actions = 0;
      messages_sent = 0;
      messages_lost = 0;
    }
  in
  Array.iter
    (fun node ->
      List.iter
        (fun v ->
          match View.random_empty_slot node.view t.rng with
          | None -> invalid_arg "Baselines.create: topology exceeds view size"
          | Some slot ->
            View.set node.view slot { View.id = v; serial = fresh_serial t; anchor = None; born = 0 })
        (topology node.id))
    t.nodes;
  t

let node_count t = Array.length t.nodes

(* A message to [dst] survives the lossy channel with probability 1 - loss
   and only if the destination is alive. *)
let transmit t ~dst =
  t.messages_sent <- t.messages_sent + 1;
  if Sf_prng.Rng.bernoulli t.rng t.loss_rate || t.dead.(dst) then begin
    t.messages_lost <- t.messages_lost + 1;
    false
  end
  else true

(* Remove and return up to [k] uniformly chosen entries from a view. *)
let extract_random_entries t view k =
  let filled = ref [] in
  View.iter (fun slot _ -> filled := slot :: !filled) view;
  let slots = Array.of_list !filled in
  Sf_prng.Rng.shuffle t.rng slots;
  let take = min k (Array.length slots) in
  let out = ref [] in
  for i = 0 to take - 1 do
    (match View.get view slots.(i) with
    | Some e -> out := e :: !out
    | None -> assert false);
    View.clear view slots.(i)
  done;
  !out

(* Copy up to [k] uniformly chosen entries (without removing them). *)
let copy_random_entries t view k =
  let entries = Array.of_list (View.entries view) in
  Sf_prng.Rng.shuffle t.rng entries;
  Array.to_list (Array.sub entries 0 (min k (Array.length entries)))

(* Install entries into empty slots, dropping the excess (shuffle semantics:
   the receiver freed slots by extracting its reply first). *)
let install_into_empty t view entries =
  List.iter
    (fun e ->
      match View.random_empty_slot view t.rng with
      | Some slot -> View.set view slot e
      | None -> ())
    entries

(* Install entries, overwriting uniformly random occupied slots when the
   view is full (push-pull merge semantics). *)
let install_with_replacement t view entries =
  List.iter
    (fun e ->
      match View.random_empty_slot view t.rng with
      | Some slot -> View.set view slot e
      | None ->
        let slot = Sf_prng.Rng.int t.rng (View.size view) in
        View.set view slot e)
    entries

let random_neighbor t node =
  let entries = Array.of_list (View.entries node.view) in
  if Array.length entries = 0 then None
  else Some (Sf_prng.Rng.choose t.rng entries)

let own_instance t node =
  { View.id = node.id; serial = fresh_serial t; anchor = None; born = t.actions }

(* Mark a transferred copy as anchored at the sender, who retains the
   original — the dependence labelling shared with S&F's duplication. *)
let anchored_copy t sender entry =
  { entry with View.serial = fresh_serial t; anchor = Some sender; born = t.actions }

(* The oldest entry in the view (smallest birth stamp) — Cyclon's target
   rule and failure detector. *)
let oldest_neighbor node =
  View.fold
    (fun acc (e : View.entry) ->
      match acc with
      | Some (best : View.entry) when best.View.born <= e.View.born -> acc
      | _ -> Some e)
    None node.view

let shuffle_action ?(oldest_first = false) t ~exchange_size initiator =
  let target =
    if oldest_first then oldest_neighbor initiator else random_neighbor t initiator
  in
  match target with
  | None -> ()
  | Some target_entry ->
    let peer = t.nodes.(target_entry.View.id) in
    if peer.id = initiator.id then ()
    else begin
      (* The initiator removes the target entry plus exchange_size - 1 other
         entries, and offers them together with its own id. *)
      let slot_of_target = ref None in
      View.iter
        (fun slot e ->
          if !slot_of_target = None && e.View.serial = target_entry.View.serial then
            slot_of_target := Some slot)
        initiator.view;
      (match !slot_of_target with
      | Some slot -> View.clear initiator.view slot
      | None -> assert false);
      let extras = extract_random_entries t initiator.view (exchange_size - 1) in
      let request = own_instance t initiator :: extras in
      if transmit t ~dst:peer.id then begin
        (* Peer extracts its reply first, then installs the request. *)
        let reply = extract_random_entries t peer.view exchange_size in
        install_into_empty t peer.view request;
        if transmit t ~dst:initiator.id then install_into_empty t initiator.view reply
        (* Reply lost: the peer's extracted entries are gone and the
           initiator's freed slots stay empty — the id bleed of
           delete-on-send protocols under loss. *)
      end
      (* Request lost: the initiator's extracted entries are gone. *)
    end

let push_pull_action t ~gossip_size initiator =
  match random_neighbor t initiator with
  | None -> ()
  | Some target_entry ->
    let peer = t.nodes.(target_entry.View.id) in
    if peer.id = initiator.id then ()
    else begin
      let offer =
        own_instance t initiator
        :: List.map (anchored_copy t initiator.id) (copy_random_entries t initiator.view gossip_size)
      in
      if transmit t ~dst:peer.id then begin
        install_with_replacement t peer.view offer;
        let reply =
          own_instance t peer
          :: List.map (anchored_copy t peer.id) (copy_random_entries t peer.view gossip_size)
        in
        if transmit t ~dst:initiator.id then install_with_replacement t initiator.view reply
      end
    end

let push_only_action t initiator =
  match random_neighbor t initiator with
  | None -> ()
  | Some target_entry ->
    let peer = t.nodes.(target_entry.View.id) in
    if peer.id <> initiator.id && transmit t ~dst:peer.id then
      install_with_replacement t peer.view [ own_instance t initiator ]

let step t =
  t.actions <- t.actions + 1;
  let initiator = Sf_prng.Rng.choose t.rng t.nodes in
  if t.dead.(initiator.id) then ()
  else
    match t.kind with
    | Shuffle { exchange_size } -> shuffle_action t ~exchange_size initiator
    | Cyclon { exchange_size } -> shuffle_action ~oldest_first:true t ~exchange_size initiator
    | Push_pull { gossip_size } -> push_pull_action t ~gossip_size initiator
    | Push_only -> push_only_action t initiator

let run_rounds t rounds =
  for _ = 1 to rounds do
    for _ = 1 to Array.length t.nodes do
      step t
    done
  done

(* --- Churn --- *)

let kill t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Baselines.kill";
  t.dead.(id) <- true

(* Revive a previously killed node as a fresh incarnation: empty view
   re-seeded with up to [bootstrap] entries copied from a random live
   node. *)
let revive t id ~bootstrap =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Baselines.revive";
  t.dead.(id) <- false;
  let node = t.nodes.(id) in
  View.clear_all node.view;
  let live =
    Array.to_list t.nodes
    |> List.filter (fun n -> (not t.dead.(n.id)) && n.id <> id && View.degree n.view > 0)
  in
  match live with
  | [] -> ()
  | _ ->
    let donor = Sf_prng.Rng.choose t.rng (Array.of_list live) in
    List.iteri
      (fun i (e : View.entry) ->
        if i < bootstrap then
          match View.random_empty_slot node.view t.rng with
          | Some slot ->
            View.set node.view slot
              { e with View.serial = fresh_serial t; born = t.actions }
          | None -> ())
      (View.entries donor.view)

let is_dead t id = t.dead.(id)

(* Fraction of view entries across live nodes that point at dead nodes —
   the staleness Cyclon's age rule is designed to purge. *)
let dead_entry_fraction t =
  let total = ref 0 and stale = ref 0 in
  Array.iter
    (fun node ->
      if not t.dead.(node.id) then
        View.iter
          (fun _ e ->
            incr total;
            if t.dead.(e.View.id) then incr stale)
          node.view)
    t.nodes;
  if !total = 0 then 0. else float_of_int !stale /. float_of_int !total

(* --- Measurement (mirrors the S&F monitors) --- *)

let total_instances t =
  Array.fold_left
    (fun acc node -> if t.dead.(node.id) then acc else acc + View.degree node.view)
    0 t.nodes

let outdegree_summary t =
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun node ->
      if not t.dead.(node.id) then
        Sf_stats.Summary.add_int summary (View.degree node.view))
    t.nodes;
  summary

let indegree_summary t =
  let counts = Array.make (Array.length t.nodes) 0 in
  Array.iter
    (fun node ->
      View.iter
        (fun _ e ->
          if e.View.id >= 0 && e.View.id < Array.length counts then
            counts.(e.View.id) <- counts.(e.View.id) + 1)
        node.view)
    t.nodes;
  Sf_stats.Summary.of_int_array counts

let independence_census t =
  Census.of_views
    (Array.to_seq t.nodes
    |> Seq.filter (fun n -> not t.dead.(n.id))
    |> Seq.map (fun n -> (n.id, n.view)))

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun node ->
      if not t.dead.(node.id) then begin
        Sf_graph.Digraph.ensure_vertex g node.id;
        View.iter (fun _ e -> Sf_graph.Digraph.add_edge g node.id e.View.id) node.view
      end)
    t.nodes;
  g

let is_weakly_connected t = Sf_graph.Digraph.is_weakly_connected (membership_graph t)
