# Convenience wrappers around dune; CI runs the same three gates.

.PHONY: all build lint analyze test check storm soak obs scale storm-scale spread cluster bench clean

all: lint analyze build test

build:
	dune build

lint:
	dune build @lint

# AST-grade passes (shared-mutable-state inventory, effect signatures,
# AST-precise partiality) over lib/bin/bench/tool, ratcheted by
# analyze.baseline; writes the machine-readable shared-state report CI
# uploads.  `sfg analyze` prints the same inventory as a table.
analyze:
	dune build @analyze
	dune exec tool/analyze/sf_analyze.exe -- --baseline analyze.baseline \
	  --report ANALYZE_report.json lib bin bench tool

test:
	dune runtest

# A fully audited simulation: every S&F action checked against the paper's
# invariants (M1 degree bounds, edge conservation, the dL duplication rule),
# with periodic full scans.  Nonzero exit on any violation.
check: build
	dune exec bin/sfg.exe -- check --n 1000 --rounds 50 --loss 0.0
	dune exec bin/sfg.exe -- check --n 1000 --rounds 50 --loss 0.2

# Fault-matrix smoke: each storm drives a scenario through the sequential
# simulator under the strict invariant audit, then replays it on a real
# UDP loopback cluster and re-checks every view (M1 bounds, parity,
# soundness).  Nonzero exit on any violation.  Distinct seeds and ports so
# the runs are independent.
storm: build
	dune exec bin/sfg.exe -- storm --seed 11 --port 48100
	dune exec bin/sfg.exe -- storm --seed 23 --rounds 50 --port 48200 \
	  --scenario "partition@5-20:3;crash@25-32:0-5"
	dune exec bin/sfg.exe -- storm --seed 37 --rounds 60 --port 48300 \
	  --scenario "ge:0.25:6"

# Resilience soak (budget: ~1 minute): a chaos scenario — bursty loss, a
# partition, a crash wave — under the full self-healing policy, first on
# the audited simulator (estimator accuracy checked against the
# injector's ground truth) and then on a UDP loopback cluster with
# crash/rebind.  The RSOAK bench section re-runs the simulator leg and
# writes BENCH_resil.json, the artifact CI uploads.  Nonzero exit on any
# failed verdict.
soak: build
	dune exec bin/sfg.exe -- soak --port 48400
	dune exec bench/main.exe -- RSOAK

# Observability smoke: a metrics snapshot and a trace dump from the
# instrumented simulator, plus the determinism property the tracer
# guarantees — equal seeds dump byte-identical JSONL.
obs: build
	dune exec bin/sfg.exe -- top --once --n 200 --rounds 50
	dune exec bin/sfg.exe -- trace --n 100 --rounds 5 -o /tmp/sfg-trace-a.jsonl
	dune exec bin/sfg.exe -- trace --n 100 --rounds 5 -o /tmp/sfg-trace-b.jsonl
	cmp /tmp/sfg-trace-a.jsonl /tmp/sfg-trace-b.jsonl
	rm -f /tmp/sfg-trace-a.jsonl /tmp/sfg-trace-b.jsonl

# Scale smoke (budget: well under a minute): the sharded flat-state
# engine at n = 10^4 under the strict round-granular audit and the
# domain-count determinism cross-check, then the SCALE10 bench section
# which writes BENCH_scale.json.  The full million-node ladder is
# `dune exec bench/main.exe -- SCALE`.
scale: build
	dune exec bin/sfg.exe -- scale --n 10000 --rounds 30 --loss 0.05 \
	  --audit --verify-domains 2
	dune exec bench/main.exe -- SCALE10

# Chaos-at-scale gate (budget: well under a minute): the sharded engine
# at n = 10^4 under a mixed GE + partition + crash scenario with churn
# and the adaptive resilience stack, audited strictly and cross-checked
# for domain-count determinism, then the SSTORM bench section which
# writes BENCH_sstorm.json.  Exit codes follow storm/soak: 1 on an audit
# or determinism failure or a failed verdict, 2 when a declared fault
# class never engaged.
storm-scale: build
	dune exec bin/sfg.exe -- scale --n 10000 --rounds 30 \
	  --scenario "ge:0.2:8;partition@5-12:2;crash@15-20:0-999" \
	  --churn 0.01 --headroom 1024 --resilience --audit --verify-domains 2
	dune exec bench/main.exe -- SSTORM

# Dissemination gate (budget: well under a minute): a push-pull rumor
# spread over live views at n = 10^4 under bursty loss with the
# domain-count determinism cross-check, then the SPREAD10 bench section
# — the strategy x loss grid at n = 10^3, 10^4 with the coverage,
# log2-envelope and direct-beats-push checks — which writes
# BENCH_spread.json.  The full ladder to n = 10^6 is
# `dune exec bench/main.exe -- SPREAD`.
spread: build
	dune exec bin/sfg.exe -- spread --strategy push-pull --n 10000 \
	  --scenario "ge:0.2:8" --verify-domains
	dune exec bench/main.exe -- SPREAD10

# Multi-process cluster gate (budget: well under a minute): fork 8 real
# node-host processes (256 UDP sockets) under bursty loss with a crash
# window realized as a genuine kill -9 plus controller respawn, once all-v2
# and once with alternating v1/v2 hosts (per-peer downgrade), gating on
# M1 bounds, parity and weak connectivity of the merged post-heal views;
# then the CLUSTER bench section re-runs both legs and writes
# BENCH_cluster.json (datagrams/s, batch-fill, per-action p50/p99).
# Exit codes follow storm/soak: 1 on a failed verdict, 2 when a declared
# fault class left no process-level evidence.
cluster: build
	dune exec bin/sfg.exe -- cluster --quiet --port 47200
	dune exec bin/sfg.exe -- cluster --quiet --codec mixed --port 47600
	dune exec bench/main.exe -- CLUSTER

bench:
	dune exec bench/main.exe

clean:
	dune clean
