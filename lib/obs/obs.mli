(** The observability bundle a driver carries: a metrics registry plus an
    optional event tracer.

    Drivers default to a private bundle (metrics always on — updates are
    unconditional O(1) writes); pass one shared bundle down the stack for
    a global view, and attach a tracer to enable event tracing. *)

type t

val create : ?tracer:Trace.t -> ?metrics:Metrics.t -> unit -> t
(** A fresh private registry unless [metrics] is given; tracing off
    unless [tracer] is given. *)

val metrics : t -> Metrics.t

val tracer : t -> Trace.t option

val tracing : t -> bool
(** [true] iff a tracer is attached — lets hot paths skip computing trace
    stamps entirely when tracing is off. *)

val trace : t -> now:float -> Trace.event -> unit
(** Record into the tracer; a no-op without one. *)
