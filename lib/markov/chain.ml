(* Finite Markov chains with sparse row-stochastic transition matrices.

   The paper's analyses are all phrased as Markov chains: the global MC on
   membership graphs (section 7.1), the 2-D degree MC (section 6.2) and the
   two-state dependence MC (section 7.4).  This module provides the generic
   machinery: construction from weighted edges, ergodicity checks
   (irreducibility via Tarjan, aperiodicity via the cycle-gcd criterion),
   stationary distributions by power iteration, and step-distance
   diagnostics used for temporal-independence measurements. *)

type t = {
  size : int;
  (* rows.(i) lists (j, p) with p > 0; each row sums to 1. *)
  rows : (int * float) array array;
}

let size t = t.size

let row t i = t.rows.(i)

(* Build from possibly-duplicated weighted edges; rows are accumulated and
   normalized. Rows with no outgoing weight get a self-loop (absorbing). *)
let of_weighted_edges ~size edges =
  let tables = Array.init size (fun _ -> Hashtbl.create 8) in
  List.iter
    (fun (i, j, w) ->
      if i < 0 || i >= size || j < 0 || j >= size then
        invalid_arg "Chain.of_weighted_edges: vertex out of range";
      if w < 0. then invalid_arg "Chain.of_weighted_edges: negative weight";
      if w > 0. then
        let tbl = tables.(i) in
        Hashtbl.replace tbl j (w +. Option.value ~default:0. (Hashtbl.find_opt tbl j)))
    edges;
  let rows =
    Array.mapi
      (fun i tbl ->
        let total = Hashtbl.fold (fun _ w acc -> acc +. w) tbl 0. in
        if total <= 0. then [| (i, 1.) |]
        else begin
          let cells =
            Hashtbl.fold (fun j w acc -> (j, w /. total) :: acc) tbl []
          in
          let arr = Array.of_list cells in
          Array.sort (fun (a, _) (b, _) -> compare a b) arr;
          arr
        end)
      tables
  in
  { size; rows }

(* Build from a row generator: [f i] returns the weighted successors of i. *)
let of_rows ~size f =
  let rows =
    Array.init size (fun i ->
        let cells = f i in
        let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. cells in
        if total <= 0. then [| (i, 1.) |]
        else begin
          let arr = Array.of_list (List.map (fun (j, w) -> (j, w /. total)) cells) in
          Array.sort (fun (a, _) (b, _) -> compare a b) arr;
          arr
        end)
  in
  { size; rows }

let successors t i = Array.to_list (Array.map fst t.rows.(i))

let transition_probability t i j =
  Array.fold_left (fun acc (j', p) -> if j' = j then acc +. p else acc) 0. t.rows.(i)

let is_irreducible t =
  Scc.is_strongly_connected ~n:t.size ~successors:(successors t)

(* Period of an irreducible chain: gcd over all edges (u,v) of
   depth(u) + 1 - depth(v) where depth is BFS distance from vertex 0.
   The chain is aperiodic iff the period is 1. *)
let period t =
  let depth = Array.make t.size (-1) in
  depth.(0) <- 0;
  let queue = Queue.create () in
  Queue.push 0 queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (v, _) ->
        if depth.(v) = -1 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.push v queue
        end)
      t.rows.(u)
  done;
  let g = ref 0 in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  for u = 0 to t.size - 1 do
    if depth.(u) >= 0 then
      Array.iter
        (fun (v, _) ->
          if depth.(v) >= 0 then g := gcd !g (abs (depth.(u) + 1 - depth.(v))))
        t.rows.(u)
  done;
  if !g = 0 then 1 else !g

let is_aperiodic t = period t = 1

let is_ergodic t = is_irreducible t && is_aperiodic t

(* One step of the (left) action: p' = p P.  Works for any vector, not just
   distributions — the mixing diagnostics feed signed vectors — so only
   exact zeros are skipped. *)
let step t p =
  let p' = Array.make t.size 0. in
  Array.iteri
    (fun i pi ->
      if pi <> 0. then
        Array.iter (fun (j, w) -> p'.(j) <- p'.(j) +. (pi *. w)) t.rows.(i))
    p;
  p'

let step_n t p n =
  let rec go p k = if k = 0 then p else go (step t p) (k - 1) in
  go (Array.copy p) n

let l1_distance a b =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc

let tv_distance a b = 0.5 *. l1_distance a b

let uniform_distribution n = Array.make n (1. /. float_of_int n)

let point_distribution ~size i =
  let p = Array.make size 0. in
  p.(i) <- 1.;
  p

type stationary_result = {
  distribution : float array;
  iterations : int;
  residual : float;  (* final l1 step distance *)
}

(* Power iteration to the stationary distribution.  For periodic chains the
   raw iteration oscillates, so we iterate the lazy chain (I+P)/2, which has
   the same stationary distribution and is always aperiodic. *)
let stationary ?(tolerance = 1e-12) ?(max_iterations = 200_000) ?initial t =
  let p0 =
    match initial with
    | Some p ->
      if Array.length p <> t.size then invalid_arg "Chain.stationary: bad initial";
      Array.copy p
    | None -> uniform_distribution t.size
  in
  let lazy_step p =
    let q = step t p in
    Array.mapi (fun i x -> 0.5 *. (x +. p.(i))) q
  in
  let rec go p k =
    let p' = lazy_step p in
    let r = l1_distance p p' in
    if r < tolerance || k + 1 >= max_iterations then
      { distribution = p'; iterations = k + 1; residual = r }
    else go p' (k + 1)
  in
  go p0 0

(* Expected hitting time of [target] from [source] by solving the linear
   system with Gauss-Seidel sweeps; adequate for the small chains we
   diagnose. Returns nan if it fails to converge. *)
let expected_hitting_time ?(tolerance = 1e-10) ?(max_sweeps = 100_000) t ~source ~target =
  if source = target then 0.
  else begin
    let h = Array.make t.size 0. in
    let converged = ref false in
    let sweeps = ref 0 in
    while (not !converged) && !sweeps < max_sweeps do
      incr sweeps;
      let delta = ref 0. in
      for i = 0 to t.size - 1 do
        if i <> target then begin
          let acc = ref 1. in
          let self = ref 0. in
          Array.iter
            (fun (j, p) ->
              if j = i then self := !self +. p
              else if j <> target then acc := !acc +. (p *. h.(j)))
            t.rows.(i);
          let v = if !self >= 1. then infinity else !acc /. (1. -. !self) in
          delta := Float.max !delta (Float.abs (v -. h.(i)));
          h.(i) <- v
        end
      done;
      if !delta < tolerance then converged := true
    done;
    if !converged then h.(source) else Float.nan
  end

(* Sample a trajectory using an external uniform source in [0,1). *)
let sample_step t ~uniform i =
  let x = uniform () in
  let cells = t.rows.(i) in
  let n = Array.length cells in
  let rec go k acc =
    if k >= n - 1 then fst cells.(n - 1)
    else
      let j, p = cells.(k) in
      let acc = acc +. p in
      if x < acc then j else go (k + 1) acc
  in
  go 0 0.
