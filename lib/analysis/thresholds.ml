(* Threshold selection, section 6.3 of the paper.

   Given a target expected outdegree d_hat (application-driven) and a
   duplication/deletion budget delta, choose the protocol parameters so
   that, with no loss,

     (1) E(d(u)) = d_hat            (via dm = 3 d_hat, Lemma 6.3)
     (2) duplication is rare        (outdegree rarely sits at dL)
     (3) deletion is rare           (outdegree rarely needs to exceed s)

   using the analytic outdegree distribution of equation (6.1):

     dL = max { d' even in [0, d_hat]  : Pr(d <= d') <= delta }
     s  = min { d' even in [d_hat, dm] : Pr(d >  d') <= delta }

   On the upper side we read the paper's condition "Pr(d(u) >= s) < delta"
   as the probability of the *deletion event*: a deletion substitutes for
   the outdegree exceeding s (a full view receiving a message would go to
   s + 2), so the relevant unconstrained tail is Pr(d > s).  This
   event-based reading reproduces the paper's example exactly
   (d_hat = 30, delta = 0.01 -> dL = 18, s = 40); the literal symmetric
   reading Pr(d >= s) <= delta gives s = 42 instead and is available as
   [select_literal] for comparison. *)

type t = {
  d_hat : int;              (* target expected outdegree *)
  delta : float;            (* duplication/deletion probability budget *)
  dm : int;                 (* implied uniform sum degree, 3 * d_hat *)
  lower_threshold : int;    (* dL *)
  view_size : int;          (* s *)
  p_at_or_below_lower : float;  (* Pr(d <= dL) under (6.1) *)
  p_above_size : float;         (* Pr(d > s) under (6.1) *)
}

let validate ~d_hat ~delta =
  if d_hat <= 0 || d_hat mod 2 <> 0 then
    invalid_arg "Thresholds.select: d_hat must be positive and even";
  if delta <= 0. || delta >= 0.5 then
    invalid_arg "Thresholds.select: delta must lie in (0, 0.5)"

let lower_threshold_of dist ~d_hat ~delta =
  let best = ref 0 in
  let d = ref 0 in
  while !d <= d_hat do
    if Sf_stats.Pmf.cdf dist !d <= delta then best := !d;
    d := !d + 2
  done;
  !best

let view_size_of dist ~d_hat ~dm ~delta ~tail =
  let found = ref dm in
  let d = ref dm in
  while !d >= d_hat do
    if tail dist !d <= delta then found := !d;
    d := !d - 2
  done;
  !found

let build ~d_hat ~delta ~tail =
  validate ~d_hat ~delta;
  let dm = 3 * d_hat in
  let dist = Analytic.outdegree_distribution ~dm in
  let lower_threshold = lower_threshold_of dist ~d_hat ~delta in
  let view_size = view_size_of dist ~d_hat ~dm ~delta ~tail in
  {
    d_hat;
    delta;
    dm;
    lower_threshold;
    view_size;
    p_at_or_below_lower = Sf_stats.Pmf.cdf dist lower_threshold;
    p_above_size = Sf_stats.Pmf.ccdf dist (view_size + 1);
  }

let select ~d_hat ~delta =
  build ~d_hat ~delta ~tail:(fun dist d -> Sf_stats.Pmf.ccdf dist (d + 1))

let select_literal ~d_hat ~delta =
  build ~d_hat ~delta ~tail:(fun dist d -> Sf_stats.Pmf.ccdf dist d)

(* Loss-aware variant of the 6.3 rule, used by the adaptive controller
   (lib/resilience).  The paper derives dL for the no-loss regime and
   notes (Lemma 6.6) that duplication is the protocol's only counterweight
   to loss: each lost message silently removes two edges, and only sends
   issued at or below dL put them back.  To keep E(d) pinned at d_hat
   under loss, duplication must fire with probability ~ loss + delta
   rather than delta, i.e. the lower threshold rises until the eq. (6.1)
   mass at or below it covers the loss rate:

     dL(loss) = max { d' even in [0, d_hat] : Pr(d <= d') <= delta + loss }

   The deletion side is loss-independent (loss only ever removes edges,
   never overfills a view), so s keeps its event-based reading.  At
   loss = 0 this coincides with [select] exactly. *)
let select_lossy ~d_hat ~delta ~loss =
  validate ~d_hat ~delta;
  if loss < 0. || loss >= 0.5 then
    invalid_arg "Thresholds.select_lossy: loss must lie in [0, 0.5)";
  let dm = 3 * d_hat in
  let dist = Analytic.outdegree_distribution ~dm in
  let lower_threshold = lower_threshold_of dist ~d_hat ~delta:(delta +. loss) in
  let view_size =
    view_size_of dist ~d_hat ~dm ~delta ~tail:(fun dist d ->
        Sf_stats.Pmf.ccdf dist (d + 1))
  in
  (* dL can climb arbitrarily close to d_hat as loss grows; protocol
     validity (Protocol.make_config) needs dL <= s - 6. *)
  let lower_threshold = min lower_threshold (view_size - 6) in
  {
    d_hat;
    delta;
    dm;
    lower_threshold;
    view_size;
    p_at_or_below_lower = Sf_stats.Pmf.cdf dist lower_threshold;
    p_above_size = Sf_stats.Pmf.ccdf dist (view_size + 1);
  }

let to_config t =
  Sf_core.Protocol.make_config ~view_size:t.view_size ~lower_threshold:t.lower_threshold

let pp ppf t =
  Fmt.pf ppf
    "d_hat=%d delta=%.3f -> dL=%d s=%d  (Pr(d<=dL)=%.4f, Pr(d>s)=%.4f)"
    t.d_hat t.delta t.lower_threshold t.view_size t.p_at_or_below_lower
    t.p_above_size
