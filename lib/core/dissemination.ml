(* Rumor dissemination over membership views — the application the paper's
   Property M1 discussion motivates ("logarithmic size views are used in
   order to ensure fast dissemination of gossiped information [13]").

   A push epidemic: starting from one infected node, each round every
   infected node pushes the rumor to [fanout] ids drawn from its *current*
   view; each push is a message subject to the ambient loss rate.  On a
   uniform evolving membership the rumor reaches everyone in O(log n)
   rounds; on a structured topology (ring) it crawls.

   The dissemination runs interleaved with the membership protocol, so the
   views it reads are the live, evolving ones. *)

type trace = {
  rounds_to_half : int option;
  rounds_to_all : int option;        (* to [coverage_target] of live nodes *)
  coverage : float array;            (* infected fraction per round *)
  pushes : int;
}

let spread ?(coverage_target = 0.99) ?(max_rounds = 200) runner rng ~fanout ~loss_rate
    ~source () =
  let infected = Hashtbl.create 1024 in
  Hashtbl.replace infected source ();
  let pushes = ref 0 in
  let coverage = ref [] in
  let fraction () =
    float_of_int (Hashtbl.length infected)
    /. float_of_int (max 1 (Runner.live_count runner))
  in
  let rounds_to_half = ref None and rounds_to_all = ref None in
  let round = ref 0 in
  while !rounds_to_all = None && !round < max_rounds do
    incr round;
    (* The membership keeps evolving underneath. *)
    Runner.run_rounds runner 1;
    (* Every infected node pushes to fanout targets from its current view. *)
    let currently_infected =
      Hashtbl.fold (fun id () acc -> id :: acc) infected []
    in
    List.iter
      (fun id ->
        match Runner.find_node runner id with
        | None -> () (* infected node left *)
        | Some node ->
          let targets = Sampling.sample_many runner rng ~node_id:node.Protocol.node_id ~k:fanout in
          List.iter
            (fun target ->
              incr pushes;
              if not (Sf_prng.Rng.bernoulli rng loss_rate) then
                if Runner.find_node runner target <> None then
                  Hashtbl.replace infected target ())
            targets)
      currently_infected;
    let f = fraction () in
    coverage := f :: !coverage;
    if !rounds_to_half = None && f >= 0.5 then rounds_to_half := Some !round;
    if !rounds_to_all = None && f >= coverage_target then rounds_to_all := Some !round
  done;
  {
    rounds_to_half = !rounds_to_half;
    rounds_to_all = !rounds_to_all;
    coverage = Array.of_list (List.rev !coverage);
    pushes = !pushes;
  }
