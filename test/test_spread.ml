(* Tests for lib/dissemination: the strategy engines (sequential and
   flat-state sharded), their determinism contracts, the compat shim's
   byte-identity with the historical push spread, and the coverage
   semantics under crash faults. *)

module Runner = Sf_core.Runner
module Sharded = Sf_core.Runner.Sharded
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Sampling = Sf_core.Sampling
module Strategy = Sf_spread.Strategy
module Sequential = Sf_spread.Sequential
module Report = Sf_spread.Report
module Flat = Sf_spread.Flat
module Dissemination = Sf_spread.Dissemination
module Rng = Sf_prng.Rng

let config = Protocol.make_config ~view_size:16 ~lower_threshold:4

let scenario s =
  match Sf_faults.Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> Alcotest.fail ("scenario parse: " ^ e)

let make_runner ?scenario ?(seed = 77) ?(n = 400) ?(loss = 0.) () =
  let rng = Rng.create (seed + 1000) in
  let topology = Topology.regular rng ~n ~out_degree:8 in
  Runner.create ?scenario ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Compat shim: byte-identity with the historical push spread --- *)

(* The pre-refactor [Sf_core.Dissemination.spread], inlined verbatim (its
   whole body fits on a page): one Hashtbl of infected ids, fanout view
   samples per infected node per round, one unconditional bernoulli per
   push.  The shim must replay it draw-for-draw. *)
let reference_spread ?(coverage_target = 0.99) ?(max_rounds = 200) runner rng
    ~fanout ~loss_rate ~source () =
  let infected = Hashtbl.create 1024 in
  Hashtbl.replace infected source ();
  let pushes = ref 0 in
  let coverage = ref [] in
  let fraction () =
    float_of_int (Hashtbl.length infected)
    /. float_of_int (max 1 (Runner.live_count runner))
  in
  let rounds_to_half = ref None and rounds_to_all = ref None in
  let round = ref 0 in
  while !rounds_to_all = None && !round < max_rounds do
    incr round;
    Runner.run_rounds runner 1;
    let currently_infected =
      Hashtbl.fold (fun id () acc -> id :: acc) infected []
    in
    List.iter
      (fun id ->
        match Runner.find_node runner id with
        | None -> ()
        | Some node ->
          let targets =
            Sampling.sample_many runner rng ~node_id:node.Protocol.node_id
              ~k:fanout
          in
          List.iter
            (fun target ->
              incr pushes;
              if not (Rng.bernoulli rng loss_rate) then
                if Runner.find_node runner target <> None then
                  Hashtbl.replace infected target ())
            targets)
      currently_infected;
    let f = fraction () in
    coverage := f :: !coverage;
    if !rounds_to_half = None && f >= 0.5 then rounds_to_half := Some !round;
    if !rounds_to_all = None && f >= coverage_target then
      rounds_to_all := Some !round
  done;
  ( !rounds_to_half,
    !rounds_to_all,
    Array.of_list (List.rev !coverage),
    !pushes )

let test_shim_byte_identity () =
  List.iter
    (fun loss_rate ->
      let r_ref = make_runner ~loss:loss_rate ()
      and r_new = make_runner ~loss:loss_rate () in
      let rng_ref = Rng.create 4242 and rng_new = Rng.create 4242 in
      let half, all, coverage, pushes =
        reference_spread r_ref rng_ref ~fanout:2 ~loss_rate ~source:0 ()
      in
      let t =
        Dissemination.spread r_new rng_new ~fanout:2 ~loss_rate ~source:0 ()
      in
      Alcotest.(check (option int)) "rounds_to_half" half t.Dissemination.rounds_to_half;
      Alcotest.(check (option int)) "rounds_to_all" all t.Dissemination.rounds_to_all;
      Alcotest.(check int) "pushes" pushes t.Dissemination.pushes;
      Alcotest.(check (array (float 0.))) "coverage trajectory" coverage
        t.Dissemination.coverage;
      (* Same randomness consumed: the two streams are still aligned, and
         so are the two runners' membership streams. *)
      Alcotest.(check int) "rumor RNG streams aligned"
        (Rng.int rng_ref 1_000_000) (Rng.int rng_new 1_000_000);
      Alcotest.(check int) "runners advanced identically"
        (Runner.live_count r_ref) (Runner.live_count r_new))
    [ 0.; 0.2 ]

(* --- Sequential engine: per-strategy determinism --- *)

let test_sequential_determinism () =
  List.iter
    (fun strategy ->
      let run () =
        let r = make_runner ~scenario:(scenario "ge:0.2:8") ~loss:0.01 () in
        Sequential.run ~strategy ~fanout:2 ~source:0 r (Rng.create 9)
      in
      let a = run () and b = run () in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " replays bit-for-bit")
        true (Report.equal a b);
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " reached target")
        true (Report.reached a);
      Alcotest.(check int)
        (Strategy.to_string strategy ^ " messages = pushes + requests")
        a.Report.messages
        (a.Report.pushes + a.Report.requests))
    Strategy.all

(* --- Coverage denominator: crashed nodes are unreachable, not missing --- *)

(* An eighth of the nodes crash for the whole run.  They can never be
   informed, so with the historical all-live denominator coverage would
   cap at 7/8 < 0.99 and the spread could never terminate; against the
   reachable (live, un-crashed) population it completes normally. *)
let test_crash_coverage_denominator () =
  let n = 400 in
  let r = make_runner ~scenario:(scenario "crash@1-200:0-49") ~n () in
  let report =
    Sequential.run ~strategy:Strategy.Push ~fanout:2 ~source:60 r
      (Rng.create 9)
  in
  Alcotest.(check bool) "reached 0.99 of reachable nodes" true
    (Report.reached report);
  Alcotest.(check bool)
    (Fmt.str "terminated early (%d rounds)" report.Report.rounds)
    true
    (report.Report.rounds < 200);
  Alcotest.(check bool) "some messages died on crashed targets" true
    (report.Report.lost > 0)

(* --- Flat engine: domain-count invariance under chaos --- *)

let flat_chaos_world () =
  Sharded.create ~shards:8 ~loss_rate:0. ~init:Sharded.Scatter
    ~scenario:(scenario "ge:0.2:8;crash@2-6:0-39")
    ~churn:{ Sharded.churn_rate = 0.01; headroom = 64 }
    ~seed:5 ~n:800 ~config ()

let test_flat_domain_invariance () =
  List.iter
    (fun strategy ->
      let run domains =
        let w = flat_chaos_world () in
        Sharded.run_rounds w ~domains 10;
        let sp = Flat.create ~strategy ~source:0 ~seed:11 w in
        let report = Flat.run ~max_rounds:60 ~domains sp in
        (sp, report)
      in
      let sp1, rep1 = run 1 and sp2, rep2 = run 2 and sp4, rep4 = run 4 in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ ": 2 domains, engine bit-identical")
        true (Flat.equal sp1 sp2);
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ ": 4 domains, engine bit-identical")
        true (Flat.equal sp1 sp4);
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ ": reports identical")
        true
        (Report.equal rep1 rep2 && Report.equal rep1 rep4);
      Alcotest.(check int)
        (Strategy.to_string strategy ^ ": infection census identical")
        (Flat.infected_count sp1) (Flat.infected_count sp4))
    Strategy.all

(* --- Flat engine: the two headline spreading claims, at n = 10^4 --- *)

let flat_leg ~strategy ~n ~seed =
  let w =
    Sharded.create ~shards:16 ~loss_rate:0. ~init:Sharded.Scatter
      ~scenario:(scenario "ge:0.2:8") ~seed ~n ~config ()
  in
  Sharded.run_rounds w ~domains:4 20;
  let sp = Flat.create ~strategy ~fanout:2 ~source:0 ~seed:(seed + 6) w in
  Flat.run ~max_rounds:120 ~domains:4 sp

(* Doerr et al.: push-pull completes in O(log n) rounds even under
   constant loss — here 20% bursty, n = 10^4, envelope c = 4. *)
let test_push_pull_log_completion () =
  let n = 10_000 in
  let report = flat_leg ~strategy:Strategy.Push_pull ~n ~seed:3 in
  let rounds =
    match report.Report.rounds_to_target with
    | Some r -> float_of_int r
    | None -> infinity
  in
  let envelope = Strategy.envelope ~c:4.0 ~n in
  Alcotest.(check bool)
    (Fmt.str "push-pull: %.0f rounds <= %.1f envelope at 20%% loss" rounds
       envelope)
    true
    (rounds <= envelope)

(* Haeupler-Malkhi: learned direct addresses buy the same coverage for
   fewer messages than blind push. *)
let test_direct_beats_push_messages () =
  let n = 10_000 in
  let push = flat_leg ~strategy:Strategy.Push ~n ~seed:3 in
  let direct = flat_leg ~strategy:Strategy.Direct ~n ~seed:3 in
  Alcotest.(check bool) "both reached" true
    (Report.reached push && Report.reached direct);
  Alcotest.(check bool)
    (Fmt.str "direct %d < push %d messages" direct.Report.messages
       push.Report.messages)
    true
    (direct.Report.messages < push.Report.messages)

let suite =
  [
    Alcotest.test_case "shim byte-identity with historical spread" `Quick
      test_shim_byte_identity;
    Alcotest.test_case "sequential per-strategy determinism" `Quick
      test_sequential_determinism;
    Alcotest.test_case "crash-aware coverage denominator" `Quick
      test_crash_coverage_denominator;
    Alcotest.test_case "flat domain-count invariance (all strategies)" `Quick
      test_flat_domain_invariance;
    Alcotest.test_case "push-pull O(log n) under loss at 10k" `Slow
      test_push_pull_log_completion;
    Alcotest.test_case "direct beats push on messages at 10k" `Slow
      test_direct_beats_push_messages;
  ]
