(* Fixed-capacity id rings for the Direct strategy: a [leads] ring of
   learned, not-yet-contacted addresses and a [recent] ring of recently
   contacted / known-informed ids (the repeat-contact throttle).  Both
   engines share this layout; the flat engine stores the same rings as
   slices of per-shard arrays and goes through the offset-based
   operations below, so sequential and flat runs of one workload learn
   identically.

   Capacities are small constants ({!Strategy.lead_capacity},
   {!Strategy.recent_capacity}); membership scans are linear over the
   occupied prefix.  Empty cells hold [-1]; ids are non-negative. *)

(* [mem arr ~off ~cap ~head ~len v]: is [v] among the [len] occupied
   cells of the ring at [arr.(off) .. arr.(off + cap - 1)]? *)
let mem arr ~off ~cap ~head ~len v =
  let found = ref false in
  for i = 0 to len - 1 do
    if arr.(off + ((head + i) mod cap)) = v then found := true
  done;
  !found

(* Append [v]; when full, overwrite the oldest cell and advance the head.
   Returns the new [(head, len)].  Callers check {!mem} first. *)
let add arr ~off ~cap ~head ~len v =
  if len < cap then begin
    arr.(off + ((head + len) mod cap)) <- v;
    (head, len + 1)
  end
  else begin
    arr.(off + head) <- v;
    ((head + 1) mod cap, len)
  end

(* Pop the oldest element, or [-1] when empty. *)
let pop arr ~off ~cap ~head ~len =
  if len = 0 then (-1, head, len)
  else begin
    let v = arr.(off + head) in
    arr.(off + head) <- -1;
    (v, (head + 1) mod cap, len - 1)
  end
