(** Probability mass functions over contiguous integer supports. *)

type t

val create : offset:int -> float array -> t
(** [create ~offset mass] builds a pmf with [mass.(i)] the probability of
    [offset + i]. Mass must be non-negative; it is copied. *)

val offset : t -> int
val length : t -> int

val max_support : t -> int
(** Largest support point. *)

val prob : t -> int -> float
(** Probability of a point (0 outside the support). *)

val total : t -> float
(** Sum of all mass (1.0 for a normalized pmf). *)

val normalize : t -> t
(** Scale to total mass 1. Raises on zero total. *)

val iter : (int -> float -> unit) -> t -> unit
val fold : ('a -> int -> float -> 'a) -> 'a -> t -> 'a

val mean : t -> float
val variance : t -> float
val std : t -> float

val mode : t -> int
(** A support point of maximal probability. *)

val cdf : t -> int -> float
(** P(X <= k). *)

val ccdf : t -> int -> float
(** P(X >= k). *)

val tv_distance : t -> t -> float
(** Total variation distance; supports need not coincide. *)

val condition : t -> (int -> bool) -> t
(** Restrict to points satisfying the predicate and renormalize. *)

val of_assoc : (int * float) list -> t
(** Build from (point, mass) pairs; duplicate points accumulate. *)

val of_samples : int array -> t
(** Empirical pmf of a non-empty integer sample. *)

val to_alist : t -> (int * float) list

val pp : Format.formatter -> t -> unit
