# Convenience wrappers around dune; CI runs the same three gates.

.PHONY: all build lint test check bench clean

all: lint build test

build:
	dune build

lint:
	dune build @lint

test:
	dune runtest

# A fully audited simulation: every S&F action checked against the paper's
# invariants (M1 degree bounds, edge conservation, the dL duplication rule),
# with periodic full scans.  Nonzero exit on any violation.
check: build
	dune exec bin/sfg.exe -- check --n 1000 --rounds 50 --loss 0.0
	dune exec bin/sfg.exe -- check --n 1000 --rounds 50 --loss 0.2

bench:
	dune exec bench/main.exe

clean:
	dune clean
