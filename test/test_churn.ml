(* Tests for churn experiments (section 6.5 of the paper). *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Churn = Sf_core.Churn
module Properties = Sf_core.Properties

let config = Protocol.make_config ~view_size:12 ~lower_threshold:4

let make_system ?(seed = 55) ?(n = 120) ?(loss = 0.) () =
  let rng = Sf_prng.Rng.create (seed + 13) in
  let topology = Topology.regular rng ~n ~out_degree:4 in
  let r = Runner.create ~seed ~n ~loss_rate:loss ~config ~topology () in
  Runner.run_rounds r 100;
  r

let test_leave_decay_trace () =
  let r = make_system () in
  let victim, trace = Churn.leave_decay r ~rounds:200 () in
  Alcotest.(check bool) "victim removed" true (Runner.find_node r victim = None);
  Alcotest.(check int) "trace length" 201 (Array.length trace);
  Alcotest.(check bool) "had instances at departure" true (trace.(0) > 0);
  Alcotest.(check bool) "decays to nearly nothing" true
    (trace.(200) <= max 1 (trace.(0) / 10))

let test_leave_decay_respects_bound () =
  (* Lemma 6.10: the average survival fraction must lie below the analytic
     upper bound at (generous) checkpoints. *)
  let r = make_system ~n:200 () in
  let fractions = Churn.leave_decay_fractions r ~repetitions:20 ~rounds:150 in
  let params =
    Sf_analysis.Decay.make_params ~loss:0. ~delta:0.02 ~lower_threshold:4 ~view_size:12
  in
  let bound = Sf_analysis.Decay.survival_curve params ~rounds:150 in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "round %d: measured %.3f <= bound %.3f" i fractions.(i) bound.(i))
        true
        (fractions.(i) <= bound.(i) +. 0.05))
    [ 25; 50; 100; 150 ]

let test_join_integration () =
  let r = make_system () in
  let trace = Churn.join_integration r ~rounds:120 in
  Alcotest.(check int) "no instances at entry" 0 trace.Churn.instances.(0);
  Alcotest.(check int) "bootstrap outdegree = dL" 4 trace.Churn.out_degrees.(0);
  Alcotest.(check bool) "creates representation" true (trace.Churn.instances.(120) > 0);
  (* Outdegree stays legal throughout. *)
  Array.iter
    (fun d -> Alcotest.(check bool) "legal outdegree" true (d >= 0 && d <= 12 && d mod 2 = 0))
    trace.Churn.out_degrees

let test_join_integration_bound () =
  (* Corollary 6.14 (loose check): within the Lemma 6.13 window the joiner
     is expected to create on the order of (dL/s)^2 * Din instances. We
     check it reaches at least one instance well within the window. *)
  let r = make_system ~n:200 () in
  let params =
    Sf_analysis.Decay.make_params ~loss:0. ~delta:0.02 ~lower_threshold:4 ~view_size:12
  in
  let window = Sf_analysis.Decay.joiner_integration_rounds params in
  let trace = Churn.join_integration r ~rounds:window in
  Alcotest.(check bool)
    (Printf.sprintf "instances %d after %d rounds" trace.Churn.instances.(window) window)
    true
    (trace.Churn.instances.(window) >= 1)

(* Sustained churn replaces the entire population over the run.  S&F keeps
   the population healthy, but perfect weak connectivity cannot be promised:
   a node whose few neighbors all depart duplicates dead ids forever and
   isolates — exactly the severe-churn caveat of the paper's section 7
   ("if the churn is severe enough to partition the network ... no
   gossip-based protocol can be expected to work well").  The test checks
   the realistic property: the giant component covers almost everyone. *)
let test_sustained_churn_keeps_system_healthy () =
  let r = make_system ~n:150 ~loss:0.02 () in
  ignore (Churn.run_with_churn r ~rounds:80 ~joins:2 ~leaves:2);
  Alcotest.(check int) "population stable" 150 (Runner.live_count r);
  let live = Runner.live_nodes r in
  let live_ids = Hashtbl.create 64 in
  Array.iter (fun n -> Hashtbl.replace live_ids n.Protocol.node_id ()) live;
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun node ->
      Sf_graph.Digraph.ensure_vertex g node.Protocol.node_id;
      Sf_core.View.iter
        (fun _ e ->
          if Hashtbl.mem live_ids e.Sf_core.View.id then
            Sf_graph.Digraph.add_edge g node.Protocol.node_id e.Sf_core.View.id)
        node.Protocol.view)
    live;
  let giant =
    List.fold_left
      (fun acc comp -> max acc (List.length comp))
      0
      (Sf_graph.Digraph.weakly_connected_components g)
  in
  Alcotest.(check bool)
    (Printf.sprintf "giant component %d of 150" giant)
    true
    (giant >= 140);
  let outs = Properties.outdegree_summary r in
  Alcotest.(check bool) "healthy degrees" true (Sf_stats.Summary.mean outs > 4.)

(* The section 5 reconnection rule heals starvation: the same severe churn
   that isolates nodes (see above) leaves no starved node behind when
   recovery is on. *)
let test_reconnection_heals_starvation () =
  let r = make_system ~n:150 ~loss:0.02 () in
  ignore (Churn.run_with_churn ~recover:true r ~rounds:80 ~joins:2 ~leaves:2);
  (* A few settle rounds: reconnected nodes re-announce themselves and
     transiently starved nodes are restocked by incoming messages. *)
  List.iter
    (fun node -> ignore (Runner.reconnect r ~node_id:node.Protocol.node_id))
    (Runner.isolated_nodes r);
  Runner.run_rounds r 10;
  Alcotest.(check int) "no isolated nodes" 0 (List.length (Runner.isolated_nodes r));
  Alcotest.(check bool) "connected after healing" true
    (Properties.is_weakly_connected r)

let test_reconnect_direct () =
  let r = make_system ~n:60 () in
  Runner.run_rounds r 20;
  let node = Runner.random_live_node r in
  (* Starve the node artificially: point its whole view at a dead id. *)
  let victim = ref None in
  Array.iter
    (fun candidate ->
      if !victim = None && candidate.Protocol.node_id <> node.Protocol.node_id then
        victim := Some candidate.Protocol.node_id)
    (Runner.live_nodes r);
  let dead =
    match !victim with Some id -> id | None -> Alcotest.fail "no victim candidate"
  in
  ignore (Runner.remove_node r dead);
  Sf_core.View.clear_all node.Protocol.view;
  Sf_core.View.set node.Protocol.view 0
    { Sf_core.View.id = dead; serial = 0; anchor = None; born = 0 };
  Sf_core.View.set node.Protocol.view 1
    { Sf_core.View.id = dead; serial = 1; anchor = None; born = 0 };
  Alcotest.(check bool) "starved" true (Runner.is_starved r node);
  (match Runner.reconnect r ~node_id:node.Protocol.node_id with
  | Runner.Reconnected { donor; installed; probes } ->
    Alcotest.(check bool) "live donor" true (Runner.find_node r donor <> None);
    Alcotest.(check bool) "entries installed" true (installed >= 2);
    Alcotest.(check bool) "probes counted" true (probes >= 1)
  | Runner.Exhausted _ -> Alcotest.fail "seen-cache should contain live ids");
  Alcotest.(check bool) "no longer starved" false (Runner.is_starved r node);
  Alcotest.(check bool) "even outdegree (Obs 5.1)" true
    (Protocol.degree node mod 2 = 0)

let test_reconnect_exhausted_when_everyone_dead () =
  let r = make_system ~n:60 () in
  Runner.run_rounds r 5;
  let keeper = (Runner.random_live_node r).Protocol.node_id in
  Array.iter
    (fun node ->
      if node.Protocol.node_id <> keeper then
        ignore (Runner.remove_node r node.Protocol.node_id))
    (Runner.live_nodes r);
  (match Runner.reconnect r ~node_id:keeper with
  | Runner.Exhausted { probes } ->
    Alcotest.(check bool) "probed something" true (probes >= 1)
  | Runner.Reconnected _ -> Alcotest.fail "no live candidate exists")

let suite =
  [
    Alcotest.test_case "leave decay trace" `Quick test_leave_decay_trace;
    Alcotest.test_case "reconnection heals starvation" `Quick test_reconnection_heals_starvation;
    Alcotest.test_case "reconnect direct" `Quick test_reconnect_direct;
    Alcotest.test_case "reconnect exhausted" `Quick test_reconnect_exhausted_when_everyone_dead;
    Alcotest.test_case "Lemma 6.10 decay bound" `Quick test_leave_decay_respects_bound;
    Alcotest.test_case "join integration" `Quick test_join_integration;
    Alcotest.test_case "Cor 6.14 integration window" `Quick test_join_integration_bound;
    Alcotest.test_case "sustained churn" `Quick test_sustained_churn_keeps_system_healthy;
  ]
