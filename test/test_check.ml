(* Tests for the Sf_check.Invariant runtime audit: clean systems pass a
   fully audited run (the acceptance runs: 1000 nodes, 10k actions, loss 0
   and 0.2), and each invariant catches a deliberately corrupted view or
   action. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module View = Sf_core.View
module Topology = Sf_core.Topology
module Invariant = Sf_check.Invariant

let make_system ?(n = 100) ?(view_size = 12) ?(lower_threshold = 4) ?(loss = 0.)
    ?(seed = 11) () =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let out_degree = min (n - 1) ((view_size + lower_threshold) / 2) in
  let out_degree = if out_degree mod 2 = 0 then out_degree else out_degree - 1 in
  let topology = Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n ~out_degree in
  Runner.create ~seed ~n ~loss_rate:loss ~config ~topology ()

let some_node r = Runner.random_live_node r

let invariants vs = List.sort_uniq compare (List.map (fun v -> v.Invariant.invariant) vs)

(* --- The acceptance runs: audited at scale --- *)

let audited_at_scale ~loss () =
  let r = make_system ~n:1000 ~view_size:40 ~lower_threshold:18 ~loss ~seed:42 () in
  (* 10 rounds of 1000 actions each = 10_000 audited actions. *)
  let stats = Invariant.audited_run ~mode:Invariant.Strict ~scan_every:1000 r ~rounds:10 in
  Alcotest.(check int) "all actions checked" 10_000 stats.Invariant.actions_checked;
  Alcotest.(check bool) "full scans ran" true (stats.Invariant.full_scans >= 10);
  Alcotest.(check int) "no violations" 0 stats.Invariant.violation_count;
  Alcotest.(check (list string)) "final scan clean" [] (invariants (Invariant.scan r))

let test_audited_run_loss_free () = audited_at_scale ~loss:0. ()
let test_audited_run_lossy () = audited_at_scale ~loss:0.2 ()

(* --- Each invariant catches a seeded corruption --- *)

(* Clearing one slot leaves an odd outdegree: parity violation. *)
let test_scan_catches_odd_degree () =
  let r = make_system () in
  Runner.run_rounds r 5;
  Alcotest.(check (list string)) "clean before" [] (invariants (Invariant.scan r));
  let node = some_node r in
  let cleared = ref false in
  View.iter
    (fun i _ -> if not !cleared then begin
        View.clear node.Protocol.view i;
        cleared := true
      end)
    node.Protocol.view;
  Alcotest.(check bool) "corrupted" true !cleared;
  Alcotest.(check (list string)) "parity caught" [ "degree-parity" ]
    (invariants (Invariant.scan r))

(* Copying an entry's serial into another slot breaks global uniqueness. *)
let test_scan_catches_duplicate_serial () =
  let r = make_system () in
  Runner.run_rounds r 5;
  let node = some_node r in
  let first = ref None in
  View.iter
    (fun i e -> if !first = None then first := Some (i, e))
    node.Protocol.view;
  (match !first with
  | None -> Alcotest.fail "expected a non-empty view"
  | Some (i, e) ->
    let other = some_node r in
    let slot = ref None in
    View.iter (fun j _ -> if !slot = None && (other != node || j <> i) then slot := Some j)
      other.Protocol.view;
    (match !slot with
    | None -> Alcotest.fail "expected a second occupied slot"
    | Some j -> View.set other.Protocol.view j e));
  let found = invariants (Invariant.scan r) in
  Alcotest.(check bool) "serial-uniqueness caught" true
    (List.mem "serial-uniqueness" found)

(* A serial at or above the mint bound cannot have been minted. *)
let test_scan_catches_serial_bound () =
  let r = make_system () in
  Runner.run_rounds r 2;
  let node = some_node r in
  View.set node.Protocol.view 0
    { View.id = 0; serial = Runner.minted_serials r + 1_000; anchor = None; born = 0 };
  let found = invariants (Invariant.scan r) in
  Alcotest.(check bool) "serial-bound caught" true (List.mem "serial-bound" found)

(* An entry born in the future contradicts the action clock. *)
let test_scan_catches_birth_bound () =
  let r = make_system () in
  Runner.run_rounds r 2;
  let node = some_node r in
  View.set node.Protocol.view 1
    {
      View.id = 0;
      serial = Runner.minted_serials r - 1;
      anchor = None;
      born = Runner.action_count r + 999;
    };
  let found = invariants (Invariant.scan r) in
  Alcotest.(check bool) "birth-bound caught" true (List.mem "birth-bound" found)

(* Removing an edge behind the auditor's back breaks conservation (or, if
   the corrupted node happens to act first, its parity check). *)
let test_strict_audit_catches_out_of_band_edit () =
  let r = make_system ~n:50 ~loss:0. () in
  Runner.run_rounds r 2;
  ignore (Invariant.attach ~mode:Invariant.Strict ~scan_every:0 r);
  let node = some_node r in
  let cleared = ref false in
  View.iter
    (fun i _ -> if not !cleared then begin
        View.clear node.Protocol.view i;
        cleared := true
      end)
    node.Protocol.view;
  let caught =
    try
      Runner.run_actions r 50;
      None
    with Invariant.Violation v -> Some v.Invariant.invariant
  in
  Invariant.detach r;
  match caught with
  | Some ("edge-conservation" | "degree-parity" | "M1-degree-bound") -> ()
  | Some other -> Alcotest.fail ("unexpected invariant: " ^ other)
  | None -> Alcotest.fail "corruption not caught"

(* Warn mode records instead of raising. *)
let test_warn_mode_records () =
  let r = make_system () in
  Runner.run_rounds r 2;
  let node = some_node r in
  let cleared = ref false in
  View.iter
    (fun i _ -> if not !cleared then begin
        View.clear node.Protocol.view i;
        cleared := true
      end)
    node.Protocol.view;
  let stats = Invariant.attach ~mode:Invariant.Warn ~scan_every:1 r in
  Runner.run_actions r 3;
  Invariant.detach r;
  Alcotest.(check bool) "violations recorded" true (stats.Invariant.violation_count > 0);
  Alcotest.(check bool) "list kept" true (stats.Invariant.violations <> [])

(* After detach, the auditor is gone: corrupted runs no longer raise. *)
let test_detach_disarms () =
  let r = make_system () in
  ignore (Invariant.attach ~mode:Invariant.Strict ~scan_every:1 r);
  Invariant.detach r;
  let node = some_node r in
  let cleared = ref false in
  View.iter
    (fun i _ -> if not !cleared then begin
        View.clear node.Protocol.view i;
        cleared := true
      end)
    node.Protocol.view;
  Runner.run_actions r 20 (* must not raise *)

(* Churn resyncs the conservation baseline instead of misfiring. *)
let test_structural_changes_resync () =
  let r = make_system ~n:80 ~loss:0. () in
  Runner.run_rounds r 3;
  let stats = Invariant.attach ~mode:Invariant.Strict ~scan_every:500 r in
  Runner.run_actions r 200;
  let id = Runner.add_node r ~bootstrap:(Runner.bootstrap_from r ~count:4) in
  Runner.run_actions r 200;
  ignore (Runner.remove_node r id);
  Runner.run_actions r 200;
  Invariant.detach r;
  Alcotest.(check int) "no violations across churn" 0 stats.Invariant.violation_count;
  Alcotest.(check bool) "baseline resyncs seen" true (stats.Invariant.resyncs >= 2)

(* Timed mode: per-action conservation disarms on the first in-flight
   message, degree and structural checks keep running via the sim monitor. *)
let test_timed_mode_audit () =
  let r = make_system ~n:60 ~loss:0.05 ~seed:3 () in
  let stats = Invariant.attach ~mode:Invariant.Strict ~scan_every:200 r in
  Runner.start_timed r (Runner.Poisson 1.0);
  Runner.run_until r 40.;
  Invariant.detach r;
  Alcotest.(check bool) "actions audited" true (stats.Invariant.actions_checked > 500);
  Alcotest.(check bool) "receipts audited" true (stats.Invariant.receipts_seen > 0);
  Alcotest.(check int) "no false positives" 0 stats.Invariant.violation_count;
  Alcotest.(check (list string)) "final scan clean" [] (invariants (Invariant.scan r))

(* Reconnection installs donor-anchored copies; the audit must accept the
   whole repair as a structural change. *)
let test_reconnect_resyncs () =
  let r = make_system ~n:40 ~loss:0. () in
  Runner.run_rounds r 3;
  let stats = Invariant.attach ~mode:Invariant.Strict ~scan_every:100 r in
  let node = some_node r in
  (match Runner.reconnect r ~node_id:node.Protocol.node_id with
  | Runner.Reconnected _ -> ()
  | Runner.Exhausted _ -> ());
  Runner.run_actions r 100;
  Invariant.detach r;
  Alcotest.(check int) "no violations" 0 stats.Invariant.violation_count

let suite =
  [
    Alcotest.test_case "audited 1k nodes x 10k actions, loss 0" `Slow
      test_audited_run_loss_free;
    Alcotest.test_case "audited 1k nodes x 10k actions, loss 0.2" `Slow
      test_audited_run_lossy;
    Alcotest.test_case "scan catches odd degree" `Quick test_scan_catches_odd_degree;
    Alcotest.test_case "scan catches duplicate serial" `Quick
      test_scan_catches_duplicate_serial;
    Alcotest.test_case "scan catches serial bound" `Quick test_scan_catches_serial_bound;
    Alcotest.test_case "scan catches birth bound" `Quick test_scan_catches_birth_bound;
    Alcotest.test_case "strict audit catches out-of-band edit" `Quick
      test_strict_audit_catches_out_of_band_edit;
    Alcotest.test_case "warn mode records" `Quick test_warn_mode_records;
    Alcotest.test_case "detach disarms" `Quick test_detach_disarms;
    Alcotest.test_case "structural changes resync" `Quick test_structural_changes_resync;
    Alcotest.test_case "timed mode audit" `Quick test_timed_mode_audit;
    Alcotest.test_case "reconnect resyncs" `Quick test_reconnect_resyncs;
  ]
