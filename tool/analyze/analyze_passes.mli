(** The sf_analyze pass engine: compiler-libs (Parsetree/Ast_iterator)
    static analysis, pure so tests can drive it on in-memory fixtures.

    Three pass families, each beyond what sf_lint's lexical rules can
    see:

    - {b shared-mutable-state inventory}: module-level bindings that
      allocate mutable state at initialisation time (refs, hashtables,
      arrays, buffers, lazy thunks, mutable records) — true globals, the
      blockers for sharding the simulator across OCaml 5 [Domain]s.
      Allocations under a lambda or functor body are per-instance and
      only counted as safe sites.
    - {b effect signatures}: per toplevel function, which of
      {e mutation, randomness, clock, io, raise} the body can perform,
      with a checked discipline for [lib/core] and [lib/engine] (no
      I/O, no ambient clocks, raises only of locally-declared
      exceptions or the [invalid_arg]/[failwith] guard forms).
    - {b AST-precise partiality}: partial stdlib calls through
      pipelines, higher-order position, local module aliases and
      [open]; indexing functions escaping as first-class values;
      refutable [let] patterns; and [\[@warning "-8"\]] exhaustiveness
      suppressions.

    Findings ratchet down through a baseline sharing sf_lint's
    allowlist contract; the inventory serializes to a deterministic
    JSON report. *)

type finding = {
  rule : string;
  path : string;
  line : int;  (** 1-based; 0 for file-level findings *)
  ident : string;  (** enclosing binding or offending name; ["-"] if none *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit

type hazard = {
  h_path : string;
  h_line : int;
  h_ident : string;
  h_kind : string;
  mutable h_classified : bool;
      (** set by {!apply_baseline}: a baselined hazard is classified
          (justified), an unclassified one is a sharding blocker *)
}

type effects = {
  mutation : bool;
  randomness : bool;
  clock : bool;
  io : bool;
  raises : bool;
}

val effect_letters : effects -> string list
(** The stable short labels used in reports: ["mut"; "rand"; "clock";
    ["io"]; "raise"], in that order, for the effects that are set. *)

type effect_sig = {
  e_path : string;
  e_line : int;
  e_name : string;
  e_effects : effects;
}

type analysis = {
  findings : finding list;
  hazards : hazard list;
  effect_sigs : effect_sig list;  (** functions with at least one effect *)
  pure_functions : int;
  safe_sites : (string * int) list;
      (** per path: mutable allocations under a lambda/functor —
          per-instance, domain-safe by construction *)
  parsed_files : int;
}

val empty_analysis : analysis

val rule_docs : (string * string) list
(** Rule ids and one-line docs, in the stable order [--list-rules]
    prints. *)

val analyze_file : path:string -> string -> analysis
(** Parse one [.ml] (all passes) or [.mli] (parse check only) and run
    the passes.  Unparseable sources yield a [parse-error] finding
    rather than an exception. *)

val analyze_files : (string * string) list -> analysis
(** [analyze_file] over every (path, source) pair, merged. *)

(** {2 Baseline — sf_lint's allowlist contract, verbatim} *)

type baseline_entry = Sf_lint_rules.Lint_rules.allow = {
  allow_path : string;
  allow_rule : string;
}

val parse_baseline : string -> (baseline_entry list, string) result
(** One ["path rule"] pair per line (['*'] matches any rule), ['#']
    comments — shared with sf_lint's parser. *)

val apply_baseline :
  baseline_entry list -> analysis -> finding list * baseline_entry list
(** Returns the findings the baseline does not suppress and the stale
    entries that suppressed nothing (the driver fails on either).  Also
    marks each suppressed hazard [h_classified] in place. *)

(** {2 Report} *)

val report_json : ?kept:finding list -> analysis -> Sf_obs.Json.t
(** The machine-readable inventory: shared-state hazards with their
    classification and per-layer unclassified counts, safe-site tallies,
    effect signatures, and the surviving findings ([kept]). *)
