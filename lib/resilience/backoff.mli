(** Capped exponential backoff with deterministic jitter (delays in
    rounds, randomness from an injected PRNG — never a wall clock).

    This module computes waits; it never sleeps.  The sf_lint
    [no-raw-backoff] rule forbids [Unix.sleep]/[Unix.sleepf] everywhere
    else in the tree so that every retry delay in the system derives from
    here and from an injected clock. *)

type t

val create :
  ?base:float ->    (* first-retry delay in rounds (default 1.0) *)
  ?factor:float ->  (* growth per consecutive failure (default 2.0) *)
  ?cap:float ->     (* ceiling on the un-jittered delay (default 32.0) *)
  ?jitter:float ->  (* jittered fraction of each delay, in [0,1] (default 0.5) *)
  rng:Sf_prng.Rng.t ->
  unit ->
  t
(** Raises [Invalid_argument] on a non-positive base, factor < 1,
    cap < base, or jitter outside [0, 1]. *)

val next : t -> float
(** Delay in rounds before the next attempt:
    [min (base * factor^attempts) cap], with the final [jitter] fraction
    drawn uniformly from the injected PRNG (so equal seeds yield equal
    delay sequences).  Advances the attempt counter. *)

val attempts : t -> int
(** Consecutive failures charged since the last {!reset}. *)

val reset : t -> unit
(** Note a success: the next delay starts again from [base]. *)
