(** Monitors for the membership-service properties of the paper's
    section 2 (M2 load balance, M3 uniformity, M4 spatial independence,
    M5 temporal independence). *)

val indegree_summary : Runner.t -> Sf_stats.Summary.t
(** Summary of live-node indegrees (M2: its variance must stay bounded). *)

val outdegree_summary : Runner.t -> Sf_stats.Summary.t

val outdegree_samples : Runner.t -> int array

val indegree_samples : Runner.t -> int array
(** Indegree of each live node, counting only entries in live views. *)

val uniformity_test :
  Runner.t ->
  snapshots:int ->
  actions_between:int ->
  float array * Sf_stats.Hypothesis.chi_square_result
(** M3: run the system, accumulating per-id appearance counts (excluding
    self-appearances) over spaced snapshots; chi-square them against
    uniformity. Advances the runner. *)

val independence_census : Runner.t -> Census.t
(** M4: census of dependent entries; [alpha] compares against the paper's
    bound 1 - 2(loss + delta). *)

val overlap_decay :
  Runner.t -> blocks:int -> rounds_per_block:int -> (int * float) list
(** M5: fraction of instances surviving from a reference snapshot after each
    block of rounds ((rounds, fraction) points, starting at (0, 1)).
    Advances the runner. *)

val is_weakly_connected : Runner.t -> bool
(** Weak connectivity of the live membership graph. *)
