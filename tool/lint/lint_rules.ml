(* The sf_lint rule engine: repo-specific static analysis over OCaml
   sources, pure so the test suite can drive it on in-memory fixtures.

   Rules are deliberately lexical — token scans over comment- and
   string-stripped source — rather than AST-based: every hazard they police
   (ambient randomness, wall clocks, partial stdlib calls, printing from
   the library) is visible at the token level, and a lexical tool stays
   trivially in sync with the compiler version.

   Violations that are intentional are suppressed through an allowlist
   file: one [path rule] pair per line, '#' comments.  Entries that no
   longer match anything are themselves reported, so the allowlist cannot
   rot. *)

type finding = {
  rule : string;
  path : string;
  line : int;  (* 1-based; 0 for file-level rules *)
  message : string;
}

let pp_finding ppf f =
  if f.line = 0 then Fmt.pf ppf "%s: [%s] %s" f.path f.rule f.message
  else Fmt.pf ppf "%s:%d: [%s] %s" f.path f.line f.rule f.message

(* --- Source stripping ---

   Replace comment and string-literal contents with spaces, preserving
   newlines so line numbers survive.  Handles nested (* *) comments,
   strings inside comments (significant to the OCaml lexer), escapes,
   character literals (so '"' does not open a string), and quoted strings
   {|…|} / {id|…|id} — whose raw payload may contain '"' and comment
   openers without desyncing the scan, in code and in comments alike. *)

let strip_literals source =
  let n = String.length source in
  let out = Bytes.of_string source in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  (* If position [i] (at '{') opens a quoted string, the position just
     past its closing |id} (or the end of input if unterminated); the
     payload is raw, so the only terminator is the exact delimiter. *)
  let quoted_string_end i =
    let rec delim j =
      if j >= n then None
      else
        match source.[j] with
        | 'a' .. 'z' | '_' -> delim (j + 1)
        | '|' -> Some j
        | _ -> None
    in
    match delim (i + 1) with
    | None -> None
    | Some bar ->
      let close = "|" ^ String.sub source (i + 1) (bar - i - 1) ^ "}" in
      let k = String.length close in
      let rec find j =
        if j + k > n then n
        else if String.sub source j k = close then j + k
        else find (j + 1)
      in
      Some (find (bar + 1))
  in
  let blank_range i stop =
    for j = i to stop - 1 do
      blank j
    done
  in
  let rec code i =
    if i >= n then ()
    else
      match source.[i] with
      | '(' when i + 1 < n && source.[i + 1] = '*' ->
        blank i;
        blank (i + 1);
        comment 1 (i + 2)
      | '"' -> string ~in_comment:false (i + 1)
      | '{' -> (
        match quoted_string_end i with
        | Some stop ->
          blank_range i stop;
          code stop
        | None -> code (i + 1))
      | '\'' when i + 2 < n && source.[i + 1] <> '\\' && source.[i + 2] = '\'' ->
        (* 'c' character literal; blank the payload ('"' in particular). *)
        blank (i + 1);
        code (i + 3)
      | '\'' when i + 3 < n && source.[i + 1] = '\\' && source.[i + 3] = '\'' ->
        blank (i + 1);
        blank (i + 2);
        code (i + 4)
      | _ -> code (i + 1)
  (* [depth] is the enclosing comment nesting when [in_comment]. *)
  and comment depth i =
    if i >= n then ()
    else
      match source.[i] with
      | '*' when i + 1 < n && source.[i + 1] = ')' ->
        blank i;
        blank (i + 1);
        if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
      | '(' when i + 1 < n && source.[i + 1] = '*' ->
        blank i;
        blank (i + 1);
        comment (depth + 1) (i + 2)
      | '"' ->
        blank i;
        string ~in_comment:true ~depth (i + 1)
      | '{' -> (
        (* The OCaml lexer recognises quoted strings inside comments too:
           an unbalanced comment closer in one must not end the comment. *)
        match quoted_string_end i with
        | Some stop ->
          blank_range i stop;
          comment depth stop
        | None ->
          blank i;
          comment depth (i + 1))
      | _ ->
        blank i;
        comment depth (i + 1)
  and string ?(depth = 0) ~in_comment i =
    if i >= n then ()
    else
      match source.[i] with
      | '\\' when i + 1 < n ->
        blank i;
        blank (i + 1);
        string ~depth ~in_comment (i + 2)
      | '"' ->
        if in_comment then blank i;
        if in_comment then comment depth (i + 1) else code (i + 1)
      | _ ->
        blank i;
        string ~depth ~in_comment (i + 1)
  in
  code 0;
  Bytes.to_string out

(* --- Token scanning --- *)

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Occurrences of [token] as a standalone qualified name: not preceded by an
   identifier character or a '.' (which would make it a submodule of
   something else), not followed by an identifier character (so [List.nth]
   does not match [List.nth_opt]). *)
let token_positions stripped token =
  let n = String.length stripped and k = String.length token in
  let ends_with_dot = token.[k - 1] = '.' in
  let rec scan from acc =
    match String.index_from_opt stripped from token.[0] with
    | None -> List.rev acc
    | Some i ->
      if i + k > n then List.rev acc
      else
        let matches =
          String.sub stripped i k = token
          && (i = 0 || (not (is_ident_char stripped.[i - 1])) && stripped.[i - 1] <> '.')
          && (ends_with_dot || i + k >= n || not (is_ident_char stripped.[i + k]))
        in
        scan (i + 1) (if matches then i :: acc else acc)
  in
  scan 0 []

let line_of_position source pos =
  let line = ref 1 in
  for i = 0 to pos - 1 do
    if source.[i] = '\n' then incr line
  done;
  !line

(* --- Rules --- *)

type rule = {
  id : string;
  doc : string;
  applies : string -> bool;  (* repo-relative path *)
  tokens : (string * string) list;  (* token, message *)
}

let in_lib path = String.length path >= 4 && String.sub path 0 4 = "lib/"

let is_ml path = Filename.check_suffix path ".ml"

let is_source path = is_ml path || Filename.check_suffix path ".mli"

let rules =
  [
    {
      id = "determinism";
      doc =
        "no ambient randomness: Random., Hashtbl.hash (use the seeded \
         sf_prng generators and keyed hashing)";
      applies = is_source;
      tokens =
        [
          ("Random.", "ambient Random bypasses the seeded sf_prng generators");
          ("Hashtbl.hash", "polymorphic hashing invites iteration-order dependence");
        ];
    };
    {
      id = "clock-discipline";
      doc =
        "wall/process clocks (Unix.gettimeofday, Sys.time) may be opened \
         only by lib/obs/clock.ml, the single timing authority; everything \
         else takes an injected clock (Sf_obs.Clock.wall, Sim.now, ?now)";
      applies = (fun path -> is_source path && path <> "lib/obs/clock.ml");
      tokens =
        [
          ( "Unix.gettimeofday",
            "ambient wall clock outside lib/obs — inject a clock" );
          ("Sys.time", "ambient process clock outside lib/obs — inject a clock");
        ];
    };
    {
      id = "no-obj-magic";
      doc = "Obj.magic is forbidden everywhere";
      applies = is_source;
      tokens = [ ("Obj.magic", "unsafe cast") ];
    };
    {
      id = "no-partial";
      doc =
        "no partial stdlib calls: List.hd, List.tl, List.nth, Option.get \
         (match explicitly or use the _opt variants)";
      applies = is_source;
      tokens =
        [
          ("List.hd", "partial: raises on []");
          ("List.tl", "partial: raises on []");
          ("List.nth", "partial: raises out of bounds");
          ("Option.get", "partial: raises on None");
        ];
    };
    {
      id = "no-raw-backoff";
      doc =
        "no raw sleeps: Unix.sleep/Unix.sleepf are forbidden outside \
         lib/resilience/backoff.ml — retry pacing must go through the \
         jittered, capped Backoff schedule (and simulated time where \
         available), never an inline sleep";
      applies = (fun path -> is_source path && path <> "lib/resilience/backoff.ml");
      tokens =
        [
          ("Unix.sleep", "raw sleep — use Sf_resil.Backoff for retry pacing");
          ("Unix.sleepf", "raw sleep — use Sf_resil.Backoff for retry pacing");
        ];
    };
    {
      id = "no-raw-process";
      doc =
        "no raw process control: Unix.fork/Unix.create_process/Unix.kill/\
         Unix.waitpid are forbidden outside lib/net/spawner.ml — process \
         lifecycle (spawn, SIGKILL chaos, reaping, respawn backoff) must go \
         through the cluster spawner so every child is tracked, reaped and \
         killed on error paths";
      applies = (fun path -> is_source path && path <> "lib/net/spawner.ml");
      tokens =
        [
          ("Unix.fork", "raw fork — spawn through Sf_net.Spawner");
          ("Unix.create_process", "raw spawn — go through Sf_net.Spawner");
          ("Unix.kill", "raw signal send — go through Sf_net.Spawner");
          ("Unix.waitpid", "raw reap — go through Sf_net.Spawner");
        ];
    };
    {
      id = "no-print";
      doc = "no direct printing inside lib/ (use logs/fmt)";
      applies = (fun path -> in_lib path && is_source path);
      tokens =
        [
          ("Printf.printf", "prints to stdout from library code");
          ("print_endline", "prints to stdout from library code");
          ("print_string", "prints to stdout from library code");
          ("print_newline", "prints to stdout from library code");
        ];
    };
  ]

let missing_mli_rule = "missing-mli"

let rule_docs =
  List.map (fun r -> (r.id, r.doc)) rules
  @ [ (missing_mli_rule, "every lib/**/*.ml must have a matching .mli") ]

(* --- Checking --- *)

let check_file ~path source =
  let applicable = List.filter (fun r -> r.applies path) rules in
  if applicable = [] then []
  else
    let stripped = strip_literals source in
    List.concat_map
      (fun r ->
        List.concat_map
          (fun (token, message) ->
            List.map
              (fun pos ->
                {
                  rule = r.id;
                  path;
                  line = line_of_position stripped pos;
                  message = Fmt.str "%s — %s" token message;
                })
              (token_positions stripped token))
          r.tokens)
      applicable

(* File-set rule: every lib/**/*.ml needs a sibling .mli. *)
let check_missing_mli paths =
  let present = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace present p ()) paths;
  List.filter_map
    (fun p ->
      if in_lib p && is_ml p && not (Hashtbl.mem present (p ^ "i")) then
        Some
          {
            rule = missing_mli_rule;
            path = p;
            line = 0;
            message = "library module has no interface file";
          }
      else None)
    paths

let check_files files =
  let per_file =
    List.concat_map (fun (path, source) -> check_file ~path source) files
  in
  per_file @ check_missing_mli (List.map fst files)

(* --- Allowlist --- *)

type allow = { allow_path : string; allow_rule : string }

(* Lines of [path rule], '#' starts a comment, blank lines ignored. *)
let parse_allowlist content =
  let entries = ref [] and errors = ref [] in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [] -> ()
      | [ path; rule ] -> entries := { allow_path = path; allow_rule = rule } :: !entries
      | _ -> errors := Fmt.str "allowlist line %d: expected 'path rule'" (i + 1) :: !errors)
    (String.split_on_char '\n' content);
  match !errors with
  | [] -> Ok (List.rev !entries)
  | es -> Error (String.concat "; " (List.rev es))

let allow_matches entry finding =
  entry.allow_path = finding.path
  && (entry.allow_rule = "*" || entry.allow_rule = finding.rule)

(* Partition findings by the allowlist; also return entries that matched
   nothing, which the driver reports as staleness errors. *)
let apply_allowlist allows findings =
  let used = Array.make (List.length allows) false in
  let kept =
    List.filter
      (fun f ->
        let allowed = ref false in
        List.iteri
          (fun i entry ->
            if allow_matches entry f then begin
              used.(i) <- true;
              allowed := true
            end)
          allows;
        not !allowed)
      findings
  in
  let stale =
    List.filteri (fun i _ -> not used.(i)) allows
  in
  (kept, stale)
