(* Tests for the Markov-chain toolkit. *)

module Chain = Sf_markov.Chain
module Scc = Sf_markov.Scc

let close ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g, got %.12g" what expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. (1. +. Float.abs expected))

(* --- SCC --- *)

let test_scc_cycle () =
  let r = Scc.tarjan ~n:4 ~successors:(fun i -> [ (i + 1) mod 4 ]) in
  Alcotest.(check int) "one component" 1 r.Scc.count

let test_scc_chain_graph () =
  (* 0 -> 1 -> 2 with no back edges: three singleton components. *)
  let succ = function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> [] in
  let r = Scc.tarjan ~n:3 ~successors:succ in
  Alcotest.(check int) "three components" 3 r.Scc.count

let test_scc_two_cycles () =
  (* Two 2-cycles joined by a one-way edge. *)
  let succ = function
    | 0 -> [ 1 ]
    | 1 -> [ 0; 2 ]
    | 2 -> [ 3 ]
    | _ -> [ 2 ]
  in
  let r = Scc.tarjan ~n:4 ~successors:succ in
  Alcotest.(check int) "two components" 2 r.Scc.count;
  Alcotest.(check bool) "0 and 1 together" true (r.Scc.component_of.(0) = r.Scc.component_of.(1));
  Alcotest.(check bool) "2 and 3 together" true (r.Scc.component_of.(2) = r.Scc.component_of.(3));
  Alcotest.(check bool) "cycles separate" true (r.Scc.component_of.(0) <> r.Scc.component_of.(2))

let test_scc_large_path_no_overflow () =
  (* The iterative implementation must survive deep recursion shapes. *)
  let n = 200_000 in
  let r = Scc.tarjan ~n ~successors:(fun i -> if i + 1 < n then [ i + 1 ] else []) in
  Alcotest.(check int) "n components" n r.Scc.count

let test_is_strongly_connected () =
  Alcotest.(check bool) "cycle yes" true
    (Scc.is_strongly_connected ~n:5 ~successors:(fun i -> [ (i + 1) mod 5 ]));
  Alcotest.(check bool) "path no" false
    (Scc.is_strongly_connected ~n:3 ~successors:(function 0 -> [ 1 ] | 1 -> [ 2 ] | _ -> []))

(* --- Chain construction --- *)

let two_state p q =
  Chain.of_rows ~size:2 (function
    | 0 -> [ (0, 1. -. p); (1, p) ]
    | _ -> [ (0, q); (1, 1. -. q) ])

let test_chain_row_normalization () =
  let c = Chain.of_weighted_edges ~size:2 [ (0, 1, 3.); (0, 0, 1.); (1, 0, 2.) ] in
  close "P(0,1)" 0.75 (Chain.transition_probability c 0 1);
  close "P(0,0)" 0.25 (Chain.transition_probability c 0 0);
  close "P(1,0)" 1. (Chain.transition_probability c 1 0)

let test_chain_absorbing_row () =
  (* A row with no edges becomes an absorbing self-loop. *)
  let c = Chain.of_weighted_edges ~size:2 [ (0, 1, 1.) ] in
  close "P(1,1)" 1. (Chain.transition_probability c 1 1)

let test_chain_duplicate_edges_accumulate () =
  let c = Chain.of_weighted_edges ~size:2 [ (0, 1, 1.); (0, 1, 1.); (0, 0, 2.) ] in
  close "accumulated" 0.5 (Chain.transition_probability c 0 1)

(* --- Ergodicity --- *)

let test_periodicity_of_cycle () =
  let c = Chain.of_rows ~size:4 (fun i -> [ ((i + 1) mod 4, 1.) ]) in
  Alcotest.(check int) "period 4" 4 (Chain.period c);
  Alcotest.(check bool) "not aperiodic" false (Chain.is_aperiodic c);
  Alcotest.(check bool) "irreducible" true (Chain.is_irreducible c)

let test_self_loop_breaks_period () =
  let c =
    Chain.of_rows ~size:4 (fun i ->
        if i = 0 then [ (1, 0.5); (0, 0.5) ] else [ ((i + 1) mod 4, 1.) ])
  in
  Alcotest.(check int) "period 1" 1 (Chain.period c);
  Alcotest.(check bool) "ergodic" true (Chain.is_ergodic c)

(* --- Stationary distributions --- *)

let test_stationary_two_state () =
  (* pi = (q, p) / (p + q). *)
  let p = 0.3 and q = 0.1 in
  let c = two_state p q in
  let r = Chain.stationary c in
  close ~eps:1e-8 "pi(0)" (q /. (p +. q)) r.Chain.distribution.(0);
  close ~eps:1e-8 "pi(1)" (p /. (p +. q)) r.Chain.distribution.(1)

let test_stationary_doubly_stochastic_uniform () =
  (* A doubly stochastic chain has the uniform stationary distribution. *)
  let c =
    Chain.of_rows ~size:5 (fun i -> [ ((i + 1) mod 5, 0.5); ((i + 2) mod 5, 0.5) ])
  in
  let r = Chain.stationary c in
  Array.iter (fun x -> close ~eps:1e-7 "uniform" 0.2 x) r.Chain.distribution

let test_stationary_periodic_chain_converges () =
  (* The lazy iteration must converge even for a period-2 chain. *)
  let c = Chain.of_rows ~size:2 (function 0 -> [ (1, 1.) ] | _ -> [ (0, 1.) ]) in
  let r = Chain.stationary c in
  close ~eps:1e-7 "pi(0)" 0.5 r.Chain.distribution.(0)

let test_step_preserves_mass () =
  let c = two_state 0.4 0.7 in
  let p = Chain.step c [| 0.25; 0.75 |] in
  close "mass preserved" 1. (p.(0) +. p.(1))

let test_step_n () =
  let c = two_state 1.0 1.0 in
  (* Deterministic swap: after 2 steps we are back. *)
  let p = Chain.step_n c [| 1.; 0. |] 2 in
  close "back to start" 1. p.(0)

let test_tv_distance_vectors () =
  close "tv" 0.5 (Chain.tv_distance [| 1.; 0. |] [| 0.5; 0.5 |])

(* --- Hitting times --- *)

let test_hitting_time_two_state () =
  (* From 0 to 1 with P(0->1) = p: geometric with mean 1/p. *)
  let c = two_state 0.25 0.5 in
  close ~eps:1e-6 "mean hitting" 4. (Chain.expected_hitting_time c ~source:0 ~target:1);
  close "self hitting 0" 0. (Chain.expected_hitting_time c ~source:1 ~target:1)

let test_hitting_time_path () =
  (* Symmetric walk on 0-1-2 with reflecting ends; hit 2 from 0: classic 4. *)
  let c =
    Chain.of_rows ~size:3 (function
      | 0 -> [ (1, 1.) ]
      | 1 -> [ (0, 0.5); (2, 0.5) ]
      | _ -> [ (1, 1.) ])
  in
  close ~eps:1e-6 "hit 2 from 0" 4. (Chain.expected_hitting_time c ~source:0 ~target:2)

(* --- Sampling --- *)

let test_sample_step_distribution () =
  let c = two_state 0.3 0.9 in
  let rng = Sf_prng.Rng.create 77 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Chain.sample_step c ~uniform:(fun () -> Sf_prng.Rng.float rng) 0 = 1 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "sampled transition rate" true (Float.abs (rate -. 0.3) < 0.01)

(* --- Properties --- *)

let random_chain_gen =
  QCheck.Gen.(
    int_range 2 8 >>= fun size ->
    let row _ =
      list_size (int_range 1 size) (pair (int_range 0 (size - 1)) (float_range 0.1 5.))
    in
    list_size (return size) (row ()) >|= fun rows -> (size, rows))

let prop_stationary_is_fixed_point =
  QCheck.Test.make ~name:"stationary distribution is a fixed point" ~count:100
    (QCheck.make random_chain_gen) (fun (size, rows) ->
      let rows = Array.of_list rows in
      let c = Chain.of_rows ~size (fun i -> rows.(i)) in
      let r = Chain.stationary c in
      let stepped = Chain.step c r.Chain.distribution in
      Chain.l1_distance stepped r.Chain.distribution < 1e-6)

let prop_rows_are_stochastic =
  QCheck.Test.make ~name:"constructed rows sum to 1" ~count:100
    (QCheck.make random_chain_gen) (fun (size, rows) ->
      let rows = Array.of_list rows in
      let c = Chain.of_rows ~size (fun i -> rows.(i)) in
      let ok = ref true in
      for i = 0 to size - 1 do
        let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0. (Chain.row c i) in
        if Float.abs (total -. 1.) > 1e-9 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "scc cycle" `Quick test_scc_cycle;
    Alcotest.test_case "scc path" `Quick test_scc_chain_graph;
    Alcotest.test_case "scc two cycles" `Quick test_scc_two_cycles;
    Alcotest.test_case "scc deep path (no stack overflow)" `Quick test_scc_large_path_no_overflow;
    Alcotest.test_case "strong connectivity" `Quick test_is_strongly_connected;
    Alcotest.test_case "row normalization" `Quick test_chain_row_normalization;
    Alcotest.test_case "absorbing empty row" `Quick test_chain_absorbing_row;
    Alcotest.test_case "duplicate edges accumulate" `Quick test_chain_duplicate_edges_accumulate;
    Alcotest.test_case "cycle period" `Quick test_periodicity_of_cycle;
    Alcotest.test_case "self-loop aperiodicity" `Quick test_self_loop_breaks_period;
    Alcotest.test_case "two-state stationary" `Quick test_stationary_two_state;
    Alcotest.test_case "doubly stochastic uniform" `Quick test_stationary_doubly_stochastic_uniform;
    Alcotest.test_case "periodic chain converges" `Quick test_stationary_periodic_chain_converges;
    Alcotest.test_case "step preserves mass" `Quick test_step_preserves_mass;
    Alcotest.test_case "step_n" `Quick test_step_n;
    Alcotest.test_case "tv distance" `Quick test_tv_distance_vectors;
    Alcotest.test_case "hitting time two-state" `Quick test_hitting_time_two_state;
    Alcotest.test_case "hitting time path" `Quick test_hitting_time_path;
    Alcotest.test_case "sample_step distribution" `Quick test_sample_step_distribution;
    QCheck_alcotest.to_alcotest prop_stationary_is_fixed_point;
    QCheck_alcotest.to_alcotest prop_rows_are_stochastic;
  ]
