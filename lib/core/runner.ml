(* Orchestration of an S&F system.

   Two execution modes mirror the paper's two levels of realism:

   - *Sequential actions* (the analysis model, section 5): a central loop
     repeatedly picks a uniformly random live node, runs its initiate step,
     and — if the message survives loss — runs the receive step
     synchronously.  All reproduction experiments use this mode.
   - *Timed execution* (the practical implementation the paper sketches):
     every node initiates on its own periodic or Poisson clock and messages
     travel through the discrete-event network with latency.  The
     [ablation_scheduler] bench shows both modes agree on degree behaviour.

   The runner also provides churn (joins and leaves), snapshots of the
   global membership graph, and the world-level counters used to verify
   Lemmas 6.6/6.7 (duplication = loss + deletion). *)

type scheduling = Poisson of float | Periodic of float

(* --- Audit events ---

   Every action (and, in timed mode, every delivery) is reported to an
   optional audit callback with enough context to re-check the paper's
   invariants from outside: the initiator's outdegree before and after, the
   duplication decision, and the fate of the message.  [Sf_check.Invariant]
   is the standard consumer; the runner itself never interprets events. *)

type delivery =
  | Accepted   (* placed in the receiver's view *)
  | Deleted    (* receiver full: both ids dropped *)
  | Lost       (* eaten by the network *)
  | To_dead    (* destination has no live handler *)
  | In_flight  (* timed mode: outcome not yet known *)

type action_outcome =
  | Audit_self_loop
  | Audit_send of { destination : int; duplicated : bool; delivery : delivery }

type audit_event =
  | Action of {
      initiator : int;
      degree_before : int;
      degree_after : int;
      outcome : action_outcome;
    }
  | Receipt of { receiver : int; accepted : bool }
      (** timed-mode delivery, asynchronous w.r.t. actions *)
  | Structural of string
      (** join/leave/reconnect/rebootstrap: edge totals changed out of band *)

type t = {
  config : Protocol.config;
  scheduler_rng : Sf_prng.Rng.t;  (* picks initiators and timing *)
  protocol_rng : Sf_prng.Rng.t;   (* slot selections inside nodes *)
  sim : Sf_engine.Sim.t;
  network : Protocol.message Sf_engine.Network.t;
  (* Fault scenario engine (lib/faults); [None] means fault-free.  The
     injector's round clock is actions / initial population in sequential
     mode and virtual time in timed mode. *)
  injector : Sf_faults.Injector.t option;
  initial_population : int;
  nodes : (int, Protocol.node) Hashtbl.t;
  mutable live : Protocol.node array;
  mutable live_dirty : bool;
  mutable next_serial : int;
  mutable actions : int;           (* initiate steps executed *)
  mutable next_node_id : int;
  mutable timed : scheduling option;
  (* Observability: registry counters replace the former ad-hoc world
     counters (they survive node removal just the same — one O(1)
     increment per update); the gauge tracks the live population. *)
  obs : Sf_obs.Obs.t;
  total_self_loops : Sf_obs.Metrics.counter;
  total_sends : Sf_obs.Metrics.counter;
  total_duplications : Sf_obs.Metrics.counter;
  total_receipts : Sf_obs.Metrics.counter;
  total_deletions : Sf_obs.Metrics.counter;
  total_reconnections : Sf_obs.Metrics.counter;
  total_rebootstraps : Sf_obs.Metrics.counter;
  live_gauge : Sf_obs.Metrics.gauge;
  (* Audit plumbing. *)
  mutable audit : (t -> audit_event -> unit) option;
  mutable last_receive : Protocol.receive_result option;
  mutable suppress_receipt : bool;  (* true inside a synchronous send *)
}

let set_audit t audit = t.audit <- audit

let emit t event = match t.audit with Some f -> f t event | None -> ()

let obs t = t.obs

(* The injected trace clock: the sequential round clock (actions per
   initial node) before [start_timed], virtual time after — matching the
   fault injector's clock, and never an ambient wall clock. *)
let obs_now t =
  match t.timed with
  | Some _ -> Sf_engine.Sim.now t.sim
  | None -> float_of_int t.actions /. float_of_int (max 1 t.initial_population)

let trace t event =
  if Sf_obs.Obs.tracing t.obs then Sf_obs.Obs.trace t.obs ~now:(obs_now t) event

(* Surface fault-window boundary crossings as structural audit events, so
   the invariant auditor resyncs its edge-conservation baseline exactly when
   the fault regime changes. *)
let poll_faults t =
  match t.injector with
  | None -> ()
  | Some injector ->
    Sf_faults.Injector.refresh injector;
    List.iter
      (fun reason ->
        trace t (Sf_obs.Trace.Fault { transition = reason });
        emit t (Structural reason))
      (Sf_faults.Injector.transitions injector)

let is_crashed t id =
  match t.injector with
  | None -> false
  | Some injector -> Sf_faults.Injector.is_crashed injector id

let fault_statistics t = Option.map Sf_faults.Injector.statistics t.injector

let fresh_serial t () =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let handler t node message =
  Sf_obs.Metrics.incr t.total_receipts;
  let result = Protocol.receive t.config t.protocol_rng node message in
  t.last_receive <- Some result;
  (match result with
  | Protocol.Accepted -> ()
  | Protocol.Deleted ->
    Sf_obs.Metrics.incr t.total_deletions;
    trace t (Sf_obs.Trace.Delete { node = node.Protocol.node_id }));
  (* Synchronous deliveries are reported inside the enclosing action
     event; only asynchronous (timed-mode) deliveries stand alone. *)
  if not t.suppress_receipt then
    emit t
      (Receipt
         {
           receiver = node.Protocol.node_id;
           accepted = (result = Protocol.Accepted);
         })

let install_node t node =
  Hashtbl.replace t.nodes node.Protocol.node_id node;
  Sf_engine.Network.register t.network node.Protocol.node_id (handler t node);
  t.live_dirty <- true;
  Sf_obs.Metrics.set t.live_gauge (float_of_int (Hashtbl.length t.nodes))

let create ?(latency = Sf_engine.Network.default_latency) ?destination_loss ?audit
    ?scenario ?obs ~seed ~n ~loss_rate ~config ~topology () =
  let root = Sf_prng.Rng.create seed in
  let scheduler_rng = Sf_prng.Rng.split root in
  let protocol_rng = Sf_prng.Rng.split root in
  let network_rng = Sf_prng.Rng.split root in
  let sim = Sf_engine.Sim.create () in
  let obs = match obs with Some o -> o | None -> Sf_obs.Obs.create () in
  let metrics = Sf_obs.Obs.metrics obs in
  let injector =
    Option.map
      (fun sc -> Sf_faults.Injector.create ~metrics ~scenario:sc ~n ())
      scenario
  in
  let network =
    Sf_engine.Network.create ~latency ?destination_loss ?injector ~obs ~sim
      ~rng:network_rng ~loss_rate ()
  in
  let t =
    {
      config;
      scheduler_rng;
      protocol_rng;
      sim;
      network;
      injector;
      initial_population = n;
      nodes = Hashtbl.create (2 * n);
      live = [||];
      live_dirty = true;
      next_serial = 0;
      actions = 0;
      next_node_id = n;
      timed = None;
      obs;
      total_self_loops = Sf_obs.Metrics.counter metrics "runner_self_loops";
      total_sends = Sf_obs.Metrics.counter metrics "runner_sends";
      total_duplications = Sf_obs.Metrics.counter metrics "runner_duplications";
      total_receipts = Sf_obs.Metrics.counter metrics "runner_receipts";
      total_deletions = Sf_obs.Metrics.counter metrics "runner_deletions";
      total_reconnections = Sf_obs.Metrics.counter metrics "runner_reconnections";
      total_rebootstraps = Sf_obs.Metrics.counter metrics "runner_rebootstraps";
      live_gauge = Sf_obs.Metrics.gauge metrics "runner_live_nodes";
      audit;
      last_receive = None;
      suppress_receipt = false;
    }
  in
  for u = 0 to n - 1 do
    let node = Protocol.create_node ~config ~node_id:u in
    List.iter
      (fun v ->
        match View.random_empty_slot node.Protocol.view t.protocol_rng with
        | None -> invalid_arg "Runner.create: topology exceeds view size"
        | Some slot ->
          View.set node.Protocol.view slot
            { View.id = v; serial = fresh_serial t (); anchor = None; born = 0 })
      (topology u);
    install_node t node
  done;
  Option.iter
    (fun inj ->
      Sf_faults.Injector.set_clock inj (fun () ->
          match t.timed with
          | Some _ -> Sf_engine.Sim.now t.sim
          | None ->
            float_of_int t.actions /. float_of_int (max 1 t.initial_population)))
    t.injector;
  (* Network trace records (send/deliver/drop) must carry the same clock
     as the runner's own records, not the virtual clock — which never
     advances in sequential mode. *)
  Sf_engine.Network.set_trace_clock network (fun () -> obs_now t);
  t

let config t = t.config
let action_count t = t.actions
let minted_serials t = t.next_serial
let live_count t = Hashtbl.length t.nodes
let network_statistics t = Sf_engine.Network.statistics t.network
let simulator t = t.sim

let live_nodes t =
  if t.live_dirty then begin
    t.live <- Array.of_seq (Hashtbl.to_seq_values t.nodes);
    (* Sort by id so the array layout — and hence random node picks — do not
       depend on hash-table iteration order. *)
    Array.sort (fun a b -> compare a.Protocol.node_id b.Protocol.node_id) t.live;
    t.live_dirty <- false
  end;
  t.live

let find_node t id = Hashtbl.find_opt t.nodes id

let random_live_node t =
  let live = live_nodes t in
  if Array.length live = 0 then invalid_arg "Runner.random_live_node: no live nodes";
  Sf_prng.Rng.choose t.scheduler_rng live

(* One initiate step at [node]; the transport depends on the mode.  The
   action counter increments only after the audit event fires, so the
   sequential round clock (actions / n) is constant across the whole action
   — initiate, loss draw, synchronous receive and audit all see the same
   round. *)
let initiate_at t ~synchronous node =
  let degree_before = Protocol.degree node in
  let result =
    Protocol.initiate t.config t.protocol_rng ~fresh_serial:(fresh_serial t)
      ~clock:t.actions node
  in
  let outcome =
    match result with
    | Protocol.Self_loop ->
      Sf_obs.Metrics.incr t.total_self_loops;
      Audit_self_loop
    | Protocol.Send { destination; message; duplicated } ->
      Sf_obs.Metrics.incr t.total_sends;
      if duplicated then begin
        Sf_obs.Metrics.incr t.total_duplications;
        trace t (Sf_obs.Trace.Duplicate { node = node.Protocol.node_id })
      end;
      let delivery =
        if synchronous then begin
          let lost_before =
            (Sf_engine.Network.statistics t.network).Sf_engine.Network.messages_lost
          in
          t.suppress_receipt <- true;
          t.last_receive <- None;
          let delivered =
            Sf_engine.Network.send_immediate t.network
              ~src:node.Protocol.node_id ~duplicated ~dst:destination message
          in
          t.suppress_receipt <- false;
          let lost_after =
            (Sf_engine.Network.statistics t.network).Sf_engine.Network.messages_lost
          in
          if delivered then
            match t.last_receive with
            | Some Protocol.Deleted -> Deleted
            | Some Protocol.Accepted | None -> Accepted
          else if lost_after > lost_before then Lost
          else To_dead
        end
        else begin
          Sf_engine.Network.send t.network ~src:node.Protocol.node_id ~duplicated
            ~dst:destination message;
          In_flight
        end
      in
      Audit_send { destination; duplicated; delivery }
  in
  emit t
    (Action
       {
         initiator = node.Protocol.node_id;
         degree_before;
         degree_after = Protocol.degree node;
         outcome;
       });
  t.actions <- t.actions + 1;
  result

(* --- Sequential-action mode --- *)

(* Crashed nodes do not initiate.  The fault-free path — and any scenario
   without crash windows — keeps the historical single [Rng.choose] per
   step, so the scheduler RNG stream is untouched; only while a crash
   window is actually active does the pick rejection-sample. *)
let step t =
  poll_faults t;
  let crash_gate =
    match t.injector with
    | None -> None
    | Some injector ->
      if
        Sf_faults.Injector.has_crash_windows injector
        && Sf_faults.Injector.crash_active injector
      then Some injector
      else None
  in
  match crash_gate with
  | None -> ignore (initiate_at t ~synchronous:true (random_live_node t))
  | Some injector ->
    let live = live_nodes t in
    let up node =
      not (Sf_faults.Injector.is_crashed injector node.Protocol.node_id)
    in
    if Array.exists up live then begin
      let rec pick () =
        let node = Sf_prng.Rng.choose t.scheduler_rng live in
        if up node then node else pick ()
      in
      ignore (initiate_at t ~synchronous:true (pick ()))
    end
    else
      (* Every live node is frozen: the round clock still has to advance or
         the crash window would never end. *)
      t.actions <- t.actions + 1

let run_actions t k =
  for _ = 1 to k do
    step t
  done

(* A round = as many actions as live nodes (each node initiates once in
   expectation), the paper's round definition in section 6.5. *)
let run_rounds t rounds =
  for _ = 1 to rounds do
    run_actions t (live_count t)
  done

(* --- Timed mode --- *)

let schedule_node t scheduling node =
  let delay () =
    match scheduling with
    | Poisson rate -> Sf_prng.Rng.exponential t.scheduler_rng rate
    | Periodic period ->
      (* Jitter the period slightly: loosely synchronized nodes. *)
      period *. (0.95 +. (0.1 *. Sf_prng.Rng.float t.scheduler_rng))
  in
  let rec tick () =
    (* The node may have left since this event was scheduled. *)
    if Hashtbl.mem t.nodes node.Protocol.node_id then begin
      trace t (Sf_obs.Trace.Timer { node = node.Protocol.node_id });
      poll_faults t;
      (* A crashed node skips its initiation but keeps its clock running, so
         it resumes — with its stale view — when the window closes. *)
      if not (is_crashed t node.Protocol.node_id) then
        ignore (initiate_at t ~synchronous:false node);
      Sf_engine.Sim.schedule t.sim ~delay:(delay ()) tick
    end
  in
  Sf_engine.Sim.schedule t.sim ~delay:(delay ()) tick

let start_timed t scheduling =
  if t.timed <> None then invalid_arg "Runner.start_timed: already started";
  t.timed <- Some scheduling;
  Array.iter (schedule_node t scheduling) (live_nodes t)

let run_until t horizon =
  ignore (Sf_engine.Sim.run ~horizon t.sim)

(* --- Churn --- *)

let add_node t ~bootstrap =
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  let node = Protocol.create_node ~config:t.config ~node_id:id in
  List.iter
    (fun v ->
      match View.random_empty_slot node.Protocol.view t.protocol_rng with
      | None -> invalid_arg "Runner.add_node: bootstrap exceeds view size"
      | Some slot ->
        View.set node.Protocol.view slot
          { View.id = v; serial = fresh_serial t (); anchor = None; born = t.actions })
    bootstrap;
  install_node t node;
  (match t.timed with Some s -> schedule_node t s node | None -> ());
  trace t (Sf_obs.Trace.Mark { label = "add_node" });
  emit t (Structural "add_node");
  id

let remove_node t id =
  match Hashtbl.find_opt t.nodes id with
  | None -> None
  | Some node ->
    Hashtbl.remove t.nodes id;
    Sf_engine.Network.unregister t.network id;
    t.live_dirty <- true;
    Sf_obs.Metrics.set t.live_gauge (float_of_int (Hashtbl.length t.nodes));
    trace t (Sf_obs.Trace.Mark { label = "remove_node" });
    emit t (Structural "remove_node");
    Some node

(* Bootstrap ids for a joiner: a copy of (a prefix of) a random live node's
   view — the joining rule the paper suggests in section 5.  The paper
   requires the joiner to know ids of *live* nodes, so entries pointing at
   departed nodes are filtered out (a joiner that only knows dead ids would
   start disconnected); the donor's own id fills any shortfall. *)
let bootstrap_from t ~count =
  let donor = random_live_node t in
  let live ids = List.filter (fun id -> Hashtbl.mem t.nodes id) ids in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let ids = take count (live (View.ids donor.Protocol.view)) in
  let shortfall = count - List.length ids in
  if shortfall <= 0 then ids
  else ids @ List.init shortfall (fun _ -> donor.Protocol.node_id)

(* --- Reconnection (paper, section 5 joining rule) ---

   A node whose neighbors have all departed can no longer exchange ids: its
   sends go to dead destinations and nobody holds its id.  The paper's
   remedy is the joining rule: reconnect "by probing previously seen ids".
   [reconnect] probes the node's seen-cache (then its current view ids) in
   order; each probe costs a request and a response message, both subject
   to loss.  The first live, responsive target donates a copy of up to dL
   ids from its view, which replace the stale view.  Donated entries are
   copies the donor keeps, so they are anchored at the donor — the same
   dependence accounting as duplication. *)

type reconnect_result =
  | Reconnected of { donor : int; probes : int; installed : int }
  | Exhausted of { probes : int }

let reconnect t ~node_id =
  match Hashtbl.find_opt t.nodes node_id with
  | None -> invalid_arg "Runner.reconnect: unknown node"
  | Some node ->
    let loss = Sf_engine.Network.loss_rate t.network in
    let view_ids =
      List.filter (fun id -> id <> node_id) (View.ids node.Protocol.view)
    in
    let candidates =
      List.sort_uniq compare (node.Protocol.seen_ids @ view_ids)
      |> List.filter (fun id -> id <> node_id)
    in
    (* Preserve seen-cache recency order ahead of view order. *)
    let ordered =
      List.filter (fun id -> List.mem id candidates) node.Protocol.seen_ids
      @ List.filter (fun id -> not (List.mem id node.Protocol.seen_ids)) candidates
    in
    let probes = ref 0 in
    let rec try_candidates = function
      | [] -> Exhausted { probes = !probes }
      | candidate :: rest ->
        incr probes;
        let request_arrives = not (Sf_prng.Rng.bernoulli t.protocol_rng loss) in
        (match (request_arrives, Hashtbl.find_opt t.nodes candidate) with
        | true, Some donor ->
          let response_arrives = not (Sf_prng.Rng.bernoulli t.protocol_rng loss) in
          if response_arrives then begin
            let donated =
              let rec take k = function
                | [] -> []
                | _ when k = 0 -> []
                | e :: tl -> e :: take (k - 1) tl
              in
              take t.config.Protocol.lower_threshold (View.entries donor.Protocol.view)
            in
            (* Always at least the donor itself. *)
            View.clear_all node.Protocol.view;
            let installed = ref 0 in
            let install id =
              match View.random_empty_slot node.Protocol.view t.protocol_rng with
              | None -> ()
              | Some slot ->
                View.set node.Protocol.view slot
                  {
                    View.id;
                    serial = fresh_serial t ();
                    anchor = Some donor.Protocol.node_id;
                    born = t.actions;
                  };
                incr installed
            in
            install donor.Protocol.node_id;
            List.iter (fun (e : View.entry) -> install e.View.id) donated;
            (* Keep the outdegree even (Observation 5.1). *)
            if View.degree node.Protocol.view mod 2 = 1 then
              install donor.Protocol.node_id;
            Sf_obs.Metrics.incr t.total_reconnections;
            trace t (Sf_obs.Trace.Mark { label = "reconnect" });
            emit t (Structural "reconnect");
            Reconnected
              { donor = donor.Protocol.node_id; probes = !probes; installed = !installed }
          end
          else try_candidates rest
        | _ -> try_candidates rest)
    in
    try_candidates ordered

(* Out-of-band re-bootstrap — the other half of the paper's joining rule
   ("a node can obtain these ids by copying another node's view").  Models
   contacting a bootstrap/rendezvous service: a random live donor's view is
   copied, as for a fresh joiner.  Used when probing previously seen ids is
   exhausted (e.g. a node that joined and lost all its neighbors before
   ever receiving a message). *)
let rebootstrap t ~node_id =
  match Hashtbl.find_opt t.nodes node_id with
  | None -> invalid_arg "Runner.rebootstrap: unknown node"
  | Some node ->
    let rec pick_donor () =
      let donor = random_live_node t in
      if donor.Protocol.node_id <> node_id || live_count t <= 1 then donor
      else pick_donor ()
    in
    let donor = pick_donor () in
    View.clear_all node.Protocol.view;
    let installed = ref 0 in
    let install id =
      match View.random_empty_slot node.Protocol.view t.protocol_rng with
      | None -> ()
      | Some slot ->
        View.set node.Protocol.view slot
          {
            View.id;
            serial = fresh_serial t ();
            anchor = Some donor.Protocol.node_id;
            born = t.actions;
          };
        incr installed
    in
    let donated =
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | e :: tl -> e :: take (k - 1) tl
      in
      take t.config.Protocol.lower_threshold (View.entries donor.Protocol.view)
      |> List.filter (fun (e : View.entry) ->
             e.View.id <> node_id && Hashtbl.mem t.nodes e.View.id)
    in
    install donor.Protocol.node_id;
    List.iter (fun (e : View.entry) -> install e.View.id) donated;
    if View.degree node.Protocol.view mod 2 = 1 then install donor.Protocol.node_id;
    Sf_obs.Metrics.incr t.total_rebootstraps;
    trace t (Sf_obs.Trace.Mark { label = "rebootstrap" });
    emit t (Structural "rebootstrap");
    !installed

(* A node is starved when its view holds no live id: every send is wasted.
   Starvation is transient while other live nodes still hold the node's id
   (an incoming message restocks the view); it is permanent — *isolation* —
   once no instance of the id survives anywhere.  A real node detects
   isolation by timeout on prolonged silence; the simulator can see both
   conditions directly. *)
let is_starved t node =
  View.fold
    (fun acc e -> acc && not (Hashtbl.mem t.nodes e.View.id))
    true node.Protocol.view

let starved_nodes t =
  Array.to_list (live_nodes t) |> List.filter (is_starved t)

let count_id_instances t id =
  Array.fold_left
    (fun acc node -> acc + View.count_id node.Protocol.view id)
    0 (live_nodes t)

let is_isolated t node =
  is_starved t node && count_id_instances t node.Protocol.node_id = 0

let isolated_nodes t = List.filter (is_isolated t) (starved_nodes t)

(* --- Measurement --- *)

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun node ->
      Sf_graph.Digraph.ensure_vertex g node.Protocol.node_id;
      View.iter
        (fun _ e -> Sf_graph.Digraph.add_edge g node.Protocol.node_id e.View.id)
        node.Protocol.view)
    (live_nodes t);
  g

type world_counters = {
  actions : int;
  self_loops : int;
  sends : int;
  duplications : int;
  receipts : int;
  deletions : int;
  messages_lost : int;
}

let world_counters t =
  let net = Sf_engine.Network.statistics t.network in
  let count = Sf_obs.Metrics.count in
  {
    actions = t.actions;
    self_loops = count t.total_self_loops;
    sends = count t.total_sends;
    duplications = count t.total_duplications;
    receipts = count t.total_receipts;
    deletions = count t.total_deletions;
    messages_lost = net.Sf_engine.Network.messages_lost;
  }

(* Empirical per-send probabilities for the Lemma 6.6 balance check. *)
type rates = { duplication : float; deletion : float; loss : float }

let rates_since t (baseline : world_counters) =
  let now = world_counters t in
  let sends = now.sends - baseline.sends in
  if sends <= 0 then { duplication = 0.; deletion = 0.; loss = 0. }
  else
    let f x = float_of_int x /. float_of_int sends in
    {
      duplication = f (now.duplications - baseline.duplications);
      deletion = f (now.deletions - baseline.deletions);
      loss = f (now.messages_lost - baseline.messages_lost);
    }
