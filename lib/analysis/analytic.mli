(** Closed-form no-loss degree distributions, equation (6.1) of the paper. *)

val log_assignment_count : dm:int -> int -> float
(** ln a(d) = ln [ C(dm,d) * C(dm-d, (dm-d)/2) ]; [neg_infinity] off the
    even support. *)

val outdegree_distribution : dm:int -> Sf_stats.Pmf.t
(** Outdegree pmf on the even support 0..dm for uniform sum degree [dm]. *)

val indegree_distribution : dm:int -> Sf_stats.Pmf.t
(** Indegree pmf on 0..dm/2 (din = (dm - d)/2). *)

val expected_degree : dm:int -> float
(** dm / 3 (Lemma 6.3). *)

val binomial_reference : dm:int -> Sf_stats.Pmf.t
(** Binomial(dm, 1/3) — the equal-expectation reference of Figure 6.1. *)
