(** Connectivity rule for the lower degree threshold (paper, end of
    section 7.4): enough independent out-neighbors for weak connectivity. *)

val log_failure_probability : lower_threshold:int -> alpha:float -> float
(** log Pr[ Binomial(dL, alpha) <= 2 ] — fewer than three independent
    out-neighbors. *)

val failure_probability : lower_threshold:int -> alpha:float -> float

val minimal_lower_threshold :
  ?max_candidate:int -> alpha:float -> epsilon:float -> unit -> int option
(** Minimal even dL with failure probability at most [epsilon]. The paper's
    example: alpha = 0.96 (loss = delta = 1%), epsilon = 1e-30 gives 26. *)

val minimal_lower_threshold_for_loss :
  ?max_candidate:int -> loss:float -> delta:float -> epsilon:float -> unit -> int option
(** Same, with alpha derived from Lemma 7.9 as 1 - 2(loss + delta). *)
