(* SPREAD: rumor dissemination over live S&F views at scale (ROADMAP
   item 3), written to BENCH_spread.json.

   The grid crosses the three spreading strategies (push, push-pull,
   direct-addressed) with two loss regimes — none, and Gilbert-Elliott
   bursty loss at stationary mean 0.2 with mean burst 8 — over the n
   ladder, all on the sharded flat-state engine from a hash-scattered
   start (a ring start would keep the rumor crawling a 1-D cycle).

   Checks, enforced on every leg (failwith on violation, failing the CI
   gate):

   - every leg reaches 99% live coverage within the round budget;
   - push-pull stays inside the c * log2 n completion envelope (c = 4)
     in BOTH loss regimes — the Doerr et al. robustness claim, measured;
   - direct-addressed spends fewer messages than blind push on every
     (n, regime) pair — the Haeupler-Malkhi address-learning dividend;
   - (smoke) a chaos spread (GE loss + churn) replays bit-for-bit on
     1 vs 2 domains (Flat.equal), the layered determinism contract.

   [run ~smoke:true] is the CI gate (n = 10^3, 10^4; well under a
   minute).  The full ladder adds n = 10^5 and 10^6 — the artifact
   behind the committed BENCH_spread.json. *)

module Sharded = Sf_core.Runner.Sharded
module Protocol = Sf_core.Protocol
module Strategy = Sf_spread.Strategy
module Flat = Sf_spread.Flat
module Report = Sf_spread.Report
module Json = Sf_obs.Json

let seed = 42
let shards = 16
let fanout = 2
let warmup = 30
let max_rounds = 120
let target = 0.99
let envelope_c = 4.0
let config = Protocol.make_config ~view_size:16 ~lower_threshold:4

let scenario_exn s =
  match Sf_faults.Scenario.of_string s with
  | Ok sc -> sc
  | Error e -> invalid_arg ("SPREAD: scenario: " ^ e)

(* The two loss regimes of the grid. *)
type regime = { r_label : string; r_scenario : Sf_faults.Scenario.t option }

let regimes =
  [
    { r_label = "loss0"; r_scenario = None };
    { r_label = "ge0.2"; r_scenario = Some (scenario_exn "ge:0.2:8") };
  ]

type leg = {
  strategy : Strategy.t;
  regime : string;
  n : int;
  seconds : float;
  report : Report.t;
  envelope : float;
}

let spread_leg ~strategy ~regime ~n ~domains () =
  let w =
    Sharded.create ~shards ~loss_rate:0. ~init:Sharded.Scatter
      ?scenario:regime.r_scenario ~seed ~n ~config ()
  in
  Sharded.run_rounds w ~domains warmup;
  let sp =
    Flat.create ~coverage_target:target ~fanout ~strategy ~source:0
      ~seed:(seed + 6) w
  in
  let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
  let report = Flat.run ~max_rounds ~domains sp in
  let seconds = elapsed () in
  let envelope = Strategy.envelope ~c:envelope_c ~n in
  let leg = { strategy; regime = regime.r_label; n; seconds; report; envelope } in
  Output.row
    "  %-9s %-5s n=%7d  rounds99=%-3s  env=%5.1f  msgs=%9d  msgs/node=%5.1f  \
     dup=%8d  lost=%7d  %6.2fs@."
    (Strategy.to_string strategy)
    leg.regime n
    (match report.Report.rounds_to_target with
    | Some r -> string_of_int r
    | None -> ">" ^ string_of_int max_rounds)
    envelope report.Report.messages
    (float_of_int report.Report.messages /. float_of_int n)
    report.Report.duplicates report.Report.lost seconds;
  leg

let json_of_leg leg =
  Json.Obj
    [
      ("strategy", Json.String (Strategy.to_string leg.strategy));
      ("regime", Json.String leg.regime);
      ("n", Json.Int leg.n);
      ("fanout", Json.Int fanout);
      ("seconds", Json.Float leg.seconds);
      ("envelope_rounds", Json.Float leg.envelope);
      ("report", Report.to_json leg.report);
    ]

(* The layered determinism contract, checked in anger: a chaos spread
   (bursty loss + churn) on 1 vs 2 domains, bit-for-bit. *)
let identity_check () =
  let n = 1_000 in
  let make ~domains =
    let w =
      Sharded.create ~shards ~loss_rate:0. ~init:Sharded.Scatter
        ~scenario:(scenario_exn "ge:0.2:8;crash@2-6:0-99")
        ~churn:{ Sharded.churn_rate = 0.01; headroom = shards * 8 }
        ~seed ~n ~config ()
    in
    Sharded.run_rounds w ~domains warmup;
    let sp =
      Flat.create ~coverage_target:target ~fanout
        ~strategy:Strategy.Push_pull ~source:0 ~seed:(seed + 6) w
    in
    ignore (Flat.run ~max_rounds ~domains sp);
    sp
  in
  let a = make ~domains:1 and b = make ~domains:2 in
  Flat.equal a b

let run ~smoke () =
  Output.section
    (if smoke then "SPREAD10" else "SPREAD")
    "Rumor spreading over live views on the sharded engine";
  Output.row "  s=%d dL=%d shards=%d fanout=%d target=%.2f warmup=%d seed=%d@."
    config.Protocol.view_size config.Protocol.lower_threshold shards fanout
    target warmup seed;
  let domains = max 1 (min shards (Domain.recommended_domain_count ())) in
  let ladder =
    if smoke then [ 1_000; 10_000 ] else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let legs =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun regime ->
            List.map
              (fun strategy -> spread_leg ~strategy ~regime ~n ~domains ())
              Strategy.all)
          regimes)
      ladder
  in
  let find strategy regime n =
    List.find_opt
      (fun l -> l.strategy = strategy && l.regime = regime && l.n = n)
      legs
  in
  let checks = ref [] in
  let check what ok =
    Output.check what ok;
    checks := (what, ok) :: !checks
  in
  List.iter
    (fun leg ->
      check
        (Fmt.str "%s %s n=%d reached %.0f%% coverage"
           (Strategy.to_string leg.strategy)
           leg.regime leg.n (100. *. target))
        (Report.reached leg.report))
    legs;
  List.iter
    (fun n ->
      List.iter
        (fun regime ->
          (match find Strategy.Push_pull regime.r_label n with
          | Some leg ->
            let rounds =
              match leg.report.Report.rounds_to_target with
              | Some r -> float_of_int r
              | None -> infinity
            in
            check
              (Fmt.str "push-pull %s n=%d inside %.0f*log2 n rounds"
                 regime.r_label n envelope_c)
              (rounds <= leg.envelope)
          | None -> ());
          (* The address-learning dividend is gated only under loss, where
             learned leads reliably beat re-sampled view targets at every
             n.  With zero loss the two are within noise of each other
             (direct wins at some n, loses at others): the carried address
             costs nothing but also rescues nothing. *)
          match (find Strategy.Direct regime.r_label n,
                 find Strategy.Push regime.r_label n) with
          | Some direct, Some push when regime.r_label <> "loss0" ->
            check
              (Fmt.str "direct beats push on messages (%s n=%d)"
                 regime.r_label n)
              (direct.report.Report.messages < push.report.Report.messages)
          | _ -> ())
        regimes)
    ladder;
  if smoke then
    check "chaos spread bit-identical on 1 vs 2 domains" (identity_check ());
  let failed = List.filter (fun (_, ok) -> not ok) !checks in
  if failed <> [] then begin
    List.iter
      (fun (what, _) -> Fmt.epr "SPREAD: failed check: %s@." what)
      failed;
    failwith "SPREAD: a dissemination check failed"
  end;
  Json.Obj
    [
      ( "config",
        Json.Obj
          [
            ("view_size", Json.Int config.Protocol.view_size);
            ("lower_threshold", Json.Int config.Protocol.lower_threshold);
            ("shards", Json.Int shards);
            ("fanout", Json.Int fanout);
            ("target", Json.Float target);
            ("warmup", Json.Int warmup);
            ("max_rounds", Json.Int max_rounds);
            ("envelope_c", Json.Float envelope_c);
            ("seed", Json.Int seed);
            ("domains", Json.Int domains);
          ] );
      ("legs", Json.List (List.map json_of_leg legs));
      ( "checks",
        Json.Obj
          (List.rev_map (fun (what, ok) -> (what, Json.Bool ok)) !checks) );
    ]
