(** Local views: fixed arrays of [s] slots holding id instances
    (paper, section 2).

    Instances carry a unique [serial] (followed for decay and temporal
    independence measurements), an optional [anchor] (the node whose view
    the instance depends on, set by duplication — Property M4), and a [born]
    action stamp. *)

type entry = {
  id : int;
  serial : int;
  anchor : int option;
  born : int;
}

type t

val create : int -> t
(** [create s] makes an all-empty view of [s] slots. *)

val size : t -> int

val degree : t -> int
(** d(u): number of non-empty slots. *)

val is_full : t -> bool

val free_slots : t -> int

val get : t -> int -> entry option
val set : t -> int -> entry -> unit
val clear : t -> int -> unit
val clear_all : t -> unit

val random_empty_slot : t -> Sf_prng.Rng.t -> int option
(** Uniformly random empty slot, [None] when full. *)

val iter : (int -> entry -> unit) -> t -> unit
(** Iterate non-empty slots as [f slot entry]. *)

val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a

val ids : t -> int list
(** Ids of all instances, in slot order (with duplicates). *)

val mem : t -> int -> bool
val count_id : t -> int -> int
val entries : t -> entry list

val pp : Format.formatter -> t -> unit
