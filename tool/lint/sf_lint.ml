(* sf_lint — repo-specific static analysis driver.

   Usage: sf_lint [--allowlist FILE] [--list-rules] DIR...

   Walks the given directories (skipping _build and dot-directories),
   checks every .ml/.mli against the Lint_rules engine, subtracts the
   allowlist, and exits nonzero if any finding survives or any allowlist
   entry is stale.  Paths are reported relative to the working directory,
   which is the workspace root under `dune build @lint`. *)

module Lint_rules = Sf_lint_rules.Lint_rules

let usage = "usage: sf_lint [--allowlist FILE] [--list-rules] DIR..."

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
        else walk acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
    path :: acc
  else acc

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let () =
  let allowlist_file = ref None in
  let roots = ref [] in
  let list_rules = ref false in
  let spec =
    [
      ( "--allowlist",
        Arg.String (fun f -> allowlist_file := Some f),
        "FILE suppressions, one 'path rule' per line" );
      ("--list-rules", Arg.Set list_rules, " print the rule list and exit");
    ]
  in
  Arg.parse spec (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (id, doc) -> Fmt.pr "%-14s %s@." id doc)
      Lint_rules.rule_docs;
    exit 0
  end;
  if !roots = [] then begin
    Fmt.epr "%s@." usage;
    exit 2
  end;
  let allows =
    match !allowlist_file with
    | None -> []
    | Some file -> (
      match Lint_rules.parse_allowlist (read_file file) with
      | Ok entries -> entries
      | Error msg ->
        Fmt.epr "sf_lint: %s@." msg;
        exit 2)
  in
  let paths =
    try
      List.fold_left walk [] (List.rev !roots)
      |> List.map normalize
      |> List.sort_uniq compare
    with Sys_error msg ->
      Fmt.epr "sf_lint: %s@." msg;
      exit 2
  in
  let files = List.map (fun p -> (p, read_file p)) paths in
  let findings = Lint_rules.check_files files in
  let kept, stale = Lint_rules.apply_allowlist allows findings in
  List.iter (fun f -> Fmt.pr "%a@." Lint_rules.pp_finding f) kept;
  List.iter
    (fun (e : Lint_rules.allow) ->
      Fmt.pr "%s: stale allowlist entry for rule %s (nothing to suppress)@."
        e.Lint_rules.allow_path e.Lint_rules.allow_rule)
    stale;
  if kept = [] && stale = [] then begin
    Fmt.pr "sf_lint: %d files clean (%d suppressions)@." (List.length files)
      (List.length allows);
    exit 0
  end
  else exit 1
