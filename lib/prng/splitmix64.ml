(* SplitMix64: a fast, well-distributed 64-bit generator used here to expand
   user seeds into full generator states. Reference: Steele, Lea, Flood,
   "Fast splittable pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* The stateless finalizer alone: the avalanche mix of [next] without the
   gamma step, as a keyless deterministic int hash.  Hashtbl.Make functors
   over int keys use this instead of the polymorphic Hashtbl.hash so that
   bucket order is a function of the key bits only, identical across runs,
   architectures and OCaml versions. *)
let mix_int x =
  let z = Int64.of_int x in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

(* Expand a seed into [n] distinct 64-bit values. *)
let expand seed n =
  let t = create seed in
  Array.init n (fun _ -> next t)
