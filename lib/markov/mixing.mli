(** Convergence-speed diagnostics: distance-to-stationarity profiles,
    mixing times, and spectral estimates. *)

type profile = {
  steps : int array;
  tv_distances : float array;
}

val distance_profile :
  Chain.t ->
  initial:float array ->
  stationary:float array ->
  checkpoints:int list ->
  profile
(** TVD to stationarity at each checkpoint (steps are sorted and deduped). *)

val steps_to_distance :
  ?max_steps:int ->
  Chain.t ->
  initial:float array ->
  stationary:float array ->
  threshold:float ->
  int option
(** First step at which the TVD drops below [threshold]. *)

val mixing_time :
  ?threshold:float ->
  ?max_steps:int ->
  ?sources:int list ->
  Chain.t ->
  stationary:float array ->
  int option
(** Worst-case steps to TVD < [threshold] (default 1/4) over point-mass
    starts at [sources] (default: every state). *)

val second_eigenvalue_estimate :
  ?iterations:int ->
  ?tail:int ->
  Chain.t ->
  stationary:float array ->
  uniform:(unit -> float) ->
  float
(** |lambda_2| by the deflated power method; [uniform] supplies random
    numbers in [0,1) for the starting vector. *)

val relaxation_time :
  ?iterations:int ->
  ?tail:int ->
  Chain.t ->
  stationary:float array ->
  uniform:(unit -> float) ->
  float
(** 1 / (1 - |lambda_2|). *)
