(** Goodness-of-fit tests for the property monitors. *)

type chi_square_result = {
  statistic : float;
  degrees_of_freedom : int;
  p_value : float;
}

val chi_square :
  ?min_expected:float ->
  observed:float array ->
  expected:float array ->
  unit ->
  chi_square_result
(** Pearson chi-square of observed vs expected counts. Cells with expected
    count below [min_expected] (default 5) are pooled with their
    neighbours. *)

val chi_square_uniform : float array -> chi_square_result
(** Chi-square test that the counts are uniform across cells. *)

val ks_statistic : int array -> int array -> float
(** Two-sample Kolmogorov-Smirnov statistic over integer samples. *)

val ks_p_value : int array -> int array -> float
(** Asymptotic two-sample KS p-value. *)
