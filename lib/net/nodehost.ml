(* A node-host: one OS process running a slice of the global id space
   inside one {!Driver} select loop, controllable from outside.

   The host is the unit the multi-process cluster is built from: the
   spawner ({!Spawner}) forks dozens of these, each owning
   [nodes_per_host] nodes, all sharing one port map — node [i] lives at
   [base_port + i] no matter which process owns it — so hosts gossip with
   each other through nothing but UDP datagrams.  Killing a host with
   SIGKILL is therefore a *real* crash of a real address space: its
   sockets close, in-flight datagrams bounce off dead ports, and the rest
   of the cluster must survive on its own protocol rules.

   Control surfaces, all line/datagram textual:

   - stdin (the spawner holds the write end): one command per line.
     EOF means the controller is gone — the host stops rather than
     running orphaned.
   - a UDP control socket on [control_port]: the same commands as
     datagrams, for controllers that outlive pipes (respawned hosts).
   - SIGTERM / SIGINT: clean stop, identical to the [stop] command.

   Commands: [stop] · [snapshot] (report views without stopping) ·
   [filter K] / [filter off] (cross-process partition window: drop
   datagrams crossing a K-way split) · [ping] (UDP liveness echo).

   Reports, written to stdout as single lines (the spawner's collection
   protocol):

     ready HOST PID FIRST COUNT        once, after binding every socket
     view ID E1,E2,...                 per owned node at [snapshot]/stop
     stats k=v k=v ...                 once at stop
     bye                               last line before exit

   where each view entry E is [id:serial:anchor:born] (anchor -1 = none)
   and a view line with no entries shows [-].  Heartbeat datagrams
   [hb HOST PID ACTIONS] go to [controller_port] every [heartbeat]
   seconds so the spawner can distinguish a live host from a wedged one
   without consuming stdout. *)

type config = {
  host_index : int;
  hosts : int;
  nodes_per_host : int;
  base_port : int;
  control_port : int;      (* this host's UDP command socket *)
  controller_port : int;   (* heartbeat sink; 0 disables heartbeats *)
  protocol : Sf_core.Protocol.config;
  out_degree : int;
  scenario : Sf_faults.Scenario.t;  (* loss model only; no windows *)
  loss_rate : float;
  period : float;
  version : int;
  seed : int;
  duration : float;        (* hard cap on the run, seconds *)
  heartbeat : float;
  resilience : Sf_resil.Policy.t option;
}

let entry_to_string (e : Sf_core.View.entry) =
  Fmt.str "%d:%d:%d:%d" e.Sf_core.View.id e.Sf_core.View.serial
    (match e.Sf_core.View.anchor with None -> -1 | Some a -> a)
    e.Sf_core.View.born

let view_line id view =
  let entries = List.map entry_to_string (Sf_core.View.entries view) in
  Fmt.str "view %d %s"
    id
    (match entries with [] -> "-" | es -> String.concat "," es)

let emit_views driver =
  Seq.iter
    (fun (id, view) -> Fmt.pr "%s@." (view_line id view))
    (Driver.views driver)

let emit_stats driver =
  let s = Driver.statistics driver in
  let quantile q =
    let v = Driver.action_latency_quantile driver q in
    if Float.is_nan v then 0. else v *. 1e6
  in
  Fmt.pr
    "stats actions=%d sent=%d dropped=%d received=%d messages=%d emitted=%d \
     batches=%d frames=%d hellos_sent=%d hellos_received=%d crc_rejected=%d \
     truncated=%d oversized=%d decode_errors=%d send_errors=%d filtered=%d \
     corrupted=%d repairs=%d recoveries=%d retunes=%d p50_us=%.1f p99_us=%.1f@."
    s.Driver.actions s.Driver.datagrams_sent s.Driver.datagrams_dropped
    s.Driver.datagrams_received s.Driver.messages_received
    s.Driver.datagrams_emitted s.Driver.batches_sent s.Driver.frames_sent
    s.Driver.hellos_sent s.Driver.hellos_received s.Driver.frames_crc_rejected
    s.Driver.datagrams_truncated s.Driver.datagrams_oversized
    s.Driver.decode_errors s.Driver.send_errors s.Driver.datagrams_filtered
    s.Driver.datagrams_corrupted s.Driver.repair_attempts s.Driver.recoveries
    s.Driver.retunes (quantile 0.5) (quantile 0.99)

(* One control command, from stdin or the control socket.  [reply] sends a
   line back the way the command came (stdout for stdin commands, a
   datagram to the sender for UDP ones). *)
let handle_command driver ~reply line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()  (* blank line *)
  | [ "stop" ] -> Driver.request_stop driver
  | [ "snapshot" ] ->
    Seq.iter (fun (id, view) -> reply (view_line id view)) (Driver.views driver);
    reply "end"
  | [ "filter"; "off" ] -> Driver.set_partition_filter driver ~parts:None
  | [ "filter"; k ] -> (
    match int_of_string_opt k with
    | Some parts when parts >= 2 ->
      Driver.set_partition_filter driver ~parts:(Some parts)
    | _ -> reply "err bad-filter")
  | [ "ping" ] -> reply (Fmt.str "pong %d" (Unix.getpid ()))
  | _ -> reply "err unknown-command"

(* Incremental line reader over a non-blocking fd: each readable wakeup
   drains what the kernel has, fires [on_line] per complete line, and
   [on_eof] once when the peer closes. *)
let line_reader fd ~on_line ~on_eof =
  let pending = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let eof_seen = ref false in
  fun () ->
    if not !eof_seen then begin
      let continue = ref true in
      while !continue do
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | 0 ->
          continue := false;
          eof_seen := true;
          on_eof ()
        | k ->
          for i = 0 to k - 1 do
            match Bytes.get chunk i with
            | '\n' ->
              let line = Buffer.contents pending in
              Buffer.clear pending;
              on_line line
            | c -> Buffer.add_char pending c
          done
      done
    end

let validate config =
  if config.hosts < 1 then invalid_arg "Nodehost: hosts < 1";
  if config.host_index < 0 || config.host_index >= config.hosts then
    invalid_arg "Nodehost: host index outside [0, hosts)";
  if config.nodes_per_host < 1 then invalid_arg "Nodehost: empty slice";
  if config.scenario.Sf_faults.Scenario.windows <> [] then
    invalid_arg
      "Nodehost: fault windows are the controller's business (crash = real \
       kill, partition = filter commands); hosts take a loss model only"

(* Run a node-host to completion: bind the slice, speak the control
   protocol, report, exit.  This is the whole body of bin/sf_nodehost. *)
let main config =
  validate config;
  let n = config.hosts * config.nodes_per_host in
  let first = config.host_index * config.nodes_per_host in
  (* The topology is a function of (seed, n, out_degree) alone, so every
     host — and the controller checking the merged result — computes the
     identical global wiring without talking to anyone. *)
  let topology =
    Sf_core.Topology.regular
      (Sf_prng.Rng.create (config.seed + 1))
      ~n ~out_degree:config.out_degree
  in
  let driver =
    Driver.create ~period:config.period ~scenario:config.scenario
      ?resilience:config.resilience ~version:config.version ~first
      ~count:config.nodes_per_host ~serial_stride:config.hosts
      ~serial_offset:config.host_index ~base_port:config.base_port ~n
      ~config:config.protocol ~loss_rate:config.loss_rate
      ~seed:(config.seed + (7919 * (config.host_index + 1)))
      ~topology ()
  in
  (* Clean stop on SIGTERM/SIGINT: the handler only flips the stop flag;
     the select loop notices via EINTR and unwinds normally, so views and
     stats still get reported. *)
  let stop_signal _ = Driver.request_stop driver in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  (* Control channel 1: stdin.  EOF = controller gone = stop. *)
  Unix.set_nonblock Unix.stdin;
  Driver.add_channel driver Unix.stdin
    (line_reader Unix.stdin
       ~on_line:(handle_command driver ~reply:(fun line -> Fmt.pr "%s@." line))
       ~on_eof:(fun () -> Driver.request_stop driver));
  (* Control channel 2: a UDP command socket, reachable even after a
     respawn replaces the pipes. *)
  let control = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock control;
  Unix.setsockopt control Unix.SO_REUSEADDR true;
  Unix.bind control
    (Unix.ADDR_INET (Unix.inet_addr_loopback, config.control_port));
  let control_buffer = Bytes.create 512 in
  Driver.add_channel driver control (fun () ->
      let continue = ref true in
      while !continue do
        match
          Unix.recvfrom control control_buffer 0 (Bytes.length control_buffer) []
        with
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
        | length, from ->
          let line = Bytes.sub_string control_buffer 0 length in
          handle_command driver
            ~reply:(fun line ->
              let packet = Bytes.of_string (line ^ "\n") in
              try ignore (Unix.sendto control packet 0 (Bytes.length packet) [] from)
              with Unix.Unix_error _ -> ())
            line
      done);
  (* Heartbeats: liveness the spawner can watch without consuming stdout. *)
  if config.controller_port > 0 then begin
    let sink =
      Unix.ADDR_INET (Unix.inet_addr_loopback, config.controller_port)
    in
    let beat () =
      let s = Driver.statistics driver in
      let packet =
        Bytes.of_string
          (Fmt.str "hb %d %d %d\n" config.host_index (Unix.getpid ())
             s.Driver.actions)
      in
      try ignore (Unix.sendto control packet 0 (Bytes.length packet) [] sink)
      with Unix.Unix_error _ -> ()
    in
    Driver.add_periodic driver ~every:config.heartbeat beat;
    beat ()
  end;
  Fmt.pr "ready %d %d %d %d@." config.host_index (Unix.getpid ()) first
    config.nodes_per_host;
  Driver.run driver ~duration:config.duration;
  emit_views driver;
  emit_stats driver;
  Fmt.pr "bye@.";
  (try Unix.close control with Unix.Unix_error _ -> ());
  Driver.shutdown driver
