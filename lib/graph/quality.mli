(** Structural quality of membership graphs: the expander properties (low
    diameter, no clustering, removal robustness) that uniform independent
    views are supposed to deliver (paper, section 2). All measures treat
    the graph as undirected, since gossip traverses membership edges in
    both directions. *)

type path_statistics = {
  sources_sampled : int;
  estimated_diameter : int;      (** max BFS eccentricity over the sample *)
  average_path_length : float;
  unreachable_pairs : int;
}

val path_statistics : ?sources:int -> Sf_prng.Rng.t -> Digraph.t -> path_statistics
(** BFS from a random sample of sources (default 32). *)

val clustering_coefficient : Digraph.t -> float
(** Average local clustering coefficient. *)

val robustness_profile :
  Sf_prng.Rng.t -> Digraph.t -> removal_fractions:float list -> (float * float) list
(** For each removal fraction, the largest-component share of the surviving
    vertices after removing that fraction of nodes uniformly at random. *)
