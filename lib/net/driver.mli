(** The reusable UDP select-loop driver behind every real S&F deployment:
    one datagram socket per owned node on the loopback interface, jittered
    periodic initiations, send-side fault injection.

    A driver owns a contiguous slice [first, first + count) of a global id
    space of [n] nodes, all sharing one port map (node [i] lives at
    [base_port + i] in whichever process owns it).  {!Cluster} is the
    whole-space slice in one process — the historical deployment —
    and {!Nodehost} wraps a slice in a controllable process of its own.

    Intended for moderate slice sizes (select(2) limits a driver to a few
    hundred sockets per process); a multi-process cluster composes slices
    to reach thousands of sockets. *)

type t

val create :
  ?period:float ->
  ?now:(unit -> float) ->
  ?scenario:Sf_faults.Scenario.t ->
  ?obs:Sf_obs.Obs.t ->
  ?resilience:Sf_resil.Policy.t ->
  ?version:int ->
  ?first:int ->
  ?count:int ->
  ?serial_stride:int ->
  ?serial_offset:int ->
  base_port:int ->
  n:int ->
  config:Sf_core.Protocol.config ->
  loss_rate:float ->
  seed:int ->
  topology:Sf_core.Topology.t ->
  unit ->
  t
(** Bind UDP sockets on 127.0.0.1 ports [base_port + first .. base_port +
    first + count - 1] (the owned slice; [first] defaults to 0 and [count]
    to [n - first], i.e. the whole space) and seed the owned views from
    [topology], which maps {e global} ids and must be identical in every
    process of a multi-process cluster.  [period] is the mean time between
    a node's initiations in seconds (default 10 ms).  [loss_rate] is
    injected at the sender (loopback UDP rarely drops on its own).  [now]
    is the clock driving timers and deadlines — {!Sf_obs.Clock.wall} by
    default; inject a virtual clock to make runs time-deterministic in
    tests.

    [version] selects the wire ceiling: [1] (default) replays the
    historical one-message-per-datagram deployment byte-for-byte; [2]
    batches messages per destination into {!Codec} v2 datagrams once the
    peer is known to speak v2, negotiated per-peer by hello datagrams —
    unknown peers get v1 frames (safe for real v1 processes) plus a capped
    number of hellos advertising this driver's port slice; v2 peers reply
    and upgrade, silent peers downgrade permanently at the cap, so mixed
    v1/v2 clusters interoperate with zero lost traffic.

    [serial_stride]/[serial_offset] stride the minted serials
    ([k * stride + offset]): sibling processes use stride = process count
    and distinct offsets so concurrently minted serials never collide
    cluster-wide.

    [obs] is the observability bundle: all [cluster_*] counters, the
    [codec_*_seconds] spans and the [cluster_action_seconds] per-action
    latency histogram land in its registry (a private one when omitted).

    [scenario] routes every datagram through the same fault plan the
    simulator uses ({!Sf_faults.Scenario}); one round of the scenario
    clock = one firing [period] elapsed.  [resilience] installs the
    self-healing layer: per-node estimator/controller retuning, real
    crash-restarts with socket rebinds, and — when the policy's [recover]
    is set — a supervised repair probe that rebootstraps isolated
    (degree-0) owned nodes from a live sibling's view under capped
    backoff.

    If any socket operation fails mid-construction, every socket already
    opened is closed before the exception propagates. *)

val node_count : t -> int
(** Owned nodes (the slice size). *)

val owned_range : t -> int * int
(** [(first, count)]: the owned slice of the global id space. *)

val run : t -> duration:float -> unit
(** Drive the loop for [duration] seconds of the injected clock, or until
    {!request_stop}. *)

val request_stop : t -> unit
(** Make the current {!run} return at its next loop head (idempotent;
    typically called from a control-channel callback or signal handler). *)

val add_channel : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Put [fd] in the select set; the callback must drain it (it runs once
    per readable wakeup).  This is how a node-host listens to stdin and
    its control socket without a second loop. *)

val add_periodic : t -> every:float -> (unit -> unit) -> unit
(** Run a callback every [every] seconds of the injected clock while the
    loop runs (heartbeats, progress reports). *)

val set_partition_filter : t -> parts:int option -> unit
(** The cross-process form of a partition window: with [Some parts] the
    send path drops datagrams crossing block boundaries, blocks computed
    from global ids by the injector's partition arithmetic (identical in
    every process, so no coordination is needed).  [None] heals.  Raises
    [Invalid_argument] when [parts < 2]. *)

val shutdown : t -> unit
(** Close every owned socket. *)

val views : t -> (int * Sf_core.View.t) Seq.t
(** Owned nodes' views, for external invariant checks. *)

val is_crashed : t -> int -> bool
(** [true] while the fault scenario holds the id inside an active crash
    window (always [false] without a scenario). *)

val outdegree_summary : t -> Sf_stats.Summary.t
val independence_census : t -> Sf_core.Census.t
val membership_graph : t -> Sf_graph.Digraph.t
val is_weakly_connected : t -> bool

val fault_statistics : t -> Sf_faults.Injector.stats option
(** Fault-injection counters, when a scenario is installed. *)

type statistics = {
  actions : int;
  datagrams_sent : int;           (** protocol messages offered to the wire *)
  datagrams_dropped : int;        (** send-side injected loss, any fault cause *)
  datagrams_received : int;       (** datagrams arriving at owned sockets *)
  datagrams_corrupted : int;      (** sent with flipped bytes (corrupt windows) *)
  datagrams_delayed : int;        (** held back by a delay window *)
  datagrams_crash_dropped : int;  (** discarded on arrival at a crashed node *)
  datagrams_oversized : int;      (** longer than the wire format allows *)
  datagrams_truncated : int;      (** shorter than their layout declares *)
  decode_errors : int;            (** undecodable (magic/version/kind) *)
  send_errors : int;
  rejoins : int;                  (** crash-restart recoveries (resilience mode) *)
  retunes : int;                  (** per-node threshold retunes (resilience mode) *)
  datagrams_emitted : int;        (** datagrams actually sent (batches coalesce) *)
  messages_received : int;        (** decoded protocol messages (frames add up) *)
  batches_sent : int;             (** v2 batch datagrams *)
  frames_sent : int;              (** messages carried inside those batches *)
  hellos_sent : int;
  hellos_received : int;
  frames_crc_rejected : int;      (** single frames rejected by their CRC *)
  datagrams_filtered : int;       (** dropped by the cross-process partition filter *)
  repair_attempts : int;          (** supervised rebootstrap attempts *)
  recoveries : int;               (** repair attempts confirmed by a later probe *)
}

val statistics : t -> statistics
(** Thin reads of the registry counters (plus the action count). *)

val obs : t -> Sf_obs.Obs.t
(** The driver's observability bundle (the one passed to {!create}, or
    the private default). *)

val action_latency_quantile : t -> float -> float
(** Quantile (in seconds) of the per-initiate-action latency histogram;
    [nan] before any action fires. *)
