(* Estimating the system size from peer samples — one of the "gathering
   statistics" applications the paper's introduction motivates.

   No node knows n, but uniform independent samples make n estimable by
   collision counting: if k samples are drawn uniformly from n ids, the
   expected number of colliding pairs is C(k,2)/n, so

     n-hat = C(k,2) / collisions.

   The estimator leans on exactly the properties the paper proves:
   - spatial independence (M4): samples from *different* nodes' views are
     nearly independent, so one sample from each of k nodes works;
   - uniformity (M3): no id is over-represented;
   - temporal independence (M5): snapshots taken a few dozen rounds apart
     are fresh, so averaging over snapshots sharpens the estimate.

   The contrast case draws all k samples from a single node's frozen view:
   within one view of size ~30 collisions are everywhere and the "estimate"
   collapses to roughly the view size.

   Run with: dune exec examples/size_estimation.exe *)

module Runner = Sf_core.Runner
module Sampling = Sf_core.Sampling
module Protocol = Sf_core.Protocol

(* n-hat from a list of sampled ids. *)
let collision_estimate samples =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun id ->
      Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    samples;
  let collisions =
    Hashtbl.fold (fun _ c acc -> acc + (c * (c - 1) / 2)) counts 0
  in
  let k = List.length samples in
  let pairs = float_of_int (k * (k - 1) / 2) in
  if collisions = 0 then Float.infinity else pairs /. float_of_int collisions

let () =
  let n = 2000 in
  let thresholds = Sf_analysis.Thresholds.select ~d_hat:30 ~delta:0.01 in
  let config = Sf_analysis.Thresholds.to_config thresholds in
  let topology = Sf_core.Topology.regular (Sf_prng.Rng.create 2) ~n ~out_degree:30 in
  let runner = Runner.create ~seed:17 ~n ~loss_rate:0.01 ~config ~topology () in
  Runner.run_rounds runner 200;
  let rng = Sf_prng.Rng.create 18 in

  Fmt.pr "true system size: %d nodes (no node knows this)@." n;

  (* One sample from each of k random nodes, per snapshot; snapshots spaced
     30 rounds apart so each is fresh (M5). *)
  let k = 500 and snapshots = 8 in
  let estimates =
    List.init snapshots (fun snapshot ->
        Runner.run_rounds runner 30;
        let samples =
          List.filter_map
            (fun _ ->
              let node_id = (Runner.random_live_node runner).Protocol.node_id in
              Sampling.sample runner rng ~node_id)
            (List.init k Fun.id)
        in
        let estimate = collision_estimate samples in
        Fmt.pr "  snapshot %d: %d samples, n-hat = %.0f@." (snapshot + 1)
          (List.length samples) estimate;
        estimate)
  in
  let finite = List.filter (fun e -> e < Float.infinity) estimates in
  let mean =
    List.fold_left ( +. ) 0. finite /. float_of_int (max 1 (List.length finite))
  in
  let error = Float.abs (mean -. float_of_int n) /. float_of_int n in
  Fmt.pr "averaged n-hat = %.0f  (relative error %.1f%%)@." mean (100. *. error);

  (* The contrast: all k samples from one node's frozen view. *)
  let node_id = (Runner.random_live_node runner).Protocol.node_id in
  let frozen_samples = Sampling.sample_many runner rng ~node_id ~k in
  let frozen_estimate = collision_estimate frozen_samples in
  Fmt.pr "@.frozen single view: n-hat = %.0f — bounded by the view size (~%d)@."
    frozen_estimate thresholds.view_size;
  Fmt.pr
    "uniform, independent, evolving views are what make sampling statistics work.@."
