(* The three rumor-spreading disciplines of the dissemination layer.

   Push is the classic epidemic baseline (informed nodes push the rumor
   to fanout view samples per round).  Push_pull adds the uninformed
   half: nodes without the rumor send pull requests, and informed
   receivers answer — the Doerr et al. regime whose completion time is
   O(log n) rounds even under constant message loss.  Direct is the
   Haeupler–Malkhi-style address-learning variant: rumor messages carry
   node addresses, receivers remember them, and informed nodes may
   contact learned ids directly — outside their current S&F view — while
   throttling repeat contacts, which trades a little memory for a large
   saving in total messages. *)

type t = Push | Push_pull | Direct

let all = [ Push; Push_pull; Direct ]

let to_string = function
  | Push -> "push"
  | Push_pull -> "push-pull"
  | Direct -> "direct"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "push" -> Ok Push
  | "push-pull" | "push_pull" | "pushpull" | "pp" -> Ok Push_pull
  | "direct" -> Ok Direct
  | other ->
    Error
      (Fmt.str "unknown strategy %S (expected push, push-pull or direct)" other)

let pp ppf t = Fmt.string ppf (to_string t)

(* Direct-strategy ring capacities, shared by both engines so the
   sequential and flat runs of the same workload learn the same way. *)
let lead_capacity = 8
let recent_capacity = 16

let envelope ~c ~n = c *. (Float.log (Float.max 2. (float_of_int n)) /. Float.log 2.)
