(* Runtime fault engine.  Holds the mutable state of a running scenario:
   the loss-process position, which windows are active, the boundary
   transitions not yet drained by the driver, and cause-resolved drop
   counters.  All randomness comes from the RNG passed to [judge], so the
   default scenario replays the exact pre-fault RNG stream. *)

type cause = Chance | Partitioned | Crashed

type verdict = Deliver | Corrupt_payload | Drop of cause

type stats = {
  judged : int;
  chance_drops : int;
  burst_drops : int;
  partition_drops : int;
  crash_drops : int;
  corruptions : int;
  fault_transitions : int;
}

type wstate = { window : Scenario.window; mutable active : bool }

type t = {
  scenario : Scenario.t;
  n : int;
  loss : Loss.t;
  windows : wstate array;
  mutable clock : unit -> float;
  mutable pending : string list;  (* boundary transitions, newest first *)
  mutable judged : int;
  mutable chance_drops : int;
  mutable burst_drops : int;
  mutable partition_drops : int;
  mutable crash_drops : int;
  mutable corruptions : int;
  mutable fault_transitions : int;
}

let create ~scenario ~n () =
  if n <= 0 then invalid_arg "Injector.create: need a positive population";
  List.iter Scenario.validate_window scenario.Scenario.windows;
  {
    scenario;
    n;
    loss = Loss.create scenario.Scenario.loss;
    windows =
      Array.of_list
        (List.map (fun w -> { window = w; active = false }) scenario.Scenario.windows);
    clock = (fun () -> 0.);
    pending = [];
    judged = 0;
    chance_drops = 0;
    burst_drops = 0;
    partition_drops = 0;
    crash_drops = 0;
    corruptions = 0;
    fault_transitions = 0;
  }

let set_clock t clock = t.clock <- clock

let scenario t = t.scenario

let refresh t =
  if Array.length t.windows > 0 then begin
    let now = t.clock () in
    Array.iter
      (fun ws ->
        let active = ws.window.Scenario.start <= now && now < ws.window.Scenario.stop in
        if active <> ws.active then begin
          ws.active <- active;
          t.fault_transitions <- t.fault_transitions + 1;
          t.pending <-
            Fmt.str "%s:%s"
              (if active then "fault-start" else "fault-end")
              (Scenario.fault_kind ws.window.Scenario.fault)
            :: t.pending
        end)
      t.windows
  end

let transitions t =
  let drained = List.rev t.pending in
  t.pending <- [];
  drained

(* Partition block of an id: contiguous blocks of the initial id space;
   joiner ids beyond it wrap by [id mod n]. *)
let block t ~parts id =
  let id = ((id mod t.n) + t.n) mod t.n in
  min (parts - 1) (id * parts / t.n)

let is_crashed t id =
  refresh t;
  Array.exists
    (fun ws ->
      ws.active
      &&
      match ws.window.Scenario.fault with
      | Scenario.Crash { first; last } -> first <= id && id <= last
      | Scenario.Partition _ | Scenario.Delay _ | Scenario.Corrupt _ -> false)
    t.windows

let crash_active t =
  refresh t;
  Array.exists
    (fun ws ->
      ws.active
      && match ws.window.Scenario.fault with Scenario.Crash _ -> true | _ -> false)
    t.windows

let has_crash_windows t =
  Array.exists
    (fun ws ->
      match ws.window.Scenario.fault with Scenario.Crash _ -> true | _ -> false)
    t.windows

let partitioned t ~src ~dst =
  Array.exists
    (fun ws ->
      ws.active
      &&
      match ws.window.Scenario.fault with
      | Scenario.Partition { parts } ->
        src >= 0 && block t ~parts src <> block t ~parts dst
      | Scenario.Crash _ | Scenario.Delay _ | Scenario.Corrupt _ -> false)
    t.windows

let corruption_rate t =
  Array.fold_left
    (fun acc ws ->
      if ws.active then
        match ws.window.Scenario.fault with
        | Scenario.Corrupt { rate } -> Float.max acc rate
        | _ -> acc
      else acc)
    0. t.windows

let delay_factor t =
  refresh t;
  Array.fold_left
    (fun acc ws ->
      if ws.active then
        match ws.window.Scenario.fault with
        | Scenario.Delay { factor } -> acc *. factor
        | _ -> acc
      else acc)
    1. t.windows

let judge t rng ~chance ~src ~dst =
  refresh t;
  t.judged <- t.judged + 1;
  if is_crashed t src || is_crashed t dst then begin
    t.crash_drops <- t.crash_drops + 1;
    Drop Crashed
  end
  else if partitioned t ~src ~dst then begin
    t.partition_drops <- t.partition_drops + 1;
    Drop Partitioned
  end
  else if Loss.drop t.loss rng ~chance ~src ~dst then begin
    t.chance_drops <- t.chance_drops + 1;
    if Loss.in_burst t.loss then t.burst_drops <- t.burst_drops + 1;
    Drop Chance
  end
  else
    let rate = corruption_rate t in
    if rate > 0. && Sf_prng.Rng.bernoulli rng rate then begin
      t.corruptions <- t.corruptions + 1;
      Corrupt_payload
    end
    else Deliver

let statistics t =
  {
    judged = t.judged;
    chance_drops = t.chance_drops;
    burst_drops = t.burst_drops;
    partition_drops = t.partition_drops;
    crash_drops = t.crash_drops;
    corruptions = t.corruptions;
    fault_transitions = t.fault_transitions;
  }
