(** Point-to-point messaging with uniform i.i.d. loss (the paper's loss
    model). Messages to unregistered destinations model sends to
    failed/departed nodes. *)

type 'msg t

type statistics = {
  messages_sent : int;
  messages_delivered : int;
  messages_lost : int;
  messages_to_dead_nodes : int;
}

val default_latency : Sf_prng.Rng.t -> float
(** Uniform latency in [0.5, 1.5) time units. *)

val create :
  ?latency:(Sf_prng.Rng.t -> float) ->
  ?destination_loss:(int -> float) ->
  ?injector:Sf_faults.Injector.t ->
  ?obs:Sf_obs.Obs.t ->
  ?resilience:bool ->
  sim:Sim.t ->
  rng:Sf_prng.Rng.t ->
  loss_rate:float ->
  unit ->
  'msg t
(** [destination_loss] overrides the uniform [loss_rate] with a
    per-destination drop probability — the non-uniform loss regime the
    paper's section 4.1 mentions but leaves unanalyzed. [loss_rate] remains
    the nominal mean reported by {!loss_rate}.

    [injector] routes every send through a fault scenario (bursty loss,
    partitions, crashes, delay spikes, corruption — see {!Sf_faults}).
    Without one — or with {!Sf_faults.Scenario.default} — the send path
    performs the historical single Bernoulli draw per message, so
    fault-free runs replay byte-identically.

    [resilience] (default [false]) additionally maintains the windowed
    sent/lost counters behind {!loss_window}, the resilience layer's
    ground-truth loss signal.  The counters are plain ints touched by no
    RNG draw, so enabling them cannot perturb replay.

    [obs] is the observability bundle receiving the [net_*] counters and
    (when a tracer is attached) Send/Drop/Deliver trace records stamped
    with virtual time; a private bundle is used when omitted.  Observation
    consumes no randomness, so instrumented runs replay byte-identically
    too. *)

val register : 'msg t -> int -> ('msg -> unit) -> unit
(** Attach the receive handler of a (live) node. *)

val unregister : 'msg t -> int -> unit
(** Detach a node's handler — the node has left or failed. *)

val is_registered : 'msg t -> int -> bool

val loss_rate : 'msg t -> float

val set_trace_clock : 'msg t -> (unit -> float) -> unit
(** Override the clock stamping trace records (default: the virtual
    clock).  The sequential runner installs its action-count round clock
    so one trace dump never mixes time units. *)

val send : 'msg t -> ?src:int -> ?duplicated:bool -> dst:int -> 'msg -> unit
(** Fire-and-forget asynchronous send; lost with probability [loss_rate]
    (or per the fault injector), otherwise delivered after a latency draw.
    [src] identifies the sender to the injector's partition and crash
    checks; the default [-1] is exempt from them.  [duplicated] annotates
    the Send trace record (the protocol layer owns the decision). *)

val send_immediate :
  'msg t -> ?src:int -> ?duplicated:bool -> dst:int -> 'msg -> bool
(** Sequential-action send: runs the receive step synchronously. Returns
    [true] iff delivered to a live handler. *)

val statistics : 'msg t -> statistics

val observed_loss_rate : 'msg t -> float

val loss_window : 'msg t -> (int * int) option
(** [(sent, lost)] since the previous call, resetting the window — the
    recent-regime loss signal the resilience layer compares its estimate
    against (a cumulative rate lags under non-stationary loss).  [None]
    unless the network was created with [~resilience:true]. *)
