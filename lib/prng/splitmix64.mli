(** SplitMix64: a fast, well-distributed 64-bit generator, used here to
    expand user seeds into full generator states for {!Rng}.

    Reference: Steele, Lea and Flood, {e Fast splittable pseudorandom
    number generators}, OOPSLA 2014.  The update adds the 64-bit golden
    gamma [0x9E3779B97F4A7C15] (2{^64}/φ, forced odd) to the state and
    finalizes it with the MurmurHash3-style mix of Appendix A — xor-shifts
    by 30, 27 and 31 interleaved with multiplications by
    [0xBF58476D1CE4E5B9] and [0x94D049BB133111EB]. *)

type t

val create : int64 -> t
(** A generator whose state starts at the given seed. *)

val of_int : int -> t
(** [create] over a native int seed. *)

val next : t -> int64
(** Advance the state by the golden gamma and return its mixed image.
    Every call yields a fresh value; the sequence has period 2{^64}. *)

val mix_int : int -> int
(** The stateless avalanche finalizer of {!next} applied to a native int:
    a deterministic, well-distributed, non-negative hash of the key bits
    alone.  Use it as the [hash] of [Hashtbl.Make] functors over int-like
    keys where iteration order must not depend on the polymorphic
    [Hashtbl.hash] (whose behaviour the determinism lint forbids). *)

val expand : int64 -> int -> int64 array
(** [expand seed n] is the first [n] outputs of a generator seeded with
    [seed] — the seed-expansion helper behind {!Rng.create}. *)
