(* Fault-injection experiments (lib/faults) — behaviour of S&F beyond the
   paper's i.i.d. loss model:

   - FA1: Gilbert–Elliott bursty loss vs i.i.d. loss at the same stationary
     mean rate.  The paper's analysis assumes independent per-message drops
     (section 4.1); bursts concentrate the same number of losses on
     unlucky stretches, which stresses the degree distribution's lower
     tail while leaving the mean balance (Lemma 6.6) intact.
   - FA2: recovery times — how long the overlay needs to re-knit after a
     network partition heals, and after a crashed node range resumes with
     stale views; plus the permanent-split regime (a partition outliving
     view decay) healed by the out-of-band rendezvous rule.  Both legs run
     under the strict invariant audit. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Summary = Sf_stats.Summary
module Scenario = Sf_faults.Scenario
module Loss = Sf_faults.Loss
module Invariant = Sf_check.Invariant

let config = Protocol.make_config ~view_size:40 ~lower_threshold:18

(* --- FA1: bursty vs i.i.d. loss at equal mean --- *)

let bursty_vs_iid () =
  Output.section "FA1" "Bursty (Gilbert-Elliott) vs i.i.d. loss at equal mean rate";
  let mean_loss = 0.2 and mean_burst = 8.0 in
  let ge = Loss.gilbert_elliott ~mean_loss ~mean_burst () in
  Fmt.pr
    "n=600, s=40, dL=18.  Both systems lose %.0f%% of messages in expectation;@\n\
     the GE system loses them in bursts of mean length %.0f (stationary loss@\n\
     %.4f, so Lemma 6.6's mean balance is unchanged while the variance is not).@\n\
     300 warm-up rounds, then 300 measured.@."
    (100. *. mean_loss) mean_burst (Loss.stationary_loss ge);
  let n = 600 and rounds = 300 in
  let measure name scenario =
    let topology = Topology.regular (Sf_prng.Rng.create 501) ~n ~out_degree:30 in
    let r =
      Runner.create ?scenario ~seed:500 ~n ~loss_rate:mean_loss ~config ~topology ()
    in
    Runner.run_rounds r rounds;
    let base = Runner.world_counters r in
    let net_base = Runner.network_statistics r in
    Runner.run_rounds r rounds;
    let rates = Runner.rates_since r base in
    let net = Runner.network_statistics r in
    let observed_loss =
      let sent =
        net.Sf_engine.Network.messages_sent - net_base.Sf_engine.Network.messages_sent
      in
      let lost =
        net.Sf_engine.Network.messages_lost - net_base.Sf_engine.Network.messages_lost
      in
      if sent = 0 then 0. else float_of_int lost /. float_of_int sent
    in
    let outs = Properties.outdegree_summary r in
    let at_or_below_dl =
      Array.fold_left
        (fun acc node ->
          if Protocol.degree node <= config.Protocol.lower_threshold then acc + 1
          else acc)
        0 (Runner.live_nodes r)
    in
    [
      name;
      Fmt.str "%.4f" observed_loss;
      Fmt.str "%.1f±%.1f" (Summary.mean outs) (Summary.std outs);
      Fmt.str "%.0f" (Summary.min_value outs);
      Output.i at_or_below_dl;
      Output.i (List.length (Runner.starved_nodes r));
      Output.f4 rates.Runner.duplication;
      Output.f4 (rates.Runner.loss +. rates.Runner.deletion);
      Fmt.str "%b" (Properties.is_weakly_connected r);
    ]
  in
  let iid_row = measure "i.i.d." None in
  let ge_row =
    measure "Gilbert-Elliott"
      (Some (Scenario.make ~loss:(Loss.Gilbert_elliott ge) ()))
  in
  Output.table
    [
      "loss process"; "observed"; "outdegree"; "min"; "<=dL"; "starved"; "dup";
      "loss+del"; "connected";
    ]
    [ iid_row; ge_row ];
  Fmt.pr
    "  Bursts widen the outdegree distribution and deepen its lower tail@\n\
     (more nodes at or below dL, hence more duplication), but the per-send@\n\
     mean balance and weak connectivity match the i.i.d. system.@."

(* --- FA2: partition and crash/restart recovery --- *)

(* Rounds until the membership graph is weakly connected again, by running
   one round at a time (cap [limit]). *)
let rounds_to_reconnect r ~limit =
  let rec go k =
    if Properties.is_weakly_connected r then Some k
    else if k >= limit then None
    else begin
      Runner.run_rounds r 1;
      go (k + 1)
    end
  in
  go 0

let fault_recovery () =
  Output.section "FA2" "Recovery from partitions and crash/restart (strict audit)";

  Output.subsection "crash/restart: 10% of nodes freeze for 20 rounds";
  let n = 400 in
  let scenario =
    match Scenario.of_string "crash@40-60:0-39" with
    | Ok sc -> sc
    | Error e -> failwith e
  in
  let topology = Topology.regular (Sf_prng.Rng.create 511) ~n ~out_degree:30 in
  let r =
    Runner.create ~scenario ~seed:510 ~n ~loss_rate:0.01 ~config ~topology ()
  in
  let stats = Invariant.audited_run ~mode:Invariant.Strict r ~rounds:100 in
  let crashed_outs = Summary.create () in
  Array.iter
    (fun node ->
      if node.Protocol.node_id < 40 then
        Summary.add_int crashed_outs (Protocol.degree node))
    (Runner.live_nodes r);
  Output.row "  %d actions audited, %d resyncs, %d violations@."
    stats.Invariant.actions_checked stats.Invariant.resyncs
    stats.Invariant.violation_count;
  Output.row "  crashed range outdegree 40 rounds after resume: %.1f±%.1f@."
    (Summary.mean crashed_outs) (Summary.std crashed_outs);
  Output.check "crash/restart passes the strict audit"
    (stats.Invariant.violation_count = 0);
  Output.check "resumed nodes reintegrated (mean outdegree > dL)"
    (Summary.mean crashed_outs > float_of_int config.Protocol.lower_threshold);

  Output.subsection "short partition: 2-way split for 30 rounds, views survive";
  let scenario =
    match Scenario.of_string "partition@20-50:2" with
    | Ok sc -> sc
    | Error e -> failwith e
  in
  let topology = Topology.regular (Sf_prng.Rng.create 521) ~n ~out_degree:30 in
  let r =
    Runner.create ~scenario ~seed:520 ~n ~loss_rate:0.01 ~config ~topology ()
  in
  Runner.run_rounds r 50;
  (* The partition just healed; cross-partition entries (born before round
     20) have had 30 rounds to decay but s=40 views retain plenty. *)
  (match rounds_to_reconnect r ~limit:50 with
  | Some k ->
    Output.row "  weakly connected %d round(s) after the partition healed@." k;
    Output.check "reconnected within 5 rounds of healing" (k <= 5)
  | None -> Output.check "reconnected within 50 rounds of healing" false);

  Output.subsection
    "long partition, small views: permanent split healed by rendezvous";
  let small = Protocol.make_config ~view_size:8 ~lower_threshold:2 in
  let n = 200 in
  let scenario =
    match Scenario.of_string "partition@5-105:2" with
    | Ok sc -> sc
    | Error e -> failwith e
  in
  let topology = Topology.regular (Sf_prng.Rng.create 531) ~n ~out_degree:6 in
  let r =
    Runner.create ~scenario ~seed:530 ~n ~loss_rate:0.05 ~config:small ~topology ()
  in
  Runner.run_rounds r 110;
  let split = not (Properties.is_weakly_connected r) in
  Output.row "  after the 100-round partition: connected = %b@." (not split);
  if split then begin
    match Sf_core.Churn.recover_connectivity ~max_rounds:50 r with
    | Some (rounds, rebootstraps) ->
      Output.row "  rendezvous recovery: %d round(s), %d rebootstrap(s)@." rounds
        rebootstraps;
      Output.check "recover_connectivity re-knit the overlay" true
    | None -> Output.check "recover_connectivity re-knit the overlay" false
  end
  else
    (* Erosion is stochastic; with these parameters a surviving cross edge
       is possible.  Nothing to recover in that case. *)
    Output.row "  (cross-partition edges survived; no recovery needed)@."
