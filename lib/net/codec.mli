(** Binary wire codec for S&F messages carried as UDP datagrams. *)

val message_size : int
(** Encoded size in bytes (66). *)

val recv_buffer_size : int
(** [message_size + 1]: the receive-buffer size that lets a receiver detect
    oversized datagrams — recvfrom truncates a UDP payload to the buffer,
    so the one-byte headroom makes [length > message_size] observable. *)

type error =
  | Too_short of int
  | Bad_magic of char
  | Unsupported_version of char

val pp_error : Format.formatter -> error -> unit

val encode : Sf_core.Protocol.message -> bytes

val decode : bytes -> length:int -> (Sf_core.Protocol.message, error) result
(** Decode the first [length] bytes of a received datagram. *)
