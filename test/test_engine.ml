(* Tests for the discrete-event engine and the lossy network. *)

module Event_queue = Sf_engine.Event_queue
module Sim = Sf_engine.Sim
module Network = Sf_engine.Network

(* --- Event queue --- *)

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "?" in
  (* Bind sequentially: list literals evaluate right to left in OCaml. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ first; second; third ]

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:5. i
  done;
  let order = List.init 10 (fun _ -> match Event_queue.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "insertion order on equal times" (List.init 10 Fun.id) order

let test_queue_interleaved () =
  let q = Event_queue.create () in
  let rng = Sf_prng.Rng.create 4 in
  for i = 0 to 999 do
    Event_queue.push q ~time:(Sf_prng.Rng.float rng) i
  done;
  let last = ref neg_infinity in
  let ok = ref true in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
      if t < !last then ok := false;
      last := t;
      drain ()
  in
  drain ();
  Alcotest.(check bool) "nondecreasing pops" true !ok;
  Alcotest.(check bool) "empty after drain" true (Event_queue.is_empty q)

let test_queue_peek () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2. "later";
  Event_queue.push q ~time:1. "sooner";
  (match Event_queue.peek q with
  | Some (t, x) ->
    Alcotest.(check string) "peek payload" "sooner" x;
    Alcotest.(check bool) "peek time" true (t = 1.)
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not remove" 2 (Event_queue.length q)

(* --- Simulator --- *)

let test_sim_runs_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2. (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:1. (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:3. (fun () -> log := "c" :: !log);
  let outcome = Sim.run sim in
  Alcotest.(check (list string)) "executed in order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check bool) "drained" true (outcome = Sim.Drained);
  Alcotest.(check bool) "clock at last event" true (Sim.now sim = 3.)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then Sim.schedule sim ~delay:1. tick
  in
  Sim.schedule sim ~delay:1. tick;
  ignore (Sim.run sim);
  Alcotest.(check int) "recursive events" 5 !count;
  Alcotest.(check bool) "time advanced" true (Sim.now sim = 5.)

let test_sim_horizon () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Sim.schedule sim ~delay:1. tick
  in
  Sim.schedule sim ~delay:1. tick;
  let outcome = Sim.run ~horizon:10.5 sim in
  Alcotest.(check bool) "horizon outcome" true (outcome = Sim.Reached_horizon);
  Alcotest.(check int) "ten events" 10 !count;
  Alcotest.(check bool) "clock at horizon" true (Sim.now sim = 10.5);
  (* Resume cleanly past the first horizon. *)
  let outcome = Sim.run ~horizon:15.5 sim in
  Alcotest.(check bool) "resumed" true (outcome = Sim.Reached_horizon);
  Alcotest.(check int) "five more" 15 !count

let test_sim_event_budget () =
  let sim = Sim.create () in
  let rec tick () = Sim.schedule sim ~delay:1. tick in
  Sim.schedule sim ~delay:1. tick;
  let outcome = Sim.run ~max_events:7 sim in
  Alcotest.(check bool) "budget outcome" true (outcome = Sim.Budget_exhausted);
  Alcotest.(check int) "counted" 7 (Sim.executed_events sim)

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count = 3 then Sim.stop sim else Sim.schedule sim ~delay:1. tick
  in
  Sim.schedule sim ~delay:1. tick;
  let outcome = Sim.run sim in
  Alcotest.(check bool) "stopped" true (outcome = Sim.Stopped);
  Alcotest.(check int) "three events" 3 !count

let test_sim_rejects_negative_delay () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Sim.schedule sim ~delay:(-1.) (fun () -> ()))

(* --- Network --- *)

let make_network ?(loss = 0.) () =
  let sim = Sim.create () in
  let rng = Sf_prng.Rng.create 99 in
  (sim, Network.create ~sim ~rng ~loss_rate:loss ())

let test_network_delivers () =
  let sim, net = make_network () in
  let received = ref [] in
  Network.register net 1 (fun msg -> received := msg :: !received);
  Network.send net ~dst:1 "hello";
  Network.send net ~dst:1 "world";
  ignore (Sim.run sim);
  Alcotest.(check int) "both delivered" 2 (List.length !received);
  let stats = Network.statistics net in
  Alcotest.(check int) "sent" 2 stats.Network.messages_sent;
  Alcotest.(check int) "delivered" 2 stats.Network.messages_delivered

let test_network_loss_rate () =
  let sim, net = make_network ~loss:0.25 () in
  let received = ref 0 in
  Network.register net 1 (fun () -> incr received);
  let n = 40_000 in
  for _ = 1 to n do
    Network.send net ~dst:1 ()
  done;
  ignore (Sim.run sim);
  let observed = Network.observed_loss_rate net in
  Alcotest.(check bool) "observed loss near 0.25" true (Float.abs (observed -. 0.25) < 0.01);
  Alcotest.(check int) "received + lost = sent" n
    (!received + (Network.statistics net).Network.messages_lost)

let test_network_dead_destination () =
  let sim, net = make_network () in
  Network.send net ~dst:42 "ghost";
  ignore (Sim.run sim);
  let stats = Network.statistics net in
  Alcotest.(check int) "dropped" 1 stats.Network.messages_to_dead_nodes;
  Alcotest.(check int) "not delivered" 0 stats.Network.messages_delivered

let test_network_unregister () =
  let sim, net = make_network () in
  let received = ref 0 in
  Network.register net 1 (fun () -> incr received);
  Network.send net ~dst:1 ();
  ignore (Sim.run sim);
  Network.unregister net 1;
  Alcotest.(check bool) "no longer registered" false (Network.is_registered net 1);
  Network.send net ~dst:1 ();
  ignore (Sim.run sim);
  Alcotest.(check int) "only first delivered" 1 !received

let test_network_send_immediate () =
  let _, net = make_network () in
  let received = ref 0 in
  Network.register net 1 (fun () -> incr received);
  Alcotest.(check bool) "delivered synchronously" true (Network.send_immediate net ~dst:1 ());
  Alcotest.(check int) "handler ran inline" 1 !received;
  Alcotest.(check bool) "dead destination" false (Network.send_immediate net ~dst:9 ())

let test_network_latency_ordering () =
  (* With the default latency in [0.5, 1.5), a message sent at t=0 arrives
     before one sent at t=2. *)
  let sim, net = make_network () in
  let log = ref [] in
  Network.register net 1 (fun tag -> log := tag :: !log);
  Network.send net ~dst:1 "first";
  Sim.schedule sim ~delay:2. (fun () -> Network.send net ~dst:1 "second");
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "causal order" [ "first"; "second" ] (List.rev !log)

let test_network_rejects_bad_loss () =
  let sim = Sim.create () in
  let rng = Sf_prng.Rng.create 1 in
  Alcotest.check_raises "loss out of range"
    (Invalid_argument "Network.create: loss_rate must lie in [0,1]") (fun () ->
      ignore (Network.create ~sim ~rng ~loss_rate:1.5 ()))

let suite =
  [
    Alcotest.test_case "queue time order" `Quick test_queue_orders_by_time;
    Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_on_ties;
    Alcotest.test_case "queue interleaved" `Quick test_queue_interleaved;
    Alcotest.test_case "queue peek" `Quick test_queue_peek;
    Alcotest.test_case "sim order" `Quick test_sim_runs_in_order;
    Alcotest.test_case "sim nested scheduling" `Quick test_sim_nested_scheduling;
    Alcotest.test_case "sim horizon" `Quick test_sim_horizon;
    Alcotest.test_case "sim event budget" `Quick test_sim_event_budget;
    Alcotest.test_case "sim stop" `Quick test_sim_stop;
    Alcotest.test_case "sim negative delay" `Quick test_sim_rejects_negative_delay;
    Alcotest.test_case "network delivery" `Quick test_network_delivers;
    Alcotest.test_case "network loss rate" `Quick test_network_loss_rate;
    Alcotest.test_case "network dead destination" `Quick test_network_dead_destination;
    Alcotest.test_case "network unregister" `Quick test_network_unregister;
    Alcotest.test_case "network send_immediate" `Quick test_network_send_immediate;
    Alcotest.test_case "network latency ordering" `Quick test_network_latency_ordering;
    Alcotest.test_case "network loss validation" `Quick test_network_rejects_bad_loss;
  ]
