(* The two-dimensional degree Markov chain of section 6.2.

   The chain tracks the (outdegree d, indegree din) of one tagged node u as
   global S&F actions execute.  Three event families touch u's state; their
   rates (per global action, dropping the common 1/n factor) and effects:

   A. u initiates and draws two non-empty slots — rate d(d-1) / (s(s-1)).
      The entries are cleared (d -= 2) unless d = dL (duplication, d
      unchanged); if the message survives loss (prob 1 - loss) and the
      receiver is not full (prob 1 - p_full), the receiver adds u's own id
      (din += 1).

   B. An in-neighbor v initiates and draws u's entry as the message target
      (plus another non-empty slot) — rate din * r_edge, where r_edge is
      the per-in-edge probability that its holder fires it as a target.
      The edge (v,u) is cleared (din -= 1) unless v duplicated (prob
      q_dup); if the message survives loss, u installs both carried ids
      (d += 2) unless u's view is full (d = s: deletion, d unchanged).

   C. An in-neighbor v initiates and draws u's entry as the forwarded id —
      rate din * r_edge again by symmetry.  The edge (v,u) is cleared
      (din -= 1) unless v duplicated; a new edge (z,u) appears (din += 1)
      if the message survives loss and the destination z is not full.

   The transition probabilities depend on the stationary degree
   distribution itself — p_full, q_dup and r_edge are functionals of it —
   so, exactly as the paper prescribes, we iterate: guess a distribution,
   build the chain, solve for its stationary distribution (sparse power
   iteration rather than the paper's dense matrix squaring — the same fixed
   point, much cheaper), and repeat until the distributions agree.

   Sender statistics are size-biased: a random in-edge of u lives at a node
   sampled with probability proportional to its outdegree, and fires with
   probability proportional to (outdegree - 1).  The paper makes the same
   observation in Lemma 6.9.  The [`Uniform] weighting disables this for
   the ablation bench.

   Following the paper, sum degrees are capped at [sum_degree_cap] (default
   3s) — transitions that would exceed the cap become self-loops — and
   transitions into the isolated state (0,0) also become self-loops, the
   treatment section 7.1 applies to partitioned states. *)

type weighting = Size_biased | Uniform

type params = {
  view_size : int;       (* s *)
  lower_threshold : int; (* dL *)
  loss : float;          (* message loss probability *)
  sum_degree_cap : int;  (* states with d + 2 din above this are removed *)
  weighting : weighting;
}

let make_params ?(sum_degree_cap = -1) ?(weighting = Size_biased) ~view_size
    ~lower_threshold ~loss () =
  if view_size < 2 || view_size mod 2 <> 0 then
    invalid_arg "Degree_mc.make_params: view_size must be even and >= 2";
  if lower_threshold < 0 || lower_threshold mod 2 <> 0 || lower_threshold > view_size
  then invalid_arg "Degree_mc.make_params: bad lower threshold";
  if loss < 0. || loss >= 1. then
    invalid_arg "Degree_mc.make_params: loss must lie in [0,1)";
  let sum_degree_cap = if sum_degree_cap <= 0 then 3 * view_size else sum_degree_cap in
  { view_size; lower_threshold; loss; sum_degree_cap; weighting }

(* --- State indexing ---------------------------------------------------- *)

type state_space = {
  p : params;
  states : (int * int) array;  (* index -> (d, din) *)
  index : (int * int, int) Hashtbl.t;
  count : int;
}

let build_state_space p =
  let states = ref [] in
  let d = ref p.lower_threshold in
  while !d <= p.view_size do
    let max_din = (p.sum_degree_cap - !d) / 2 in
    for din = 0 to max_din do
      if not (!d = 0 && din = 0) then states := (!d, din) :: !states
    done;
    d := !d + 2
  done;
  let states = Array.of_list (List.rev !states) in
  let index = Hashtbl.create (2 * Array.length states) in
  Array.iteri (fun i st -> Hashtbl.replace index st i) states;
  { p; states; index; count = Array.length states }

(* --- Distribution-dependent inputs ------------------------------------- *)

type chain_inputs = {
  p_full : float;   (* probability a message's receiver has a full view *)
  q_dup : float;    (* probability the holder of a fired in-edge duplicates *)
  r_edge : float;   (* per-in-edge firing rate (as target; same as forwarded) *)
}

(* Compute the inputs from a joint distribution over the state space. *)
let inputs_of_distribution space dist =
  let p = space.p in
  let s = float_of_int p.view_size in
  (* Outdegree moments under the plain marginal. *)
  let e_d = ref 0. and e_dd1 = ref 0. and mass_dup_fire = ref 0. in
  (* In-edge-weighted receiver statistics: a message's receiver is reached
     through one of its in-edges, so weight states by din. *)
  let in_mass = ref 0. and in_mass_full = ref 0. in
  Array.iteri
    (fun i (d, din) ->
      let w = dist.(i) in
      let fd = float_of_int d in
      e_d := !e_d +. (w *. fd);
      e_dd1 := !e_dd1 +. (w *. fd *. (fd -. 1.));
      if d = p.lower_threshold then
        mass_dup_fire := !mass_dup_fire +. (w *. fd *. (fd -. 1.));
      let fdin = float_of_int din in
      in_mass := !in_mass +. (w *. fdin);
      if d = p.view_size then in_mass_full := !in_mass_full +. (w *. fdin))
    space.states;
  match p.weighting with
  | Size_biased ->
    let r_edge =
      if !e_d <= 0. then 0. else !e_dd1 /. (!e_d *. s *. (s -. 1.))
    in
    let q_dup = if !e_dd1 <= 0. then 0. else !mass_dup_fire /. !e_dd1 in
    let p_full = if !in_mass <= 0. then 0. else !in_mass_full /. !in_mass in
    { p_full; q_dup; r_edge }
  | Uniform ->
    (* Naive model: senders and receivers distributed as a uniformly random
       node, ignoring the edge-weighted selection bias. *)
    let mass_d = Array.make (p.view_size + 1) 0. in
    Array.iteri (fun i (d, _) -> mass_d.(d) <- mass_d.(d) +. dist.(i)) space.states;
    let total = Array.fold_left ( +. ) 0. mass_d in
    let norm x = if total <= 0. then 0. else x /. total in
    let e_d1 = ref 0. in
    Array.iteri (fun d m -> e_d1 := !e_d1 +. (norm m *. float_of_int (max 0 (d - 1)))) mass_d;
    {
      p_full = norm mass_d.(p.view_size);
      q_dup = norm mass_d.(p.lower_threshold);
      r_edge = !e_d1 /. (s *. (s -. 1.));
    }

(* --- Chain construction ------------------------------------------------ *)

(* Sparse transition structure in CSR form plus per-state self-loop mass. *)
type chain = {
  offsets : int array;       (* length count+1 *)
  targets : int array;
  probs : float array;
  self : float array;        (* P(x,x) *)
}

let build_chain space inputs =
  let p = space.p in
  let s = float_of_int p.view_size in
  let loss = p.loss in
  let count = space.count in
  (* First pass: collect (target, rate) lists per state. *)
  let rows = Array.make count [] in
  let total_rate = Array.make count 0. in
  let add_transition i (d', din') rate =
    if rate > 0. then begin
      let target =
        if d' + (2 * din') > p.sum_degree_cap then i       (* cap: self-loop *)
        else if d' = 0 && din' = 0 then i                  (* isolated: self-loop *)
        else
          match Hashtbl.find_opt space.index (d', din') with
          | Some j -> j
          | None -> i
      in
      rows.(i) <- (target, rate) :: rows.(i);
      total_rate.(i) <- total_rate.(i) +. rate
    end
  in
  Array.iteri
    (fun i (d, din) ->
      let fd = float_of_int d and fdin = float_of_int din in
      (* Case A: u initiates with two non-empty slots. *)
      let w_a = fd *. (fd -. 1.) /. (s *. (s -. 1.)) in
      if w_a > 0. then begin
        let dup = d = p.lower_threshold in
        let p_gain = (1. -. loss) *. (1. -. inputs.p_full) in
        let d' = if dup then d else d - 2 in
        add_transition i (d', din + 1) (w_a *. p_gain);
        add_transition i (d', din) (w_a *. (1. -. p_gain))
      end;
      (* Cases B and C: one of u's din in-edges fires. *)
      let w_edge = fdin *. inputs.r_edge in
      if w_edge > 0. then begin
        let q = inputs.q_dup in
        (* B: u is the message target. *)
        let d_recv = if d < p.view_size then d + 2 else d (* full: deletion *) in
        add_transition i (d_recv, din - 1) (w_edge *. (1. -. loss) *. (1. -. q));
        add_transition i (d_recv, din) (w_edge *. (1. -. loss) *. q);
        add_transition i (d, din - 1) (w_edge *. loss *. (1. -. q));
        add_transition i (d, din) (w_edge *. loss *. q);
        (* C: u's id is the forwarded payload. *)
        let p_arrive = (1. -. loss) *. (1. -. inputs.p_full) in
        add_transition i (d, din) (w_edge *. p_arrive *. (1. -. q));
        add_transition i (d, din + 1) (w_edge *. p_arrive *. q);
        add_transition i (d, din - 1) (w_edge *. (1. -. p_arrive) *. (1. -. q));
        add_transition i (d, din) (w_edge *. (1. -. p_arrive) *. q)
      end)
    space.states;
  (* Uniformize: divide all rates by the maximal total rate, putting the
     remainder on the diagonal.  This preserves the stationary distribution
     while making rows stochastic. *)
  let lambda = Array.fold_left Float.max 1e-9 total_rate in
  let self = Array.make count 0. in
  let sizes = Array.map List.length rows in
  let offsets = Array.make (count + 1) 0 in
  for i = 0 to count - 1 do
    offsets.(i + 1) <- offsets.(i) + sizes.(i)
  done;
  let nnz = offsets.(count) in
  let targets = Array.make nnz 0 in
  let probs = Array.make nnz 0. in
  Array.iteri
    (fun i cells ->
      let base = ref offsets.(i) in
      let off_diagonal = ref 0. in
      List.iter
        (fun (j, rate) ->
          let pr = rate /. lambda in
          if j = i then self.(i) <- self.(i) +. pr
          else begin
            targets.(!base) <- j;
            probs.(!base) <- pr;
            incr base;
            off_diagonal := !off_diagonal +. pr
          end)
        cells;
      (* Remainder of the uniformization mass stays put. *)
      self.(i) <- self.(i) +. (1. -. (total_rate.(i) /. lambda));
      (* Unused tail of the row (self-loop cells skipped): shrink by leaving
         zero-probability placeholders pointing at i. *)
      for k = !base to offsets.(i + 1) - 1 do
        targets.(k) <- i;
        probs.(k) <- 0.
      done)
    rows;
  { offsets; targets; probs; self }

let chain_step chain src dst =
  let count = Array.length chain.self in
  Array.fill dst 0 count 0.;
  for i = 0 to count - 1 do
    let pi = src.(i) in
    if pi > 0. then begin
      dst.(i) <- dst.(i) +. (pi *. chain.self.(i));
      for k = chain.offsets.(i) to chain.offsets.(i + 1) - 1 do
        let pr = chain.probs.(k) in
        if pr > 0. then begin
          let j = chain.targets.(k) in
          dst.(j) <- dst.(j) +. (pi *. pr)
        end
      done
    end
  done

let solve_stationary ?(tolerance = 1e-12) ?(max_iterations = 400_000) chain initial =
  let count = Array.length chain.self in
  let a = Array.copy initial in
  let b = Array.make count 0. in
  let rec go src dst k =
    chain_step chain src dst;
    let delta = ref 0. in
    for i = 0 to count - 1 do
      delta := !delta +. Float.abs (dst.(i) -. src.(i))
    done;
    if !delta < tolerance || k >= max_iterations then (dst, k, !delta)
    else go dst src (k + 1)
  in
  (* Check distributions every step; swap buffers. *)
  let dist, iters, residual = go a b 1 in
  (dist, iters, residual)

(* --- Fixed point ------------------------------------------------------- *)

type result = {
  params : params;
  states : (int * int) array;
  joint : float array;
  outdegree : Sf_stats.Pmf.t;
  indegree : Sf_stats.Pmf.t;
  inputs : chain_inputs;
  duplication_probability : float;  (* per send, in the fixed point *)
  deletion_probability : float;     (* per send *)
  outer_iterations : int;
  converged : bool;
}

let marginals space dist =
  let p = space.p in
  let out_mass = Array.make (p.view_size + 1) 0. in
  let max_din =
    Array.fold_left (fun acc (_, din) -> max acc din) 0 space.states
  in
  let in_mass = Array.make (max_din + 1) 0. in
  Array.iteri
    (fun i (d, din) ->
      out_mass.(d) <- out_mass.(d) +. dist.(i);
      in_mass.(din) <- in_mass.(din) +. dist.(i))
    space.states;
  ( Sf_stats.Pmf.create ~offset:0 out_mass |> Sf_stats.Pmf.normalize,
    Sf_stats.Pmf.create ~offset:0 in_mass |> Sf_stats.Pmf.normalize )

(* Duplication probability per send: the share of case-A firings that occur
   at d = dL, under the converged joint distribution. *)
let duplication_probability_of space dist =
  let p = space.p in
  let fire_total = ref 0. and fire_dup = ref 0. in
  Array.iteri
    (fun i (d, _) ->
      let fd = float_of_int d in
      let w = dist.(i) *. fd *. (fd -. 1.) in
      fire_total := !fire_total +. w;
      if d = p.lower_threshold then fire_dup := !fire_dup +. w)
    space.states;
  if !fire_total <= 0. then 0. else !fire_dup /. !fire_total

let solve ?(initial_state : (int * int) option) ?(outer_tolerance = 1e-10)
    ?(max_outer_iterations = 300) ?(stationary_tolerance = 1e-12) params =
  let space = build_state_space params in
  let initial =
    let dist = Array.make space.count 0. in
    let st =
      match initial_state with
      | Some st -> st
      | None ->
        (* A mid-range starting state: outdegree between dL and s, indegree
           equal to it (sum degree 3d). *)
        let d =
          let mid = (params.lower_threshold + params.view_size) / 2 in
          if mid mod 2 = 0 then mid else mid + 1
        in
        (d, d)
    in
    (match Hashtbl.find_opt space.index st with
    | Some i -> dist.(i) <- 1.
    | None -> invalid_arg "Degree_mc.solve: initial state outside state space");
    dist
  in
  (* Damped fixed-point iteration: the raw map dist -> stationary(chain(dist))
     oscillates between regimes (the duplication and deletion feedbacks have
     opposite signs), so successive iterates are averaged, which is a
     standard stabilization and preserves the fixed point. *)
  let damping = 0.5 in
  let rec iterate dist k =
    let inputs = inputs_of_distribution space dist in
    let chain = build_chain space inputs in
    let solved, _, _ = solve_stationary ~tolerance:stationary_tolerance chain dist in
    let delta = ref 0. in
    Array.iteri (fun i x -> delta := !delta +. Float.abs (x -. dist.(i))) solved;
    if !delta < outer_tolerance || k >= max_outer_iterations then
      (solved, inputs, k, !delta < outer_tolerance)
    else begin
      let mixed =
        Array.mapi (fun i x -> (damping *. x) +. ((1. -. damping) *. dist.(i))) solved
      in
      iterate mixed (k + 1)
    end
  in
  let joint, _, outer_iterations, converged = iterate initial 1 in
  (* Recompute inputs at the fixed point for reporting. *)
  let inputs = inputs_of_distribution space joint in
  let outdegree, indegree = marginals space joint in
  {
    params;
    states = space.states;
    joint;
    outdegree;
    indegree;
    inputs;
    duplication_probability = duplication_probability_of space joint;
    deletion_probability = (1. -. params.loss) *. inputs.p_full;
    outer_iterations;
    converged;
  }

(* Pearson correlation between outdegree and indegree under the joint
   stationary distribution.  With no loss and conserved sum degree the two
   are perfectly anti-correlated (d + 2 din constant); loss decouples them —
   the reason the paper needs a two-dimensional chain at all. *)
let degree_correlation result =
  let ed = ref 0. and ein = ref 0. in
  Array.iteri
    (fun i (d, din) ->
      let w = result.joint.(i) in
      ed := !ed +. (w *. float_of_int d);
      ein := !ein +. (w *. float_of_int din))
    result.states;
  let cov = ref 0. and vd = ref 0. and vin = ref 0. in
  Array.iteri
    (fun i (d, din) ->
      let w = result.joint.(i) in
      let xd = float_of_int d -. !ed and xin = float_of_int din -. !ein in
      cov := !cov +. (w *. xd *. xin);
      vd := !vd +. (w *. xd *. xd);
      vin := !vin +. (w *. xin *. xin))
    result.states;
  if !vd <= 0. || !vin <= 0. then 0. else !cov /. sqrt (!vd *. !vin)

(* Export the fixed-point chain as a generic [Sf_markov.Chain.t] so the
   mixing diagnostics can run on it. *)
let to_chain result =
  let space = build_state_space result.params in
  let chain = build_chain space result.inputs in
  Sf_markov.Chain.of_rows ~size:space.count (fun i ->
      let cells = ref [ (i, chain.self.(i)) ] in
      for k = chain.offsets.(i) to chain.offsets.(i + 1) - 1 do
        if chain.probs.(k) > 0. then cells := (chain.targets.(k), chain.probs.(k)) :: !cells
      done;
      !cells)

(* Restrict the outdegree marginal to its even support (the odd slots carry
   zero mass; removing them makes TVD comparisons against the analytic
   distribution meaningful). *)
let even_outdegree result =
  Sf_stats.Pmf.condition result.outdegree (fun d -> d mod 2 = 0)
