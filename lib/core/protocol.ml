(* Send & Forget (S&F), Figure 5.1 of the paper.

   An *action* is split into two *steps*, each atomic at one node:

   - [initiate] at u: select two distinct view slots uniformly at random; if
     either is empty nothing happens (a self-loop transformation).
     Otherwise, with v and w the ids in the slots, send the message [u, w]
     to v, then clear both slots unless d(u) has reached the lower threshold
     [dL], in which case the entries are *duplicated* (kept).
   - [receive] at v: place both received ids into uniformly chosen empty
     slots, unless the view is full, in which case both are *deleted*.

   The sender never learns whether its message arrived: loss sits between
   the two steps, exactly as in the paper's non-atomic action model. *)

type config = {
  view_size : int;        (* s: number of view slots, even, >= 6 *)
  lower_threshold : int;  (* dL: outdegree at/below which sends duplicate *)
}

let make_config ~view_size ~lower_threshold =
  if view_size < 6 then invalid_arg "Protocol.make_config: view size must be >= 6";
  if view_size mod 2 <> 0 then invalid_arg "Protocol.make_config: view size must be even";
  if lower_threshold < 0 || lower_threshold > view_size - 6 then
    invalid_arg "Protocol.make_config: need 0 <= dL <= s - 6";
  if lower_threshold mod 2 <> 0 then
    invalid_arg "Protocol.make_config: dL must be even";
  { view_size; lower_threshold }

type message = {
  reinforcement : View.entry;  (* the sender's own id, [u] in [u, w] *)
  mixing : View.entry;         (* the forwarded id, [w] in [u, w] *)
}

(* Bound on the per-node cache of previously seen ids (used only by the
   reconnection path of section 5, never by regular protocol actions). *)
let seen_cache_capacity = 32

type node = {
  node_id : int;
  view : View.t;
  mutable initiated_actions : int;
  mutable self_loop_actions : int;
  mutable messages_sent : int;
  mutable duplications : int;
  mutable messages_received : int;
  mutable deletions : int;
  (* Recently received ids, newest first, deduplicated and bounded.  The
     paper's joining rule lets a reconnecting node probe "previously seen
     ids"; this cache is that memory. *)
  mutable seen_ids : int list;
}

let create_node ~config ~node_id =
  {
    node_id;
    view = View.create config.view_size;
    initiated_actions = 0;
    self_loop_actions = 0;
    messages_sent = 0;
    duplications = 0;
    messages_received = 0;
    deletions = 0;
    seen_ids = [];
  }

let remember_seen node id =
  if id <> node.node_id then begin
    let rest = List.filter (fun x -> x <> id) node.seen_ids in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    node.seen_ids <- id :: take (seen_cache_capacity - 1) rest
  end

let degree node = View.degree node.view

type initiate_result =
  | Self_loop                      (* an empty slot was selected; no effect *)
  | Send of { destination : int; message : message; duplicated : bool }

(* The initiate step.  [fresh_serial] mints instance numbers; [clock] stamps
   creation times. *)
let initiate config rng ~fresh_serial ~clock node =
  node.initiated_actions <- node.initiated_actions + 1;
  (* Slot selection ranges over the *allocated* view, not the configured
     view size: the two coincide at creation, but adaptive retuning
     (lib/resilience) can lower a node's effective s below its allocated
     capacity, and entries parked in high slots must stay reachable. *)
  let i, j = Sf_prng.Rng.distinct_pair rng (View.size node.view) in
  match (View.get node.view i, View.get node.view j) with
  | None, _ | _, None ->
    node.self_loop_actions <- node.self_loop_actions + 1;
    Self_loop
  | Some target_entry, Some forwarded_entry ->
    let duplicated = degree node <= config.lower_threshold in
    if not duplicated then begin
      View.clear node.view i;
      View.clear node.view j
    end
    else node.duplications <- node.duplications + 1;
    (* Reinforcement instance: always a brand-new, independent instance of
       the sender's own id. *)
    let reinforcement =
      { View.id = node.node_id; serial = fresh_serial (); anchor = None; born = clock }
    in
    (* Mixing instance: moves (same serial) when the slots were cleared;
       when duplicated, the receiver gets a fresh copy anchored at the
       sender, whose own copy stays behind — this is exactly the spatial
       dependence the paper's edge labelling charges to duplication. *)
    let mixing =
      if duplicated then
        {
          View.id = forwarded_entry.View.id;
          serial = fresh_serial ();
          anchor = Some node.node_id;
          born = clock;
        }
      else
        (* Forwarded without duplication: the dependence MC (Fig 7.1)
           transitions the instance to the independent state. *)
        { forwarded_entry with View.anchor = None }
    in
    let reinforcement =
      if duplicated then { reinforcement with View.anchor = Some node.node_id }
      else reinforcement
    in
    node.messages_sent <- node.messages_sent + 1;
    Send { destination = target_entry.View.id; message = { reinforcement; mixing }; duplicated }

type receive_result = Accepted | Deleted

(* The receive step. *)
let receive config rng node message =
  node.messages_received <- node.messages_received + 1;
  remember_seen node message.reinforcement.View.id;
  remember_seen node message.mixing.View.id;
  if View.free_slots node.view >= 2 && degree node < config.view_size then begin
    (match View.random_empty_slot node.view rng with
    | Some slot -> View.set node.view slot message.reinforcement
    | None -> assert false);
    (match View.random_empty_slot node.view rng with
    | Some slot -> View.set node.view slot message.mixing
    | None -> assert false);
    Accepted
  end
  else begin
    node.deletions <- node.deletions + 1;
    Deleted
  end

(* Observation 5.1: outdegree stays within [dL, s] (starting states included)
   and even. *)
let invariant_holds config node =
  let d = degree node in
  d mod 2 = 0 && d >= 0 && d <= config.view_size
