(** Online loss estimation by inverting the Lemma 6.6 rate balance.

    In a steady S&F system the per-send rates satisfy
    [duplication = loss + deletion] (paper, Lemma 6.6).  Duplications and
    deletions are locally observable protocol events while loss is not, so

      [loss ~= duplications/sends - deletions/sends]

    estimates the effective loss rate — chance drops, burst drops and
    partition drops alike — from signals a deployed node already has.
    Windowed, EWMA-smoothed, allocation-free and randomness-free.

    {2 Churn correction}

    The bare inversion assumes every edge enters and leaves the overlay
    through a send.  Churn breaks that: join/rebootstrap bootstraps
    install edges out of band, leaves clear whole views, and sends to
    departed slots vanish producing neither a duplication nor a
    deletion, so the bare estimate is biased (it read low in the PR 8
    chaos runs).  Classifying each send as exactly one of {lost,
    to-dead, deleted, accepted}, the round-granular edge conservation
    ledger of the sharded engine reads, exactly,

      [delta_edges = 2 dup - 2 (lost + to_dead + del) + added - removed]

    and solving for the loss rate yields

      [loss ~= (dup - del - to_dead
                + (added - removed - delta_edges)/2) / sends]

    where [delta_edges] — the change in the total edge count over the
    window, a sum of locally observable view-size changes — absorbs the
    warm-up and fault transients that break the steady-state
    [delta_edges = 0] assumption.  Feed the ledger deltas through
    {!observe}'s optional arguments to apply the correction; omitting
    them reproduces the bare inversion exactly, so scenario-free callers
    are bit-for-bit unchanged. *)

type t

val create : ?window:int -> ?smoothing:float -> unit -> t
(** [window] is the number of sends per estimation window (default 2000);
    [smoothing] the EWMA weight of each fresh window in (0, 1] (default
    0.3).  The first completed window initializes the estimate directly. *)

val observe :
  t ->
  ?to_dead:int ->
  ?churn_edges_added:int ->
  ?churn_edges_removed:int ->
  ?edge_delta:int ->
  sends:int ->
  duplications:int ->
  deletions:int ->
  unit ->
  unit
(** Feed counter {e deltas} since the previous call.  Whenever a full
    window of sends completes, its inverted rate — clamped into [0, 0.99]
    — folds into the smoothed estimate; a large delta can complete several
    windows.  Raises [Invalid_argument] on negative deltas.

    [to_dead] is the count of sends delivered to departed slots,
    [churn_edges_added]/[churn_edges_removed] the out-of-band edge flux of
    joins, leaves and rebootstraps (the sharded engine's ledger terms), and
    [edge_delta] the signed change in the total edge count over the delta —
    the only argument allowed to be negative.  All four default to [0],
    reproducing the bare Lemma 6.6 inversion. *)

val estimate : t -> float
(** The current smoothed loss estimate in [0, 0.99]; [0.] before the
    first window completes (see {!confident}). *)

val confident : t -> bool
(** At least one full window has been folded. *)

val windows : t -> int
(** Completed windows so far. *)

val window : t -> int
(** The configured window length in sends. *)
