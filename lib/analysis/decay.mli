(** Join/leave dynamics bounds (paper, section 6.5). *)

type params = {
  loss : float;
  delta : float;
  lower_threshold : int;
  view_size : int;
}

val make_params :
  loss:float -> delta:float -> lower_threshold:int -> view_size:int -> params

val per_round_survival : params -> float
(** 1 - (1 - loss - delta) dL / s^2 (Lemma 6.9). *)

val survival_bound : params -> rounds:int -> float
(** Upper bound on one id instance surviving [rounds] rounds
    (Lemma 6.10). *)

val survival_curve : params -> rounds:int -> float array
(** The Figure 6.4 curve: bounds at rounds 0..rounds. *)

val rounds_to_fraction : params -> fraction:float -> int
(** Rounds until the survival bound drops below [fraction] (the paper's
    "fewer than 50% after 70 rounds" observation uses fraction = 0.5). *)

val veteran_creation_rate : params -> expected_indegree:float -> float
(** Lemma 6.11 lower bound on new-instance creation per round. *)

val joiner_creation_rate : params -> expected_indegree:float -> float
(** Lemma 6.12: the veteran rate scaled by (dL/s)^2. *)

val joiner_integration_rounds : params -> int
(** Lemma 6.13 round bound s^2 / ((1 - loss - delta) dL). *)

val joiner_integration_instances : params -> expected_indegree:float -> float
(** Lemma 6.13 instance bound (dL/s)^2 * Din. *)

val corollary_6_14 : params -> expected_indegree:float -> int * float
(** (rounds, instances) — for s = 2 dL, about (2s, Din/4). *)
