(* Wire codec for S&F messages.

   An S&F message is two id instances (the sender's reinforcement id and
   the forwarded mixing id); fire-and-forget datagrams match the protocol's
   semantics exactly — no retransmission, no acknowledgement, loss allowed.

   Layout (little-endian, 66 bytes):
     offset 0   magic        0xF5
     offset 1   version      1
     offset 2   reinforcement.id      int64
     offset 10  reinforcement.serial  int64
     offset 18  reinforcement.anchor  int64 (-1 encodes None)
     offset 26  reinforcement.born    int64
     offset 34  mixing.id             int64
     offset 42  mixing.serial         int64
     offset 50  mixing.anchor         int64 (-1 encodes None)
     offset 58  mixing.born           int64 *)

let magic = '\xf5'
let version = '\x01'
let message_size = 66

(* One byte of headroom: POSIX recvfrom silently truncates a UDP payload to
   the buffer, so a buffer of exactly [message_size] cannot distinguish a
   valid datagram from the prefix of an oversized one.  With the extra byte,
   [length > message_size] identifies foreign/oversized traffic. *)
let recv_buffer_size = message_size + 1

type error =
  | Too_short of int
  | Bad_magic of char
  | Unsupported_version of char

let pp_error ppf = function
  | Too_short n -> Fmt.pf ppf "datagram too short (%d bytes)" n
  | Bad_magic c -> Fmt.pf ppf "bad magic byte 0x%02x" (Char.code c)
  | Unsupported_version c -> Fmt.pf ppf "unsupported version %d" (Char.code c)

let write_entry buffer ~offset (e : Sf_core.View.entry) =
  Bytes.set_int64_le buffer offset (Int64.of_int e.Sf_core.View.id);
  Bytes.set_int64_le buffer (offset + 8) (Int64.of_int e.Sf_core.View.serial);
  Bytes.set_int64_le buffer (offset + 16)
    (match e.Sf_core.View.anchor with
    | None -> -1L
    | Some a -> Int64.of_int a);
  Bytes.set_int64_le buffer (offset + 24) (Int64.of_int e.Sf_core.View.born)

let read_entry buffer ~offset =
  let id = Int64.to_int (Bytes.get_int64_le buffer offset) in
  let serial = Int64.to_int (Bytes.get_int64_le buffer (offset + 8)) in
  let anchor =
    match Bytes.get_int64_le buffer (offset + 16) with
    | -1L -> None
    | a -> Some (Int64.to_int a)
  in
  let born = Int64.to_int (Bytes.get_int64_le buffer (offset + 24)) in
  { Sf_core.View.id; serial; anchor; born }

let encode (message : Sf_core.Protocol.message) =
  let buffer = Bytes.create message_size in
  Bytes.set buffer 0 magic;
  Bytes.set buffer 1 version;
  write_entry buffer ~offset:2 message.Sf_core.Protocol.reinforcement;
  write_entry buffer ~offset:34 message.Sf_core.Protocol.mixing;
  buffer

let decode buffer ~length =
  if length < message_size then Error (Too_short length)
  else if Bytes.get buffer 0 <> magic then Error (Bad_magic (Bytes.get buffer 0))
  else if Bytes.get buffer 1 <> version then
    Error (Unsupported_version (Bytes.get buffer 1))
  else
    Ok
      {
        Sf_core.Protocol.reinforcement = read_entry buffer ~offset:2;
        mixing = read_entry buffer ~offset:34;
      }
