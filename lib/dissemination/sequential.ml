(* The sequential spreading engine: rumor rounds interleaved with the
   orchestrated runner's membership rounds.

   Each spreading round first advances the membership one round
   ([Runner.run_rounds runner 1] — the views the rumor reads are the
   live, evolving ones), then executes one synchronous spreading step of
   the chosen strategy.  Every spread message runs the same verdict
   pipeline as the membership traffic — crash window on the destination,
   partition window, then the loss process — but against the {e caller's}
   RNG and a private loss-chain instance, so spreading never perturbs the
   membership stream.  Crash/partition windows are read from the runner's
   shared injector (pure window queries, no randomness), so a rumor and
   the membership see the same faults.

   Determinism contract: the Push path reproduces the draw order of the
   historical [Dissemination.spread] exactly (same infected-table
   construction, one [sample_many] per informed node, one loss draw per
   push), so the compat shim replays it byte-for-byte on scenario-free
   runners. *)

module Runner = Sf_core.Runner
module Sampling = Sf_core.Sampling
module Protocol = Sf_core.Protocol
module Loss = Sf_faults.Loss
module Injector = Sf_faults.Injector

type counters = {
  mutable messages : int;
  mutable pushes : int;
  mutable requests : int;
  mutable duplicates : int;
  mutable lost : int;
  mutable to_dead : int;
}

(* Direct-strategy per-node learning state (see {!Rings}). *)
type rings = {
  leads : int array;
  mutable lead_head : int;
  mutable lead_len : int;
  recent : int array;
  mutable recent_head : int;
  mutable recent_len : int;
}

let make_rings () =
  {
    leads = Array.make Strategy.lead_capacity (-1);
    lead_head = 0;
    lead_len = 0;
    recent = Array.make Strategy.recent_capacity (-1);
    recent_head = 0;
    recent_len = 0;
  }

let recent_mem st v =
  Rings.mem st.recent ~off:0 ~cap:Strategy.recent_capacity ~head:st.recent_head
    ~len:st.recent_len v

let recent_add st v =
  if not (recent_mem st v) then begin
    let head, len =
      Rings.add st.recent ~off:0 ~cap:Strategy.recent_capacity
        ~head:st.recent_head ~len:st.recent_len v
    in
    st.recent_head <- head;
    st.recent_len <- len
  end

let lead_mem st v =
  Rings.mem st.leads ~off:0 ~cap:Strategy.lead_capacity ~head:st.lead_head
    ~len:st.lead_len v

let lead_push st v =
  if not (lead_mem st v) && not (recent_mem st v) then begin
    let head, len =
      Rings.add st.leads ~off:0 ~cap:Strategy.lead_capacity ~head:st.lead_head
        ~len:st.lead_len v
    in
    st.lead_head <- head;
    st.lead_len <- len
  end

let lead_pop st =
  let v, head, len =
    Rings.pop st.leads ~off:0 ~cap:Strategy.lead_capacity ~head:st.lead_head
      ~len:st.lead_len
  in
  st.lead_head <- head;
  st.lead_len <- len;
  v

let run ?(coverage_target = 0.99) ?(max_rounds = 200) ?loss_rate ?loss_model
    ?metrics ~strategy ~fanout ~source runner rng =
  if fanout < 1 then
    invalid_arg "Sf_spread.Sequential.run: fanout must be positive";
  if coverage_target <= 0. || coverage_target > 1. then
    invalid_arg "Sf_spread.Sequential.run: coverage_target must lie in (0, 1]";
  let chance =
    match loss_rate with Some p -> p | None -> Runner.loss_rate runner
  in
  let model =
    match loss_model with
    | Some m -> m
    | None -> (
      match Runner.injector runner with
      | Some inj -> (Injector.scenario inj).Sf_faults.Scenario.loss
      | None -> Loss.Iid)
  in
  let loss = Loss.create model in
  let m = match metrics with Some m -> m | None -> Sf_obs.Metrics.create () in
  let c_messages = Sf_obs.Metrics.counter m "spread_messages" in
  let c_pushes = Sf_obs.Metrics.counter m "spread_pushes" in
  let c_requests = Sf_obs.Metrics.counter m "spread_requests" in
  let c_duplicates = Sf_obs.Metrics.counter m "spread_duplicates" in
  let c_lost = Sf_obs.Metrics.counter m "spread_lost" in
  let c_to_dead = Sf_obs.Metrics.counter m "spread_to_dead" in
  let g_coverage = Sf_obs.Metrics.gauge m "spread_coverage" in
  let cnt =
    { messages = 0; pushes = 0; requests = 0; duplicates = 0; lost = 0;
      to_dead = 0 }
  in
  let crashed id = Runner.is_crashed runner id in
  let partitioned ~src ~dst =
    match Runner.injector runner with
    | None -> false
    | Some inj -> Injector.partitioned inj ~src ~dst
  in
  (* The per-message verdict: crash window on the destination, partition,
     then the loss process — the injector's order, minus corruption (the
     rumor never leaves memory).  Crashed {e sources} are excluded at the
     initiation sites.  Only the loss step draws randomness, and under
     [Iid] it is exactly one Bernoulli draw per message — the contract
     the compat shim's byte-identity rests on. *)
  let judge ~src ~dst =
    cnt.messages <- cnt.messages + 1;
    if crashed dst then begin
      cnt.lost <- cnt.lost + 1;
      false
    end
    else if partitioned ~src ~dst then begin
      cnt.lost <- cnt.lost + 1;
      false
    end
    else if Loss.drop loss rng ~chance ~src ~dst then begin
      cnt.lost <- cnt.lost + 1;
      false
    end
    else true
  in
  (* Same initial table shape and insertion sequence as the historical
     spread, so the fold order — hence the whole replay — matches. *)
  let infected = Hashtbl.create 1024 in
  Hashtbl.replace infected source ();
  let learned = Hashtbl.create 64 in
  let state id =
    match Hashtbl.find_opt learned id with
    | Some st -> st
    | None ->
      let st = make_rings () in
      Hashtbl.replace learned id st;
      st
  in
  (if strategy = Strategy.Direct then ignore (state source));
  let deliver_rumor ~src ~carried dst =
    match Runner.find_node runner dst with
    | None -> cnt.to_dead <- cnt.to_dead + 1
    | Some _ ->
      if Hashtbl.mem infected dst then cnt.duplicates <- cnt.duplicates + 1
      else Hashtbl.replace infected dst ();
      if strategy = Strategy.Direct then begin
        let st = state dst in
        (* The sender is informed: never contact it back. *)
        recent_add st src;
        if carried >= 0 && carried <> dst then lead_push st carried
      end
  in
  let snapshot () = Hashtbl.fold (fun id () acc -> id :: acc) infected [] in
  let push_from u =
    match Runner.find_node runner u with
    | None -> () (* informed node left *)
    | Some node ->
      let targets =
        Sampling.sample_many runner rng ~node_id:node.Protocol.node_id
          ~k:fanout
      in
      List.iter
        (fun dst ->
          cnt.pushes <- cnt.pushes + 1;
          if judge ~src:u ~dst then deliver_rumor ~src:u ~carried:(-1) dst)
        targets
  in
  let push_round () =
    List.iter (fun u -> if not (crashed u) then push_from u) (snapshot ())
  in
  let push_pull_round () =
    (* Infection status is classified against a round-start snapshot, so
       a node informed this round starts pulling/pushing next round —
       the synchronous schedule of the push-pull analyses. *)
    let informed = Hashtbl.copy infected in
    Array.iter
      (fun node ->
        let u = node.Protocol.node_id in
        if not (crashed u) then
          if Hashtbl.mem informed u then push_from u
          else
            let targets = Sampling.sample_many runner rng ~node_id:u ~k:fanout in
            List.iter
              (fun dst ->
                cnt.requests <- cnt.requests + 1;
                if judge ~src:u ~dst then
                  match Runner.find_node runner dst with
                  | None -> cnt.to_dead <- cnt.to_dead + 1
                  | Some _ ->
                    if Hashtbl.mem informed dst then begin
                      (* The responder answers with the rumor; the
                         response runs the verdict pipeline too. *)
                      cnt.pushes <- cnt.pushes + 1;
                      if judge ~src:dst ~dst:u then
                        deliver_rumor ~src:dst ~carried:(-1) u
                    end)
              targets)
      (Runner.live_nodes runner)
  in
  let direct_send u dst =
    (* Rumor messages carry one freshly sampled view address; receivers
       absorb it as a lead, letting the frontier outrun the views. *)
    let carried =
      match Sampling.sample runner rng ~node_id:u with
      | Some c when c <> dst -> c
      | _ -> -1
    in
    cnt.pushes <- cnt.pushes + 1;
    if judge ~src:u ~dst then deliver_rumor ~src:u ~carried dst
  in
  let direct_from u =
    match Runner.find_node runner u with
    | None -> ()
    | Some _ ->
      let st = state u in
      let budget = ref fanout in
      (* Learned addresses first: direct contacts, possibly outside the
         current view.  Stale leads (already contacted) cost no budget. *)
      let exhausted = ref false in
      while !budget > 0 && not !exhausted do
        let v = lead_pop st in
        if v < 0 then exhausted := true
        else if v <> u && not (recent_mem st v) then begin
          recent_add st v;
          direct_send u v;
          decr budget
        end
      done;
      (* Fill the remainder from the live view; an attempt landing on a
         recently contacted peer is throttled (consumes the attempt). *)
      for _ = 1 to !budget do
        match Sampling.sample runner rng ~node_id:u with
        | None -> ()
        | Some v ->
          if not (recent_mem st v) then begin
            recent_add st v;
            direct_send u v
          end
      done
  in
  let direct_round () =
    List.iter (fun u -> if not (crashed u) then direct_from u) (snapshot ())
  in
  (* Live coverage: informed live nodes over reachable (live, un-crashed)
     nodes.  Nodes that left no longer count in the numerator; crashed
     nodes are unreachable for the duration of their window, so they do
     not dilute the denominator. *)
  let live_fraction () =
    let live = Runner.live_nodes runner in
    let num = ref 0 and denom = ref 0 in
    Array.iter
      (fun node ->
        let id = node.Protocol.node_id in
        if Hashtbl.mem infected id then incr num;
        if not (crashed id) then incr denom)
      live;
    Float.min 1. (float_of_int !num /. float_of_int (max 1 !denom))
  in
  let coverage = ref [] in
  let rounds_to_half = ref None and rounds_to_target = ref None in
  let round = ref 0 in
  while !rounds_to_target = None && !round < max_rounds do
    incr round;
    (* The membership keeps evolving underneath. *)
    Runner.run_rounds runner 1;
    (match strategy with
    | Strategy.Push -> push_round ()
    | Strategy.Push_pull -> push_pull_round ()
    | Strategy.Direct -> direct_round ());
    let f = live_fraction () in
    coverage := f :: !coverage;
    Sf_obs.Metrics.set g_coverage f;
    if !rounds_to_half = None && f >= 0.5 then rounds_to_half := Some !round;
    if f >= coverage_target then rounds_to_target := Some !round
  done;
  Sf_obs.Metrics.add c_messages cnt.messages;
  Sf_obs.Metrics.add c_pushes cnt.pushes;
  Sf_obs.Metrics.add c_requests cnt.requests;
  Sf_obs.Metrics.add c_duplicates cnt.duplicates;
  Sf_obs.Metrics.add c_lost cnt.lost;
  Sf_obs.Metrics.add c_to_dead cnt.to_dead;
  {
    Report.strategy;
    fanout;
    rounds = !round;
    rounds_to_half = !rounds_to_half;
    rounds_to_target = !rounds_to_target;
    coverage = Array.of_list (List.rev !coverage);
    messages = cnt.messages;
    pushes = cnt.pushes;
    requests = cnt.requests;
    duplicates = cnt.duplicates;
    lost = cnt.lost;
    to_dead = cnt.to_dead;
  }
