(** Online loss estimation by inverting the Lemma 6.6 rate balance.

    In a steady S&F system the per-send rates satisfy
    [duplication = loss + deletion] (paper, Lemma 6.6).  Duplications and
    deletions are locally observable protocol events while loss is not, so

      [loss ~= duplications/sends - deletions/sends]

    estimates the effective loss rate — chance drops, burst drops and
    partition drops alike — from signals a deployed node already has.
    Windowed, EWMA-smoothed, allocation-free and randomness-free. *)

type t

val create : ?window:int -> ?smoothing:float -> unit -> t
(** [window] is the number of sends per estimation window (default 2000);
    [smoothing] the EWMA weight of each fresh window in (0, 1] (default
    0.3).  The first completed window initializes the estimate directly. *)

val observe : t -> sends:int -> duplications:int -> deletions:int -> unit
(** Feed counter {e deltas} since the previous call.  Whenever a full
    window of sends completes, its inverted rate — clamped into [0, 0.99]
    — folds into the smoothed estimate; a large delta can complete several
    windows.  Raises [Invalid_argument] on negative deltas. *)

val estimate : t -> float
(** The current smoothed loss estimate in [0, 0.99]; [0.] before the
    first window completes (see {!confident}). *)

val confident : t -> bool
(** At least one full window has been folded. *)

val windows : t -> int
(** Completed windows so far. *)

val window : t -> int
(** The configured window length in sends. *)
