(* Baseline contrast (paper, section 3.1) and the random-walk objection. *)

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Baselines = Sf_core.Baselines
module Census = Sf_core.Census
module Random_walk = Sf_core.Random_walk

let table_baselines () =
  Output.section "B1" "Protocol comparison under loss (section 3.1 taxonomy)";
  Fmt.pr
    "n=500, s=40, 400 rounds, loss=5%%.  Shuffle deletes sent ids (no@\n\
     dependence but bleeds edges under loss); push-pull keeps them (loss@\n\
     immune but dependence accumulates); S&F deletes-and-compensates.@.";
  let n = 500 and view_size = 40 and loss = 0.05 and rounds = 400 in
  let topology seed = Topology.regular (Sf_prng.Rng.create seed) ~n ~out_degree:20 in
  let initial_edges = n * 20 in
  (* S&F *)
  let config = Protocol.make_config ~view_size ~lower_threshold:18 in
  let sf = Runner.create ~seed:11 ~n ~loss_rate:loss ~config ~topology:(topology 1) () in
  Runner.run_rounds sf rounds;
  let sf_edges = Sf_graph.Digraph.edge_count (Runner.membership_graph sf) in
  let sf_census = Properties.independence_census sf in
  let sf_connected = Properties.is_weakly_connected sf in
  (* Baselines *)
  let run kind seed =
    let b = Baselines.create ~seed ~n ~view_size ~loss_rate:loss ~kind ~topology:(topology seed) in
    Baselines.run_rounds b rounds;
    (Baselines.total_instances b, Baselines.independence_census b, Baselines.is_weakly_connected b)
  in
  let sh_edges, sh_census, sh_conn = run (Baselines.Shuffle { exchange_size = 4 }) 2 in
  let pp_edges, pp_census, pp_conn = run (Baselines.Push_pull { gossip_size = 3 }) 3 in
  let po_edges, po_census, po_conn = run Baselines.Push_only 4 in
  let row name edges census connected =
    [
      name;
      Output.i initial_edges;
      Output.i edges;
      Output.f3 census.Census.alpha;
      string_of_bool connected;
    ]
  in
  Output.table
    [ "protocol"; "edges t=0"; "edges t=400r"; "alpha"; "connected" ]
    [
      row "send & forget" sf_edges sf_census sf_connected;
      row "shuffle (delete-on-send)" sh_edges sh_census sh_conn;
      row "push-pull (keep-on-send)" pp_edges pp_census pp_conn;
      row "push-only (reinforce)" po_edges po_census po_conn;
    ];
  Output.check "S&F retains its edges and stays connected"
    (sf_edges > initial_edges / 2 && sf_connected);
  Output.check "shuffle bleeds most of its edges under loss (section 3.1)"
    (sh_edges < initial_edges / 2);
  Output.check "push-pull keeps edges but collapses independence"
    (pp_edges >= initial_edges && pp_census.Census.alpha < 0.5);
  Output.check "S&F keeps high independence where push-pull does not"
    (sf_census.Census.alpha > pp_census.Census.alpha +. 0.3)

let table_random_walk () =
  Output.section "B2" "Random-walk sampling under loss (section 3.1 objection)";
  Fmt.pr
    "Walks over a converged S&F membership graph with per-hop loss.  The@\n\
     success probability decays exponentially with walk length, while each@\n\
     S&F action needs a single message.@.";
  let config = Protocol.make_config ~view_size:40 ~lower_threshold:18 in
  let topology = Topology.regular (Sf_prng.Rng.create 21) ~n:500 ~out_degree:20 in
  let r = Runner.create ~seed:22 ~n:500 ~loss_rate:0.05 ~config ~topology () in
  Runner.run_rounds r 200;
  let rng = Sf_prng.Rng.create 23 in
  let rows =
    List.map
      (fun length ->
        let stats =
          Random_walk.sample_statistics r rng ~attempts:5000 ~length ~loss_rate:0.05
        in
        let theory = Random_walk.success_probability ~length ~loss_rate:0.05 in
        (length, stats.Random_walk.success_rate, theory))
      [ 1; 2; 5; 10; 20; 40 ]
  in
  Output.table
    [ "walk length"; "measured success"; "(1-loss)^len" ]
    (List.map
       (fun (l, m, t) -> [ Output.i l; Output.f3 m; Output.f3 t ])
       rows);
  Output.check "success probability decays exponentially with length"
    (List.for_all (fun (_, m, t) -> Float.abs (m -. t) < 0.03) rows)
