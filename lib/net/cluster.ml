(* A real deployment of S&F over UDP: every node owns a datagram socket
   bound to 127.0.0.1 on its own port, messages travel as actual datagrams,
   and nodes initiate on jittered periodic timers — the "practical
   implementation" the paper sketches in section 5, running on a real
   network stack instead of the discrete-event simulator.

   The driver multiplexes all node sockets in one process with
   [Unix.select]: wait for readable sockets or the next timer, drain
   datagrams (sockets are non-blocking), decode and run the receive step,
   then run the initiate steps that have come due.  Send-side loss
   injection keeps loss experiments controlled even though loopback UDP
   rarely drops on its own.

   Fire-and-forget UDP matches S&F's assumptions exactly: no connection
   state, no retransmission, the sender never learns whether the message
   arrived. *)

type node_state = {
  node : Sf_core.Protocol.node;
  socket : Unix.file_descr;
  mutable next_fire : float;
}

type t = {
  config : Sf_core.Protocol.config;
  base_port : int;
  period : float;
  loss_rate : float;
  (* Injected clock: tests drive virtual time; production uses the wall
     clock.  The only wall-clock dependence in the whole tree sits in this
     default. *)
  now : unit -> float;
  rng : Sf_prng.Rng.t;
  nodes : node_state array;
  read_buffer : bytes;
  mutable next_serial : int;
  mutable actions : int;
  mutable datagrams_sent : int;
  mutable datagrams_dropped : int;  (* injected loss *)
  mutable datagrams_received : int;
  mutable decode_errors : int;
  mutable send_errors : int;
}

let address_of t node_id =
  Unix.ADDR_INET (Unix.inet_addr_loopback, t.base_port + node_id)

let fresh_serial t =
  let s = t.next_serial in
  t.next_serial <- s + 1;
  s

let create ?(period = 0.01) ?(now = Unix.gettimeofday) ~base_port ~n ~config
    ~loss_rate ~seed ~topology () =
  if n <= 0 then invalid_arg "Cluster.create: need at least one node";
  if base_port < 1024 || base_port + n > 65_535 then
    invalid_arg "Cluster.create: port range out of bounds";
  let rng = Sf_prng.Rng.create seed in
  let t =
    {
      config;
      base_port;
      period;
      loss_rate;
      now;
      rng;
      nodes = [||];
      read_buffer = Bytes.create 512;
      next_serial = 0;
      actions = 0;
      datagrams_sent = 0;
      datagrams_dropped = 0;
      datagrams_received = 0;
      decode_errors = 0;
      send_errors = 0;
    }
  in
  let start = t.now () in
  let make_node node_id =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.set_nonblock socket;
    Unix.setsockopt socket Unix.SO_REUSEADDR true;
    (try Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + node_id))
     with e ->
       Unix.close socket;
       raise e);
    let node = Sf_core.Protocol.create_node ~config ~node_id in
    List.iter
      (fun v ->
        match Sf_core.View.random_empty_slot node.Sf_core.Protocol.view rng with
        | None -> invalid_arg "Cluster.create: topology exceeds view size"
        | Some slot ->
          Sf_core.View.set node.Sf_core.Protocol.view slot
            { Sf_core.View.id = v; serial = fresh_serial t; anchor = None; born = 0 })
      (topology node_id);
    {
      node;
      socket;
      (* Stagger first firings across one period. *)
      next_fire = start +. (period *. Sf_prng.Rng.float rng);
    }
  in
  let nodes = Array.init n make_node in
  { t with nodes }

let node_count t = Array.length t.nodes

let shutdown t =
  Array.iter
    (fun ns -> try Unix.close ns.socket with Unix.Unix_error _ -> ())
    t.nodes

(* One initiate step at [ns]; the message goes out as a datagram unless the
   injected loss eats it. *)
let fire t ns =
  t.actions <- t.actions + 1;
  match
    Sf_core.Protocol.initiate t.config t.rng ~fresh_serial:(fun () -> fresh_serial t)
      ~clock:t.actions ns.node
  with
  | Sf_core.Protocol.Self_loop -> ()
  | Sf_core.Protocol.Send { destination; message; _ } ->
    t.datagrams_sent <- t.datagrams_sent + 1;
    if Sf_prng.Rng.bernoulli t.rng t.loss_rate then
      t.datagrams_dropped <- t.datagrams_dropped + 1
    else if destination >= 0 && destination < Array.length t.nodes then begin
      let packet = Codec.encode message in
      try
        ignore
          (Unix.sendto ns.socket packet 0 (Bytes.length packet) []
             (address_of t destination))
      with Unix.Unix_error _ -> t.send_errors <- t.send_errors + 1
    end

(* Drain every pending datagram on a readable socket. *)
let drain t ns =
  let continue = ref true in
  while !continue do
    match Unix.recvfrom ns.socket t.read_buffer 0 (Bytes.length t.read_buffer) [] with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | length, _from ->
      t.datagrams_received <- t.datagrams_received + 1;
      (match Codec.decode t.read_buffer ~length with
      | Ok message ->
        ignore (Sf_core.Protocol.receive t.config t.rng ns.node message)
      | Error _ -> t.decode_errors <- t.decode_errors + 1)
  done

(* Run the cluster for [duration] wall-clock seconds. *)
let run t ~duration =
  let deadline = t.now () +. duration in
  let sockets = Array.to_list (Array.map (fun ns -> ns.socket) t.nodes) in
  let by_socket = Hashtbl.create (Array.length t.nodes) in
  Array.iter (fun ns -> Hashtbl.replace by_socket ns.socket ns) t.nodes;
  let rec loop () =
    let now = t.now () in
    if now >= deadline then ()
    else begin
      (* Fire all due timers, rescheduling with jitter. *)
      Array.iter
        (fun ns ->
          if ns.next_fire <= now then begin
            fire t ns;
            ns.next_fire <-
              now +. (t.period *. (0.9 +. (0.2 *. Sf_prng.Rng.float t.rng)))
          end)
        t.nodes;
      let next_timer =
        Array.fold_left (fun acc ns -> Float.min acc ns.next_fire) infinity t.nodes
      in
      let timeout = Float.max 0. (Float.min (next_timer -. now) (deadline -. now)) in
      match Unix.select sockets [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun socket ->
            match Hashtbl.find_opt by_socket socket with
            | Some ns -> drain t ns
            | None -> ())
          readable;
        loop ()
    end
  in
  loop ()

(* --- Measurement (mirrors the simulator's monitors) --- *)

let views t =
  Array.to_seq t.nodes
  |> Seq.map (fun ns -> (ns.node.Sf_core.Protocol.node_id, ns.node.Sf_core.Protocol.view))

let outdegree_summary t =
  let summary = Sf_stats.Summary.create () in
  Array.iter
    (fun ns -> Sf_stats.Summary.add_int summary (Sf_core.Protocol.degree ns.node))
    t.nodes;
  summary

let independence_census t = Sf_core.Census.of_views (views t)

let membership_graph t =
  let g = Sf_graph.Digraph.create () in
  Array.iter
    (fun ns ->
      Sf_graph.Digraph.ensure_vertex g ns.node.Sf_core.Protocol.node_id;
      Sf_core.View.iter
        (fun _ e ->
          Sf_graph.Digraph.add_edge g ns.node.Sf_core.Protocol.node_id e.Sf_core.View.id)
        ns.node.Sf_core.Protocol.view)
    t.nodes;
  g

let is_weakly_connected t = Sf_graph.Digraph.is_weakly_connected (membership_graph t)

type statistics = {
  actions : int;
  datagrams_sent : int;
  datagrams_dropped : int;
  datagrams_received : int;
  decode_errors : int;
  send_errors : int;
}

let statistics (t : t) =
  {
    actions = t.actions;
    datagrams_sent = t.datagrams_sent;
    datagrams_dropped = t.datagrams_dropped;
    datagrams_received = t.datagrams_received;
    decode_errors = t.decode_errors;
    send_errors = t.send_errors;
  }
