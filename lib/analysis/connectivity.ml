(* Connectivity conditions (paper, end of section 7.4).

   A membership graph is weakly connected (with high probability) when each
   node has at least three *independent* out-neighbors [Fenner & Frieze].
   The number of independent ids in a view is approximately binomial with
   success probability alpha over the dL guaranteed entries, so for a
   target failure probability eps the rule is: pick the minimal even dL
   with

     Pr[ Binomial(dL, alpha) <= 2 ] <= eps.

   The paper's example: loss = delta = 1% (alpha = 0.96), eps = 1e-30
   requires dL >= 26.  The tail is astronomically small, so the cdf is
   evaluated in log space. *)

let log_failure_probability ~lower_threshold ~alpha =
  Sf_stats.Binomial.log_cdf ~n:lower_threshold ~p:alpha 2

let failure_probability ~lower_threshold ~alpha =
  exp (log_failure_probability ~lower_threshold ~alpha)

(* Minimal even dL guaranteeing at least three independent out-neighbors
   with probability 1 - eps. *)
let minimal_lower_threshold ?(max_candidate = 10_000) ~alpha ~epsilon () =
  if alpha <= 0. || alpha > 1. then
    invalid_arg "Connectivity.minimal_lower_threshold: bad alpha";
  if epsilon <= 0. || epsilon >= 1. then
    invalid_arg "Connectivity.minimal_lower_threshold: bad epsilon";
  let log_eps = log epsilon in
  let rec search d =
    if d > max_candidate then None
    else if log_failure_probability ~lower_threshold:d ~alpha <= log_eps then Some d
    else search (d + 2)
  in
  search 4

(* Convenience wrapper for the paper's parametrization by loss and delta:
   alpha = 1 - 2 (loss + delta) (Lemma 7.9). *)
let minimal_lower_threshold_for_loss ?max_candidate ~loss ~delta ~epsilon () =
  let alpha = Dependence.alpha_lower_bound ~loss ~delta in
  minimal_lower_threshold ?max_candidate ~alpha ~epsilon ()
