(** Fixed-capacity id rings backing the {!Strategy.Direct} per-node
    lead/recent state, offset-addressed so both engines (per-node records
    sequentially, per-shard flat arrays at scale) share one layout and one
    set of operations.  Cells hold ids ([>= 0]) or [-1] when empty. *)

val mem : int array -> off:int -> cap:int -> head:int -> len:int -> int -> bool
(** Linear membership scan over the [len] occupied cells of the ring
    stored at [arr.(off) .. arr.(off + cap - 1)]. *)

val add : int array -> off:int -> cap:int -> head:int -> len:int -> int -> int * int
(** Append (overwriting the oldest cell when full); returns the new
    [(head, len)].  Does not deduplicate — callers check {!mem} first. *)

val pop : int array -> off:int -> cap:int -> head:int -> len:int -> int * int * int
(** Pop the oldest element; returns [(value, head, len)] with [value = -1]
    when the ring is empty. *)
