(* Temporal independence (paper, section 7.5).

   Starting from a random state distributed according to the stationary
   distribution pi, how many transformations until the membership graph is
   eps-independent of the start?  The paper bounds the *expected
   conductance* of the global MC graph and applies the standard
   conductance-to-mixing machinery:

     Phi(G) >= dE (dE - 1) alpha / (2 s (s - 1))                (Lemma 7.14)

     tau_eps <= 16 s^2 (s-1)^2 / (dE^2 (dE-1)^2 alpha^2)
                * (n s ln n + ln (4 / eps))                      (Lemma 7.15)

   For constant-size views this is O(n s log n) transformations — O(s log n)
   actions per node; for s = Theta(log n), O(log^2 n) per node. *)

type params = {
  n : int;             (* number of nodes *)
  view_size : int;     (* s *)
  expected_outdegree : float;  (* dE, from the degree MC *)
  alpha : float;       (* expected independence, >= 1 - 2(loss+delta) *)
}

let make_params ~n ~view_size ~expected_outdegree ~alpha =
  if n < 2 then invalid_arg "Temporal.make_params: need n >= 2";
  if expected_outdegree < 2. then
    invalid_arg "Temporal.make_params: dE must be at least 2";
  if alpha <= 0. || alpha > 1. then invalid_arg "Temporal.make_params: bad alpha";
  { n; view_size; expected_outdegree; alpha }

(* Lemma 7.14. *)
let expected_conductance_bound p =
  let s = float_of_int p.view_size in
  let de = p.expected_outdegree in
  de *. (de -. 1.) *. p.alpha /. (2. *. s *. (s -. 1.))

(* Lemma 7.15: bound on transformations to eps-independence. *)
let tau_epsilon p ~epsilon =
  if epsilon <= 0. || epsilon >= 1. then invalid_arg "Temporal.tau_epsilon: bad epsilon";
  let s = float_of_int p.view_size in
  let de = p.expected_outdegree in
  let n = float_of_int p.n in
  let prefactor =
    16. *. s *. s *. ((s -. 1.) ** 2.)
    /. ((de ** 2.) *. ((de -. 1.) ** 2.) *. (p.alpha ** 2.))
  in
  prefactor *. ((n *. s *. log n) +. log (4. /. epsilon))

(* Actions per node: tau / n — the O(s log n) headline. *)
let actions_per_node p ~epsilon = tau_epsilon p ~epsilon /. float_of_int p.n

(* The headline scaling itself, for table display: s log n. *)
let headline_scaling p = float_of_int p.view_size *. log (float_of_int p.n)

(* Geometric view-refresh model used to predict the empirical overlap-decay
   measurements: every action touches a node's view entries at rate ~
   dE(dE-1)/(s(s-1)) per initiation plus arrivals, so after each round a
   fraction of old instances is replaced.  This complements the worst-case
   tau_eps bound with the expected behaviour (it reuses the per-round
   survival factor of Lemma 6.9 with delta folded in). *)
let expected_overlap_after p ~survival_per_round ~rounds =
  ignore p;
  survival_per_round ** float_of_int rounds
