(* Peer-sampling service facade: the application-facing use of local views
   (paper, section 1) — applications continuously draw node-id samples for
   data dissemination, aggregation, or cache placement.  A sample is a
   uniformly random non-empty entry of the caller's current view; because
   S&F views are uniform and evolving, repeated samples approach fresh
   i.i.d. uniform ids (Properties M3-M5). *)

(* One random peer id from the node's view, excluding (by default) the node
   itself: self-samples are useless to applications.

   Allocation-free two-pass scan over the view slots: count the candidates,
   draw one index, walk to it.  This replaces a list-then-array build per
   draw — an allocation storm on the facade the traffic harness (ROADMAP
   item 5) hammers with millions of requests.  The scan walks slots from
   the highest down and the single [Rng.int] draw has the same bound as
   the old [Rng.choose] over the fold-reversed candidate list, so the RNG
   stream and the returned ids are bit-for-bit those of the historical
   implementation (asserted by an equal-seed test). *)
let sample ?(allow_self = false) runner rng ~node_id =
  match Runner.find_node runner node_id with
  | None -> None
  | Some node ->
    let view = node.Protocol.view in
    let last = View.size view - 1 in
    let candidates = ref 0 in
    for i = 0 to last do
      let id = View.id_at view i in
      if id >= 0 && (allow_self || id <> node_id) then incr candidates
    done;
    if !candidates = 0 then None
    else begin
      let skip = ref (Sf_prng.Rng.int rng !candidates) in
      let result = ref (-1) in
      let i = ref last in
      while !result < 0 do
        let id = View.id_at view !i in
        if id >= 0 && (allow_self || id <> node_id) then
          if !skip = 0 then result := id else decr skip;
        decr i
      done;
      Some !result
    end

(* [k] samples with replacement: exactly [k] independent draws.  A [None]
   draw (unknown node, or a view with no eligible id) contributes nothing
   but does not abort the remaining attempts — the historical behaviour
   returned early on the first failed draw, silently truncating the
   result below [k] with no signal. *)
let sample_many ?allow_self runner rng ~node_id ~k =
  let rec go remaining acc =
    if remaining <= 0 then acc
    else
      let acc =
        match sample ?allow_self runner rng ~node_id with
        | None -> acc
        | Some id -> id :: acc
      in
      go (remaining - 1) acc
  in
  go k []

(* Samples interleaved with protocol progress: draw one sample per node per
   [rounds_between] rounds, accumulating per-id counts over the whole
   system.  This is the workload of statistics-gathering applications, and
   the distribution of the counts measures sampling uniformity end-to-end. *)
let sampling_census runner rng ~samples_per_node ~rounds_between =
  let counts = Hashtbl.create 1024 in
  for _ = 1 to samples_per_node do
    Runner.run_rounds runner rounds_between;
    Array.iter
      (fun node ->
        match sample runner rng ~node_id:node.Protocol.node_id with
        | None -> ()
        | Some id ->
          Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
      (Runner.live_nodes runner)
  done;
  counts
