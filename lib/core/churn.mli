(** Churn experiments (paper, section 6.5): decay of departed ids and
    integration of joiners. All functions advance the runner. *)

val leave_decay : Runner.t -> ?victim:int -> rounds:int -> unit -> int * int array
(** Remove a node and track instances of its id per round; returns
    (victim id, trace with index 0 = count at departure). *)

val leave_decay_fractions : Runner.t -> repetitions:int -> rounds:int -> float array
(** Average survival fractions over several leave events — the empirical
    counterpart of the Lemma 6.10 bound (Fig 6.4). *)

type join_trace = {
  joiner : int;
  instances : int array;
  out_degrees : int array;
}

val join_integration : Runner.t -> rounds:int -> join_trace
(** Join a node bootstrapped with dL copied ids and track its id instances
    and outdegree per round (Lemmas 6.11-6.13, Corollary 6.14). *)

val run_with_churn :
  ?recover:bool -> Runner.t -> rounds:int -> joins:int -> leaves:int -> int
(** Sustained churn: per round, [leaves] departures and [joins] arrivals.
    With [recover], starved nodes reconnect via the section 5 rule each
    round; returns the number of reconnection attempts. *)

val recover_connectivity : ?max_rounds:int -> Runner.t -> (int * int) option
(** Heal a split overlay (e.g. after a partition window outlived view
    decay) with the out-of-band half of the joining rule: each round, one
    live member of every weak component except the largest rebootstraps
    from a random live donor, then one protocol round runs.  Returns
    [Some (rounds, rebootstraps)] once the membership graph is weakly
    connected again (within [max_rounds], default 50), [None] if it is
    still split. *)
