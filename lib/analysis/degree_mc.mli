(** The two-dimensional degree Markov chain of the paper's section 6.2: the
    joint evolution of one node's (outdegree, indegree) under S&F actions,
    solved to the self-consistent fixed point where the chain's transition
    probabilities match its own stationary degree distribution. *)

type weighting =
  | Size_biased
      (** senders of in-edges are weighted by outdegree and firing
          probability, receivers by indegree — the faithful model *)
  | Uniform
      (** naive unweighted model, for the ablation bench *)

type params = {
  view_size : int;
  lower_threshold : int;
  loss : float;
  sum_degree_cap : int;  (** paper's computational cap, default 3s *)
  weighting : weighting;
}

val make_params :
  ?sum_degree_cap:int ->
  ?weighting:weighting ->
  view_size:int ->
  lower_threshold:int ->
  loss:float ->
  unit ->
  params

type chain_inputs = {
  p_full : float;  (** probability a message's receiver has a full view *)
  q_dup : float;   (** probability a fired in-edge's holder duplicates *)
  r_edge : float;  (** per-in-edge firing rate *)
}

type result = {
  params : params;
  states : (int * int) array;  (** index -> (d, din) *)
  joint : float array;         (** stationary joint distribution *)
  outdegree : Sf_stats.Pmf.t;
  indegree : Sf_stats.Pmf.t;
  inputs : chain_inputs;       (** the self-consistent inputs *)
  duplication_probability : float;  (** per send (Lemmas 6.6/6.7) *)
  deletion_probability : float;     (** per send *)
  outer_iterations : int;
  converged : bool;
}

val solve :
  ?initial_state:int * int ->
  ?outer_tolerance:float ->
  ?max_outer_iterations:int ->
  ?stationary_tolerance:float ->
  params ->
  result
(** Run the fixed-point iteration. [initial_state] pins the starting
    (d, din); use (dm/3, dm/3) to reproduce the paper's uniform-sum-degree
    setting of Figure 6.1 (for loss = 0, dL = 0 the sum degree is conserved,
    so the initial state selects the analyzed invariant manifold). *)

val degree_correlation : result -> float
(** Pearson correlation of (outdegree, indegree) under the joint stationary
    distribution — strongly negative with no loss (sum-degree conservation),
    weakening as loss decouples the coordinates. *)

val to_chain : result -> Sf_markov.Chain.t
(** The fixed-point transition chain as a generic Markov chain (state order
    matches [states]), for mixing diagnostics. *)

val even_outdegree : result -> Sf_stats.Pmf.t
(** The outdegree marginal restricted to its even support. *)
