(** ASCII rendering of distributions and curves for the text-only
    reproduction harness. *)

val pmf : ?width:int -> ?threshold:float -> Format.formatter -> Pmf.t -> unit
(** Horizontal bar chart; rows with mass below [threshold] (default 1e-3)
    are skipped. *)

val pmf_overlay :
  ?width:int ->
  ?threshold:float ->
  Format.formatter ->
  (string * Pmf.t) list ->
  unit
(** Up to three pmfs overlaid with distinct glyphs on a shared scale. *)

val series : ?width:int -> ?rows:int -> Format.formatter -> string * float array -> unit
(** Line chart of one float series (x = index). *)

val multi_series :
  ?width:int -> ?rows:int -> Format.formatter -> (string * float array) list -> unit
(** Up to four series on one chart with a shared y-scale. *)
