(* Tests for the sf_obs observability layer: exact histogram bucketing,
   quantile round trips, ring-buffer wraparound accounting, golden
   exporter output, span timing with a fake clock, and byte-identical
   trace dumps from equal-seed runs. *)

module Metrics = Sf_obs.Metrics
module Trace = Sf_obs.Trace
module Span = Sf_obs.Span
module Obs = Sf_obs.Obs
module Json = Sf_obs.Json

(* --- Histogram bucketing --- *)

(* Bucket boundaries are dyadic rationals, so the value->bucket mapping
   must be exact at every boundary: the inclusive lower bound lands in its
   own bucket, the exclusive upper bound in the next. *)
let test_bucket_boundaries () =
  for i = 1 to Metrics.bucket_count - 2 do
    let lo = Metrics.bucket_lower i in
    Alcotest.(check int)
      (Fmt.str "lower bound of bucket %d maps to itself" i)
      i
      (Metrics.bucket_of_value lo);
    let hi = Metrics.bucket_upper i in
    Alcotest.(check int)
      (Fmt.str "upper bound of bucket %d maps to the next" i)
      (i + 1)
      (Metrics.bucket_of_value hi)
  done

let test_bucket_edge_cases () =
  Alcotest.(check int) "zero underflows" 0 (Metrics.bucket_of_value 0.);
  Alcotest.(check int) "negative underflows" 0 (Metrics.bucket_of_value (-3.));
  Alcotest.(check int) "nan underflows" 0 (Metrics.bucket_of_value Float.nan);
  Alcotest.(check int) "huge values clamp to the last bucket"
    (Metrics.bucket_count - 1)
    (Metrics.bucket_of_value 1e300);
  Alcotest.(check int) "tiny values underflow" 0 (Metrics.bucket_of_value 1e-300)

(* A single-valued histogram must round-trip exactly: quantiles are
   clamped to the observed [min, max]. *)
let test_single_value_round_trip () =
  List.iter
    (fun v ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "h" in
      Metrics.observe h v;
      List.iter
        (fun q ->
          Alcotest.(check (float 0.))
            (Fmt.str "q=%g of single %g" q v)
            v (Metrics.quantile h q))
        [ 0.; 0.5; 0.9; 1. ])
    [ 1.; 0.3; 7.25; 1234.5678 ]

(* Relative quantile error is bounded by one sub-bucket width. *)
let test_quantile_relative_error () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  for v = 1 to 1000 do
    Metrics.observe h (float_of_int v)
  done;
  List.iter
    (fun q ->
      let exact = Float.ceil (q *. 1000.) in
      let est = Metrics.quantile h q in
      let rel = Float.abs (est -. exact) /. exact in
      Alcotest.(check bool)
        (Fmt.str "q=%g relative error %.4f within 1/%d" q rel
           Metrics.sub_buckets_per_octave)
        true
        (rel <= 1. /. float_of_int Metrics.sub_buckets_per_octave))
    [ 0.01; 0.25; 0.5; 0.9; 0.99 ]

let test_histogram_summary_stats () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  Alcotest.(check bool) "empty min is nan" true (Float.is_nan (Metrics.minimum h));
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile h 0.5));
  List.iter (Metrics.observe h) [ 2.; 8.; 4. ];
  Alcotest.(check int) "count" 3 (Metrics.observations h);
  Alcotest.(check (float 1e-9)) "sum" 14. (Metrics.total h);
  Alcotest.(check (float 0.)) "min" 2. (Metrics.minimum h);
  Alcotest.(check (float 0.)) "max" 8. (Metrics.maximum h);
  Alcotest.(check (float 1e-9)) "mean" (14. /. 3.) (Metrics.mean h)

(* --- Registry --- *)

let test_registry_get_or_create () =
  let m = Metrics.create () in
  let a = Metrics.counter m "hits" in
  let b = Metrics.counter m "hits" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "same counter" 3 (Metrics.count a);
  Alcotest.check_raises "kind collision"
    (Invalid_argument "Metrics.gauge: \"hits\" registered as another kind")
    (fun () -> ignore (Metrics.gauge m "hits"));
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Metrics: invalid metric name \"no spaces\"") (fun () ->
      ignore (Metrics.counter m "no spaces"))

(* --- Ring buffer --- *)

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:4 in
  for node = 0 to 9 do
    Trace.record tr ~now:(float_of_int node) (Trace.Timer { node })
  done;
  Alcotest.(check int) "recorded" 10 (Trace.recorded tr);
  Alcotest.(check int) "length = capacity" 4 (Trace.length tr);
  Alcotest.(check int) "dropped = recorded - capacity" 6 (Trace.dropped tr);
  Alcotest.(check (list int)) "survivors are the newest, oldest first"
    [ 6; 7; 8; 9 ]
    (List.map (fun r -> r.Trace.seq) (Trace.records tr));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.recorded tr);
  Alcotest.(check (list int)) "no records" []
    (List.map (fun r -> r.Trace.seq) (Trace.records tr))

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0))

(* --- Golden exporters --- *)

let golden_registry () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "a") 3;
  Metrics.set (Metrics.gauge m "g") 2.5;
  let h = Metrics.histogram m "h" in
  Metrics.observe h 1.;
  Metrics.observe h 2.;
  m

let test_prometheus_golden () =
  let expected =
    "# TYPE a counter\n\
     a 3\n\
     # TYPE g gauge\n\
     g 2.5\n\
     # TYPE h histogram\n\
     h_bucket{le=\"1.0625\"} 1\n\
     h_bucket{le=\"2.125\"} 2\n\
     h_bucket{le=\"+Inf\"} 2\n\
     h_sum 3.0\n\
     h_count 2\n"
  in
  Alcotest.(check string) "prometheus text" expected
    (Metrics.to_prometheus (golden_registry ()))

let test_csv_golden () =
  let expected =
    "kind,name,field,value\n\
     counter,a,value,3\n\
     gauge,g,value,2.5\n\
     histogram,h,count,2\n\
     histogram,h,sum,3.0\n\
     histogram,h,min,1.0\n\
     histogram,h,max,2.0\n\
     histogram,h,p50,1.0\n\
     histogram,h,p90,2.0\n\
     histogram,h,p99,2.0\n"
  in
  Alcotest.(check string) "csv" expected (Metrics.to_csv (golden_registry ()))

let test_jsonl_golden () =
  let tr = Trace.create ~capacity:8 in
  Trace.record tr ~now:0. (Trace.Send { src = 1; dst = 2; duplicated = false });
  Trace.record tr ~now:0.5 (Trace.Drop { src = 1; dst = 2; cause = "chance" });
  Trace.record tr ~now:1. (Trace.Deliver { dst = 2; accepted = true });
  Trace.record tr ~now:1.5 (Trace.Mark { label = "x" });
  let expected =
    "{\"t\":0.0,\"seq\":0,\"ev\":\"send\",\"src\":1,\"dst\":2,\"dup\":false}\n\
     {\"t\":0.5,\"seq\":1,\"ev\":\"drop\",\"src\":1,\"dst\":2,\"cause\":\"chance\"}\n\
     {\"t\":1.0,\"seq\":2,\"ev\":\"deliver\",\"dst\":2,\"ok\":true}\n\
     {\"t\":1.5,\"seq\":3,\"ev\":\"mark\",\"label\":\"x\"}\n"
  in
  Alcotest.(check string) "jsonl" expected (Trace.to_jsonl tr)

let test_json_emitter () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("xs", Json.List [ Json.Int 1; Json.Null; Json.Bool false ]);
        ("nan", Json.Float Float.nan);
        ("inf", Json.Float Float.infinity);
      ]
  in
  Alcotest.(check string) "escaping and special floats"
    "{\"s\":\"a\\\"b\\\\c\\nd\",\"xs\":[1,null,false],\"nan\":null,\"inf\":1e999}"
    (Json.to_string j)

(* --- Spans --- *)

let test_span_with_fake_clock () =
  let clock_now = ref 0. in
  let clock () = !clock_now in
  let m = Metrics.create () in
  let span = Span.create ~clock m "section_seconds" in
  let result = Span.time span (fun () -> clock_now := !clock_now +. 2.; 41 + 1) in
  Alcotest.(check int) "thunk result" 42 result;
  let h = Span.histogram span in
  Alcotest.(check int) "one observation" 1 (Metrics.observations h);
  Alcotest.(check (float 0.)) "duration" 2. (Metrics.maximum h);
  (* A raising section is still timed. *)
  (try Span.time span (fun () -> clock_now := !clock_now +. 3.; failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "raise still observed" 2 (Metrics.observations h);
  Alcotest.(check (float 0.)) "raise duration" 3. (Metrics.maximum h)

(* --- Obs bundle --- *)

let test_obs_bundle () =
  let quiet = Obs.create () in
  Alcotest.(check bool) "no tracer by default" false (Obs.tracing quiet);
  (* trace without a tracer is a no-op *)
  Obs.trace quiet ~now:0. (Trace.Mark { label = "ignored" });
  let tracer = Trace.create ~capacity:4 in
  let loud = Obs.create ~tracer () in
  Alcotest.(check bool) "tracing on" true (Obs.tracing loud);
  Obs.trace loud ~now:1. (Trace.Mark { label = "seen" });
  Alcotest.(check int) "recorded" 1 (Trace.recorded tracer)

(* --- End-to-end determinism: equal seeds dump identical bytes --- *)

let traced_run ~seed =
  let config = Sf_core.Protocol.make_config ~view_size:12 ~lower_threshold:4 in
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Sf_core.Topology.regular rng ~n:60 ~out_degree:8 in
  let tracer = Trace.create ~capacity:65536 in
  let obs = Obs.create ~tracer () in
  let r =
    Sf_core.Runner.create ~obs ~seed ~n:60 ~loss_rate:0.1 ~config ~topology ()
  in
  Sf_core.Runner.run_rounds r 20;
  (Trace.to_jsonl tracer, Metrics.to_prometheus (Obs.metrics obs))

let test_equal_seed_runs_dump_identical_traces () =
  let trace_a, prom_a = traced_run ~seed:5 in
  let trace_b, prom_b = traced_run ~seed:5 in
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length trace_a > 1000);
  Alcotest.(check string) "identical JSONL dumps" trace_a trace_b;
  Alcotest.(check string) "identical metrics snapshots" prom_a prom_b;
  let trace_c, _ = traced_run ~seed:6 in
  Alcotest.(check bool) "different seed, different trace" true
    (trace_a <> trace_c)

(* The obs layer consumes no randomness: protocol results are bit-for-bit
   identical with and without instrumentation. *)
let test_observation_preserves_rng_stream () =
  let run ~instrumented =
    let config = Sf_core.Protocol.make_config ~view_size:12 ~lower_threshold:4 in
    let rng = Sf_prng.Rng.create 8 in
    let topology = Sf_core.Topology.regular rng ~n:60 ~out_degree:8 in
    let obs =
      if instrumented then Some (Obs.create ~tracer:(Trace.create ~capacity:1024) ())
      else None
    in
    let r =
      Sf_core.Runner.create ?obs ~seed:7 ~n:60 ~loss_rate:0.1 ~config ~topology ()
    in
    Sf_core.Runner.run_rounds r 20;
    let w = Sf_core.Runner.world_counters r in
    let degrees =
      Array.map
        (fun node -> Sf_core.Protocol.degree node)
        (Sf_core.Runner.live_nodes r)
    in
    ((w.Sf_core.Runner.sends, w.Sf_core.Runner.duplications,
      w.Sf_core.Runner.deletions, w.Sf_core.Runner.messages_lost),
     degrees)
  in
  let counters_plain, degrees_plain = run ~instrumented:false in
  let counters_full, degrees_full = run ~instrumented:true in
  Alcotest.(check bool) "identical world counters" true
    (counters_plain = counters_full);
  Alcotest.(check bool) "identical final degrees" true
    (degrees_plain = degrees_full)

let suite =
  [
    Alcotest.test_case "bucket boundaries are exact" `Quick test_bucket_boundaries;
    Alcotest.test_case "bucket edge cases" `Quick test_bucket_edge_cases;
    Alcotest.test_case "single-value quantile round trip" `Quick
      test_single_value_round_trip;
    Alcotest.test_case "quantile relative error bound" `Quick
      test_quantile_relative_error;
    Alcotest.test_case "histogram summary stats" `Quick test_histogram_summary_stats;
    Alcotest.test_case "registry get-or-create and collisions" `Quick
      test_registry_get_or_create;
    Alcotest.test_case "ring wraparound accounting" `Quick test_ring_wraparound;
    Alcotest.test_case "ring rejects bad capacity" `Quick
      test_ring_rejects_bad_capacity;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "csv golden" `Quick test_csv_golden;
    Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
    Alcotest.test_case "json emitter" `Quick test_json_emitter;
    Alcotest.test_case "span with fake clock" `Quick test_span_with_fake_clock;
    Alcotest.test_case "obs bundle" `Quick test_obs_bundle;
    Alcotest.test_case "equal seeds dump identical traces" `Quick
      test_equal_seed_runs_dump_identical_traces;
    Alcotest.test_case "observation preserves the RNG stream" `Quick
      test_observation_preserves_rng_stream;
  ]
