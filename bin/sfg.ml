(* sfg — command-line driver for the Send & Forget reproduction.

   Every analysis and experiment in the library is reachable from here with
   explicit parameters, so results can be regenerated piecemeal without the
   full bench harness.  See `sfg --help` and per-command help. *)

open Cmdliner

module Runner = Sf_core.Runner
module Protocol = Sf_core.Protocol
module Topology = Sf_core.Topology
module Properties = Sf_core.Properties
module Census = Sf_core.Census
module Summary = Sf_stats.Summary
module Pmf = Sf_stats.Pmf

(* --- Common arguments --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let n_arg =
  Arg.(value & opt int 1000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let view_size_arg =
  Arg.(value & opt int 40 & info [ "s"; "view-size" ] ~docv:"S" ~doc:"View size s (even).")

let lower_threshold_arg =
  Arg.(
    value
    & opt int 18
    & info [ "dl"; "lower-threshold" ] ~docv:"DL"
        ~doc:"Lower outdegree threshold dL (even).")

let loss_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "loss" ] ~docv:"P" ~doc:"Uniform i.i.d. message loss probability.")

let rounds_arg default =
  Arg.(
    value
    & opt int default
    & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to run (one round = n actions).")

let delta_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "delta" ] ~docv:"D" ~doc:"Duplication/deletion probability budget.")

let make_runner ?scenario ?obs ?resilience ~seed ~n ~view_size ~lower_threshold ~loss
    () =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let out_degree = min (n - 1) (max lower_threshold ((view_size + lower_threshold) / 2)) in
  let out_degree = if out_degree mod 2 = 0 then out_degree else out_degree - 1 in
  let rng = Sf_prng.Rng.create (seed + 1) in
  let topology = Topology.regular rng ~n ~out_degree in
  Runner.create ?scenario ?obs ?resilience ~seed ~n ~loss_rate:loss ~config ~topology ()

(* --- Resilience policy (shared by soak and the --resilience flags) --- *)

let d_hat_arg =
  Arg.(
    value
    & opt int 30
    & info [ "d-hat" ] ~docv:"D"
        ~doc:"Target mean outdegree the adaptive controller re-solves for.")

(* The section 6.3 solver, re-solved online for the estimated loss.  The
   estimate is clamped below [select_lossy]'s 0.5 domain bound: past that
   the inversion is meaningless and the controller should just hold the
   most defensive thresholds it already reached. *)
let resilience_policy ~d_hat ~delta () =
  let solve ~loss =
    let t =
      Sf_analysis.Thresholds.select_lossy ~d_hat ~delta ~loss:(Float.min loss 0.45)
    in
    (t.Sf_analysis.Thresholds.lower_threshold, t.Sf_analysis.Thresholds.view_size)
  in
  Sf_resil.Policy.make ~solve ()

let print_resilience_stats rs =
  Fmt.pr
    "resilience:  loss estimate %.4f (%s, %d windows); %d retunes, %d repair \
     attempts, %d recoveries@."
    rs.Runner.loss_estimate
    (if rs.Runner.estimator_confident then "confident" else "warming up")
    rs.Runner.estimator_windows rs.Runner.retunes rs.Runner.repair_attempts
    rs.Runner.recoveries

let print_resilience_statistics r =
  match Runner.resilience_statistics r with
  | None -> ()
  | Some rs -> print_resilience_stats rs

(* --- Fault scenarios (shared by check and storm) --- *)

let scenario_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Sf_faults.Scenario.of_string s) in
  let print ppf sc = Fmt.string ppf (Sf_faults.Scenario.to_string sc) in
  Arg.conv ~docv:"SCENARIO" (parse, print)

let scenario_arg =
  Arg.(
    value
    & opt (some scenario_conv) None
    & info [ "scenario" ] ~docv:"SCENARIO"
        ~doc:
          "Fault scenario: semicolon-separated items — iid, ge:MEAN:BURST (bursty \
           loss with stationary mean MEAN and mean burst length BURST), \
           partition@A-B:K (K-way split), crash@A-B:LO-HI (freeze node ids), \
           delay@A-B:F (latency multiplier), corrupt@A-B:R (per-message corruption \
           probability).  Window times A-B are in rounds.")

(* Every fault class a scenario declares must leave evidence in the
   injector counters.  A silent zero means the fault plan never actually
   engaged — a misconfigured window or a regressed injector — which is a
   different failure from an invariant violation, so storm and scale give
   it its own exit code (2).  Returns the dead classes, empty when the
   verdict holds. *)
let dead_fault_classes ~scenario fs =
  let missing = ref [] in
  let expect what count = if count = 0 then missing := what :: !missing in
  (match scenario.Sf_faults.Scenario.loss with
  | Sf_faults.Loss.Gilbert_elliott _ ->
    expect "bursty loss declared but zero burst drops"
      fs.Sf_faults.Injector.burst_drops
  | Sf_faults.Loss.Iid | Sf_faults.Loss.Per_link _ -> ());
  let declares kind =
    List.exists
      (fun w -> Sf_faults.Scenario.fault_kind w.Sf_faults.Scenario.fault = kind)
      scenario.Sf_faults.Scenario.windows
  in
  if declares "partition" then
    expect "partition declared but zero partition drops"
      fs.Sf_faults.Injector.partition_drops;
  if declares "crash" then
    expect "crash declared but zero crash drops" fs.Sf_faults.Injector.crash_drops;
  if declares "corrupt" then
    expect "corruption declared but zero corruptions"
      fs.Sf_faults.Injector.corruptions;
  if scenario.Sf_faults.Scenario.windows <> [] then
    expect "fault windows declared but zero window transitions"
      fs.Sf_faults.Injector.fault_transitions;
  List.rev !missing

let print_fault_statistics fs =
  Fmt.pr
    "faults:      %d judged — %d chance drops (%d bursty), %d partition, %d crash, \
     %d corrupted; %d window transitions@."
    fs.Sf_faults.Injector.judged fs.Sf_faults.Injector.chance_drops
    fs.Sf_faults.Injector.burst_drops fs.Sf_faults.Injector.partition_drops
    fs.Sf_faults.Injector.crash_drops fs.Sf_faults.Injector.corruptions
    fs.Sf_faults.Injector.fault_transitions

let print_system_state r =
  let outs = Properties.outdegree_summary r in
  let ins = Properties.indegree_summary r in
  let census = Properties.independence_census r in
  Fmt.pr "nodes:       %d@." (Runner.live_count r);
  Fmt.pr "actions:     %d@." (Runner.action_count r);
  Fmt.pr "outdegree:   %.2f ± %.2f  (min %.0f, max %.0f)@." (Summary.mean outs)
    (Summary.std outs) (Summary.min_value outs) (Summary.max_value outs);
  Fmt.pr "indegree:    %.2f ± %.2f  (min %.0f, max %.0f)@." (Summary.mean ins)
    (Summary.std ins) (Summary.min_value ins) (Summary.max_value ins);
  Fmt.pr "alpha:       %.4f  (self %d, anchored %d, parallel %d of %d entries)@."
    census.Census.alpha census.Census.self_edges census.Census.anchored
    census.Census.parallel_surplus census.Census.total_entries;
  Fmt.pr "connected:   %b@." (Properties.is_weakly_connected r);
  let net = Runner.network_statistics r in
  Fmt.pr "messages:    %d sent, %d delivered, %d lost, %d to dead nodes@."
    net.Sf_engine.Network.messages_sent net.Sf_engine.Network.messages_delivered
    net.Sf_engine.Network.messages_lost net.Sf_engine.Network.messages_to_dead_nodes

(* --- simulate --- *)

let simulate seed n view_size lower_threshold loss rounds timed resilience d_hat delta
    =
  let resilience =
    if resilience then Some (resilience_policy ~d_hat ~delta ()) else None
  in
  let r = make_runner ?resilience ~seed ~n ~view_size ~lower_threshold ~loss () in
  if timed then begin
    Runner.start_timed r (Runner.Poisson 1.0);
    Runner.run_until r (float_of_int rounds)
  end
  else Runner.run_rounds r rounds;
  let base = Runner.world_counters r in
  if timed then Runner.run_until r (float_of_int (2 * rounds))
  else Runner.run_rounds r rounds;
  print_system_state r;
  let rates = Runner.rates_since r base in
  Fmt.pr "rates/send:  duplication %.4f, deletion %.4f, loss %.4f@."
    rates.Runner.duplication rates.Runner.deletion rates.Runner.loss;
  Fmt.pr "Lemma 6.6:   dup - (loss + del) = %+.4f@."
    (rates.Runner.duplication -. rates.Runner.loss -. rates.Runner.deletion);
  print_resilience_statistics r

let simulate_cmd =
  let timed =
    Arg.(value & flag & info [ "timed" ] ~doc:"Run the timed (event-driven) model.")
  in
  let resilience =
    Arg.(
      value & flag
      & info [ "resilience" ]
          ~doc:
            "Install the self-healing layer: online loss estimation, adaptive \
             (dL, s) retuning toward --d-hat, supervised recovery.")
  in
  let doc = "Run an S&F system and report degree, independence and rate statistics." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ rounds_arg 400 $ timed $ resilience $ d_hat_arg $ delta_arg)

(* --- degree-mc --- *)

let degree_mc view_size lower_threshold loss full =
  let params =
    Sf_analysis.Degree_mc.make_params ~view_size ~lower_threshold ~loss ()
  in
  let r = Sf_analysis.Degree_mc.solve params in
  Fmt.pr "converged:     %b (%d outer iterations)@." r.Sf_analysis.Degree_mc.converged
    r.Sf_analysis.Degree_mc.outer_iterations;
  Fmt.pr "outdegree:     %.3f ± %.3f (mode %d)@."
    (Pmf.mean r.Sf_analysis.Degree_mc.outdegree)
    (Pmf.std r.Sf_analysis.Degree_mc.outdegree)
    (Pmf.mode r.Sf_analysis.Degree_mc.outdegree);
  Fmt.pr "indegree:      %.3f ± %.3f (mode %d)@."
    (Pmf.mean r.Sf_analysis.Degree_mc.indegree)
    (Pmf.std r.Sf_analysis.Degree_mc.indegree)
    (Pmf.mode r.Sf_analysis.Degree_mc.indegree);
  Fmt.pr "duplication:   %.4f per send@." r.Sf_analysis.Degree_mc.duplication_probability;
  Fmt.pr "deletion:      %.4f per send@." r.Sf_analysis.Degree_mc.deletion_probability;
  Fmt.pr "loss+deletion: %.4f  (Lemma 6.6 balance)@."
    (loss +. r.Sf_analysis.Degree_mc.deletion_probability);
  if full then begin
    Fmt.pr "@.outdegree distribution:@.";
    Sf_stats.Ascii_plot.pmf Fmt.stdout r.Sf_analysis.Degree_mc.outdegree;
    Fmt.pr "@.indegree distribution:@.";
    Sf_stats.Ascii_plot.pmf Fmt.stdout r.Sf_analysis.Degree_mc.indegree
  end

let degree_mc_cmd =
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Print the full distributions.") in
  let doc = "Solve the section 6.2 degree Markov chain to its fixed point." in
  Cmd.v (Cmd.info "degree-mc" ~doc)
    Term.(const degree_mc $ view_size_arg $ lower_threshold_arg $ loss_arg $ full)

(* --- thresholds --- *)

let thresholds d_hat delta literal =
  let t =
    if literal then Sf_analysis.Thresholds.select_literal ~d_hat ~delta
    else Sf_analysis.Thresholds.select ~d_hat ~delta
  in
  Fmt.pr "%a@." Sf_analysis.Thresholds.pp t

let thresholds_cmd =
  let d_hat =
    Arg.(value & opt int 30 & info [ "d-hat" ] ~docv:"D" ~doc:"Target expected outdegree.")
  in
  let literal =
    Arg.(
      value & flag
      & info [ "literal" ] ~doc:"Use the literal Pr(d>=s) reading of condition (3).")
  in
  let doc = "Select dL and s from a target degree and budget (section 6.3)." in
  Cmd.v (Cmd.info "thresholds" ~doc) Term.(const thresholds $ d_hat $ delta_arg $ literal)

(* --- decay --- *)

let decay loss delta lower_threshold view_size rounds =
  let p =
    Sf_analysis.Decay.make_params ~loss ~delta ~lower_threshold ~view_size
  in
  Fmt.pr "per-round survival factor: %.5f@." (Sf_analysis.Decay.per_round_survival p);
  Fmt.pr "rounds to 50%%:             %d@."
    (Sf_analysis.Decay.rounds_to_fraction p ~fraction:0.5);
  Fmt.pr "rounds to 1%%:              %d@."
    (Sf_analysis.Decay.rounds_to_fraction p ~fraction:0.01);
  Fmt.pr "@.survival bound:@.";
  let curve = Sf_analysis.Decay.survival_curve p ~rounds in
  let step = max 1 (rounds / 20) in
  let i = ref 0 in
  while !i <= rounds do
    Fmt.pr "  %4d  %.4f@." !i curve.(!i);
    i := !i + step
  done

let decay_cmd =
  let doc = "Print the Lemma 6.10 decay bound for a departed node's id." in
  Cmd.v (Cmd.info "decay" ~doc)
    Term.(
      const decay $ loss_arg $ delta_arg $ lower_threshold_arg $ view_size_arg
      $ rounds_arg 500)

(* --- alpha --- *)

let alpha loss delta =
  Fmt.pr "alpha lower bound (Lemma 7.9):  %.4f@."
    (Sf_analysis.Dependence.alpha_lower_bound ~loss ~delta);
  Fmt.pr "dependence MC stationary:       %.4f dependent@."
    (Sf_analysis.Dependence.stationary_dependent_fraction ~loss ~delta);
  Fmt.pr "I->D transition bound:          %.4f@."
    (Sf_analysis.Dependence.to_dependent_probability ~loss ~delta);
  Fmt.pr "D->I transition bound:          %.4f@."
    (Sf_analysis.Dependence.to_independent_probability ~loss ~delta)

let alpha_cmd =
  let doc = "Spatial-independence bounds (section 7.4)." in
  Cmd.v (Cmd.info "alpha" ~doc) Term.(const alpha $ loss_arg $ delta_arg)

(* --- temporal --- *)

let temporal n view_size expected_outdegree alpha epsilon =
  let p =
    Sf_analysis.Temporal.make_params ~n ~view_size ~expected_outdegree ~alpha
  in
  Fmt.pr "expected conductance bound (Lemma 7.14): %.5f@."
    (Sf_analysis.Temporal.expected_conductance_bound p);
  Fmt.pr "tau_eps (Lemma 7.15):                    %.4e transformations@."
    (Sf_analysis.Temporal.tau_epsilon p ~epsilon);
  Fmt.pr "actions per node:                        %.1f@."
    (Sf_analysis.Temporal.actions_per_node p ~epsilon);
  Fmt.pr "s ln n:                                  %.1f@."
    (Sf_analysis.Temporal.headline_scaling p)

let temporal_cmd =
  let de =
    Arg.(
      value & opt float 27. & info [ "de" ] ~docv:"DE" ~doc:"Expected outdegree dE.")
  in
  let alpha_v =
    Arg.(value & opt float 0.96 & info [ "alpha" ] ~docv:"A" ~doc:"Independence fraction.")
  in
  let eps =
    Arg.(value & opt float 0.01 & info [ "epsilon" ] ~docv:"E" ~doc:"Target distance.")
  in
  let doc = "Temporal-independence bound tau_eps (section 7.5)." in
  Cmd.v (Cmd.info "temporal" ~doc)
    Term.(const temporal $ n_arg $ view_size_arg $ de $ alpha_v $ eps)

(* --- connectivity --- *)

let connectivity loss delta epsilon =
  let alpha = Sf_analysis.Dependence.alpha_lower_bound ~loss ~delta in
  match Sf_analysis.Connectivity.minimal_lower_threshold ~alpha ~epsilon () with
  | Some d ->
    Fmt.pr "alpha = %.4f -> minimal dL = %d (failure probability %.3e)@." alpha d
      (Sf_analysis.Connectivity.failure_probability ~lower_threshold:d ~alpha)
  | None -> Fmt.pr "no threshold below the search cap@."

let connectivity_cmd =
  let eps =
    Arg.(
      value & opt float 1e-30
      & info [ "epsilon" ] ~docv:"E" ~doc:"Tolerated disconnection probability.")
  in
  let doc = "Minimal dL for connectivity (section 7.4 rule)." in
  Cmd.v (Cmd.info "connectivity" ~doc)
    Term.(const connectivity $ loss_arg $ delta_arg $ eps)

(* --- churn --- *)

let churn seed n view_size lower_threshold loss rounds =
  let r = make_runner ~seed ~n ~view_size ~lower_threshold ~loss () in
  Runner.run_rounds r 200;
  Fmt.pr "-- leave decay (one victim)@.";
  let victim, trace = Sf_core.Churn.leave_decay r ~rounds () in
  Fmt.pr "victim %d had %d instances at departure@." victim trace.(0);
  let step = max 1 (rounds / 10) in
  Array.iteri
    (fun i c -> if i mod step = 0 then Fmt.pr "  round %4d: %d instances@." i c)
    trace;
  Fmt.pr "-- join integration@.";
  let jt = Sf_core.Churn.join_integration r ~rounds in
  Fmt.pr "joiner %d@." jt.Sf_core.Churn.joiner;
  Array.iteri
    (fun i c ->
      if i mod step = 0 then
        Fmt.pr "  round %4d: %d instances, outdegree %d@." i c
          jt.Sf_core.Churn.out_degrees.(i))
    jt.Sf_core.Churn.instances

let churn_cmd =
  let doc = "Leave-decay and join-integration experiments (section 6.5)." in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const churn $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ rounds_arg 200)

(* --- baselines --- *)

let baselines seed n view_size loss rounds =
  let topology = Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n ~out_degree:(view_size / 2) in
  let report name total census connected =
    Fmt.pr "%-28s edges %6d  alpha %.3f  connected %b@." name total
      census.Census.alpha connected
  in
  let run name kind =
    let b =
      Sf_core.Baselines.create ~seed ~n ~view_size ~loss_rate:loss ~kind ~topology
    in
    Sf_core.Baselines.run_rounds b rounds;
    report name
      (Sf_core.Baselines.total_instances b)
      (Sf_core.Baselines.independence_census b)
      (Sf_core.Baselines.is_weakly_connected b)
  in
  let config = Protocol.make_config ~view_size ~lower_threshold:(max 0 (view_size - 22)) in
  let r = Runner.create ~seed ~n ~loss_rate:loss ~config ~topology () in
  Runner.run_rounds r rounds;
  report "send-and-forget"
    (Sf_graph.Digraph.edge_count (Runner.membership_graph r))
    (Properties.independence_census r)
    (Properties.is_weakly_connected r);
  run "shuffle" (Sf_core.Baselines.Shuffle { exchange_size = 4 });
  run "push-pull-keep" (Sf_core.Baselines.Push_pull { gossip_size = 3 });
  run "push-only" Sf_core.Baselines.Push_only

let baselines_cmd =
  let doc = "Compare S&F against the section 3.1 baseline protocols." in
  Cmd.v (Cmd.info "baselines" ~doc)
    Term.(const baselines $ seed_arg $ n_arg $ view_size_arg $ loss_arg $ rounds_arg 300)

(* --- global-mc --- *)

let global_mc view_size lower_threshold loss =
  let p = { Sf_analysis.Global_mc.n = 3; view_size; lower_threshold; loss } in
  let r = Sf_analysis.Global_mc.explore p ~initial:[ [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] ] in
  Fmt.pr "states:                  %d@." (Array.length r.Sf_analysis.Global_mc.states);
  Fmt.pr "ergodic:                 %b@." r.Sf_analysis.Global_mc.is_ergodic;
  Fmt.pr "labeled uniformity:      %.6f (max/min; 1 = Lemma 7.5 exact)@."
    (Sf_analysis.Global_mc.labeled_uniformity_ratio r);
  Fmt.pr "edge-probability spread: %.6f (1 = Lemma 7.6 exact)@."
    (Sf_analysis.Global_mc.edge_probability_spread r);
  Fmt.pr "mean entries:            %.3f@." r.Sf_analysis.Global_mc.mean_entries;
  Fmt.pr "self-edge fraction:      %.4f@." r.Sf_analysis.Global_mc.self_edge_fraction

let global_mc_cmd =
  let s = Arg.(value & opt int 6 & info [ "s" ] ~docv:"S" ~doc:"View size (keep tiny).") in
  let dl = Arg.(value & opt int 0 & info [ "dl" ] ~docv:"DL" ~doc:"Lower threshold.") in
  let doc = "Exact global Markov chain for a 3-node system (section 7.1)." in
  Cmd.v (Cmd.info "global-mc" ~doc) Term.(const global_mc $ s $ dl $ loss_arg)

(* --- walk --- *)

let walk seed n view_size lower_threshold loss length attempts =
  let r = make_runner ~seed ~n ~view_size ~lower_threshold ~loss () in
  Runner.run_rounds r 200;
  let rng = Sf_prng.Rng.create (seed + 99) in
  let stats =
    Sf_core.Random_walk.sample_statistics r rng ~attempts ~length ~loss_rate:loss
  in
  Fmt.pr "attempts:  %d@." stats.Sf_core.Random_walk.attempts;
  Fmt.pr "completed: %d (%.3f; theory %.3f)@." stats.Sf_core.Random_walk.completed
    stats.Sf_core.Random_walk.success_rate
    (Sf_core.Random_walk.success_probability ~length ~loss_rate:loss);
  Fmt.pr "lost:      %d@." stats.Sf_core.Random_walk.lost;
  Fmt.pr "dead ends: %d@." stats.Sf_core.Random_walk.dead_ends

let walk_cmd =
  let length =
    Arg.(value & opt int 10 & info [ "length" ] ~docv:"L" ~doc:"Walk length in hops.")
  in
  let attempts =
    Arg.(value & opt int 5000 & info [ "attempts" ] ~docv:"K" ~doc:"Number of walks.")
  in
  let doc = "Random-walk sampling under loss (section 3.1 comparison)." in
  Cmd.v (Cmd.info "walk" ~doc)
    Term.(
      const walk $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ length $ attempts)

(* --- quality --- *)

let quality seed n view_size lower_threshold loss rounds =
  let r = make_runner ~seed ~n ~view_size ~lower_threshold ~loss () in
  Runner.run_rounds r rounds;
  let g = Runner.membership_graph r in
  let rng = Sf_prng.Rng.create (seed + 50) in
  let paths = Sf_graph.Quality.path_statistics ~sources:24 rng g in
  Fmt.pr "estimated diameter:   %d@." paths.Sf_graph.Quality.estimated_diameter;
  Fmt.pr "average path length:  %.2f@." paths.Sf_graph.Quality.average_path_length;
  Fmt.pr "unreachable pairs:    %d@." paths.Sf_graph.Quality.unreachable_pairs;
  Fmt.pr "clustering coeff.:    %.4f@." (Sf_graph.Quality.clustering_coefficient g);
  Fmt.pr "robustness (giant component after random removals):@.";
  List.iter
    (fun (fraction, giant) -> Fmt.pr "  remove %3.0f%% -> giant %.3f@." (100. *. fraction) giant)
    (Sf_graph.Quality.robustness_profile rng g
       ~removal_fractions:[ 0.1; 0.3; 0.5; 0.7 ])

let quality_cmd =
  let doc = "Expander quality of the steady-state membership graph (section 2)." in
  Cmd.v (Cmd.info "quality" ~doc)
    Term.(
      const quality $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ rounds_arg 300)

(* --- mixing --- *)

let mixing view_size lower_threshold loss =
  let params = Sf_analysis.Degree_mc.make_params ~view_size ~lower_threshold ~loss () in
  let r = Sf_analysis.Degree_mc.solve params in
  let chain = Sf_analysis.Degree_mc.to_chain r in
  let rng = Sf_prng.Rng.create 7 in
  let lambda =
    Sf_markov.Mixing.second_eigenvalue_estimate chain
      ~stationary:r.Sf_analysis.Degree_mc.joint
      ~uniform:(fun () -> Sf_prng.Rng.float rng)
  in
  Fmt.pr "|lambda2| estimate:  %.5f@." lambda;
  Fmt.pr "relaxation time:     %s steps@."
    (if lambda >= 1. then "inf" else Fmt.str "%.1f" (1. /. (1. -. lambda)));
  let size = Sf_markov.Chain.size chain in
  let idx = ref 0 in
  Array.iteri
    (fun i st -> if st = (lower_threshold, 0) then idx := i)
    r.Sf_analysis.Degree_mc.states;
  let profile =
    Sf_markov.Mixing.distance_profile chain
      ~initial:(Sf_markov.Chain.point_distribution ~size !idx)
      ~stationary:r.Sf_analysis.Degree_mc.joint
      ~checkpoints:[ 0; 100; 200; 400; 800; 1600; 3200 ]
  in
  Fmt.pr "TVD to stationarity from the (dL, 0) corner state:@.";
  Array.iteri
    (fun i step ->
      Fmt.pr "  %5d steps: %.4f@." step profile.Sf_markov.Mixing.tv_distances.(i))
    profile.Sf_markov.Mixing.steps

let mixing_cmd =
  let doc = "Mixing diagnostics of the degree Markov chain." in
  Cmd.v (Cmd.info "mixing" ~doc)
    Term.(const mixing $ view_size_arg $ lower_threshold_arg $ loss_arg)

(* --- udp --- *)

let udp seed n view_size lower_threshold loss duration base_port =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let out_degree =
    let d = min (n - 1) ((view_size + lower_threshold) / 2) in
    if d mod 2 = 0 then d else d - 1
  in
  let topology = Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n ~out_degree in
  let c =
    Sf_net.Cluster.create ~base_port ~n ~config ~loss_rate:loss ~seed ~topology ()
  in
  Fun.protect
    ~finally:(fun () -> Sf_net.Cluster.shutdown c)
    (fun () ->
      Fmt.pr "running %d nodes on UDP 127.0.0.1:%d-%d for %.1fs...@." n base_port
        (base_port + n - 1) duration;
      Sf_net.Cluster.run c ~duration;
      let stats = Sf_net.Cluster.statistics c in
      let outs = Sf_net.Cluster.outdegree_summary c in
      let census = Sf_net.Cluster.independence_census c in
      Fmt.pr "actions:     %d@." stats.Sf_net.Cluster.actions;
      Fmt.pr "datagrams:   %d sent, %d dropped (injected), %d received@."
        stats.Sf_net.Cluster.datagrams_sent stats.Sf_net.Cluster.datagrams_dropped
        stats.Sf_net.Cluster.datagrams_received;
      Fmt.pr "codec errors: %d, send errors: %d@." stats.Sf_net.Cluster.decode_errors
        stats.Sf_net.Cluster.send_errors;
      Fmt.pr "outdegree:   %.2f ± %.2f@." (Summary.mean outs) (Summary.std outs);
      Fmt.pr "alpha:       %.4f@." census.Census.alpha;
      Fmt.pr "connected:   %b@." (Sf_net.Cluster.is_weakly_connected c))

let udp_cmd =
  let duration =
    Arg.(value & opt float 3. & info [ "duration" ] ~docv:"SEC" ~doc:"Wall-clock seconds.")
  in
  let base_port =
    Arg.(value & opt int 47000 & info [ "port" ] ~docv:"PORT" ~doc:"First UDP port.")
  in
  let n_small =
    Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Nodes (<= ~500).")
  in
  let doc = "Run S&F over real UDP sockets on the loopback interface." in
  Cmd.v (Cmd.info "udp" ~doc)
    Term.(
      const udp $ seed_arg $ n_small $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ duration $ base_port)

(* --- check --- *)

let check seed n view_size lower_threshold loss rounds warn scan_every scenario =
  let r = make_runner ?scenario ~seed ~n ~view_size ~lower_threshold ~loss () in
  (match scenario with
  | Some sc -> Fmt.pr "scenario:          %s@." (Sf_faults.Scenario.to_string sc)
  | None -> ());
  let mode = if warn then Sf_check.Invariant.Warn else Sf_check.Invariant.Strict in
  match Sf_check.Invariant.audited_run ~mode ~scan_every r ~rounds with
  | exception Sf_check.Invariant.Violation v ->
    Fmt.epr "invariant violation after %d actions: %a@." (Runner.action_count r)
      Sf_check.Invariant.pp_violation v;
    exit 1
  | stats ->
    Fmt.pr "actions audited:   %d@." stats.Sf_check.Invariant.actions_checked;
    Fmt.pr "full scans:        %d@." stats.Sf_check.Invariant.full_scans;
    Fmt.pr "baseline resyncs:  %d@." stats.Sf_check.Invariant.resyncs;
    Fmt.pr "violations:        %d@." stats.Sf_check.Invariant.violation_count;
    List.iter
      (fun v -> Fmt.pr "  %a@." Sf_check.Invariant.pp_violation v)
      (List.rev stats.Sf_check.Invariant.violations);
    (match Runner.fault_statistics r with
    | Some fs -> print_fault_statistics fs
    | None -> ());
    print_system_state r;
    if stats.Sf_check.Invariant.violation_count > 0 then exit 1

let check_cmd =
  let warn =
    Arg.(
      value & flag
      & info [ "warn" ] ~doc:"Log violations and keep running instead of failing fast.")
  in
  let scan_every =
    Arg.(
      value & opt int 1000
      & info [ "scan-every" ] ~docv:"K"
          ~doc:"Full structural scan (serial uniqueness, view soundness) every K actions.")
  in
  let doc =
    "Run a fully audited simulation: every S\\&F action is checked against the \
     paper's invariants (M1 degree bounds, edge conservation, the dL duplication \
     rule, view soundness).  An optional --scenario adds fault injection (bursty \
     loss, partitions, crashes, delays, corruption) under the same audit.  Exits \
     nonzero on any violation."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const check $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ rounds_arg 100 $ warn $ scan_every $ scenario_arg)

(* --- storm --- *)

(* Exercises every fault class at once: bursty loss throughout, then a
   two-way partition, a crash/restart of a node range, a delay spike, and a
   corruption window — all under the strict invariant audit. *)
let default_storm_scenario =
  "ge:0.08:8;partition@10-25:2;crash@30-40:0-7;delay@45-50:3;corrupt@55-60:0.02"

let storm seed n view_size lower_threshold loss rounds scenario udp_nodes base_port
    no_udp =
  let scenario =
    match scenario with
    | Some sc -> sc
    | None -> (
      match Sf_faults.Scenario.of_string default_storm_scenario with
      | Ok sc -> sc
      | Error e -> Fmt.failwith "default storm scenario: %s" e)
  in
  Fmt.pr "scenario:    %s@." (Sf_faults.Scenario.to_string scenario);
  Fmt.pr "-- simulator (sequential actions, strict audit)@.";
  let r = make_runner ~scenario ~seed ~n ~view_size ~lower_threshold ~loss () in
  (match Sf_check.Invariant.audited_run ~mode:Sf_check.Invariant.Strict r ~rounds with
  | exception Sf_check.Invariant.Violation v ->
    Fmt.epr "invariant violation after %d actions: %a@." (Runner.action_count r)
      Sf_check.Invariant.pp_violation v;
    exit 1
  | stats ->
    Fmt.pr "audited:     %d actions, %d full scans, %d baseline resyncs@."
      stats.Sf_check.Invariant.actions_checked stats.Sf_check.Invariant.full_scans
      stats.Sf_check.Invariant.resyncs);
  (match Runner.fault_statistics r with
  | Some fs -> print_fault_statistics fs
  | None -> ());
  (* Injector verdict: see [dead_fault_classes]. *)
  (match Runner.fault_statistics r with
  | None ->
    Fmt.epr "storm: scenario declared but no injector statistics@.";
    exit 2
  | Some fs ->
    match dead_fault_classes ~scenario fs with
    | [] -> ()
    | failures ->
      List.iter (fun f -> Fmt.epr "storm: injector verdict: %s@." f) failures;
      exit 2);
  if Properties.is_weakly_connected r then Fmt.pr "connected:   true@."
  else begin
    Fmt.pr "overlay split by the fault plan; invoking rendezvous recovery...@.";
    match Sf_core.Churn.recover_connectivity r with
    | Some (recovery_rounds, rebootstraps) ->
      Fmt.pr "reconnected after %d recovery rounds (%d rebootstraps)@."
        recovery_rounds rebootstraps
    | None ->
      Fmt.epr "recovery failed to reconnect the overlay@.";
      exit 1
  end;
  if not no_udp then begin
    Fmt.pr "-- UDP cluster (loopback, same scenario)@.";
    let config = Protocol.make_config ~view_size ~lower_threshold in
    let out_degree =
      let d = min (udp_nodes - 1) ((view_size + lower_threshold) / 2) in
      if d mod 2 = 0 then d else d - 1
    in
    let topology =
      Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n:udp_nodes ~out_degree
    in
    let period = 0.005 in
    let c =
      Sf_net.Cluster.create ~period ~scenario ~base_port ~n:udp_nodes ~config
        ~loss_rate:loss ~seed ~topology ()
    in
    Fun.protect
      ~finally:(fun () -> Sf_net.Cluster.shutdown c)
      (fun () ->
        Sf_net.Cluster.run c ~duration:(float_of_int rounds *. period);
        let stats = Sf_net.Cluster.statistics c in
        Fmt.pr
          "datagrams:   %d sent, %d dropped, %d received, %d corrupted, %d delayed, \
           %d crash-dropped, %d decode errors@."
          stats.Sf_net.Cluster.datagrams_sent stats.Sf_net.Cluster.datagrams_dropped
          stats.Sf_net.Cluster.datagrams_received
          stats.Sf_net.Cluster.datagrams_corrupted
          stats.Sf_net.Cluster.datagrams_delayed
          stats.Sf_net.Cluster.datagrams_crash_dropped
          stats.Sf_net.Cluster.decode_errors;
        (match Sf_net.Cluster.fault_statistics c with
        | Some fs -> print_fault_statistics fs
        | None -> ());
        (* The cluster has no per-action audit hook, but the stable
           invariants — view soundness, M1 bounds, parity (every protocol
           transition moves ids in pairs) — are checkable on its views. *)
        let violations = ref 0 in
        Seq.iter
          (fun (id, view) ->
            (match Sf_check.Invariant.check_view view with
            | Some v ->
              incr violations;
              Fmt.epr "node %d: %a@." id Sf_check.Invariant.pp_violation v
            | None -> ());
            let d = Sf_core.View.degree view in
            if d < 0 || d > view_size || d mod 2 <> 0 then begin
              incr violations;
              Fmt.epr "node %d: outdegree %d violates M1 bounds or parity@." id d
            end)
          (Sf_net.Cluster.views c);
        if !violations > 0 then begin
          Fmt.epr "cluster views: %d violations@." !violations;
          exit 1
        end;
        Fmt.pr "cluster:     view soundness, M1 bounds and parity all hold@.")
  end;
  Fmt.pr "storm: OK@."

let storm_cmd =
  let n_small =
    Arg.(value & opt int 96 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Simulator nodes.")
  in
  let udp_nodes =
    Arg.(
      value & opt int 48
      & info [ "udp-nodes" ] ~docv:"N" ~doc:"Cluster size for the UDP leg.")
  in
  let base_port =
    Arg.(value & opt int 48100 & info [ "port" ] ~docv:"PORT" ~doc:"First UDP port.")
  in
  let no_udp =
    Arg.(value & flag & info [ "no-udp" ] ~doc:"Skip the UDP cluster leg.")
  in
  let doc =
    "Fault storm: drive a fault scenario (bursty loss, partitions, crash/restart, \
     delay spikes, datagram corruption) through both the discrete-event simulator \
     — under the strict invariant audit — and the real UDP cluster, then verify \
     connectivity (healing a split overlay via the rendezvous recovery rule) and \
     view invariants.  Exit status: 0 when everything holds; 1 on an invariant \
     violation or an unhealable split; 2 when a declared fault class left no \
     injector evidence (the plan never engaged)."
  in
  Cmd.v (Cmd.info "storm" ~doc)
    Term.(
      const storm $ seed_arg $ n_small $ view_size_arg $ lower_threshold_arg
      $ loss_arg $ rounds_arg 70 $ scenario_arg $ udp_nodes $ base_port $ no_udp)

(* --- soak --- *)

(* Sustained bursty loss well above anything the base thresholds were
   solved for, plus a partition and a crash wave: the regime the
   resilience layer exists for.  Rounds are longer than storm's so the
   estimator folds several full windows before the verdict. *)
(* Gate checks shared by `sfg cluster` and the soak --multiproc leg:
   every host completed the shutdown protocol, every node reported a
   view, each view is sound with M1-bounded even outdegree, and the
   merged overlay is weakly connected. *)
let check_cluster_outcome ~(fail : string -> unit) ~hosts ~n ~view_size
    (o : Sf_net.Spawner.outcome) =
  let failf fmt = Fmt.kstr fail fmt in
  let byes =
    List.length (List.filter (fun h -> h.Sf_net.Spawner.bye) o.Sf_net.Spawner.hosts)
  in
  if byes <> hosts then failf "only %d/%d hosts completed the stop protocol" byes hosts;
  let merged = o.Sf_net.Spawner.merged_views in
  let reported = List.length merged in
  if reported <> n then failf "%d/%d nodes reported a final view" reported n;
  let graph = Sf_graph.Digraph.create () in
  List.iter
    (fun (id, entries) ->
      Sf_graph.Digraph.ensure_vertex graph id;
      let view = Sf_core.View.create view_size in
      List.iteri
        (fun slot e ->
          if slot < view_size then begin
            Sf_core.View.set view slot e;
            Sf_graph.Digraph.add_edge graph id e.Sf_core.View.id
          end)
        entries;
      (match Sf_check.Invariant.check_view view with
      | Some v ->
        failf "cluster node %d: %s" id (Fmt.str "%a" Sf_check.Invariant.pp_violation v)
      | None -> ());
      let d = Sf_core.View.degree view in
      if d < 0 || d > view_size || d mod 2 <> 0 then
        failf "cluster node %d: outdegree %d violates M1 bounds or parity" id d)
    merged;
  if reported = n && not (Sf_graph.Digraph.is_weakly_connected graph) then
    fail "merged post-heal overlay is not weakly connected"

let sum_stat key (o : Sf_net.Spawner.outcome) =
  List.fold_left
    (fun acc h ->
      acc
      +. (match List.assoc_opt key h.Sf_net.Spawner.stats with
         | Some v -> v
         | None -> 0.))
    0. o.Sf_net.Spawner.hosts

let max_stat key (o : Sf_net.Spawner.outcome) =
  List.fold_left
    (fun acc h ->
      Float.max acc
        (match List.assoc_opt key h.Sf_net.Spawner.stats with
        | Some v -> v
        | None -> 0.))
    0. o.Sf_net.Spawner.hosts

let declares kind (scenario : Sf_faults.Scenario.t) =
  List.exists
    (fun w -> Sf_faults.Scenario.fault_kind w.Sf_faults.Scenario.fault = kind)
    scenario.Sf_faults.Scenario.windows

let default_soak_scenario = "ge:0.15:6;partition@60-80:2;crash@110-130:0-5"

let soak seed n view_size lower_threshold d_hat delta loss rounds scenario tolerance
    udp_nodes base_port no_udp multiproc =
  let scenario =
    match scenario with
    | Some sc -> sc
    | None -> (
      match Sf_faults.Scenario.of_string default_soak_scenario with
      | Ok sc -> sc
      | Error e -> Fmt.failwith "default soak scenario: %s" e)
  in
  let policy = resilience_policy ~d_hat ~delta () in
  Fmt.pr "scenario:    %s@." (Sf_faults.Scenario.to_string scenario);
  Fmt.pr "-- simulator (resilience on: adaptive retuning + supervised recovery)@.";
  let r =
    make_runner ~scenario ~resilience:policy ~seed ~n ~view_size ~lower_threshold
      ~loss ()
  in
  let stats =
    Sf_check.Invariant.audited_run ~mode:Sf_check.Invariant.Warn r ~rounds
  in
  Fmt.pr "audited:     %d actions, %d full scans, %d violations@."
    stats.Sf_check.Invariant.actions_checked stats.Sf_check.Invariant.full_scans
    stats.Sf_check.Invariant.violation_count;
  List.iter
    (fun v -> Fmt.epr "  %a@." Sf_check.Invariant.pp_violation v)
    (List.rev stats.Sf_check.Invariant.violations);
  (match Runner.fault_statistics r with
  | Some fs -> print_fault_statistics fs
  | None -> ());
  print_resilience_statistics r;
  print_system_state r;
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in
  if stats.Sf_check.Invariant.violation_count > 0 then
    fail "%d invariant violations under the audit"
      stats.Sf_check.Invariant.violation_count;
  if not (Properties.is_weakly_connected r) then begin
    (* The supervisor had its chance during the run; fall back to the
       manual rendezvous rule and count an unhealable split as failure. *)
    match Sf_core.Churn.recover_connectivity r with
    | Some (recovery_rounds, rebootstraps) ->
      Fmt.pr "reconnected after %d extra recovery rounds (%d rebootstraps)@."
        recovery_rounds rebootstraps
    | None -> fail "overlay split and unhealable"
  end;
  (match (Runner.resilience_statistics r, Runner.fault_statistics r) with
  | Some rs, Some fs ->
    if not rs.Runner.estimator_confident then
      fail "loss estimator never folded a full window (%d rounds too short)" rounds
    else begin
      (* Ground truth: the injector's own drop fraction over every cause
         the estimator can see through the Lemma 6.6 balance. *)
      (* burst_drops is the bursty subset of chance_drops — don't double
         count it. *)
      let dropped =
        fs.Sf_faults.Injector.chance_drops + fs.Sf_faults.Injector.partition_drops
        + fs.Sf_faults.Injector.crash_drops + fs.Sf_faults.Injector.corruptions
      in
      let truth =
        if fs.Sf_faults.Injector.judged = 0 then 0.
        else float_of_int dropped /. float_of_int fs.Sf_faults.Injector.judged
      in
      let err = Float.abs (rs.Runner.loss_estimate -. truth) in
      Fmt.pr "estimate:    %.4f vs injector ground truth %.4f (err %.4f)@."
        rs.Runner.loss_estimate truth err;
      if err > tolerance then
        fail "loss estimate %.4f off injector truth %.4f by %.4f > %.2f"
          rs.Runner.loss_estimate truth err tolerance
    end
  | _ -> fail "resilience statistics missing");
  if not no_udp then begin
    Fmt.pr "-- UDP cluster (loopback, crash-restart under resilience)@.";
    let config = Protocol.make_config ~view_size ~lower_threshold in
    let out_degree =
      let d = min (udp_nodes - 1) ((view_size + lower_threshold) / 2) in
      if d mod 2 = 0 then d else d - 1
    in
    let topology =
      Topology.regular (Sf_prng.Rng.create (seed + 1)) ~n:udp_nodes ~out_degree
    in
    let period = 0.005 in
    let c =
      Sf_net.Cluster.create ~period ~scenario ~resilience:policy ~base_port
        ~n:udp_nodes ~config ~loss_rate:loss ~seed ~topology ()
    in
    Fun.protect
      ~finally:(fun () -> Sf_net.Cluster.shutdown c)
      (fun () ->
        Sf_net.Cluster.run c ~duration:(float_of_int rounds *. period);
        let cs = Sf_net.Cluster.statistics c in
        Fmt.pr
          "datagrams:   %d sent, %d dropped, %d received; %d rejoins, %d retunes@."
          cs.Sf_net.Cluster.datagrams_sent cs.Sf_net.Cluster.datagrams_dropped
          cs.Sf_net.Cluster.datagrams_received cs.Sf_net.Cluster.rejoins
          cs.Sf_net.Cluster.retunes;
        if declares "crash" scenario && cs.Sf_net.Cluster.rejoins = 0 then
          fail "crash windows declared but no cluster rejoins";
        Seq.iter
          (fun (id, view) ->
            (match Sf_check.Invariant.check_view view with
            | Some v ->
              fail "cluster node %d: %s" id
                (Fmt.str "%a" Sf_check.Invariant.pp_violation v)
            | None -> ());
            let d = Sf_core.View.degree view in
            if d < 0 || d > view_size || d mod 2 <> 0 then
              fail "cluster node %d: outdegree %d violates M1 bounds or parity" id d)
          (Sf_net.Cluster.views c))
  end;
  if multiproc then begin
    Fmt.pr "-- multi-process cluster (forked node-hosts, kill -9 crash windows)@.";
    let hosts = 4 and per_host = 16 in
    let cfg =
      Sf_net.Spawner.make_config ~view_size ~lower_threshold ~loss_rate:loss
        ~period:0.01 ~log:(fun m -> Fmt.pr "  %s@." m) ~hosts
        ~nodes_per_host:per_host ~base_port:(base_port + 256) ~scenario ~seed
        ~duration:(float_of_int rounds *. 0.01) ()
    in
    let o = Sf_net.Spawner.run cfg in
    Fmt.pr "processes:   %d kills, %d respawns, %d heartbeats, %.1fs wall@."
      o.Sf_net.Spawner.kills o.Sf_net.Spawner.respawns o.Sf_net.Spawner.heartbeats
      o.Sf_net.Spawner.wall_seconds;
    check_cluster_outcome ~fail:(fail "%s") ~hosts ~n:(hosts * per_host) ~view_size o;
    if declares "crash" scenario && o.Sf_net.Spawner.kills = 0 then
      fail "crash windows declared but no host process was killed";
    if declares "partition" scenario && sum_stat "filtered" o = 0. then
      fail "partition windows declared but no datagram was filtered"
  end;
  match List.rev !failures with
  | [] -> Fmt.pr "soak: OK@."
  | failures ->
    List.iter (fun f -> Fmt.epr "soak: %s@." f) failures;
    exit 1

let soak_cmd =
  let n_small =
    Arg.(value & opt int 96 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Simulator nodes.")
  in
  let udp_nodes =
    Arg.(
      value & opt int 48
      & info [ "udp-nodes" ] ~docv:"N" ~doc:"Cluster size for the UDP leg.")
  in
  let base_port =
    Arg.(value & opt int 48400 & info [ "port" ] ~docv:"PORT" ~doc:"First UDP port.")
  in
  let no_udp =
    Arg.(value & flag & info [ "no-udp" ] ~doc:"Skip the UDP cluster leg.")
  in
  let multiproc_arg =
    Arg.(
      value & flag
      & info [ "multiproc" ]
          ~doc:
            "Add a multi-process leg: fork node-host processes via the cluster \
             spawner and run the same scenario across process boundaries, with \
             crash windows realized as real kill -9 plus respawn.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.08
      & info [ "tolerance" ] ~docv:"E"
          ~doc:"Largest allowed |loss estimate - injector ground truth|.")
  in
  let doc =
    "Resilience soak: run the self-healing layer (online loss estimation, \
     adaptive (dL, s) retuning, supervised recovery) under a sustained chaos \
     scenario, through the audited simulator and the real UDP cluster with true \
     crash-restarts.  The verdict requires zero invariant violations, a \
     connected (or healed) overlay, a loss estimate within --tolerance of the \
     injector's ground-truth drop rate, and — when crash windows are declared — \
     at least one cluster rejoin.  Exit status: 0 when the verdict holds, 1 \
     otherwise."
  in
  Cmd.v (Cmd.info "soak" ~doc)
    Term.(
      const soak $ seed_arg $ n_small $ view_size_arg $ lower_threshold_arg
      $ d_hat_arg $ delta_arg $ loss_arg $ rounds_arg 200 $ scenario_arg $ tolerance
      $ udp_nodes $ base_port $ no_udp $ multiproc_arg)

(* --- cluster: the multi-process UDP deployment --- *)

let cluster seed hosts per_host view_size lower_threshold loss scenario base_port
    rounds codec no_resilience quiet =
  let n = hosts * per_host in
  let period = 0.01 in
  let scenario =
    match scenario with
    | Some sc -> sc
    | None ->
      (* Bursty loss throughout, plus a real kill -9 of host 1's slice for
         a fifth of the run. *)
      let spec =
        Fmt.str "ge:0.15:6;crash@%d-%d:%d-%d" (rounds * 2 / 10) (rounds * 4 / 10)
          per_host
          (min (n - 1) ((2 * per_host) - 1))
      in
      (match Sf_faults.Scenario.of_string spec with
      | Ok sc -> sc
      | Error e -> Fmt.failwith "default cluster scenario: %s" e)
  in
  let version_of_host =
    match codec with
    | "v1" -> fun _ -> 1
    | "v2" -> fun _ -> 2
    | "mixed" -> fun i -> if i mod 2 = 0 then 2 else 1
    | other -> Fmt.failwith "unknown --codec %s (expected v1, v2 or mixed)" other
  in
  Fmt.pr "cluster:     %d node-hosts x %d nodes = %d real sockets, codec %s@."
    hosts per_host n codec;
  Fmt.pr "scenario:    %s@." (Sf_faults.Scenario.to_string scenario);
  let cfg =
    Sf_net.Spawner.make_config ~view_size ~lower_threshold ~loss_rate:loss
      ~period ~version_of_host ~resilience:(not no_resilience)
      ~log:(if quiet then fun _ -> () else fun m -> Fmt.pr "  %s@." m)
      ~hosts ~nodes_per_host:per_host ~base_port ~scenario ~seed
      ~duration:(float_of_int rounds *. period) ()
  in
  let o = Sf_net.Spawner.run cfg in
  let emitted = sum_stat "emitted" o in
  let batches = sum_stat "batches" o in
  let frames = sum_stat "frames" o in
  let fill =
    if batches > 0. then frames /. (batches *. float_of_int Sf_net.Codec.max_batch)
    else 0.
  in
  Fmt.pr
    "processes:   %d kills, %d respawns (%d heartbeat timeouts, %d unexpected \
     deaths), %d heartbeats@."
    o.Sf_net.Spawner.kills o.Sf_net.Spawner.respawns o.Sf_net.Spawner.hb_timeouts
    o.Sf_net.Spawner.unexpected_deaths o.Sf_net.Spawner.heartbeats;
  Fmt.pr
    "wire:        %.0f datagrams (%.0f/s), %.0f batches carrying %.0f frames \
     (fill %.2f), %.0f hellos@."
    emitted
    (emitted /. Float.max o.Sf_net.Spawner.wall_seconds 1e-9)
    batches frames fill
    (sum_stat "hellos_sent" o);
  Fmt.pr "latency:     per-action p50 %.1fus, p99 %.1fus (worst host)@."
    (max_stat "p50_us" o) (max_stat "p99_us" o);
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in
  check_cluster_outcome ~fail:(fail "%s") ~hosts ~n ~view_size o;
  (* A declared fault class that left no process-level evidence is a dead
     injector, not an invariant violation: distinct exit code, as in
     storm/scale. *)
  let dead = ref [] in
  if declares "crash" scenario then begin
    if o.Sf_net.Spawner.kills = 0 then
      dead := "crash windows declared but no host was killed" :: !dead;
    if o.Sf_net.Spawner.respawns = 0 then
      dead := "crash windows declared but no host was respawned" :: !dead
  end;
  if declares "partition" scenario && sum_stat "filtered" o = 0. then
    dead := "partition windows declared but no datagram was filtered" :: !dead;
  match (List.rev !failures, List.rev !dead) with
  | [], [] -> Fmt.pr "cluster: OK@."
  | [], dead ->
    List.iter (fun d -> Fmt.epr "cluster: %s@." d) dead;
    exit 2
  | failures, dead ->
    List.iter (fun f -> Fmt.epr "cluster: %s@." f) failures;
    List.iter (fun d -> Fmt.epr "cluster: %s@." d) dead;
    exit 1

let cluster_cmd =
  let hosts =
    Arg.(
      value & opt int 8
      & info [ "hosts" ] ~docv:"H" ~doc:"Node-host processes to fork.")
  in
  let per_host =
    Arg.(
      value & opt int 32
      & info [ "per-host" ] ~docv:"K" ~doc:"Nodes (UDP sockets) per host.")
  in
  let base_port =
    Arg.(
      value & opt int 47_200
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "First node port; node i binds PORT+i, control sockets sit just \
             below PORT.")
  in
  let codec =
    Arg.(
      value & opt string "v2"
      & info [ "codec" ] ~docv:"V"
          ~doc:
            "Wire version per host: v1 (historical), v2 (batching), or mixed \
             (alternating hosts, exercising per-peer downgrade).")
  in
  let no_resilience =
    Arg.(
      value & flag
      & info [ "no-resilience" ] ~doc:"Disable retuning and supervised repair.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress controller progress lines.")
  in
  let view_size =
    Arg.(
      value & opt int 12
      & info [ "s"; "view-size" ] ~docv:"S" ~doc:"View size s (even).")
  in
  let lower_threshold =
    Arg.(
      value & opt int 4
      & info [ "dl"; "lower-threshold" ] ~docv:"DL"
          ~doc:"Lower outdegree threshold dL (even).")
  in
  let doc =
    "Multi-process UDP cluster: fork node-host processes (one select loop and \
     one socket per node each), drive a fault scenario across process \
     boundaries — crash windows are real kill -9 plus controller respawn, \
     partitions are per-process drop filters — and gate on the merged result: \
     every host completes the stop protocol, every node reports a sound view \
     with even M1-bounded outdegree, and the merged overlay is weakly \
     connected.  Exit status: 1 when the verdict fails, 2 when a declared \
     fault class left no process-level evidence."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const cluster $ seed_arg $ hosts $ per_host $ view_size $ lower_threshold
      $ loss_arg $ scenario_arg $ base_port $ rounds_arg 200 $ codec
      $ no_resilience $ quiet)

(* --- sessions --- *)

let sessions seed n view_size lower_threshold loss rounds mean_lifetime pareto =
  let r = make_runner ~seed ~n ~view_size ~lower_threshold ~loss () in
  Runner.run_rounds r 100;
  let lifetime =
    if pareto then
      (* shape 1.5 with matching mean: minimum = mean / 3. *)
      Sf_core.Sessions.Pareto { shape = 1.5; minimum = mean_lifetime /. 3. }
    else Sf_core.Sessions.Exponential mean_lifetime
  in
  let arrival_rate = float_of_int n /. mean_lifetime in
  let driver =
    Sf_core.Sessions.create ~runner:r ~seed:(seed + 5) ~lifetime ~arrival_rate ()
  in
  Fmt.pr "session churn: %s lifetimes, mean %.0f rounds, %.2f arrivals/round@."
    (if pareto then "Pareto(1.5)" else "exponential")
    mean_lifetime arrival_rate;
  Sf_core.Sessions.run driver ~rounds;
  let stats = Sf_core.Sessions.statistics driver in
  Fmt.pr "rounds: %d, population: %d, joins: %d, leaves: %d, reconnections: %d@."
    stats.Sf_core.Sessions.rounds stats.Sf_core.Sessions.population
    stats.Sf_core.Sessions.joins stats.Sf_core.Sessions.leaves
    stats.Sf_core.Sessions.reconnections;
  print_system_state r

let sessions_cmd =
  let mean =
    Arg.(value & opt float 200. & info [ "mean-lifetime" ] ~docv:"R"
           ~doc:"Mean session length in rounds.")
  in
  let pareto =
    Arg.(value & flag & info [ "pareto" ] ~doc:"Heavy-tailed Pareto(1.5) lifetimes.")
  in
  let doc = "Run S&F under session-based churn (Poisson arrivals)." in
  Cmd.v (Cmd.info "sessions" ~doc)
    Term.(
      const sessions $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg
      $ loss_arg $ rounds_arg 400 $ mean $ pareto)

(* --- spread --- *)

let strategy_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Sf_spread.Strategy.of_string s) in
  Arg.conv ~docv:"STRATEGY" (parse, Sf_spread.Strategy.pp)

let print_spread_report n (r : Sf_spread.Report.t) =
  (match r.Sf_spread.Report.rounds_to_half with
  | Some rounds -> Fmt.pr "rounds to 50%%: %d@." rounds
  | None -> Fmt.pr "rounds to 50%%: not reached@.");
  (match r.Sf_spread.Report.rounds_to_target with
  | Some rounds ->
    Fmt.pr "rounds to target: %d  (log2 n = %.1f)@." rounds
      (log (float_of_int n) /. log 2.)
  | None -> Fmt.pr "rounds to target: not reached@.");
  Fmt.pr "messages: %d (pushes %d, requests %d), duplicates %d, lost %d, to \
          dead slots %d@."
    r.Sf_spread.Report.messages r.Sf_spread.Report.pushes
    r.Sf_spread.Report.requests r.Sf_spread.Report.duplicates
    r.Sf_spread.Report.lost r.Sf_spread.Report.to_dead;
  Sf_stats.Ascii_plot.series Fmt.stdout
    ("live coverage per round", r.Sf_spread.Report.coverage)

(* The sequential engine: rumor over an orchestrated runner's views. *)
let spread_sequential ~seed ~n ~view_size ~lower_threshold ~loss ~scenario
    ~warmup ~strategy ~fanout ~target ~max_rounds =
  let r = make_runner ?scenario ~seed ~n ~view_size ~lower_threshold ~loss () in
  Runner.run_rounds r warmup;
  let rng = Sf_prng.Rng.create (seed + 6) in
  Sf_spread.Sequential.run ~coverage_target:target ~max_rounds ~strategy
    ~fanout ~source:0 r rng

(* The flat engine: rumor layered on the sharded million-node runner. *)
let spread_flat ~seed ~n ~view_size ~lower_threshold ~loss ~scenario ~churn
    ~shards ~domains ~warmup ~strategy ~fanout ~target ~max_rounds ()
  =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  (* The scattered start mixes in O(log n) rounds; the ring start would
     keep the rumor crawling a 1-D cycle for thousands of rounds. *)
  let w =
    Runner.Sharded.create ~shards ~loss_rate:loss ~init:Runner.Sharded.Scatter
      ?scenario ?churn ~seed ~n ~config ()
  in
  Runner.Sharded.run_rounds w ~domains warmup;
  let sp =
    Sf_spread.Flat.create ~coverage_target:target ~fanout ~strategy ~source:0
      ~seed:(seed + 6) w
  in
  let report = Sf_spread.Flat.run ~max_rounds ~domains sp in
  (sp, report)

let spread seed n view_size lower_threshold loss scenario churn_rate headroom
    shards domains verify_domains seq warmup strategy fanout target max_rounds
    =
  let churn =
    if churn_rate > 0. then Some { Runner.Sharded.churn_rate; headroom }
    else None
  in
  let domains =
    match domains with
    | Some d -> d
    | None -> max 1 (min shards (Domain.recommended_domain_count ()))
  in
  Fmt.pr "spread: %a fanout=%d n=%d target=%.2f loss=%g seed=%d %s@."
    Sf_spread.Strategy.pp strategy fanout n target loss seed
    (if seq then "(sequential engine)"
     else Fmt.str "shards=%d domains=%d" shards domains);
  (match scenario with
  | Some sc -> Fmt.pr "scenario: %a@." Sf_faults.Scenario.pp sc
  | None -> ());
  let failed = ref false in
  let report =
    if seq then
      spread_sequential ~seed ~n ~view_size ~lower_threshold ~loss ~scenario
        ~warmup ~strategy ~fanout ~target ~max_rounds
    else begin
      (* Domain-count invariance of the layered engines: replay the whole
         run (membership + spread) on 1, 2 and 4 domains and require
         bit-for-bit equal end states. *)
      if verify_domains then
        List.iter
          (fun k ->
            let run () =
              spread_flat ~seed ~n ~view_size ~lower_threshold ~loss ~scenario
                ~churn ~shards ~domains:k ~warmup ~strategy ~fanout ~target
                ~max_rounds ()
            in
            let sp1, r1 =
              spread_flat ~seed ~n ~view_size ~lower_threshold ~loss ~scenario
                ~churn ~shards ~domains:1 ~warmup ~strategy ~fanout ~target
                ~max_rounds ()
            in
            let spk, rk = run () in
            let ok =
              Sf_spread.Flat.equal sp1 spk && Sf_spread.Report.equal r1 rk
            in
            Fmt.pr "determinism: %d-domain spread %s the 1-domain spread@." k
              (if ok then "bit-identical to" else "DIVERGES from");
            if not ok then failed := true)
          [ 2; 4 ];
      let sp, report =
        spread_flat ~seed ~n ~view_size ~lower_threshold ~loss ~scenario ~churn
          ~shards ~domains ~warmup ~strategy ~fanout ~target ~max_rounds ()
      in
      (* Injector verdict over the world's own traffic, matching storm's
         exit-code convention. *)
      (match
         (scenario, Runner.Sharded.fault_statistics (Sf_spread.Flat.world sp))
       with
      | None, _ -> ()
      | Some _, None ->
        Fmt.epr "spread: scenario declared but no injector statistics@.";
        exit 2
      | Some sc, Some fs ->
        (match dead_fault_classes ~scenario:sc fs with
        | [] -> ()
        | failures ->
          List.iter (fun f -> Fmt.epr "spread: injector verdict: %s@." f) failures;
          exit 2));
      report
    end
  in
  print_spread_report n report;
  if not (Sf_spread.Report.reached report) then begin
    Fmt.epr "spread: coverage target %.2f not reached in %d rounds@." target
      max_rounds;
    failed := true
  end;
  if !failed then exit 1

let spread_cmd =
  let strategy =
    Arg.(
      value
      & opt strategy_conv Sf_spread.Strategy.Push
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Spreading discipline: $(b,push) (informed nodes push to view \
             samples), $(b,push-pull) (uninformed nodes also pull — O(log n) \
             completion even under constant loss), or $(b,direct) (messages \
             carry learned addresses; informed nodes contact them directly, \
             outside the current view, and never re-contact recent peers).")
  in
  let fanout =
    Arg.(
      value & opt int 2
      & info [ "fanout" ] ~docv:"K"
          ~doc:"Spread messages per node per round.")
  in
  let n =
    Arg.(
      value & opt int 10_000
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let view_size =
    Arg.(
      value & opt int 16
      & info [ "s"; "view-size" ] ~docv:"S" ~doc:"View size s (even).")
  in
  let lower_threshold =
    Arg.(
      value & opt int 4
      & info [ "dl"; "lower-threshold" ] ~docv:"DL"
          ~doc:"Lower outdegree threshold dL (even).")
  in
  let shards =
    Arg.(
      value & opt int 16
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Logical shard count of the flat engine — part of the run's \
             identity (changing it changes the run; changing --domains does \
             not).")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "Domains to run on (default: the recommended domain count, capped \
             at the shard count).  Any value produces the same run.")
  in
  let verify_domains =
    Arg.(
      value & flag
      & info [ "verify-domains" ]
          ~doc:
            "Replay the whole run (membership + spread) on 1, 2 and 4 domains \
             and require bit-for-bit equal end states; exit 1 on divergence.")
  in
  let seq =
    Arg.(
      value & flag
      & info [ "seq" ]
          ~doc:
            "Use the sequential engine (orchestrated runner) instead of the \
             sharded flat-state engine.")
  in
  let churn_rate =
    Arg.(
      value & opt float 0.
      & info [ "churn" ] ~docv:"RATE"
          ~doc:
            "Per-round leave probability of each live node (flat engine); \
             every leave is matched by a join.")
  in
  let headroom =
    Arg.(
      value & opt int 1024
      & info [ "headroom" ] ~docv:"SLOTS"
          ~doc:"Extra node slots for churn beyond n (flat engine).")
  in
  let warmup =
    Arg.(
      value & opt int 20
      & info [ "warmup" ] ~docv:"R"
          ~doc:"Membership rounds to run before the rumor starts.")
  in
  let target =
    Arg.(
      value & opt float 0.99
      & info [ "target" ] ~docv:"F" ~doc:"Live-coverage target in (0, 1].")
  in
  let max_rounds =
    Arg.(
      value & opt int 200
      & info [ "max-rounds" ] ~docv:"R"
          ~doc:"Spreading-round budget.")
  in
  let doc =
    "Spread a rumor over the live, evolving S&F views — push, push-pull or \
     direct-addressed — on the sequential or the sharded million-node \
     engine, under the shared fault pipeline (bursty loss, partitions, \
     crashes) and churn.  Exit status: 1 when the coverage target is not \
     reached or a determinism cross-check fails, 2 when a declared fault \
     class left no evidence in the injector counters."
  in
  Cmd.v (Cmd.info "spread" ~doc)
    Term.(
      const spread $ seed_arg $ n $ view_size $ lower_threshold $ loss_arg
      $ scenario_arg $ churn_rate $ headroom $ shards $ domains
      $ verify_domains $ seq $ warmup $ strategy $ fanout $ target $ max_rounds)

(* --- top --- *)

let format_conv =
  Arg.enum [ ("prom", `Prom); ("csv", `Csv); ("json", `Json) ]

let print_metrics format metrics =
  match format with
  | `Prom -> print_string (Sf_obs.Metrics.to_prometheus metrics)
  | `Csv -> print_string (Sf_obs.Metrics.to_csv metrics)
  | `Json ->
    print_string (Sf_obs.Json.to_string (Sf_obs.Metrics.to_json metrics));
    print_newline ()

let top seed n view_size lower_threshold loss rounds every format once scenario =
  let metrics = Sf_obs.Metrics.create () in
  let obs = Sf_obs.Obs.create ~metrics () in
  let r = make_runner ?scenario ~obs ~seed ~n ~view_size ~lower_threshold ~loss () in
  if once then begin
    Runner.run_rounds r rounds;
    print_metrics format metrics
  end
  else begin
    (* Refresh is keyed to simulation rounds, not wall time, so the output
       for a given seed is reproducible. *)
    let completed = ref 0 in
    while !completed < rounds do
      let chunk = min every (rounds - !completed) in
      Runner.run_rounds r chunk;
      completed := !completed + chunk;
      Fmt.pr "-- after %d/%d rounds@." !completed rounds;
      print_metrics format metrics
    done
  end

let top_cmd =
  let every =
    Arg.(
      value & opt int 100
      & info [ "every" ] ~docv:"K" ~doc:"Rounds between snapshots.")
  in
  let format =
    Arg.(
      value & opt format_conv `Prom
      & info [ "format" ] ~docv:"FMT" ~doc:"Snapshot format: prom, csv or json.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print a single snapshot after the full run and exit.")
  in
  let doc =
    "Run an instrumented S\\&F system and print registry snapshots (counters, \
     gauges, span histograms) in Prometheus text, CSV or JSON format.  Snapshots \
     are taken every K simulated rounds, so equal seeds print equal bytes."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const top $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ rounds_arg 400 $ every $ format $ once $ scenario_arg)

(* --- trace --- *)

let trace seed n view_size lower_threshold loss rounds capacity out scenario =
  let tracer = Sf_obs.Trace.create ~capacity in
  let obs = Sf_obs.Obs.create ~tracer () in
  let r = make_runner ?scenario ~obs ~seed ~n ~view_size ~lower_threshold ~loss () in
  Runner.run_rounds r rounds;
  let dump = Sf_obs.Trace.to_jsonl tracer in
  (* The JSONL goes to the file or stdout unadorned — equal seeds must dump
     byte-identical traces; accounting goes to stderr. *)
  (match out with
  | Some path -> Out_channel.with_open_text path (fun oc -> output_string oc dump)
  | None -> print_string dump);
  Fmt.epr "trace: %d recorded, %d held, %d dropped to wraparound%a@."
    (Sf_obs.Trace.recorded tracer)
    (Sf_obs.Trace.length tracer)
    (Sf_obs.Trace.dropped tracer)
    Fmt.(option (fun ppf p -> Fmt.pf ppf ", wrote %s" p))
    out

let trace_cmd =
  let capacity =
    Arg.(
      value & opt int 65536
      & info [ "capacity" ] ~docv:"C" ~doc:"Ring-buffer capacity in records.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the JSONL dump here instead of stdout.")
  in
  let doc =
    "Run a traced S\\&F system and dump the event ring (send, deliver, drop, \
     duplicate, delete, timer, fault transitions) as JSONL.  Records are stamped \
     with the injected simulation clock: equal seeds dump byte-identical traces."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace $ seed_arg $ n_arg $ view_size_arg $ lower_threshold_arg $ loss_arg
      $ rounds_arg 50 $ capacity $ out $ scenario_arg)

(* --- analyze: the shared-mutable-state report --- *)

module Passes = Sf_analyze_passes.Analyze_passes

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk_sources acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "_build" || (String.length name > 0 && name.[0] = '.') then acc
        else walk_sources acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let analyze dirs baseline_file json =
  let dirs = if dirs = [] then [ "lib"; "bin"; "bench"; "tool" ] else dirs in
  let missing = List.filter (fun d -> not (Sys.file_exists d)) dirs in
  if missing <> [] then begin
    Fmt.epr "sfg analyze: no such directory: %s (run from the repo root)@."
      (String.concat ", " missing);
    exit 2
  end;
  let baseline =
    match baseline_file with
    | Some file when Sys.file_exists file -> (
      match Passes.parse_baseline (read_file file) with
      | Ok entries -> entries
      | Error msg ->
        Fmt.epr "sfg analyze: %s@." msg;
        exit 2)
    | _ -> []
  in
  let paths =
    List.fold_left walk_sources [] dirs |> List.sort_uniq compare
  in
  let files = List.map (fun p -> (p, read_file p)) paths in
  let analysis = Passes.analyze_files files in
  let kept, stale = Passes.apply_baseline baseline analysis in
  if json then
    Fmt.pr "%s@." (Sf_obs.Json.to_string (Passes.report_json ~kept analysis))
  else begin
    Fmt.pr "Shared mutable state (%d files analyzed)@." analysis.parsed_files;
    if analysis.hazards = [] then
      Fmt.pr "  no module-level mutable bindings — the tree is domain-shardable@."
    else begin
      Fmt.pr "  %-34s %-5s %-22s %-14s %s@." "path" "line" "binding" "kind"
        "classified";
      List.iter
        (fun (h : Passes.hazard) ->
          Fmt.pr "  %-34s %-5d %-22s %-14s %s@." h.h_path h.h_line h.h_ident
            h.h_kind
            (if h.h_classified then "yes (baseline)" else "NO — blocker"))
        analysis.hazards
    end;
    let safe_total = List.fold_left (fun a (_, c) -> a + c) 0 analysis.safe_sites in
    Fmt.pr
      "  %d per-instance allocation sites under constructors (domain-safe)@."
      safe_total;
    Fmt.pr "@.Effect signatures: %d effectful, %d pure toplevel functions@."
      (List.length analysis.effect_sigs)
      analysis.pure_functions;
    let count p = List.length (List.filter p analysis.effect_sigs) in
    Fmt.pr "  mut %d · rand %d · clock %d · io %d · raise %d@."
      (count (fun e -> e.Passes.e_effects.Passes.mutation))
      (count (fun e -> e.Passes.e_effects.Passes.randomness))
      (count (fun e -> e.Passes.e_effects.Passes.clock))
      (count (fun e -> e.Passes.e_effects.Passes.io))
      (count (fun e -> e.Passes.e_effects.Passes.raises));
    if kept <> [] then begin
      Fmt.pr "@.Findings not covered by the baseline:@.";
      List.iter (fun f -> Fmt.pr "  %a@." Passes.pp_finding f) kept
    end;
    if stale <> [] then
      List.iter
        (fun (e : Passes.baseline_entry) ->
          Fmt.pr "  stale baseline entry: %s %s@." e.allow_path e.allow_rule)
        stale
  end;
  if kept <> [] || stale <> [] then exit 1

let analyze_cmd =
  let dirs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"DIR" ~doc:"Directories to analyze (default: lib bin bench tool).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) (Some "analyze.baseline")
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline file (sf_lint allowlist contract); ignored if absent.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full machine-readable report.")
  in
  let doc =
    "Print the AST-grade static analysis report: the shared-mutable-state \
     inventory gating the Domain-sharding refactor (module-level refs, \
     tables, arrays, lazies — classified against the baseline), per-function \
     effect signatures, and any findings the baseline does not cover.  \
     Exits 1 on uncovered findings or stale baseline entries, 2 on usage \
     errors."
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ dirs $ baseline $ json)

(* --- scale --- *)

(* The sharded flat-state engine from the CLI: time a bulk-synchronous run
   at the requested n — optionally under a fault scenario, join/leave
   churn and the adaptive resilience stack — with the strict round-granular
   audit and/or a domain-count determinism cross-check on demand. *)
let scale seed n view_size lower_threshold loss rounds domains shards audit
    verify_domains scenario churn_rate headroom resilience d_hat delta =
  let config = Protocol.make_config ~view_size ~lower_threshold in
  let churn =
    if churn_rate > 0. then
      Some { Runner.Sharded.churn_rate; headroom }
    else None
  in
  let policy () =
    if resilience then Some (resilience_policy ~d_hat ~delta ()) else None
  in
  let make () =
    Runner.Sharded.create ~shards ~loss_rate:loss ?scenario ?churn
      ?resilience:(policy ()) ~seed ~n ~config ()
  in
  let domains =
    match domains with
    | Some d -> d
    | None -> max 1 (min shards (Domain.recommended_domain_count ()))
  in
  Fmt.pr "sharded run: n=%d s=%d dL=%d shards=%d domains=%d loss=%g seed=%d@." n
    view_size lower_threshold shards domains loss seed;
  (match scenario with
  | Some sc -> Fmt.pr "scenario:    %a@." Sf_faults.Scenario.pp sc
  | None -> ());
  (match churn with
  | Some c ->
    Fmt.pr "churn:       %.3f per round, headroom %d@." c.Runner.Sharded.churn_rate
      c.Runner.Sharded.headroom
  | None -> ());
  let failed = ref false in
  if audit then begin
    let w = make () in
    match
      Sf_check.Invariant.audited_sharded_run ~mode:Sf_check.Invariant.Warn
        ~scan_every:10 ~domains w ~rounds
    with
    | stats ->
      Fmt.pr "audit: %d rounds checked, %d full scans, %d violations@."
        stats.Sf_check.Invariant.actions_checked
        stats.Sf_check.Invariant.full_scans
        stats.Sf_check.Invariant.violation_count;
      List.iter
        (fun v -> Fmt.pr "  %a@." Sf_check.Invariant.pp_violation v)
        (List.rev stats.Sf_check.Invariant.violations);
      if stats.Sf_check.Invariant.violation_count > 0 then failed := true
  end;
  (match verify_domains with
  | None -> ()
  | Some k ->
    let oracle what make =
      let a = make () and b = make () in
      Runner.Sharded.run_rounds a ~domains:1 rounds;
      Runner.Sharded.run_rounds b ~domains:k rounds;
      let ok = Runner.Sharded.equal a b in
      Fmt.pr "determinism: %s: %d-domain run %s the 1-domain run@." what k
        (if ok then "bit-identical to" else "DIVERGES from");
      if not ok then failed := true
    in
    oracle "active config" make;
    (* The cross-check must also hold where it is hardest: stateful
       per-shard loss chains, a crash wave and churn all at once.  Run a
       canned chaos world even when the active config is fault-free. *)
    let canned =
      match
        Sf_faults.Scenario.of_string
          (Fmt.str "ge:0.2:8;crash@2-6:0-%d" (max 1 (n / 10) - 1))
      with
      | Ok sc -> sc
      | Error e -> invalid_arg ("scale: canned chaos scenario: " ^ e)
    in
    oracle "canned chaos" (fun () ->
        Runner.Sharded.create ~shards ~seed ~n ~config ~scenario:canned
          ~churn:{ Runner.Sharded.churn_rate = 0.01; headroom = shards * 8 }
          ()));
  let w = make () in
  let elapsed = Sf_obs.Clock.stopwatch ~clock:Sf_obs.Clock.wall in
  Runner.Sharded.run_rounds w ~domains rounds;
  let seconds = elapsed () in
  let c = Runner.Sharded.world_counters w in
  let rate =
    if seconds > 0. then float_of_int c.Runner.actions /. seconds else 0.
  in
  Fmt.pr "%d rounds in %.3fs: %.0f actions/s@." rounds seconds rate;
  Fmt.pr "actions:      %d@." c.Runner.actions;
  Fmt.pr "self-loops:   %d@." c.Runner.self_loops;
  Fmt.pr "sends:        %d@." c.Runner.sends;
  Fmt.pr "duplications: %d@." c.Runner.duplications;
  Fmt.pr "receipts:     %d@." c.Runner.receipts;
  Fmt.pr "deletions:    %d@." c.Runner.deletions;
  Fmt.pr "lost:         %d@." c.Runner.messages_lost;
  Fmt.pr "mean degree:  %.2f@."
    (float_of_int (Runner.Sharded.total_edges w) /. float_of_int n);
  let census = Census.of_flat (Runner.Sharded.store w) in
  Fmt.pr "census:       %a@." Census.pp census;
  (match Runner.Sharded.fault_statistics w with
  | Some fs -> print_fault_statistics fs
  | None -> ());
  (match churn with
  | Some _ ->
    let cs = Runner.Sharded.churn_statistics w in
    Fmt.pr
      "churn:       %d joins, %d leaves, %d donor-starved skips, %d deliveries \
       to dead slots; %d live@."
      cs.Runner.Sharded.joins cs.Runner.Sharded.leaves
      cs.Runner.Sharded.join_skips cs.Runner.Sharded.deliveries_to_dead
      (Runner.Sharded.live_count w)
  | None -> ());
  (match Runner.Sharded.resilience_statistics w with
  | Some rs ->
    print_resilience_stats rs;
    let dl, s = Runner.Sharded.live_thresholds w in
    Fmt.pr "thresholds:  dL=%d s=%d@." dl s
  | None -> ());
  (match Sf_obs.Clock.peak_rss_kb () with
  | Some kb -> Fmt.pr "peak RSS:     %d kB@." kb
  | None -> ());
  (* Injector verdict, matching storm's exit-code convention. *)
  (match (scenario, Runner.Sharded.fault_statistics w) with
  | None, _ -> ()
  | Some _, None ->
    Fmt.epr "scale: scenario declared but no injector statistics@.";
    exit 2
  | Some sc, Some fs ->
    (match dead_fault_classes ~scenario:sc fs with
    | [] -> ()
    | failures ->
      List.iter (fun f -> Fmt.epr "scale: injector verdict: %s@." f) failures;
      exit 2));
  if !failed then exit 1

let scale_cmd =
  let n =
    Arg.(
      value & opt int 100_000
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let view_size =
    Arg.(
      value & opt int 16
      & info [ "s"; "view-size" ] ~docv:"S" ~doc:"View size s (even).")
  in
  let lower_threshold =
    Arg.(
      value & opt int 4
      & info [ "dl"; "lower-threshold" ] ~docv:"DL"
          ~doc:"Lower outdegree threshold dL (even).")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "Domains to run on (default: the recommended domain count, capped \
             at the shard count).  Any value produces the same run.")
  in
  let shards =
    Arg.(
      value & opt int 16
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Logical shard count — part of the world's identity (changing it \
             changes the run; changing --domains does not).")
  in
  let audit =
    Arg.(
      value & flag
      & info [ "audit" ]
          ~doc:
            "First replay the run under the round-granular invariant audit \
             (edge-conservation ledger every round, full structural scans); \
             exit 1 on any violation.")
  in
  let verify_domains =
    Arg.(
      value & opt (some int) None
      & info [ "verify-domains" ] ~docv:"K"
          ~doc:
            "Run the active world AND a canned chaos world (bursty loss, a \
             crash wave, churn) on 1 and on K domains and require bit-for-bit \
             equality; exit 1 on divergence.")
  in
  let churn_rate =
    Arg.(
      value & opt float 0.
      & info [ "churn" ] ~docv:"RATE"
          ~doc:
            "Per-round leave probability of each live node; every leave is \
             matched by a join, keeping the population stationary under RATE \
             turnover.")
  in
  let headroom =
    Arg.(
      value & opt int 1024
      & info [ "headroom" ] ~docv:"SLOTS"
          ~doc:
            "Extra node slots for churn beyond n (depth of the id-reuse \
             delay), rounded up to a multiple of the shard count.")
  in
  let resilience =
    Arg.(
      value & flag
      & info [ "resilience" ]
          ~doc:
            "Run the adaptive resilience stack at round barriers: loss \
             estimation, threshold retuning and supervised connectivity \
             repair.")
  in
  let doc =
    "Run the sharded flat-state engine (packed views, OCaml 5 domains, \
     bulk-synchronous rounds) at large n and report throughput, counters, \
     dependence census and peak RSS.  Options add fault scenarios, churn and \
     the adaptive resilience stack, and cross-check the strict invariant \
     audit and the domain-count determinism contract.  Exit status: 1 on an \
     audit or determinism failure, 2 when a declared fault class left no \
     evidence in the injector counters."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const scale $ seed_arg $ n $ view_size $ lower_threshold $ loss_arg
      $ rounds_arg 10 $ domains $ shards $ audit $ verify_domains
      $ scenario_arg $ churn_rate $ headroom $ resilience $ d_hat_arg
      $ delta_arg)

(* --- main --- *)

let () =
  let doc = "Send & Forget gossip membership: protocol, analysis, experiments." in
  let info = Cmd.info "sfg" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        simulate_cmd;
        degree_mc_cmd;
        thresholds_cmd;
        decay_cmd;
        alpha_cmd;
        temporal_cmd;
        connectivity_cmd;
        churn_cmd;
        baselines_cmd;
        global_mc_cmd;
        walk_cmd;
        quality_cmd;
        mixing_cmd;
        check_cmd;
        storm_cmd;
        soak_cmd;
        cluster_cmd;
        udp_cmd;
        sessions_cmd;
        spread_cmd;
        top_cmd;
        trace_cmd;
        scale_cmd;
        analyze_cmd;
      ]
  in
  exit (Cmd.eval group)
