(* The cluster controller: fork node-host processes, watch them, hurt
   them, heal them, and collect what is left.

   This is the only module in the tree allowed to touch process-control
   primitives (Unix.create_process / Unix.kill / Unix.waitpid — enforced
   by the sf_lint [no-raw-process] rule): every other layer reasons about
   nodes and datagrams, and only the spawner turns a fault plan's crash
   window into an actual SIGKILL of an actual address space.

   Scenario realization across process boundaries:

   - the loss model (iid / Gilbert–Elliott) is per-process: each host
     injects it at its own senders, exactly as the single-process cluster
     does;
   - [partition@A-B:K] becomes a [filter K] datagram to every host's
     control socket at round A and [filter off] at round B — each host
     drops cross-block datagrams by the same block arithmetic, so the
     partition is globally consistent with no shared state;
   - [crash@A-B:LO-HI] becomes SIGKILL of every host whose slice
     intersects [LO, HI] at round A, and a fresh spawn of the same slice
     at round B.  Nothing of the killed process survives: its sockets
     close (later datagrams bounce off dead ports), its views are gone,
     and the respawned host rejoins from the seed topology like any
     newborn — the survivors' resilience machinery does the rest;
   - delay/corrupt windows have no cross-process realization and are
     rejected.

   Liveness: every host heartbeats a UDP datagram to the controller.  A
   host silent past the timeout is presumed wedged, killed, and respawned
   under capped exponential {!Sf_resil.Backoff} (jitter from an injected
   PRNG, delays in rounds) — as is a host that dies on its own.  The
   controller never sleeps on a backoff: respawns are scheduled on the
   event-loop clock.

   Shutdown: respawn whatever is down (so every slice reports), lift
   filters, send [stop] on stdin and control sockets, then collect each
   host's view/stats/bye lines, escalating SIGTERM → SIGKILL on the
   stragglers. *)

type host_outcome = {
  index : int;
  views : (int * Sf_core.View.entry list) list;
  stats : (string * float) list;
  bye : bool;
  respawns : int;
}

type outcome = {
  hosts : host_outcome list;
  merged_views : (int * Sf_core.View.entry list) list;
  heartbeats : int;
  kills : int;       (* deliberate SIGKILLs (crash windows + wedged hosts) *)
  respawns : int;
  hb_timeouts : int;
  unexpected_deaths : int;
  wall_seconds : float;
}

type host_state = {
  idx : int;
  mutable pid : int;
  mutable stdin_w : Unix.file_descr;
  mutable stdout_r : Unix.file_descr;
  mutable reader : unit -> unit;
  mutable last_hb : float;
  (* Running | killed by a crash window until a round | waiting for a
     backed-off respawn at a wall time. *)
  mutable phase : [ `Running | `Crashed_until of float | `Respawn_at of float ];
  mutable views : (int * Sf_core.View.entry list) list;
  mutable stats : (string * float) list;
  mutable bye : bool;
  mutable respawned : int;
  backoff : Sf_resil.Backoff.t;
}

let parse_entry s =
  match String.split_on_char ':' s with
  | [ id; serial; anchor; born ] -> (
    match
      ( int_of_string_opt id,
        int_of_string_opt serial,
        int_of_string_opt anchor,
        int_of_string_opt born )
    with
    | Some id, Some serial, Some anchor, Some born ->
      Some
        {
          Sf_core.View.id;
          serial;
          anchor = (if anchor < 0 then None else Some anchor);
          born;
        }
    | _ -> None)
  | _ -> None

let parse_view_line rest =
  match String.index_opt rest ' ' with
  | None -> None
  | Some i -> (
    let id = String.sub rest 0 i in
    let entries = String.sub rest (i + 1) (String.length rest - i - 1) in
    match int_of_string_opt id with
    | None -> None
    | Some id ->
      if entries = "-" then Some (id, [])
      else
        Some
          ( id,
            List.filter_map parse_entry (String.split_on_char ',' entries) ))

let parse_stats_line rest =
  List.filter_map
    (fun kv ->
      match String.split_on_char '=' kv with
      | [ k; v ] -> Option.map (fun f -> (k, f)) (float_of_string_opt v)
      | _ -> None)
    (String.split_on_char ' ' rest)

let strip_prefix prefix s =
  let lp = String.length prefix in
  if String.length s > lp && String.sub s 0 lp = prefix then
    Some (String.sub s lp (String.length s - lp))
  else None

let host_line host line =
  match strip_prefix "view " line with
  | Some rest -> (
    match parse_view_line rest with
    | Some (id, entries) ->
      host.views <- (id, entries) :: List.remove_assoc id host.views
    | None -> ())
  | None -> (
    match strip_prefix "stats " line with
    | Some rest -> host.stats <- parse_stats_line rest
    | None -> if line = "bye" then host.bye <- true)

type config = {
  binary : string;
  hosts : int;
  nodes_per_host : int;
  base_port : int;
  view_size : int;
  lower_threshold : int;
  out_degree : int;
  scenario : Sf_faults.Scenario.t;
  loss_rate : float;
  period : float;
  version_of_host : int -> int;  (* wire ceiling per host (mixed clusters) *)
  resilience : bool;
  seed : int;
  duration : float;      (* seconds of chaos before shutdown *)
  heartbeat : float;
  hb_timeout : float;
  log : string -> unit;  (* progress lines (Fmt.pr-based at the CLI) *)
}

let default_binary () =
  let dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat dir "sf_nodehost.exe";
      Filename.concat dir "../bin/sf_nodehost.exe";
      Filename.concat dir "sf_nodehost";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some b -> b
  | None -> "sf_nodehost.exe"

let make_config ?binary ?(view_size = 12) ?(lower_threshold = 4)
    ?(out_degree = 0) ?(loss_rate = 0.0) ?(period = 0.01)
    ?(version_of_host = fun _ -> 2) ?(resilience = true) ?(heartbeat = 0.1)
    ?(hb_timeout = 1.0) ?(log = fun _ -> ()) ~hosts ~nodes_per_host ~base_port
    ~scenario ~seed ~duration () =
  if hosts < 1 then invalid_arg "Spawner: hosts < 1";
  if nodes_per_host < 1 then invalid_arg "Spawner: nodes_per_host < 1";
  let n = hosts * nodes_per_host in
  (* Ports: nodes at base_port + id; heartbeat sink at base_port - 1; host
     i's control socket at base_port - 2 - i. *)
  if base_port - 2 - hosts < 1024 || base_port + n > 65_535 then
    invalid_arg "Spawner: port range out of bounds";
  let out_degree =
    if out_degree > 0 then out_degree
    else
      let d = min (n - 1) ((view_size + lower_threshold) / 2) in
      if d mod 2 = 0 then d else d - 1
  in
  List.iter
    (fun (w : Sf_faults.Scenario.window) ->
      match w.Sf_faults.Scenario.fault with
      | Sf_faults.Scenario.Partition _ | Sf_faults.Scenario.Crash _ -> ()
      | Sf_faults.Scenario.Delay _ | Sf_faults.Scenario.Corrupt _ ->
        invalid_arg
          (Fmt.str "Spawner: no cross-process realization for %s windows"
             (Sf_faults.Scenario.fault_kind w.Sf_faults.Scenario.fault)))
    scenario.Sf_faults.Scenario.windows;
  {
    binary = (match binary with Some b -> b | None -> default_binary ());
    hosts;
    nodes_per_host;
    base_port;
    view_size;
    lower_threshold;
    out_degree;
    scenario;
    loss_rate;
    period;
    version_of_host;
    resilience;
    seed;
    duration;
    heartbeat;
    hb_timeout;
    log;
  }

let control_port cfg idx = cfg.base_port - 2 - idx
let controller_port cfg = cfg.base_port - 1

(* The timed fault windows, flattened to a round-ordered event plan. *)
type event =
  | Filter_on of int
  | Filter_off
  | Kill_range of int * int  (* node id range, inclusive *)
  | Revive_range of int * int

let event_plan cfg =
  List.concat_map
    (fun (w : Sf_faults.Scenario.window) ->
      match w.Sf_faults.Scenario.fault with
      | Sf_faults.Scenario.Partition { parts } ->
        [ (w.Sf_faults.Scenario.start, Filter_on parts);
          (w.Sf_faults.Scenario.stop, Filter_off) ]
      | Sf_faults.Scenario.Crash { first; last } ->
        [ (w.Sf_faults.Scenario.start, Kill_range (first, last));
          (w.Sf_faults.Scenario.stop, Revive_range (first, last)) ]
      | _ -> [])
    cfg.scenario.Sf_faults.Scenario.windows
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)

let hosts_of_range cfg first last =
  let lo = max 0 (first / cfg.nodes_per_host) in
  let hi = min (cfg.hosts - 1) (last / cfg.nodes_per_host) in
  if lo > hi then [] else List.init (hi - lo + 1) (fun i -> lo + i)

let host_argv cfg idx =
  let host_duration = (cfg.duration *. 3.) +. 30. in
  [|
    cfg.binary;
    "--host"; string_of_int idx;
    "--hosts"; string_of_int cfg.hosts;
    "--per-host"; string_of_int cfg.nodes_per_host;
    "--base-port"; string_of_int cfg.base_port;
    "--control-port"; string_of_int (control_port cfg idx);
    "--controller-port"; string_of_int (controller_port cfg);
    "--view-size"; string_of_int cfg.view_size;
    "--lower"; string_of_int cfg.lower_threshold;
    "--out-degree"; string_of_int cfg.out_degree;
    "--loss";
    Sf_faults.Scenario.to_string
      { cfg.scenario with Sf_faults.Scenario.windows = [] };
    "--loss-rate"; Fmt.str "%.6f" cfg.loss_rate;
    "--period"; Fmt.str "%.6f" cfg.period;
    "--version"; string_of_int (cfg.version_of_host idx);
    "--seed"; string_of_int cfg.seed;
    "--duration"; Fmt.str "%.3f" host_duration;
    "--heartbeat"; Fmt.str "%.3f" cfg.heartbeat;
  |]
  |> fun base ->
  if cfg.resilience then Array.append base [| "--resilience" |] else base

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn_process cfg idx =
  let stdin_r, stdin_w = Unix.pipe () in
  let stdout_r, stdout_w = Unix.pipe () in
  Unix.set_close_on_exec stdin_w;
  Unix.set_close_on_exec stdout_r;
  Unix.set_nonblock stdout_r;
  let argv = host_argv cfg idx in
  match Unix.create_process cfg.binary argv stdin_r stdout_w Unix.stderr with
  | pid ->
    close_quietly stdin_r;
    close_quietly stdout_w;
    (pid, stdin_w, stdout_r)
  | exception e ->
    List.iter close_quietly [ stdin_r; stdin_w; stdout_r; stdout_w ];
    raise e

let attach_reader host =
  host.reader <-
    Nodehost.line_reader host.stdout_r ~on_line:(host_line host)
      ~on_eof:(fun () -> ())

let spawn_host cfg ~now host =
  let pid, stdin_w, stdout_r = spawn_process cfg host.idx in
  host.pid <- pid;
  host.stdin_w <- stdin_w;
  host.stdout_r <- stdout_r;
  host.last_hb <- now;
  host.phase <- `Running;
  attach_reader host

(* Reap a process we know is exiting; bounded wait (~1 s) so a
   pathological non-exit cannot wedge the controller.  The pause between
   polls is an empty select, the event-loop idiom — not a retry backoff,
   which stays Backoff's business. *)
let reap pid =
  let rec wait tries =
    if tries = 0 then ()
    else
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        (try ignore (Unix.select [] [] [] 0.005)
         with Unix.Unix_error _ -> ());
        wait (tries - 1)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait tries
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  wait 200

let sigkill_host host =
  (try Unix.kill host.pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap host.pid;
  close_quietly host.stdin_w;
  close_quietly host.stdout_r

let send_stdin host line =
  let packet = Bytes.of_string (line ^ "\n") in
  try ignore (Unix.write host.stdin_w packet 0 (Bytes.length packet)) with
  | Unix.Unix_error _ -> ()

let run cfg =
  (* A host dying with its stdin pipe non-empty must surface as EPIPE on
     our write, not as a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let now () = Sf_obs.Clock.wall () in
  let t0 = now () in
  let round () = (now () -. t0) /. cfg.period in
  let backoff_rng = Sf_prng.Rng.create (cfg.seed lxor 0x7ead) in
  let heartbeats = ref 0 in
  let kills = ref 0 in
  let respawns = ref 0 in
  let hb_timeouts = ref 0 in
  let unexpected_deaths = ref 0 in
  (* Controller heartbeat sink + command source. *)
  let hb_socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock hb_socket;
  Unix.set_close_on_exec hb_socket;
  Unix.setsockopt hb_socket Unix.SO_REUSEADDR true;
  Unix.bind hb_socket
    (Unix.ADDR_INET (Unix.inet_addr_loopback, controller_port cfg));
  let send_control idx line =
    let packet = Bytes.of_string (line ^ "\n") in
    try
      ignore
        (Unix.sendto hb_socket packet 0 (Bytes.length packet) []
           (Unix.ADDR_INET (Unix.inet_addr_loopback, control_port cfg idx)))
    with Unix.Unix_error _ -> ()
  in
  let hosts =
    Array.init cfg.hosts (fun idx ->
        {
          idx;
          pid = -1;
          stdin_w = Unix.stdin;
          stdout_r = Unix.stdin;
          reader = (fun () -> ());
          last_hb = 0.;
          phase = `Running;
          views = [];
          stats = [];
          bye = false;
          respawned = 0;
          backoff =
            Sf_resil.Backoff.create ~base:2.0 ~factor:2.0 ~cap:64.0
              ~rng:backoff_rng ();
        })
  in
  let finally () =
    Array.iter
      (fun h ->
        match h.phase with
        | `Running ->
          (try Unix.kill h.pid Sys.sigkill with Unix.Unix_error _ -> ());
          reap h.pid;
          close_quietly h.stdin_w;
          close_quietly h.stdout_r
        | _ -> ())
      hosts;
    close_quietly hb_socket
  in
  try
    Array.iter (fun h -> spawn_host cfg ~now:(now ()) h) hosts;
    cfg.log
      (Fmt.str "spawned %d node-hosts (%d nodes, ports %d-%d)" cfg.hosts
         (cfg.hosts * cfg.nodes_per_host) cfg.base_port
         (cfg.base_port + (cfg.hosts * cfg.nodes_per_host) - 1));
    let plan = ref (event_plan cfg) in
    let hb_buffer = Bytes.create 256 in
    let drain_heartbeats () =
      let continue = ref true in
      while !continue do
        match Unix.recvfrom hb_socket hb_buffer 0 (Bytes.length hb_buffer) [] with
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
          continue := false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
        | length, _ -> (
          incr heartbeats;
          match
            String.split_on_char ' '
              (String.trim (Bytes.sub_string hb_buffer 0 length))
          with
          | "hb" :: idx :: _ -> (
            match int_of_string_opt idx with
            | Some i when i >= 0 && i < cfg.hosts ->
              hosts.(i).last_hb <- now ()
            | _ -> ())
          | _ -> ())
      done
    in
    let reap_unexpected () =
      let continue = ref true in
      while !continue do
        match Unix.waitpid [ Unix.WNOHANG ] (-1) with
        | 0, _ -> continue := false
        | pid, _ -> (
          match
            Array.fold_left
              (fun acc h -> if h.pid = pid then Some h else acc)
              None hosts
          with
          | Some h when h.phase = `Running ->
            (* Died without being told to: close its ends and schedule a
               backed-off respawn (delays are in rounds). *)
            incr unexpected_deaths;
            close_quietly h.stdin_w;
            close_quietly h.stdout_r;
            let delay = Sf_resil.Backoff.next h.backoff *. cfg.period in
            h.phase <- `Respawn_at (now () +. delay);
            cfg.log
              (Fmt.str "host %d (pid %d) died; respawn in %.2fs" h.idx pid
                 delay)
          | _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> continue := false
      done
    in
    let fire_events () =
      let r = round () in
      let rec step () =
        match !plan with
        | (at, event) :: rest when at <= r ->
          plan := rest;
          (match event with
          | Filter_on parts ->
            cfg.log (Fmt.str "round %.0f: partition filter %d-way on" at parts);
            Array.iter
              (fun h -> if h.phase = `Running then send_control h.idx (Fmt.str "filter %d" parts))
              hosts
          | Filter_off ->
            cfg.log (Fmt.str "round %.0f: partition filter off" at);
            Array.iter
              (fun h -> if h.phase = `Running then send_control h.idx "filter off")
              hosts
          | Kill_range (first, last) ->
            List.iter
              (fun idx ->
                let h = hosts.(idx) in
                if h.phase = `Running then begin
                  cfg.log
                    (Fmt.str "round %.0f: kill -9 host %d (pid %d, nodes %d-%d)"
                       at idx h.pid
                       (idx * cfg.nodes_per_host)
                       (((idx + 1) * cfg.nodes_per_host) - 1));
                  incr kills;
                  sigkill_host h;
                  (* Revive no earlier than the window close. *)
                  h.phase <- `Crashed_until infinity
                end)
              (hosts_of_range cfg first last)
          | Revive_range (first, last) ->
            List.iter
              (fun idx ->
                let h = hosts.(idx) in
                match h.phase with
                | `Crashed_until _ ->
                  cfg.log (Fmt.str "round %.0f: respawn host %d" at idx);
                  incr respawns;
                  h.respawned <- h.respawned + 1;
                  spawn_host cfg ~now:(now ()) h
                | _ -> ())
              (hosts_of_range cfg first last));
          step ()
        | _ -> ()
      in
      step ()
    in
    let check_liveness () =
      let t = now () in
      Array.iter
        (fun h ->
          match h.phase with
          | `Running when t -. h.last_hb > cfg.hb_timeout ->
            (* Silent past the timeout: presumed wedged.  Kill for real and
               respawn under backoff. *)
            incr hb_timeouts;
            incr kills;
            cfg.log
              (Fmt.str "host %d silent for %.2fs; kill and respawn" h.idx
                 (t -. h.last_hb));
            sigkill_host h;
            let delay = Sf_resil.Backoff.next h.backoff *. cfg.period in
            h.phase <- `Respawn_at (t +. delay)
          | `Respawn_at due when t >= due ->
            incr respawns;
            h.respawned <- h.respawned + 1;
            spawn_host cfg ~now:t h
          | _ -> ())
        hosts
    in
    let poll timeout =
      let fds =
        hb_socket
        :: (Array.to_list hosts
           |> List.filter_map (fun h ->
                  if h.phase = `Running then Some h.stdout_r else None))
      in
      match Unix.select fds [] [] timeout with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = hb_socket then drain_heartbeats ()
            else
              Array.iter
                (fun h -> if h.stdout_r = fd && h.phase = `Running then h.reader ())
                hosts)
          readable
    in
    (* --- Chaos phase --- *)
    let deadline = t0 +. cfg.duration in
    while now () < deadline do
      fire_events ();
      reap_unexpected ();
      check_liveness ();
      poll (Float.min 0.05 (Float.max 0.001 (deadline -. now ())))
    done;
    (* --- Shutdown: heal, settle, stop, collect. --- *)
    Array.iter
      (fun h ->
        match h.phase with
        | `Running -> ()
        | `Crashed_until _ | `Respawn_at _ ->
          incr respawns;
          h.respawned <- h.respawned + 1;
          spawn_host cfg ~now:(now ()) h)
      hosts;
    Array.iter (fun h -> if h.phase = `Running then send_control h.idx "filter off") hosts;
    let settle_until = now () +. Float.max (30. *. cfg.period) 0.3 in
    while now () < settle_until do
      reap_unexpected ();
      poll 0.02
    done;
    cfg.log "stopping node-hosts";
    Array.iter
      (fun h ->
        send_stdin h "stop";
        send_control h.idx "stop")
      hosts;
    let grace = now () +. 5.0 in
    let all_bye () = Array.for_all (fun h -> h.bye) hosts in
    while (not (all_bye ())) && now () < grace do
      poll 0.02
    done;
    Array.iter
      (fun h ->
        if not h.bye then begin
          try Unix.kill h.pid Sys.sigterm with Unix.Unix_error _ -> ()
        end)
      hosts;
    let term_grace = now () +. 2.0 in
    while (not (all_bye ())) && now () < term_grace do
      poll 0.02
    done;
    Array.iter
      (fun h ->
        (* One last drain picks up lines raced against the bye check. *)
        h.reader ();
        sigkill_host h;
        h.phase <- `Crashed_until infinity)
      hosts;
    close_quietly hb_socket;
    let host_outcomes =
      Array.to_list hosts
      |> List.map (fun h ->
             {
               index = h.idx;
               views = List.rev h.views;
               stats = h.stats;
               bye = h.bye;
               respawns = h.respawned;
             })
    in
    {
      hosts = host_outcomes;
      merged_views =
        List.concat_map (fun (h : host_outcome) -> h.views) host_outcomes
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b);
      heartbeats = !heartbeats;
      kills = !kills;
      respawns = !respawns;
      hb_timeouts = !hb_timeouts;
      unexpected_deaths = !unexpected_deaths;
      wall_seconds = now () -. t0;
    }
  with e ->
    finally ();
    raise e
