(* Tests for the baseline protocols, checking the contrasts the paper draws
   in section 3.1. *)

module Baselines = Sf_core.Baselines
module Topology = Sf_core.Topology
module Census = Sf_core.Census

let make ?(seed = 66) ?(n = 100) ?(loss = 0.) kind =
  let rng = Sf_prng.Rng.create (seed + 5) in
  let topology = Topology.regular rng ~n ~out_degree:6 in
  Baselines.create ~seed ~n ~view_size:12 ~loss_rate:loss ~kind ~topology

let test_shuffle_lossless_preserves_ids () =
  let b = make ~loss:0. (Baselines.Shuffle { exchange_size = 3 }) in
  let before = Baselines.total_instances b in
  Baselines.run_rounds b 100;
  Alcotest.(check int) "edge count invariant without loss" before
    (Baselines.total_instances b);
  Alcotest.(check bool) "still connected" true (Baselines.is_weakly_connected b)

let test_shuffle_bleeds_ids_under_loss () =
  let b = make ~loss:0.05 (Baselines.Shuffle { exchange_size = 3 }) in
  let before = Baselines.total_instances b in
  Baselines.run_rounds b 150;
  let after = Baselines.total_instances b in
  Alcotest.(check bool)
    (Printf.sprintf "edges %d -> %d" before after)
    true
    (after < before / 2)

let test_shuffle_creates_no_anchored_dependence () =
  let b = make ~loss:0.02 (Baselines.Shuffle { exchange_size = 3 }) in
  Baselines.run_rounds b 50;
  let c = Baselines.independence_census b in
  Alcotest.(check int) "no anchored entries" 0 c.Census.anchored

let test_push_pull_never_loses_ids () =
  let b = make ~loss:0.2 (Baselines.Push_pull { gossip_size = 3 }) in
  let before = Baselines.total_instances b in
  Baselines.run_rounds b 100;
  Alcotest.(check bool) "instances never shrink" true
    (Baselines.total_instances b >= before);
  Alcotest.(check bool) "connected" true (Baselines.is_weakly_connected b)

let test_push_pull_accumulates_dependence () =
  let b = make ~loss:0.01 (Baselines.Push_pull { gossip_size = 3 }) in
  Baselines.run_rounds b 100;
  let c = Baselines.independence_census b in
  Alcotest.(check bool)
    (Printf.sprintf "alpha %.3f collapses" c.Census.alpha)
    true
    (c.Census.alpha < 0.5);
  Alcotest.(check bool) "anchored entries dominate" true (c.Census.anchored > 0)

let test_push_only_is_reinforcement_only () =
  let b = make ~loss:0. Baselines.Push_only in
  Baselines.run_rounds b 100;
  (* Without mixing, views fill with pushed sender ids; the system keeps
     running and no ids are destroyed below the initial count. *)
  Alcotest.(check bool) "instances kept" true
    (Baselines.total_instances b >= 100 * 6);
  let c = Baselines.independence_census b in
  Alcotest.(check bool) "duplicates accumulate (no mixing)" true
    (c.Census.parallel_surplus > 0)

let test_indegree_summary_counts () =
  let b = make (Baselines.Push_pull { gossip_size = 2 }) in
  let s = Baselines.indegree_summary b in
  Alcotest.(check int) "one summary entry per node" 100 (Sf_stats.Summary.count s);
  (* Regular topology: all indegrees 6 initially. *)
  Alcotest.(check bool) "initial variance 0" true (Sf_stats.Summary.variance s < 1e-9)

let test_membership_graph_matches_instances () =
  let b = make (Baselines.Shuffle { exchange_size = 2 }) in
  Baselines.run_rounds b 20;
  let g = Baselines.membership_graph b in
  Alcotest.(check int) "graph edges = instances" (Baselines.total_instances b)
    (Sf_graph.Digraph.edge_count g)

let suite =
  [
    Alcotest.test_case "shuffle lossless conservation" `Quick test_shuffle_lossless_preserves_ids;
    Alcotest.test_case "shuffle bleeds under loss" `Quick test_shuffle_bleeds_ids_under_loss;
    Alcotest.test_case "shuffle has no anchors" `Quick test_shuffle_creates_no_anchored_dependence;
    Alcotest.test_case "push-pull loss immunity" `Quick test_push_pull_never_loses_ids;
    Alcotest.test_case "push-pull dependence" `Quick test_push_pull_accumulates_dependence;
    Alcotest.test_case "push-only reinforcement" `Quick test_push_only_is_reinforcement_only;
    Alcotest.test_case "indegree summary" `Quick test_indegree_summary_counts;
    Alcotest.test_case "graph matches instances" `Quick test_membership_graph_matches_instances;
  ]
