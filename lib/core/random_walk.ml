(* Random-walk sampling, the non-local alternative the paper argues against
   in section 3.1: a node obtains a fresh id by walking the membership
   graph and sampling the endpoint.

   Two of the paper's three objections are directly measurable here:

   - Each hop is a message, so a walk of length L succeeds only if all L
     hops survive: success probability (1 - loss)^L, decaying exponentially
     with the walk length (S&F actions, by contrast, involve one message
     each and never "fail" — views are updated after every step).
   - An unweighted walk samples nodes proportionally to their (in-)degree,
     so endpoint uniformity depends on the topology; on imbalanced graphs
     the sample is far from uniform. *)

type walk_result =
  | Completed of int   (* endpoint id *)
  | Lost_at_hop of int (* a hop message was lost *)
  | Dead_end of int    (* reached a node with an effectively empty view *)

let walk runner rng ~start ~length ~loss_rate =
  let rec hop current remaining =
    if remaining = 0 then Completed current
    else
      match Runner.find_node runner current with
      | None -> Dead_end (length - remaining)
      | Some node ->
        let entries = Array.of_list (View.entries node.Protocol.view) in
        if Array.length entries = 0 then Dead_end (length - remaining)
        else begin
          let next = (Sf_prng.Rng.choose rng entries).View.id in
          if Sf_prng.Rng.bernoulli rng loss_rate then
            Lost_at_hop (length - remaining + 1)
          else hop next (remaining - 1)
        end
  in
  hop start length

type statistics = {
  attempts : int;
  completed : int;
  lost : int;
  dead_ends : int;
  success_rate : float;
  endpoint_counts : (int, int) Hashtbl.t;
}

(* Run [attempts] walks of the given length from uniformly random live
   starting nodes, tallying outcomes and endpoint frequencies. *)
let sample_statistics runner rng ~attempts ~length ~loss_rate =
  let endpoint_counts = Hashtbl.create 256 in
  let completed = ref 0 and lost = ref 0 and dead_ends = ref 0 in
  for _ = 1 to attempts do
    let start = (Runner.random_live_node runner).Protocol.node_id in
    match walk runner rng ~start ~length ~loss_rate with
    | Completed endpoint ->
      incr completed;
      Hashtbl.replace endpoint_counts endpoint
        (1 + Option.value ~default:0 (Hashtbl.find_opt endpoint_counts endpoint))
    | Lost_at_hop _ -> incr lost
    | Dead_end _ -> incr dead_ends
  done;
  {
    attempts;
    completed = !completed;
    lost = !lost;
    dead_ends = !dead_ends;
    success_rate = float_of_int !completed /. float_of_int (max 1 attempts);
    endpoint_counts;
  }

(* The analytic success probability per walk: every hop must survive. *)
let success_probability ~length ~loss_rate = (1. -. loss_rate) ** float_of_int length
